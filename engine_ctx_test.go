package cqa

import (
	"context"
	"errors"
	"testing"
)

// TestCertainCtxCancellation checks that an already-canceled context is
// rejected before evaluation on both the engine methods and the
// package-level facade, and that the same calls succeed and agree with
// the context-free API under a live context.
func TestCertainCtxCancellation(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	db := churnInstance(9)
	q := MustParseQuery("ARRX")

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.CertainCtx(canceled, q, db); !errors.Is(err, context.Canceled) {
		t.Fatalf("CertainCtx: got %v, want context.Canceled", err)
	}
	if _, err := eng.CertainOptCtx(canceled, q, db, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CertainOptCtx: got %v, want context.Canceled", err)
	}
	if _, err := CertainCtx(canceled, q, db); !errors.Is(err, context.Canceled) {
		t.Fatalf("facade CertainCtx: got %v, want context.Canceled", err)
	}
	if _, err := CertainOptCtx(canceled, q, db, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("facade CertainOptCtx: got %v, want context.Canceled", err)
	}

	// The engine is untouched by the rejections: a live context decides
	// normally and agrees with the context-free entry point.
	res, err := eng.CertainCtx(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	if want := eng.Certain(q, db); res.Certain != want.Certain {
		t.Fatalf("ctx=%v context-free=%v", res.Certain, want.Certain)
	}
}
