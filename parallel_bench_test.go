package cqa

// Benchmark series E19: intra-query parallelism on giant instances.
// Each benchmark pairs a serial and a parallel arm over the same
// facts=1e6 instance so benchgate can gate their quotient — the
// hardware-independent claim "the partitioned path is ≥ 2x at 4 cores"
// — instead of absolute ns/op, which would not survive a runner change.
// The arms measure cold work: a fresh Compile (fixpoint) or fresh
// Evaluator (NL) per iteration, so the binding build is always paid,
// never memo-hit. The loader's serial arm includes Interned() because
// the parallel pipeline pre-publishes the snapshot — comparing ingest
// without the intern step would flatter the serial side.

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"testing"

	"cqa/internal/fixpoint"
	"cqa/internal/instance"
	"cqa/internal/nl"
	"cqa/internal/words"
	"cqa/internal/workload"
)

const giantFacts = 1_000_000

var (
	giantOnce sync.Once
	giantDB   *Instance
	giantCSV  []byte
)

// giantInstance builds the facts=1e6 workload once per test binary:
// generation plus interning takes whole seconds, which must not be
// re-paid per benchmark arm.
func giantInstance() *Instance {
	giantOnce.Do(func() {
		giantDB = workload.Random(workload.Config{
			Relations:    []string{"R", "X", "Y", "A"},
			Constants:    giantFacts / 2,
			Facts:        giantFacts,
			ConflictRate: 0.3,
			Seed:         42,
		})
		var buf bytes.Buffer
		if err := giantDB.WriteCSV(&buf); err != nil {
			panic(err)
		}
		giantCSV = buf.Bytes()
		giantDB.Interned()
	})
	return giantDB
}

// BenchmarkTierFixpointParallel: cold Figure 5 solve (binding build +
// worklist) at facts=1e6, single-core versus partitioned. The query
// touches all four workload relations, so the parallel binding build
// fans out across four position groups.
func BenchmarkTierFixpointParallel(b *testing.B) {
	q := words.MustParse("RXRYRA")
	iv := giantInstance().Interned()
	ctx := context.Background()
	b.Run("facts=1000000", func(b *testing.B) {
		b.Run("serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cp := fixpoint.Compile(q)
				if _, err := cp.SolveInternedCtx(ctx, iv, fixpoint.SolveOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("parallel", func(b *testing.B) {
			opts := fixpoint.SolveOptions{Workers: runtime.GOMAXPROCS(0)}
			for i := 0; i < b.N; i++ {
				cp := fixpoint.Compile(q)
				if _, err := cp.SolveInternedCtx(ctx, iv, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkTierNLParallel: cold Section 6.3 decision (Lemma 14 stages
// + decision scan) at facts=1e6 on the NL-class query RRX.
func BenchmarkTierNLParallel(b *testing.B) {
	q := words.MustParse("RRX")
	db := giantInstance()
	b.Run("facts=1000000", func(b *testing.B) {
		b.Run("serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev, err := nl.NewEvaluator(q)
				if err != nil {
					b.Fatal(err)
				}
				ev.IsCertain(db)
			}
		})
		b.Run("parallel", func(b *testing.B) {
			opts := fixpoint.SolveOptions{Workers: runtime.GOMAXPROCS(0)}
			for i := 0; i < b.N; i++ {
				ev, err := nl.NewEvaluator(q)
				if err != nil {
					b.Fatal(err)
				}
				ev.IsCertainOpts(db, opts)
			}
		})
	})
}

// BenchmarkLoaderParallel: CSV ingest of facts=1e6 to a ready-to-solve
// instance. Both arms end with a published interned snapshot: the
// serial arm is ReadCSV + Interned(), the parallel arm the streaming
// pipeline (which pre-publishes it).
func BenchmarkLoaderParallel(b *testing.B) {
	giantInstance()
	b.Run("facts=1000000", func(b *testing.B) {
		b.Run("serial", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db, err := instance.ReadCSV(bytes.NewReader(giantCSV))
				if err != nil {
					b.Fatal(err)
				}
				db.Interned()
			}
		})
		b.Run("parallel", func(b *testing.B) {
			b.ReportAllocs()
			workers := runtime.GOMAXPROCS(0)
			for i := 0; i < b.N; i++ {
				if _, err := instance.ReadCSVParallel(bytes.NewReader(giantCSV), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}
