// Package faultinject provides named failpoints for chaos testing the
// serving stack. A failpoint is a call site — snapshot publish, memo
// build, SAT solve, router handoff, HTTP response write — that asks
// this package whether it should fail right now. In production nothing
// is ever armed and every check is a single atomic load returning nil;
// tests arm failpoints with Enable and drive overload/fault soaks that
// assert the daemon survives.
//
// A failpoint fails in one of two modes: error mode returns an error
// for the site to propagate on its normal error path, panic mode
// panics with a PanicError — exercising the recover() boundaries at
// the engine's evaluation workers, the router's resident workers, and
// the HTTP handler layer. Firing is deterministic, not random: an
// armed failpoint fails on every Nth hit (counted per failpoint), so a
// soak can reconcile recovered-panic and per-request-error counters
// against exactly how many faults were injected.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Site names of the failpoints wired into the serving stack. Arming any
// other name is allowed (tests may add their own sites) but these are
// the ones the production code checks.
const (
	// SnapshotPublish fires in instance.Interned when a freshly interned
	// snapshot (root or delta) is about to be published.
	SnapshotPublish = "instance.publish"
	// MemoBuild fires inside memo.LRU before a cold artifact build.
	MemoBuild = "memo.build"
	// MemoRepair fires inside memo.LRU before a lineage repair attempt.
	MemoRepair = "memo.repair"
	// SATSolve fires at the entry of the SAT solver's search, before any
	// solver state is touched.
	SATSolve = "sat.solve"
	// RouterHandoff fires when the server router hands a task to a
	// worker lane.
	RouterHandoff = "router.handoff"
	// ServerWrite fires before the HTTP batch endpoint writes a response
	// chunk, simulating a failed/aborted connection write.
	ServerWrite = "server.write"
)

// PanicError is the value a panic-mode failpoint panics with, so
// recover() boundaries (and tests) can tell an injected fault from a
// genuine bug.
type PanicError struct{ Site string }

func (e PanicError) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s", e.Site)
}

// InjectedError is the error returned by an error-mode failpoint.
type InjectedError struct{ Site string }

func (e InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected error at %s", e.Site)
}

// armed is the fast-path gate: when false (the default, and always in
// production) Fire is one atomic load. It is true iff the registry
// below has at least one armed failpoint.
var armed atomic.Bool

var (
	mu     sync.Mutex
	points = make(map[string]*point)
)

// point is one armed failpoint.
type point struct {
	every     uint64 // fire on every Nth hit (>= 1)
	panicMode bool
	hits      atomic.Uint64
	fired     atomic.Uint64
}

// Enable arms the named failpoint: every Nth hit fails, in panic mode
// or error mode. every < 1 is treated as 1 (every hit fails).
// Re-enabling an armed failpoint resets its counters.
func Enable(name string, every int, panicMode bool) {
	if every < 1 {
		every = 1
	}
	mu.Lock()
	points[name] = &point{every: uint64(every), panicMode: panicMode}
	armed.Store(true)
	mu.Unlock()
}

// Disable disarms the named failpoint, keeping its fired count
// available via Fired until Reset.
func Disable(name string) {
	mu.Lock()
	if p := points[name]; p != nil {
		// Keep the point for Fired() but stop it firing.
		p.every = 0
	}
	mu.Unlock()
}

// Reset disarms every failpoint and clears all counters.
func Reset() {
	mu.Lock()
	points = make(map[string]*point)
	armed.Store(false)
	mu.Unlock()
}

// Fired returns how many times the named failpoint has actually failed
// (not merely been hit) since it was enabled.
func Fired(name string) uint64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	return p.fired.Load()
}

// Hits returns how many times the named failpoint has been reached
// since it was enabled.
func Hits(name string) uint64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Fire is the failpoint check. Disarmed (the production state) it is a
// single atomic load returning nil. Armed, it counts the hit and on
// every Nth hit either panics with a PanicError (panic mode) or
// returns an InjectedError for the site to propagate.
func Fire(name string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	p := points[name]
	var every uint64
	var panicMode bool
	if p != nil {
		every, panicMode = p.every, p.panicMode
	}
	mu.Unlock()
	if p == nil || every == 0 {
		return nil
	}
	if p.hits.Add(1)%every != 0 {
		return nil
	}
	p.fired.Add(1)
	if panicMode {
		panic(PanicError{Site: name})
	}
	return InjectedError{Site: name}
}
