package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestFireDisarmedIsNil(t *testing.T) {
	Reset()
	for i := 0; i < 100; i++ {
		if err := Fire("nope"); err != nil {
			t.Fatalf("disarmed Fire returned %v", err)
		}
	}
}

func TestFireEveryNth(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", 3, false)
	var fails int
	for i := 0; i < 9; i++ {
		if err := Fire("p"); err != nil {
			fails++
			var inj InjectedError
			if !errors.As(err, &inj) || inj.Site != "p" {
				t.Fatalf("unexpected error %v", err)
			}
		}
	}
	if fails != 3 {
		t.Fatalf("every=3 over 9 hits fired %d times, want 3", fails)
	}
	if Fired("p") != 3 || Hits("p") != 9 {
		t.Fatalf("Fired=%d Hits=%d, want 3/9", Fired("p"), Hits("p"))
	}
}

func TestFirePanicMode(t *testing.T) {
	Reset()
	defer Reset()
	Enable("boom", 1, true)
	defer func() {
		p := recover()
		var pe PanicError
		if err, ok := p.(error); !ok || !errors.As(err, &pe) || pe.Site != "boom" {
			t.Fatalf("recovered %v, want PanicError{boom}", p)
		}
		if Fired("boom") != 1 {
			t.Fatalf("Fired = %d, want 1", Fired("boom"))
		}
	}()
	Fire("boom")
	t.Fatal("panic-mode failpoint did not panic")
}

func TestDisableStopsFiring(t *testing.T) {
	Reset()
	defer Reset()
	Enable("d", 1, false)
	if Fire("d") == nil {
		t.Fatal("armed failpoint did not fire")
	}
	Disable("d")
	if err := Fire("d"); err != nil {
		t.Fatalf("disabled failpoint fired: %v", err)
	}
	if Fired("d") != 1 {
		t.Fatalf("Fired survived disable wrong: %d, want 1", Fired("d"))
	}
}

// TestFireConcurrent exercises the armed path under -race: concurrent
// Fire, Enable, and Disable must be data-race free, and the fired
// count must equal hits/every when the config is stable.
func TestFireConcurrent(t *testing.T) {
	Reset()
	defer Reset()
	Enable("c", 4, false)
	var wg sync.WaitGroup
	var fails sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 1000; i++ {
				if Fire("c") != nil {
					n++
				}
			}
			fails.Store(g, n)
		}(g)
	}
	wg.Wait()
	total := 0
	fails.Range(func(_, v any) bool { total += v.(int); return true })
	if want := 8 * 1000 / 4; total != want {
		t.Fatalf("fired %d, want %d", total, want)
	}
}
