// Package suppressdata is the driver test corpus for malformed allow
// directives: every directive below is broken in a distinct way and
// must surface as a "cqalint" finding.
package suppressdata

//cqalint:allow
var a int

//cqalint:allow notananalyzer some reason
var b int

//cqalint:allow internedmut
var c int
