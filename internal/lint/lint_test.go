package lint_test

import (
	"strings"
	"testing"

	"cqa/internal/lint"
	"cqa/internal/lint/load"
)

// TestCleanPackages runs the full suite over a few small real packages
// that must be lint-clean; the whole-module gate is the CI lint job
// (go run ./cmd/cqalint ./...), kept out of the unit tests so go test
// stays fast.
func TestCleanPackages(t *testing.T) {
	l, err := load.Shared()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	findings, err := lint.Run(l, []string{"./internal/bitset", "./internal/words", "./internal/memo"}, lint.Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestMalformedDirectives checks that broken allow directives surface
// as findings of the pseudo-analyzer "cqalint" even when no analyzer
// runs: the zero-unexplained-suppressions bar is enforced by the
// driver, not by any single check.
func TestMalformedDirectives(t *testing.T) {
	l, err := load.Shared()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir("testdata/src/suppressdata")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings, err := lint.RunPackage(l.Fset, pkg, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wantSubstrs := []string{
		"names no analyzer",
		"unknown analyzer notananalyzer",
		"has no reason",
	}
	if len(findings) != len(wantSubstrs) {
		t.Fatalf("got %d findings, want %d: %v", len(findings), len(wantSubstrs), findings)
	}
	for i, f := range findings {
		if f.Analyzer != "cqalint" {
			t.Errorf("finding %d: analyzer %q, want cqalint", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantSubstrs[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantSubstrs[i])
		}
	}
}

// TestRegistry pins the analyzer set: the allow directives in the tree
// name these analyzers, so renaming one silently orphans its
// suppressions unless this test moves with it.
func TestRegistry(t *testing.T) {
	want := []string{"internedmut", "ctxpropagate", "atomicpublish", "nolockbuild", "statscounter"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d: name %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q: missing Doc or Run", a.Name)
		}
	}
}
