// Package load type-checks packages for the cqalint analyzers without
// golang.org/x/tools/go/packages: import paths are resolved directly —
// module-local paths under the repo root, everything else under
// GOROOT/src (with the GOROOT vendor fallback) — and dependencies are
// type-checked from source recursively. The module has no external
// requirements, so this two-rule resolver covers every reachable
// import; stdlib packages are checked without syntax retention or
// types.Info, analyzed packages keep both.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path (for directory loads of test corpora, a
	// synthetic path derived from the directory).
	Path string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Files and Info are retained only for analyzed packages (module
	// packages and directory loads); they are nil for bare dependencies.
	Files []*ast.File
	Info  *types.Info
}

// Loader loads and caches packages against one module root. A Loader is
// not safe for concurrent use; the lint driver and the test harness
// serialize on Shared's lock.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	ctxt   build.Context
	byPath map[string]*Package
	byDir  map[string]*Package
	// loading guards against import cycles (impossible in valid Go, but
	// a resolver bug must error instead of recursing forever).
	loading map[string]bool
}

// New returns a Loader for the module rooted at moduleRoot, whose
// go.mod names modulePath.
func New(moduleRoot, modulePath string) *Loader {
	ctxt := build.Default
	// Type-checking cgo parts from source is impossible (the C half is
	// missing); with cgo off every stdlib package selects its pure-Go
	// file set.
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:       token.NewFileSet(),
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		ctxt:       ctxt,
		byPath:     make(map[string]*Package),
		byDir:      make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// FindModuleRoot walks up from dir to the nearest go.mod and returns
// its directory and module path.
func FindModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		dir = parent
	}
}

var (
	sharedMu sync.Mutex
	sharedL  *Loader
	sharedE  error
)

// Shared returns a process-wide Loader rooted at the module containing
// the current working directory, so every analyzer test reuses one
// type-checked view of the standard library. The caller must not use it
// concurrently.
func Shared() (*Loader, error) {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedL == nil && sharedE == nil {
		root, path, err := FindModuleRoot(".")
		if err != nil {
			sharedE = err
		} else {
			sharedL = New(root, path)
		}
	}
	return sharedL, sharedE
}

// inModule reports whether path names the module or a package inside it.
func (l *Loader) inModule(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// resolveDir maps an import path to its source directory.
func (l *Loader) resolveDir(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), nil
	}
	src := filepath.Join(l.ctxt.GOROOT, "src", filepath.FromSlash(path))
	if fi, err := os.Stat(src); err == nil && fi.IsDir() {
		return src, nil
	}
	vend := filepath.Join(l.ctxt.GOROOT, "src", "vendor", filepath.FromSlash(path))
	if fi, err := os.Stat(vend); err == nil && fi.IsDir() {
		return vend, nil
	}
	return "", fmt.Errorf("load: cannot resolve import %q (not in module %s, GOROOT/src, or GOROOT vendor)", path, l.ModulePath)
}

// Load returns the package with the given import path, type-checking it
// (and its dependencies) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: path, Pkg: types.Unsafe}, nil
	}
	if p, ok := l.byPath[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	p, err := l.check(dir, path, l.inModule(path))
	if err != nil {
		return nil, err
	}
	l.byPath[path] = p
	return p, nil
}

// LoadDir type-checks the single package in dir (an analyzer test
// corpus) with full syntax and type information. Imports inside it
// resolve through the normal module/GOROOT rules.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.byDir[dir]; ok {
		return p, nil
	}
	p, err := l.check(dir, "cqalint.test/"+filepath.Base(dir), true)
	if err != nil {
		return nil, err
	}
	l.byDir[dir] = p
	return p, nil
}

// check parses and type-checks the package in dir. analyzed packages
// keep syntax, comments, and types.Info, and fail hard on type errors;
// dependency packages are checked leniently (an incomplete stdlib
// corner must not take the whole lint run down with it).
func (l *Loader) check(dir, path string, analyzed bool) (*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	mode := parser.SkipObjectResolution
	if analyzed {
		mode |= parser.ParseComments
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, mode)
		if perr != nil {
			return nil, fmt.Errorf("load %s: %w", path, perr)
		}
		files = append(files, f)
	}

	var typeErrs []error
	conf := types.Config{
		Importer:    importerFunc(func(imp string) (*types.Package, error) { return l.importPkg(imp) }),
		Sizes:       types.SizesFor("gc", l.ctxt.GOARCH),
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	var info *types.Info
	if analyzed {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if analyzed && len(typeErrs) > 0 {
		return nil, fmt.Errorf("load %s: %d type errors, first: %w", path, len(typeErrs), typeErrs[0])
	}
	p := &Package{Path: path, Pkg: tpkg}
	if analyzed {
		p.Files = files
		p.Info = info
	}
	return p, nil
}

// importPkg adapts Load to the go/types importer contract.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	p, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return p.Pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ModulePackages returns the import paths of every package in the
// module, in lexical directory order: each directory under the root
// holding at least one non-test .go file, skipping testdata, hidden,
// and underscore-prefixed directories.
func (l *Loader) ModulePackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, derr := os.ReadDir(p)
		if derr != nil {
			return derr
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, rerr := filepath.Rel(l.ModuleRoot, p)
				if rerr != nil {
					return rerr
				}
				if rel == "." {
					out = append(out, l.ModulePath)
				} else {
					out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	return out, err
}
