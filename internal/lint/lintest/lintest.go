// Package lintest is the analysistest-style harness for the cqalint
// analyzers: it type-checks a testdata corpus directory, runs one
// analyzer over it, and matches the diagnostics against `// want "re"`
// comments in the corpus, in both directions — a want with no matching
// diagnostic fails, and a diagnostic with no matching want fails.
package lintest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cqa/internal/lint"
	"cqa/internal/lint/analysis"
	"cqa/internal/lint/load"
)

// expectation is one parsed `// want "re"` comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run type-checks dir and checks analyzer's findings against the
// corpus's want comments. Findings from the driver itself (malformed
// allow directives, analyzer name "cqalint") participate too, so
// corpora can assert on directive errors.
func Run(t *testing.T, dir string, analyzer *analysis.Analyzer) {
	t.Helper()
	l, err := load.Shared()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	findings, err := lint.RunPackage(l.Fset, pkg, []*analysis.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("run %s: %v", analyzer.Name, err)
	}
	wants := collectWants(t, l, pkg)

	for _, f := range findings {
		if !claim(wants, f.Pos.Filename, f.Pos.Line, f.Message) {
			t.Errorf("unexpected finding at %s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unhit expectation at file:line whose regexp
// matches message.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants parses the corpus's want comments. Each comment may carry
// several quoted regexps: `// want "a" "b"`.
func collectWants(t *testing.T, l *load.Loader, pkg *load.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				for _, q := range splitQuoted(rest) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted splits `"a" "b c"` into its double-quoted Go string
// literals, quotes included, for strconv.Unquote.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		rest := s[start+1:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			out = append(out, s[start:])
			return out
		}
		out = append(out, s[start:start+1+end+1])
		s = rest[end+1:]
	}
}
