// Package analysis is a minimal, dependency-free implementation of the
// core golang.org/x/tools/go/analysis driver API: an Analyzer is a named
// check with a Run function, a Pass hands it one type-checked package,
// and diagnostics are reported through the Pass.
//
// The container this repo builds in has no module proxy access and no
// vendored x/tools, so the real framework cannot be imported; this shim
// keeps the same shape (Analyzer{Name, Doc, Run}, Pass.Reportf) so the
// cqalint analyzers port to the upstream API mechanically if the
// dependency ever becomes available. Facts, SuggestedFixes, and
// cross-analyzer Requires are intentionally out of scope — none of the
// cqalint analyzers need them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// `//cqalint:allow <name> <reason>` suppression directives.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers a diagnostic to the driver (which applies the
	// suppression directives before surfacing it).
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
