// Package lint is the cqalint driver: it owns the analyzer registry,
// expands package patterns, runs every analyzer over every loaded
// package, and applies the `//cqalint:allow` suppression directives to
// the raw diagnostics. The cmd/cqalint binary and the in-tree test
// suites are both thin wrappers over Run/RunPackage.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"cqa/internal/lint/analysis"
	"cqa/internal/lint/atomicpublish"
	"cqa/internal/lint/ctxpropagate"
	"cqa/internal/lint/internedmut"
	"cqa/internal/lint/load"
	"cqa/internal/lint/nolockbuild"
	"cqa/internal/lint/statscounter"
	"cqa/internal/lint/suppress"
)

// Analyzers returns the full cqalint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		internedmut.Analyzer,
		ctxpropagate.Analyzer,
		atomicpublish.Analyzer,
		nolockbuild.Analyzer,
		statscounter.Analyzer,
	}
}

// Finding is one surfaced diagnostic (post-suppression).
type Finding struct {
	// Analyzer is the reporting analyzer's name ("cqalint" for driver
	// findings such as malformed allow directives).
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run expands patterns (import paths, or "./..." for the whole module),
// loads each package, and applies analyzers. Findings come back sorted
// by position.
func Run(l *load.Loader, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var paths []string
	for _, pat := range patterns {
		switch pat {
		case "./...", "...":
			all, err := l.ModulePackages()
			if err != nil {
				return nil, err
			}
			paths = append(paths, all...)
		case ".":
			paths = append(paths, l.ModulePath)
		default:
			p := strings.TrimPrefix(pat, "./")
			if !strings.HasPrefix(p, l.ModulePath) {
				p = l.ModulePath + "/" + p
			}
			paths = append(paths, p)
		}
	}
	var findings []Finding
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		fs, err := RunPackage(l.Fset, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

// RunPackage applies analyzers to one loaded package, filtering the raw
// diagnostics through the package's allow directives and appending any
// malformed directives as "cqalint" findings.
func RunPackage(fset *token.FileSet, pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	sup := suppress.Collect(fset, pkg.Files, known)

	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if sup.Suppressed(pass.Analyzer.Name, pos.Filename, pos.Line) {
				return
			}
			findings = append(findings, Finding{Analyzer: pass.Analyzer.Name, Pos: pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	for _, e := range sup.Errors() {
		findings = append(findings, Finding{Analyzer: "cqalint", Pos: fset.Position(e.Pos), Message: e.Message})
	}
	sortFindings(findings)
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
