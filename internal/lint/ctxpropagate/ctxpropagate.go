// Package ctxpropagate flags dropped contexts on the evaluation path.
//
// Every long-running entry point in the engine has a context-aware twin
// (Execute/ExecuteCtx, IsCertain/IsCertainCtx, SolveAssuming/
// SolveAssumingCtx, ...); the serving layer's deadlines, two-lane
// admission control, and queue shedding only work because the context
// is threaded from the HTTP handler down to the SAT search loop. A
// function that holds a context but calls a callee's context-free form
// when a ...Ctx twin exists silently detaches everything below it from
// the caller's deadline — exactly the failure the admission-control
// soak cannot catch unless the dropped call happens to run long.
//
// The analyzer applies inside the evaluation-path packages (matched by
// package name: cqa, plan, fixpoint, nl, conp, sat, server): within any
// function (or closure chain) that has a context.Context parameter, a
// call to X is flagged when an XCtx sibling exists — same receiver type
// for methods, same package for functions — whose first parameter is a
// context.Context. The context-free wrappers themselves (which have no
// ctx parameter) are exempt by construction.
package ctxpropagate

import (
	"go/ast"
	"go/types"
	"strings"

	"cqa/internal/lint/analysis"
	"cqa/internal/lint/typeutil"
)

// Analyzer flags context-free calls with available contexts.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpropagate",
	Doc:  "in eval-path packages, a function holding a context.Context must call the ...Ctx twin when one exists",
	Run:  run,
}

// evalPkgNames are the evaluation-path packages the deadline contract
// covers, matched by package name so test corpora (and future renames
// of the import path) participate.
var evalPkgNames = map[string]bool{
	"cqa":      true,
	"plan":     true,
	"fixpoint": true,
	"nl":       true,
	"conp":     true,
	"sat":      true,
	"server":   true,
}

func run(pass *analysis.Pass) (any, error) {
	if !evalPkgNames[pass.Pkg.Name()] {
		return nil, nil
	}
	for _, f := range pass.Files {
		// Track the function-literal nesting: a closure inherits the
		// enclosing function's context (it captures it), so the check is
		// "any enclosing func has a ctx parameter".
		var stack []ast.Node
		hasCtx := func() bool {
			for _, n := range stack {
				var ft *ast.FuncType
				switch fn := n.(type) {
				case *ast.FuncDecl:
					ft = fn.Type
				case *ast.FuncLit:
					ft = fn.Type
				default:
					continue
				}
				if funcTypeHasCtx(pass, ft) {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if call, ok := n.(*ast.CallExpr); ok && hasCtx() {
				checkCall(pass, call)
			}
			return true
		})
	}
	return nil, nil
}

// funcTypeHasCtx reports whether ft declares a context.Context
// parameter.
func funcTypeHasCtx(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && typeutil.IsContext(t) {
			return true
		}
	}
	return false
}

// checkCall flags call if its callee has a context-aware twin.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || strings.HasSuffix(fn.Name(), "Ctx") {
		return
	}
	twin := findTwin(fn)
	if twin == nil {
		return
	}
	sig, ok := twin.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 || !typeutil.IsContext(sig.Params().At(0).Type()) {
		return
	}
	pass.Reportf(call.Pos(), "%s drops the caller's context; use the context-aware twin %s so deadlines and cancellation propagate", fn.Name(), twin.Name())
}

// findTwin looks for fn's ...Ctx sibling: a method on the same named
// receiver type, or a function in the same package scope.
func findTwin(fn *types.Func) *types.Func {
	want := fn.Name() + "Ctx"
	if recv := typeutil.RecvNamed(fn); recv != nil {
		for i := 0; i < recv.NumMethods(); i++ {
			if m := recv.Method(i); m.Name() == want {
				return m
			}
		}
		if iface, ok := recv.Underlying().(*types.Interface); ok {
			for i := 0; i < iface.NumMethods(); i++ {
				if m := iface.Method(i); m.Name() == want {
					return m
				}
			}
		}
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// Method on an unnamed receiver (interface literal): no scope to
		// search.
		return nil
	}
	twin, _ := fn.Pkg().Scope().Lookup(want).(*types.Func)
	return twin
}
