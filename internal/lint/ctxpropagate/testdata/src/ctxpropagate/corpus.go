// Package server is the ctxpropagate analyzer test corpus. The package
// is named server so it falls inside the analyzer's evaluation-path
// package set; it exercises the method twin, the package-function twin,
// the context-free wrapper exemption, closures, a false twin whose
// first parameter is not a context, and the allow directive.
package server

import "context"

type engine struct{}

func (e *engine) Solve() int { return e.SolveCtx(context.Background()) }

func (e *engine) SolveCtx(ctx context.Context) int {
	_ = ctx
	return 0
}

func run() {}

func runCtx(ctx context.Context) { _ = ctx }

func begin() {}

// beginCtx is not a context twin: its first parameter is not a
// context.Context.
func beginCtx(n int) { _ = n }

func dropsBoth(ctx context.Context, e *engine) int {
	run() // want "drops the caller's context"
	runCtx(ctx)
	return e.Solve() // want "drops the caller's context"
}

func insideClosure(ctx context.Context, e *engine) func() int {
	_ = ctx
	return func() int {
		return e.Solve() // want "drops the caller's context"
	}
}

func notATwin(ctx context.Context) {
	_ = ctx
	begin()
}

// wrapper has no context parameter, so calling the context-free form is
// the wrapper pattern, not a dropped context.
func wrapper(e *engine) int {
	run()
	return e.Solve()
}

func suppressedDrop(ctx context.Context, e *engine) int {
	_ = ctx
	//cqalint:allow ctxpropagate corpus fixture proving the allow directive filters this finding
	return e.Solve()
}
