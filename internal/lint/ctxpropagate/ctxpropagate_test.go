package ctxpropagate_test

import (
	"testing"

	"cqa/internal/lint/ctxpropagate"
	"cqa/internal/lint/lintest"
)

func TestCtxPropagate(t *testing.T) {
	lintest.Run(t, "testdata/src/ctxpropagate", ctxpropagate.Analyzer)
}
