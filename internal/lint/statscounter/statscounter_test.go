package statscounter_test

import (
	"testing"

	"cqa/internal/lint/lintest"
	"cqa/internal/lint/statscounter"
)

func TestStatsCounter(t *testing.T) {
	lintest.Run(t, "testdata/src/statscounter", statscounter.Analyzer)
}
