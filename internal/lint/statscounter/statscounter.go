// Package statscounter checks the observability contract of the Stats
// snapshot tree.
//
// The engine's counters live in two layers: hot-path counters are plain
// or atomic words updated by the workers, and the exported `...Stats`
// structs (cqa.Stats, PlanStats, MemoStats, fixpoint.ParallelStats,
// server.RouterStats, ...) are read-only snapshots assembled from those
// words and serialized to JSON by the serve daemon's /stats endpoint.
// Two things silently break that contract:
//
//   - an exported snapshot field without a json tag: the field compiles,
//     tests pass, and the dashboard simply never sees it (or sees it
//     under an unstable Go-spelled key);
//   - a plain `++` / `+= n` on an exported snapshot field: snapshots are
//     assembled, not incremented — a direct increment means some code
//     path is using the snapshot struct as the live counter, racing every
//     concurrent Stats() reader.
//
// Rule A therefore requires: in a struct type whose name ends in
// "Stats" and that has at least one json-tagged field, every exported
// non-embedded field carries a json tag. Rule B flags ++, --, and
// op-assignments (+=, -=, |=, ...) targeting exported fields of any
// json-tagged ...Stats struct, in any package that can reach one.
package statscounter

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"cqa/internal/lint/analysis"
	"cqa/internal/lint/typeutil"
)

// Analyzer checks json tags and increment discipline on Stats structs.
var Analyzer = &analysis.Analyzer{
	Name: "statscounter",
	Doc:  "exported fields of ...Stats snapshot structs carry json tags and are assembled, never incremented in place",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	// Rule A: locally declared ...Stats struct types.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || !strings.HasSuffix(tn.Name(), "Stats") {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || !hasJSONTag(st) {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() || f.Embedded() {
				continue
			}
			if _, ok := reflect.StructTag(st.Tag(i)).Lookup("json"); !ok {
				pass.Reportf(f.Pos(), "exported field %s.%s has no json tag; every exported field of a Stats snapshot must serialize under a stable key", tn.Name(), f.Name())
			}
		}
	}

	// Rule B: in-place increments of snapshot fields, wherever the
	// struct was declared.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.IncDecStmt:
				checkIncrement(pass, s.X, s.Tok)
			case *ast.AssignStmt:
				switch s.Tok {
				case token.ASSIGN, token.DEFINE:
				default:
					for _, lh := range s.Lhs {
						checkIncrement(pass, lh, s.Tok)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkIncrement flags lhs when it selects an exported field of a
// json-tagged ...Stats struct.
func checkIncrement(pass *analysis.Pass, lhs ast.Expr, tok token.Token) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || !sel.Sel.IsExported() {
		return
	}
	named := typeutil.Named(pass.TypesInfo.TypeOf(sel.X))
	if named == nil || !strings.HasSuffix(named.Obj().Name(), "Stats") {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || !hasJSONTag(st) {
		return
	}
	pass.Reportf(lhs.Pos(), "%s on snapshot field %s.%s; Stats structs are assembled read-only snapshots — keep the live counter atomic and copy it in during assembly", tok, named.Obj().Name(), sel.Sel.Name)
}

// hasJSONTag reports whether any field of st carries a json tag.
func hasJSONTag(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if _, ok := reflect.StructTag(st.Tag(i)).Lookup("json"); ok {
			return true
		}
	}
	return false
}
