// Package statsdata is the statscounter analyzer test corpus: Stats
// snapshot structs with any json-tagged field must tag every exported
// field (Rule A), and exported snapshot fields are assembled, never
// incremented in place (Rule B).
package statsdata

type QueryStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Errors int64 // want "exported field QueryStats.Errors has no json tag"
	local  int
}

// internalStats has no json tags at all, so Rule A does not apply: it is
// a working struct, not a serialized snapshot.
type internalStats struct {
	a int
	b int
}

type baseStats struct {
	N int64 `json:"n"`
}

// WrapStats embeds baseStats; the embedded field itself needs no tag.
type WrapStats struct {
	baseStats
	M int64 `json:"m"`
}

func recordBad(s *QueryStats) {
	s.Hits++      // want "on snapshot field QueryStats.Hits"
	s.Misses += 2 // want "on snapshot field QueryStats.Misses"
	s.local++     // unexported: live counter fields are allowed
}

func assemble(hits, misses int64, w *internalStats) QueryStats {
	w.a++
	w.b += 3
	return QueryStats{Hits: hits, Misses: misses}
}

func assignOK(s *QueryStats, n int64) {
	s.Hits = n
}

func suppressedInc(s *QueryStats) {
	//cqalint:allow statscounter corpus fixture proving the allow directive filters this finding
	s.Hits++
}
