package atomicpublish_test

import (
	"testing"

	"cqa/internal/lint/atomicpublish"
	"cqa/internal/lint/lintest"
)

func TestAtomicPublish(t *testing.T) {
	lintest.Run(t, "testdata/src/atomicpublish", atomicpublish.Analyzer)
}
