// Package atomicpublish flags struct fields that are accessed both
// through sync/atomic operations and through plain reads or writes.
//
// The engine's publication protocol depends on fields having exactly
// one access discipline: the snapshot publish CAS, the build-once memo
// flags, and the admission counters are all correct only because every
// access goes through sync/atomic. A field that is atomic in one place
// and plain in another has no happens-before edge between the two
// sides — the plain side can observe a torn or stale value, and the
// race detector only trips if a soak happens to interleave the two.
// The safe patterns are (a) the typed atomics (atomic.Uint64,
// atomic.Pointer, ...), which make plain access impossible, or (b)
// address-taken sync/atomic calls on every access.
//
// The analyzer is package-local and two-pass: pass one records every
// struct field whose address is passed to a sync/atomic function, pass
// two reports every other (plain) use of those fields. Fields of the
// typed atomic wrappers need no checking and get none.
package atomicpublish

import (
	"go/ast"
	"go/token"
	"go/types"

	"cqa/internal/lint/analysis"
)

// Analyzer flags mixed atomic/plain field access.
var Analyzer = &analysis.Analyzer{
	Name: "atomicpublish",
	Doc:  "a field accessed via sync/atomic must never also be read or written plainly",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	// Pass 1: fields used as &x.f arguments to sync/atomic calls, plus
	// the exact selector nodes of those uses (so pass 2 can skip them).
	atomicFields := make(map[*types.Var]token.Pos)
	atomicUses := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Methods of the typed atomics (atomic.Uint64.Add, ...)
				// are safe by construction; only the address-taking
				// package-level functions create a mixed-access hazard.
				return true
			}
			ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				return true
			}
			fieldSel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fld := fieldVar(pass, fieldSel); fld != nil {
				if _, seen := atomicFields[fld]; !seen {
					atomicFields[fld] = ue.Pos()
				}
				atomicUses[fieldSel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Pass 2: any other use of those fields is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUses[sel] {
				return true
			}
			fld := fieldVar(pass, sel)
			if fld == nil {
				return true
			}
			if firstAtomic, ok := atomicFields[fld]; ok {
				pass.Reportf(sel.Pos(), "plain access of field %s, which is accessed atomically at %s; mixed access has no happens-before edge (use sync/atomic everywhere, or an atomic.%s-style typed field)",
					fld.Name(), pass.Fset.Position(firstAtomic), suggestedType(fld))
			}
			return true
		})
	}
	return nil, nil
}

// fieldVar resolves sel to the struct field it selects, or nil.
func fieldVar(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		if s, ok := pass.TypesInfo.Selections[sel]; ok {
			obj = s.Obj()
		}
	}
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// suggestedType names the typed atomic matching the field's type, for
// the diagnostic.
func suggestedType(fld *types.Var) string {
	if b, ok := fld.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		}
	}
	return "Value"
}
