// Package atomicdata is the atomicpublish analyzer test corpus: fields
// reached by address-taking sync/atomic calls must have no plain reads
// or writes anywhere in the package; typed atomics and never-atomic
// fields stay exempt.
package atomicdata

import "sync/atomic"

type counters struct {
	hits  uint64
	flag  uint32
	plain int
	typed atomic.Uint64
}

func (c *counters) record() {
	atomic.AddUint64(&c.hits, 1)
	atomic.StoreUint32(&c.flag, 1)
	c.typed.Add(1)
	c.plain++
}

func (c *counters) mixed() uint64 {
	c.hits++         // want "plain access of field hits"
	if c.flag == 1 { // want "plain access of field flag"
		return c.hits // want "plain access of field hits"
	}
	return atomic.LoadUint64(&c.hits)
}

func (c *counters) cleanReads() (int, uint64) {
	return c.plain, c.typed.Load()
}

func (c *counters) suppressedRead() uint64 {
	//cqalint:allow atomicpublish corpus fixture proving the allow directive filters this finding
	return c.hits
}
