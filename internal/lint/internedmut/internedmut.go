// Package internedmut flags mutations of memory reachable from an
// interned instance snapshot outside the instance package.
//
// The contract (internal/instance doc comment): pointer identity of a
// *instance.Interned names one immutable instance state, and every
// accessor view an Instance or Interned hands out — Adom, Facts,
// Blocks, Relations, Consts, RelBlocks, Block, Out — is a shared,
// memoized slice that must not be modified. Every solver tier and every
// per-snapshot memo keys on that immutability; a single in-place sort
// or element write corrupts a warm artifact for every concurrent
// reader of the same snapshot.
//
// The analyzer runs a per-function forward taint pass: values produced
// by the shared-view accessors (or derived from them by indexing,
// slicing, or ranging) are tainted, and a write sink on a tainted value
// — element assignment, in-place sort, copy-into, or append (which may
// write the shared backing array when spare capacity exists) — is a
// finding. The instance package itself is exempt: it is the
// construction scope, where snapshots are built before publication.
package internedmut

import (
	"go/ast"
	"go/types"

	"cqa/internal/lint/analysis"
	"cqa/internal/lint/typeutil"
)

// Analyzer flags writes to shared snapshot memory.
var Analyzer = &analysis.Analyzer{
	Name: "internedmut",
	Doc:  "flag mutation of slices reachable from an interned instance snapshot outside the instance package",
	Run:  run,
}

const instancePath = "cqa/internal/instance"

// sharedViews lists the accessor methods whose results alias snapshot
// memory, per receiver type in the instance package.
var sharedViews = map[string]map[string]bool{
	"Interned": {"Consts": true, "RelBlocks": true, "Block": true},
	"Instance": {"Facts": true, "Adom": true, "Relations": true, "Blocks": true, "Block": true, "Out": true},
}

// sortFuncs are the in-place sorts of package sort that make a write
// sink out of their first argument.
var sortFuncs = map[string]bool{
	"Slice": true, "SliceStable": true, "Strings": true, "Ints": true, "Float64s": true, "Sort": true, "Stable": true,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "instance" {
		// Construction scope: snapshots are assembled here before they
		// are published; the immutability contract starts at publish.
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil, nil
}

// checkFunc runs the taint pass over one function body (closures
// included: a captured tainted variable stays tainted inside them).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)

	var taintedExpr func(e ast.Expr) bool
	taintedExpr = func(e ast.Expr) bool {
		switch v := e.(type) {
		case *ast.Ident:
			return tainted[pass.TypesInfo.ObjectOf(v)]
		case *ast.CallExpr:
			return isSharedViewCall(pass, v)
		case *ast.SelectorExpr:
			// InternedBlock.Vals aliases the snapshot's interned value
			// ids; outside the instance package the only way to hold an
			// InternedBlock is to have read it from a snapshot.
			if v.Sel.Name == "Vals" && typeutil.IsNamed(typeOf(pass, v.X), instancePath, "InternedBlock") {
				return true
			}
			return false
		case *ast.IndexExpr:
			return taintedExpr(v.X)
		case *ast.SliceExpr:
			return taintedExpr(v.X)
		case *ast.ParenExpr:
			return taintedExpr(v.X)
		}
		return false
	}

	report := func(pos ast.Node, what string) {
		pass.Reportf(pos.Pos(), "%s a slice reachable from an interned snapshot view; snapshot memory is immutable after publication (copy it first)", what)
	}

	checkWrite := func(lhs ast.Expr) {
		switch t := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			if taintedExpr(t.X) {
				report(t, "writes an element of")
			}
		case *ast.SelectorExpr:
			if taintedExpr(t) || taintedExpr(t.X) {
				report(t, "writes a field of")
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lh := range s.Lhs {
				checkWrite(lh)
			}
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					id, ok := s.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.TypesInfo.ObjectOf(id)
					if obj == nil {
						continue
					}
					if taintedExpr(s.Rhs[i]) {
						tainted[obj] = true
					} else {
						delete(tainted, obj)
					}
				}
			}
		case *ast.RangeStmt:
			if taintedExpr(s.X) {
				if id, ok := s.Value.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						tainted[obj] = true
					}
				}
			}
		case *ast.IncDecStmt:
			checkWrite(s.X)
		case *ast.CallExpr:
			checkCallSinks(pass, s, taintedExpr, report)
		}
		return true
	})
}

// checkCallSinks flags calls that mutate their argument in place.
func checkCallSinks(pass *analysis.Pass, call *ast.CallExpr, taintedExpr func(ast.Expr) bool, report func(ast.Node, string)) {
	if len(call.Args) == 0 {
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "copy":
				if taintedExpr(call.Args[0]) {
					report(call, "copies into")
				}
			case "append":
				if taintedExpr(call.Args[0]) {
					report(call, "appends to")
				}
			}
		}
	case *ast.SelectorExpr:
		fn := typeutil.Callee(pass.TypesInfo, call)
		if fn != nil && sortFuncs[fn.Name()] && typeutil.IsPkgFunc(fn, "sort", fn.Name()) && taintedExpr(call.Args[0]) {
			report(call, "sorts in place")
		}
	}
}

// isSharedViewCall reports whether call invokes a shared-view accessor
// of the instance package.
func isSharedViewCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	recv := typeutil.RecvNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != instancePath {
		return false
	}
	return sharedViews[recv.Obj().Name()][fn.Name()]
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	return pass.TypesInfo.TypeOf(e)
}
