// Package internedmutdata is the internedmut analyzer test corpus: it
// exercises every taint source (shared-view accessors, InternedBlock.
// Vals, range and assignment propagation) and every write sink (element
// write, in-place sort, copy-into, append-to), plus the clean patterns
// and the allow directive.
package internedmutdata

import (
	"sort"

	"cqa/internal/instance"
)

func writesElement(iv *instance.Interned) {
	c := iv.Consts()
	c[0] = "mutated" // want "writes an element of"
}

func writesViaCall(db *instance.Instance) {
	db.Adom()[0] = "mutated" // want "writes an element of"
}

func sortsView(db *instance.Instance) {
	sort.Strings(db.Adom()) // want "sorts in place"
}

func sortsLocal(db *instance.Instance) {
	a := db.Relations()
	sort.Strings(a) // want "sorts in place"
}

func copiesInto(db *instance.Instance) {
	a := db.Adom()
	copy(a, []string{"x"}) // want "copies into"
}

func appendsTo(db *instance.Instance) []string {
	return append(db.Relations(), "r") // want "appends to"
}

func writesVals(iv *instance.Interned) {
	bs := iv.RelBlocks(0)
	bs[0].Vals[0] = 1 // want "writes an element of"
}

func rangeTaint(iv *instance.Interned) {
	for _, b := range iv.RelBlocks(0) {
		b.Vals[0] = 1 // want "writes an element of"
	}
}

func sliceTaint(db *instance.Instance) {
	tail := db.Adom()[1:]
	tail[0] = "mutated" // want "writes an element of"
}

func copyFirst(db *instance.Instance) {
	a := append([]string(nil), db.Adom()...)
	sort.Strings(a)
	a[0] = "x"
}

func reassigned(db *instance.Instance) {
	a := db.Adom()
	a = []string{"fresh"}
	a[0] = "x"
}

func readsOnly(iv *instance.Interned, db *instance.Instance) int {
	n := len(iv.Consts())
	for _, b := range iv.RelBlocks(0) {
		n += len(b.Vals)
	}
	return n + len(db.Facts())
}

func suppressedWrite(iv *instance.Interned) {
	c := iv.Consts()
	//cqalint:allow internedmut corpus fixture proving the allow directive filters this finding
	c[0] = "ok"
}
