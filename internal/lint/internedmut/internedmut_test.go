package internedmut_test

import (
	"testing"

	"cqa/internal/lint/internedmut"
	"cqa/internal/lint/lintest"
)

func TestInternedMut(t *testing.T) {
	lintest.Run(t, "testdata/src/internedmut", internedmut.Analyzer)
}
