// Package typeutil holds the small go/types helpers shared by the
// cqalint analyzers.
package typeutil

import (
	"go/ast"
	"go/types"
)

// Callee returns the static *types.Func a call resolves to, or nil for
// dynamic calls, conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// Deref unwraps one level of pointer (and any alias chains).
func Deref(t types.Type) types.Type {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	return t
}

// Named returns the (alias-resolved, pointer-dereferenced) named type
// of t, or nil. For instantiated generics it returns the origin type.
func Named(t types.Type) *types.Named {
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return nil
	}
	return n.Origin()
}

// IsNamed reports whether t (possibly behind a pointer or alias) is the
// named type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := Named(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// RecvNamed returns the named type of fn's receiver, or nil for
// package-level functions and receivers of unnamed type.
func RecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return Named(sig.Recv().Type())
}

// IsMethod reports whether fn is the method pkgPath.(recvName).name.
func IsMethod(fn *types.Func, pkgPath, recvName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	n := RecvNamed(fn)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == recvName
}

// IsPkgFunc reports whether fn is the package-level function
// pkgPath.name.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool { return IsNamed(t, "context", "Context") }
