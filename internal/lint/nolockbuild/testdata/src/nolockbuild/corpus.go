// Package lockdata is the nolockbuild analyzer test corpus: blocking
// operations under an exclusive lock (channel ops, nested or repeated
// acquisition, known blocking callees, plan compiles, memo builds,
// locking same-package helpers, dynamic calls) are findings; read-lock
// sections, released locks, goroutine bodies, and non-blocking selects
// stay exempt.
package lockdata

import (
	"sync"
	"time"

	"cqa/internal/memo"
	"cqa/internal/plan"
	"cqa/internal/words"
)

type guarded struct {
	mu    sync.Mutex
	other sync.Mutex
	rw    sync.RWMutex
	ch    chan int
	wg    sync.WaitGroup
	m     *memo.LRU[string, int]
}

func (g *guarded) sendUnderLock() {
	g.mu.Lock()
	g.ch <- 1 // want "channel send while holding g.mu"
	g.mu.Unlock()
}

func (g *guarded) recvUnderLock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want "channel receive while holding g.mu"
}

func (g *guarded) nestedLock() {
	g.mu.Lock()
	g.other.Lock() // want "acquires g.other while holding g.mu"
	g.other.Unlock()
	g.mu.Unlock()
}

func (g *guarded) selfDeadlock() {
	g.mu.Lock()
	g.mu.Lock() // want "re-acquires g.mu"
	g.mu.Unlock()
}

func (g *guarded) sleeps() {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding g.mu"
}

func (g *guarded) waits() {
	g.mu.Lock()
	g.wg.Wait() // want "sync.Wait while holding g.mu"
	g.mu.Unlock()
}

func (g *guarded) compiles() *plan.Plan {
	g.mu.Lock()
	defer g.mu.Unlock()
	return plan.Compile(words.Word{"R", "S"}) // want "plan.Compile while holding g.mu"
}

func (g *guarded) memoBuild() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.m.Get("k", func() int { return 1 }) // want "memo build entry point Get while holding g.mu"
}

func (g *guarded) dynamic(f func()) {
	g.mu.Lock()
	f() // want "dynamic call through a function value while holding g.mu"
	g.mu.Unlock()
}

func (g *guarded) blockingSelect() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want "blocking select"
	case v := <-g.ch:
		return v
	}
}

func (g *guarded) nonBlockingSelect() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case g.ch <- 1:
	default:
	}
}

func (g *guarded) lockingHelper() {
	g.other.Lock()
	g.other.Unlock()
}

func (g *guarded) callsLockingHelper() {
	g.mu.Lock()
	g.lockingHelper() // want "calls lockingHelper, which acquires a lock"
	g.mu.Unlock()
}

func (g *guarded) readLockOnly() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return <-g.ch
}

func (g *guarded) releasedFirst() {
	g.mu.Lock()
	g.mu.Unlock()
	g.ch <- 1
}

func (g *guarded) spawns() {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		g.ch <- 1
	}()
}

func (g *guarded) pureHelper() int { return 2 }

func (g *guarded) callsPureHelper() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pureHelper() + len("x") + int(int64(1))
}

func (g *guarded) suppressedSend() {
	g.mu.Lock()
	//cqalint:allow nolockbuild corpus fixture proving the allow directive filters this finding
	g.ch <- 1
	g.mu.Unlock()
}
