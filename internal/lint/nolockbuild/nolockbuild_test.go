package nolockbuild_test

import (
	"testing"

	"cqa/internal/lint/lintest"
	"cqa/internal/lint/nolockbuild"
)

func TestNoLockBuild(t *testing.T) {
	lintest.Run(t, "testdata/src/nolockbuild", nolockbuild.Analyzer)
}
