// Package nolockbuild flags potentially blocking work inside exclusive
// critical sections.
//
// The memo, router, and registry locks are all designed as short
// metadata locks: builds run outside the memo lock (memo.LRU.run), plan
// compilation runs outside the engine cache lock (Engine.compileEntry),
// and the serve daemon's admission path never blocks while holding the
// drain lock. One blocking call introduced under any of these locks
// serializes the whole engine — or deadlocks it, if the callee ever
// takes the same lock. Nothing but convention enforces this today; this
// analyzer encodes the convention.
//
// Within a function, the analyzer tracks sync.Mutex/RWMutex critical
// sections syntactically (x.Lock() ... x.Unlock(), or x.Lock() with a
// deferred unlock). While at least one EXCLUSIVE lock is held (RLock
// sections are exempt — evaluating under a registry read lock is the
// serving design), it flags:
//
//   - acquiring any other lock (lock-order inversion risk), or the
//     same lock again (guaranteed self-deadlock);
//   - channel sends and receives (blocking handoffs), except inside a
//     select that has a default clause;
//   - known expensive or blocking callees: plan.Compile, the memo
//     build entry points (LRU.Get / LRU.GetOrRepair), sync.WaitGroup.
//     Wait, sync.Cond.Wait, sync.Once.Do, and time.Sleep;
//   - same-package callees whose body acquires any lock (a one-level
//     call-graph check);
//   - dynamic calls through function values, whose callee the analyzer
//     cannot see (these are rare on the hot paths and each one deserves
//     either restructuring or an explicit allow directive).
//
// Goroutine launches and closure bodies are not attributed to the
// critical section (they run elsewhere). Intentional exceptions carry a
// `//cqalint:allow nolockbuild <reason>` directive — that directive is
// the allowlist, and the reason is mandatory.
package nolockbuild

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"cqa/internal/lint/analysis"
	"cqa/internal/lint/typeutil"
)

// Analyzer flags blocking calls under exclusive locks.
var Analyzer = &analysis.Analyzer{
	Name: "nolockbuild",
	Doc:  "no potentially blocking call (other locks, channel ops, plan compiles, memo builds) while holding an exclusive lock",
	Run:  run,
}

// heldLock is one acquired lock in the current critical section.
type heldLock struct {
	key  string // rendered receiver expression, e.g. "e.mu"
	excl bool
}

type checker struct {
	pass *analysis.Pass
	// locksIn marks same-package functions whose body acquires a lock.
	locksIn map[*types.Func]bool
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, locksIn: make(map[*types.Func]bool)}
	// Pre-pass: which functions of this package acquire locks at all.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			acquires := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if _, kind := c.lockCall(call); kind == "Lock" || kind == "RLock" {
						acquires = true
					}
				}
				return !acquires
			})
			if acquires {
				c.locksIn[obj] = true
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.walkStmts(fd.Body.List, nil)
			}
		}
	}
	return nil, nil
}

// lockCall classifies call as a sync.Mutex/RWMutex lock operation,
// returning the receiver expression and the method name ("Lock",
// "RLock", "Unlock", "RUnlock"), or kind == "" for anything else.
func (c *checker) lockCall(call *ast.CallExpr) (recv ast.Expr, kind string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	t := c.pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return nil, ""
	}
	if !typeutil.IsNamed(t, "sync", "Mutex") && !typeutil.IsNamed(t, "sync", "RWMutex") {
		return nil, ""
	}
	return sel.X, sel.Sel.Name
}

// render prints an expression as its lock key.
func (c *checker) render(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, c.pass.Fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

func exclusive(held []heldLock) (heldLock, bool) {
	for _, h := range held {
		if h.excl {
			return h, true
		}
	}
	return heldLock{}, false
}

// walkStmts walks a statement list tracking the held-lock state
// sequentially. Nested blocks analyze under a copy of the current
// state: locks they acquire (or release) do not leak out, a sound
// under-approximation for lint purposes.
func (c *checker) walkStmts(stmts []ast.Stmt, held []heldLock) {
	for _, st := range stmts {
		held = c.walkStmt(st, held)
	}
}

func (c *checker) walkStmt(st ast.Stmt, held []heldLock) []heldLock {
	nested := func(body *ast.BlockStmt) {
		if body != nil {
			c.walkStmts(body.List, append([]heldLock(nil), held...))
		}
	}
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, kind := c.lockCall(call); kind != "" {
				key := c.render(recv)
				switch kind {
				case "Lock", "RLock":
					if _, excl := exclusive(held); excl {
						c.checkAcquire(call, key, held)
					}
					return append(held, heldLock{key: key, excl: kind == "Lock"})
				case "Unlock", "RUnlock":
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].key == key {
							return append(append([]heldLock(nil), held[:i]...), held[i+1:]...)
						}
					}
					return held
				}
			}
		}
		c.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock held to function end, which is
		// the default for our sequential state — nothing to do. Other
		// deferred work runs at return, outside the tracked section.
	case *ast.GoStmt:
		// The goroutine body runs elsewhere; only the argument
		// expressions evaluate here.
		for _, a := range s.Call.Args {
			c.checkExpr(a, held)
		}
	case *ast.SendStmt:
		if h, excl := exclusive(held); excl {
			c.pass.Reportf(s.Pos(), "channel send while holding %s; a full receiver parks this goroutine inside the critical section", h.key)
		}
		c.checkExpr(s.Chan, held)
		c.checkExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			c.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, held)
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		nested(s.Body)
		if s.Else != nil {
			c.walkStmts([]ast.Stmt{s.Else}, append([]heldLock(nil), held...))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, held)
		}
		nested(s.Body)
	case *ast.RangeStmt:
		c.checkExpr(s.X, held)
		nested(s.Body)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cl.Body, append([]heldLock(nil), held...))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cl.Body, append([]heldLock(nil), held...))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok && cl.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			if h, excl := exclusive(held); excl {
				c.pass.Reportf(s.Pos(), "blocking select (no default clause) while holding %s", h.key)
			}
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.walkStmts(cl.Body, append([]heldLock(nil), held...))
			}
		}
	case *ast.BlockStmt:
		nested(s)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, held)
	}
	return held
}

// checkExpr inspects one expression for blocking operations while held
// locks include an exclusive one. Function-literal bodies are skipped:
// they execute elsewhere.
func (c *checker) checkExpr(e ast.Expr, held []heldLock) {
	h, excl := exclusive(held)
	if !excl {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				c.pass.Reportf(v.Pos(), "channel receive while holding %s; an empty channel parks this goroutine inside the critical section", h.key)
			}
		case *ast.CallExpr:
			if recv, kind := c.lockCall(v); kind != "" {
				if kind == "Lock" || kind == "RLock" {
					c.checkAcquire(v, c.render(recv), held)
				}
				return true
			}
			c.checkCall(v, h)
		}
		return true
	})
}

// checkAcquire reports acquiring key while other locks are held
// exclusively.
func (c *checker) checkAcquire(call *ast.CallExpr, key string, held []heldLock) {
	h, excl := exclusive(held)
	if !excl {
		return
	}
	for _, hl := range held {
		if hl.key == key {
			c.pass.Reportf(call.Pos(), "re-acquires %s, which is already held: guaranteed self-deadlock", key)
			return
		}
	}
	c.pass.Reportf(call.Pos(), "acquires %s while holding %s; nested locks under an exclusive section risk lock-order inversion", key, h.key)
}

// checkCall reports blocking callees invoked while h is held.
func (c *checker) checkCall(call *ast.CallExpr, h heldLock) {
	info := c.pass.TypesInfo
	// Conversions and builtins are never blocking.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return
		}
	}
	fn := typeutil.Callee(info, call)
	if fn == nil {
		c.pass.Reportf(call.Pos(), "dynamic call through a function value while holding %s; the callee is unverifiable and may block (restructure, or annotate with //cqalint:allow nolockbuild <reason>)", h.key)
		return
	}
	switch {
	case typeutil.IsPkgFunc(fn, "cqa/internal/plan", "Compile"):
		c.pass.Reportf(call.Pos(), "plan.Compile while holding %s; compilation (classification + DFA certification) must run outside locks (see Engine.compileEntry)", h.key)
	case typeutil.IsMethod(fn, "cqa/internal/memo", "LRU", "Get"),
		typeutil.IsMethod(fn, "cqa/internal/memo", "LRU", "GetOrRepair"):
		c.pass.Reportf(call.Pos(), "memo build entry point %s while holding %s; artifact builds run outside locks by contract", fn.Name(), h.key)
	case typeutil.IsMethod(fn, "sync", "WaitGroup", "Wait"),
		typeutil.IsMethod(fn, "sync", "Cond", "Wait"),
		typeutil.IsMethod(fn, "sync", "Once", "Do"),
		typeutil.IsPkgFunc(fn, "time", "Sleep"):
		c.pass.Reportf(call.Pos(), "%s.%s while holding %s", fn.Pkg().Name(), fn.Name(), h.key)
	case fn.Pkg() == c.pass.Pkg && c.locksIn[fn.Origin()]:
		c.pass.Reportf(call.Pos(), "calls %s, which acquires a lock, while holding %s; one level down this is a lock-order inversion or self-deadlock", fn.Name(), h.key)
	}
}
