// Package suppress implements the `//cqalint:allow <analyzer> <reason>`
// directive: a per-line opt-out of one analyzer with a mandatory
// justification. A directive applies to findings on its own line and on
// the line immediately below it (so it can sit on the flagged line or
// stand alone above it). A directive with no reason, or naming an
// analyzer that does not exist, is itself a finding — the acceptance
// bar is zero unexplained suppressions, enforced mechanically.
package suppress

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the directive comment prefix (directive-style, no space
// after //, which gofmt preserves).
const Prefix = "cqalint:allow"

// Directive is one parsed allow directive.
type Directive struct {
	Analyzer string
	Reason   string
	Pos      token.Pos
}

// Error is a malformed directive, reported by the driver under the
// pseudo-analyzer name "cqalint".
type Error struct {
	Pos     token.Pos
	Message string
}

// Set holds the directives of one package, indexed for filtering.
type Set struct {
	// byLine maps file name -> line -> directives in force on that line.
	byLine map[string]map[int][]Directive
	errs   []Error
}

// Collect parses the allow directives of files. known is the set of
// valid analyzer names; a directive naming anything else is recorded as
// an error.
func Collect(fset *token.FileSet, files []*ast.File, known map[string]bool) *Set {
	s := &Set{byLine: make(map[string]map[int][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+Prefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					s.errs = append(s.errs, Error{c.Pos(), "allow directive names no analyzer (want `//cqalint:allow <analyzer> <reason>`)"})
					continue
				}
				if !known[fields[0]] {
					s.errs = append(s.errs, Error{c.Pos(), "allow directive names unknown analyzer " + fields[0]})
					continue
				}
				if len(fields) < 2 {
					s.errs = append(s.errs, Error{c.Pos(), "allow directive for " + fields[0] + " has no reason; a justification is mandatory"})
					continue
				}
				d := Directive{Analyzer: fields[0], Reason: strings.Join(fields[1:], " "), Pos: c.Pos()}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]Directive)
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
				lines[pos.Line+1] = append(lines[pos.Line+1], d)
			}
		}
	}
	return s
}

// Suppressed reports whether a finding of the named analyzer at
// file:line is covered by a directive.
func (s *Set) Suppressed(analyzer, file string, line int) bool {
	for _, d := range s.byLine[file][line] {
		if d.Analyzer == analyzer {
			return true
		}
	}
	return false
}

// Errors returns the malformed directives found during Collect.
func (s *Set) Errors() []Error { return s.errs }
