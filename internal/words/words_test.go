package words

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseCompact(t *testing.T) {
	cases := []struct {
		in   string
		want Word
	}{
		{"", Word{}},
		{"R", Word{"R"}},
		{"RRX", Word{"R", "R", "X"}},
		{"RXRRR", Word{"R", "X", "R", "R", "R"}},
		{"R1XR2", Word{"R1", "X", "R2"}},
		{"TWITTER", Word{"T", "W", "I", "T", "T", "E", "R"}},
		{"AbcDe", Word{"Abc", "De"}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseSeparated(t *testing.T) {
	got := MustParse("R X R Y")
	if !got.Equal(Word{"R", "X", "R", "Y"}) {
		t.Errorf("got %v", got)
	}
	got = MustParse("TW.IT.TER")
	if !got.Equal(Word{"TW", "IT", "TER"}) {
		t.Errorf("got %v", got)
	}
	got = MustParse("A, B, A")
	if !got.Equal(Word{"A", "B", "A"}) {
		t.Errorf("got %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"rX", "1R", "R;X"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"RRX", "RXRRR", "ARRX", "RXRXRYRY"} {
		w := MustParse(s)
		if w.String() != s {
			t.Errorf("round trip %q -> %q", s, w.String())
		}
	}
	if (Word{}).String() != "ε" {
		t.Errorf("empty word should render as ε")
	}
	if MustParse("R1XR2").String() != "R1.X.R2" {
		t.Errorf("multi-char symbols should be dot separated, got %q", MustParse("R1XR2").String())
	}
}

func TestPrefixSuffixFactor(t *testing.T) {
	w := MustParse("RXRRR")
	if !w.HasPrefix(MustParse("RXR")) || w.HasPrefix(MustParse("RR")) {
		t.Error("HasPrefix wrong")
	}
	if !w.HasPrefix(Word{}) || !w.HasSuffix(Word{}) || !w.HasFactor(Word{}) {
		t.Error("ε must be prefix/suffix/factor of everything")
	}
	if !w.HasSuffix(MustParse("RRR")) || w.HasSuffix(MustParse("XR")) {
		t.Error("HasSuffix wrong")
	}
	if w.IndexFactor(MustParse("XRR")) != 1 {
		t.Errorf("IndexFactor = %d, want 1", w.IndexFactor(MustParse("XRR")))
	}
	if w.HasFactor(MustParse("RRRR")) {
		t.Error("RRRR is not a factor of RXRRR")
	}
	if MustParse("RX").HasPrefix(MustParse("RXR")) {
		t.Error("longer word cannot be a prefix")
	}
}

func TestRewindBasic(t *testing.T) {
	// uRvRw with u=ε, R=R, v=X, w=Y: RXRY -> RXRXRY.
	w := MustParse("RXRY")
	got := w.Rewind(0, 2)
	if !got.Equal(MustParse("RXRXRY")) {
		t.Errorf("Rewind = %v", got)
	}
}

func TestRewindTwitter(t *testing.T) {
	// From Section 1: TWITTER rewinds to TWI·TWI·TTER, TWIT·TWIT·TER
	// and TWI·T·T·TER.
	w := MustParse("TWITTER")
	// T occurs at 0, 3, 4; E, W, I, R occur once. Pairs:
	//   (0,3): u=ε v=WI  -> TWI·TWI·TTER  = TWITWITTER
	//   (0,4): u=ε v=WIT -> TWIT·TWIT·TER = TWITTWITTER
	//   (3,4): u=TWI v=ε -> TWI·T·T·TER   = TWITTTER
	want := map[string]bool{
		"TWITWITTER":  true,
		"TWITTWITTER": true,
		"TWITTTER":    true,
	}
	got := map[string]bool{}
	for _, r := range w.Rewinds() {
		got[r.String()] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Rewinds(TWITTER) = %v, want %v", got, want)
	}
}

func TestRewindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustParse("RX").Rewind(0, 1)
}

func TestSelfJoinPairs(t *testing.T) {
	w := MustParse("RXRRR")
	got := w.SelfJoinPairs()
	want := [][2]int{{0, 2}, {0, 3}, {0, 4}, {2, 3}, {2, 4}, {3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SelfJoinPairs = %v, want %v", got, want)
	}
	if n := len(MustParse("RXY").SelfJoinPairs()); n != 0 {
		t.Errorf("self-join-free word has %d pairs", n)
	}
}

func TestRewindClosureRRX(t *testing.T) {
	// L↬(RRX) is the language of RR(R)*X (Section 1 / Example 4).
	closure := MustParse("RRX").RewindClosure(8)
	seen := map[string]bool{}
	for _, w := range closure {
		seen[w.String()] = true
	}
	for _, want := range []string{"RRX", "RRRX", "RRRRX", "RRRRRX", "RRRRRRX", "RRRRRRRX"} {
		if !seen[want] {
			t.Errorf("missing %s from closure", want)
		}
	}
	if len(seen) != 6 {
		t.Errorf("closure has %d members, want 6: %v", len(seen), seen)
	}
}

func TestRewindClosureContainsOnlyRewindable(t *testing.T) {
	// Every non-initial member must be reachable by one rewind from some
	// member; spot check by re-deriving.
	w := MustParse("RXRY")
	members := w.RewindClosure(10)
	set := map[string]bool{}
	for _, m := range members {
		set[m.String()] = true
	}
	for _, m := range members {
		if m.Equal(w) {
			continue
		}
		// Find a parent: some word in the closure that rewinds to m.
		found := false
		for _, p := range members {
			for _, r := range p.Rewinds() {
				if r.Equal(m) {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("member %v has no parent", m)
		}
	}
}

func TestSymbolsAndSelfJoinFree(t *testing.T) {
	w := MustParse("RXRRR")
	if got := w.Symbols(); !reflect.DeepEqual(got, []string{"R", "X"}) {
		t.Errorf("Symbols = %v", got)
	}
	if w.IsSelfJoinFree() {
		t.Error("RXRRR is not self-join-free")
	}
	if !MustParse("RXY").IsSelfJoinFree() {
		t.Error("RXY is self-join-free")
	}
	if !(Word{}).IsSelfJoinFree() {
		t.Error("ε is self-join-free")
	}
}

func TestOccurrences(t *testing.T) {
	w := MustParse("RXRRR")
	if got := w.Occurrences("R"); !reflect.DeepEqual(got, []int{0, 2, 3, 4}) {
		t.Errorf("Occurrences(R) = %v", got)
	}
	if got := w.Occurrences("Z"); got != nil {
		t.Errorf("Occurrences(Z) = %v", got)
	}
}

func TestEpisodes(t *testing.T) {
	// Episodes of RXRRR: R at 0,2,3,4 -> (0,2),(2,3),(3,4).
	w := MustParse("RXRRR")
	got := w.Episodes()
	want := []Episode{{0, 2}, {2, 3}, {3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Episodes = %v, want %v", got, want)
	}
}

func TestRepeatingEpisodes(t *testing.T) {
	// Paper example after Definition 19: q = AMAA MAAMA MAAMAAMAB with
	// e1 = M..M at positions (4, 7)? We use the simpler spot checks:
	// In RRX, the episode R..R at (0,1) is right-repeating: tail "X"
	// prefix of (εR)^1 = R? No — u = ε, so period = R; "X" is not a
	// prefix of R^k. Left: ℓ = ε, trivially left-repeating.
	w := MustParse("RRX")
	e := Episode{0, 1}
	if w.IsRightRepeating(e) {
		t.Error("RRX episode (0,1) should not be right-repeating")
	}
	if !w.IsLeftRepeating(e) {
		t.Error("empty ℓ is trivially left-repeating")
	}
	// RXRXRY: episode R(0)..R(2): u=X, tail = XRY; period uR = XR;
	// XRY prefix of XRXR...? X,R,Y vs X,R,X -> no.
	w2 := MustParse("RXRXRY")
	if w2.IsRightRepeating(Episode{0, 2}) {
		t.Error("RXRXRY episode (0,2) should not be right-repeating (tail XRY)")
	}
	// episode R(2)..R(4): ℓ = RX, period Ru = RX: RX suffix of (RX)^2 ✓.
	if !w2.IsLeftRepeating(Episode{2, 4}) {
		t.Error("RXRXRY episode (2,4) should be left-repeating")
	}
}

func TestRepeatingLemmaOnC3Words(t *testing.T) {
	// Lemma 23: if q satisfies C3, every episode is left- or
	// right-repeating. Check on known C3 words.
	for _, s := range []string{"RRX", "RXRX", "RXRY", "RXRYRY", "RR", "RRR", "RXRXRX"} {
		w := MustParse(s)
		if !satisfiesC3ForTest(w) {
			t.Fatalf("%s should satisfy C3 (test setup)", s)
		}
		for _, e := range w.Episodes() {
			if !w.IsLeftRepeating(e) && !w.IsRightRepeating(e) {
				t.Errorf("%s: episode %v is neither left- nor right-repeating", s, e)
			}
		}
	}
}

// satisfiesC3ForTest is a local reimplementation of condition C3 used to
// keep this package free of a dependency on internal/classify.
func satisfiesC3ForTest(q Word) bool {
	for _, p := range q.SelfJoinPairs() {
		if !q.Rewind(p[0], p[1]).HasFactor(q) {
			return false
		}
	}
	return true
}

func randomWord(r *rand.Rand, alpha []string, maxLen int) Word {
	n := r.Intn(maxLen + 1)
	w := make(Word, n)
	for i := range w {
		w[i] = alpha[r.Intn(len(alpha))]
	}
	return w
}

func TestQuickRewindPreservesFactorProperty(t *testing.T) {
	// Property: for any word q and any rewind q', q[:i]·q[i] (the prefix
	// up to the first R of the pair) is a prefix of q'.
	r := rand.New(rand.NewSource(1))
	for it := 0; it < 2000; it++ {
		q := randomWord(r, []string{"R", "X", "Y"}, 8)
		for _, p := range q.SelfJoinPairs() {
			q2 := q.Rewind(p[0], p[1])
			if !q2.HasPrefix(q[:p[1]+1]) {
				t.Fatalf("rewind of %v at %v lost prefix: %v", q, p, q2)
			}
			if len(q2) != len(q)+(p[1]-p[0]) {
				t.Fatalf("rewind length wrong: %v -> %v", q, q2)
			}
			if !q2.HasSuffix(q[p[0]+1:]) {
				t.Fatalf("rewind of %v at %v lost suffix RvRw: %v", q, p, q2)
			}
		}
	}
}

func TestQuickPrefixOfPower(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	// A prefix of period^k must pass isPrefixOfPower, and a mutated one
	// must fail.
	f := func(plen uint8, wlen uint8) bool {
		r := cfg.Rand
		period := randomWord(r, []string{"A", "B", "C"}, int(plen%4)+1)
		if len(period) == 0 {
			period = Word{"A"}
		}
		n := int(wlen % 12)
		full := Repeat(period, n/len(period)+1)
		w := full[:n]
		return Word(w).isPrefixOfPower(period)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSuffixOfPower(t *testing.T) {
	period := MustParse("RX")
	cases := []struct {
		w    string
		want bool
	}{
		{"X", true}, {"RX", true}, {"XRX", true}, {"RXRX", true},
		{"R", false}, {"XR", false}, {"RXR", false},
	}
	for _, c := range cases {
		w := MustParse(c.w)
		if got := w.isSuffixOfPower(period); got != c.want {
			t.Errorf("isSuffixOfPower(%s, RX) = %v, want %v", c.w, got, c.want)
		}
	}
	if !(Word{}).isSuffixOfPower(period) {
		t.Error("ε is a suffix of any power")
	}
	if (Word{"A"}).isSuffixOfPower(Word{}) {
		t.Error("nonempty word is not a suffix of ε^k")
	}
}

func TestConcatRepeat(t *testing.T) {
	u, v := MustParse("RX"), MustParse("Y")
	if got := Concat(u, v, u); got.String() != "RXYRX" {
		t.Errorf("Concat = %v", got)
	}
	if got := Repeat(u, 3); got.String() != "RXRXRX" {
		t.Errorf("Repeat = %v", got)
	}
	if got := Repeat(u, 0); !got.IsEmpty() {
		t.Errorf("Repeat 0 = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	w := MustParse("RRX")
	c := w.Clone()
	c[0] = "Z"
	if w[0] != "R" {
		t.Error("Clone is not independent")
	}
}

func TestStringParseInverse(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		w := randomWord(r, []string{"R", "X", "Y", "A", "B"}, 10)
		if len(w) == 0 {
			continue
		}
		back := MustParse(w.String())
		if !back.Equal(w) {
			t.Fatalf("parse/string round trip failed for %v", w)
		}
	}
}

func TestFactorEverywhere(t *testing.T) {
	w := MustParse("RXRXRY")
	// Every factor must be found.
	for i := 0; i <= len(w); i++ {
		for j := i; j <= len(w); j++ {
			f := w.Factor(i, j)
			if !w.HasFactor(f) {
				t.Errorf("factor %v (%d,%d) not found", f, i, j)
			}
		}
	}
	if !strings.Contains(w.String(), "RXRX") {
		t.Error("sanity")
	}
}
