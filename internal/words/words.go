// Package words implements the combinatorics-of-words machinery that
// underlies the classification of path queries in Koutris, Ouyang and
// Wijsen, "Consistent Query Answering for Primary Keys on Path Queries"
// (PODS 2021).
//
// A path query is represented as a word over the alphabet of relation
// names (Section 2 of the paper). This package provides the word
// calculus used throughout: prefix/suffix/factor tests, the rewinding
// operator (Section 1), episodes (Definition 19), and self-join-freeness.
package words

import (
	"fmt"
	"sort"
	"strings"
)

// Word is a word over the alphabet of relation names. Each element is one
// relation name (symbol). The zero value is the empty word ε.
type Word []string

// Parse parses a textual word. Two syntaxes are accepted:
//
//   - compact: "RXRRR" — a sequence of symbols, each an uppercase letter
//     followed by any run of digits or lowercase letters ("R1XR2" parses
//     as R1·X·R2);
//   - separated: symbols split by spaces, dots or commas ("R X R Y",
//     "TW.IT.TER"), allowing arbitrary symbol names.
func Parse(s string) (Word, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Word{}, nil
	}
	if strings.ContainsAny(s, " .,") {
		fields := strings.FieldsFunc(s, func(r rune) bool {
			return r == ' ' || r == '.' || r == ','
		})
		w := make(Word, 0, len(fields))
		for _, f := range fields {
			if f == "" {
				continue
			}
			w = append(w, f)
		}
		return w, nil
	}
	var w Word
	runes := []rune(s)
	for i := 0; i < len(runes); {
		r := runes[i]
		if r < 'A' || r > 'Z' {
			return nil, fmt.Errorf("words: symbol must start with an uppercase letter at position %d in %q", i, s)
		}
		j := i + 1
		for j < len(runes) && (runes[j] >= '0' && runes[j] <= '9' || runes[j] >= 'a' && runes[j] <= 'z') {
			j++
		}
		w = append(w, string(runes[i:j]))
		i = j
	}
	return w, nil
}

// MustParse is Parse that panics on error; intended for tests and
// compile-time-constant words.
func MustParse(s string) Word {
	w, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return w
}

// String renders the word. Single-rune symbols are rendered compactly
// ("RRX"); otherwise symbols are dot-separated ("R1.X.R2"). The empty
// word renders as "ε".
func (w Word) String() string {
	if len(w) == 0 {
		return "ε"
	}
	compact := true
	for _, s := range w {
		if len(s) != 1 {
			compact = false
			break
		}
	}
	if compact {
		return strings.Join(w, "")
	}
	return strings.Join(w, ".")
}

// Len returns the length (number of symbols) of w.
func (w Word) Len() int { return len(w) }

// IsEmpty reports whether w is the empty word ε.
func (w Word) IsEmpty() bool { return len(w) == 0 }

// Equal reports whether w and v are the same word.
func (w Word) Equal(v Word) bool {
	if len(w) != len(v) {
		return false
	}
	for i := range w {
		if w[i] != v[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of w.
func (w Word) Clone() Word {
	if w == nil {
		return nil
	}
	return append(Word(nil), w...)
}

// Concat returns the concatenation of the given words as a fresh word.
func Concat(parts ...Word) Word {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make(Word, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Repeat returns w repeated k times; k == 0 yields ε.
func Repeat(w Word, k int) Word {
	out := make(Word, 0, len(w)*k)
	for i := 0; i < k; i++ {
		out = append(out, w...)
	}
	return out
}

// HasPrefix reports whether p is a prefix of w (ε is a prefix of
// everything).
func (w Word) HasPrefix(p Word) bool {
	if len(p) > len(w) {
		return false
	}
	for i := range p {
		if w[i] != p[i] {
			return false
		}
	}
	return true
}

// HasSuffix reports whether s is a suffix of w.
func (w Word) HasSuffix(s Word) bool {
	if len(s) > len(w) {
		return false
	}
	off := len(w) - len(s)
	for i := range s {
		if w[off+i] != s[i] {
			return false
		}
	}
	return true
}

// IndexFactor returns the least offset at which f occurs as a factor
// (contiguous subword) of w, or -1 if f is not a factor of w. The empty
// word is a factor of every word at offset 0.
func (w Word) IndexFactor(f Word) int {
	if len(f) > len(w) {
		return -1
	}
outer:
	for off := 0; off+len(f) <= len(w); off++ {
		for i := range f {
			if w[off+i] != f[i] {
				continue outer
			}
		}
		return off
	}
	return -1
}

// HasFactor reports whether f occurs as a factor of w.
func (w Word) HasFactor(f Word) bool { return w.IndexFactor(f) >= 0 }

// First returns the first symbol of w; it panics on the empty word.
func (w Word) First() string { return w[0] }

// Last returns the last symbol of w; it panics on the empty word.
func (w Word) Last() string { return w[len(w)-1] }

// Prefix returns the length-n prefix of w.
func (w Word) Prefix(n int) Word { return w[:n] }

// Suffix returns the suffix of w starting at offset n.
func (w Word) Suffix(n int) Word { return w[n:] }

// Factor returns w[i:j].
func (w Word) Factor(i, j int) Word { return w[i:j] }

// Symbols returns the set of symbols occurring in w, sorted.
func (w Word) Symbols() []string {
	seen := make(map[string]bool, len(w))
	var out []string
	for _, s := range w {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// IsSelfJoinFree reports whether no symbol occurs twice in w.
func (w Word) IsSelfJoinFree() bool {
	seen := make(map[string]bool, len(w))
	for _, s := range w {
		if seen[s] {
			return false
		}
		seen[s] = true
	}
	return true
}

// Occurrences returns the positions (ascending) at which symbol r occurs
// in w.
func (w Word) Occurrences(r string) []int {
	var out []int
	for i, s := range w {
		if s == r {
			out = append(out, i)
		}
	}
	return out
}

// SelfJoinPairs returns all position pairs (i, j), i < j, with
// w[i] == w[j]. Each pair is a decomposition w = u·R·v·R·x with
// u = w[:i], v = w[i+1:j], x = w[j+1:] to which the rewinding operator
// applies.
func (w Word) SelfJoinPairs() [][2]int {
	bySym := make(map[string][]int)
	for i, s := range w {
		bySym[s] = append(bySym[s], i)
	}
	var out [][2]int
	for _, occ := range bySym {
		for a := 0; a < len(occ); a++ {
			for b := a + 1; b < len(occ); b++ {
				out = append(out, [2]int{occ[a], occ[b]})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// Rewind applies one rewinding step at the self-join pair (i, j): for
// w = u·R·v·R·x (R = w[i] = w[j]) it returns u·R·v·R·v·R·x. It panics if
// w[i] != w[j] or i >= j.
func (w Word) Rewind(i, j int) Word {
	if i >= j || w[i] != w[j] {
		panic(fmt.Sprintf("words: invalid rewind pair (%d, %d) on %v", i, j, w))
	}
	// uRvRvRx = w[:j+1] + w[i+1:j+1] + w[j+1:].
	out := make(Word, 0, len(w)+(j-i))
	out = append(out, w[:j+1]...)
	out = append(out, w[i+1:j+1]...)
	out = append(out, w[j+1:]...)
	return out
}

// Rewinds returns all words obtainable from w by a single rewinding step,
// de-duplicated, in deterministic order.
func (w Word) Rewinds() []Word {
	var out []Word
	seen := make(map[string]bool)
	for _, p := range w.SelfJoinPairs() {
		r := w.Rewind(p[0], p[1])
		k := r.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// RewindClosure enumerates the members of L↬(w) (Definition 4: the
// smallest language containing w and closed under rewinding) of length at
// most maxLen, in order of discovery (BFS). w itself is always included
// (if |w| <= maxLen).
func (w Word) RewindClosure(maxLen int) []Word {
	var out []Word
	seen := map[string]bool{}
	queue := []Word{w}
	if len(w) <= maxLen {
		seen[w.String()] = true
	} else {
		return nil
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, nxt := range cur.Rewinds() {
			if len(nxt) > maxLen {
				continue
			}
			k := nxt.String()
			if !seen[k] {
				seen[k] = true
				queue = append(queue, nxt)
			}
		}
	}
	return out
}

// Episode is a factor of a word of the form R·u·R where R does not occur
// in u (Definition 19 of the paper). I and J are the positions of the two
// R's, so the episode is w[I:J+1].
type Episode struct {
	I, J int
}

// Episodes returns all episodes of w: factors RuR such that R ∉ u.
// Equivalently, all pairs of *consecutive* occurrences of each symbol.
func (w Word) Episodes() []Episode {
	bySym := make(map[string][]int)
	for i, s := range w {
		bySym[s] = append(bySym[s], i)
	}
	var out []Episode
	for _, occ := range bySym {
		for a := 0; a+1 < len(occ); a++ {
			out = append(out, Episode{I: occ[a], J: occ[a+1]})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// IsRightRepeating reports whether the episode e = R·u·R of w is
// right-repeating (Definition 19): writing w = ℓ·RuR·r, the tail r is a
// prefix of (uR)^|r|.
func (w Word) IsRightRepeating(e Episode) bool {
	u := w[e.I+1 : e.J]
	r := w[e.J+1:]
	period := Concat(u, Word{w[e.J]})
	return Word(r).isPrefixOfPower(period)
}

// IsLeftRepeating reports whether the episode e = R·u·R of w is
// left-repeating: writing w = ℓ·RuR·r, the head ℓ is a suffix of
// (Ru)^|ℓ|.
func (w Word) IsLeftRepeating(e Episode) bool {
	u := w[e.I+1 : e.J]
	l := w[:e.I]
	period := Concat(Word{w[e.I]}, u)
	return Word(l).isSuffixOfPower(period)
}

// isPrefixOfPower reports whether w is a prefix of period^k for some k
// (equivalently, of period^|w|). An empty period admits only ε.
func (w Word) isPrefixOfPower(period Word) bool {
	if len(w) == 0 {
		return true
	}
	if len(period) == 0 {
		return false
	}
	for i := range w {
		if w[i] != period[i%len(period)] {
			return false
		}
	}
	return true
}

// isSuffixOfPower reports whether w is a suffix of period^k for some k.
func (w Word) isSuffixOfPower(period Word) bool {
	if len(w) == 0 {
		return true
	}
	if len(period) == 0 {
		return false
	}
	n, m := len(w), len(period)
	for i := 0; i < n; i++ {
		// Align the last symbol of w with the last symbol of period.
		if w[n-1-i] != period[(m-1-i%m+m)%m] {
			return false
		}
	}
	return true
}
