package classify

import (
	"fmt"

	"cqa/internal/words"
)

// This file implements the regex-form characterizations of Section 4
// (Definition 1):
//
//	B1:  q is a prefix of w·(v)^k            with vw self-join-free
//	B2a: q is a factor of (u)^j·w·(v)^k      with uvw self-join-free
//	B2b: q is a factor of (uv)^k·w·v         with uvw self-join-free
//	B3:  q is a factor of u·w·(uv)^k         with uvw self-join-free
//
// and the equalities C1 = B1 (Lemma 1), C3 = B2a ∪ B2b ∪ B3 (Lemma 2),
// C2 = B2a ∪ B2b (Lemma 3). Witness search is a bounded enumeration over
// candidate (u, v, w): by a trimming argument, witnesses may be assumed
// to use only symbols of q, and pump counts are bounded by the length of
// q, so the search is exhaustive for the bounded forms (and is used both
// by the NL solver tier to obtain decompositions and by tests to
// machine-check the lemmas).

// BWitness is a witness that q has one of the B-forms: q occurs at
// offset Offset in the pumped word Pumped built from U, V, W with the
// pump counts J and K (whichever are relevant for the form).
type BWitness struct {
	Form    string // "B1", "B2a", "B2b", "B3"
	U, V, W words.Word
	J, K    int
	Pumped  words.Word
	Offset  int
}

// String renders the witness.
func (b BWitness) String() string {
	switch b.Form {
	case "B1":
		return fmt.Sprintf("B1: q prefix of w(v)^k with v=%v w=%v k=%d", b.V, b.W, b.K)
	case "B2a":
		return fmt.Sprintf("B2a: q factor of (u)^j w (v)^k at offset %d with u=%v v=%v w=%v j=%d k=%d",
			b.Offset, b.U, b.V, b.W, b.J, b.K)
	case "B2b":
		return fmt.Sprintf("B2b: q factor of (uv)^k wv at offset %d with u=%v v=%v w=%v k=%d",
			b.Offset, b.U, b.V, b.W, b.K)
	case "B3":
		return fmt.Sprintf("B3: q factor of uw(uv)^k at offset %d with u=%v v=%v w=%v k=%d",
			b.Offset, b.U, b.V, b.W, b.K)
	}
	return "unknown B-form"
}

// enumSJF calls f with every (u, v, w) such that u·v·w is self-join-free
// over the given alphabet, until f returns true (found); it reports
// whether f ever returned true.
func enumSJF(alphabet []string, f func(u, v, w words.Word) bool) bool {
	m := len(alphabet)
	used := make([]bool, m)
	seq := make([]string, 0, m)
	// Enumerate all self-join-free sequences over the alphabet, then all
	// 2-split points into (u, v, w).
	var rec func() bool
	try := func() bool {
		n := len(seq)
		whole := words.Word(seq)
		for i := 0; i <= n; i++ {
			for j := i; j <= n; j++ {
				if f(whole.Factor(0, i), whole.Factor(i, j), whole.Factor(j, n)) {
					return true
				}
			}
		}
		return false
	}
	rec = func() bool {
		if try() {
			return true
		}
		if len(seq) == m {
			return false
		}
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			seq = append(seq, alphabet[i])
			if rec() {
				return true
			}
			seq = seq[:len(seq)-1]
			used[i] = false
		}
		return false
	}
	return rec()
}

func pumpBound(q words.Word, period words.Word) int {
	if len(period) == 0 {
		return 1
	}
	return len(q)/len(period) + 2
}

// FindB1 searches for a B1 witness for q.
func FindB1(q words.Word) *BWitness {
	var found *BWitness
	enumSJF(q.Symbols(), func(_, v, w words.Word) bool {
		for k := 0; k <= pumpBound(q, v); k++ {
			p := words.Concat(w, words.Repeat(v, k))
			if len(p) < len(q) && len(v) == 0 {
				break
			}
			if p.HasPrefix(q) {
				found = &BWitness{Form: "B1", V: v.Clone(), W: w.Clone(), K: k, Pumped: p, Offset: 0}
				return true
			}
		}
		return false
	})
	return found
}

// FindB2a searches for a B2a witness for q.
func FindB2a(q words.Word) *BWitness {
	var found *BWitness
	enumSJF(q.Symbols(), func(u, v, w words.Word) bool {
		ju := pumpBound(q, u)
		kv := pumpBound(q, v)
		for j := 0; j <= ju; j++ {
			for k := 0; k <= kv; k++ {
				p := words.Concat(words.Repeat(u, j), w, words.Repeat(v, k))
				if off := p.IndexFactor(q); off >= 0 {
					found = &BWitness{Form: "B2a", U: u.Clone(), V: v.Clone(), W: w.Clone(),
						J: j, K: k, Pumped: p, Offset: off}
					return true
				}
				if len(v) == 0 {
					break
				}
			}
			if len(u) == 0 {
				break
			}
		}
		return false
	})
	return found
}

// FindB2b searches for a B2b witness for q: q a factor of (uv)^k·w·v.
func FindB2b(q words.Word) *BWitness {
	var found *BWitness
	enumSJF(q.Symbols(), func(u, v, w words.Word) bool {
		uv := words.Concat(u, v)
		for k := 0; k <= pumpBound(q, uv); k++ {
			p := words.Concat(words.Repeat(uv, k), w, v)
			if off := p.IndexFactor(q); off >= 0 {
				found = &BWitness{Form: "B2b", U: u.Clone(), V: v.Clone(), W: w.Clone(),
					K: k, Pumped: p, Offset: off}
				return true
			}
			if len(uv) == 0 {
				break
			}
		}
		return false
	})
	return found
}

// FindB3 searches for a B3 witness for q: q a factor of u·w·(uv)^k.
func FindB3(q words.Word) *BWitness {
	var found *BWitness
	enumSJF(q.Symbols(), func(u, v, w words.Word) bool {
		uv := words.Concat(u, v)
		for k := 0; k <= pumpBound(q, uv); k++ {
			p := words.Concat(u, w, words.Repeat(uv, k))
			if off := p.IndexFactor(q); off >= 0 {
				found = &BWitness{Form: "B3", U: u.Clone(), V: v.Clone(), W: w.Clone(),
					K: k, Pumped: p, Offset: off}
				return true
			}
			if len(uv) == 0 {
				break
			}
		}
		return false
	})
	return found
}

// Lemma3Witness is a structural witness that q violates C2 per item (3)
// of Lemma 3: words u, v, w with u ≠ ε and uvw self-join-free such that
//
//	(3a) v ≠ ε and last(u)·w·u·v·u·first(v) is a factor of q, or
//	(3b) v = ε, w ≠ ε and last(u)·w·u·u·first(u) is a factor of q.
type Lemma3Witness struct {
	Kind    string // "3a" or "3b"
	U, V, W words.Word
	Factor  words.Word
}

// String renders the witness.
func (l Lemma3Witness) String() string {
	return fmt.Sprintf("%s: u=%v v=%v w=%v, factor %v of q", l.Kind, l.U, l.V, l.W, l.Factor)
}

// FindLemma3Witness searches for a Lemma 3 item-(3) witness in q.
func FindLemma3Witness(q words.Word) *Lemma3Witness {
	var found *Lemma3Witness
	enumSJF(q.Symbols(), func(u, v, w words.Word) bool {
		if len(u) == 0 {
			return false
		}
		if len(v) != 0 {
			f := words.Concat(words.Word{u.Last()}, w, u, v, u, words.Word{v.First()})
			if q.HasFactor(f) {
				found = &Lemma3Witness{Kind: "3a", U: u.Clone(), V: v.Clone(), W: w.Clone(), Factor: f}
				return true
			}
			return false
		}
		if len(w) == 0 {
			return false
		}
		f := words.Concat(words.Word{u.Last()}, w, u, u, words.Word{u.First()})
		if q.HasFactor(f) {
			found = &Lemma3Witness{Kind: "3b", U: u.Clone(), V: v.Clone(), W: w.Clone(), Factor: f}
			return true
		}
		return false
	})
	return found
}
