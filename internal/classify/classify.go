// Package classify implements the polynomial-time complexity
// classification of CERTAINTY(q) for path queries q (Theorems 2 and 3 of
// the paper): the syntactic conditions C1, C2 and C3 of Section 3, the
// resulting tetrachotomy FO / NL-complete / PTIME-complete /
// coNP-complete, and the regex-form characterizations B1, B2a, B2b, B3 of
// Section 4 together with bounded witness search used to machine-check
// Lemmas 1–3.
package classify

import (
	"fmt"

	"cqa/internal/words"
)

// Class is the data complexity of CERTAINTY(q) in the tetrachotomy of
// Theorem 2.
type Class int

const (
	// FO: first-order rewritable (q satisfies C1).
	FO Class = iota
	// NL: NL-complete (q satisfies C2 but not C1).
	NL
	// PTime: PTIME-complete (q satisfies C3 but not C2).
	PTime
	// CoNP: coNP-complete (q violates C3).
	CoNP
)

// String renders the class name.
func (c Class) String() string {
	switch c {
	case FO:
		return "FO"
	case NL:
		return "NL-complete"
	case PTime:
		return "PTIME-complete"
	case CoNP:
		return "coNP-complete"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Violation describes why a condition fails, as a decomposition of q.
type Violation struct {
	// Pair violation (C1/C3): q = u·R·v·R·w with R = q[I] = q[J],
	// u = q[:I], v = q[I+1:J], w = q[J+1:], and q is not a
	// prefix/factor of u·Rv·Rv·Rw.
	I, J int
	// Triple is true for the C2 triple condition: q = u·R·v1·R·v2·R·w
	// for consecutive occurrences I < J < K of R with v1 != v2 and Rw
	// not a prefix of Rv1.
	Triple bool
	K      int
	Q      words.Word
}

// String renders the violation decomposition.
func (v Violation) String() string {
	q := v.Q
	if v.Triple {
		return fmt.Sprintf("q = u·R·v1·R·v2·R·w with u=%v R=%s v1=%v v2=%v w=%v (v1≠v2 and Rw not a prefix of Rv1)",
			q.Prefix(v.I), q[v.I], q.Factor(v.I+1, v.J), q.Factor(v.J+1, v.K), q.Suffix(v.K+1))
	}
	return fmt.Sprintf("q = u·R·v·R·w with u=%v R=%s v=%v w=%v; rewound word %v",
		q.Prefix(v.I), q[v.I], q.Factor(v.I+1, v.J), q.Suffix(v.J+1), q.Rewind(v.I, v.J))
}

// analysis caches the outcome of one pass over the syntactic conditions:
// each self-join pair is rewound exactly once and serves both the C1
// prefix test and the C3 factor test, and the C2 triple condition is
// scanned once. Classify and Explain share it instead of re-running the
// (overlapping) conditions separately.
type analysis struct {
	c1, c2, c3             bool
	violC1, violC2, violC3 *Violation
}

// analyze runs the single shared pass over q.
func analyze(q words.Word) analysis {
	a := analysis{c1: true, c2: true, c3: true}
	for _, p := range q.SelfJoinPairs() {
		if !a.c1 && !a.c3 {
			break
		}
		r := q.Rewind(p[0], p[1])
		if a.c1 && !r.HasPrefix(q) {
			a.c1 = false
			a.violC1 = &Violation{I: p[0], J: p[1], Q: q.Clone()}
		}
		if a.c3 && !r.HasFactor(q) {
			a.c3 = false
			a.violC3 = &Violation{I: p[0], J: p[1], Q: q.Clone()}
		}
	}
	switch {
	case !a.c3:
		// C2 ⊆ C3: a C3 violation witnesses the C2 failure too.
		a.c2, a.violC2 = false, a.violC3
	default:
		if v := tripleViolation(q); v != nil {
			a.c2, a.violC2 = false, v
		}
	}
	return a
}

// tripleViolation scans condition C2(ii): whenever q = uRv1Rv2Rw for
// consecutive occurrences of R, v1 = v2 or Rw is a prefix of Rv1.
func tripleViolation(q words.Word) *Violation {
	for _, sym := range q.Symbols() {
		occ := q.Occurrences(sym)
		for t := 0; t+2 < len(occ); t++ {
			i, j, k := occ[t], occ[t+1], occ[t+2]
			v1 := q.Factor(i+1, j)
			v2 := q.Factor(j+1, k)
			w := q.Suffix(k + 1)
			if v1.Equal(v2) {
				continue
			}
			// Rw prefix of Rv1 ⟺ w prefix of v1 (both start with R).
			if v1.HasPrefix(w) {
				continue
			}
			return &Violation{I: i, J: j, K: k, Triple: true, Q: q.Clone()}
		}
	}
	return nil
}

// C1 reports whether q satisfies condition C1: whenever q = uRvRw, q is a
// prefix of uRvRvRw. The returned violation (if any) is the first
// witnessing decomposition.
func C1(q words.Word) (bool, *Violation) {
	a := analyze(q)
	return a.c1, a.violC1
}

// C3 reports whether q satisfies condition C3: whenever q = uRvRw, q is a
// factor of uRvRvRw.
func C3(q words.Word) (bool, *Violation) {
	a := analyze(q)
	return a.c3, a.violC3
}

// C2 reports whether q satisfies condition C2: (i) whenever q = uRvRw, q
// is a factor of uRvRvRw (i.e. C3); and (ii) whenever q = uRv1Rv2Rw for
// consecutive occurrences of R, v1 = v2 or Rw is a prefix of Rv1.
func C2(q words.Word) (bool, *Violation) {
	a := analyze(q)
	return a.c2, a.violC2
}

// Classify returns the complexity class of CERTAINTY(q) per Theorem 3.
func Classify(q words.Word) Class {
	a := analyze(q)
	switch {
	case a.c1:
		return FO
	case a.c2:
		return NL
	case a.c3:
		return PTime
	}
	return CoNP
}

// Report bundles the full classification evidence for a query.
type Report struct {
	Query words.Word
	Class Class
	C1    bool
	C2    bool
	C3    bool
	// ViolC1/ViolC2/ViolC3 are witnessing decompositions for the
	// violated conditions (nil when satisfied).
	ViolC1 *Violation
	ViolC2 *Violation
	ViolC3 *Violation
}

// Explain computes the full classification report for q.
func Explain(q words.Word) Report {
	a := analyze(q)
	r := Report{Query: q.Clone()}
	r.C1, r.ViolC1 = a.c1, a.violC1
	r.C2, r.ViolC2 = a.c2, a.violC2
	r.C3, r.ViolC3 = a.c3, a.violC3
	switch {
	case r.C1:
		r.Class = FO
	case r.C2:
		r.Class = NL
	case r.C3:
		r.Class = PTime
	default:
		r.Class = CoNP
	}
	return r
}

// String renders the report in a human-readable form.
func (r Report) String() string {
	s := fmt.Sprintf("q = %v: CERTAINTY(q) is %v  [C1=%v C2=%v C3=%v]", r.Query, r.Class, r.C1, r.C2, r.C3)
	if !r.C1 && r.ViolC1 != nil && r.C2 {
		s += "\n  C1 violated: " + r.ViolC1.String()
	}
	if !r.C2 && r.ViolC2 != nil && r.C3 {
		s += "\n  C2 violated: " + r.ViolC2.String()
	}
	if !r.C3 && r.ViolC3 != nil {
		s += "\n  C3 violated: " + r.ViolC3.String()
	}
	return s
}
