package classify

import (
	"math/rand"
	"testing"

	"cqa/internal/words"
)

func w(s string) words.Word { return words.MustParse(s) }

func TestExample3(t *testing.T) {
	// Example 3 of the paper.
	cases := []struct {
		q    string
		want Class
	}{
		{"RXRX", FO},
		{"RXRY", NL},
		{"RXRYRY", PTime},
		{"RXRXRYRY", CoNP},
	}
	for _, c := range cases {
		if got := Classify(w(c.q)); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestIntroQueries(t *testing.T) {
	cases := []struct {
		q    string
		want Class
	}{
		{"RR", FO},       // Section 1: q1 = RR is in FO
		{"RRX", NL},      // Section 1: testable in PTIME "and even in NL"
		{"ARRX", CoNP},   // Section 1: q3 = ARRX is coNP-complete
		{"R", FO},        // self-join-free
		{"RXY", FO},      // self-join-free
		{"", FO},         // empty query, vacuously C1
		{"RRR", FO},      // prefix-stable under rewinding
		{"RRSRS", PTime}, // shortest word of Lemma 3 form (3a)
		{"RSRRR", PTime}, // shortest word of Lemma 3 form (3b)
	}
	for _, c := range cases {
		if got := Classify(w(c.q)); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSelfJoinFreeAlwaysFO(t *testing.T) {
	// For self-join-free path queries, CERTAINTY(q) is in FO
	// (Section 1; also follows from C1 being vacuous).
	for _, qs := range []string{"R", "RX", "RXY", "ABCDE"} {
		if got := Classify(w(qs)); got != FO {
			t.Errorf("Classify(%s) = %v, want FO", qs, got)
		}
	}
}

func TestPropositionC1ImpliesC2ImpliesC3(t *testing.T) {
	// Proposition 1 on random words.
	rng := rand.New(rand.NewSource(21))
	alpha := []string{"R", "X", "Y"}
	for it := 0; it < 5000; it++ {
		n := rng.Intn(9)
		q := make(words.Word, n)
		for i := range q {
			q[i] = alpha[rng.Intn(len(alpha))]
		}
		c1, _ := C1(q)
		c2, _ := C2(q)
		c3, _ := C3(q)
		if c1 && !c2 {
			t.Fatalf("%v: C1 but not C2", q)
		}
		if c2 && !c3 {
			t.Fatalf("%v: C2 but not C3", q)
		}
	}
}

// TestLemma5 machine-checks Lemma 5: q satisfies C1 (resp. C3) iff q is a
// prefix (resp. factor) of every word in L↬(q).
func TestLemma5(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	alpha := []string{"R", "X"}
	for it := 0; it < 400; it++ {
		n := 1 + rng.Intn(7)
		q := make(words.Word, n)
		for i := range q {
			q[i] = alpha[rng.Intn(len(alpha))]
		}
		closure := q.RewindClosure(n + 8)
		allPrefix, allFactor := true, true
		for _, p := range closure {
			if !p.HasPrefix(q) {
				allPrefix = false
			}
			if !p.HasFactor(q) {
				allFactor = false
			}
		}
		if c1, _ := C1(q); c1 != allPrefix {
			t.Fatalf("%v: C1=%v but closure-prefix=%v", q, c1, allPrefix)
		}
		if c3, _ := C3(q); c3 != allFactor {
			t.Fatalf("%v: C3=%v but closure-factor=%v", q, c3, allFactor)
		}
	}
}

// TestLemma1 machine-checks C1 = B1 on all short words over two and
// three symbols.
func TestLemma1(t *testing.T) {
	forAllWords(t, 7, []string{"R", "X"}, func(q words.Word) {
		c1, _ := C1(q)
		b1 := FindB1(q) != nil
		if c1 != b1 {
			t.Fatalf("%v: C1=%v B1=%v", q, c1, b1)
		}
	})
	forAllWords(t, 5, []string{"R", "X", "Y"}, func(q words.Word) {
		c1, _ := C1(q)
		b1 := FindB1(q) != nil
		if c1 != b1 {
			t.Fatalf("%v: C1=%v B1=%v", q, c1, b1)
		}
	})
}

// TestLemma2 machine-checks C3 = B2a ∪ B2b ∪ B3.
func TestLemma2(t *testing.T) {
	forAllWords(t, 7, []string{"R", "X"}, func(q words.Word) {
		c3, _ := C3(q)
		b := FindB2a(q) != nil || FindB2b(q) != nil || FindB3(q) != nil
		if c3 != b {
			t.Fatalf("%v: C3=%v B2a∪B2b∪B3=%v", q, c3, b)
		}
	})
	forAllWords(t, 5, []string{"R", "X", "Y"}, func(q words.Word) {
		c3, _ := C3(q)
		b := FindB2a(q) != nil || FindB2b(q) != nil || FindB3(q) != nil
		if c3 != b {
			t.Fatalf("%v: C3=%v B=%v", q, c3, b)
		}
	})
}

// TestLemma3 machine-checks C2 = B2a ∪ B2b and the equivalence of C2
// violation with the structural witnesses (3a)/(3b) of Lemma 3.
func TestLemma3(t *testing.T) {
	forAllWords(t, 7, []string{"R", "X"}, func(q words.Word) {
		c2, _ := C2(q)
		b := FindB2a(q) != nil || FindB2b(q) != nil
		if c2 != b {
			t.Fatalf("%v: C2=%v B2a∪B2b=%v", q, c2, b)
		}
		// Witness equivalence: the paper notes the equivalence of
		// "violates C2" and "violates both B2a and B2b" holds without
		// the C3 hypothesis; the structural witness (3) requires C3.
		if c3, _ := C3(q); c3 {
			wit := FindLemma3Witness(q)
			if c2 == (wit != nil) {
				t.Fatalf("%v: C2=%v but Lemma3 witness=%v", q, c2, wit)
			}
		}
	})
}

func TestLemma3ShortestWitnesses(t *testing.T) {
	// "The shortest word of the form (3a) ... is RRSRS (let u = R,
	// v = S, w = ε), and the shortest word of the form (3b) is RSRRR."
	w1 := FindLemma3Witness(w("RRSRS"))
	if w1 == nil || w1.Kind != "3a" {
		t.Errorf("RRSRS: witness = %v, want 3a", w1)
	}
	w2 := FindLemma3Witness(w("RSRRR"))
	if w2 == nil || w2.Kind != "3b" {
		t.Errorf("RSRRR: witness = %v, want 3b", w2)
	}
}

func TestViolationReporting(t *testing.T) {
	// RXRYRY: the paper's Example 3 exhibits the C2 violation with
	// u=ε, Rv1=RX, Rv2=RY, Rw=RY.
	ok, v := C2(w("RXRYRY"))
	if ok || v == nil || !v.Triple {
		t.Fatalf("C2(RXRYRY) = %v, %v", ok, v)
	}
	if v.I != 0 || v.J != 2 || v.K != 4 {
		t.Errorf("triple = (%d,%d,%d), want (0,2,4)", v.I, v.J, v.K)
	}
	if v.String() == "" {
		t.Error("empty violation string")
	}

	ok, v2 := C1(w("RRX"))
	if ok || v2 == nil {
		t.Fatalf("C1(RRX) should fail")
	}
	if v2.String() == "" {
		t.Error("empty violation string")
	}
}

func TestExplainReport(t *testing.T) {
	r := Explain(w("RXRYRY"))
	if r.Class != PTime || r.C1 || r.C2 || !r.C3 {
		t.Errorf("Explain(RXRYRY) = %+v", r)
	}
	if r.String() == "" {
		t.Error("empty report")
	}
	r2 := Explain(w("RXRX"))
	if r2.Class != FO || !r2.C1 || !r2.C2 || !r2.C3 {
		t.Errorf("Explain(RXRX) = %+v", r2)
	}
	for _, c := range []Class{FO, NL, PTime, CoNP, Class(9)} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

func TestBWitnessStrings(t *testing.T) {
	for _, q := range []string{"RRX", "RXRX", "RXRYRY"} {
		for _, b := range []*BWitness{FindB1(w(q)), FindB2a(w(q)), FindB2b(w(q)), FindB3(w(q))} {
			if b != nil && b.String() == "" {
				t.Error("empty witness string")
			}
		}
	}
	if (BWitness{Form: "?"}).String() != "unknown B-form" {
		t.Error("unknown form string")
	}
}

// forAllWords enumerates all words over alpha of length <= maxLen.
func forAllWords(t *testing.T, maxLen int, alpha []string, f func(words.Word)) {
	t.Helper()
	var rec func(cur words.Word)
	rec = func(cur words.Word) {
		f(cur)
		if len(cur) == maxLen {
			return
		}
		for _, a := range alpha {
			rec(append(cur, a))
		}
	}
	rec(words.Word{})
}
