// Package regex implements the small regular-expression calculus needed
// for the B-form characterizations of Section 4 and for Lemma 16: regexes
// over relation-name symbols built from concatenation, union and Kleene
// star, compiled to DFAs (via a Thompson construction and subset
// construction) so that language identities claimed in the paper can be
// machine-checked with DFA equivalence.
package regex

import (
	"sort"
	"strings"

	"cqa/internal/automata"
	"cqa/internal/words"
)

// Expr is a regular expression over relation-name symbols.
type Expr interface {
	String() string
	symbols(map[string]bool)
	// compile adds states/transitions to b and returns (start, accept).
	compile(b *builder) (int, int)
}

// Eps is the regex matching only the empty word.
type Eps struct{}

// Sym matches a single symbol.
type Sym struct{ Name string }

// Concat matches the concatenation of its parts.
type Concat struct{ Parts []Expr }

// Union matches the union of its alternatives.
type Union struct{ Alts []Expr }

// Star is the Kleene closure of its body.
type Star struct{ Body Expr }

// Literal returns the concatenation of the symbols of w.
func Literal(w words.Word) Expr {
	parts := make([]Expr, len(w))
	for i, s := range w {
		parts[i] = Sym{s}
	}
	return Concat{parts}
}

// Seq concatenates expressions, flattening trivial cases.
func Seq(parts ...Expr) Expr { return Concat{parts} }

// Power returns e repeated exactly k times.
func Power(e Expr, k int) Expr {
	parts := make([]Expr, k)
	for i := range parts {
		parts[i] = e
	}
	return Concat{parts}
}

func (Eps) String() string   { return "ε" }
func (s Sym) String() string { return s.Name }
func (c Concat) String() string {
	if len(c.Parts) == 0 {
		return "ε"
	}
	var b strings.Builder
	for _, p := range c.Parts {
		if _, ok := p.(Union); ok {
			b.WriteString("(" + p.String() + ")")
		} else {
			b.WriteString(p.String())
		}
	}
	return b.String()
}
func (u Union) String() string {
	parts := make([]string, len(u.Alts))
	for i, a := range u.Alts {
		parts[i] = a.String()
	}
	return strings.Join(parts, "|")
}
func (s Star) String() string {
	body := s.Body.String()
	if len(body) > 1 {
		body = "(" + body + ")"
	}
	return body + "*"
}

func (Eps) symbols(map[string]bool)     {}
func (s Sym) symbols(m map[string]bool) { m[s.Name] = true }
func (c Concat) symbols(m map[string]bool) {
	for _, p := range c.Parts {
		p.symbols(m)
	}
}
func (u Union) symbols(m map[string]bool) {
	for _, a := range u.Alts {
		a.symbols(m)
	}
}
func (s Star) symbols(m map[string]bool) { s.Body.symbols(m) }

// Symbols returns the sorted alphabet of e.
func Symbols(e Expr) []string {
	m := map[string]bool{}
	e.symbols(m)
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// builder accumulates a Thompson NFA.
type builder struct {
	eps   [][]int
	trans []map[string][]int
}

func (b *builder) newState() int {
	b.eps = append(b.eps, nil)
	b.trans = append(b.trans, nil)
	return len(b.eps) - 1
}

func (b *builder) epsEdge(from, to int) { b.eps[from] = append(b.eps[from], to) }

func (b *builder) symEdge(from int, sym string, to int) {
	if b.trans[from] == nil {
		b.trans[from] = map[string][]int{}
	}
	b.trans[from][sym] = append(b.trans[from][sym], to)
}

func (Eps) compile(b *builder) (int, int) {
	s := b.newState()
	t := b.newState()
	b.epsEdge(s, t)
	return s, t
}

func (x Sym) compile(b *builder) (int, int) {
	s := b.newState()
	t := b.newState()
	b.symEdge(s, x.Name, t)
	return s, t
}

func (c Concat) compile(b *builder) (int, int) {
	if len(c.Parts) == 0 {
		return Eps{}.compile(b)
	}
	s, t := c.Parts[0].compile(b)
	for _, p := range c.Parts[1:] {
		ps, pt := p.compile(b)
		b.epsEdge(t, ps)
		t = pt
	}
	return s, t
}

func (u Union) compile(b *builder) (int, int) {
	s := b.newState()
	t := b.newState()
	if len(u.Alts) == 0 {
		return s, t // empty language
	}
	for _, a := range u.Alts {
		as, at := a.compile(b)
		b.epsEdge(s, as)
		b.epsEdge(at, t)
	}
	return s, t
}

func (x Star) compile(b *builder) (int, int) {
	s := b.newState()
	t := b.newState()
	bs, bt := x.Body.compile(b)
	b.epsEdge(s, bs)
	b.epsEdge(s, t)
	b.epsEdge(bt, bs)
	b.epsEdge(bt, t)
	return s, t
}

// ToDFA compiles e to a DFA via Thompson + subset construction.
func ToDFA(e Expr) *automata.DFA {
	b := &builder{}
	start, accept := e.compile(b)
	alphabet := Symbols(e)

	closure := func(set map[int]bool) {
		stack := make([]int, 0, len(set))
		for s := range set {
			stack = append(stack, s)
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range b.eps[s] {
				if !set[t] {
					set[t] = true
					stack = append(stack, t)
				}
			}
		}
	}
	key := func(set map[int]bool) string {
		ids := make([]int, 0, len(set))
		for s := range set {
			ids = append(ids, s)
		}
		sort.Ints(ids)
		var sb strings.Builder
		for _, id := range ids {
			sb.WriteString(itoa(id))
			sb.WriteByte(',')
		}
		return sb.String()
	}

	d := &automata.DFA{Alphabet: alphabet}
	index := map[string]int{}
	var sets []map[int]bool
	add := func(set map[int]bool) int {
		k := key(set)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(sets)
		index[k] = id
		sets = append(sets, set)
		d.Trans = append(d.Trans, map[string]int{})
		d.Accept = append(d.Accept, set[accept])
		return id
	}
	init := map[int]bool{start: true}
	closure(init)
	d.Start = add(init)
	for work := []int{d.Start}; len(work) > 0; {
		id := work[0]
		work = work[1:]
		set := sets[id]
		for _, sym := range alphabet {
			next := map[int]bool{}
			for s := range set {
				for _, t := range b.trans[s][sym] {
					next[t] = true
				}
			}
			if len(next) == 0 {
				continue
			}
			closure(next)
			before := len(sets)
			nid := add(next)
			d.Trans[id][sym] = nid
			if nid == before {
				work = append(work, nid)
			}
		}
	}
	return d
}

// Matches reports whether e matches w.
func Matches(e Expr, w words.Word) bool { return ToDFA(e).AcceptsWord(w) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
