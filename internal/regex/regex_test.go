package regex

import (
	"testing"

	"cqa/internal/automata"
	"cqa/internal/words"
)

func TestLiteralAndString(t *testing.T) {
	e := Literal(words.MustParse("RRX"))
	if e.String() != "RRX" {
		t.Errorf("String = %s", e.String())
	}
	if !Matches(e, words.MustParse("RRX")) || Matches(e, words.MustParse("RRRX")) {
		t.Error("literal must match exactly itself")
	}
}

func TestStarUnion(t *testing.T) {
	// RR(R)*X — the language of L↬(RRX).
	e := Seq(Literal(words.MustParse("RR")), Star{Sym{"R"}}, Sym{"X"})
	if e.String() != "RRR*X" {
		t.Errorf("String = %s", e.String())
	}
	for _, w := range []string{"RRX", "RRRX", "RRRRRX"} {
		if !Matches(e, words.MustParse(w)) {
			t.Errorf("should match %s", w)
		}
	}
	for _, w := range []string{"RX", "RRXX", "RR"} {
		if Matches(e, words.MustParse(w)) {
			t.Errorf("should not match %s", w)
		}
	}
	u := Union{[]Expr{Sym{"R"}, Sym{"X"}}}
	if !Matches(Star{u}, words.MustParse("RXXR")) {
		t.Error("(R|X)* matches everything over {R,X}")
	}
	if !Matches(Star{u}, words.Word{}) {
		t.Error("star matches ε")
	}
	if Matches(Union{nil}, words.Word{}) {
		t.Error("empty union is the empty language")
	}
}

func TestPower(t *testing.T) {
	e := Power(Literal(words.MustParse("RX")), 3)
	if !Matches(e, words.MustParse("RXRXRX")) || Matches(e, words.MustParse("RXRX")) {
		t.Error("Power wrong")
	}
	if !Matches(Power(Sym{"R"}, 0), words.Word{}) {
		t.Error("e^0 = ε")
	}
}

// TestRewindClosureRegexes machine-checks the regular expressions the
// paper gives for rewinding closures:
//   - L↬(RRX)  = RR(R)*X           (Section 1)
//   - L↬(RXRY) = (RX)(RX)*RY       (Example 3: RXRY rewinds only within
//     the RX period)
func TestRewindClosureRegexes(t *testing.T) {
	cases := []struct {
		q  string
		re Expr
	}{
		{"RRX", Seq(Literal(words.MustParse("RR")), Star{Sym{"R"}}, Sym{"X"})},
		{"RXRY", Seq(Literal(words.MustParse("RX")), Star{Literal(words.MustParse("RX"))}, Literal(words.MustParse("RY")))},
		{"RR", Seq(Literal(words.MustParse("RR")), Star{Sym{"R"}})},
	}
	for _, c := range cases {
		q := words.MustParse(c.q)
		nfaDFA := automata.New(q).ToDFA()
		reDFA := ToDFA(c.re)
		if !nfaDFA.Equal(reDFA) {
			t.Errorf("q=%s: NFA(q) language != %s", c.q, c.re)
		}
	}
}

func TestEpsExpr(t *testing.T) {
	if !Matches(Eps{}, words.Word{}) || Matches(Eps{}, words.MustParse("R")) {
		t.Error("Eps matches exactly ε")
	}
	if (Eps{}).String() != "ε" {
		t.Error("Eps string")
	}
	if (Concat{}).String() != "ε" {
		t.Error("empty concat string")
	}
}

func TestSymbols(t *testing.T) {
	e := Seq(Sym{"R"}, Star{Union{[]Expr{Sym{"X"}, Sym{"Y"}}}})
	got := Symbols(e)
	if len(got) != 3 || got[0] != "R" || got[1] != "X" || got[2] != "Y" {
		t.Errorf("Symbols = %v", got)
	}
}

func TestUnionParenthesization(t *testing.T) {
	e := Seq(Sym{"A"}, Union{[]Expr{Sym{"R"}, Sym{"X"}}})
	if e.String() != "A(R|X)" {
		t.Errorf("String = %s", e.String())
	}
}

func TestDFAEquivalenceViaRegex(t *testing.T) {
	// (R|X)* vs (R*X*)*: same language.
	e1 := Star{Union{[]Expr{Sym{"R"}, Sym{"X"}}}}
	e2 := Star{Seq(Star{Sym{"R"}}, Star{Sym{"X"}})}
	if !ToDFA(e1).Equal(ToDFA(e2)) {
		t.Error("(R|X)* should equal (R*X*)*")
	}
	e3 := Star{Sym{"R"}}
	if ToDFA(e1).Equal(ToDFA(e3)) {
		t.Error("(R|X)* != R*")
	}
}
