// Package workload generates synthetic database instances for tests and
// benchmarks: random block-structured instances with controlled
// inconsistency, chain instances in the style of Figures 2/3/6 of the
// paper, and scaled gadget families obtained by pushing random source
// problems through the Section 7 reductions.
package workload

import (
	"fmt"
	"math/rand"

	"cqa/internal/instance"
	"cqa/internal/words"
)

// Config controls random instance generation.
type Config struct {
	// Relations to draw facts from.
	Relations []string
	// Constants is the active-domain size.
	Constants int
	// Facts is the number of AddFact draws (duplicates collapse).
	Facts int
	// ConflictRate in [0,1] biases key reuse: higher values produce
	// more multi-fact blocks.
	ConflictRate float64
	Seed         int64
}

// Random generates an instance per the configuration.
func Random(cfg Config) *instance.Instance {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := instance.New()
	if cfg.Constants <= 0 || cfg.Facts <= 0 || len(cfg.Relations) == 0 {
		return db
	}
	type blockID struct{ rel, key string }
	seen := map[blockID]bool{}
	var blocks []blockID
	for i := 0; i < cfg.Facts; i++ {
		rel := cfg.Relations[rng.Intn(len(cfg.Relations))]
		var key string
		if len(blocks) > 0 && rng.Float64() < cfg.ConflictRate {
			// Reuse an existing (distinct) block to force a conflict.
			k := blocks[rng.Intn(len(blocks))]
			rel, key = k.rel, k.key
		} else {
			key = constName(rng.Intn(cfg.Constants))
		}
		val := constName(rng.Intn(cfg.Constants))
		db.AddFact(rel, key, val)
		id := blockID{rel, key}
		if !seen[id] {
			seen[id] = true
			blocks = append(blocks, id)
		}
	}
	return db
}

func constName(i int) string { return fmt.Sprintf("c%d", i) }

// Chain builds a consistent chain instance c0 -q[0]-> c1 -q[1]-> ...,
// repeating the query word cycles times, as a baseline yes-instance.
func Chain(q words.Word, cycles int) *instance.Instance {
	db := instance.New()
	v := 0
	for c := 0; c < cycles; c++ {
		for _, rel := range q {
			db.AddFact(rel, constName(v), constName(v+1))
			v++
		}
	}
	return db
}

// Figure2Family scales the Figure 2 pattern: a chain of n conflicting
// R-blocks that all eventually reach an X-edge; a yes-instance of
// CERTAINTY(RRX) with no certain exact start. Returns the instance.
func Figure2Family(n int) *instance.Instance {
	db := instance.New()
	for i := 0; i < n; i++ {
		db.AddFact("R", constName(i), constName(i+1))
		db.AddFact("R", constName(i), constName(i+2)) // conflict
	}
	db.AddFact("R", constName(n), constName(n+1))
	db.AddFact("R", constName(n+1), constName(n+2))
	db.AddFact("X", constName(n+2), constName(n+3))
	db.AddFact("X", constName(n+1), constName(n+3))
	return db
}

// Figure3Family scales the Figure 3 bifurcation gadget for q = ARRX:
// n independent copies, all no-instances; the union is a no-instance.
func Figure3Family(n int) *instance.Instance {
	db := instance.New()
	for i := 0; i < n; i++ {
		p := func(s string) string { return fmt.Sprintf("%s_%d", s, i) }
		db.AddFact("A", p("0"), p("a"))
		db.AddFact("R", p("a"), p("b"))
		db.AddFact("R", p("a"), p("c"))
		db.AddFact("R", p("b"), p("c"))
		db.AddFact("R", p("c"), p("b"))
		db.AddFact("X", p("c"), p("t"))
	}
	return db
}
