package workload

import (
	"testing"

	"cqa/internal/fixpoint"
	"cqa/internal/repairs"
	"cqa/internal/words"
)

func TestRandomDeterministic(t *testing.T) {
	cfg := Config{Relations: []string{"R", "X"}, Constants: 10, Facts: 50, ConflictRate: 0.4, Seed: 1}
	a := Random(cfg)
	b := Random(cfg)
	if !a.Equal(b) {
		t.Error("same seed must give the same instance")
	}
	if a.Size() == 0 || a.Size() > 50 {
		t.Errorf("size = %d", a.Size())
	}
	cfg.Seed = 2
	if Random(cfg).Equal(a) {
		t.Error("different seeds should differ")
	}
}

func TestRandomConflictRate(t *testing.T) {
	frac := func(rate float64) float64 {
		db := Random(Config{Relations: []string{"R"}, Constants: 200, Facts: 100, ConflictRate: rate, Seed: 3})
		return float64(len(db.ConflictingBlocks())) / float64(len(db.Blocks()))
	}
	if frac(0.9) <= frac(0) {
		t.Errorf("conflict rate not effective: frac(0)=%v frac(0.9)=%v", frac(0), frac(0.9))
	}
}

func TestRandomEmptyConfig(t *testing.T) {
	if Random(Config{}).Size() != 0 {
		t.Error("empty config must give empty instance")
	}
}

func TestChainIsYesInstance(t *testing.T) {
	q := words.MustParse("RRX")
	db := Chain(q, 3)
	if !db.IsConsistent() {
		t.Error("chain must be consistent")
	}
	if !repairs.IsCertain(db, q) {
		t.Error("chain is a yes-instance")
	}
}

func TestFigure2Family(t *testing.T) {
	q := words.MustParse("RRX")
	for _, n := range []int{1, 3, 8} {
		db := Figure2Family(n)
		if db.IsConsistent() {
			t.Errorf("n=%d: family must be inconsistent", n)
		}
		if !fixpoint.Solve(db, q).Certain {
			t.Errorf("n=%d: Figure 2 family must be a yes-instance", n)
		}
	}
}

func TestFigure3Family(t *testing.T) {
	q := words.MustParse("ARRX")
	db := Figure3Family(4)
	if repairs.IsCertain(db, q) {
		t.Error("Figure 3 family must be a no-instance")
	}
}
