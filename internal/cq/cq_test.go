package cq

import (
	"math/rand"
	"testing"

	"cqa/internal/instance"
	"cqa/internal/repairs"
	"cqa/internal/words"
)

// Example 1 / Figure 1 of the paper: the instance with all four R-facts
// and all four S-facts over {a,b}.
func figure1() *instance.Instance {
	return instance.MustParseFacts(
		"R(a,a) R(a,b) R(b,a) R(b,b) S(a,a) S(a,b) S(b,a) S(b,b)")
}

func TestExample1SelfJoin(t *testing.T) {
	// q1 = ∃x∃y (R(x,y) ∧ R(y,x)): Figure 1 is a YES-instance.
	q1 := New(
		Atom{Rel: "R", S: Var("x"), T: Var("y")},
		Atom{Rel: "R", S: Var("y"), T: Var("x")},
	)
	if !IsCertain(figure1(), q1) {
		t.Error("Example 1: yes-instance of CERTAINTY(q1) expected")
	}
}

func TestExample1SelfJoinFree(t *testing.T) {
	// q2 = ∃x∃y (R(x,y) ∧ S(y,x)): Figure 1 is a NO-instance; the
	// witness repair from the paper is {R(a,a), R(b,b), S(a,b), S(b,a)}.
	q2 := New(
		Atom{Rel: "R", S: Var("x"), T: Var("y")},
		Atom{Rel: "S", S: Var("y"), T: Var("x")},
	)
	db := figure1()
	if IsCertain(db, q2) {
		t.Error("Example 1: no-instance of CERTAINTY(q2) expected")
	}
	witness := instance.MustParseFacts("R(a,a) R(b,b) S(a,b) S(b,a)")
	if !witness.IsRepairOf(db) {
		t.Fatal("paper witness is not a repair?")
	}
	if Satisfied(witness, q2) {
		t.Error("paper witness repair must falsify q2")
	}
}

func TestExample2(t *testing.T) {
	// q1 = ∃x∃y∃z (R(x,z) ∧ R(y,z)): CERTAINTY(q1) is in FO; a db is a
	// yes-instance iff it satisfies ∃x∃y R(x,y).
	q1 := New(
		Atom{Rel: "R", S: Var("x"), T: Var("z")},
		Atom{Rel: "R", S: Var("y"), T: Var("z")},
	)
	yes := instance.MustParseFacts("R(a,b) R(a,c)")
	no := instance.MustParseFacts("S(a,b)")
	if !IsCertain(yes, q1) {
		t.Error("any db with an R-fact is a yes-instance")
	}
	if IsCertain(no, q1) {
		t.Error("db without R-facts is a no-instance")
	}
}

func TestConstantsInAtoms(t *testing.T) {
	q := New(Atom{Rel: "R", S: Const("a"), T: Var("y")},
		Atom{Rel: "S", S: Var("y"), T: Const("z0")})
	db := instance.MustParseFacts("R(a,b) S(b,z0)")
	if !Satisfied(db, q) {
		t.Error("should match via y=b")
	}
	db2 := instance.MustParseFacts("R(a,b) S(b,z1)")
	if Satisfied(db2, q) {
		t.Error("constant z0 must not match z1")
	}
}

func TestFindValuation(t *testing.T) {
	q := FromPath(words.MustParse("RRX"))
	db := instance.MustParseFacts("R(0,1) R(1,2) X(2,3)")
	v := FindValuation(db, q)
	if v == nil {
		t.Fatal("expected a valuation")
	}
	want := map[string]string{"x1": "0", "x2": "1", "x3": "2", "x4": "3"}
	for k, w := range want {
		if v[k] != w {
			t.Errorf("v[%s] = %s, want %s", k, v[k], w)
		}
	}
}

func TestFromPathAgreesWithTraceMatcher(t *testing.T) {
	// Differential test: the generic homomorphism matcher and the
	// path-trace DP must agree on arbitrary instances, for arbitrary
	// path queries (a path query is satisfied by db iff db has a walk
	// with that trace).
	rng := rand.New(rand.NewSource(11))
	alpha := []string{"R", "X"}
	queries := []words.Word{
		words.MustParse("R"), words.MustParse("RR"), words.MustParse("RRX"),
		words.MustParse("RXR"), words.MustParse("RXRX"),
	}
	for it := 0; it < 300; it++ {
		db := instance.New()
		nFacts := 1 + rng.Intn(8)
		for i := 0; i < nFacts; i++ {
			rel := alpha[rng.Intn(len(alpha))]
			k := string(rune('a' + rng.Intn(4)))
			v := string(rune('a' + rng.Intn(4)))
			db.AddFact(rel, k, v)
		}
		for _, q := range queries {
			got := Satisfied(db, FromPath(q))
			want := db.Satisfies(q)
			if got != want {
				t.Fatalf("it=%d db=%s q=%v: cq=%v trace=%v", it, db, q, got, want)
			}
		}
	}
}

func TestIsCertainAgreesWithRepairsPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for it := 0; it < 100; it++ {
		db := instance.New()
		nFacts := 1 + rng.Intn(7)
		for i := 0; i < nFacts; i++ {
			db.AddFact("R", string(rune('a'+rng.Intn(3))), string(rune('a'+rng.Intn(3))))
		}
		q := words.MustParse("RR")
		if got, want := IsCertain(db, FromPath(q)), repairs.IsCertain(db, q); got != want {
			t.Fatalf("it=%d db=%s: cq=%v repairs=%v", it, db, got, want)
		}
	}
}

func TestQueryHelpers(t *testing.T) {
	q := FromPath(words.MustParse("RRX"))
	if q.IsSelfJoinFree() {
		t.Error("RRX has a self-join")
	}
	if !FromPath(words.MustParse("RX")).IsSelfJoinFree() {
		t.Error("RX is self-join-free")
	}
	vars := q.Vars()
	if len(vars) != 4 || vars[0] != "x1" {
		t.Errorf("Vars = %v", vars)
	}
	if got := q.String(); got != "{R(x1,x2), R(x2,x3), X(x3,x4)}" {
		t.Errorf("String = %s", got)
	}
	if got := Const("c").String(); got != "'c'" {
		t.Errorf("const term renders as %s", got)
	}
}
