// Package cq implements generic Boolean conjunctive queries over binary
// relations and homomorphism (satisfaction) testing. Path queries are a
// special case; this package additionally covers cyclic queries such as
// q1 = ∃x∃y(R(x,y) ∧ R(y,x)) from Example 1 of the paper, and is used as
// an independent cross-check of the path-specific matchers.
package cq

import (
	"fmt"
	"sort"
	"strings"

	"cqa/internal/instance"
	"cqa/internal/words"
)

// Term is a variable or a constant in an atom.
type Term struct {
	Name  string
	Const bool
}

// Var returns a variable term.
func Var(name string) Term { return Term{Name: name} }

// Const returns a constant term.
func Const(name string) Term { return Term{Name: name, Const: true} }

// String renders the term; constants are quoted with ' '.
func (t Term) String() string {
	if t.Const {
		return "'" + t.Name + "'"
	}
	return t.Name
}

// Atom is an atom R(s, t) over a binary relation R.
type Atom struct {
	Rel  string
	S, T Term
}

// String renders the atom.
func (a Atom) String() string { return fmt.Sprintf("%s(%s,%s)", a.Rel, a.S, a.T) }

// Query is a Boolean conjunctive query: a finite set of atoms, all
// variables existentially quantified.
type Query struct {
	Atoms []Atom
}

// New returns a query with the given atoms.
func New(atoms ...Atom) Query { return Query{Atoms: atoms} }

// FromPath converts a path-query word to its conjunctive-query form
// { R1(x1,x2), ..., Rk(xk,xk+1) }.
func FromPath(w words.Word) Query {
	q := Query{Atoms: make([]Atom, len(w))}
	for i, r := range w {
		q.Atoms[i] = Atom{Rel: r, S: Var(fmt.Sprintf("x%d", i+1)), T: Var(fmt.Sprintf("x%d", i+2))}
	}
	return q
}

// Vars returns the sorted set of variables of q.
func (q Query) Vars() []string {
	seen := map[string]bool{}
	var out []string
	add := func(t Term) {
		if !t.Const && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	for _, a := range q.Atoms {
		add(a.S)
		add(a.T)
	}
	sort.Strings(out)
	return out
}

// IsSelfJoinFree reports whether no relation name occurs twice in q.
func (q Query) IsSelfJoinFree() bool {
	seen := map[string]bool{}
	for _, a := range q.Atoms {
		if seen[a.Rel] {
			return false
		}
		seen[a.Rel] = true
	}
	return true
}

// String renders q as an atom list.
func (q Query) String() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Satisfied reports whether db |= q, i.e. whether there is a valuation θ
// of the variables with θ(q) ⊆ db. Backtracking search with
// most-constrained-atom ordering; queries are small.
func Satisfied(db *instance.Instance, q Query) bool {
	return FindValuation(db, q) != nil
}

// FindValuation returns a satisfying valuation of q on db, or nil.
func FindValuation(db *instance.Instance, q Query) map[string]string {
	env := make(map[string]string)
	remaining := append([]Atom(nil), q.Atoms...)
	if match(db, remaining, env) {
		return env
	}
	return nil
}

func match(db *instance.Instance, atoms []Atom, env map[string]string) bool {
	if len(atoms) == 0 {
		return true
	}
	// Pick the most-bound atom to expand next.
	best, bestScore := 0, -1
	for i, a := range atoms {
		score := 0
		if _, ok := bind(env, a.S); ok {
			score += 2 // bound key is most selective
		}
		if _, ok := bind(env, a.T); ok {
			score++
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	a := atoms[best]
	rest := make([]Atom, 0, len(atoms)-1)
	rest = append(rest, atoms[:best]...)
	rest = append(rest, atoms[best+1:]...)

	try := func(key, val string) bool {
		_, sOld := env[termVar(a.S)]
		_, tOld := env[termVar(a.T)]
		if !assign(env, a.S, key) {
			return false
		}
		if !assign(env, a.T, val) {
			// roll back S if we newly bound it
			if !a.S.Const && !sOld {
				delete(env, a.S.Name)
			}
			return false
		}
		if match(db, rest, env) {
			return true
		}
		if !a.S.Const && !sOld {
			delete(env, a.S.Name)
		}
		if !a.T.Const && !tOld {
			delete(env, a.T.Name)
		}
		return false
	}

	if key, ok := bind(env, a.S); ok {
		for _, val := range db.Block(a.Rel, key) {
			if try(key, val) {
				return true
			}
		}
		return false
	}
	// Key unbound: scan all facts of the relation.
	for _, f := range db.Facts() {
		if f.Rel != a.Rel {
			continue
		}
		if try(f.Key, f.Val) {
			return true
		}
	}
	return false
}

func termVar(t Term) string {
	if t.Const {
		return ""
	}
	return t.Name
}

// bind resolves t under env; ok is false when t is an unbound variable.
func bind(env map[string]string, t Term) (string, bool) {
	if t.Const {
		return t.Name, true
	}
	v, ok := env[t.Name]
	return v, ok
}

// assign unifies t with constant c under env; it reports success and may
// extend env.
func assign(env map[string]string, t Term, c string) bool {
	if t.Const {
		return t.Name == c
	}
	if v, ok := env[t.Name]; ok {
		return v == c
	}
	env[t.Name] = c
	return true
}

// IsCertain decides CERTAINTY(q) for a generic conjunctive query by
// exhaustive repair enumeration. Ground truth for small instances.
func IsCertain(db *instance.Instance, q Query) bool {
	certain := true
	forEachRepair(db, func(r *instance.Instance) bool {
		if !Satisfied(r, q) {
			certain = false
			return false
		}
		return true
	})
	return certain
}

// forEachRepair is a local repair enumerator (kept here to avoid an
// import cycle with internal/repairs, which depends on nothing of ours;
// duplication is two dozen lines and keeps package layering flat).
func forEachRepair(db *instance.Instance, visit func(*instance.Instance) bool) {
	blocks := db.Blocks()
	var rec func(i int, r *instance.Instance) bool
	rec = func(i int, r *instance.Instance) bool {
		if i == len(blocks) {
			return visit(r)
		}
		id := blocks[i]
		for _, v := range db.Block(id.Rel, id.Key) {
			f := instance.Fact{Rel: id.Rel, Key: id.Key, Val: v}
			r.Add(f)
			if !rec(i+1, r) {
				return false
			}
			r.Remove(f)
		}
		return true
	}
	rec(0, instance.New())
}
