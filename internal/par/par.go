// Package par holds the tiny fork-join primitives shared by the
// partitioned solver passes: run a fixed-size worker set and cut an
// index space into aligned contiguous ranges. It deliberately has no
// channels, pools, or scheduling — the parallel passes are
// round-synchronous over dense id ranges, so plain goroutines with a
// WaitGroup per phase are both the simplest and the fastest shape.
package par

import "sync"

// Run invokes f(0) .. f(workers-1) concurrently and returns when all
// have finished. f(0) runs on the calling goroutine, so Run(1, f) has
// no synchronization cost at all and is exactly a sequential call.
func Run(workers int, f func(w int)) {
	if workers <= 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			f(w)
		}(w)
	}
	f(0)
	wg.Wait()
}

// Blocks cuts [0, n) into at most parts contiguous ranges and returns
// the boundary slice: range w is [bounds[w], bounds[w+1]). Every
// interior boundary is rounded up to a multiple of align (use 64 to
// make per-range bitset spans word-disjoint), so trailing ranges may
// be empty but the boundaries are always non-decreasing and the last
// is n. At least one range is returned, even for n == 0.
func Blocks(n, parts, align int) []int {
	if parts < 1 {
		parts = 1
	}
	if align < 1 {
		align = 1
	}
	bounds := make([]int, parts+1)
	per := (n + parts - 1) / parts
	// Round the per-range width up to the alignment so interior
	// boundaries stay aligned.
	per = (per + align - 1) / align * align
	for w := 1; w < parts; w++ {
		b := bounds[w-1] + per
		if b > n {
			b = n
		}
		bounds[w] = b
	}
	bounds[parts] = n
	return bounds
}
