package par

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversAllWorkers(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		var mask atomic.Uint64
		Run(workers, func(w int) { mask.Or(1 << uint(w)) })
		want := uint64(1)
		if workers > 1 {
			want = 1<<uint(workers) - 1
		}
		if got := mask.Load(); got != want {
			t.Fatalf("Run(%d): worker mask %b, want %b", workers, got, want)
		}
	}
}

func TestBlocks(t *testing.T) {
	cases := []struct {
		n, parts, align int
	}{
		{0, 4, 64}, {1, 4, 64}, {63, 4, 64}, {64, 4, 64}, {65, 4, 64},
		{1000, 4, 64}, {1000, 1, 64}, {1000, 16, 1}, {5, 16, 64},
		{12345, 7, 64}, {128, 2, 64},
	}
	for _, c := range cases {
		bounds := Blocks(c.n, c.parts, c.align)
		if len(bounds) < 2 {
			t.Fatalf("Blocks(%d,%d,%d): want at least one range, got %v", c.n, c.parts, c.align, bounds)
		}
		if bounds[0] != 0 || bounds[len(bounds)-1] != c.n {
			t.Fatalf("Blocks(%d,%d,%d): endpoints %v", c.n, c.parts, c.align, bounds)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] < bounds[i-1] {
				t.Fatalf("Blocks(%d,%d,%d): not monotone: %v", c.n, c.parts, c.align, bounds)
			}
			if i < len(bounds)-1 && bounds[i]%c.align != 0 && bounds[i] != c.n {
				t.Fatalf("Blocks(%d,%d,%d): interior boundary %d not aligned: %v", c.n, c.parts, c.align, bounds[i], bounds)
			}
		}
	}
}
