package nl

import (
	"testing"

	"cqa/internal/fixpoint"
	"cqa/internal/instance"
	"cqa/internal/words"
	"cqa/internal/workload"
)

// TestIsCertainOptsEquivalence checks the partitioned NL stages against
// the sequential path as oracle: the decision and the full O bitset
// must match on every instance, with Threshold 0 forcing the parallel
// path regardless of size. Covers loop decompositions (RRX) and the
// loop-free delegation to the whole-word fixpoint solver (RXRX).
func TestIsCertainOptsEquivalence(t *testing.T) {
	rnd := func(seed int64, consts, facts int, conflict float64) *instance.Instance {
		return workload.Random(workload.Config{
			Relations:    []string{"R", "X", "Y", "A"},
			Constants:    consts,
			Facts:        facts,
			ConflictRate: conflict,
			Seed:         seed,
		})
	}
	dbs := map[string]*instance.Instance{
		"random-small": rnd(11, 40, 150, 0.4),
		"random-mid":   rnd(12, 400, 2000, 0.3),
		"random-dense": rnd(13, 60, 900, 0.8),
		"chain":        workload.Chain(words.MustParse("RRX"), 300),
		"figure2":      workload.Figure2Family(150),
		"empty":        instance.New(),
	}
	for _, qs := range []string{"RRX", "RRRRRRRRX", "RXRX"} {
		q := words.MustParse(qs)
		for name, db := range dbs {
			seqEval, err := NewEvaluator(q)
			if err != nil {
				t.Fatalf("%s: %v", qs, err)
			}
			want := seqEval.IsCertain(db)
			wantO, iv := seqEval.computeOBits(db, fixpoint.SolveOptions{})
			for _, workers := range []int{2, 8} {
				parEval, err := NewEvaluator(q)
				if err != nil {
					t.Fatal(err)
				}
				opts := fixpoint.SolveOptions{Workers: workers}
				if got := parEval.IsCertainOpts(db, opts); got != want {
					t.Errorf("%s/%s workers=%d: IsCertain = %v, want %v", qs, name, workers, got, want)
				}
				gotO, _ := parEval.computeOBits(db, opts)
				if !gotO.Equal(wantO) {
					t.Errorf("%s/%s workers=%d: O bitsets differ", qs, name, workers)
				}
				if iv.NumConsts() > 0 {
					if s := parEval.ParallelStats(); s.Solves == 0 {
						t.Errorf("%s/%s workers=%d: ParallelStats = %+v, want engaged", qs, name, workers, s)
					}
				}
			}
		}
	}
}

// TestIsCertainOptsDisengaged checks that an unmet threshold keeps the
// sequential path (zero parallel counters, same answer).
func TestIsCertainOptsDisengaged(t *testing.T) {
	db := workload.Figure2Family(80)
	q := words.MustParse("RRX")
	ev, err := NewEvaluator(q)
	if err != nil {
		t.Fatal(err)
	}
	want := ev.IsCertain(db)
	ev2, err := NewEvaluator(q)
	if err != nil {
		t.Fatal(err)
	}
	opts := fixpoint.SolveOptions{Workers: 8, Threshold: db.Interned().NumFacts() + 1}
	if got := ev2.IsCertainOpts(db, opts); got != want {
		t.Fatalf("threshold-gated IsCertain = %v, want %v", got, want)
	}
	if s := ev2.ParallelStats(); s.Solves != 0 || s.Shards != 0 {
		t.Fatalf("ParallelStats = %+v, want zero", s)
	}
}
