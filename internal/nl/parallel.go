package nl

import (
	"sync/atomic"

	"cqa/internal/bitset"
	"cqa/internal/fo"
	"cqa/internal/instance"
	"cqa/internal/par"
)

// Partitioned variants of the instance-bound Lemma 14 stages. Each
// wrapper dispatches to the unchanged sequential implementation for
// workers <= 1 (the single-core path must stay byte-for-byte what it
// was) and to a constant-range-sharded variant otherwise; both produce
// identical artifacts, so a memo entry never records which path built
// it. Tarjan's SCC pass (cycleVertices) is inherently order-dependent
// and stays sequential — everything around it shards.

// parEdgeFloor is the edge-count floor below which the reverse-CSR
// build stays sequential: atomic counting over a few thousand edges
// costs more than the serial counting sort.
const parEdgeFloor = 4096

// computeGraphW dispatches computeGraph by worker count.
func (e *Evaluator) computeGraphW(iv *instance.Interned, avoid bitset.Bits, workers int) ([]int32, []int32) {
	if workers <= 1 {
		return e.computeGraph(iv, avoid)
	}
	return e.computeGraphPar(iv, avoid, workers)
}

// computeGraphPar builds the restricted loop-step CSR with a
// two-pass scheme: workers walk disjoint constant ranges writing each
// constant's out-degree into adjStart[c+1] (disjoint indices) and its
// edges into a worker-local buffer; a serial prefix sum then fixes the
// offsets and each worker's buffer is copied into its contiguous
// segment. The CSR is identical to the sequential build's.
func (e *Evaluator) computeGraphPar(iv *instance.Interned, avoid bitset.Bits, workers int) ([]int32, []int32) {
	nc := iv.NumConsts()
	loopRels := iv.InternWord(e.d.Loop)
	adjStart := make([]int32, nc+1)
	bounds := par.Blocks(nc, workers, 1)
	nw := len(bounds) - 1
	bufs := make([][]int32, nw)
	par.Run(nw, func(w int) {
		var buf instance.WalkBuf
		var out []int32
		for c := bounds[w]; c < bounds[w+1]; c++ {
			deg := 0
			if avoid.Test(c) {
				for _, end := range iv.WalkEnds(int32(c), loopRels, &buf) {
					if avoid.Test(int(end)) {
						out = append(out, end)
						deg++
					}
				}
			}
			adjStart[c+1] = int32(deg)
		}
		bufs[w] = out
	})
	for c := 0; c < nc; c++ {
		adjStart[c+1] += adjStart[c]
	}
	adjList := make([]int32, adjStart[nc])
	par.Run(nw, func(w int) {
		copy(adjList[adjStart[bounds[w]]:], bufs[w])
	})
	return adjStart, adjList
}

// computeOW dispatches computeO by worker count: the pre-word terminal
// DP shards block-wise, and the per-constant consistent-path searches
// — independent by construction — shard by 64-aligned constant ranges
// so the o.Set writes stay word-disjoint.
func (e *Evaluator) computeOW(iv *instance.Interned, p bitset.Bits, workers int) bitset.Bits {
	if workers <= 1 {
		return e.computeO(iv, p)
	}
	nc := iv.NumConsts()
	preRels := iv.InternWord(e.d.Pre)
	o := fo.TerminalBitsetPar(iv, e.d.Pre, workers)
	bounds := par.Blocks(nc, workers, 64)
	par.Run(len(bounds)-1, func(w int) {
		for c := bounds[w]; c < bounds[w+1]; c++ {
			if o.Test(c) {
				continue
			}
			if consistentEndReaches(iv, preRels, int32(c), p) {
				o.Set(c)
			}
		}
	})
	return o
}

// reverseReachW dispatches reverseReach by worker count. The parallel
// variant builds the reverse CSR with atomically counted in-degrees
// and atomic fill cursors (edge order within a vertex's reverse list
// is nondeterministic, but the BFS result is a set, so P is
// deterministic either way); the BFS itself stays sequential — it is
// linear in edges already visited and rarely dominates.
func reverseReachW(adjStart, adjList []int32, targets bitset.Bits, workers int) bitset.Bits {
	if workers <= 1 || len(adjList) < parEdgeFloor {
		return reverseReach(adjStart, adjList, targets)
	}
	n := len(adjStart) - 1
	p := make(bitset.Bits, len(targets))
	copy(p, targets)
	revStart := make([]int32, n+1)
	eb := par.Blocks(len(adjList), workers, 1)
	par.Run(len(eb)-1, func(w int) {
		for _, t := range adjList[eb[w]:eb[w+1]] {
			atomic.AddInt32(&revStart[t+1], 1)
		}
	})
	for i := 0; i < n; i++ {
		revStart[i+1] += revStart[i]
	}
	revList := make([]int32, len(adjList))
	cursor := make([]int32, n)
	copy(cursor, revStart[:n])
	vb := par.Blocks(n, workers, 1)
	par.Run(len(vb)-1, func(w int) {
		for v := vb[w]; v < vb[w+1]; v++ {
			for ei := adjStart[v]; ei < adjStart[v+1]; ei++ {
				t := adjList[ei]
				slot := atomic.AddInt32(&cursor[t], 1) - 1
				revList[slot] = int32(v)
			}
		}
	})
	queue := make([]int32, 0, 16)
	targets.ForEach(func(c int) { queue = append(queue, int32(c)) })
	for head := 0; head < len(queue); head++ {
		c := queue[head]
		for ei := revStart[c]; ei < revStart[c+1]; ei++ {
			a := revList[ei]
			if !p.Test(int(a)) {
				p.Set(int(a))
				queue = append(queue, a)
			}
		}
	}
	return p
}
