package nl

import (
	"testing"

	"cqa/internal/fixpoint"
	"cqa/internal/instance"
	"cqa/internal/words"
)

// nlChurnInstance covers relations both inside and outside the RRX
// decomposition's dependency sets, over a fixed universe.
func nlChurnInstance() *instance.Instance {
	db := instance.New()
	consts := []string{"a", "b", "c", "d", "e", "f"}
	for _, rel := range []string{"R", "X", "Y"} {
		for i, k := range consts {
			db.AddFact(rel, k, consts[(i+2)%len(consts)])
			if i%2 == 0 {
				db.AddFact(rel, k, consts[(i+4)%len(consts)])
			}
		}
	}
	return db
}

func TestNLRepairMatchesColdBuild(t *testing.T) {
	q := words.MustParse("RRX")
	ev, err := NewEvaluator(q)
	if err != nil {
		t.Fatal(err)
	}
	db := nlChurnInstance()
	ev.IsCertain(db) // cold build for the root snapshot

	consts := []string{"a", "b", "c", "d", "e", "f"}
	rels := []string{"R", "X", "Y"}
	for step := 0; step < 60; step++ {
		rel := rels[step%len(rels)]
		k := consts[step%len(consts)]
		v := consts[(step*5+3)%len(consts)]
		f := instance.Fact{Rel: rel, Key: k, Val: v}
		if db.Contains(f) && len(db.Block(rel, k)) > 1 {
			db.Remove(f)
		} else {
			db.Add(f)
		}
		got := ev.IsCertain(db)
		cold, err := NewEvaluator(q)
		if err != nil {
			t.Fatal(err)
		}
		want := cold.IsCertain(db.Clone())
		if got != want {
			t.Fatalf("step %d (%v): repaired = %v, cold = %v", step, f, got, want)
		}
	}
	if s := ev.BindingStats(); s.Repairs == 0 {
		t.Errorf("stats = %+v, want repairs > 0", s)
	}
}

func TestNLRepairSharesUntouchedBinding(t *testing.T) {
	q := words.MustParse("RRX")
	ev, err := NewEvaluator(q)
	if err != nil {
		t.Fatal(err)
	}
	db := nlChurnInstance()
	iv1 := db.Interned()
	b1 := ev.bind(iv1, fixpoint.SolveOptions{})

	// Relation Y is outside pre, loop, and exit of RRX's decomposition:
	// the mutation reaches no slice, so the binding carries over whole.
	db.AddFact("Y", "a", "f")
	iv2 := db.Interned()
	if iv2.Delta() == nil {
		t.Fatalf("in-universe mutation should delta-intern")
	}
	b2 := ev.bind(iv2, fixpoint.SolveOptions{})
	if b2 != b1 {
		t.Errorf("binding must be shared when no dependency relation is touched")
	}

	// A mutation in X (exit only) reuses the loop-terminal stage.
	db.AddFact("X", "b", "e")
	b3 := ev.bind(db.Interned(), fixpoint.SolveOptions{})
	if b3 == b2 {
		t.Errorf("exit-relation mutation must produce a new binding")
	}
	if &b3.loopTerminal[0] != &b2.loopTerminal[0] {
		t.Errorf("loop-terminal stage must be aliased when loop relations are untouched")
	}
}
