package nl

import (
	"math/rand"
	"testing"

	"cqa/internal/fo"
	"cqa/internal/instance"
	"cqa/internal/words"
)

func TestGeneratedProgramIsLinearAndStratified(t *testing.T) {
	for _, qs := range []string{"RRX", "RXRY", "RR", "RXY", "YYRR"} {
		d, err := Decompose(words.MustParse(qs))
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		prog, err := GenerateProgram(d)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if _, err := prog.Stratify(); err != nil {
			t.Errorf("%s: generated program not stratifiable: %v", qs, err)
		}
		if ok, why := prog.IsLinear(); !ok {
			t.Errorf("%s: generated program not linear: %s\n%s", qs, why, prog)
		}
	}
}

func TestDatalogAgreesWithDirectSolver(t *testing.T) {
	queries := []words.Word{
		words.MustParse("RRX"), words.MustParse("RXRY"), words.MustParse("RR"),
		words.MustParse("RXY"), words.MustParse("YYRR"), words.MustParse("RRRX"),
		words.MustParse("XRX"),
	}
	rng := rand.New(rand.NewSource(91))
	for it := 0; it < 80; it++ {
		db := randomInstance(rng, []string{"R", "X", "Y"}, 10, 4)
		for _, q := range queries {
			gotDL, _, err := IsCertainDatalog(db, q)
			if err != nil {
				t.Fatalf("q=%v: %v", q, err)
			}
			gotDirect, _, err := IsCertain(db, q)
			if err != nil {
				t.Fatalf("q=%v: %v", q, err)
			}
			if gotDL != gotDirect {
				t.Fatalf("it=%d db=%s q=%v: datalog=%v direct=%v", it, db, q, gotDL, gotDirect)
			}
		}
	}
}

func TestDatalogTerminalMatchesFO(t *testing.T) {
	// The generated terminal_<tag> predicate must agree with
	// fo.TerminalSet (the Lemma 12 DP).
	rng := rand.New(rand.NewSource(92))
	for it := 0; it < 40; it++ {
		db := randomInstance(rng, []string{"R", "X"}, 8, 4)
		for _, w := range []words.Word{words.MustParse("RX"), words.MustParse("RR"), words.MustParse("X")} {
			d := &Decomposition{Form: "exact", Pre: w, Loop: words.Word{}, Exit: words.Word{}}
			prog, err := GenerateProgram(d)
			if err != nil {
				t.Fatal(err)
			}
			out, err := prog.Eval(BuildEDB(db))
			if err != nil {
				t.Fatal(err)
			}
			want := fo.TerminalSet(db, w)
			for _, c := range db.Adom() {
				if out.Contains("terminal_whole", c) != want[c] {
					t.Fatalf("it=%d db=%s w=%v c=%s: datalog=%v fo=%v",
						it, db, w, c, out.Contains("terminal_whole", c), want[c])
				}
			}
		}
	}
}

func TestFigure2ViaDatalog(t *testing.T) {
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	got, prog, err := IsCertainDatalog(db, words.MustParse("RRX"))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Errorf("Figure 2 is a yes-instance; program:\n%s", prog)
	}
}

func TestEmptyQueryDatalog(t *testing.T) {
	got, _, err := IsCertainDatalog(instance.MustParseFacts("R(a,b)"), words.Word{})
	if err != nil || !got {
		t.Error("empty query is certain")
	}
}
