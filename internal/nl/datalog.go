package nl

import (
	"fmt"
	"strings"

	"cqa/internal/datalog"
	"cqa/internal/instance"
	"cqa/internal/words"
)

// This file emits the linear Datalog programs with stratified negation of
// Claim 5 (Section 6.3): for a certified decomposition q = pre (loop)*
// exit with a "flat" exit (the exit's certain language is the exit word
// itself — always the case for B2b, where the exit is self-join-free),
// the predicate O and the answer predicate are expressible in linear
// Datalog. The generated program mirrors the paper's example program for
// q = UVUVWV: terminal tests are the stratified-negation encoding of the
// Lemma 12 first-order rewriting, the loop reachability is a linear
// transitive closure guarded by exit-terminal vertices, and consistency
// of the pre-path is enforced with the paper's consistent/4 predicate.

// relPred mangles a relation name into a Datalog predicate name.
func relPred(rel string) string { return "rel_" + strings.ToLower(rel) }

// GenerateProgram emits the Claim 5 Datalog program for the
// decomposition. It returns an error when the decomposition's exit
// language is not flat (B2a exits with an inner loop need the fixpoint
// sub-solver, which plain Datalog does not express).
func GenerateProgram(d *Decomposition) (datalog.Program, error) {
	var b strings.Builder

	// Terminal-test subprograms.
	emitTerminal(&b, "pre", d.Pre)
	whole := words.Concat(d.Pre, d.Exit)
	if d.Loop.IsEmpty() {
		// Degenerate: O(c) = c terminal for the whole word.
		emitTerminal(&b, "whole", whole)
		fmt.Fprintf(&b, "o(X) :- terminal_whole(X).\n")
		fmt.Fprintf(&b, "yes :- c(X), not o(X).\n")
		return datalog.Parse(b.String())
	}
	if !flatExit(d) {
		return datalog.Program{}, fmt.Errorf("nl: exit language %s is not flat; no Datalog program emitted", d.ExitRegex)
	}
	emitTerminal(&b, "loop", d.Loop)

	// consistent/4: X1 != X3 or X2 = X4 (paper's predicate).
	b.WriteString("consistent(A,B,C,D) :- c(A), c(B), c(C), c(D), A != C.\n")
	b.WriteString("consistent(A,B,C,D) :- c(A), c(B), c(C), c(D), B = D.\n")

	// avoid(X): X can avoid the exit, i.e. X is terminal for the exit
	// word (flat exits only). An empty exit cannot be avoided, so avoid
	// stays an empty relation in that case.
	if !d.Exit.IsEmpty() {
		emitTerminal(&b, "exit", d.Exit)
		b.WriteString("avoid(X) :- terminal_exit(X).\n")
	}

	// Loop step edges restricted to avoiding vertices.
	emitChainRule(&b, "step", d.Loop, []string{"avoid(X0)", avoidAtEnd(d.Loop)})
	b.WriteString("reachp(X,Y) :- step(X,Y).\n")
	b.WriteString("reachp(X,Z) :- reachp(X,Y), step(Y,Z).\n")

	// Targets and P.
	b.WriteString("target(X) :- avoid(X), terminal_loop(X).\n")
	b.WriteString("target(X) :- reachp(X,X).\n")
	b.WriteString("p(X) :- target(X).\n")
	b.WriteString("p(X) :- reachp(X,Y), target(Y).\n")

	// O via consistent pre-paths.
	b.WriteString("o(X) :- terminal_pre(X).\n")
	if d.Pre.IsEmpty() {
		b.WriteString("o(X) :- c(X), p(X).\n")
	} else {
		emitPrePath(&b, d.Pre)
		b.WriteString("o(X) :- prepath(X,Y), p(Y).\n")
	}
	b.WriteString("yes :- c(X), not o(X).\n")
	return datalog.Parse(b.String())
}

// flatExit reports whether the decomposition's exit certain language is
// the exit word itself.
func flatExit(d *Decomposition) bool {
	switch d.Form {
	case "B2b", "sjf", "exact":
		return true
	case "B2a":
		// Flat iff the certified exit regex is a plain literal.
		s := d.ExitRegex.String()
		return !strings.Contains(s, "*")
	}
	return false
}

func avoidAtEnd(loop words.Word) string {
	return fmt.Sprintf("avoid(X%d)", loop.Len())
}

// emitTerminal writes the stratified-negation encoding of the Lemma 12
// rewriting for word w and the derived terminal predicate:
//
//	cert_<tag>_n(X) :- c(X).
//	bad_<tag>_i(X)  :- rel_i(X,Y), not cert_<tag>_{i+1}(Y).
//	cert_<tag>_i(X) :- rel_i(X,Y), not bad_<tag>_i(X).
//	terminal_<tag>(X) :- c(X), not cert_<tag>_0(X).
func emitTerminal(b *strings.Builder, tag string, w words.Word) {
	n := w.Len()
	fmt.Fprintf(b, "cert_%s_%d(X) :- c(X).\n", tag, n)
	for i := n - 1; i >= 0; i-- {
		rp := relPred(w[i])
		fmt.Fprintf(b, "bad_%s_%d(X) :- %s(X,Y), not cert_%s_%d(Y).\n", tag, i, rp, tag, i+1)
		fmt.Fprintf(b, "cert_%s_%d(X) :- %s(X,Y), not bad_%s_%d(X).\n", tag, i, rp, tag, i)
	}
	fmt.Fprintf(b, "terminal_%s(X) :- c(X), not cert_%s_0(X).\n", tag, tag)
}

// emitChainRule writes: head(X0,Xn) :- rel_0(X0,X1), ..., rel_{n-1}(X_{n-1},Xn),
// extra..., plus pairwise consistency guards between same-relation atoms.
func emitChainRule(b *strings.Builder, head string, w words.Word, extra []string) {
	n := w.Len()
	var parts []string
	for i := 0; i < n; i++ {
		parts = append(parts, fmt.Sprintf("%s(X%d,X%d)", relPred(w[i]), i, i+1))
	}
	parts = append(parts, consistencyGuards(w, 0)...)
	parts = append(parts, extra...)
	fmt.Fprintf(b, "%s(X0,X%d) :- %s.\n", head, n, strings.Join(parts, ", "))
}

// emitPrePath writes prepath(X0,Xn) with consistency guards, mirroring
// the paper's expansion of the consistent path c --pre-->-> d.
func emitPrePath(b *strings.Builder, pre words.Word) {
	n := pre.Len()
	var parts []string
	for i := 0; i < n; i++ {
		parts = append(parts, fmt.Sprintf("%s(X%d,X%d)", relPred(pre[i]), i, i+1))
	}
	parts = append(parts, consistencyGuards(pre, 0)...)
	fmt.Fprintf(b, "prepath(X0,X%d) :- %s.\n", n, strings.Join(parts, ", "))
}

// consistencyGuards returns consistent(Xi,Xi+1,Xj,Xj+1) literals for all
// pairs i < j of positions carrying the same relation name.
func consistencyGuards(w words.Word, offset int) []string {
	var out []string
	for i := 0; i < w.Len(); i++ {
		for j := i + 1; j < w.Len(); j++ {
			if w[i] != w[j] {
				continue
			}
			out = append(out, fmt.Sprintf("consistent(X%d,X%d,X%d,X%d)",
				offset+i, offset+i+1, offset+j, offset+j+1))
		}
	}
	return out
}

// BuildEDB converts an instance into the extensional database expected
// by the generated programs: rel_<r>(key, val) facts plus c(X) for every
// constant of the active domain.
func BuildEDB(db *instance.Instance) *datalog.Database {
	edb := datalog.NewDatabase()
	for _, f := range db.Facts() {
		edb.Add(relPred(f.Rel), f.Key, f.Val)
	}
	for _, c := range db.Adom() {
		edb.Add("c", c)
	}
	return edb
}

// IsCertainDatalog decides CERTAINTY(q) by generating and evaluating the
// Claim 5 Datalog program. It errors when q has no certified flat-exit
// decomposition.
func IsCertainDatalog(db *instance.Instance, q words.Word) (bool, datalog.Program, error) {
	if len(q) == 0 {
		return true, datalog.Program{}, nil
	}
	d, err := Decompose(q)
	if err != nil {
		return false, datalog.Program{}, err
	}
	prog, err := GenerateProgram(d)
	if err != nil {
		return false, datalog.Program{}, err
	}
	out, err := prog.Eval(BuildEDB(db))
	if err != nil {
		return false, prog, fmt.Errorf("nl: evaluating generated program: %w", err)
	}
	return out.Contains("yes"), prog, nil
}
