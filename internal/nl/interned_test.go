package nl

import (
	"math/rand"
	"sync"
	"testing"

	"cqa/internal/fixpoint"
	"cqa/internal/instance"
	"cqa/internal/words"
)

// TestCycleVerticesDeepChain: the SCC computation must survive a
// loop-step graph that is one 50k-vertex chain (it is an iterative
// Tarjan; the recursive version would blow the stack at this depth),
// and still detect the single cycle at the chain's end.
func TestCycleVerticesDeepChain(t *testing.T) {
	const n = 50_000
	// Chain 0 -> 1 -> ... -> n-1, plus the back edge n-1 -> n-2 closing
	// a 2-cycle at the deep end.
	adjStart := make([]int32, n+1)
	adjList := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		adjStart[v] = int32(len(adjList))
		if v < n-1 {
			adjList = append(adjList, int32(v+1))
		} else {
			adjList = append(adjList, int32(v-1))
		}
	}
	adjStart[n] = int32(len(adjList))
	got := cycleVertices(adjStart, adjList)
	if len(got) != 2 {
		t.Fatalf("cycleVertices returned %d vertices, want 2", len(got))
	}
	seen := map[int32]bool{got[0]: true, got[1]: true}
	if !seen[n-2] || !seen[n-1] {
		t.Errorf("cycleVertices = %v, want {%d, %d}", got, n-2, n-1)
	}
}

// TestCycleVerticesSelfLoop: singleton SCCs count only with a self-loop.
func TestCycleVerticesSelfLoop(t *testing.T) {
	// 0 -> 0 (self-loop), 1 -> 2 (acyclic).
	adjStart := []int32{0, 1, 2, 2}
	adjList := []int32{0, 2}
	got := cycleVertices(adjStart, adjList)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("cycleVertices = %v, want [0]", got)
	}
}

// TestEvaluatorInvalidation: a mutation publishes a fresh interned
// snapshot, so the evaluator's memoized artifacts must be rebuilt and
// the answers must track the new instance state. Run with -race (CI
// does): the concurrent phases check that snapshot-keyed artifact
// sharing is race-free.
func TestEvaluatorInvalidation(t *testing.T) {
	e, err := NewEvaluator(words.MustParse("RRX"))
	if err != nil {
		t.Fatal(err)
	}
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")

	concurrent := func(want bool, phase string) {
		t.Helper()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if got := e.IsCertain(db); got != want {
						t.Errorf("%s: IsCertain = %v, want %v", phase, got, want)
						return
					}
				}
			}()
		}
		wg.Wait()
	}

	concurrent(true, "initial")
	iv1 := db.Interned()

	// Mutation: dropping the only X fact makes RRX unsatisfiable in
	// every repair. A stale O would still answer true.
	db.Remove(instance.Fact{Rel: "X", Key: "3", Val: "4"})
	if db.Interned() == iv1 {
		t.Fatal("mutation did not publish a fresh interned snapshot")
	}
	concurrent(false, "after Remove")

	// Restore: certainty must come back through a third snapshot.
	db.AddFact("X", "3", "4")
	concurrent(true, "after re-Add")

	if n := e.bindings.Len(); n != 3 {
		t.Errorf("binding memo holds %d snapshots, want 3", n)
	}
}

// TestNLPropertyVsFixpoint cross-checks the interned NL tier against
// the Figure 5 fixpoint solver (exact for all of C3 ⊇ C2, so it is an
// oracle here) on randomly generated C2 queries and instances. Each
// evaluator is reused across several instances so the per-snapshot
// artifact memo is exercised, not just the build path.
func TestNLPropertyVsFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1406))
	alpha := []string{"R", "X", "Y"}
	cases := 0
	for cases < 200 {
		// Random candidate word; keep it when the NL tier accepts it
		// (C2 with a certified decomposition).
		n := 2 + rng.Intn(6)
		w := make(words.Word, n)
		for i := range w {
			w[i] = alpha[rng.Intn(len(alpha))]
		}
		e, err := NewEvaluator(w)
		if err != nil {
			continue
		}
		oracle := fixpoint.Compile(w)
		for k := 0; k < 4; k++ {
			db := randomInstance(rng, alpha, 30, 8)
			got := e.IsCertain(db)
			// Warm call on the same snapshot must agree with itself.
			if again := e.IsCertain(db); again != got {
				t.Fatalf("q=%v db=%s: warm call flipped %v -> %v", w, db, got, again)
			}
			want := oracle.Solve(db).Certain
			if got != want {
				t.Fatalf("q=%v db=%s: nl=%v fixpoint=%v", w, db, got, want)
			}
			cases++
		}
	}
}
