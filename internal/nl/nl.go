// Package nl implements the NL solver tier of Section 6.3 of the paper:
// for path queries q satisfying condition C2, CERTAINTY(q) is decided by
// the predicates P and O of Lemma 14 (Claims 2–4), computed here with
// reachability over loop-step graphs, with first-order terminal tests
// (Lemma 17 via Lemma 12) at the leaves. The same procedure is also
// emitted as a linear Datalog program with stratified negation (Claim 5)
// runnable on internal/datalog.
//
// A C2 query decomposes (Lemma 3: C2 = B2a ∪ B2b) as
//
//	q = pre · loop^* · exit        (as a language claim, Lemma 16):
//
// L(NFAmin(q)) = pre (loop)* exitLang, where pre is the pre-loop part of
// q (a suffix of loop powers), loop = uv (B2b) or u (B2a), and exitLang
// is the certain language of the exit word (for B2b a single
// self-join-free word w·t; for B2a itself of the form mid (v)^a (v)* tail).
// Every decomposition is CERTIFIED at solve time by DFA equivalence
// against NFAmin(q); uncertifiable corner cases report an error and the
// caller falls back to the (always-correct for C3 ⊇ C2) fixpoint tier.
package nl

import (
	"errors"
	"fmt"

	"cqa/internal/automata"
	"cqa/internal/classify"
	"cqa/internal/fixpoint"
	"cqa/internal/fo"
	"cqa/internal/instance"
	"cqa/internal/regex"
	"cqa/internal/words"
)

// ErrNotC2 is returned when q does not satisfy condition C2.
var ErrNotC2 = errors.New("nl: query does not satisfy C2")

// ErrNoCertifiedDecomposition is returned when no decomposition passes
// the DFA-equivalence certificate; callers should fall back to the
// fixpoint tier.
var ErrNoCertifiedDecomposition = errors.New("nl: no certified loop decomposition found")

// Decomposition is a certified loop decomposition of a C2 query.
type Decomposition struct {
	Form string // "sjf", "B2b" or "B2a"
	// Pre is the part of q before the loop region boundary.
	Pre words.Word
	// Loop is the pumpable word: uv for B2b, u for B2a. Empty for sjf.
	Loop words.Word
	// Exit is the part of q after the loop region. For B2b it is
	// self-join-free; for B2a it may itself contain the v-loop and is
	// handled by the fixpoint sub-solver.
	Exit words.Word
	// ExitRegex is the certain language of Exit (as a regex).
	ExitRegex regex.Expr
	// Language is the full certified regex pre (loop)* exitLang.
	Language regex.Expr
}

// String renders the decomposition.
func (d *Decomposition) String() string {
	return fmt.Sprintf("%s: pre=%v loop=%v exit=%v language=%s", d.Form, d.Pre, d.Loop, d.Exit, d.Language)
}

// Decompose finds and certifies a loop decomposition for a C2 query.
func Decompose(q words.Word) (*Decomposition, error) {
	if ok, _ := classify.C2(q); !ok {
		return nil, ErrNotC2
	}
	if q.IsSelfJoinFree() {
		d := &Decomposition{
			Form:      "sjf",
			Pre:       q.Clone(),
			Loop:      words.Word{},
			Exit:      words.Word{},
			ExitRegex: regex.Eps{},
			Language:  regex.Literal(q),
		}
		return d, nil
	}
	var candidates []*Decomposition
	if w := classify.FindB2b(q); w != nil {
		candidates = append(candidates, decomposeB2b(q, w)...)
	}
	if w := classify.FindB2a(q); w != nil {
		candidates = append(candidates, decomposeB2a(q, w)...)
	}
	// Degenerate case: the minimal language collapses to {q} when every
	// pumped word has q as a proper prefix (e.g. q = RR, q = YXYXY).
	// The avoidance predicate is then handled by the whole-word
	// sub-solver (see ComputeO), which is still an NL computation.
	candidates = append(candidates, &Decomposition{
		Form: "exact", Pre: q.Clone(), Loop: words.Word{}, Exit: words.Word{},
		ExitRegex: regex.Eps{}, Language: regex.Literal(q),
	})
	min := automata.New(q).MinPrefixDFA()
	for _, d := range candidates {
		if regex.ToDFA(d.Language).Equal(min) {
			return d, nil
		}
	}
	return nil, ErrNoCertifiedDecomposition
}

// decomposeB2b slices q inside the pumped word (uv)^k·w·v. The exit is
// self-join-free (a factor of w·v), so its certain language is itself.
func decomposeB2b(q words.Word, w *classify.BWitness) []*Decomposition {
	loop := words.Concat(w.U, w.V)
	if loop.IsEmpty() {
		return nil
	}
	p := w.Pumped
	off := w.Offset
	n := len(q)
	loopRegion := w.K * len(loop)
	b := clamp(loopRegion, off, off+n)
	pre := p.Factor(off, b)
	exit := p.Factor(b, off+n)
	return []*Decomposition{{
		Form:      "B2b",
		Pre:       pre.Clone(),
		Loop:      loop,
		Exit:      exit.Clone(),
		ExitRegex: regex.Literal(exit),
		Language:  regex.Seq(regex.Literal(pre), regex.Star{Body: regex.Literal(loop)}, regex.Literal(exit)),
	}}
}

// decomposeB2a slices q inside the pumped word (u)^j·w·(v)^k. The exit
// part may contain the v-loop; candidate certain languages for the exit
// are mid (v)^a (v)* tail and the degenerate Literal(exit), whichever is
// certified against NFAmin(exit).
func decomposeB2a(q words.Word, w *classify.BWitness) []*Decomposition {
	p := w.Pumped
	off := w.Offset
	n := len(q)
	uRegion := w.J * len(w.U)
	b1 := clamp(uRegion, off, off+n)
	pre := p.Factor(off, b1)
	exit := p.Factor(b1, off+n)

	// Candidate certain languages for the exit word.
	var exitCandidates []regex.Expr
	if len(exit) == 0 {
		exitCandidates = append(exitCandidates, regex.Eps{})
	} else {
		wEnd := clamp(uRegion+len(w.W), b1, off+n)
		mid := p.Factor(b1, wEnd)
		vpart := p.Factor(wEnd, off+n)
		if len(w.V) > 0 {
			a := len(vpart) / len(w.V)
			tail := vpart.Suffix(a * len(w.V))
			exitCandidates = append(exitCandidates,
				regex.Seq(regex.Literal(mid), regex.Power(regex.Literal(w.V), a),
					regex.Star{Body: regex.Literal(w.V)}, regex.Literal(tail)))
		}
		exitCandidates = append(exitCandidates, regex.Literal(exit))
	}
	// The exit language used must be exactly L(NFAmin(exit)): the
	// avoidance sub-solver computes avoidance of that language
	// (Lemma 15 makes avoidance of L↬(exit) and of the minimal
	// language coincide).
	var exitRe regex.Expr
	if len(exit) == 0 {
		exitRe = regex.Eps{}
	} else {
		minExit := automata.New(exit).MinPrefixDFA()
		for _, cand := range exitCandidates {
			if regex.ToDFA(cand).Equal(minExit) {
				exitRe = cand
				break
			}
		}
		if exitRe == nil {
			return nil
		}
	}

	loop := w.U.Clone()
	if loop.IsEmpty() {
		// No u-loop: the whole query lives in w·(v)^k.
		return []*Decomposition{{
			Form: "B2a", Pre: words.Word{}, Loop: words.Word{},
			Exit: exit.Clone(), ExitRegex: exitRe, Language: exitRe,
		}}
	}
	return []*Decomposition{{
		Form:      "B2a",
		Pre:       pre.Clone(),
		Loop:      loop,
		Exit:      exit.Clone(),
		ExitRegex: exitRe,
		Language:  regex.Seq(regex.Literal(pre), regex.Star{Body: regex.Literal(loop)}, exitRe),
	}}
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Evaluator is the compiled form of the NL tier for one query: the
// certified loop decomposition together with the precompiled fixpoint
// machinery for its sub-words (the whole word when the loop is empty,
// the exit word otherwise). Building an Evaluator pays the Decompose
// cost — candidate enumeration plus DFA-equivalence certification —
// exactly once; IsCertain then runs only instance-dependent work. An
// Evaluator is immutable and safe for concurrent use.
type Evaluator struct {
	q words.Word
	d *Decomposition
	// whole is the compiled fixpoint machinery for pre·exit, used when
	// the decomposition has no loop.
	whole *fixpoint.Compiled
	// exit is the compiled fixpoint machinery for the exit word, used
	// by the avoidance predicate when the loop is nonempty.
	exit *fixpoint.Compiled
}

// NewEvaluator decomposes q (ErrNotC2 / ErrNoCertifiedDecomposition on
// failure) and precompiles the sub-solvers.
func NewEvaluator(q words.Word) (*Evaluator, error) {
	d, err := Decompose(q)
	if err != nil {
		return nil, err
	}
	return newEvaluator(q, d), nil
}

func newEvaluator(q words.Word, d *Decomposition) *Evaluator {
	e := &Evaluator{q: q.Clone(), d: d}
	if d.Loop.IsEmpty() {
		e.whole = fixpoint.Compile(words.Concat(d.Pre, d.Exit))
	} else if !d.Exit.IsEmpty() {
		e.exit = fixpoint.Compile(d.Exit)
	}
	return e
}

// Decomposition returns the certified decomposition the evaluator runs.
func (e *Evaluator) Decomposition() *Decomposition { return e.d }

// IsCertain decides CERTAINTY(q) on db with the precompiled machinery,
// evaluating "∃c ∈ adom(db): ¬O(c)".
func (e *Evaluator) IsCertain(db *instance.Instance) bool {
	if len(e.q) == 0 {
		return true
	}
	o := e.computeO(db)
	for _, c := range db.Adom() {
		if !o[c] {
			return true
		}
	}
	return false
}

// IsCertain decides CERTAINTY(q) for a C2 query via the Lemma 14
// procedure. It returns the decomposition used. An error means no
// certified decomposition was found (fall back to the fixpoint tier).
func IsCertain(db *instance.Instance, q words.Word) (bool, *Decomposition, error) {
	e, err := NewEvaluator(q)
	if err != nil {
		return false, nil, err
	}
	return e.IsCertain(db), e.d, nil
}

// ComputeO computes the predicate O of Lemma 14 for every constant:
// db ⊨ O(c) iff some repair of db contains no path starting at c whose
// trace is in the certified language pre (loop)* exitLang (Claim 4).
func ComputeO(db *instance.Instance, d *Decomposition) map[string]bool {
	return newEvaluator(d.queryWord(), d).computeO(db)
}

// queryWord reconstructs the query word the decomposition covers (only
// the sub-words matter to the evaluator, so pre·exit suffices for the
// loop-free forms and pre/exit individually otherwise).
func (d *Decomposition) queryWord() words.Word { return words.Concat(d.Pre, d.Exit) }

func (e *Evaluator) computeO(db *instance.Instance) map[string]bool {
	d := e.d
	adom := db.Adom()
	o := make(map[string]bool, len(adom))

	if d.Loop.IsEmpty() {
		// Pure word (sjf or loop-free exit): O(c) = c terminal for the
		// whole word, equivalently ¬(every repair has an accepted path
		// from c), computed by the fixpoint sub-solver on the word.
		res := e.whole.Solve(db)
		for _, c := range adom {
			o[c] = !res.Has(c, 0)
		}
		return o
	}

	avoid := e.avoidExit(db)
	// terminal-for-loop vertices (condition (iii)); loop is
	// self-join-free, so the Lemma 12 DP is exact.
	loopTerminal := fo.TerminalSet(db, d.Loop)

	// Loop-step graph restricted to exit-avoiding vertices (condition
	// (ii) of the definition of P).
	targets := make(map[string]bool)
	adj := make(map[string][]string)
	for _, c := range adom {
		if !avoid[c] {
			continue
		}
		if loopTerminal[c] {
			targets[c] = true
		}
		for end := range db.WalkEnds(c, d.Loop) {
			if avoid[end] {
				adj[c] = append(adj[c], end)
			}
		}
	}
	// Vertices on cycles of the restricted graph are also targets
	// (condition (iii), dℓ ∈ {d0..dℓ-1}).
	for _, c := range cycleVertices(adj) {
		targets[c] = true
	}
	// P(d): d avoids the exit and reaches a target in the restricted
	// graph (including d itself being a target).
	p := make(map[string]bool)
	for c := range targets {
		p[c] = true
	}
	// Reverse reachability from targets.
	rev := make(map[string][]string)
	for a, bs := range adj {
		for _, b := range bs {
			rev[b] = append(rev[b], a)
		}
	}
	queue := make([]string, 0, len(targets))
	for c := range targets {
		queue = append(queue, c)
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, a := range rev[c] {
			if !p[a] {
				p[a] = true
				queue = append(queue, a)
			}
		}
	}

	// O(c) = c terminal for pre, or some consistent pre-path from c
	// ends in a vertex satisfying P.
	preTerminal := fo.TerminalSet(db, d.Pre)
	for _, c := range adom {
		if preTerminal[c] {
			o[c] = true
			continue
		}
		for e := range consistentEnds(db, c, d.Pre) {
			if p[e] {
				o[c] = true
				break
			}
		}
	}
	return o
}

// avoidExit computes, per constant d, whether some repair has no path
// from d whose trace is in the certain language of the exit word. By
// Corollary 1 (via the ⪯q-minimal repair of Lemma 6, which minimizes
// start sets for all constants simultaneously), this is the complement
// of the fixpoint relation ⟨d, ε⟩ for the exit word. An empty exit
// cannot be avoided.
func (e *Evaluator) avoidExit(db *instance.Instance) map[string]bool {
	out := make(map[string]bool)
	if e.exit == nil {
		return out
	}
	res := e.exit.Solve(db)
	for _, c := range db.Adom() {
		out[c] = !res.Has(c, 0)
	}
	return out
}

// cycleVertices returns the vertices lying on a directed cycle of the
// graph (self-loops included): members of nontrivial SCCs.
func cycleVertices(adj map[string][]string) []string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var out []string
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				out = append(out, scc...)
				return
			}
			// Self-loop?
			for _, w := range adj[scc[0]] {
				if w == scc[0] {
					out = append(out, scc[0])
					break
				}
			}
		}
	}
	for v := range adj {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return out
}

// consistentEnds returns the endpoints of consistent paths with trace w
// starting at c (Definition 15's db |= c -w->-> d).
func consistentEnds(db *instance.Instance, c string, w words.Word) map[string]bool {
	out := make(map[string]bool)
	chosen := make(map[instance.BlockID]string)
	var rec func(cur string, i int)
	rec = func(cur string, i int) {
		if i == len(w) {
			out[cur] = true
			return
		}
		rel := w[i]
		id := instance.BlockID{Rel: rel, Key: cur}
		if v, ok := chosen[id]; ok {
			rec(v, i+1)
			return
		}
		for _, v := range db.Block(rel, cur) {
			chosen[id] = v
			rec(v, i+1)
			delete(chosen, id)
		}
	}
	rec(c, 0)
	return out
}
