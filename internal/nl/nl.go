// Package nl implements the NL solver tier of Section 6.3 of the paper:
// for path queries q satisfying condition C2, CERTAINTY(q) is decided by
// the predicates P and O of Lemma 14 (Claims 2–4), computed here with
// reachability over loop-step graphs, with first-order terminal tests
// (Lemma 17 via Lemma 12) at the leaves. The same procedure is also
// emitted as a linear Datalog program with stratified negation (Claim 5)
// runnable on internal/datalog.
//
// A C2 query decomposes (Lemma 3: C2 = B2a ∪ B2b) as
//
//	q = pre · loop^* · exit        (as a language claim, Lemma 16):
//
// L(NFAmin(q)) = pre (loop)* exitLang, where pre is the pre-loop part of
// q (a suffix of loop powers), loop = uv (B2b) or u (B2a), and exitLang
// is the certain language of the exit word (for B2b a single
// self-join-free word w·t; for B2a itself of the form mid (v)^a (v)* tail).
// Every decomposition is CERTIFIED at solve time by DFA equivalence
// against NFAmin(q); uncertifiable corner cases report an error and the
// caller falls back to the (always-correct for C3 ⊇ C2) fixpoint tier.
package nl

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"cqa/internal/automata"
	"cqa/internal/bitset"
	"cqa/internal/classify"
	"cqa/internal/fixpoint"
	"cqa/internal/fo"
	"cqa/internal/instance"
	"cqa/internal/memo"
	"cqa/internal/regex"
	"cqa/internal/words"
)

// ErrNotC2 is returned when q does not satisfy condition C2.
var ErrNotC2 = errors.New("nl: query does not satisfy C2")

// ErrNoCertifiedDecomposition is returned when no decomposition passes
// the DFA-equivalence certificate; callers should fall back to the
// fixpoint tier.
var ErrNoCertifiedDecomposition = errors.New("nl: no certified loop decomposition found")

// Decomposition is a certified loop decomposition of a C2 query.
type Decomposition struct {
	Form string // "sjf", "B2b" or "B2a"
	// Pre is the part of q before the loop region boundary.
	Pre words.Word
	// Loop is the pumpable word: uv for B2b, u for B2a. Empty for sjf.
	Loop words.Word
	// Exit is the part of q after the loop region. For B2b it is
	// self-join-free; for B2a it may itself contain the v-loop and is
	// handled by the fixpoint sub-solver.
	Exit words.Word
	// ExitRegex is the certain language of Exit (as a regex).
	ExitRegex regex.Expr
	// Language is the full certified regex pre (loop)* exitLang.
	Language regex.Expr
}

// String renders the decomposition.
func (d *Decomposition) String() string {
	return fmt.Sprintf("%s: pre=%v loop=%v exit=%v language=%s", d.Form, d.Pre, d.Loop, d.Exit, d.Language)
}

// Decompose finds and certifies a loop decomposition for a C2 query.
func Decompose(q words.Word) (*Decomposition, error) {
	if ok, _ := classify.C2(q); !ok {
		return nil, ErrNotC2
	}
	if q.IsSelfJoinFree() {
		d := &Decomposition{
			Form:      "sjf",
			Pre:       q.Clone(),
			Loop:      words.Word{},
			Exit:      words.Word{},
			ExitRegex: regex.Eps{},
			Language:  regex.Literal(q),
		}
		return d, nil
	}
	var candidates []*Decomposition
	if w := classify.FindB2b(q); w != nil {
		candidates = append(candidates, decomposeB2b(q, w)...)
	}
	if w := classify.FindB2a(q); w != nil {
		candidates = append(candidates, decomposeB2a(q, w)...)
	}
	// Degenerate case: the minimal language collapses to {q} when every
	// pumped word has q as a proper prefix (e.g. q = RR, q = YXYXY).
	// The avoidance predicate is then handled by the whole-word
	// sub-solver (see ComputeO), which is still an NL computation.
	candidates = append(candidates, &Decomposition{
		Form: "exact", Pre: q.Clone(), Loop: words.Word{}, Exit: words.Word{},
		ExitRegex: regex.Eps{}, Language: regex.Literal(q),
	})
	min := automata.New(q).MinPrefixDFA()
	for _, d := range candidates {
		if regex.ToDFA(d.Language).Equal(min) {
			return d, nil
		}
	}
	return nil, ErrNoCertifiedDecomposition
}

// decomposeB2b slices q inside the pumped word (uv)^k·w·v. The exit is
// self-join-free (a factor of w·v), so its certain language is itself.
func decomposeB2b(q words.Word, w *classify.BWitness) []*Decomposition {
	loop := words.Concat(w.U, w.V)
	if loop.IsEmpty() {
		return nil
	}
	p := w.Pumped
	off := w.Offset
	n := len(q)
	loopRegion := w.K * len(loop)
	b := clamp(loopRegion, off, off+n)
	pre := p.Factor(off, b)
	exit := p.Factor(b, off+n)
	return []*Decomposition{{
		Form:      "B2b",
		Pre:       pre.Clone(),
		Loop:      loop,
		Exit:      exit.Clone(),
		ExitRegex: regex.Literal(exit),
		Language:  regex.Seq(regex.Literal(pre), regex.Star{Body: regex.Literal(loop)}, regex.Literal(exit)),
	}}
}

// decomposeB2a slices q inside the pumped word (u)^j·w·(v)^k. The exit
// part may contain the v-loop; candidate certain languages for the exit
// are mid (v)^a (v)* tail and the degenerate Literal(exit), whichever is
// certified against NFAmin(exit).
func decomposeB2a(q words.Word, w *classify.BWitness) []*Decomposition {
	p := w.Pumped
	off := w.Offset
	n := len(q)
	uRegion := w.J * len(w.U)
	b1 := clamp(uRegion, off, off+n)
	pre := p.Factor(off, b1)
	exit := p.Factor(b1, off+n)

	// Candidate certain languages for the exit word.
	var exitCandidates []regex.Expr
	if len(exit) == 0 {
		exitCandidates = append(exitCandidates, regex.Eps{})
	} else {
		wEnd := clamp(uRegion+len(w.W), b1, off+n)
		mid := p.Factor(b1, wEnd)
		vpart := p.Factor(wEnd, off+n)
		if len(w.V) > 0 {
			a := len(vpart) / len(w.V)
			tail := vpart.Suffix(a * len(w.V))
			exitCandidates = append(exitCandidates,
				regex.Seq(regex.Literal(mid), regex.Power(regex.Literal(w.V), a),
					regex.Star{Body: regex.Literal(w.V)}, regex.Literal(tail)))
		}
		exitCandidates = append(exitCandidates, regex.Literal(exit))
	}
	// The exit language used must be exactly L(NFAmin(exit)): the
	// avoidance sub-solver computes avoidance of that language
	// (Lemma 15 makes avoidance of L↬(exit) and of the minimal
	// language coincide).
	var exitRe regex.Expr
	if len(exit) == 0 {
		exitRe = regex.Eps{}
	} else {
		minExit := automata.New(exit).MinPrefixDFA()
		for _, cand := range exitCandidates {
			if regex.ToDFA(cand).Equal(minExit) {
				exitRe = cand
				break
			}
		}
		if exitRe == nil {
			return nil
		}
	}

	loop := w.U.Clone()
	if loop.IsEmpty() {
		// No u-loop: the whole query lives in w·(v)^k.
		return []*Decomposition{{
			Form: "B2a", Pre: words.Word{}, Loop: words.Word{},
			Exit: exit.Clone(), ExitRegex: exitRe, Language: exitRe,
		}}
	}
	return []*Decomposition{{
		Form:      "B2a",
		Pre:       pre.Clone(),
		Loop:      loop,
		Exit:      exit.Clone(),
		ExitRegex: exitRe,
		Language:  regex.Seq(regex.Literal(pre), regex.Star{Body: regex.Literal(loop)}, exitRe),
	}}
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Evaluator is the compiled form of the NL tier for one query: the
// certified loop decomposition together with the precompiled fixpoint
// machinery for its sub-words (the whole word when the loop is empty,
// the exit word otherwise). Building an Evaluator pays the Decompose
// cost — candidate enumeration plus DFA-equivalence certification —
// exactly once; IsCertain then runs only instance-dependent work, and
// the instance-bound artifacts of the Lemma 14 procedure (exit
// avoidance, terminal bitsets, the loop-step graph and the predicates P
// and O derived from them) are memoized per interned instance snapshot,
// so repeated calls on an unchanged instance do near-zero work. A
// mutation publishes a fresh *instance.Interned, making stale artifacts
// unreachable — the same invalidation-by-mutation scheme as
// fixpoint.Compiled, sharing its LRU memo policy. An Evaluator is safe
// for concurrent use.
type Evaluator struct {
	q words.Word
	d *Decomposition
	// whole is the compiled fixpoint machinery for pre·exit, used when
	// the decomposition has no loop.
	whole *fixpoint.Compiled
	// exit is the compiled fixpoint machinery for the exit word, used
	// by the avoidance predicate when the loop is nonempty.
	exit *fixpoint.Compiled
	// bindings memoizes the instance-bound artifacts per interned
	// snapshot pointer (loop decompositions only; the loop-free forms
	// delegate to whole, which carries its own memo).
	bindings *memo.LRU[*instance.Interned, *nlBinding]
	// relsExit/relsLoop/relsPre are the relation-name dependency sets of
	// the three artifact stages, driving the slice-granular repair: a
	// touched block of a relation outside a stage's set cannot reach
	// that stage's artifacts, so a lineage repair reuses them.
	relsExit map[string]bool
	relsLoop map[string]bool
	relsPre  map[string]bool

	// parSolves/parShards count memoized binding builds that ran the
	// partitioned passes (see IsCertainOpts); surfaced via
	// ParallelStats together with the sub-solvers' counters.
	parSolves atomic.Uint64
	parShards atomic.Uint64
}

// relSet collects the distinct relation names of a word.
func relSet(w words.Word) map[string]bool {
	out := make(map[string]bool, len(w))
	for _, r := range w {
		out[r] = true
	}
	return out
}

// NewEvaluator decomposes q (ErrNotC2 / ErrNoCertifiedDecomposition on
// failure) and precompiles the sub-solvers.
func NewEvaluator(q words.Word) (*Evaluator, error) {
	d, err := Decompose(q)
	if err != nil {
		return nil, err
	}
	return newEvaluator(q, d), nil
}

func newEvaluator(q words.Word, d *Decomposition) *Evaluator {
	e := &Evaluator{q: q.Clone(), d: d}
	if d.Loop.IsEmpty() {
		e.whole = fixpoint.Compile(words.Concat(d.Pre, d.Exit))
	} else {
		if !d.Exit.IsEmpty() {
			e.exit = fixpoint.Compile(d.Exit)
		}
		// Entry- and byte-bounded like the fixpoint binding memo; a
		// binding is a handful of word-per-64-constants bitsets plus the
		// loop-step CSR.
		e.bindings = memo.NewLRUWithBudget[*instance.Interned, *nlBinding](
			fixpoint.MaxBindings, fixpoint.MaxBindingBytes, nlBindingBytes)
		e.relsExit = relSet(d.Exit)
		e.relsLoop = relSet(d.Loop)
		e.relsPre = relSet(d.Pre)
	}
	return e
}

// Decomposition returns the certified decomposition the evaluator runs.
func (e *Evaluator) Decomposition() *Decomposition { return e.d }

// BindingStats aggregates the hit/miss counters of every per-snapshot
// memo behind the evaluator: the NL artifact memo itself plus the
// binding memos of whichever fixpoint sub-solvers the decomposition
// uses (the loop-free whole, or the exit-word avoidance solver).
func (e *Evaluator) BindingStats() memo.Stats {
	var s memo.Stats
	if e.bindings != nil {
		s = s.Add(e.bindings.Stats())
	}
	if e.whole != nil {
		s = s.Add(e.whole.BindingStats())
	}
	if e.exit != nil {
		s = s.Add(e.exit.BindingStats())
	}
	return s
}

// SetMemoScale sets every memo behind the evaluator — the NL artifact
// memo and the fixpoint sub-solvers' binding memos — to scale × its
// compile-time default byte budget (the soft-memory-watermark hook);
// scale >= 1 restores the defaults.
func (e *Evaluator) SetMemoScale(scale float64) {
	if e.bindings != nil {
		e.bindings.SetBudget(memo.ScaledBudget(fixpoint.MaxBindingBytes, scale))
	}
	if e.whole != nil {
		e.whole.SetMemoScale(scale)
	}
	if e.exit != nil {
		e.exit.SetMemoScale(scale)
	}
}

// IsCertain decides CERTAINTY(q) on db with the precompiled machinery,
// evaluating "∃c ∈ adom(db): ¬O(c)".
func (e *Evaluator) IsCertain(db *instance.Instance) bool {
	return e.IsCertainOpts(db, fixpoint.SolveOptions{})
}

// IsCertainOpts is IsCertain with explicit parallel solve options: when
// opts engages on db's snapshot (see fixpoint.SolveOptions), the
// instance-bound stages of a cold evaluation — the exit-word fixpoint,
// the Lemma 12 terminal DPs, the restricted loop-step graph, and the
// reverse-reachability pass behind P and O — shard across opts.Workers
// (Tarjan's SCC pass stays sequential). Warm calls hit the per-snapshot
// memo either way; the memoized artifacts are identical to the
// single-core path's.
func (e *Evaluator) IsCertainOpts(db *instance.Instance, opts fixpoint.SolveOptions) bool {
	if len(e.q) == 0 {
		return true
	}
	o, iv := e.computeOBits(db, opts)
	// Certain iff some adom constant has its O bit clear.
	return o.Count() < iv.NumConsts()
}

// ParallelStats aggregates the partitioned-path counters of the
// evaluator's own binding builds and its fixpoint sub-solvers.
func (e *Evaluator) ParallelStats() fixpoint.ParallelStats {
	s := fixpoint.ParallelStats{Solves: e.parSolves.Load(), Shards: e.parShards.Load()}
	if e.whole != nil {
		s = s.Add(e.whole.ParallelStats())
	}
	if e.exit != nil {
		s = s.Add(e.exit.ParallelStats())
	}
	return s
}

// IsCertain decides CERTAINTY(q) for a C2 query via the Lemma 14
// procedure. It returns the decomposition used. An error means no
// certified decomposition was found (fall back to the fixpoint tier).
func IsCertain(db *instance.Instance, q words.Word) (bool, *Decomposition, error) {
	e, err := NewEvaluator(q)
	if err != nil {
		return false, nil, err
	}
	return e.IsCertain(db), e.d, nil
}

// ComputeO computes the predicate O of Lemma 14 for every constant:
// db ⊨ O(c) iff some repair of db contains no path starting at c whose
// trace is in the certified language pre (loop)* exitLang (Claim 4).
// The map form is a thin conversion of the interned bitset the
// evaluator computes; callers on hot paths should use Evaluator
// directly.
func ComputeO(db *instance.Instance, d *Decomposition) map[string]bool {
	o, iv := newEvaluator(d.queryWord(), d).computeOBits(db, fixpoint.SolveOptions{})
	out := make(map[string]bool, iv.NumConsts())
	for c := 0; c < iv.NumConsts(); c++ {
		out[iv.Const(int32(c))] = o.Test(c)
	}
	return out
}

// queryWord reconstructs the query word the decomposition covers (only
// the sub-words matter to the evaluator, so pre·exit suffices for the
// loop-free forms and pre/exit individually otherwise).
func (d *Decomposition) queryWord() words.Word { return words.Concat(d.Pre, d.Exit) }

// nlBinding holds the instance-bound artifacts of the Lemma 14
// procedure for one (evaluator, interned snapshot) pair, staged so a
// lineage repair can reuse every stage a mutation does not reach.
// Everything here is a pure function of the immutable snapshot, so the
// binding is itself immutable and safe to share across any number of
// concurrent IsCertain calls — a repaired binding therefore never
// patches the parent's slices in place; stages it reuses are aliased.
type nlBinding struct {
	// avoid: bit d set iff some repair has no exit-trace path from d
	// (complement of the exit word's fixpoint start bits). Depends on
	// the exit word's relations only.
	avoid bitset.Bits
	// loopTerminal is the Lemma 12 terminal DP for the loop word.
	// Depends on the loop word's relations only.
	loopTerminal bitset.Bits
	// adjStart/adjList is the loop-step graph restricted to
	// exit-avoiding vertices (CSR). Depends on avoid and the loop
	// relations.
	adjStart []int32
	adjList  []int32
	// p is the predicate P of Lemma 14: reaches (via the restricted
	// graph) a terminal-or-cycle target. Depends on the graph stage.
	p bitset.Bits
	// o is the predicate O of Lemma 14 over interned constant ids.
	// Depends on p and the pre word's relations.
	o bitset.Bits
}

// nlBindingBytes prices a binding for the memo's byte budget. Stages
// shared with a parent binding are charged to both — a conservative
// over-count.
func nlBindingBytes(b *nlBinding) int64 {
	return 8*int64(len(b.avoid)+len(b.loopTerminal)+len(b.p)+len(b.o)) +
		4*int64(len(b.adjStart)+len(b.adjList))
}

// bind returns the memoized artifacts for iv, building them on first
// use. On a miss it first tries a lineage repair: if an ancestor
// snapshot's binding is resident, only the stages whose relation
// dependency sets meet the touched blocks are recomputed — with an
// equality cut: a recomputed stage that comes out identical to the
// parent's stops the downstream cascade.
func (e *Evaluator) bind(iv *instance.Interned, opts fixpoint.SolveOptions) *nlBinding {
	workers := 1
	if opts.Engaged(iv) {
		workers = opts.Workers
	}
	return e.bindings.GetOrRepair(iv,
		func(peek func(*instance.Interned) (*nlBinding, bool)) (*nlBinding, int, bool) {
			var found *nlBinding
			parent, touched, ok := instance.Lineage(iv, func(a *instance.Interned) bool {
				b, res := peek(a)
				if res {
					found = b
				}
				return res
			})
			if !ok {
				return nil, 0, false
			}
			hops := iv.LineageDepth() - parent.LineageDepth()
			return e.repairBinding(found, iv, touched, opts, workers), hops, true
		},
		func() *nlBinding { return e.buildBinding(iv, opts, workers) })
}

// repairBinding derives iv's binding from an ancestor's along the
// touched block set. Each stage is recomputed only when a touched
// block's relation is in its dependency set or an upstream stage it
// reads actually changed; untouched stages alias the parent's slices.
func (e *Evaluator) repairBinding(parent *nlBinding, iv *instance.Interned, touched []instance.BlockRef, opts fixpoint.SolveOptions, workers int) *nlBinding {
	touchExit, touchLoop, touchPre := false, false, false
	for _, t := range touched {
		rel := iv.Rel(t.Rel)
		touchExit = touchExit || e.relsExit[rel]
		touchLoop = touchLoop || e.relsLoop[rel]
		touchPre = touchPre || e.relsPre[rel]
	}
	if !touchExit && !touchLoop && !touchPre {
		// The mutation reaches no slice of the artifact: the whole
		// binding carries over.
		return parent
	}
	b := &nlBinding{}

	avoidChanged := false
	if touchExit {
		b.avoid = e.computeAvoid(iv, opts)
		avoidChanged = !b.avoid.Equal(parent.avoid)
	} else {
		b.avoid = parent.avoid
	}

	if touchLoop {
		b.loopTerminal = fo.TerminalBitsetPar(iv, e.d.Loop, workers)
	} else {
		b.loopTerminal = parent.loopTerminal
	}

	pChanged := false
	if avoidChanged || touchLoop {
		// The restricted graph reads the loop relations' blocks
		// directly (WalkEnds), so a touched loop block forces a graph
		// rebuild even when the terminal DP came out unchanged.
		b.adjStart, b.adjList = e.computeGraphW(iv, b.avoid, workers)
		b.p = e.computeP(b, workers)
		pChanged = !b.p.Equal(parent.p)
	} else {
		b.adjStart, b.adjList, b.p = parent.adjStart, parent.adjList, parent.p
	}

	if touchPre || pChanged {
		b.o = e.computeOW(iv, b.p, workers)
	} else {
		b.o = parent.o
	}
	return b
}

// computeOBits computes the predicate O as a bitset over the interned
// constant ids of db's current snapshot.
func (e *Evaluator) computeOBits(db *instance.Instance, opts fixpoint.SolveOptions) (bitset.Bits, *instance.Interned) {
	iv := db.Interned()
	if e.d.Loop.IsEmpty() {
		// Pure word (sjf or loop-free exit): O(c) = c terminal for the
		// whole word, equivalently ¬(every repair has an accepted path
		// from c), computed by the fixpoint sub-solver on the word. The
		// background context cannot fail the entry check, so the error
		// is structurally nil.
		res, _ := e.whole.SolveInternedCtx(context.Background(), iv, opts)
		o := bitset.New(iv.NumConsts())
		o.NotFrom(res.StartBits(), iv.NumConsts())
		return o, iv
	}
	return e.bind(iv, opts).o, iv
}

// buildBinding runs the instance-bound half of the Lemma 14 procedure
// for one snapshot from scratch: the avoidance and terminal predicates,
// the restricted loop-step graph, its cycle/terminal targets, reverse
// reachability (P), and finally O via consistent pre-paths. Everything
// is derived from iv alone, so the memoized result can never mix two
// snapshots. The stages are the repair granularity of repairBinding.
func (e *Evaluator) buildBinding(iv *instance.Interned, opts fixpoint.SolveOptions, workers int) *nlBinding {
	if workers > 1 {
		e.parSolves.Add(1)
		e.parShards.Add(uint64(workers))
	}
	b := &nlBinding{
		avoid:        e.computeAvoid(iv, opts),
		loopTerminal: fo.TerminalBitsetPar(iv, e.d.Loop, workers),
	}
	b.adjStart, b.adjList = e.computeGraphW(iv, b.avoid, workers)
	b.p = e.computeP(b, workers)
	b.o = e.computeOW(iv, b.p, workers)
	return b
}

// computeAvoid computes the exit-avoidance predicate: bit d set iff
// some repair has no path from d whose trace is in the certain language
// of the exit word. By Corollary 1 (via the ⪯q-minimal repair of
// Lemma 6, which minimizes start sets for all constants
// simultaneously), this is the complement of the fixpoint relation
// ⟨d, ε⟩ for the exit word. An empty exit cannot be avoided.
func (e *Evaluator) computeAvoid(iv *instance.Interned, opts fixpoint.SolveOptions) bitset.Bits {
	nc := iv.NumConsts()
	avoid := bitset.New(nc)
	if e.exit != nil {
		res, _ := e.exit.SolveInternedCtx(context.Background(), iv, opts)
		avoid.NotFrom(res.StartBits(), nc)
	}
	return avoid
}

// computeGraph builds the loop-step graph restricted to exit-avoiding
// vertices (condition (ii) of the definition of P), as a CSR over
// constant ids.
func (e *Evaluator) computeGraph(iv *instance.Interned, avoid bitset.Bits) (adjStart, adjList []int32) {
	nc := iv.NumConsts()
	loopRels := iv.InternWord(e.d.Loop)
	adjStart = make([]int32, nc+1)
	var buf instance.WalkBuf
	for c := 0; c < nc; c++ {
		adjStart[c] = int32(len(adjList))
		if !avoid.Test(c) {
			continue
		}
		for _, end := range iv.WalkEnds(int32(c), loopRels, &buf) {
			if avoid.Test(int(end)) {
				adjList = append(adjList, end)
			}
		}
	}
	adjStart[nc] = int32(len(adjList))
	return adjStart, adjList
}

// computeP derives the predicate P from the graph stage: targets are
// the terminal-for-loop vertices that avoid the exit (condition (iii);
// the loop word is self-join-free, so the Lemma 12 DP is exact) plus
// the vertices on cycles of the restricted graph (dℓ ∈ {d0..dℓ-1});
// P is reverse reachability from the targets.
func (e *Evaluator) computeP(b *nlBinding, workers int) bitset.Bits {
	targets := bitset.New(len(b.avoid) << 6)
	for i := range targets {
		targets[i] = b.avoid[i] & b.loopTerminal[i]
	}
	for _, c := range cycleVertices(b.adjStart, b.adjList) {
		targets.Set(int(c))
	}
	return reverseReachW(b.adjStart, b.adjList, targets, workers)
}

// computeO derives the predicate O: O(c) = c terminal for pre, or some
// consistent pre-path from c ends in a vertex satisfying P.
func (e *Evaluator) computeO(iv *instance.Interned, p bitset.Bits) bitset.Bits {
	nc := iv.NumConsts()
	preRels := iv.InternWord(e.d.Pre)
	o := fo.TerminalBitset(iv, e.d.Pre)
	for c := 0; c < nc; c++ {
		if o.Test(c) {
			continue
		}
		if consistentEndReaches(iv, preRels, int32(c), p) {
			o.Set(c)
		}
	}
	return o
}

// cycleVertices returns the vertices lying on a directed cycle of the
// CSR graph (self-loops included): members of nontrivial SCCs. The SCC
// computation is an iterative Tarjan with an explicit frame stack — the
// restricted loop-step graph can be a chain as deep as the active
// domain, which would overflow the stack recursively.
func cycleVertices(adjStart, adjList []int32) []int32 {
	n := len(adjStart) - 1
	const unvisited = int32(-1)
	index := make([]int32, n)
	for i := range index {
		index[i] = unvisited
	}
	low := make([]int32, n)
	onStack := make([]bool, n)
	stack := make([]int32, 0, 16)
	type frame struct {
		v  int32
		ei int32 // next out-edge cursor into adjList
	}
	var frames []frame
	var next int32
	var out []int32
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		frames = append(frames[:0], frame{int32(root), adjStart[root]})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < adjStart[v+1] {
				w := adjList[f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, adjStart[w]})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			// v is an SCC root: pop its component (v included).
			sccStart := len(stack) - 1
			for stack[sccStart] != v {
				sccStart--
			}
			scc := stack[sccStart:]
			for _, w := range scc {
				onStack[w] = false
			}
			if len(scc) > 1 {
				out = append(out, scc...)
			} else {
				// Singleton: on a cycle only via a self-loop.
				for ei := adjStart[v]; ei < adjStart[v+1]; ei++ {
					if adjList[ei] == v {
						out = append(out, v)
						break
					}
				}
			}
			stack = stack[:sccStart]
		}
	}
	return out
}

// reverseReach marks every vertex of the CSR graph that reaches a
// target vertex (targets included): BFS from the targets over the
// reversed edges.
func reverseReach(adjStart, adjList []int32, targets bitset.Bits) bitset.Bits {
	n := len(adjStart) - 1
	p := make(bitset.Bits, len(targets))
	copy(p, targets)
	// Reverse CSR by counting sort.
	revStart := make([]int32, n+1)
	for _, w := range adjList {
		revStart[w+1]++
	}
	for i := 0; i < n; i++ {
		revStart[i+1] += revStart[i]
	}
	revList := make([]int32, len(adjList))
	cursor := make([]int32, n)
	copy(cursor, revStart[:n])
	for v := 0; v < n; v++ {
		for ei := adjStart[v]; ei < adjStart[v+1]; ei++ {
			w := adjList[ei]
			revList[cursor[w]] = int32(v)
			cursor[w]++
		}
	}
	queue := make([]int32, 0, 16)
	targets.ForEach(func(c int) { queue = append(queue, int32(c)) })
	for head := 0; head < len(queue); head++ {
		c := queue[head]
		for ei := revStart[c]; ei < revStart[c+1]; ei++ {
			a := revList[ei]
			if !p.Test(int(a)) {
				p.Set(int(a))
				queue = append(queue, a)
			}
		}
	}
	return p
}

// consistentEndReaches reports whether some consistent path from c with
// trace rels ends in a constant whose P bit is set (Definition 15's
// db |= c -pre->-> d with P(d)). The block choices committed on the
// current path are kept in a small slice — a block revisited along a
// consistent path must reuse its earlier choice, and pre words are
// short, so a linear scan beats a map.
func consistentEndReaches(iv *instance.Interned, rels []int32, c int32, p bitset.Bits) bool {
	type choice struct {
		rid, key, val int32
	}
	chosen := make([]choice, 0, len(rels))
	var rec func(cur int32, i int) bool
	rec = func(cur int32, i int) bool {
		if i == len(rels) {
			return p.Test(int(cur))
		}
		rid := rels[i]
		if rid < 0 {
			return false
		}
		for _, ch := range chosen {
			if ch.rid == rid && ch.key == cur {
				return rec(ch.val, i+1)
			}
		}
		for _, v := range iv.Block(rid, cur) {
			chosen = append(chosen, choice{rid, cur, v})
			if rec(v, i+1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
		}
		return false
	}
	return rec(c, 0)
}
