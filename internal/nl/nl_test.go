package nl

import (
	"errors"
	"math/rand"
	"testing"

	"cqa/internal/classify"
	"cqa/internal/fixpoint"
	"cqa/internal/instance"
	"cqa/internal/regex"
	"cqa/internal/repairs"
	"cqa/internal/words"
)

func TestDecomposeRejectsNonC2(t *testing.T) {
	for _, qs := range []string{"RXRYRY", "ARRX", "RXRXRYRY"} {
		if _, err := Decompose(words.MustParse(qs)); !errors.Is(err, ErrNotC2) {
			t.Errorf("Decompose(%s): want ErrNotC2, got %v", qs, err)
		}
	}
}

func TestDecomposeShapes(t *testing.T) {
	d, err := Decompose(words.MustParse("RRX"))
	if err != nil {
		t.Fatalf("RRX: %v", err)
	}
	// L(NFAmin(RRX)) = RR(R)*X.
	if d.Loop.String() != "R" {
		t.Errorf("RRX loop = %v", d.Loop)
	}

	// RXRY: the certified language must be RX(RX)*RY (Example 3's
	// rewinding closure); the loop alignment may differ (RXR·(XR)*·Y
	// denotes the same language).
	d2, err := Decompose(words.MustParse("RXRY"))
	if err != nil {
		t.Fatalf("RXRY: %v", err)
	}
	if d2.Loop.Len() != 2 {
		t.Errorf("RXRY loop = %v (decomposition %v)", d2.Loop, d2)
	}
	want := regex.Seq(regex.Literal(words.MustParse("RX")),
		regex.Star{Body: regex.Literal(words.MustParse("RX"))},
		regex.Literal(words.MustParse("RY")))
	if !regex.ToDFA(d2.Language).Equal(regex.ToDFA(want)) {
		t.Errorf("RXRY language = %s, want RX(RX)*RY", d2.Language)
	}

	d3, err := Decompose(words.MustParse("RXY"))
	if err != nil || d3.Form != "sjf" {
		t.Errorf("RXY: %v, %v", d3, err)
	}
}

// allC2Queries enumerates the C2 (and not necessarily C1) queries over
// the alphabet up to maxLen.
func allC2Queries(alpha []string, maxLen int) []words.Word {
	var out []words.Word
	var rec func(cur words.Word)
	rec = func(cur words.Word) {
		if len(cur) > 0 {
			if ok, _ := classify.C2(cur); ok {
				out = append(out, cur.Clone())
			}
		}
		if len(cur) == maxLen {
			return
		}
		for _, a := range alpha {
			rec(append(cur, a))
		}
	}
	rec(words.Word{})
	return out
}

// TestAllC2QueriesDecompose verifies that every C2 query up to length 6
// over two symbols (and length 5 over three) admits a certified
// decomposition — i.e. the NL tier never needs the fallback on this
// exhaustively enumerated space.
func TestAllC2QueriesDecompose(t *testing.T) {
	fail := 0
	for _, q := range allC2Queries([]string{"R", "X"}, 6) {
		if _, err := Decompose(q); err != nil {
			t.Logf("no certified decomposition for %v: %v", q, err)
			fail++
		}
	}
	for _, q := range allC2Queries([]string{"R", "X", "Y"}, 5) {
		if _, err := Decompose(q); err != nil {
			t.Logf("no certified decomposition for %v: %v", q, err)
			fail++
		}
	}
	if fail > 0 {
		t.Errorf("%d C2 queries failed to decompose (see log)", fail)
	}
}

func randomInstance(rng *rand.Rand, alpha []string, maxFacts, domSize int) *instance.Instance {
	db := instance.New()
	n := 1 + rng.Intn(maxFacts)
	for i := 0; i < n; i++ {
		rel := alpha[rng.Intn(len(alpha))]
		db.AddFact(rel, string(rune('a'+rng.Intn(domSize))), string(rune('a'+rng.Intn(domSize))))
	}
	return db
}

// TestAgainstExhaustive differentially validates the NL solver against
// exhaustive repair enumeration on every C2 query up to length 5 over
// {R, X}.
func TestAgainstExhaustive(t *testing.T) {
	queries := allC2Queries([]string{"R", "X"}, 5)
	rng := rand.New(rand.NewSource(81))
	for it := 0; it < 150; it++ {
		db := randomInstance(rng, []string{"R", "X"}, 8, 4)
		for _, q := range queries {
			got, _, err := IsCertain(db, q)
			if err != nil {
				t.Fatalf("q=%v: %v", q, err)
			}
			want := repairs.IsCertain(db, q)
			if got != want {
				t.Fatalf("it=%d db=%s q=%v: nl=%v exhaustive=%v", it, db, q, got, want)
			}
		}
	}
}

// TestAgainstFixpoint runs the NL solver against the fixpoint tier on
// larger random instances (where exhaustive enumeration is infeasible),
// over a three-symbol alphabet.
func TestAgainstFixpoint(t *testing.T) {
	queries := allC2Queries([]string{"R", "X", "Y"}, 5)
	rng := rand.New(rand.NewSource(82))
	for it := 0; it < 60; it++ {
		db := randomInstance(rng, []string{"R", "X", "Y"}, 40, 8)
		for _, q := range queries {
			got, _, err := IsCertain(db, q)
			if err != nil {
				t.Fatalf("q=%v: %v", q, err)
			}
			want := fixpoint.Solve(db, q).Certain
			if got != want {
				t.Fatalf("it=%d db=%s q=%v: nl=%v fixpoint=%v", it, db, q, got, want)
			}
		}
	}
}

func TestFigure2ViaNL(t *testing.T) {
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	got, d, err := IsCertain(db, words.MustParse("RRX"))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Errorf("Figure 2 is a yes-instance (decomposition %v)", d)
	}
}

func TestComputeOStructure(t *testing.T) {
	// On the Figure 2 instance with q = RRX, O must be false exactly at
	// the certain start 0.
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	d, err := Decompose(words.MustParse("RRX"))
	if err != nil {
		t.Fatal(err)
	}
	o := ComputeO(db, d)
	if o["0"] {
		t.Error("O(0) must be false: every repair has an RR(R)*X path from 0")
	}
	for _, c := range []string{"2", "3", "4"} {
		if !o[c] {
			t.Errorf("O(%s) must be true", c)
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	db := instance.MustParseFacts("R(a,b)")
	got, _, err := IsCertain(db, words.Word{})
	if err != nil || !got {
		t.Error("empty query is certain")
	}
	got, _, err = IsCertain(instance.New(), words.MustParse("RRX"))
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("empty instance cannot certainly satisfy RRX")
	}
}

func TestDecompositionString(t *testing.T) {
	d, err := Decompose(words.MustParse("RRX"))
	if err != nil {
		t.Fatal(err)
	}
	if d.String() == "" {
		t.Error("empty decomposition string")
	}
}
