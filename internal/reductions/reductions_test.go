package reductions

import (
	"math/rand"
	"testing"

	"cqa/internal/circuits"
	"cqa/internal/conp"
	"cqa/internal/fixpoint"
	"cqa/internal/graphs"
	"cqa/internal/words"
)

// TestLemma18Equivalence machine-checks the NL-hardness reduction: for
// queries violating C1, G has an s-t path iff the built instance is a
// NO-instance of CERTAINTY(q). The target instances are solved with the
// fixpoint tier (all test queries satisfy C3) or the SAT tier.
func TestLemma18Equivalence(t *testing.T) {
	queries := []words.Word{
		words.MustParse("RRX"),  // violates C1 (NL-complete)
		words.MustParse("RXRY"), // violates C1 (NL-complete)
	}
	rng := rand.New(rand.NewSource(101))
	for it := 0; it < 40; it++ {
		n := 2 + rng.Intn(6)
		g := graphs.RandomDAG(rng, n, 0.3)
		s, tt := "v0", "v"+itoa(n-1)
		for _, q := range queries {
			db, err := FromReachability(q, g, s, tt)
			if err != nil {
				t.Fatal(err)
			}
			want := g.Reachable(s, tt) // path from s to t ⟺ NO-instance
			got := !fixpoint.Solve(db, q).Certain
			if got != want {
				t.Fatalf("it=%d q=%v: reachable=%v noInstance=%v db=%s", it, q, want, got, db)
			}
			// Cross-check with the SAT tier.
			if res := conp.IsCertain(db, q); res.Certain == want {
				t.Fatalf("it=%d q=%v: SAT tier disagrees", it, q)
			}
		}
	}
}

func TestLemma18RejectsC1Queries(t *testing.T) {
	g := graphs.New()
	g.AddEdge("a", "b")
	if _, err := FromReachability(words.MustParse("RR"), g, "a", "b"); err == nil {
		t.Error("RR satisfies C1; reduction must refuse")
	}
}

func TestFigure8Shape(t *testing.T) {
	// Figure 8: graph s -> a -> t, query violating C1; the instance has
	// the u/Rv/Rw gadgets. With q = RRX: u = ε, Rv = R, Rw = RX.
	g := graphs.New()
	g.AddEdge("s", "a").AddEdge("a", "t")
	db, err := FromReachability(words.MustParse("RRX"), g, "s", "t")
	if err != nil {
		t.Fatal(err)
	}
	// s is reachable from s, t reachable: NO-instance expected.
	if fixpoint.Solve(db, words.MustParse("RRX")).Certain {
		t.Errorf("reachable graph must yield a NO-instance:\n%s", db)
	}
}

// TestLemma19Equivalence machine-checks the coNP-hardness reduction:
// SAT(ψ) iff NO-instance, with the SAT tier as the target solver.
func TestLemma19Equivalence(t *testing.T) {
	queries := []words.Word{
		words.MustParse("ARRX"),
		words.MustParse("RXRXRYRY"),
	}
	rng := rand.New(rand.NewSource(102))
	for it := 0; it < 40; it++ {
		nv := 1 + rng.Intn(4)
		nc := 1 + rng.Intn(5)
		f := CNF{NumVars: nv}
		for i := 0; i < nc; i++ {
			k := 1 + rng.Intn(3)
			var clause []int
			for j := 0; j < k; j++ {
				v := 1 + rng.Intn(nv)
				if rng.Intn(2) == 0 {
					v = -v
				}
				clause = append(clause, v)
			}
			f.Clauses = append(f.Clauses, clause)
		}
		for _, q := range queries {
			db, err := FromSAT(q, f)
			if err != nil {
				t.Fatal(err)
			}
			want := f.Satisfiable()
			got := !conp.IsCertain(db, q).Certain
			if got != want {
				t.Fatalf("it=%d q=%v: sat=%v noInstance=%v clauses=%v", it, q, want, got, f.Clauses)
			}
		}
	}
}

func TestLemma19RejectsC3Queries(t *testing.T) {
	if _, err := FromSAT(words.MustParse("RRX"), Figure9CNF()); err == nil {
		t.Error("RRX satisfies C3; reduction must refuse")
	}
}

func TestFigure9Worked(t *testing.T) {
	f := Figure9CNF()
	if !f.Satisfiable() {
		t.Fatal("the Figure 9 formula is satisfiable")
	}
	db, err := FromSAT(words.MustParse("ARRX"), f)
	if err != nil {
		t.Fatal(err)
	}
	res := conp.IsCertain(db, words.MustParse("ARRX"))
	if res.Certain {
		t.Error("satisfiable formula must yield a NO-instance")
	}
	if res.Counterexample() == nil {
		t.Error("expected a counterexample repair encoding the assignment")
	}
}

// TestLemma20Equivalence machine-checks the PTIME-hardness reduction:
// circuit value 1 iff YES-instance, with the fixpoint tier (the target
// queries satisfy C3) as solver.
func TestLemma20Equivalence(t *testing.T) {
	queries := []words.Word{
		words.MustParse("RXRYRY"), // C3 but not C2 (PTIME-complete)
		words.MustParse("RYRXRX"), // symmetric PTIME-complete query
	}
	rng := rand.New(rand.NewSource(103))
	for it := 0; it < 40; it++ {
		c, sigma := circuits.Random(rng, 1+rng.Intn(4), 1+rng.Intn(8))
		for _, q := range queries {
			db, err := FromMCVP(q, c, sigma)
			if err != nil {
				t.Fatal(err)
			}
			want := c.Value(sigma)
			got := fixpoint.Solve(db, q).Certain
			if got != want {
				t.Fatalf("it=%d q=%v: value=%v certain=%v", it, q, want, got)
			}
		}
	}
}

func TestLemma20Rejections(t *testing.T) {
	c, sigma := circuits.Random(rand.New(rand.NewSource(1)), 2, 3)
	if _, err := FromMCVP(words.MustParse("RRX"), c, sigma); err == nil {
		t.Error("RRX satisfies C2; must refuse")
	}
	if _, err := FromMCVP(words.MustParse("ARRX"), c, sigma); err == nil {
		t.Error("ARRX violates C3; must refuse")
	}
	// Reproduction finding: RRSRS is PTIME-complete but its only
	// violating triple has an empty v1+ margin, so the Lemma 20 gadget
	// as stated in the paper does not apply (see DESIGN.md).
	if _, err := FromMCVP(words.MustParse("RRSRS"), c, sigma); err == nil {
		t.Error("RRSRS has no usable triple; must refuse with an explanatory error")
	}
}

func TestFigure10Gadgets(t *testing.T) {
	// AND and OR gadgets on a tiny circuit o = x1 AND x2 / o = x1 OR x2.
	for _, kind := range []string{"and", "or"} {
		c := circuits.New("o")
		c.AddInput("x1").AddInput("x2")
		if kind == "and" {
			c.AddAnd("o", "x1", "x2")
		} else {
			c.AddOr("o", "x1", "x2")
		}
		for _, sigma := range []map[string]bool{
			{"x1": false, "x2": false},
			{"x1": true, "x2": false},
			{"x1": false, "x2": true},
			{"x1": true, "x2": true},
		} {
			db, err := FromMCVP(words.MustParse("RXRYRY"), c, sigma)
			if err != nil {
				t.Fatal(err)
			}
			want := c.Value(sigma)
			if got := fixpoint.Solve(db, words.MustParse("RXRYRY")).Certain; got != want {
				t.Errorf("%s gate, σ=%v: certain=%v want=%v", kind, sigma, got, want)
			}
		}
	}
}

func TestCNFHelpers(t *testing.T) {
	f := CNF{NumVars: 2, Clauses: [][]int{{1}, {-1, 2}}}
	if !f.Eval([]bool{false, true, true}) {
		t.Error("assignment x1=x2=true satisfies f")
	}
	if f.Eval([]bool{false, false, false}) {
		t.Error("all-false falsifies clause {1}")
	}
	if !f.Satisfiable() {
		t.Error("f is satisfiable")
	}
	unsat := CNF{NumVars: 1, Clauses: [][]int{{1}, {-1}}}
	if unsat.Satisfiable() {
		t.Error("x ∧ ¬x is unsatisfiable")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
