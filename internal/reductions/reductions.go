// Package reductions implements the constructive hardness reductions of
// Section 7 of the paper:
//
//   - Lemma 18: REACHABILITY ≤ co-CERTAINTY(q) when q violates C1
//     (NL-hardness);
//   - Lemma 19: SAT ≤ co-CERTAINTY(q) when q violates C3
//     (coNP-hardness);
//   - Lemma 20: MCVP ≤ CERTAINTY(q) when q violates C2 but satisfies C3
//     (PTIME-hardness).
//
// Each reduction is a first-order construction of a database instance
// from the source problem instance; the tests machine-check the
// equivalences on randomized inputs against ground-truth solvers, which
// is the executable counterpart of "running" a lower-bound proof.
package reductions

import (
	"fmt"

	"cqa/internal/circuits"
	"cqa/internal/classify"
	"cqa/internal/graphs"
	"cqa/internal/instance"
	"cqa/internal/words"
)

// builder accumulates facts and mints fresh constants (the paper's □
// symbols: each occurrence denotes a distinct fresh constant).
type builder struct {
	db    *instance.Instance
	fresh int
}

func newBuilder() *builder { return &builder{db: instance.New()} }

func (b *builder) freshConst() string {
	b.fresh++
	return fmt.Sprintf("□%d", b.fresh)
}

// phi adds the gadget ϕ_a^z[w]: a path with trace w from a to z through
// fresh intermediate constants. Pass "" for a and/or z to use fresh
// endpoints (the paper's ϕ_⊥ and ϕ^⊥ forms). Empty w adds nothing.
func (b *builder) phi(a, z string, w words.Word) {
	if w.IsEmpty() {
		return
	}
	cur := a
	if cur == "" {
		cur = b.freshConst()
	}
	for i, rel := range w {
		var next string
		if i == len(w)-1 && z != "" {
			next = z
		} else {
			next = b.freshConst()
		}
		b.db.AddFact(rel, cur, next)
		cur = next
	}
}

// FromReachability builds the Lemma 18 instance for an acyclic digraph G
// and vertices s, t, for a query q violating C1. G has a directed path
// from s to t iff the returned instance is a NO-instance of
// CERTAINTY(q).
func FromReachability(q words.Word, g *graphs.Digraph, s, t string) (*instance.Instance, error) {
	ok, viol := classify.C1(q)
	if ok {
		return nil, fmt.Errorf("reductions: %v satisfies C1; the Lemma 18 reduction needs a C1 violation", q)
	}
	u := q.Prefix(viol.I)
	rv := q.Factor(viol.I, viol.J) // R·v
	rw := q.Suffix(viol.J)         // R·w
	b := newBuilder()

	sPrime, tPrime := "s'⊥", "t'⊥"
	// Vertices of G' = V ∪ {s', t'}; edges E ∪ {(s',s), (t,t')}.
	for _, x := range append(g.Vertices(), sPrime) {
		b.phi("", x, u)
	}
	for _, e := range g.Edges() {
		b.phi(e[0], e[1], rv)
	}
	b.phi(sPrime, s, rv)
	b.phi(t, tPrime, rv)
	for _, x := range g.Vertices() {
		b.phi(x, "", rw)
	}
	return b.db, nil
}

// CNF is a propositional formula in conjunctive normal form over
// variables 1..NumVars; positive literal v, negative literal -v.
type CNF struct {
	NumVars int
	Clauses [][]int
}

// Eval reports whether assignment σ (1-based) satisfies the formula.
func (f CNF) Eval(sigma []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			v := l
			if v < 0 {
				v = -v
			}
			if (l > 0) == sigma[v] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Satisfiable decides the formula by enumeration (tests only).
func (f CNF) Satisfiable() bool {
	sigma := make([]bool, f.NumVars+1)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i > f.NumVars {
			return f.Eval(sigma)
		}
		sigma[i] = false
		if rec(i + 1) {
			return true
		}
		sigma[i] = true
		return rec(i + 1)
	}
	return rec(1)
}

// FromSAT builds the Lemma 19 instance for the CNF formula, for a query
// q violating C3. The formula is satisfiable iff the returned instance
// is a NO-instance of CERTAINTY(q).
func FromSAT(q words.Word, f CNF) (*instance.Instance, error) {
	ok, viol := classify.C3(q)
	if ok {
		return nil, fmt.Errorf("reductions: %v satisfies C3; the Lemma 19 reduction needs a C3 violation", q)
	}
	if viol.I == 0 {
		// u must be nonempty; the paper notes that if u = ε then
		// q = RvRw is trivially a suffix of RvRvRw, hence a factor, so
		// a C3 violation always has u ≠ ε.
		return nil, fmt.Errorf("reductions: internal: C3 violation with empty u for %v", q)
	}
	u := q.Prefix(viol.I)
	rv := q.Factor(viol.I, viol.J)
	rw := q.Suffix(viol.J)
	rvrw := words.Concat(rv, rw)
	urv := words.Concat(u, rv)

	b := newBuilder()
	zName := func(v int) string { return fmt.Sprintf("z%d", v) }
	for v := 1; v <= f.NumVars; v++ {
		b.phi(zName(v), "", rw)   // setting z true
		b.phi(zName(v), "", rvrw) // setting z false
	}
	for ci, clause := range f.Clauses {
		cName := fmt.Sprintf("C%d", ci)
		for _, l := range clause {
			if l > 0 {
				b.phi(cName, zName(l), u)
			} else {
				b.phi(cName, zName(-l), urv)
			}
		}
	}
	return b.db, nil
}

// Figure9CNF is a two-clause, three-variable formula of the shape used
// in Figure 9 of the paper (ψ = (x1 ∨ x2) ∧ (x2 ∨ x3), with one literal
// of each clause drawn negative in the figure's gadget): here
// (x1 ∨ ¬x2) ∧ (¬x2 ∨ x3).
func Figure9CNF() CNF {
	return CNF{NumVars: 3, Clauses: [][]int{{1, -2}, {-2, 3}}}
}

// FromMCVP builds the Lemma 20 instance for a monotone circuit and input
// assignment σ, for a query q that satisfies C3 but violates C2. The
// circuit output is 1 under σ iff the returned instance is a
// YES-instance of CERTAINTY(q).
func FromMCVP(q words.Word, c *circuits.Circuit, sigma map[string]bool) (*instance.Instance, error) {
	if ok, _ := classify.C3(q); !ok {
		return nil, fmt.Errorf("reductions: %v violates C3; use FromSAT (CERTAINTY(q) is already coNP-hard)", q)
	}
	if ok, _ := classify.C2(q); ok {
		return nil, fmt.Errorf("reductions: %v satisfies C2; the Lemma 20 reduction needs a C2 violation", q)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}

	// Find a violating consecutive triple q = u·Rv1·Rv2·Rw with v1 ≠ v2,
	// Rw not a prefix of Rv1, and (for the OR gadget) both v1+ and v2+
	// nonempty after stripping the maximal common prefix v. The paper
	// picks v maximal, which makes the first symbols of v1+ and v2+
	// differ.
	type triple struct{ i, j, k int }
	var chosen *triple
	for _, sym := range q.Symbols() {
		occ := q.Occurrences(sym)
		for t := 0; t+2 < len(occ); t++ {
			i, j, k := occ[t], occ[t+1], occ[t+2]
			v1 := q.Factor(i+1, j)
			v2 := q.Factor(j+1, k)
			w := q.Suffix(k + 1)
			if v1.Equal(v2) || v1.HasPrefix(w) {
				continue // not a violating triple
			}
			lcp := 0
			for lcp < v1.Len() && lcp < v2.Len() && v1[lcp] == v2[lcp] {
				lcp++
			}
			if lcp == v1.Len() || lcp == v2.Len() {
				continue // one of v1+, v2+ empty; prefer another triple
			}
			chosen = &triple{i, j, k}
			break
		}
		if chosen != nil {
			break
		}
	}
	if chosen == nil {
		// Reproduction finding (documented in DESIGN.md): the Lemma 20
		// proof asserts "the first relation names of v1+ and v2+ are
		// different", which presumes both margins are nonempty. For
		// q = RRSRS (the paper's own shortest C2-violating word of form
		// 3a) the only violating triple has v1+ = ε, so the OR gadget
		// as written does not apply; PTIME-hardness for such queries
		// needs a modified gadget.
		return nil, fmt.Errorf("reductions: every violating triple of %v has an empty margin; the Lemma 20 OR gadget as stated in the paper does not apply", q)
	}

	u := q.Prefix(chosen.i)
	rv1 := q.Factor(chosen.i, chosen.j)
	rv2 := q.Factor(chosen.j, chosen.k)
	rw := q.Suffix(chosen.k)
	v1 := rv1.Suffix(1)
	v2 := rv2.Suffix(1)
	lcp := 0
	for lcp < v1.Len() && lcp < v2.Len() && v1[lcp] == v2[lcp] {
		lcp++
	}
	v := v1.Prefix(lcp)
	v1p := v1.Suffix(lcp)
	v2p := v2.Suffix(lcp)
	rv := words.Concat(words.Word{q[chosen.i]}, v) // R·v
	rv2rw := words.Concat(rv2, rw)
	urv1 := words.Concat(u, rv1)

	b := newBuilder()
	// Output gate.
	b.phi("", c.Output, urv1)
	// Inputs set to 1.
	for _, x := range c.Inputs() {
		if sigma[x] {
			b.phi(x, "", rv2rw)
		}
	}
	for _, g := range c.Gates() {
		if g.Kind == circuits.Input {
			continue
		}
		b.phi("", g.Name, u)
		b.phi(g.Name, "", rv2rw)
		switch g.Kind {
		case circuits.And:
			b.phi(g.Name, g.In1, rv1)
			b.phi(g.Name, g.In2, rv1)
		case circuits.Or:
			c1 := g.Name + "·c1"
			c2 := g.Name + "·c2"
			b.phi(g.Name, c1, rv)
			b.phi(c1, g.In1, v1p)
			b.phi(c1, c2, v2p)
			b.phi("", c2, u)
			b.phi(c2, g.In2, rv1)
			b.phi(c2, "", rw)
		}
	}
	return b.db, nil
}
