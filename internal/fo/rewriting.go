package fo

import (
	"fmt"

	"cqa/internal/instance"
	"cqa/internal/words"
)

// This file implements Section 6.2 of the paper.
//
// Lemma 12: for a nonempty path query q and constant c, the problem
// CERTAINTY(q[c]) — "does every repair have a path with trace exactly q
// starting at c" — is decided by the inductively constructed rewriting
//
//	ψ(x) = ∃y R(x,y) ∧ ∀z (R(x,z) → φ(z)).
//
// Lemma 13: if q satisfies C1, then ∃x ψ(x) is a consistent first-order
// rewriting for CERTAINTY(q).
//
// Reproduction note (documented in DESIGN.md): ψ is always SOUND
// (db ⊨ ψ(c) implies every repair has an exact-trace-q path from c), but
// as stated in Lemma 12 it is not complete for arbitrary q: a repair may
// complete the walk by cyclically REUSING its own choice in a block that
// ψ's ∀-unfolding quantifies over afresh. Counterexample (machine-checked
// in the tests): q = RRX, db = {R(a,b), R(b,a), R(c,a), R(c,c), X(b,b),
// X(c,a)} — every repair has an exact RRX-path from c (the repair
// choosing R(c,c) uses R(c,c) twice), yet ψ(c) is false. ψ IS exact for
// the word shapes on which the paper relies on it: self-join-free words
// (each block is visited at most once per position), periodic words
// s(uv)^k with uv self-join-free (revisits only weaken the requirement),
// and the top-level sentence ∃x ψ(x) for C1 queries (Lemma 13), all of
// which are differentially tested against exhaustive repair enumeration.

// RewriteCertainAt constructs the formula ψ(x) of Lemma 12 with free
// variable x, such that for every constant c, db ⊨ ψ(c) iff db is a
// yes-instance of CERTAINTY(q[c]).
func RewriteCertainAt(q words.Word, x string) Formula {
	if len(q) == 0 {
		return Truth{Value: true}
	}
	return rewriteFrom(q, 0, x, 1)
}

func rewriteFrom(q words.Word, i int, x string, depth int) Formula {
	if i == len(q) {
		return Truth{Value: true}
	}
	r := q[i]
	y := fmt.Sprintf("y%d", depth)
	z := fmt.Sprintf("z%d", depth)
	sub := rewriteFrom(q, i+1, z, depth+1)
	return And{Fs: []Formula{
		Exists{Var: y, F: Atom{Rel: r, S: Var(x), T: Var(y)}},
		Forall{Var: z, F: Implies{
			P: Atom{Rel: r, S: Var(x), T: Var(z)},
			Q: sub,
		}},
	}}
}

// RewriteCertain constructs the consistent first-order rewriting
// ∃x ψ(x) of Lemma 13. The sentence is a correct decision procedure for
// CERTAINTY(q) whenever q satisfies C1.
func RewriteCertain(q words.Word) Formula {
	if len(q) == 0 {
		return Truth{Value: true}
	}
	return Exists{Var: "x", F: RewriteCertainAt(q, "x")}
}

// CertainStarts computes, by the linear-time dynamic program that
// mirrors the Lemma 12 induction, the set of constants c with db ⊨ ψ(c):
//
//	cert_k(c)  = true for all c (empty suffix)
//	cert_i(c)  = block q[i](c,*) is nonempty ∧ every q[i](c,y) has cert_{i+1}(y)
//
// CertainStarts(db, q) = { c ∈ adom(db) | cert_0(c) }. This is the
// evaluation of ψ(x) from RewriteCertainAt in O(|q|·|db|) time. It is a
// sound under-approximation of the certain exact-trace starts, and exact
// for self-join-free and periodic q (see the package note on Lemma 12).
func CertainStarts(db *instance.Instance, q words.Word) map[string]bool {
	iv := db.Interned()
	bits := CertainStartsBits(iv, q)
	out := make(map[string]bool)
	for c := 0; c < iv.NumConsts(); c++ {
		if bits.Test(c) {
			out[iv.Const(int32(c))] = true
		}
	}
	return out
}

// CertainAt reports whether db ⊨ ψ(c) for the Lemma 12 rewriting ψ of
// q[c]; see the package note for the precise relationship with
// CERTAINTY(q[c]).
func CertainAt(db *instance.Instance, q words.Word, c string) bool {
	if len(q) == 0 {
		return true
	}
	return CertainStarts(db, q)[c]
}

// IsCertainFO decides CERTAINTY(q) using the Lemma 13 rewriting. It is
// a correct decision procedure iff q satisfies C1; callers must check
// classification first (the cqa facade does).
func IsCertainFO(db *instance.Instance, q words.Word) bool {
	if len(q) == 0 {
		return true
	}
	return len(CertainStarts(db, q)) > 0
}

// Terminal reports whether constant c is terminal for q in db
// (Definition 15): some consistent path with a proper-prefix trace of q
// starting at c cannot be right-extended to a consistent path with
// trace q. By Lemma 17 this holds iff db is a NO-instance of
// CERTAINTY(q[c]); it is computed here as ¬ψ(c), which is exact for the
// self-join-free and periodic words on which the NL tier invokes it
// (see the package note on Lemma 12).
func Terminal(db *instance.Instance, q words.Word, c string) bool {
	return !CertainAt(db, q, c)
}

// TerminalSet returns all constants of db that are terminal for q.
func TerminalSet(db *instance.Instance, q words.Word) map[string]bool {
	cert := CertainStarts(db, q)
	out := make(map[string]bool)
	for _, c := range db.Adom() {
		if !cert[c] {
			out[c] = true
		}
	}
	return out
}
