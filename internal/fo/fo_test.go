package fo

import (
	"math/rand"
	"strings"
	"testing"

	"cqa/internal/instance"
	"cqa/internal/repairs"
	"cqa/internal/words"
)

func TestEvalBasics(t *testing.T) {
	db := instance.MustParseFacts("R(a,b) R(b,c)")
	// ∃x ∃y R(x,y)
	f := Exists{"x", Exists{"y", Atom{"R", Var("x"), Var("y")}}}
	if !Eval(db, f) {
		t.Error("∃x∃y R(x,y) should hold")
	}
	// ∀x ∃y R(x,y) fails (c has no successor).
	g := Forall{"x", Exists{"y", Atom{"R", Var("x"), Var("y")}}}
	if Eval(db, g) {
		t.Error("∀x∃y R(x,y) should fail")
	}
	// Constants and equality.
	h := Exists{"y", And{[]Formula{
		Atom{"R", Const("a"), Var("y")},
		Not{Eq{Var("y"), Const("c")}},
	}}}
	if !Eval(db, h) {
		t.Error("∃y (R(a,y) ∧ y≠c) should hold via y=b")
	}
	if !Eval(db, Or{[]Formula{Truth{false}, Truth{true}}}) {
		t.Error("false ∨ true")
	}
	if Eval(db, Or{nil}) || !Eval(db, And{nil}) {
		t.Error("empty or/and")
	}
	if !Eval(db, Implies{Truth{false}, Truth{false}}) {
		t.Error("false → false is true")
	}
}

func TestFormulaStrings(t *testing.T) {
	// The paper's φ for q1 = RR (Section 1):
	// ∃x(∃y R(x,y) ∧ ∀y(R(x,y) → ∃z R(y,z))).
	f := Exists{"x", And{[]Formula{
		Exists{"y", Atom{"R", Var("x"), Var("y")}},
		Forall{"y", Implies{Atom{"R", Var("x"), Var("y")}, Exists{"z", Atom{"R", Var("y"), Var("z")}}}},
	}}}
	s := f.String()
	for _, want := range []string{"∃x", "∀y", "R(x,y)", "→", "∃z"} {
		if !strings.Contains(s, want) {
			t.Errorf("formula string missing %q: %s", want, s)
		}
	}
	if (Eq{Var("x"), Const("c")}).String() != "x = 'c'" {
		t.Error("Eq string")
	}
	if (Truth{true}).String() != "true" || (Truth{false}).String() != "false" {
		t.Error("Truth string")
	}
	if (Not{Truth{true}}).String() != "¬true" {
		t.Error("Not string")
	}
}

func TestUnboundVariablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unbound variable")
		}
	}()
	Eval(instance.New(), Atom{"R", Var("x"), Var("y")})
}

func TestRewriteRRisSection1Formula(t *testing.T) {
	// For q = RR satisfying C1, IsCertainFO must agree with exhaustive
	// repair checking; the paper gives the rewriting φ explicitly.
	q := words.MustParse("RR")
	yes := instance.MustParseFacts("R(a,b) R(b,c)")
	if !IsCertainFO(yes, q) || !repairs.IsCertain(yes, q) {
		t.Error("chain of two R-edges certainly satisfies RR")
	}
	no := instance.MustParseFacts("R(a,b) R(a,c) R(b,x)")
	// Repair {R(a,c), R(b,x)} has no RR path.
	if IsCertainFO(no, q) != repairs.IsCertain(no, q) {
		t.Error("FO and exhaustive disagree")
	}
	// Constructed formula evaluates identically.
	f := RewriteCertain(q)
	for _, db := range []*instance.Instance{yes, no} {
		if Eval(db, f) != IsCertainFO(db, q) {
			t.Errorf("AST evaluation and DP disagree on %s", db)
		}
	}
}

func TestCertainAtExample4(t *testing.T) {
	// Figure 2 instance: no constant certainly starts an exact RRX
	// path, although the instance is a yes-instance of CERTAINTY(RRX).
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	q := words.MustParse("RRX")
	starts := CertainStarts(db, q)
	if len(starts) != 0 {
		t.Errorf("CertainStarts = %v, want empty", starts)
	}
	if CertainAt(db, q, "0") {
		t.Error("0 is not a certain exact-RRX start")
	}
}

// TestCertainStartsExactOnNLShapes: ψ is exact for the word shapes on
// which the paper relies on Lemma 12 — self-join-free words and periodic
// words s(uv)^k with uv self-join-free (the pieces handled by the NL
// tier's terminal tests).
func TestCertainStartsExactOnNLShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	queries := []words.Word{
		// self-join-free
		words.MustParse("R"), words.MustParse("RX"), words.MustParse("RXY"),
		// periodic s(uv)^k
		words.MustParse("RR"), words.MustParse("RRR"), words.MustParse("XRR"),
		words.MustParse("RXRX"), words.MustParse("XRX"), words.MustParse("XRXRX"),
	}
	for it := 0; it < 250; it++ {
		db := instance.New()
		n := 1 + rng.Intn(7)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X"}[rng.Intn(2)]
			db.AddFact(rel, string(rune('a'+rng.Intn(3))), string(rune('a'+rng.Intn(3))))
		}
		for _, q := range queries {
			got := CertainStarts(db, q)
			want := repairs.CertainStarts(db, q)
			if len(got) != len(want) {
				t.Fatalf("it=%d db=%s q=%v: DP=%v exhaustive=%v", it, db, q, got, want)
			}
			for c := range want {
				if !got[c] {
					t.Fatalf("it=%d db=%s q=%v: DP=%v exhaustive=%v", it, db, q, got, want)
				}
			}
		}
	}
}

// TestCertainStartsSound: for arbitrary words, ψ(c) implies that every
// repair has an exact-trace path from c (soundness of the Lemma 12
// rewriting).
func TestCertainStartsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	queries := []words.Word{
		words.MustParse("RRX"), words.MustParse("RXR"), words.MustParse("RXRR"),
		words.MustParse("XRRX"),
	}
	for it := 0; it < 250; it++ {
		db := instance.New()
		n := 1 + rng.Intn(7)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X"}[rng.Intn(2)]
			db.AddFact(rel, string(rune('a'+rng.Intn(3))), string(rune('a'+rng.Intn(3))))
		}
		for _, q := range queries {
			got := CertainStarts(db, q)
			want := repairs.CertainStarts(db, q)
			for c := range got {
				if !want[c] {
					t.Fatalf("it=%d db=%s q=%v: ψ unsound at %s", it, db, q, c)
				}
			}
		}
	}
}

// TestLemma12Incompleteness is the machine-checked record of the
// reproduction finding documented in DESIGN.md: the Lemma 12 rewriting ψ
// is not complete for CERTAINTY(q[c]) on arbitrary path queries. On this
// instance every repair has an exact RRX-path starting at c (the repair
// that chooses R(c,c) realizes it by reusing the fact R(c,c) twice), yet
// ψ(c) is false because the ∀-unfolding requantifies over the block
// R(c,*).
func TestLemma12Incompleteness(t *testing.T) {
	db := instance.MustParseFacts("R(a,b) R(b,a) R(c,a) R(c,c) X(b,b) X(c,a)")
	q := words.MustParse("RRX")
	exact := repairs.CertainStarts(db, q)
	if !exact["c"] {
		t.Fatal("setup: c must be a certain exact-RRX start")
	}
	if CertainAt(db, q, "c") {
		t.Fatal("ψ(c) is expected to be false on this instance; if this " +
			"fails the Lemma 12 discrepancy documented in DESIGN.md no longer reproduces")
	}
}

func TestRewriteASTAgreesWithDP(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	queries := []words.Word{words.MustParse("R"), words.MustParse("RR"), words.MustParse("RX")}
	for it := 0; it < 60; it++ {
		db := instance.New()
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X"}[rng.Intn(2)]
			db.AddFact(rel, string(rune('a'+rng.Intn(3))), string(rune('a'+rng.Intn(3))))
		}
		for _, q := range queries {
			if got, want := Eval(db, RewriteCertain(q)), IsCertainFO(db, q); got != want {
				t.Fatalf("it=%d db=%s q=%v: AST=%v DP=%v", it, db, q, got, want)
			}
		}
	}
}

func TestTerminalExample7(t *testing.T) {
	// Example 7: db = {R(c,d), S(d,c), R(c,e), T(e,f)}; c is terminal
	// for RSRT in db.
	db := instance.MustParseFacts("R(c,d) S(d,c) R(c,e) T(e,f)")
	q := words.MustParse("RSRT")
	if !Terminal(db, q, "c") {
		t.Error("c must be terminal for RSRT")
	}
	// Lemma 17: terminal iff NO-instance of CERTAINTY(q[c]); verify
	// against the exhaustive certain-start computation.
	want := repairs.CertainStarts(db, q)
	for _, c := range db.Adom() {
		if Terminal(db, q, c) == want[c] {
			t.Errorf("Terminal(%s) inconsistent with exhaustive", c)
		}
	}
}

func TestTerminalSet(t *testing.T) {
	db := instance.MustParseFacts("R(a,b) X(b,z)")
	q := words.MustParse("RX")
	ts := TerminalSet(db, q)
	// a certainly starts RX, so a is not terminal; b and z are.
	if ts["a"] || !ts["b"] || !ts["z"] {
		t.Errorf("TerminalSet = %v", ts)
	}
}

func TestEmptyQuery(t *testing.T) {
	db := instance.MustParseFacts("R(a,b)")
	if !IsCertainFO(db, words.Word{}) || !CertainAt(db, words.Word{}, "zzz") {
		t.Error("empty query is certain everywhere")
	}
	if !Eval(db, RewriteCertain(words.Word{})) {
		t.Error("rewriting of empty query is true")
	}
}
