// Package fo implements first-order logic over database instances: a
// formula AST with an active-domain evaluator, and the consistent
// first-order rewritings of Section 6.2 of the paper (Lemmas 12 and 13),
// together with the equivalent linear-time dynamic program and the
// terminal-vertex test of Lemma 17 used by the NL tier.
package fo

import (
	"fmt"
	"strings"

	"cqa/internal/instance"
)

// Formula is a first-order formula over binary relations, with
// quantifiers ranging over the active domain.
type Formula interface {
	fmt.Stringer
	eval(db *instance.Instance, env map[string]string) bool
}

// Atom is R(s, t); S and T are variable names unless marked constant via
// a leading '\” — use the Var/Const helpers instead of raw strings.
type Atom struct {
	Rel  string
	S, T Term
}

// Term is a variable or constant in a formula.
type Term struct {
	Name  string
	Const bool
}

// Var returns a variable term.
func Var(n string) Term { return Term{Name: n} }

// Const returns a constant term.
func Const(n string) Term { return Term{Name: n, Const: true} }

func (t Term) String() string {
	if t.Const {
		return "'" + t.Name + "'"
	}
	return t.Name
}

func (t Term) value(env map[string]string) (string, bool) {
	if t.Const {
		return t.Name, true
	}
	v, ok := env[t.Name]
	return v, ok
}

// Truth is the constant true (or false) formula.
type Truth struct{ Value bool }

// Not is negation.
type Not struct{ F Formula }

// And is conjunction of all conjuncts (empty = true).
type And struct{ Fs []Formula }

// Or is disjunction of all disjuncts (empty = false).
type Or struct{ Fs []Formula }

// Implies is material implication.
type Implies struct{ P, Q Formula }

// Exists is existential quantification of Var over the active domain.
type Exists struct {
	Var string
	F   Formula
}

// Forall is universal quantification of Var over the active domain.
type Forall struct {
	Var string
	F   Formula
}

// Eq is equality of two terms.
type Eq struct{ S, T Term }

func (a Atom) String() string { return fmt.Sprintf("%s(%s,%s)", a.Rel, a.S, a.T) }
func (t Truth) String() string {
	if t.Value {
		return "true"
	}
	return "false"
}
func (n Not) String() string { return "¬" + paren(n.F) }
func (a And) String() string { return joinFormulas(a.Fs, " ∧ ", "true") }
func (o Or) String() string  { return joinFormulas(o.Fs, " ∨ ", "false") }
func (i Implies) String() string {
	return paren(i.P) + " → " + paren(i.Q)
}
func (e Exists) String() string { return "∃" + e.Var + " " + paren(e.F) }
func (f Forall) String() string { return "∀" + f.Var + " " + paren(f.F) }
func (e Eq) String() string     { return e.S.String() + " = " + e.T.String() }

func paren(f Formula) string {
	switch f.(type) {
	case Atom, Truth, Not, Eq:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

func joinFormulas(fs []Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = paren(f)
	}
	return strings.Join(parts, sep)
}

func (a Atom) eval(db *instance.Instance, env map[string]string) bool {
	s, ok := a.S.value(env)
	if !ok {
		panic(fmt.Sprintf("fo: unbound variable %s in %s", a.S, a))
	}
	t, ok := a.T.value(env)
	if !ok {
		panic(fmt.Sprintf("fo: unbound variable %s in %s", a.T, a))
	}
	return db.Contains(instance.Fact{Rel: a.Rel, Key: s, Val: t})
}

func (t Truth) eval(*instance.Instance, map[string]string) bool { return t.Value }

func (n Not) eval(db *instance.Instance, env map[string]string) bool { return !n.F.eval(db, env) }

func (a And) eval(db *instance.Instance, env map[string]string) bool {
	for _, f := range a.Fs {
		if !f.eval(db, env) {
			return false
		}
	}
	return true
}

func (o Or) eval(db *instance.Instance, env map[string]string) bool {
	for _, f := range o.Fs {
		if f.eval(db, env) {
			return true
		}
	}
	return false
}

func (i Implies) eval(db *instance.Instance, env map[string]string) bool {
	return !i.P.eval(db, env) || i.Q.eval(db, env)
}

func (e Exists) eval(db *instance.Instance, env map[string]string) bool {
	old, had := env[e.Var]
	defer restore(env, e.Var, old, had)
	for _, c := range db.Adom() {
		env[e.Var] = c
		if e.F.eval(db, env) {
			return true
		}
	}
	return false
}

func (f Forall) eval(db *instance.Instance, env map[string]string) bool {
	old, had := env[f.Var]
	defer restore(env, f.Var, old, had)
	for _, c := range db.Adom() {
		env[f.Var] = c
		if !f.F.eval(db, env) {
			return false
		}
	}
	return true
}

func (e Eq) eval(_ *instance.Instance, env map[string]string) bool {
	s, ok := e.S.value(env)
	if !ok {
		panic("fo: unbound variable in equality")
	}
	t, ok := e.T.value(env)
	if !ok {
		panic("fo: unbound variable in equality")
	}
	return s == t
}

func restore(env map[string]string, k, old string, had bool) {
	if had {
		env[k] = old
	} else {
		delete(env, k)
	}
}

// Eval evaluates a sentence (formula without free variables) on db.
func Eval(db *instance.Instance, f Formula) bool {
	return f.eval(db, map[string]string{})
}

// EvalWith evaluates f under the given variable bindings.
func EvalWith(db *instance.Instance, f Formula, env map[string]string) bool {
	if env == nil {
		env = map[string]string{}
	}
	return f.eval(db, env)
}
