package fo

import (
	"cqa/internal/bitset"
	"cqa/internal/instance"
	"cqa/internal/words"
)

// Interned evaluation of the Lemma 12 dynamic program: the cert_i sets
// are bitsets over interned constant ids and the per-position pass
// walks the interned block lists, so the DP does no string hashing and
// allocates only the two frontier bitsets. This is the form the NL tier
// calls at its leaves (terminal tests for the pre and loop words).

// CertainStartsBits evaluates the Lemma 12 DP on the interned view of
// an instance: bit c of the result is set iff db ⊨ ψ(c) for the
// rewriting ψ of q. Bits at and beyond NumConsts are zero.
func CertainStartsBits(iv *instance.Interned, q words.Word) bitset.Bits {
	nc := iv.NumConsts()
	cur := bitset.New(nc)
	for i := range cur {
		cur[i] = ^uint64(0)
	}
	cur.MaskTail(nc)
	next := bitset.New(nc)
	for i := len(q) - 1; i >= 0; i-- {
		next.Clear()
		if rid, ok := iv.RelID(q[i]); ok {
			for _, bl := range iv.RelBlocks(rid) {
				all := true
				for _, y := range bl.Vals {
					if !cur.Test(int(y)) {
						all = false
						break
					}
				}
				if all {
					next.Set(int(bl.Key))
				}
			}
		}
		cur, next = next, cur
	}
	return cur
}

// TerminalBitset returns the constants of the interned view that are
// terminal for q (Definition 15, computed as ¬ψ per Lemma 17): the
// complement of CertainStartsBits over the active domain.
func TerminalBitset(iv *instance.Interned, q words.Word) bitset.Bits {
	out := CertainStartsBits(iv, q)
	for i := range out {
		out[i] = ^out[i]
	}
	out.MaskTail(iv.NumConsts())
	return out
}
