package fo

import (
	"cqa/internal/bitset"
	"cqa/internal/instance"
	"cqa/internal/par"
	"cqa/internal/words"
)

// Interned evaluation of the Lemma 12 dynamic program: the cert_i sets
// are bitsets over interned constant ids and the per-position pass
// walks the interned block lists, so the DP does no string hashing and
// allocates only the two frontier bitsets. This is the form the NL tier
// calls at its leaves (terminal tests for the pre and loop words).

// CertainStartsBits evaluates the Lemma 12 DP on the interned view of
// an instance: bit c of the result is set iff db ⊨ ψ(c) for the
// rewriting ψ of q. Bits at and beyond NumConsts are zero.
func CertainStartsBits(iv *instance.Interned, q words.Word) bitset.Bits {
	return CertainStartsBitsPar(iv, q, 1)
}

// parBlockFloor is the relation size below which a DP pass stays
// sequential even when workers are available: sharding a few thousand
// blocks costs more in fork/join than the scan itself.
const parBlockFloor = 2048

// CertainStartsBitsPar is CertainStartsBits with each per-position
// block scan sharded across workers. Shard boundaries are advanced so
// no two shards write the same word of the frontier bitset (block keys
// ascend within a relation), making the direct next.Set writes
// race-free; the result is bit-identical to the sequential DP.
func CertainStartsBitsPar(iv *instance.Interned, q words.Word, workers int) bitset.Bits {
	nc := iv.NumConsts()
	cur := bitset.New(nc)
	for i := range cur {
		cur[i] = ^uint64(0)
	}
	cur.MaskTail(nc)
	next := bitset.New(nc)
	for i := len(q) - 1; i >= 0; i-- {
		next.Clear()
		if rid, ok := iv.RelID(q[i]); ok {
			blocks := iv.RelBlocks(rid)
			scan := func(blocks []instance.InternedBlock) {
				for _, bl := range blocks {
					all := true
					for _, y := range bl.Vals {
						if !cur.Test(int(y)) {
							all = false
							break
						}
					}
					if all {
						next.Set(int(bl.Key))
					}
				}
			}
			if workers <= 1 || len(blocks) < parBlockFloor {
				scan(blocks)
			} else {
				bounds := blockRanges(blocks, workers)
				par.Run(len(bounds)-1, func(w int) {
					scan(blocks[bounds[w]:bounds[w+1]])
				})
			}
		}
		cur, next = next, cur
	}
	return cur
}

// blockRanges cuts a relation's block list into per-worker index
// ranges whose key-id spans do not share a 64-bit bitset word: each
// boundary advances past blocks whose Key>>6 equals its predecessor's.
func blockRanges(blocks []instance.InternedBlock, workers int) []int {
	bounds := par.Blocks(len(blocks), workers, 1)
	for i := 1; i < len(bounds)-1; i++ {
		b := bounds[i]
		if b < bounds[i-1] {
			b = bounds[i-1]
		}
		for b > 0 && b < len(blocks) && blocks[b].Key>>6 == blocks[b-1].Key>>6 {
			b++
		}
		bounds[i] = b
	}
	return bounds
}

// TerminalBitset returns the constants of the interned view that are
// terminal for q (Definition 15, computed as ¬ψ per Lemma 17): the
// complement of CertainStartsBits over the active domain.
func TerminalBitset(iv *instance.Interned, q words.Word) bitset.Bits {
	return TerminalBitsetPar(iv, q, 1)
}

// TerminalBitsetPar is TerminalBitset over the sharded DP.
func TerminalBitsetPar(iv *instance.Interned, q words.Word, workers int) bitset.Bits {
	out := CertainStartsBitsPar(iv, q, workers)
	out.NotFrom(out, iv.NumConsts())
	return out
}
