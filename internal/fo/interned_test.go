package fo

import (
	"math/rand"
	"testing"

	"cqa/internal/instance"
	"cqa/internal/words"
)

// TestTerminalBitsetMatchesTerminalSet: the interned Lemma 12 DP must
// agree bit-for-bit with the string-keyed TerminalSet on random
// instances and words (including relations absent from the instance and
// the empty word).
func TestTerminalBitsetMatchesTerminalSet(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ws := []words.Word{
		{}, words.MustParse("R"), words.MustParse("RX"), words.MustParse("RRX"),
		words.MustParse("RXRYRY"), words.MustParse("A"), words.MustParse("RAX"),
	}
	for it := 0; it < 60; it++ {
		db := instance.New()
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X", "Y"}[rng.Intn(3)]
			db.AddFact(rel, string(rune('a'+rng.Intn(6))), string(rune('a'+rng.Intn(6))))
		}
		iv := db.Interned()
		for _, q := range ws {
			want := TerminalSet(db, q)
			bits := TerminalBitset(iv, q)
			for c := 0; c < iv.NumConsts(); c++ {
				got := bits[c>>6]&(1<<(uint(c)&63)) != 0
				if got != want[iv.Const(int32(c))] {
					t.Fatalf("q=%v db=%s: TerminalBitset(%s)=%v, TerminalSet=%v",
						q, db, iv.Const(int32(c)), got, want[iv.Const(int32(c))])
				}
			}
			// No bits may leak past the active domain.
			for i, w := range bits {
				for b := 0; b < 64; b++ {
					if i<<6|b >= iv.NumConsts() && w&(1<<uint(b)) != 0 {
						t.Fatalf("q=%v: bit %d set beyond NumConsts=%d", q, i<<6|b, iv.NumConsts())
					}
				}
			}
		}
	}
}
