package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cqa/internal/faultinject"
)

func TestGetBuildsOnce(t *testing.T) {
	m := NewLRU[int, int](4)
	var builds atomic.Int32
	for i := 0; i < 5; i++ {
		got := m.Get(7, func() int { builds.Add(1); return 42 })
		if got != 42 {
			t.Fatalf("Get = %d, want 42", got)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1", n)
	}
}

func TestEvictionIsLRU(t *testing.T) {
	m := NewLRU[string, string](2)
	id := func(s string) func() string { return func() string { return s } }
	m.Get("a", id("a"))
	m.Get("b", id("b"))
	m.Get("a", id("a")) // refresh a: b is now the LRU entry
	m.Get("c", id("c")) // evicts b, not a
	if !m.Contains("a") || m.Contains("b") || !m.Contains("c") {
		t.Errorf("resident after eviction: a=%v b=%v c=%v, want a and c only",
			m.Contains("a"), m.Contains("b"), m.Contains("c"))
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
	// b rebuilds on the next Get.
	var rebuilt bool
	m.Get("b", func() string { rebuilt = true; return "b" })
	if !rebuilt {
		t.Error("evicted entry was not rebuilt")
	}
}

func TestConcurrentGetSingleBuild(t *testing.T) {
	m := NewLRU[int, int](8)
	var builds atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				if got := m.Get(k, func() int { builds.Add(1); return k * k }); got != k*k {
					t.Errorf("Get(%d) = %d, want %d", k, got, k*k)
				}
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 8 {
		t.Errorf("builds = %d, want 8 (one per key)", n)
	}
}

func TestBudgetEviction(t *testing.T) {
	m := NewLRUWithBudget[string, int](8, 100, func(v int) int64 { return int64(v) })
	m.Get("a", func() int { return 40 })
	m.Get("b", func() int { return 40 })
	if got := m.CostTotal(); got != 80 {
		t.Fatalf("CostTotal = %d, want 80", got)
	}
	// c pushes the total to 120 > 100: a (the LRU entry) must go.
	m.Get("c", func() int { return 40 })
	if m.Contains("a") || !m.Contains("b") || !m.Contains("c") {
		t.Errorf("resident: a=%v b=%v c=%v, want b and c only",
			m.Contains("a"), m.Contains("b"), m.Contains("c"))
	}
	if got := m.CostTotal(); got != 80 {
		t.Errorf("CostTotal after eviction = %d, want 80", got)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
}

func TestBudgetKeepsSingleOversizedEntry(t *testing.T) {
	m := NewLRUWithBudget[string, int](4, 100, func(v int) int64 { return int64(v) })
	m.Get("huge", func() int { return 500 })
	if !m.Contains("huge") || m.Len() != 1 {
		t.Error("a single over-budget entry must stay resident")
	}
	// A second entry forces the older oversized one out.
	m.Get("small", func() int { return 10 })
	if m.Contains("huge") || !m.Contains("small") {
		t.Errorf("resident: huge=%v small=%v, want small only", m.Contains("huge"), m.Contains("small"))
	}
	if got := m.CostTotal(); got != 10 {
		t.Errorf("CostTotal = %d, want 10", got)
	}
}

func TestCapacityEvictionKeepsCostAccounting(t *testing.T) {
	m := NewLRUWithBudget[int, int](2, 1000, func(v int) int64 { return int64(v) })
	m.Get(1, func() int { return 5 })
	m.Get(2, func() int { return 7 })
	m.Get(3, func() int { return 11 }) // capacity evicts key 1 (cost 5)
	if got := m.CostTotal(); got != 18 {
		t.Errorf("CostTotal = %d, want 18", got)
	}
}

func TestBudgetConcurrent(t *testing.T) {
	m := NewLRUWithBudget[int, int](16, 64, func(v int) int64 { return 8 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 32; k++ {
				if got := m.Get(k, func() int { return k * 3 }); got != k*3 {
					t.Errorf("Get(%d) = %d", k, got)
				}
			}
		}(g)
	}
	wg.Wait()
	if total := m.CostTotal(); total > 64 {
		t.Errorf("CostTotal = %d, want <= 64", total)
	}
	if n := m.Len(); n > 8 {
		t.Errorf("Len = %d, want <= 8 (budget 64 / cost 8)", n)
	}
}

func TestMinimumCapacity(t *testing.T) {
	m := NewLRU[int, int](0)
	m.Get(1, func() int { return 1 })
	m.Get(2, func() int { return 2 })
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1 (capacity clamped to 1)", m.Len())
	}
}

func TestGetOrRepairPrefersRepair(t *testing.T) {
	m := NewLRU[int, string](4)
	m.Get(1, func() string { return "root" })
	var coldBuilt bool
	got := m.GetOrRepair(2,
		func(peek func(int) (string, bool)) (string, int, bool) {
			parent, ok := peek(1)
			if !ok {
				t.Error("peek(1) should see the resident parent")
				return "", 0, false
			}
			return parent + "+patch", 1, true
		},
		func() string { coldBuilt = true; return "cold" })
	if got != "root+patch" || coldBuilt {
		t.Fatalf("GetOrRepair = %q (coldBuilt=%v), want repaired value", got, coldBuilt)
	}
	// The repaired value is resident: a second lookup is a plain hit.
	if got := m.Get(2, func() string { return "cold" }); got != "root+patch" {
		t.Fatalf("warm Get = %q, want repaired value", got)
	}
	s := m.Stats()
	if s.Repairs != 1 || s.MaxLineageDepth != 1 || s.ColdBuilds() != 1 {
		t.Errorf("stats = %+v (cold=%d), want 1 repair, depth 1, 1 cold build", s, s.ColdBuilds())
	}
}

func TestGetOrRepairFallsBackToBuild(t *testing.T) {
	m := NewLRU[int, string](4)
	got := m.GetOrRepair(9,
		func(peek func(int) (string, bool)) (string, int, bool) {
			if _, ok := peek(1); ok {
				t.Error("peek(1) should miss on an empty memo")
			}
			return "", 0, false
		},
		func() string { return "cold" })
	if got != "cold" {
		t.Fatalf("GetOrRepair = %q, want cold build", got)
	}
	if got := m.GetOrRepair(7, nil, func() string { return "nilrepair" }); got != "nilrepair" {
		t.Fatalf("GetOrRepair(nil repair) = %q, want cold build", got)
	}
	s := m.Stats()
	if s.Repairs != 0 || s.Misses != 2 || s.MaxLineageDepth != 0 {
		t.Errorf("stats = %+v, want 2 cold misses and no repairs", s)
	}
}

func TestPeekDoesNotJoinInFlightBuild(t *testing.T) {
	m := NewLRU[int, int](4)
	started, release := make(chan struct{}), make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Get(1, func() int { close(started); <-release; return 1 })
	}()
	<-started
	// The entry for 1 exists but is mid-build: Peek must report absent
	// immediately instead of blocking.
	if _, ok := m.Peek(1); ok {
		t.Error("Peek saw an unfinished build")
	}
	close(release)
	<-done
	if v, ok := m.Peek(1); !ok || v != 1 {
		t.Errorf("Peek after build = (%d, %v), want (1, true)", v, ok)
	}
	// Peek counts as neither hit nor miss.
	if s := m.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 0 hits / 1 miss", s)
	}
}

func TestStatsAddAggregates(t *testing.T) {
	a := Stats{Hits: 1, Misses: 2, Repairs: 1, MaxLineageDepth: 3}
	b := Stats{Hits: 10, Misses: 20, Repairs: 4, MaxLineageDepth: 2}
	got := a.Add(b)
	want := Stats{Hits: 11, Misses: 22, Repairs: 5, MaxLineageDepth: 3}
	if got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
}

func TestGetOrRepairChargesCost(t *testing.T) {
	m := NewLRUWithBudget[int, int](8, 100, func(v int) int64 { return int64(v) })
	m.Get(1, func() int { return 30 })
	m.GetOrRepair(2, func(peek func(int) (int, bool)) (int, int, bool) {
		v, _ := peek(1)
		return v + 30, 1, true
	}, func() int { return 0 })
	if got := m.CostTotal(); got != 90 {
		t.Errorf("CostTotal = %d, want 90 (repaired entries are charged too)", got)
	}
}

// TestBuildPanicDoesNotPoisonEntry: a panicking build must not leave a
// permanently broken entry behind — sync.Once would otherwise consider
// the build done and serve the zero value forever. The panic reaches
// the caller, the entry is removed, and the next Get rebuilds.
func TestBuildPanicDoesNotPoisonEntry(t *testing.T) {
	m := NewLRU[int, int](4)
	func() {
		defer func() {
			if p := recover(); p != "boom" {
				t.Fatalf("recovered %v, want the build's own panic value", p)
			}
		}()
		m.Get(1, func() int { panic("boom") })
		t.Fatal("Get returned after a panicking build")
	}()
	if m.Contains(1) {
		t.Fatal("failed entry stayed resident")
	}
	if got := m.Get(1, func() int { return 99 }); got != 99 {
		t.Fatalf("rebuild after panic: got %d, want 99", got)
	}
}

// TestJoinedBuildPanicDelivered: a goroutine that joined an in-flight
// build which then panicked must itself panic (with ErrBuildPanicked)
// rather than receive the zero value as if the build had succeeded.
func TestJoinedBuildPanicDelivered(t *testing.T) {
	m := NewLRU[int, int](4)
	inBuild := make(chan struct{})
	joinerIn := make(chan struct{})
	joined := make(chan any, 1)
	go func() {
		var p any
		defer func() { joined <- p }()
		defer func() { p = recover() }()
		<-inBuild
		close(joinerIn)
		m.Get(1, func() int { t.Error("joiner rebuilt during the failed build"); return 0 })
	}()
	func() {
		defer func() { recover() }()
		m.Get(1, func() int {
			close(inBuild)
			<-joinerIn
			// Give the joiner a beat to block on the entry's once.
			time.Sleep(10 * time.Millisecond)
			panic("boom")
		})
	}()
	p := <-joined
	err, ok := p.(error)
	if !ok || !errors.Is(err, ErrBuildPanicked) {
		t.Fatalf("joiner recovered %v, want ErrBuildPanicked", p)
	}
	// The key rebuilds cleanly afterwards.
	if got := m.Get(1, func() int { return 7 }); got != 7 {
		t.Fatalf("rebuild after joined panic: got %d, want 7", got)
	}
}

// TestSetBudgetShrinksAndRestores: shrinking the byte budget at
// runtime (the soft-memory watermark) evicts LRU entries down to the
// new bound — but never below one resident entry — and raising it
// simply allows growth again.
func TestSetBudgetShrinksAndRestores(t *testing.T) {
	m := NewLRUWithBudget[int](16, 100, func(v int) int64 { return int64(v) })
	for k := 0; k < 4; k++ {
		m.Get(k, func() int { return 20 }) // total 80 of 100
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
	m.SetBudget(30)
	if got := m.Budget(); got != 30 {
		t.Fatalf("Budget = %d, want 30", got)
	}
	if m.Len() != 1 || m.CostTotal() != 20 {
		t.Fatalf("after shrink: Len=%d CostTotal=%d, want 1 entry of cost 20", m.Len(), m.CostTotal())
	}
	// The survivor is the most recently used key.
	if !m.Contains(3) {
		t.Fatal("shrink evicted the MRU entry")
	}
	// Even a budget below any entry's cost keeps one resident entry.
	m.SetBudget(1)
	if m.Len() != 1 {
		t.Fatalf("after shrink below entry cost: Len=%d, want 1", m.Len())
	}
	m.SetBudget(100)
	for k := 0; k < 4; k++ {
		m.Get(k, func() int { return 20 })
	}
	if m.Len() != 4 {
		t.Fatalf("after restore: Len=%d, want 4", m.Len())
	}
	// A memo without a cost function ignores SetBudget.
	plain := NewLRU[int, int](4)
	plain.SetBudget(1)
	if got := plain.Budget(); got != 0 {
		t.Fatalf("cost-less Budget = %d, want 0", got)
	}
}

func TestScaledBudget(t *testing.T) {
	for _, tc := range []struct {
		def   int64
		scale float64
		want  int64
	}{
		{100, 1, 100},
		{100, 2, 100}, // never grows past the default
		{100, 0.25, 25},
		{100, 0, 1}, // clamped so the bound stays armed
		{100, -1, 1},
	} {
		if got := ScaledBudget(tc.def, tc.scale); got != tc.want {
			t.Errorf("ScaledBudget(%d, %g) = %d, want %d", tc.def, tc.scale, got, tc.want)
		}
	}
}

// TestMemoFailpoints: the MemoBuild failpoint escalates to a panic (a
// build has no error path) and removes the entry; the MemoRepair
// failpoint degrades the repair to the cold builder — the graceful
// path a real repair failure takes.
func TestMemoFailpoints(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	m := NewLRU[int, int](4)
	faultinject.Enable(faultinject.MemoBuild, 1, false)
	func() {
		defer func() {
			var err error
			p := recover()
			if pe, ok := p.(error); ok {
				err = pe
			}
			var inj faultinject.InjectedError
			if !errors.As(err, &inj) || inj.Site != faultinject.MemoBuild {
				t.Fatalf("recovered %v, want injected MemoBuild error", p)
			}
		}()
		m.Get(1, func() int { return 1 })
	}()
	faultinject.Disable(faultinject.MemoBuild)
	if got := m.Get(1, func() int { return 5 }); got != 5 {
		t.Fatalf("rebuild after injected build fault: got %d, want 5", got)
	}

	faultinject.Enable(faultinject.MemoRepair, 1, false)
	var built, repaired bool
	got := m.GetOrRepair(2,
		func(peek func(int) (int, bool)) (int, int, bool) { repaired = true; return 0, 0, true },
		func() int { built = true; return 9 })
	if repaired || !built || got != 9 {
		t.Fatalf("injected repair fault: repaired=%v built=%v got=%d, want cold build of 9", repaired, built, got)
	}
	if m.Stats().Repairs != 0 {
		t.Fatalf("degraded repair still counted: %+v", m.Stats())
	}
}
