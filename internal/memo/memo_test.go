package memo

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetBuildsOnce(t *testing.T) {
	m := NewLRU[int, int](4)
	var builds atomic.Int32
	for i := 0; i < 5; i++ {
		got := m.Get(7, func() int { builds.Add(1); return 42 })
		if got != 42 {
			t.Fatalf("Get = %d, want 42", got)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1", n)
	}
}

func TestEvictionIsLRU(t *testing.T) {
	m := NewLRU[string, string](2)
	id := func(s string) func() string { return func() string { return s } }
	m.Get("a", id("a"))
	m.Get("b", id("b"))
	m.Get("a", id("a")) // refresh a: b is now the LRU entry
	m.Get("c", id("c")) // evicts b, not a
	if !m.Contains("a") || m.Contains("b") || !m.Contains("c") {
		t.Errorf("resident after eviction: a=%v b=%v c=%v, want a and c only",
			m.Contains("a"), m.Contains("b"), m.Contains("c"))
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
	// b rebuilds on the next Get.
	var rebuilt bool
	m.Get("b", func() string { rebuilt = true; return "b" })
	if !rebuilt {
		t.Error("evicted entry was not rebuilt")
	}
}

func TestConcurrentGetSingleBuild(t *testing.T) {
	m := NewLRU[int, int](8)
	var builds atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				if got := m.Get(k, func() int { builds.Add(1); return k * k }); got != k*k {
					t.Errorf("Get(%d) = %d, want %d", k, got, k*k)
				}
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 8 {
		t.Errorf("builds = %d, want 8 (one per key)", n)
	}
}

func TestMinimumCapacity(t *testing.T) {
	m := NewLRU[int, int](0)
	m.Get(1, func() int { return 1 })
	m.Get(2, func() int { return 2 })
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1 (capacity clamped to 1)", m.Len())
	}
}
