// Package memo provides a small bounded LRU memo used by the solver
// tiers to cache instance-bound artifacts per interned instance
// snapshot (*instance.Interned). The key is compared by identity, so a
// mutation of the underlying instance — which publishes a fresh
// snapshot pointer — is itself the invalidation: stale entries can
// never be looked up again and age out of the LRU order.
//
// Memos are bounded two ways: by entry count, and (optionally) by a
// byte budget with a per-entry cost function, so that a handful of
// huge artifacts — a conp CNF is O(|db|·|q|), a fixpoint binding
// O(|q|·|adom|) — cannot pin unbounded memory behind a small entry
// count.
package memo

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"

	"cqa/internal/faultinject"
)

// ErrBuildPanicked is the panic value delivered to a caller that joined
// an in-flight artifact build which itself panicked: the panicking
// builder unwinds with its own panic value, the entry is removed from
// the memo (a later lookup rebuilds), and every goroutine that was
// blocked on the same entry panics with this sentinel so a recover()
// boundary upstream can answer the affected requests individually.
var ErrBuildPanicked = errors.New("memo: joined an artifact build that panicked")

// LRU is a bounded build-once memo. Get returns the cached value for a
// key, building it at most once per residency; when either bound (entry
// count, or the optional byte budget) is exceeded the least-recently-
// used entries are evicted. An LRU is safe for concurrent use; builds
// run outside the memo lock, so a slow build for one key never
// serializes lookups of other keys.
type LRU[K comparable, V any] struct {
	capacity int
	budget   int64 // 0 = unbounded by cost
	cost     func(V) int64

	mu       sync.Mutex
	order    *list.List // *entry[K, V], front = most recently used
	index    map[K]*list.Element
	total    int64 // summed cost of charged resident entries
	hits     uint64
	miss     uint64
	repairs  uint64
	maxDepth uint64
}

// Stats is a snapshot of an LRU's lookup counters. A miss is a lookup
// that created a resident entry (and therefore ran — or joined — the
// build); a hit served an already-resident entry. A key that was
// evicted and looked up again counts as a fresh miss, so Misses is
// exactly the number of entry builds started over the memo's lifetime.
//
// Repairs counts the misses that were satisfied by repairing a resident
// ancestor's artifact along the snapshot lineage (GetOrRepair) instead
// of running the cold builder, so Misses − Repairs is the number of
// cold builds. MaxLineageDepth is the largest lineage distance (delta
// hops between the missed snapshot and the repaired-from ancestor) any
// repair has crossed.
type Stats struct {
	Hits, Misses    uint64
	Repairs         uint64
	MaxLineageDepth uint64
}

// ColdBuilds returns the number of misses that ran the from-scratch
// builder rather than a lineage repair.
func (s Stats) ColdBuilds() uint64 { return s.Misses - s.Repairs }

// Add returns the aggregate of two stats snapshots, for callers
// combining several memos (e.g. a plan's tier artifacts): counters sum,
// MaxLineageDepth takes the maximum.
func (s Stats) Add(t Stats) Stats {
	out := Stats{
		Hits:            s.Hits + t.Hits,
		Misses:          s.Misses + t.Misses,
		Repairs:         s.Repairs + t.Repairs,
		MaxLineageDepth: s.MaxLineageDepth,
	}
	if t.MaxLineageDepth > out.MaxLineageDepth {
		out.MaxLineageDepth = t.MaxLineageDepth
	}
	return out
}

// entry builds its value at most once; concurrent Gets for the same key
// block on the entry, not on the whole memo.
type entry[K comparable, V any] struct {
	key  K
	once sync.Once
	val  V
	// cost accounting happens after the build (the value must exist to
	// be costed); evicted guards an entry whose build finished after it
	// was already displaced, so it is never charged to the total.
	// charged is atomic so warm hits skip the accounting lock entirely.
	cost    int64
	charged atomic.Bool
	evicted bool
	// built is set after once completes, so Peek can serve finished
	// values without blocking on (or deadlocking with) an in-flight
	// build that is itself peeking for ancestors.
	built atomic.Bool
}

// NewLRU returns an LRU bounded at capacity entries (minimum 1), with
// no byte budget.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	return NewLRUWithBudget[K, V](capacity, 0, nil)
}

// NewLRUWithBudget returns an LRU bounded at capacity entries AND at
// budget summed cost units (conventionally bytes), where cost prices a
// built value. A budget <= 0 or a nil cost function disables the cost
// bound. A single entry over budget stays resident on its own — the
// memo never evicts the only entry, so a pathologically large artifact
// still serves warm calls instead of thrashing.
func NewLRUWithBudget[K comparable, V any](capacity int, budget int64, cost func(V) int64) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	if budget <= 0 || cost == nil {
		budget, cost = 0, nil
	}
	return &LRU[K, V]{
		capacity: capacity,
		budget:   budget,
		cost:     cost,
		order:    list.New(),
		index:    make(map[K]*list.Element),
	}
}

// Get returns the memoized value for key, invoking build at most once
// while the key is resident. An evicted value remains usable by callers
// that already hold it; a later Get for the same key rebuilds.
func (m *LRU[K, V]) Get(key K, build func() V) V {
	e, _ := m.acquire(key)
	return m.run(e, build)
}

// GetOrRepair is Get with a lineage-aware miss path: on a miss it first
// offers repair the chance to derive the value from resident entries
// (via the peek argument — typically the tier walks the snapshot's
// delta lineage with instance.Lineage and patches the nearest resident
// ancestor's artifact). repair returns the derived value, the number of
// lineage hops it crossed (feeding Stats.MaxLineageDepth), and whether
// it succeeded; on failure — or with a nil repair — the cold builder
// runs as in Get. Like build, repair executes outside the memo lock and
// at most once per residency of key; values obtained through peek may
// be concurrently evicted, which leaves them valid (evicted values stay
// usable by holders, they just no longer occupy the memo).
func (m *LRU[K, V]) GetOrRepair(key K, repair func(peek func(K) (V, bool)) (V, int, bool), build func() V) V {
	e, hit := m.acquire(key)
	if hit || repair == nil {
		return m.run(e, build)
	}
	return m.run(e, func() V {
		// An injected repair fault degrades to the cold builder — the
		// graceful path a real repair failure would take.
		if err := faultinject.Fire(faultinject.MemoRepair); err == nil {
			if v, hops, ok := repair(m.Peek); ok {
				m.noteRepair(hops)
				return v
			}
		}
		return build()
	})
}

// Peek returns the finished value for key if one is resident, without
// joining an in-flight build and without counting as a hit or a miss.
// Safe to call from inside a repair callback.
func (m *LRU[K, V]) Peek(key K) (V, bool) {
	var zero V
	m.mu.Lock()
	el, ok := m.index[key]
	m.mu.Unlock()
	if !ok {
		return zero, false
	}
	e := el.Value.(*entry[K, V])
	if !e.built.Load() {
		return zero, false
	}
	return e.val, true
}

// acquire looks up or creates the entry for key under the memo lock and
// reports whether it was already resident.
func (m *LRU[K, V]) acquire(key K) (*entry[K, V], bool) {
	m.mu.Lock()
	el, ok := m.index[key]
	if ok {
		m.hits++
		m.order.MoveToFront(el)
	} else {
		m.miss++
		el = m.order.PushFront(&entry[K, V]{key: key})
		m.index[key] = el
		for m.order.Len() > m.capacity {
			m.evictOldest()
		}
	}
	e := el.Value.(*entry[K, V])
	m.mu.Unlock()
	return e, ok
}

// run executes the entry's at-most-once build with the given producer
// and settles cost accounting.
//
// A build that panics must not poison the entry: sync.Once considers a
// panicking function done, so without cleanup every later lookup of the
// key would get the zero value forever — one panicking decision would
// turn into a permanently broken snapshot. Instead the failed entry is
// removed from the memo (the next lookup is a fresh miss that rebuilds)
// while the panic keeps unwinding to the caller's recover() boundary;
// goroutines that joined the failed build panic with ErrBuildPanicked.
func (m *LRU[K, V]) run(e *entry[K, V], produce func() V) V {
	e.once.Do(func() {
		defer func() {
			if !e.built.Load() {
				m.removeFailed(e)
			}
		}()
		// A site with no error path escalates an injected error to a
		// panic; the recover() boundary upstream answers per-request.
		if err := faultinject.Fire(faultinject.MemoBuild); err != nil {
			panic(err)
		}
		e.val = produce()
		e.built.Store(true)
	})
	if !e.built.Load() {
		panic(ErrBuildPanicked)
	}
	if m.cost != nil && !e.charged.Load() {
		m.charge(e)
	}
	return e.val
}

// removeFailed drops an entry whose build panicked, so the key misses
// (and rebuilds) on its next lookup. The failed build never charged any
// cost, so only residency is undone.
func (m *LRU[K, V]) removeFailed(e *entry[K, V]) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.evicted {
		return
	}
	if el, ok := m.index[e.key]; ok && el.Value.(*entry[K, V]) == e {
		m.order.Remove(el)
		delete(m.index, e.key)
		e.evicted = true
	}
}

// noteRepair records a successful lineage repair of the given hop
// distance.
func (m *LRU[K, V]) noteRepair(hops int) {
	m.mu.Lock()
	m.repairs++
	if uint64(hops) > m.maxDepth {
		m.maxDepth = uint64(hops)
	}
	m.mu.Unlock()
}

// evictOldest removes the least-recently-used entry. Caller holds mu.
func (m *LRU[K, V]) evictOldest() {
	oldest := m.order.Back()
	if oldest == nil {
		return
	}
	m.order.Remove(oldest)
	en := oldest.Value.(*entry[K, V])
	delete(m.index, en.key)
	en.evicted = true
	if en.charged.Load() {
		m.total -= en.cost
	}
}

// charge records a freshly built entry's cost and sheds LRU entries
// until the memo fits its budget again (never below one resident
// entry). An entry evicted while its build was in flight is not
// charged: its value goes to the caller but holds no residency.
func (m *LRU[K, V]) charge(e *entry[K, V]) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.evicted || e.charged.Load() {
		return
	}
	//cqalint:allow nolockbuild cost functions are pure size accountants by contract (LRU doc comment); charging outside the lock would race eviction
	e.cost = m.cost(e.val)
	e.charged.Store(true)
	m.total += e.cost
	for m.total > m.budget && m.order.Len() > 1 {
		m.evictOldest()
	}
}

// SetBudget adjusts the byte budget of a cost-bounded memo at runtime —
// the soft-memory-watermark hook: under heap pressure the serving layer
// shrinks the tier memos so the process degrades to cold builds instead
// of growing toward an OOM kill. Shrinking evicts least-recently-used
// entries until the memo fits (never below one resident entry, matching
// the construction-time contract); growing simply raises the bound. A
// memo built without a cost function has nothing to bound and ignores
// the call. The budget is clamped to at least 1 so the cost bound stays
// armed.
func (m *LRU[K, V]) SetBudget(budget int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cost == nil {
		return
	}
	if budget < 1 {
		budget = 1
	}
	m.budget = budget
	for m.total > m.budget && m.order.Len() > 1 {
		m.evictOldest()
	}
}

// ScaledBudget maps a compile-time default budget and a pressure scale
// to a SetBudget argument, clamped to [1, def]: the soft-memory
// watermark only ever shrinks a memo below its default (scale >= 1
// restores it), and the minimum of 1 keeps the cost bound armed.
func ScaledBudget(def int64, scale float64) int64 {
	if scale >= 1 {
		return def
	}
	b := int64(float64(def) * scale)
	if b < 1 {
		b = 1
	}
	return b
}

// Budget returns the current byte budget (0 when the memo has no cost
// function).
func (m *LRU[K, V]) Budget() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.budget
}

// Stats returns a snapshot of the memo's lookup counters.
func (m *LRU[K, V]) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Hits: m.hits, Misses: m.miss, Repairs: m.repairs, MaxLineageDepth: m.maxDepth}
}

// Contains reports whether key is resident (without touching the LRU
// order). Intended for tests.
func (m *LRU[K, V]) Contains(key K) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.index[key]
	return ok
}

// Len returns the number of resident entries.
func (m *LRU[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// CostTotal returns the summed cost of the charged resident entries
// (always 0 without a cost function). Intended for tests and
// diagnostics.
func (m *LRU[K, V]) CostTotal() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}
