// Package memo provides a small bounded LRU memo used by the solver
// tiers to cache instance-bound artifacts per interned instance
// snapshot (*instance.Interned). The key is compared by identity, so a
// mutation of the underlying instance — which publishes a fresh
// snapshot pointer — is itself the invalidation: stale entries can
// never be looked up again and age out of the LRU order.
//
// Memos are bounded two ways: by entry count, and (optionally) by a
// byte budget with a per-entry cost function, so that a handful of
// huge artifacts — a conp CNF is O(|db|·|q|), a fixpoint binding
// O(|q|·|adom|) — cannot pin unbounded memory behind a small entry
// count.
package memo

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// LRU is a bounded build-once memo. Get returns the cached value for a
// key, building it at most once per residency; when either bound (entry
// count, or the optional byte budget) is exceeded the least-recently-
// used entries are evicted. An LRU is safe for concurrent use; builds
// run outside the memo lock, so a slow build for one key never
// serializes lookups of other keys.
type LRU[K comparable, V any] struct {
	capacity int
	budget   int64 // 0 = unbounded by cost
	cost     func(V) int64

	mu    sync.Mutex
	order *list.List // *entry[K, V], front = most recently used
	index map[K]*list.Element
	total int64 // summed cost of charged resident entries
	hits  uint64
	miss  uint64
}

// Stats is a snapshot of an LRU's lookup counters. A miss is a Get that
// created a resident entry (and therefore ran — or joined — the build);
// a hit served an already-resident entry. A key that was evicted and
// looked up again counts as a fresh miss, so Misses is exactly the
// number of builds started over the memo's lifetime.
type Stats struct {
	Hits, Misses uint64
}

// Add returns the field-wise sum of two stats snapshots, for callers
// aggregating several memos (e.g. a plan's tier artifacts).
func (s Stats) Add(t Stats) Stats {
	return Stats{Hits: s.Hits + t.Hits, Misses: s.Misses + t.Misses}
}

// entry builds its value at most once; concurrent Gets for the same key
// block on the entry, not on the whole memo.
type entry[K comparable, V any] struct {
	key  K
	once sync.Once
	val  V
	// cost accounting happens after the build (the value must exist to
	// be costed); evicted guards an entry whose build finished after it
	// was already displaced, so it is never charged to the total.
	// charged is atomic so warm hits skip the accounting lock entirely.
	cost    int64
	charged atomic.Bool
	evicted bool
}

// NewLRU returns an LRU bounded at capacity entries (minimum 1), with
// no byte budget.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	return NewLRUWithBudget[K, V](capacity, 0, nil)
}

// NewLRUWithBudget returns an LRU bounded at capacity entries AND at
// budget summed cost units (conventionally bytes), where cost prices a
// built value. A budget <= 0 or a nil cost function disables the cost
// bound. A single entry over budget stays resident on its own — the
// memo never evicts the only entry, so a pathologically large artifact
// still serves warm calls instead of thrashing.
func NewLRUWithBudget[K comparable, V any](capacity int, budget int64, cost func(V) int64) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	if budget <= 0 || cost == nil {
		budget, cost = 0, nil
	}
	return &LRU[K, V]{
		capacity: capacity,
		budget:   budget,
		cost:     cost,
		order:    list.New(),
		index:    make(map[K]*list.Element),
	}
}

// Get returns the memoized value for key, invoking build at most once
// while the key is resident. An evicted value remains usable by callers
// that already hold it; a later Get for the same key rebuilds.
func (m *LRU[K, V]) Get(key K, build func() V) V {
	m.mu.Lock()
	el, ok := m.index[key]
	if ok {
		m.hits++
		m.order.MoveToFront(el)
	} else {
		m.miss++
		el = m.order.PushFront(&entry[K, V]{key: key})
		m.index[key] = el
		for m.order.Len() > m.capacity {
			m.evictOldest()
		}
	}
	e := el.Value.(*entry[K, V])
	m.mu.Unlock()
	e.once.Do(func() { e.val = build() })
	if m.cost != nil && !e.charged.Load() {
		m.charge(e)
	}
	return e.val
}

// evictOldest removes the least-recently-used entry. Caller holds mu.
func (m *LRU[K, V]) evictOldest() {
	oldest := m.order.Back()
	if oldest == nil {
		return
	}
	m.order.Remove(oldest)
	en := oldest.Value.(*entry[K, V])
	delete(m.index, en.key)
	en.evicted = true
	if en.charged.Load() {
		m.total -= en.cost
	}
}

// charge records a freshly built entry's cost and sheds LRU entries
// until the memo fits its budget again (never below one resident
// entry). An entry evicted while its build was in flight is not
// charged: its value goes to the caller but holds no residency.
func (m *LRU[K, V]) charge(e *entry[K, V]) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.evicted || e.charged.Load() {
		return
	}
	e.cost = m.cost(e.val)
	e.charged.Store(true)
	m.total += e.cost
	for m.total > m.budget && m.order.Len() > 1 {
		m.evictOldest()
	}
}

// Stats returns a snapshot of the memo's hit/miss counters.
func (m *LRU[K, V]) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Hits: m.hits, Misses: m.miss}
}

// Contains reports whether key is resident (without touching the LRU
// order). Intended for tests.
func (m *LRU[K, V]) Contains(key K) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.index[key]
	return ok
}

// Len returns the number of resident entries.
func (m *LRU[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// CostTotal returns the summed cost of the charged resident entries
// (always 0 without a cost function). Intended for tests and
// diagnostics.
func (m *LRU[K, V]) CostTotal() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}
