// Package memo provides a small bounded LRU memo used by the solver
// tiers to cache instance-bound artifacts per interned instance
// snapshot (*instance.Interned). The key is compared by identity, so a
// mutation of the underlying instance — which publishes a fresh
// snapshot pointer — is itself the invalidation: stale entries can
// never be looked up again and age out of the LRU order.
package memo

import (
	"container/list"
	"sync"
)

// LRU is a bounded build-once memo. Get returns the cached value for a
// key, building it at most once per residency; when the bound is
// exceeded the least-recently-used entry is evicted. An LRU is safe for
// concurrent use; builds run outside the memo lock, so a slow build for
// one key never serializes lookups of other keys.
type LRU[K comparable, V any] struct {
	capacity int

	mu    sync.Mutex
	order *list.List // *entry[K, V], front = most recently used
	index map[K]*list.Element
}

// entry builds its value at most once; concurrent Gets for the same key
// block on the entry, not on the whole memo.
type entry[K comparable, V any] struct {
	key  K
	once sync.Once
	val  V
}

// NewLRU returns an LRU bounded at capacity entries (minimum 1).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[K]*list.Element),
	}
}

// Get returns the memoized value for key, invoking build at most once
// while the key is resident. An evicted value remains usable by callers
// that already hold it; a later Get for the same key rebuilds.
func (m *LRU[K, V]) Get(key K, build func() V) V {
	m.mu.Lock()
	el, ok := m.index[key]
	if ok {
		m.order.MoveToFront(el)
	} else {
		el = m.order.PushFront(&entry[K, V]{key: key})
		m.index[key] = el
		for m.order.Len() > m.capacity {
			oldest := m.order.Back()
			m.order.Remove(oldest)
			delete(m.index, oldest.Value.(*entry[K, V]).key)
		}
	}
	e := el.Value.(*entry[K, V])
	m.mu.Unlock()
	e.once.Do(func() { e.val = build() })
	return e.val
}

// Contains reports whether key is resident (without touching the LRU
// order). Intended for tests.
func (m *LRU[K, V]) Contains(key K) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.index[key]
	return ok
}

// Len returns the number of resident entries.
func (m *LRU[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}
