package automata

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cqa/internal/words"
)

func TestFigure4Structure(t *testing.T) {
	// Figure 4: NFA(RXRRR). States ε, R, RX, RXR, RXRR, RXRRR.
	a := New(words.MustParse("RXRRR"))
	if a.NumStates() != 6 || a.AcceptState() != 5 {
		t.Fatalf("states = %d", a.NumStates())
	}
	// Backward transitions: from every state ending in R to every
	// shorter state ending in R. States ending in R: 1 (R), 3 (RXR),
	// 4 (RXRR), 5 (RXRRR).
	cases := map[int][]int{
		1: nil,
		2: nil,       // RX ends in X; no shorter prefix ends in X
		3: {1},       // RXR -> R
		4: {1, 3},    // RXRR -> R, RXR
		5: {1, 3, 4}, // RXRRR -> R, RXR, RXRR
	}
	for j, want := range cases {
		if got := a.BackwardTargets(j); !reflect.DeepEqual(got, want) {
			t.Errorf("BackwardTargets(%d) = %v, want %v", j, got, want)
		}
	}
	// That is 6 backward ε-transitions in total, matching Figure 4.
	total := 0
	for j := 0; j <= 5; j++ {
		total += len(a.BackwardTargets(j))
	}
	if total != 6 {
		t.Errorf("total backward transitions = %d, want 6", total)
	}
	if got := a.BackwardSources(1); !reflect.DeepEqual(got, []int{3, 4, 5}) {
		t.Errorf("BackwardSources(1) = %v", got)
	}
	if a.BackwardSources(0) != nil {
		t.Error("ε has no backward sources")
	}
}

func TestAcceptsBasics(t *testing.T) {
	a := New(words.MustParse("RRX"))
	accept := []string{"RRX", "RRRX", "RRRRX"}
	reject := []string{"", "R", "RR", "RX", "RRXX", "XRRX", "RRXR"}
	for _, s := range accept {
		if !a.Accepts(words.MustParse(s)) {
			t.Errorf("NFA(RRX) should accept %q", s)
		}
	}
	for _, s := range reject {
		if a.Accepts(words.MustParse(s)) {
			t.Errorf("NFA(RRX) should reject %q", s)
		}
	}
}

func TestAcceptsFromStartState(t *testing.T) {
	// S-NFA(RRX, R) accepts the words w with R·w ∈ RR(R)*X... more
	// precisely words accepted starting from state 1.
	a := New(words.MustParse("RRX"))
	if !a.AcceptsFrom(1, words.MustParse("RX")) {
		t.Error("S-NFA(RRX, R) accepts RX")
	}
	if !a.AcceptsFrom(1, words.MustParse("RRX")) {
		t.Error("S-NFA(RRX, R) accepts RRX (via backward move)")
	}
	if a.AcceptsFrom(1, words.MustParse("X")) {
		t.Error("S-NFA(RRX, R) rejects X")
	}
	if !a.AcceptsFrom(3, words.Word{}) {
		t.Error("S-NFA(q, q) accepts ε")
	}
}

// TestLemma4 machine-checks Lemma 4 on a set of queries: the language of
// NFA(q) restricted to length <= B equals the rewinding closure L↬(q)
// restricted to length <= B.
func TestLemma4(t *testing.T) {
	queries := []string{"RRX", "RXRX", "RXRY", "RXRYRY", "RXRXRYRY", "ARRX", "RXRRR", "RR", "RSRRR", "RRSRS"}
	const bound = 11
	for _, qs := range queries {
		q := words.MustParse(qs)
		a := New(q)
		closure := map[string]bool{}
		for _, w := range q.RewindClosure(bound) {
			closure[w.String()] = true
		}
		accepted := map[string]bool{}
		for _, w := range a.AcceptedWords(0, bound) {
			accepted[w.String()] = true
		}
		if !reflect.DeepEqual(closure, accepted) {
			t.Errorf("q=%s: NFA language and L↬ differ:\n only closure: %v\n only NFA: %v",
				qs, diff(closure, accepted), diff(accepted, closure))
		}
	}
}

func diff(a, b map[string]bool) []string {
	var out []string
	for k := range a {
		if !b[k] {
			out = append(out, k)
		}
	}
	return out
}

func TestToDFAEquivalentToNFA(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alpha := []string{"R", "X"}
	for it := 0; it < 50; it++ {
		n := 1 + rng.Intn(6)
		w := make(words.Word, n)
		for i := range w {
			w[i] = alpha[rng.Intn(2)]
		}
		a := New(w)
		d := a.ToDFA()
		// Random word membership must agree.
		for j := 0; j < 100; j++ {
			m := rng.Intn(10)
			x := make(words.Word, m)
			for i := range x {
				x[i] = alpha[rng.Intn(2)]
			}
			if a.Accepts(x) != d.AcceptsWord(x) {
				t.Fatalf("q=%v word=%v: NFA=%v DFA=%v", w, x, a.Accepts(x), d.AcceptsWord(x))
			}
		}
	}
}

func TestMinPrefixDFA(t *testing.T) {
	// Example 6: q = RXRYR. RXRYRYR is accepted by NFA(q) but not by
	// NFAmin(q), because the proper prefix RXRYR is also accepted.
	q := words.MustParse("RXRYR")
	a := New(q)
	full := a.ToDFA()
	min := a.MinPrefixDFA()
	long := words.MustParse("RXRYRYR")
	if !full.AcceptsWord(long) {
		t.Fatal("NFA(q) must accept RXRYRYR")
	}
	if min.AcceptsWord(long) {
		t.Error("NFAmin(q) must reject RXRYRYR")
	}
	if !min.AcceptsWord(q) {
		t.Error("NFAmin(q) must accept q itself")
	}
}

func TestMinPrefixIsPrefixFree(t *testing.T) {
	for _, qs := range []string{"RRX", "RXRX", "RXRYRY", "RXRRR", "RXRYR"} {
		a := New(words.MustParse(qs))
		min := a.MinPrefixDFA()
		ws := min.AcceptedWords(9)
		seen := map[string]bool{}
		for _, w := range ws {
			seen[w.String()] = true
		}
		for _, w := range ws {
			for k := 0; k < w.Len(); k++ {
				if seen[w.Prefix(k).String()] {
					t.Errorf("q=%s: %v and its proper prefix %v both accepted", qs, w, w.Prefix(k))
				}
			}
		}
		// And every word of the full language has a prefix in the min
		// language.
		full := a.ToDFA().AcceptedWords(9)
		for _, w := range full {
			ok := false
			for k := 0; k <= w.Len(); k++ {
				if seen[w.Prefix(k).String()] {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("q=%s: accepted word %v has no prefix in NFAmin language", qs, w)
			}
		}
	}
}

func TestDFAEqual(t *testing.T) {
	a := New(words.MustParse("RRX"))
	d1 := a.ToDFA()
	d2 := a.ToDFA()
	if !d1.Equal(d2) {
		t.Error("identical DFAs must be equal")
	}
	d3 := New(words.MustParse("RRRX")).ToDFA()
	if d1.Equal(d3) {
		t.Error("L↬(RRX) != L↬(RRRX): RRX itself distinguishes them")
	}
}

func TestDFAIntersectAndComplement(t *testing.T) {
	d1 := New(words.MustParse("RRX")).ToDFA()  // RR R* X
	d2 := New(words.MustParse("RRRX")).ToDFA() // RRR R* X
	inter := d1.Intersect(d2)
	if inter.AcceptsWord(words.MustParse("RRX")) {
		t.Error("RRX not in both languages")
	}
	if !inter.AcceptsWord(words.MustParse("RRRX")) {
		t.Error("RRRX is in both languages")
	}
	// Complement: d1 ∩ ¬d2 contains exactly RRX among short words.
	comp := d2.Complement([]string{"R", "X"})
	both := d1.Intersect(comp)
	got := both.AcceptedWords(6)
	if len(got) != 1 || got[0].String() != "RRX" {
		t.Errorf("d1 ∩ ¬d2 short words = %v, want [RRX]", got)
	}
	if d1.IsEmpty() {
		t.Error("nonempty language reported empty")
	}
	empty := d1.Intersect(comp.Complement([]string{"R", "X"}).Intersect(comp))
	_ = empty
}

func TestEpsClosureOf(t *testing.T) {
	a := New(words.MustParse("RXRRR"))
	if got := a.EpsClosureOf(5); !reflect.DeepEqual(got, []int{1, 3, 4, 5}) {
		t.Errorf("EpsClosureOf(5) = %v", got)
	}
	if got := a.EpsClosureOf(2); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("EpsClosureOf(2) = %v", got)
	}
}

func TestDOTOutputs(t *testing.T) {
	a := New(words.MustParse("RRX"))
	dot := a.DOT()
	for _, want := range []string{"doublecircle", `"RR" -> "RRX"`, "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("NFA DOT missing %q:\n%s", want, dot)
		}
	}
	d := a.ToDFA().DOT()
	if !strings.Contains(d, "digraph dfa") {
		t.Error("DFA DOT malformed")
	}
}

func TestAcceptedWordsOrdering(t *testing.T) {
	a := New(words.MustParse("RRX"))
	got := a.AcceptedWords(0, 5)
	if len(got) != 3 || got[0].String() != "RRX" || got[1].String() != "RRRX" || got[2].String() != "RRRRX" {
		t.Errorf("AcceptedWords = %v", got)
	}
}
