// Package automata implements the automata-based perspective of Section 5
// of the paper: the nondeterministic finite automaton NFA(q) associated
// with a path query q (Definition 3), the automata S-NFA(q,u) obtained by
// changing the start state (Definition 5), the prefix-minimal automaton
// NFAmin(q) (Definition 13), and the DFA algebra (subset construction,
// product, equivalence) used to machine-check the regular-language lemmas.
package automata

import (
	"fmt"
	"sort"
	"strings"

	"cqa/internal/words"
)

// NFA is NFA(q) for a path query q (Definition 3). Its states are the
// prefixes of q, identified by their length: state i is the prefix q[:i].
// State 0 (ε) is initial; state |q| is the only accepting state.
//
//   - Forward transitions: i --q[i]--> i+1.
//   - Backward transitions: ε-moves from state j to state i whenever
//     0 < i < j and q[i-1] == q[j-1] (both prefixes end with the same
//     relation name). These capture the rewinding operation.
type NFA struct {
	q words.Word
}

// New returns NFA(q).
func New(q words.Word) *NFA { return &NFA{q: q.Clone()} }

// Query returns the path query word of the automaton.
func (a *NFA) Query() words.Word { return a.q.Clone() }

// NumStates returns |q| + 1.
func (a *NFA) NumStates() int { return len(a.q) + 1 }

// AcceptState returns the accepting state |q|.
func (a *NFA) AcceptState() int { return len(a.q) }

// ForwardLabel returns the label of the forward transition leaving state
// i, i.e. q[i]. It panics for the accept state.
func (a *NFA) ForwardLabel(i int) string { return a.q[i] }

// BackwardTargets returns the states reachable from state j by a single
// backward ε-transition: all i with 0 < i < j and q[i-1] == q[j-1].
func (a *NFA) BackwardTargets(j int) []int {
	if j <= 1 {
		return nil
	}
	last := a.q[j-1]
	var out []int
	for i := 1; i < j; i++ {
		if a.q[i-1] == last {
			out = append(out, i)
		}
	}
	return out
}

// BackwardSources returns the states j that have a backward ε-transition
// into state i: all j with i < j <= |q| and q[j-1] == q[i-1]. For i == 0
// there are none (ε has no last symbol).
func (a *NFA) BackwardSources(i int) []int {
	if i == 0 {
		return nil
	}
	last := a.q[i-1]
	var out []int
	for j := i + 1; j <= len(a.q); j++ {
		if a.q[j-1] == last {
			out = append(out, j)
		}
	}
	return out
}

// epsClosure extends set (a boolean vector over states) with everything
// reachable by backward ε-transitions.
func (a *NFA) epsClosure(set []bool) {
	// A backward move goes from j to i < j with equal last symbol;
	// one sweep from high to low suffices because targets of a backward
	// move can only trigger further moves to even smaller states with
	// the same last symbol, which the same sweep covers.
	for j := len(set) - 1; j >= 1; j-- {
		if !set[j] {
			continue
		}
		for _, i := range a.BackwardTargets(j) {
			set[i] = true
		}
	}
}

// AcceptsFrom reports whether S-NFA(q, q[:start]) accepts the word w.
func (a *NFA) AcceptsFrom(start int, w words.Word) bool {
	n := a.NumStates()
	cur := make([]bool, n)
	cur[start] = true
	a.epsClosure(cur)
	for _, sym := range w {
		next := make([]bool, n)
		any := false
		for i := 0; i < n-1; i++ {
			if cur[i] && a.q[i] == sym {
				next[i+1] = true
				any = true
			}
		}
		if !any {
			return false
		}
		a.epsClosure(next)
		cur = next
	}
	return cur[a.AcceptState()]
}

// Accepts reports whether NFA(q) accepts w. By Lemma 4, the accepted
// language is exactly L↬(q), the rewinding closure of q.
func (a *NFA) Accepts(w words.Word) bool { return a.AcceptsFrom(0, w) }

// AcceptedWords enumerates all words of length at most maxLen accepted by
// S-NFA(q, q[:start]), in length-lexicographic order. Used by tests to
// compare languages.
func (a *NFA) AcceptedWords(start, maxLen int) []words.Word {
	d := a.ToDFAFrom(start)
	return d.AcceptedWords(maxLen)
}

// DOT renders the automaton in Graphviz format, mirroring Figure 4 of
// the paper: forward transitions labeled with relation names, backward
// transitions labeled ε.
func (a *NFA) DOT() string {
	var b strings.Builder
	b.WriteString("digraph nfa {\n  rankdir=LR;\n  node [shape=circle];\n")
	name := func(i int) string {
		if i == 0 {
			return "ε"
		}
		return a.q.Prefix(i).String()
	}
	fmt.Fprintf(&b, "  %q [shape=doublecircle];\n", name(a.AcceptState()))
	fmt.Fprintf(&b, "  start [shape=point];\n  start -> %q;\n", name(0))
	for i := 0; i < len(a.q); i++ {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", name(i), name(i+1), a.q[i])
	}
	for j := 2; j <= len(a.q); j++ {
		for _, i := range a.BackwardTargets(j) {
			fmt.Fprintf(&b, "  %q -> %q [label=\"ε\", style=dashed];\n", name(j), name(i))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// subsetKey canonicalizes a state set for the subset construction.
func subsetKey(set []bool) string {
	var b strings.Builder
	for i, v := range set {
		if v {
			fmt.Fprintf(&b, "%d,", i)
		}
	}
	return b.String()
}

// ToDFA determinizes NFA(q) (language L↬(q)).
func (a *NFA) ToDFA() *DFA { return a.ToDFAFrom(0) }

// ToDFAFrom determinizes S-NFA(q, q[:start]).
func (a *NFA) ToDFAFrom(start int) *DFA {
	return a.determinize(start, false)
}

// MinPrefixDFA returns a DFA for the language of NFAmin(q)
// (Definition 13): words accepted by NFA(q) none of whose proper prefixes
// are accepted. Accepting subsets are made absorbing-dead, so a word is
// accepted exactly when its first accepted prefix is the word itself.
func (a *NFA) MinPrefixDFA() *DFA {
	return a.determinize(0, true)
}

func (a *NFA) determinize(start int, prefixMinimal bool) *DFA {
	alphabet := a.q.Symbols()
	n := a.NumStates()
	init := make([]bool, n)
	init[start] = true
	a.epsClosure(init)

	d := &DFA{Alphabet: alphabet}
	index := map[string]int{}
	var sets [][]bool
	add := func(set []bool) int {
		k := subsetKey(set)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(sets)
		index[k] = id
		sets = append(sets, set)
		d.Trans = append(d.Trans, map[string]int{})
		d.Accept = append(d.Accept, set[n-1])
		return id
	}
	d.Start = add(init)
	for work := []int{d.Start}; len(work) > 0; {
		id := work[0]
		work = work[1:]
		if prefixMinimal && d.Accept[id] {
			continue // accepting subsets are dead ends in NFAmin
		}
		set := sets[id]
		for _, sym := range alphabet {
			next := make([]bool, n)
			any := false
			for i := 0; i < n-1; i++ {
				if set[i] && a.q[i] == sym {
					next[i+1] = true
					any = true
				}
			}
			if !any {
				continue
			}
			a.epsClosure(next)
			before := len(sets)
			nid := add(next)
			d.Trans[id][sym] = nid
			if nid == before {
				work = append(work, nid)
			}
		}
	}
	return d
}

// sortedInts returns the indices set in a boolean vector (test helper
// exported via States below).
func sortedInts(set []bool) []int {
	var out []int
	for i, v := range set {
		if v {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// EpsClosureOf returns the ε-closure of a single state, as sorted state
// indices. Exposed for tests and for the fixpoint algorithm's backward
// rule.
func (a *NFA) EpsClosureOf(j int) []int {
	set := make([]bool, a.NumStates())
	set[j] = true
	a.epsClosure(set)
	return sortedInts(set)
}
