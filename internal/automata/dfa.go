package automata

import (
	"fmt"
	"sort"
	"strings"

	"cqa/internal/words"
)

// DFA is a deterministic finite automaton over relation-name symbols.
// Missing transitions go to an implicit dead (rejecting, absorbing)
// state.
type DFA struct {
	Alphabet []string
	Trans    []map[string]int // Trans[s][sym] = successor state
	Accept   []bool
	Start    int
}

// NumStates returns the number of explicit states.
func (d *DFA) NumStates() int { return len(d.Trans) }

// Step returns the successor of state s on sym; ok is false for the dead
// state.
func (d *DFA) Step(s int, sym string) (int, bool) {
	if s < 0 || s >= len(d.Trans) {
		return -1, false
	}
	t, ok := d.Trans[s][sym]
	return t, ok
}

// AcceptsWord reports whether d accepts w.
func (d *DFA) AcceptsWord(w words.Word) bool {
	s := d.Start
	for _, sym := range w {
		t, ok := d.Trans[s][sym]
		if !ok {
			return false
		}
		s = t
	}
	return d.Accept[s]
}

// IsEmpty reports whether the accepted language is empty.
func (d *DFA) IsEmpty() bool {
	seen := make([]bool, len(d.Trans))
	stack := []int{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Accept[s] {
			return false
		}
		for _, t := range d.Trans[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return true
}

// AcceptedWords enumerates accepted words of length <= maxLen in
// length-lexicographic order.
func (d *DFA) AcceptedWords(maxLen int) []words.Word {
	alphabet := append([]string(nil), d.Alphabet...)
	sort.Strings(alphabet)
	var out []words.Word
	type item struct {
		state int
		word  words.Word
	}
	frontier := []item{{d.Start, words.Word{}}}
	for depth := 0; depth <= maxLen; depth++ {
		var next []item
		for _, it := range frontier {
			if d.Accept[it.state] {
				out = append(out, it.word)
			}
			if depth == maxLen {
				continue
			}
			for _, sym := range alphabet {
				if t, ok := d.Trans[it.state][sym]; ok {
					w := append(it.word.Clone(), sym)
					next = append(next, item{t, w})
				}
			}
		}
		frontier = next
	}
	return out
}

// Equal reports whether d and o accept the same language. Implemented as
// a breadth-first bisimulation check over the product automaton with
// implicit dead states (Hopcroft–Karp style without union-find; state
// spaces here are small).
func (d *DFA) Equal(o *DFA) bool {
	alpha := map[string]bool{}
	for _, s := range d.Alphabet {
		alpha[s] = true
	}
	for _, s := range o.Alphabet {
		alpha[s] = true
	}
	var alphabet []string
	for s := range alpha {
		alphabet = append(alphabet, s)
	}
	sort.Strings(alphabet)

	type pair struct{ a, b int } // -1 encodes the dead state
	accept := func(m *DFA, s int) bool { return s >= 0 && m.Accept[s] }
	step := func(m *DFA, s int, sym string) int {
		if s < 0 {
			return -1
		}
		if t, ok := m.Trans[s][sym]; ok {
			return t
		}
		return -1
	}
	seen := map[pair]bool{}
	queue := []pair{{d.Start, o.Start}}
	seen[queue[0]] = true
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if accept(d, p.a) != accept(o, p.b) {
			return false
		}
		if p.a < 0 && p.b < 0 {
			continue
		}
		for _, sym := range alphabet {
			np := pair{step(d, p.a, sym), step(o, p.b, sym)}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return true
}

// Intersect returns a DFA for the intersection of the two languages.
func (d *DFA) Intersect(o *DFA) *DFA {
	alpha := map[string]bool{}
	for _, s := range d.Alphabet {
		alpha[s] = true
	}
	for _, s := range o.Alphabet {
		alpha[s] = true
	}
	var alphabet []string
	for s := range alpha {
		alphabet = append(alphabet, s)
	}
	sort.Strings(alphabet)

	type pair struct{ a, b int }
	out := &DFA{Alphabet: alphabet}
	index := map[pair]int{}
	var states []pair
	add := func(p pair) int {
		if id, ok := index[p]; ok {
			return id
		}
		id := len(states)
		index[p] = id
		states = append(states, p)
		out.Trans = append(out.Trans, map[string]int{})
		out.Accept = append(out.Accept, d.Accept[p.a] && o.Accept[p.b])
		return id
	}
	out.Start = add(pair{d.Start, o.Start})
	for work := []int{out.Start}; len(work) > 0; {
		id := work[0]
		work = work[1:]
		p := states[id]
		for _, sym := range alphabet {
			ta, oka := d.Trans[p.a][sym]
			tb, okb := o.Trans[p.b][sym]
			if !oka || !okb {
				continue
			}
			np := pair{ta, tb}
			before := len(states)
			nid := add(np)
			out.Trans[id][sym] = nid
			if nid == before {
				work = append(work, nid)
			}
		}
	}
	return out
}

// Complement returns a total DFA accepting the complement of d's language
// with respect to alphabet.
func (d *DFA) Complement(alphabet []string) *DFA {
	n := len(d.Trans)
	out := &DFA{
		Alphabet: append([]string(nil), alphabet...),
		Trans:    make([]map[string]int, n+1),
		Accept:   make([]bool, n+1),
		Start:    d.Start,
	}
	dead := n
	for s := 0; s <= n; s++ {
		out.Trans[s] = map[string]int{}
		for _, sym := range alphabet {
			t := dead
			if s < n {
				if u, ok := d.Trans[s][sym]; ok {
					t = u
				}
			}
			out.Trans[s][sym] = t
		}
		if s == dead {
			out.Accept[s] = true
		} else {
			out.Accept[s] = !d.Accept[s]
		}
	}
	return out
}

// DOT renders the DFA in Graphviz format.
func (d *DFA) DOT() string {
	var b strings.Builder
	b.WriteString("digraph dfa {\n  rankdir=LR;\n  node [shape=circle];\n")
	for s := 0; s < len(d.Trans); s++ {
		if d.Accept[s] {
			fmt.Fprintf(&b, "  %d [shape=doublecircle];\n", s)
		}
	}
	fmt.Fprintf(&b, "  start [shape=point];\n  start -> %d;\n", d.Start)
	for s, m := range d.Trans {
		syms := make([]string, 0, len(m))
		for sym := range m {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		for _, sym := range syms {
			fmt.Fprintf(&b, "  %d -> %d [label=%q];\n", s, m[sym], sym)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
