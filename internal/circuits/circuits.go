// Package circuits implements monotone Boolean circuits and their
// evaluation — the Monotone Circuit Value Problem (MCVP), which is
// PTIME-complete (Goldschlager 1977) and is the problem reduced FROM in
// the PTIME-hardness proof of Lemma 20 (Section 7.3 of the paper).
package circuits

import (
	"fmt"
	"math/rand"
	"sort"
)

// GateKind distinguishes inputs, AND gates and OR gates.
type GateKind int

const (
	// Input is a circuit input variable.
	Input GateKind = iota
	// And is a binary AND gate.
	And
	// Or is a binary OR gate.
	Or
)

func (k GateKind) String() string {
	switch k {
	case Input:
		return "input"
	case And:
		return "AND"
	case Or:
		return "OR"
	}
	return "?"
}

// Gate is one node of a circuit. In1/In2 name other gates or inputs.
type Gate struct {
	Name     string
	Kind     GateKind
	In1, In2 string
}

// Circuit is a monotone Boolean circuit with a designated output gate.
type Circuit struct {
	gates  map[string]Gate
	Output string
}

// New returns an empty circuit with the given output gate name.
func New(output string) *Circuit {
	return &Circuit{gates: map[string]Gate{}, Output: output}
}

// AddInput declares an input variable.
func (c *Circuit) AddInput(name string) *Circuit {
	c.gates[name] = Gate{Name: name, Kind: Input}
	return c
}

// AddAnd declares gate name = in1 AND in2.
func (c *Circuit) AddAnd(name, in1, in2 string) *Circuit {
	c.gates[name] = Gate{Name: name, Kind: And, In1: in1, In2: in2}
	return c
}

// AddOr declares gate name = in1 OR in2.
func (c *Circuit) AddOr(name, in1, in2 string) *Circuit {
	c.gates[name] = Gate{Name: name, Kind: Or, In1: in1, In2: in2}
	return c
}

// Gate returns the named gate.
func (c *Circuit) Gate(name string) (Gate, bool) {
	g, ok := c.gates[name]
	return g, ok
}

// Gates returns all gates sorted by name.
func (c *Circuit) Gates() []Gate {
	out := make([]Gate, 0, len(c.gates))
	for _, g := range c.gates {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Inputs returns the input names sorted.
func (c *Circuit) Inputs() []string {
	var out []string
	for _, g := range c.gates {
		if g.Kind == Input {
			out = append(out, g.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks that all wires refer to existing gates, the output
// exists, and the circuit is acyclic.
func (c *Circuit) Validate() error {
	if _, ok := c.gates[c.Output]; !ok {
		return fmt.Errorf("circuits: output gate %q undefined", c.Output)
	}
	state := map[string]int{}
	var visit func(name string) error
	visit = func(name string) error {
		g, ok := c.gates[name]
		if !ok {
			return fmt.Errorf("circuits: undefined gate %q", name)
		}
		switch state[name] {
		case 1:
			return fmt.Errorf("circuits: cycle through %q", name)
		case 2:
			return nil
		}
		state[name] = 1
		if g.Kind != Input {
			if err := visit(g.In1); err != nil {
				return err
			}
			if err := visit(g.In2); err != nil {
				return err
			}
		}
		state[name] = 2
		return nil
	}
	for name := range c.gates {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

// Eval computes the value of every gate under the input assignment σ
// (missing inputs default to false). This is the MCVP decision problem
// when projected to the output gate.
func (c *Circuit) Eval(sigma map[string]bool) map[string]bool {
	memo := map[string]bool{}
	var eval func(name string) bool
	eval = func(name string) bool {
		if v, ok := memo[name]; ok {
			return v
		}
		g := c.gates[name]
		var v bool
		switch g.Kind {
		case Input:
			v = sigma[name]
		case And:
			v = eval(g.In1) && eval(g.In2)
		case Or:
			v = eval(g.In1) || eval(g.In2)
		}
		memo[name] = v
		return v
	}
	for name := range c.gates {
		eval(name)
	}
	return memo
}

// Value returns the output value under σ.
func (c *Circuit) Value(sigma map[string]bool) bool {
	return c.Eval(sigma)[c.Output]
}

// Random generates a random layered monotone circuit with nInputs inputs
// and nGates internal gates, plus a random assignment.
func Random(rng *rand.Rand, nInputs, nGates int) (*Circuit, map[string]bool) {
	c := New(fmt.Sprintf("g%d", nGates-1))
	var pool []string
	for i := 0; i < nInputs; i++ {
		name := fmt.Sprintf("x%d", i)
		c.AddInput(name)
		pool = append(pool, name)
	}
	for i := 0; i < nGates; i++ {
		name := fmt.Sprintf("g%d", i)
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		if rng.Intn(2) == 0 {
			c.AddAnd(name, a, b)
		} else {
			c.AddOr(name, a, b)
		}
		pool = append(pool, name)
	}
	sigma := map[string]bool{}
	for i := 0; i < nInputs; i++ {
		sigma[fmt.Sprintf("x%d", i)] = rng.Intn(2) == 0
	}
	return c, sigma
}
