package circuits

import (
	"math/rand"
	"testing"
)

func TestEvalSmall(t *testing.T) {
	// o = (x1 AND x2) OR x3.
	c := New("o")
	c.AddInput("x1").AddInput("x2").AddInput("x3")
	c.AddAnd("g1", "x1", "x2")
	c.AddOr("o", "g1", "x3")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x1, x2, x3, want bool
	}{
		{true, true, false, true},
		{true, false, false, false},
		{false, false, true, true},
		{false, false, false, false},
	}
	for _, cs := range cases {
		sigma := map[string]bool{"x1": cs.x1, "x2": cs.x2, "x3": cs.x3}
		if got := c.Value(sigma); got != cs.want {
			t.Errorf("Value(%v) = %v, want %v", sigma, got, cs.want)
		}
	}
	if len(c.Inputs()) != 3 || len(c.Gates()) != 5 {
		t.Error("structure accessors wrong")
	}
}

func TestValidateErrors(t *testing.T) {
	c := New("missing")
	c.AddInput("x")
	if c.Validate() == nil {
		t.Error("undefined output must fail")
	}
	c2 := New("g")
	c2.AddAnd("g", "x", "x") // x undefined
	if c2.Validate() == nil {
		t.Error("undefined wire must fail")
	}
	c3 := New("a")
	c3.AddAnd("a", "b", "b")
	c3.AddAnd("b", "a", "a")
	if c3.Validate() == nil {
		t.Error("cycle must fail")
	}
}

func TestMonotonicity(t *testing.T) {
	// Flipping any input from 0 to 1 must never flip the output 1 -> 0.
	rng := rand.New(rand.NewSource(3))
	for it := 0; it < 100; it++ {
		c, sigma := Random(rng, 1+rng.Intn(5), 1+rng.Intn(10))
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		before := c.Value(sigma)
		for _, x := range c.Inputs() {
			if sigma[x] {
				continue
			}
			sigma2 := map[string]bool{}
			for k, v := range sigma {
				sigma2[k] = v
			}
			sigma2[x] = true
			if before && !c.Value(sigma2) {
				t.Fatalf("it=%d: monotonicity violated at %s", it, x)
			}
		}
	}
}

func TestGateKindString(t *testing.T) {
	for _, k := range []GateKind{Input, And, Or, GateKind(9)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
	if _, ok := New("o").Gate("nope"); ok {
		t.Error("missing gate lookup")
	}
}
