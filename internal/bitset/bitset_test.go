package bitset

import (
	"math/rand"
	"testing"
)

func randomBits(t *testing.T, rng *rand.Rand, n int) Bits {
	t.Helper()
	b := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			b.Set(i)
		}
	}
	return b
}

func TestOr(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		a := randomBits(t, rng, n)
		b := randomBits(t, rng, n)
		want := New(n)
		for i := 0; i < n; i++ {
			if a.Test(i) || b.Test(i) {
				want.Set(i)
			}
		}
		a.Or(b)
		if !a.Equal(want) {
			t.Fatalf("n=%d: Or mismatch", n)
		}
	}
}

func TestNotFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		src := randomBits(t, rng, n)
		dst := New(n)
		dst.NotFrom(src, n)
		for i := 0; i < n; i++ {
			if dst.Test(i) == src.Test(i) {
				t.Fatalf("n=%d bit %d: NotFrom not complement", n, i)
			}
		}
		// No bits beyond the domain may leak from the word complement.
		if got, want := dst.Count(), n-src.Count(); got != want {
			t.Fatalf("n=%d: NotFrom count %d, want %d", n, got, want)
		}
		// Aliased complement in place.
		src2 := randomBits(t, rng, n)
		ref := New(n)
		ref.NotFrom(src2, n)
		src2.NotFrom(src2, n)
		if !src2.Equal(ref) {
			t.Fatalf("n=%d: aliased NotFrom mismatch", n)
		}
	}
}

func TestForEachInAndCountIn(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 64, 65, 300} {
		b := randomBits(t, rng, n)
		ranges := [][2]int{
			{0, n}, {0, 0}, {n, n}, {0, 1}, {1, 64}, {63, 65},
			{64, 128}, {5, 200}, {0, n + 64}, {7, 7}, {200, 100},
		}
		for _, r := range ranges {
			lo, hi := r[0], r[1]
			var want []int
			chi := hi
			if chi > n {
				chi = n
			}
			for i := lo; i < chi; i++ {
				if i >= 0 && b.Test(i) {
					want = append(want, i)
				}
			}
			var got []int
			b.ForEachIn(lo, hi, func(i int) { got = append(got, i) })
			if len(got) != len(want) {
				t.Fatalf("n=%d [%d,%d): ForEachIn got %v, want %v", n, lo, hi, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d [%d,%d): ForEachIn got %v, want %v", n, lo, hi, got, want)
				}
			}
			if c := b.CountIn(lo, hi); c != len(want) {
				t.Fatalf("n=%d [%d,%d): CountIn %d, want %d", n, lo, hi, c, len(want))
			}
		}
	}
}
