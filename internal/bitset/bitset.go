// Package bitset provides the dense bit vector shared by the interned
// solver tiers: the fixpoint relation N, the NL tier's Lemma 14
// predicates, and the Lemma 12 DP frontiers are all Bits indexed by
// interned ids. Bits is a plain []uint64, so word-level operations
// (complement, intersection) can be written directly where a loop over
// words is clearer than a method.
package bitset

import "math/bits"

// Bits is a fixed-size dense bit vector.
type Bits []uint64

// New returns a Bits able to hold n bits, all clear.
func New(n int) Bits { return make(Bits, (n+63)>>6) }

// Test reports whether bit i is set.
func (b Bits) Test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bits) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear zeroes all bits.
func (b Bits) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// MaskTail clears the bits at index n and beyond in the last word, so
// that a word-level complement stays confined to a domain of n bits.
func (b Bits) MaskTail(n int) {
	if n&63 != 0 && len(b) > 0 {
		b[len(b)-1] &= (1 << (uint(n) & 63)) - 1
	}
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether b and c hold the same bits (same length, same
// words). The NL tier's lineage repair uses it as an equality cut: a
// recomputed stage identical to the parent's stops the downstream
// recompute cascade.
func (b Bits) Equal(c Bits) bool {
	if len(b) != len(c) {
		return false
	}
	for i, w := range b {
		if w != c[i] {
			return false
		}
	}
	return true
}

// ForEach calls f with the index of every set bit, ascending.
func (b Bits) ForEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi<<6 | bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
