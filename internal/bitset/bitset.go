// Package bitset provides the dense bit vector shared by the interned
// solver tiers: the fixpoint relation N, the NL tier's Lemma 14
// predicates, and the Lemma 12 DP frontiers are all Bits indexed by
// interned ids. Bits is a plain []uint64, so word-level operations
// (complement, intersection) can be written directly where a loop over
// words is clearer than a method.
package bitset

import "math/bits"

// Bits is a fixed-size dense bit vector.
type Bits []uint64

// New returns a Bits able to hold n bits, all clear.
func New(n int) Bits { return make(Bits, (n+63)>>6) }

// Test reports whether bit i is set.
func (b Bits) Test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bits) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear zeroes all bits.
func (b Bits) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// MaskTail clears the bits at index n and beyond in the last word, so
// that a word-level complement stays confined to a domain of n bits.
func (b Bits) MaskTail(n int) {
	if n&63 != 0 && len(b) > 0 {
		b[len(b)-1] &= (1 << (uint(n) & 63)) - 1
	}
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether b and c hold the same bits (same length, same
// words). The NL tier's lineage repair uses it as an equality cut: a
// recomputed stage identical to the parent's stops the downstream
// recompute cascade.
func (b Bits) Equal(c Bits) bool {
	if len(b) != len(c) {
		return false
	}
	for i, w := range b {
		if w != c[i] {
			return false
		}
	}
	return true
}

// ForEach calls f with the index of every set bit, ascending.
func (b Bits) ForEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi<<6 | bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Or merges src into b word-wise (b |= src). src must not be longer
// than b; the partitioned solver passes use it to fold per-worker
// frontier accumulators into the shared relation.
func (b Bits) Or(src Bits) {
	for i, w := range src {
		b[i] |= w
	}
}

// NotFrom writes the complement of src over a domain of n bits into b
// (b = ^src masked to n). b and src may alias. It replaces the
// open-coded complement loops in the NL tier (avoid = ^exit-starts,
// O = ^whole-starts) and the Lemma 12 terminal bitset.
func (b Bits) NotFrom(src Bits, n int) {
	for i, w := range src {
		b[i] = ^w
	}
	b.MaskTail(n)
}

// ForEachIn calls f with the index of every set bit in [lo, hi),
// ascending. hi is clamped to the vector length, so callers may pass a
// word-rounded upper bound. The partitioned fixpoint scan uses it to
// walk only one shard's slice of the frontier.
func (b Bits) ForEachIn(lo, hi int, f func(i int)) {
	if max := len(b) << 6; hi > max {
		hi = max
	}
	if lo >= hi {
		return
	}
	wlo, whi := lo>>6, (hi+63)>>6
	for wi := wlo; wi < whi; wi++ {
		w := b[wi]
		if wi == wlo && lo&63 != 0 {
			w &^= (1 << (uint(lo) & 63)) - 1
		}
		if wi == whi-1 && hi&63 != 0 {
			w &= (1 << (uint(hi) & 63)) - 1
		}
		for w != 0 {
			f(wi<<6 | bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// CountIn returns the number of set bits in [lo, hi). hi is clamped to
// the vector length like ForEachIn.
func (b Bits) CountIn(lo, hi int) int {
	if max := len(b) << 6; hi > max {
		hi = max
	}
	if lo >= hi {
		return 0
	}
	wlo, whi := lo>>6, (hi+63)>>6
	n := 0
	for wi := wlo; wi < whi; wi++ {
		w := b[wi]
		if wi == wlo && lo&63 != 0 {
			w &^= (1 << (uint(lo) & 63)) - 1
		}
		if wi == whi-1 && hi&63 != 0 {
			w &= (1 << (uint(hi) & 63)) - 1
		}
		n += bits.OnesCount64(w)
	}
	return n
}
