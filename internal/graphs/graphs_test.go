package graphs

import (
	"math/rand"
	"testing"
)

func TestBasics(t *testing.T) {
	g := New()
	g.AddEdge("a", "b").AddEdge("b", "c").AddVertex("d")
	if g.NumVertices() != 4 || g.NumEdges() != 2 {
		t.Fatalf("counts: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if !g.Reachable("a", "c") || g.Reachable("c", "a") || g.Reachable("a", "d") {
		t.Error("reachability wrong")
	}
	if !g.Reachable("d", "d") {
		t.Error("vertex reaches itself")
	}
	if g.Reachable("zz", "zz") {
		t.Error("missing vertex is not reachable")
	}
	if len(g.Edges()) != 2 || g.Edges()[0] != [2]string{"a", "b"} {
		t.Errorf("Edges = %v", g.Edges())
	}
}

func TestAcyclicity(t *testing.T) {
	g := New()
	g.AddEdge("a", "b").AddEdge("b", "c")
	if !g.IsAcyclic() {
		t.Error("chain is acyclic")
	}
	g.AddEdge("c", "a")
	if g.IsAcyclic() {
		t.Error("cycle not detected")
	}
	self := New()
	self.AddEdge("x", "x")
	if self.IsAcyclic() {
		t.Error("self-loop is a cycle")
	}
}

func TestRandomDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		g := RandomDAG(rng, 2+rng.Intn(10), rng.Float64())
		if !g.IsAcyclic() {
			t.Fatal("RandomDAG produced a cycle")
		}
	}
}

func TestReachableMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for it := 0; it < 50; it++ {
		n := 2 + rng.Intn(7)
		g := New()
		adj := make([][]bool, n)
		names := make([]string, n)
		for i := range adj {
			adj[i] = make([]bool, n)
			names[i] = string(rune('a' + i))
			g.AddVertex(names[i])
		}
		for e := 0; e < 2*n; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b && !adj[a][b] {
				adj[a][b] = true
				g.AddEdge(names[a], names[b])
			}
		}
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = append([]bool(nil), adj[i]...)
			reach[i][i] = true
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if g.Reachable(names[i], names[j]) != reach[i][j] {
					t.Fatalf("it=%d: Reachable(%s,%s) mismatch", it, names[i], names[j])
				}
			}
		}
	}
}
