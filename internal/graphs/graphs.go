// Package graphs provides the directed-graph substrate used by the
// hardness reductions of Section 7: graph representation, reachability
// (the canonical NL-complete problem reduced FROM in Lemma 18), acyclic
// random graph generation, and topological utilities.
package graphs

import (
	"fmt"
	"math/rand"
	"sort"
)

// Digraph is a directed graph over string-named vertices.
type Digraph struct {
	adj  map[string][]string
	vset map[string]bool
}

// New returns an empty digraph.
func New() *Digraph {
	return &Digraph{adj: map[string][]string{}, vset: map[string]bool{}}
}

// AddVertex ensures v exists.
func (g *Digraph) AddVertex(v string) *Digraph {
	g.vset[v] = true
	return g
}

// AddEdge inserts the edge (a, b), creating vertices as needed.
func (g *Digraph) AddEdge(a, b string) *Digraph {
	g.AddVertex(a)
	g.AddVertex(b)
	g.adj[a] = append(g.adj[a], b)
	return g
}

// Vertices returns the vertices in sorted order.
func (g *Digraph) Vertices() []string {
	out := make([]string, 0, len(g.vset))
	for v := range g.vset {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Edges returns all edges in deterministic order.
func (g *Digraph) Edges() [][2]string {
	var out [][2]string
	for _, a := range g.Vertices() {
		succ := append([]string(nil), g.adj[a]...)
		sort.Strings(succ)
		for _, b := range succ {
			out = append(out, [2]string{a, b})
		}
	}
	return out
}

// Succ returns the successors of v.
func (g *Digraph) Succ(v string) []string { return g.adj[v] }

// NumVertices returns the vertex count.
func (g *Digraph) NumVertices() int { return len(g.vset) }

// NumEdges returns the edge count.
func (g *Digraph) NumEdges() int {
	n := 0
	for _, s := range g.adj {
		n += len(s)
	}
	return n
}

// Reachable reports whether t is reachable from s (including s == t).
func (g *Digraph) Reachable(s, t string) bool {
	if s == t {
		return g.vset[s]
	}
	seen := map[string]bool{s: true}
	stack := []string{s}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if w == t {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// IsAcyclic reports whether the graph has no directed cycle.
func (g *Digraph) IsAcyclic() bool {
	state := map[string]int{} // 0 unvisited, 1 on stack, 2 done
	var visit func(v string) bool
	visit = func(v string) bool {
		state[v] = 1
		for _, w := range g.adj[v] {
			switch state[w] {
			case 1:
				return false
			case 0:
				if !visit(w) {
					return false
				}
			}
		}
		state[v] = 2
		return true
	}
	for v := range g.vset {
		if state[v] == 0 && !visit(v) {
			return false
		}
	}
	return true
}

// RandomDAG generates a random DAG with n vertices named v0..v(n-1)
// (edges only from lower to higher index) and the given edge
// probability.
func RandomDAG(rng *rand.Rand, n int, p float64) *Digraph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddVertex(vname(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(vname(i), vname(j))
			}
		}
	}
	return g
}

func vname(i int) string { return fmt.Sprintf("v%d", i) }
