// Package query defines Boolean path queries (Section 2 of the paper):
// conjunctive queries of the form
//
//	q = { R1(x1, x2), R2(x2, x3), ..., Rk(xk, xk+1) }
//
// with distinct variables x1..xk+1 and not-necessarily-distinct relation
// names R1..Rk. A path query is losslessly represented by the word
// R1 R2 ... Rk over the alphabet of relation names; this package is the
// bridge between that word view (internal/words) and the atom view used
// by evaluators and the generic conjunctive-query machinery.
package query

import (
	"fmt"
	"strings"

	"cqa/internal/words"
)

// Path is a Boolean path query, stored as its word of relation names.
// The zero value is the empty query (trivially true).
type Path struct {
	word words.Word
}

// New builds a path query from a word of relation names.
func New(w words.Word) Path { return Path{word: w.Clone()} }

// Parse parses a path query from its word syntax (see words.Parse).
func Parse(s string) (Path, error) {
	w, err := words.Parse(s)
	if err != nil {
		return Path{}, fmt.Errorf("query: %w", err)
	}
	return Path{word: w}, nil
}

// MustParse is Parse that panics on error.
func MustParse(s string) Path {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

// Word returns the word of relation names of q (a copy).
func (q Path) Word() words.Word { return q.word.Clone() }

// Len returns the number of atoms of q.
func (q Path) Len() int { return len(q.word) }

// IsEmpty reports whether q has no atoms.
func (q Path) IsEmpty() bool { return len(q.word) == 0 }

// Rel returns the relation name of the i-th atom (0-based).
func (q Path) Rel(i int) string { return q.word[i] }

// HasSelfJoin reports whether some relation name occurs more than once.
func (q Path) HasSelfJoin() bool { return !q.word.IsSelfJoinFree() }

// Relations returns the sorted set of relation names occurring in q.
func (q Path) Relations() []string { return q.word.Symbols() }

// Equal reports whether q and p are the same query.
func (q Path) Equal(p Path) bool { return q.word.Equal(p.word) }

// String renders q in word syntax ("RRX").
func (q Path) String() string { return q.word.String() }

// Atoms renders q in logical atom syntax:
// "R(x1,x2), R(x2,x3), X(x3,x4)".
func (q Path) Atoms() string {
	if q.IsEmpty() {
		return "⊤"
	}
	var b strings.Builder
	for i, r := range q.word {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s(x%d,x%d)", r, i+1, i+2)
	}
	return b.String()
}

// Sentence renders q as the first-order sentence it represents.
func (q Path) Sentence() string {
	if q.IsEmpty() {
		return "true"
	}
	var b strings.Builder
	for i := 1; i <= q.Len()+1; i++ {
		fmt.Fprintf(&b, "∃x%d", i)
	}
	b.WriteString("(")
	for i, r := range q.word {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		fmt.Fprintf(&b, "%s(x%d,x%d)", r, i+1, i+2)
	}
	b.WriteString(")")
	return b.String()
}

// Suffix returns the path query made of the atoms from position i on.
func (q Path) Suffix(i int) Path { return Path{word: q.word.Suffix(i).Clone()} }

// Prefix returns the path query made of the first n atoms.
func (q Path) Prefix(n int) Path { return Path{word: q.word.Prefix(n).Clone()} }
