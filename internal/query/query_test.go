package query

import (
	"testing"

	"cqa/internal/words"
)

func TestParseAndAccessors(t *testing.T) {
	q := MustParse("RRX")
	if q.Len() != 3 || q.IsEmpty() || q.Rel(2) != "X" {
		t.Fatalf("accessors wrong: %v", q)
	}
	if !q.HasSelfJoin() || MustParse("RXY").HasSelfJoin() {
		t.Error("self-join detection wrong")
	}
	if got := q.Relations(); len(got) != 2 || got[0] != "R" || got[1] != "X" {
		t.Errorf("Relations = %v", got)
	}
	if _, err := Parse("rx"); err == nil {
		t.Error("lowercase compact word must fail")
	}
}

func TestRenderings(t *testing.T) {
	q := MustParse("RRX")
	if q.String() != "RRX" {
		t.Errorf("String = %s", q.String())
	}
	if got := q.Atoms(); got != "R(x1,x2), R(x2,x3), X(x3,x4)" {
		t.Errorf("Atoms = %s", got)
	}
	want := "∃x1∃x2∃x3∃x4(R(x1,x2) ∧ R(x2,x3) ∧ X(x3,x4))"
	if got := q.Sentence(); got != want {
		t.Errorf("Sentence = %s", got)
	}
	empty := New(words.Word{})
	if empty.Atoms() != "⊤" || empty.Sentence() != "true" {
		t.Error("empty renderings wrong")
	}
}

func TestPrefixSuffixEqual(t *testing.T) {
	q := MustParse("RRX")
	if !q.Prefix(2).Equal(MustParse("RR")) || !q.Suffix(1).Equal(MustParse("RX")) {
		t.Error("prefix/suffix wrong")
	}
	if q.Equal(MustParse("RR")) {
		t.Error("Equal wrong")
	}
	// Word() returns a copy.
	w := q.Word()
	w[0] = "Z"
	if q.Rel(0) != "R" {
		t.Error("Word must copy")
	}
}
