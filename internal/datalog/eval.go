package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is a row of constants.
type Tuple []string

func key(t Tuple) string { return strings.Join(t, "\x00") }

// Database holds extensional and derived facts by predicate.
type Database struct {
	rels map[string][]Tuple
	seen map[string]map[string]bool
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: map[string][]Tuple{}, seen: map[string]map[string]bool{}}
}

// Add inserts a fact; it reports whether the fact was new.
func (d *Database) Add(pred string, args ...string) bool {
	t := Tuple(args)
	k := key(t)
	if d.seen[pred] == nil {
		d.seen[pred] = map[string]bool{}
	}
	if d.seen[pred][k] {
		return false
	}
	d.seen[pred][k] = true
	d.rels[pred] = append(d.rels[pred], append(Tuple(nil), t...))
	return true
}

// Contains reports whether the fact is present.
func (d *Database) Contains(pred string, args ...string) bool {
	return d.seen[pred][key(Tuple(args))]
}

// Facts returns the tuples of pred in insertion order.
func (d *Database) Facts(pred string) []Tuple { return d.rels[pred] }

// Unary returns the sorted constants c with pred(c).
func (d *Database) Unary(pred string) []string {
	var out []string
	for _, t := range d.rels[pred] {
		if len(t) == 1 {
			out = append(out, t[0])
		}
	}
	sort.Strings(out)
	return out
}

// Predicates returns the predicates with at least one fact, sorted.
func (d *Database) Predicates() []string {
	var out []string
	for p, ts := range d.rels {
		if len(ts) > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy.
func (d *Database) Clone() *Database {
	out := NewDatabase()
	for p, ts := range d.rels {
		for _, t := range ts {
			out.Add(p, t...)
		}
	}
	return out
}

// Eval evaluates the program bottom-up over the extensional database,
// stratum by stratum with semi-naive iteration, and returns a database
// containing both the extensional and all derived facts.
func (p Program) Eval(edb *Database) (*Database, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	db := edb.Clone()

	stratumOf := map[string]int{}
	for i, s := range strata {
		for _, pred := range s {
			stratumOf[pred] = i
		}
	}

	for si, stratum := range strata {
		inStratum := map[string]bool{}
		for _, pred := range stratum {
			inStratum[pred] = true
		}
		var rules []Rule
		for _, r := range p.Rules {
			if stratumOf[r.Head.Pred] == si {
				rules = append(rules, r)
			}
		}
		if len(rules) == 0 {
			continue
		}

		// Round 0: full evaluation of every rule.
		delta := NewDatabase()
		for _, r := range rules {
			for _, t := range evalRule(r, db, nil, -1) {
				if db.Add(r.Head.Pred, t...) {
					delta.Add(r.Head.Pred, t...)
				}
			}
		}
		// Semi-naive rounds: each rule fires once per occurrence of a
		// recursive (same-stratum) positive literal, with that literal
		// bound to the delta.
		for {
			next := NewDatabase()
			for _, r := range rules {
				for bi, l := range r.Body {
					if l.Negated || l.Atom.IsBuiltin() || !inStratum[l.Atom.Pred] {
						continue
					}
					for _, t := range evalRule(r, db, delta, bi) {
						if db.Add(r.Head.Pred, t...) {
							next.Add(r.Head.Pred, t...)
						}
					}
				}
			}
			empty := true
			for _, pr := range next.Predicates() {
				if len(next.Facts(pr)) > 0 {
					empty = false
					break
				}
			}
			if empty {
				break
			}
			delta = next
		}
	}
	return db, nil
}

// evalRule returns the head tuples derivable from db (with body literal
// deltaIdx, if >= 0, restricted to the delta database). Literals are
// evaluated with a greedy safe ordering: a positive relational literal
// is always available; builtins and negated literals wait until their
// variables are bound.
func evalRule(r Rule, db, delta *Database, deltaIdx int) []Tuple {
	var out []Tuple
	n := len(r.Body)
	used := make([]bool, n)
	env := map[string]string{}

	var rec func(done int)
	rec = func(done int) {
		if done == n {
			t := make(Tuple, len(r.Head.Args))
			for i, a := range r.Head.Args {
				if a.Var {
					t[i] = env[a.Name]
				} else {
					t[i] = a.Name
				}
			}
			out = append(out, t)
			return
		}
		// Choose the next literal: prefer bound builtins/negations
		// (cheap filters), else a positive literal with the most bound
		// arguments.
		pick := -1
		pickScore := -1
		for i, l := range r.Body {
			if used[i] {
				continue
			}
			if l.Atom.IsBuiltin() || l.Negated {
				if boundAtom(l.Atom, env) {
					pick = i
					pickScore = 1 << 20
					break
				}
				continue
			}
			score := 0
			for _, a := range l.Atom.Args {
				if !a.Var {
					score += 2
				} else if _, ok := env[a.Name]; ok {
					score += 2
				}
			}
			if score > pickScore {
				pick = i
				pickScore = score
			}
		}
		if pick < 0 {
			// Only unbound builtins/negations remain: unsafe rule; the
			// Validate pass prevents this.
			panic("datalog: unsafe rule slipped through validation: " + r.String())
		}
		used[pick] = true
		defer func() { used[pick] = false }()
		l := r.Body[pick]

		if l.Atom.IsBuiltin() {
			a, _ := termValue(l.Atom.Args[0], env)
			b, _ := termValue(l.Atom.Args[1], env)
			ok := a == b
			if l.Atom.Pred == "!=" {
				ok = !ok
			}
			if ok {
				rec(done + 1)
			}
			return
		}
		if l.Negated {
			t := make(Tuple, len(l.Atom.Args))
			for i, a := range l.Atom.Args {
				t[i], _ = termValue(a, env)
			}
			if !db.Contains(l.Atom.Pred, t...) {
				rec(done + 1)
			}
			return
		}

		src := db
		if pick == deltaIdx {
			src = delta
		}
		for _, t := range src.Facts(l.Atom.Pred) {
			var bound []string
			ok := true
			for i, a := range l.Atom.Args {
				if !a.Var {
					if t[i] != a.Name {
						ok = false
						break
					}
					continue
				}
				if v, has := env[a.Name]; has {
					if v != t[i] {
						ok = false
						break
					}
					continue
				}
				env[a.Name] = t[i]
				bound = append(bound, a.Name)
			}
			if ok {
				rec(done + 1)
			}
			for _, v := range bound {
				delete(env, v)
			}
		}
		return
	}
	rec(0)
	return out
}

func boundAtom(a Atom, env map[string]string) bool {
	for _, t := range a.Args {
		if t.Var {
			if _, ok := env[t.Name]; !ok {
				return false
			}
		}
	}
	return true
}

func termValue(t Term, env map[string]string) (string, bool) {
	if !t.Var {
		return t.Name, true
	}
	v, ok := env[t.Name]
	return v, ok
}

// Query evaluates the program and returns the derived tuples of pred.
func (p Program) Query(edb *Database, pred string) ([]Tuple, error) {
	db, err := p.Eval(edb)
	if err != nil {
		return nil, err
	}
	out := db.Facts(pred)
	sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out, nil
}

// FormatTuples renders tuples for debugging.
func FormatTuples(pred string, ts []Tuple) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprintf("%s(%s)", pred, strings.Join(t, ","))
	}
	return strings.Join(parts, " ")
}
