// Package datalog implements a Datalog engine with stratified negation:
// AST, parser, safety and stratification checks (via Tarjan SCC on the
// predicate dependency graph), and semi-naive bottom-up evaluation. It
// exists to run the linear Datalog programs with stratified negation that
// Section 6.3 of the paper constructs for the NL-complete cases of
// CERTAINTY(q) (Lemma 14 and Claim 5), and doubles as a general substrate
// (the paper's Lemma 11 places the PTIME cases in Least Fixpoint Logic;
// our Figure 5 implementation lives in internal/fixpoint).
//
// Syntax (Prolog-ish): variables start with an uppercase letter,
// constants with a lowercase letter or digit (or are single-quoted).
// Rules end with a period. Negation is "not". The builtins X = Y and
// X != Y are supported with infix syntax.
//
//	uvterminal(X) :- c(X), not ukey(X).
//	path(X,Z) :- edge(X,Y), path(Y,Z), X != Z.
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a variable or a constant.
type Term struct {
	Name string
	Var  bool
}

// V returns a variable term.
func V(name string) Term { return Term{Name: name, Var: true} }

// C returns a constant term.
func C(name string) Term { return Term{Name: name} }

func (t Term) String() string { return t.Name }

// Atom is pred(args...). The builtin predicates "=" and "!=" are
// binary.
type Atom struct {
	Pred string
	Args []Term
}

// IsBuiltin reports whether the atom is an equality builtin.
func (a Atom) IsBuiltin() bool { return a.Pred == "=" || a.Pred == "!=" }

func (a Atom) String() string {
	if a.IsBuiltin() {
		return fmt.Sprintf("%s %s %s", a.Args[0], a.Pred, a.Args[1])
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ","))
}

// Literal is a possibly negated atom.
type Literal struct {
	Atom    Atom
	Negated bool
}

func (l Literal) String() string {
	if l.Negated {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Rule is head :- body. An empty body makes the rule a fact (the head
// must then be ground).
type Rule struct {
	Head Atom
	Body []Literal
}

func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is a list of rules.
type Program struct {
	Rules []Rule
}

func (p Program) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}

// IDBPredicates returns the predicates that appear in some rule head,
// sorted.
func (p Program) IDBPredicates() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range p.Rules {
		if !seen[r.Head.Pred] {
			seen[r.Head.Pred] = true
			out = append(out, r.Head.Pred)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks arity consistency and safety: every variable of the
// head, of a negated literal and of a builtin must occur in a positive
// non-builtin body literal.
func (p Program) Validate() error {
	arity := map[string]int{}
	check := func(a Atom) error {
		if a.IsBuiltin() {
			if len(a.Args) != 2 {
				return fmt.Errorf("datalog: builtin %s needs 2 arguments", a.Pred)
			}
			return nil
		}
		if n, ok := arity[a.Pred]; ok {
			if n != len(a.Args) {
				return fmt.Errorf("datalog: predicate %s used with arities %d and %d", a.Pred, n, len(a.Args))
			}
		} else {
			arity[a.Pred] = len(a.Args)
		}
		return nil
	}
	for _, r := range p.Rules {
		if err := check(r.Head); err != nil {
			return err
		}
		if r.Head.IsBuiltin() {
			return fmt.Errorf("datalog: builtin %s cannot be a rule head", r.Head.Pred)
		}
		positive := map[string]bool{}
		for _, l := range r.Body {
			if err := check(l.Atom); err != nil {
				return err
			}
			if !l.Negated && !l.Atom.IsBuiltin() {
				for _, t := range l.Atom.Args {
					if t.Var {
						positive[t.Name] = true
					}
				}
			}
		}
		unsafe := func(a Atom) *string {
			for _, t := range a.Args {
				if t.Var && !positive[t.Name] {
					return &t.Name
				}
			}
			return nil
		}
		if v := unsafe(r.Head); v != nil {
			return fmt.Errorf("datalog: unsafe rule %s: head variable %s not bound by a positive literal", r, *v)
		}
		for _, l := range r.Body {
			if l.Negated || l.Atom.IsBuiltin() {
				if v := unsafe(l.Atom); v != nil {
					return fmt.Errorf("datalog: unsafe rule %s: variable %s in %s not bound by a positive literal", r, *v, l)
				}
			}
		}
	}
	return nil
}

// IsLinear reports whether the program is linear Datalog: every rule
// body contains at most one IDB literal from the same recursive
// component as the head. Linear Datalog with stratified negation
// evaluates in NL, which is how Lemma 14 places the C2 cases in NL.
func (p Program) IsLinear() (bool, string) {
	strata, err := p.Stratify()
	if err != nil {
		return false, err.Error()
	}
	stratumOf := map[string]int{}
	for i, s := range strata {
		for _, pred := range s {
			stratumOf[pred] = i
		}
	}
	for _, r := range p.Rules {
		hs, ok := stratumOf[r.Head.Pred]
		if !ok {
			continue
		}
		sameStratum := 0
		for _, l := range r.Body {
			if l.Atom.IsBuiltin() || l.Negated {
				continue
			}
			if s, ok := stratumOf[l.Atom.Pred]; ok && s == hs && p.isRecursiveWith(r.Head.Pred, l.Atom.Pred, strata[hs]) {
				sameStratum++
			}
		}
		if sameStratum > 1 {
			return false, fmt.Sprintf("rule %s has %d recursive body literals", r, sameStratum)
		}
	}
	return true, ""
}

// isRecursiveWith reports whether a and b are mutually recursive (in the
// same SCC listed by stratum members).
func (p Program) isRecursiveWith(a, b string, stratum []string) bool {
	// Within a stratum, predicates may still be non-recursive with each
	// other; compute SCCs of the positive+negative dependency graph.
	sccs := p.sccs()
	for _, scc := range sccs {
		inA, inB := false, false
		for _, p := range scc {
			if p == a {
				inA = true
			}
			if p == b {
				inB = true
			}
		}
		if inA && inB {
			return true
		}
	}
	_ = stratum
	return false
}
