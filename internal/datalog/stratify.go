package datalog

import (
	"fmt"
	"sort"
)

// depEdge is an edge of the predicate dependency graph.
type depEdge struct {
	from, to string // head depends on body predicate
	negative bool
}

func (p Program) depEdges() []depEdge {
	var out []depEdge
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Atom.IsBuiltin() {
				continue
			}
			out = append(out, depEdge{from: r.Head.Pred, to: l.Atom.Pred, negative: l.Negated})
		}
	}
	return out
}

// sccs returns the strongly connected components of the predicate
// dependency graph (Tarjan), each sorted, in reverse topological order
// (dependencies first).
func (p Program) sccs() [][]string {
	edges := p.depEdges()
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for _, pr := range p.IDBPredicates() {
		nodes[pr] = true
	}
	for _, e := range edges {
		nodes[e.from] = true
		nodes[e.to] = true
		adj[e.from] = append(adj[e.from], e.to)
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var out [][]string

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			out = append(out, scc)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return out
}

// Stratify partitions the IDB predicates into strata such that negated
// dependencies always point to strictly lower strata. It returns an
// error when the program is not stratifiable (a negative edge inside a
// recursive component). EDB-only predicates are placed in stratum 0
// together with non-recursive IDB predicates that depend on nothing
// negated.
func (p Program) Stratify() ([][]string, error) {
	sccs := p.sccs()
	comp := map[string]int{}
	for i, scc := range sccs {
		for _, pred := range scc {
			comp[pred] = i
		}
	}
	// Negative edge within a component => not stratifiable.
	for _, e := range p.depEdges() {
		if e.negative && comp[e.from] == comp[e.to] {
			return nil, fmt.Errorf("datalog: not stratifiable: %s depends negatively on %s within a cycle", e.from, e.to)
		}
	}
	// Longest-path layering over the component DAG: stratum(c) >=
	// stratum(dep), strictly greater across negative edges.
	n := len(sccs)
	stratum := make([]int, n)
	for changed := true; changed; {
		changed = false
		for _, e := range p.depEdges() {
			cf, ct := comp[e.from], comp[e.to]
			if cf == ct {
				continue
			}
			need := stratum[ct]
			if e.negative {
				need++
			}
			if stratum[cf] < need {
				stratum[cf] = need
				changed = true
				if stratum[cf] > n {
					return nil, fmt.Errorf("datalog: stratification did not converge")
				}
			}
		}
	}
	maxS := 0
	for _, s := range stratum {
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]string, maxS+1)
	for i, scc := range sccs {
		out[stratum[i]] = append(out[stratum[i]], scc...)
	}
	for _, s := range out {
		sort.Strings(s)
	}
	return out, nil
}
