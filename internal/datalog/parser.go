package datalog

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a Datalog program. Comments run from '%' or "//" to end
// of line.
func Parse(src string) (Program, error) {
	toks, err := lex(src)
	if err != nil {
		return Program{}, err
	}
	p := &parser{toks: toks}
	var prog Program
	for !p.eof() {
		r, err := p.rule()
		if err != nil {
			return Program{}, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if err := prog.Validate(); err != nil {
		return Program{}, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type token struct {
	kind string // ident, var, punct
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '%':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == ':' && i+1 < n && src[i+1] == '-':
			toks = append(toks, token{"punct", ":-", i})
			i += 2
		case c == '!' && i+1 < n && src[i+1] == '=':
			toks = append(toks, token{"punct", "!=", i})
			i += 2
		case strings.ContainsRune("(),.=", rune(c)):
			toks = append(toks, token{"punct", string(c), i})
			i++
		case c == '\'':
			j := i + 1
			for j < n && src[j] != '\'' {
				j++
			}
			if j == n {
				return nil, fmt.Errorf("datalog: unterminated quote at %d", i)
			}
			toks = append(toks, token{"ident", src[i+1 : j], i})
			i = j + 1
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			text := src[i:j]
			kind := "ident"
			if unicode.IsUpper(rune(text[0])) || text[0] == '_' {
				kind = "var"
			}
			toks = append(toks, token{kind, text, i})
			i = j
		default:
			return nil, fmt.Errorf("datalog: unexpected character %q at %d", c, i)
		}
	}
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) eof() bool { return p.i >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{"eof", "", -1}
	}
	return p.toks[p.i]
}

func (p *parser) next() token {
	t := p.peek()
	p.i++
	return t
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("datalog: expected %q, got %q at %d", text, t.text, t.pos)
	}
	return nil
}

// rule parses: head [:- body] '.'.
func (p *parser) rule() (Rule, error) {
	head, err := p.atom()
	if err != nil {
		return Rule{}, err
	}
	r := Rule{Head: head}
	if p.peek().text == ":-" {
		p.next()
		for {
			lit, err := p.literal()
			if err != nil {
				return Rule{}, err
			}
			r.Body = append(r.Body, lit)
			if p.peek().text != "," {
				break
			}
			p.next()
		}
	}
	if err := p.expect("."); err != nil {
		return Rule{}, err
	}
	if len(r.Body) == 0 {
		for _, a := range r.Head.Args {
			if a.Var {
				return Rule{}, fmt.Errorf("datalog: fact %s must be ground", r.Head)
			}
		}
	}
	return r, nil
}

func (p *parser) literal() (Literal, error) {
	neg := false
	if t := p.peek(); t.kind == "ident" && t.text == "not" {
		p.next()
		neg = true
	}
	a, err := p.atom()
	if err != nil {
		return Literal{}, err
	}
	return Literal{Atom: a, Negated: neg}, nil
}

// atom parses pred(args) or the infix builtins T = T, T != T.
func (p *parser) atom() (Atom, error) {
	t := p.next()
	if t.kind != "ident" && t.kind != "var" {
		return Atom{}, fmt.Errorf("datalog: expected atom, got %q at %d", t.text, t.pos)
	}
	// Infix builtin? lookahead for = or !=.
	if op := p.peek().text; op == "=" || op == "!=" {
		p.next()
		rhs := p.next()
		if rhs.kind != "ident" && rhs.kind != "var" {
			return Atom{}, fmt.Errorf("datalog: expected term after %s at %d", op, rhs.pos)
		}
		return Atom{Pred: op, Args: []Term{tokTerm(t), tokTerm(rhs)}}, nil
	}
	if t.kind == "var" {
		return Atom{}, fmt.Errorf("datalog: predicate name %q cannot start uppercase at %d", t.text, t.pos)
	}
	a := Atom{Pred: t.text}
	if p.peek().text != "(" {
		return a, nil // propositional atom
	}
	p.next()
	for {
		arg := p.next()
		if arg.kind != "ident" && arg.kind != "var" {
			return Atom{}, fmt.Errorf("datalog: expected term, got %q at %d", arg.text, arg.pos)
		}
		a.Args = append(a.Args, tokTerm(arg))
		sep := p.next()
		if sep.text == ")" {
			break
		}
		if sep.text != "," {
			return Atom{}, fmt.Errorf("datalog: expected , or ) at %d", sep.pos)
		}
	}
	return a, nil
}

func tokTerm(t token) Term {
	if t.kind == "var" {
		return V(t.text)
	}
	return C(t.text)
}
