package datalog

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestParseAndString(t *testing.T) {
	src := `
% transitive closure
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y), edge(Y,Z).
start(a).
`
	p := MustParse(src)
	if len(p.Rules) != 3 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	if got := p.Rules[0].String(); got != "path(X,Y) :- edge(X,Y)." {
		t.Errorf("String = %q", got)
	}
	if got := p.Rules[2].String(); got != "start(a)." {
		t.Errorf("String = %q", got)
	}
	if !strings.Contains(p.String(), "path(X,Z)") {
		t.Error("program string")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p(X).",                   // non-ground fact
		"p(X) :- q(Y).",           // unsafe head
		"p(X) :- q(X), not r(Y).", // unsafe negation
		"p(X) :- q(X), X != Y.",   // unsafe builtin
		"p(X) :- q(X,Y), q(Y).",   // arity clash
		"p(X) :- q(X)",            // missing period
		"P(X) :- q(X).",           // uppercase predicate
		"p(X) :- q(X), 'unclosed", // unterminated quote
		"p(X) :- @(X).",           // bad character
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	p := MustParse(`
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y), edge(Y,Z).
`)
	edb := NewDatabase()
	edb.Add("edge", "a", "b")
	edb.Add("edge", "b", "c")
	edb.Add("edge", "c", "d")
	out, err := p.Query(edb, "path")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("path has %d tuples, want 6: %v", len(out), out)
	}
	db, _ := p.Eval(edb)
	if !db.Contains("path", "a", "d") || db.Contains("path", "d", "a") {
		t.Error("closure wrong")
	}
}

func TestStratifiedNegation(t *testing.T) {
	p := MustParse(`
reach(X) :- source(X).
reach(Y) :- reach(X), edge(X,Y).
node(X) :- edge(X,Y).
node(Y) :- edge(X,Y).
unreach(X) :- node(X), not reach(X).
`)
	edb := NewDatabase()
	edb.Add("source", "a")
	edb.Add("edge", "a", "b")
	edb.Add("edge", "c", "d")
	db, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Unary("unreach"); !reflect.DeepEqual(got, []string{"c", "d"}) {
		t.Errorf("unreach = %v", got)
	}
	if got := db.Unary("reach"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("reach = %v", got)
	}
}

func TestNotStratifiable(t *testing.T) {
	p, err := Parse(`
win(X) :- move(X,Y), not win(Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Eval(NewDatabase()); err == nil {
		t.Error("win/move program must be rejected as unstratifiable")
	}
	if _, err := p.Stratify(); err == nil {
		t.Error("Stratify must fail")
	}
}

func TestStratifyLayers(t *testing.T) {
	p := MustParse(`
a(X) :- e(X).
b(X) :- a(X), not c(X).
c(X) :- e(X), not a(X).
`)
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	level := map[string]int{}
	for i, s := range strata {
		for _, pred := range s {
			level[pred] = i
		}
	}
	if !(level["a"] < level["c"] && level["c"] < level["b"]) {
		t.Errorf("strata = %v", strata)
	}
}

func TestBuiltins(t *testing.T) {
	p := MustParse(`
diff(X,Y) :- e(X), e(Y), X != Y.
same(X,Y) :- e(X), e(Y), X = Y.
`)
	edb := NewDatabase()
	edb.Add("e", "a")
	edb.Add("e", "b")
	db, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Facts("diff")) != 2 {
		t.Errorf("diff = %v", db.Facts("diff"))
	}
	if len(db.Facts("same")) != 2 {
		t.Errorf("same = %v", db.Facts("same"))
	}
	if !db.Contains("diff", "a", "b") || db.Contains("diff", "a", "a") {
		t.Error("!= semantics wrong")
	}
}

func TestConstantsInRules(t *testing.T) {
	p := MustParse(`
hit(X) :- edge(X, target).
special(yes) :- edge(a, b).
`)
	edb := NewDatabase()
	edb.Add("edge", "a", "target")
	edb.Add("edge", "a", "b")
	db, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Unary("hit"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("hit = %v", got)
	}
	if got := db.Unary("special"); !reflect.DeepEqual(got, []string{"yes"}) {
		t.Errorf("special = %v", got)
	}
}

func TestFactsInProgram(t *testing.T) {
	p := MustParse(`
e(a,b).
e(b,c).
tc(X,Y) :- e(X,Y).
tc(X,Z) :- tc(X,Y), e(Y,Z).
`)
	db, err := p.Eval(NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	if !db.Contains("tc", "a", "c") {
		t.Error("facts in program not used")
	}
}

func TestIsLinear(t *testing.T) {
	linear := MustParse(`
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y), edge(Y,Z).
`)
	if ok, why := linear.IsLinear(); !ok {
		t.Errorf("linear program reported nonlinear: %s", why)
	}
	nonlinear := MustParse(`
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y), path(Y,Z).
`)
	if ok, _ := nonlinear.IsLinear(); ok {
		t.Error("doubled recursion is not linear")
	}
	// Mutual recursion through two predicates, one occurrence each:
	// still linear.
	mutual := MustParse(`
even(X) :- zero(X).
even(Y) :- odd(X), succ(X,Y).
odd(Y) :- even(X), succ(X,Y).
`)
	if ok, why := mutual.IsLinear(); !ok {
		t.Errorf("mutual single recursion is linear: %s", why)
	}
}

func TestSemiNaiveMatchesNaiveOnRandomGraphs(t *testing.T) {
	// Differential: evaluate transitive closure and compare with a
	// straightforward Floyd–Warshall style closure.
	p := MustParse(`
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y), edge(Y,Z).
`)
	rng := rand.New(rand.NewSource(71))
	for it := 0; it < 60; it++ {
		n := 2 + rng.Intn(6)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		edb := NewDatabase()
		for e := 0; e < n+rng.Intn(2*n); e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			adj[a][b] = true
			edb.Add("edge", name(a), name(b))
		}
		// closure
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = append([]bool(nil), adj[i]...)
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		db, err := p.Eval(edb)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if reach[i][j] != db.Contains("path", name(i), name(j)) {
					t.Fatalf("it=%d: path(%s,%s) mismatch", it, name(i), name(j))
				}
			}
		}
	}
}

func name(i int) string { return string(rune('a' + i)) }

func TestDatabaseHelpers(t *testing.T) {
	d := NewDatabase()
	if !d.Add("p", "a") || d.Add("p", "a") {
		t.Error("Add dedup wrong")
	}
	d.Add("q", "a", "b")
	if got := d.Predicates(); !reflect.DeepEqual(got, []string{"p", "q"}) {
		t.Errorf("Predicates = %v", got)
	}
	c := d.Clone()
	c.Add("p", "z")
	if d.Contains("p", "z") {
		t.Error("clone not independent")
	}
	if FormatTuples("p", d.Facts("p")) != "p(a)" {
		t.Errorf("FormatTuples = %q", FormatTuples("p", d.Facts("p")))
	}
}

func TestPropositionalAtoms(t *testing.T) {
	p := MustParse(`
ok :- flagged.
flagged.
`)
	db, err := p.Eval(NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	if !db.Contains("ok") {
		t.Error("propositional derivation failed")
	}
}

func TestQuotedConstants(t *testing.T) {
	p := MustParse(`hit(X) :- e(X, 'Weird Const').`)
	edb := NewDatabase()
	edb.Add("e", "a", "Weird Const")
	db, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Contains("hit", "a") {
		t.Error("quoted constant not matched")
	}
}
