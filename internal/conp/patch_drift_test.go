package conp

import (
	"testing"

	"cqa/internal/instance"
	"cqa/internal/words"
	"cqa/internal/workload"
)

// TestPatchDriftRepairsRealisticInstance drives the patcher with
// drifting (non-toggling) mutations on a workload-sized instance, where
// level-0 propagation fixes many selector and z variables at the
// solver's root. Root assignments must not defeat patching: removals
// only strengthen the formula, and additions retract every root
// assignment depending on a clause about to be weakened before
// weakening it, so each step must repair in place rather than rebuild —
// and still agree with a cold build.
func TestPatchDriftRepairsRealisticInstance(t *testing.T) {
	db := workload.Random(workload.Config{
		Relations:    []string{"R", "X", "Y", "A"},
		Constants:    500,
		Facts:        1000,
		ConflictRate: 0.3,
		Seed:         42,
	})
	q := words.MustParse("ARRX")
	cp := Compile(q)
	cp.IsCertain(db) // cold build for the lineage root

	// Pick a conflicting R block and three constants outside it, then
	// rotate the block through them: each step removes the previous
	// extra value and adds the next, so no state ever recurs (the
	// intern layer cannot undo-collapse) and every step reaches patch.
	var key string
	var cands []string
	for _, bid := range db.ConflictingBlocks() {
		if bid.Rel != "R" {
			continue
		}
		in := map[string]bool{}
		for _, v := range db.Block(bid.Rel, bid.Key) {
			in[v] = true
		}
		for _, c := range db.Adom() {
			if !in[c] && len(cands) < 3 {
				cands = append(cands, c)
			}
		}
		if len(cands) == 3 {
			key = bid.Key
			break
		}
		cands = cands[:0]
	}
	if key == "" {
		t.Fatal("workload instance has no conflicting R block with spare constants")
	}

	const steps = 24
	cur := -1
	for i := 0; i < steps; i++ {
		if cur >= 0 {
			db.Remove(instance.Fact{Rel: "R", Key: key, Val: cands[cur]})
		}
		cur = (cur + 1) % len(cands)
		db.Add(instance.Fact{Rel: "R", Key: key, Val: cands[cur]})

		got := cp.IsCertain(db)
		want := Compile(q).IsCertain(db.Clone())
		if got.Certain != want.Certain {
			t.Fatalf("step %d: patched = %v, cold = %v", i, got.Certain, want.Certain)
		}
		if !got.Certain {
			cex := got.Counterexample()
			if cex == nil || !cex.IsRepairOf(db) || cex.Satisfies(q) {
				t.Fatalf("step %d: invalid counterexample from patched encoding", i)
			}
		}
	}
	if s := cp.EncodingStats(); s.Repairs != steps {
		t.Errorf("stats = %+v, want every drift step repaired (%d)", s, steps)
	}
}
