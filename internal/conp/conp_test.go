package conp

import (
	"math/rand"
	"testing"

	"cqa/internal/instance"
	"cqa/internal/repairs"
	"cqa/internal/words"
)

func TestFigure2(t *testing.T) {
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	res := IsCertain(db, words.MustParse("RRX"))
	if !res.Certain {
		t.Fatal("Figure 2 is a yes-instance of CERTAINTY(RRX)")
	}
	if res.Counterexample != nil {
		t.Error("yes-instance must have no counterexample")
	}
}

func TestFigure3(t *testing.T) {
	db := instance.MustParseFacts("A(0,a) R(a,b) R(a,c) R(b,c) R(c,b) X(c,t)")
	q := words.MustParse("ARRX")
	res := IsCertain(db, q)
	if res.Certain {
		t.Fatal("Figure 3 is a no-instance of CERTAINTY(ARRX)")
	}
	cex := res.Counterexample
	if cex == nil || !cex.IsRepairOf(db) {
		t.Fatalf("bad counterexample: %v", cex)
	}
	if cex.Satisfies(q) {
		t.Errorf("counterexample %s satisfies q", cex)
	}
}

func TestAgainstExhaustiveAllClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	queries := []words.Word{
		words.MustParse("RXRX"),     // FO
		words.MustParse("RRX"),      // NL
		words.MustParse("RXRYRY"),   // PTIME
		words.MustParse("ARRX"),     // coNP
		words.MustParse("RXRXRYRY"), // coNP
		words.MustParse("RR"),       // FO
	}
	for it := 0; it < 300; it++ {
		db := instance.New()
		n := 1 + rng.Intn(9)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X", "Y", "A"}[rng.Intn(4)]
			db.AddFact(rel, string(rune('a'+rng.Intn(4))), string(rune('a'+rng.Intn(4))))
		}
		for _, q := range queries {
			res := IsCertain(db, q)
			want := repairs.IsCertain(db, q)
			if res.Certain != want {
				t.Fatalf("it=%d db=%s q=%v: sat=%v exhaustive=%v", it, db, q, res.Certain, want)
			}
			if !res.Certain {
				if res.Counterexample == nil || !res.Counterexample.IsRepairOf(db) ||
					res.Counterexample.Satisfies(q) {
					t.Fatalf("it=%d db=%s q=%v: invalid counterexample %v", it, db, q, res.Counterexample)
				}
			}
		}
	}
}

func TestCyclicWalkCounterexampleHandling(t *testing.T) {
	// The instance of the Lemma 12 discrepancy: exact-trace walks that
	// reuse a chosen fact must be visible to the encoding (the z-chain
	// handles them because z[c,i] quantifies over positions, not facts).
	db := instance.MustParseFacts("R(a,b) R(b,a) R(c,a) R(c,c) X(b,b) X(c,a)")
	q := words.MustParse("RRX")
	res := IsCertain(db, q)
	want := repairs.IsCertain(db, q)
	if res.Certain != want {
		t.Fatalf("sat=%v exhaustive=%v", res.Certain, want)
	}
}

func TestEmptyQueryAndEmptyDB(t *testing.T) {
	if !IsCertain(instance.New(), words.MustParse("RRX")).Certain == false {
		t.Error("empty db is a no-instance for a nonempty query")
	}
	if !IsCertain(instance.MustParseFacts("R(a,b)"), words.Word{}).Certain {
		t.Error("empty query is certain")
	}
}

func TestEncodingSize(t *testing.T) {
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	v, c := EncodingSize(db, words.MustParse("RRX"))
	if v == 0 || c == 0 {
		t.Error("expected nonzero encoding")
	}
	v0, c0 := EncodingSize(db, words.Word{})
	if v0 != 0 || c0 != 0 {
		t.Error("empty query encodes to nothing")
	}
	res := IsCertain(db, words.MustParse("RRX"))
	if res.Vars != v || res.Clauses != c {
		t.Errorf("size mismatch: (%d,%d) vs (%d,%d)", res.Vars, res.Clauses, v, c)
	}
}

func TestStatsPopulated(t *testing.T) {
	db := instance.MustParseFacts("A(0,a) R(a,b) R(a,c) R(b,c) R(c,b) X(c,t)")
	res := IsCertain(db, words.MustParse("ARRX"))
	if res.Propagations == 0 {
		t.Error("expected solver activity")
	}
}
