package conp

import (
	"fmt"
	"math/rand"
	"testing"

	"cqa/internal/instance"
	"cqa/internal/repairs"
	"cqa/internal/words"
)

func TestFigure2(t *testing.T) {
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	res := IsCertain(db, words.MustParse("RRX"))
	if !res.Certain {
		t.Fatal("Figure 2 is a yes-instance of CERTAINTY(RRX)")
	}
	if res.Counterexample() != nil {
		t.Error("yes-instance must have no counterexample")
	}
}

func TestFigure3(t *testing.T) {
	db := instance.MustParseFacts("A(0,a) R(a,b) R(a,c) R(b,c) R(c,b) X(c,t)")
	q := words.MustParse("ARRX")
	res := IsCertain(db, q)
	if res.Certain {
		t.Fatal("Figure 3 is a no-instance of CERTAINTY(ARRX)")
	}
	cex := res.Counterexample()
	if cex == nil || !cex.IsRepairOf(db) {
		t.Fatalf("bad counterexample: %v", cex)
	}
	if cex.Satisfies(q) {
		t.Errorf("counterexample %s satisfies q", cex)
	}
}

func TestAgainstExhaustiveAllClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	queries := []words.Word{
		words.MustParse("RXRX"),     // FO
		words.MustParse("RRX"),      // NL
		words.MustParse("RXRYRY"),   // PTIME
		words.MustParse("ARRX"),     // coNP
		words.MustParse("RXRXRYRY"), // coNP
		words.MustParse("RR"),       // FO
	}
	for it := 0; it < 300; it++ {
		db := instance.New()
		n := 1 + rng.Intn(9)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X", "Y", "A"}[rng.Intn(4)]
			db.AddFact(rel, string(rune('a'+rng.Intn(4))), string(rune('a'+rng.Intn(4))))
		}
		for _, q := range queries {
			res := IsCertain(db, q)
			want := repairs.IsCertain(db, q)
			if res.Certain != want {
				t.Fatalf("it=%d db=%s q=%v: sat=%v exhaustive=%v", it, db, q, res.Certain, want)
			}
			if !res.Certain {
				cex := res.Counterexample()
				if cex == nil || !cex.IsRepairOf(db) || cex.Satisfies(q) {
					t.Fatalf("it=%d db=%s q=%v: invalid counterexample %v", it, db, q, cex)
				}
			}
		}
	}
}

func TestCyclicWalkCounterexampleHandling(t *testing.T) {
	// The instance of the Lemma 12 discrepancy: exact-trace walks that
	// reuse a chosen fact must be visible to the encoding (the z-chain
	// handles them because z[c,i] quantifies over positions, not facts).
	db := instance.MustParseFacts("R(a,b) R(b,a) R(c,a) R(c,c) X(b,b) X(c,a)")
	q := words.MustParse("RRX")
	res := IsCertain(db, q)
	want := repairs.IsCertain(db, q)
	if res.Certain != want {
		t.Fatalf("sat=%v exhaustive=%v", res.Certain, want)
	}
}

func TestEmptyQueryAndEmptyDB(t *testing.T) {
	if !IsCertain(instance.New(), words.MustParse("RRX")).Certain == false {
		t.Error("empty db is a no-instance for a nonempty query")
	}
	if !IsCertain(instance.MustParseFacts("R(a,b)"), words.Word{}).Certain {
		t.Error("empty query is certain")
	}
}

func TestEncodingSize(t *testing.T) {
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	v, c := EncodingSize(db, words.MustParse("RRX"))
	if v == 0 || c == 0 {
		t.Error("expected nonzero encoding")
	}
	v0, c0 := EncodingSize(db, words.Word{})
	if v0 != 0 || c0 != 0 {
		t.Error("empty query encodes to nothing")
	}
	res := IsCertain(db, words.MustParse("RRX"))
	if res.Vars != v || res.Clauses != c {
		t.Errorf("size mismatch: (%d,%d) vs (%d,%d)", res.Vars, res.Clauses, v, c)
	}
}

func TestStatsPopulated(t *testing.T) {
	db := instance.MustParseFacts("A(0,a) R(a,b) R(a,c) R(b,c) R(c,b) X(c,t)")
	res := IsCertain(db, words.MustParse("ARRX"))
	if res.Propagations == 0 {
		t.Error("expected solver activity")
	}
}

// TestEncodingSizeLinearAMO: the at-most-one clause count must grow
// linearly (sequential ladder), not quadratically (pairwise), in the
// block size. The block lives under a relation absent from q, so the
// encoding is exactly one exactly-one constraint.
func TestEncodingSizeLinearAMO(t *testing.T) {
	q := words.MustParse("RRX")
	mk := func(m int) *instance.Instance {
		db := instance.New()
		for i := 0; i < m; i++ {
			db.AddFact("S", "k", fmt.Sprintf("v%03d", i))
		}
		return db
	}
	_, c40 := EncodingSize(mk(40), q)
	_, c80 := EncodingSize(mk(80), q)
	// Ladder: 3m-3 clauses (117 / 237). Pairwise would be 1+m(m-1)/2
	// (781 / 3161): both assertions below reject it.
	if float64(c80) > 2.3*float64(c40) {
		t.Errorf("at-most-one growth not linear: clauses(40)=%d clauses(80)=%d", c40, c80)
	}
	if c80 > 4*80 {
		t.Errorf("clauses(80) = %d, want <= %d (linear bound)", c80, 4*80)
	}
	// Doubling a block must also keep answers correct: exactly-one is
	// still enforced through the ladder.
	db := mk(7)
	db.AddFact("R", "k", "v000")
	if got := IsCertain(db, q).Certain; got {
		t.Error("no X facts: cannot be certain")
	}
}
