// Package conp implements the generic coNP solver tier for CERTAINTY(q):
// a polynomial-size SAT encoding of the complement question "is there a
// repair of db that falsifies q", solved with the CDCL solver of
// internal/sat. It is correct for EVERY path query q (CERTAINTY(q) is in
// coNP, Section 2 of the paper) and is the executable counterpart of the
// SAT-based CQA systems discussed in Section 9 (e.g. CAvSAT).
//
// Encoding. One selector variable x_f per fact f, with exactly-one
// constraints per block (a repair picks one fact per block). One
// reachability variable z[c,i] per constant c and query position i,
// defined by Tseitin equivalences
//
//	z[c,i] ↔ ⋁_{f = q[i](c,d) ∈ db} ( x_f ∧ z[d,i+1] ),  z[·,k] = true,
//
// so that under any repair assignment, z[c,0] holds iff the repair has a
// path with trace q starting at c. Asserting ¬z[c,0] for every constant
// makes the formula satisfiable iff some repair falsifies q. The
// encoding is acyclic in i, hence linear in |db|·|q|.
package conp

import (
	"cqa/internal/instance"
	"cqa/internal/sat"
	"cqa/internal/words"
)

// Result reports the outcome of the SAT-based certainty check.
type Result struct {
	Certain bool
	// Counterexample is a repair falsifying q when Certain is false.
	Counterexample *instance.Instance
	// Vars and Clauses describe the size of the CNF encoding.
	Vars    int
	Clauses int
	// Decisions, Propagations, Conflicts are solver statistics.
	Decisions    uint64
	Propagations uint64
	Conflicts    uint64
}

// encoder builds the CNF.
type encoder struct {
	s       *solverShim
	factVar map[instance.Fact]int
	zVar    map[zKey]int
}

type zKey struct {
	c string
	i int
}

// solverShim counts variables before the solver exists.
type solverShim struct {
	nVars   int
	clauses [][]int
}

func (s *solverShim) newVar() int {
	s.nVars++
	return s.nVars
}

func (s *solverShim) add(lits ...int) {
	c := make([]int, len(lits))
	copy(c, lits)
	s.clauses = append(s.clauses, c)
}

// IsCertain decides CERTAINTY(q) on db via SAT. It works for every path
// query q.
func IsCertain(db *instance.Instance, q words.Word) *Result {
	if len(q) == 0 {
		return &Result{Certain: true}
	}
	enc := &encoder{
		s:       &solverShim{},
		factVar: make(map[instance.Fact]int),
		zVar:    make(map[zKey]int),
	}
	enc.encode(db, q)

	solver := sat.NewSolver(enc.s.nVars)
	for _, c := range enc.s.clauses {
		if err := solver.AddClause(c...); err != nil {
			panic("conp: internal encoding error: " + err.Error())
		}
	}
	res := &Result{Vars: enc.s.nVars, Clauses: len(enc.s.clauses)}
	status := solver.Solve()
	res.Decisions, res.Propagations, res.Conflicts = solver.Stats()
	switch status {
	case sat.Sat:
		res.Certain = false
		res.Counterexample = enc.decode(db, solver.Model())
	case sat.Unsat:
		res.Certain = true
	default:
		panic("conp: solver returned UNKNOWN without a conflict budget")
	}
	return res
}

func (e *encoder) encode(db *instance.Instance, q words.Word) {
	k := len(q)

	// Selector variables and exactly-one per block.
	for _, id := range db.Blocks() {
		vals := db.Block(id.Rel, id.Key)
		lits := make([]int, 0, len(vals))
		for _, v := range vals {
			f := instance.Fact{Rel: id.Rel, Key: id.Key, Val: v}
			x := e.s.newVar()
			e.factVar[f] = x
			lits = append(lits, x)
		}
		e.s.add(lits...) // at least one
		for a := 0; a < len(lits); a++ {
			for b := a + 1; b < len(lits); b++ {
				e.s.add(-lits[a], -lits[b]) // at most one
			}
		}
	}

	// Reachability variables, from the last position backwards. z[c,i]
	// exists only when the block q[i](c,*) is nonempty; otherwise no
	// path can start there and the variable is constant false.
	for i := k - 1; i >= 0; i-- {
		rel := q[i]
		for _, id := range db.Blocks() {
			if id.Rel != rel {
				continue
			}
			z := e.s.newVar()
			e.zVar[zKey{id.Key, i}] = z
			// z ↔ ⋁_f (x_f ∧ z[d,i+1]).
			var disj []int
			for _, d := range db.Block(rel, id.Key) {
				f := instance.Fact{Rel: rel, Key: id.Key, Val: d}
				x := e.factVar[f]
				zNext, nextTrue := e.zLookup(d, i+1, k)
				if nextTrue {
					// x_f alone implies z; and contributes x_f to the
					// disjunction.
					e.s.add(-x, z)
					disj = append(disj, x)
					continue
				}
				if zNext == 0 {
					continue // successor can never start the suffix
				}
				a := e.s.newVar()
				e.s.add(-a, x)
				e.s.add(-a, zNext)
				e.s.add(-x, -zNext, a)
				e.s.add(-a, z)
				disj = append(disj, a)
			}
			// z → ⋁ disj.
			clause := append([]int{-z}, disj...)
			e.s.add(clause...)
		}
	}

	// No constant may start a q-trace path.
	for _, c := range db.Adom() {
		if z, ok := e.zVar[zKey{c, 0}]; ok {
			e.s.add(-z)
		}
	}
}

// zLookup resolves z[d,i]; the bool result means "constant true" (i==k).
func (e *encoder) zLookup(d string, i, k int) (int, bool) {
	if i == k {
		return 0, true
	}
	z, ok := e.zVar[zKey{d, i}]
	if !ok {
		return 0, false
	}
	return z, false
}

// decode extracts the repair from a satisfying model.
func (e *encoder) decode(db *instance.Instance, model []bool) *instance.Instance {
	r := instance.New()
	for f, v := range e.factVar {
		if model[v] {
			r.Add(f)
		}
	}
	// Blocks whose relation does not occur in q still need a choice to
	// form a full repair; the encoding covers all blocks via selectors,
	// so r is already complete.
	_ = db
	return r
}

// EncodingSize returns the CNF size (vars, clauses) of the encoding for
// db and q without solving; used by benchmarks.
func EncodingSize(db *instance.Instance, q words.Word) (int, int) {
	if len(q) == 0 {
		return 0, 0
	}
	enc := &encoder{
		s:       &solverShim{},
		factVar: make(map[instance.Fact]int),
		zVar:    make(map[zKey]int),
	}
	enc.encode(db, q)
	return enc.s.nVars, len(enc.s.clauses)
}
