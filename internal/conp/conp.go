// Package conp implements the generic coNP solver tier for CERTAINTY(q):
// a polynomial-size SAT encoding of the complement question "is there a
// repair of db that falsifies q", solved with the incremental CDCL
// solver of internal/sat. It is correct for EVERY path query q
// (CERTAINTY(q) is in coNP, Section 2 of the paper) and is the
// executable counterpart of the SAT-based CQA systems discussed in
// Section 9 (e.g. CAvSAT).
//
// Encoding. One selector variable x_f per fact f, with exactly-one
// constraints per block (a repair picks one fact per block; blocks
// larger than a small threshold use a sequential "ladder" at-most-one,
// so the clause count stays linear in the block size instead of
// quadratic). One reachability variable z[c,i] per constant c and query
// position i, defined by Tseitin equivalences
//
//	z[c,i] ↔ ⋁_{f = q[i](c,d) ∈ db} ( x_f ∧ z[d,i+1] ),  z[·,k] = true,
//
// so that under any repair assignment, z[c,0] holds iff the repair has a
// path with trace q starting at c. Assuming ¬z[c,0] for every constant
// makes the formula satisfiable iff some repair falsifies q. The
// encoding is acyclic in i, hence linear in |db|·|q|.
//
// Compilation and interning. Compile captures the query-side clause
// skeleton — the positions, the relation at each position, the shape of
// the z-chain ladder — once per query; the instance-bound CNF is then
// built on instance.Interned with every variable id computed by
// arithmetic on dense interned ids (selectors from block offsets,
// z[c,i] at constID·k+i) instead of hashed string keys, and the clause
// literals live in one flat arena. The built encoding (CNF arena,
// selector layout, and the lazily constructed solver with everything it
// learns) is memoized per interned snapshot through an entry- and
// byte-bounded internal/memo.LRU, so a warm re-decision on an unchanged
// instance re-runs only the solver — under the same assumptions, warmed
// by saved phases and learned clauses — and a mutation invalidates by
// publishing a fresh snapshot pointer. Counterexample repairs are
// decoded to interned fact ids at solve time and materialized to a
// string-keyed *instance.Instance only on demand.
package conp

import (
	"sync"

	"cqa/internal/bitset"
	"cqa/internal/instance"
	"cqa/internal/memo"
	"cqa/internal/sat"
	"cqa/internal/words"
)

const (
	// maxEncodings / maxEncodingBytes bound the per-query encoding memo:
	// a CNF is O(|db|·|q|) literals, so the byte budget sheds snapshots
	// of huge instances long before the entry bound would.
	maxEncodings     = 16
	maxEncodingBytes = 64 << 20

	// amoPairwiseMax is the largest block encoded with the quadratic
	// pairwise at-most-one; above it the sequential ladder (3m-4 clauses,
	// m-1 auxiliary variables) takes over. At m=5 the pairwise count (10)
	// is level with the ladder's (11) without its extra variables.
	amoPairwiseMax = 5

	// maxLearnedFactor bounds the learned clauses a memoized solver may
	// accumulate across re-decisions, as a multiple of its problem
	// clauses; beyond it the solver is rebuilt from the arena (dropping
	// the learned database) rather than dragging it through every call.
	maxLearnedFactor = 2
)

// Result reports the outcome of the SAT-based certainty check.
type Result struct {
	Certain bool
	// Vars and Clauses describe the size of the CNF encoding (problem
	// clauses; learned clauses are not counted).
	Vars    int
	Clauses int
	// Decisions, Propagations, Conflicts are solver statistics for this
	// decision (deltas, even when the underlying solver is shared by
	// many warm calls).
	Decisions    uint64
	Propagations uint64
	Conflicts    uint64

	// The counterexample is decoded to interned ids (one chosen value
	// per block) at solve time and materialized on demand.
	iv      *instance.Interned
	sel     []int32
	cexOnce sync.Once
	cex     *instance.Instance
}

// Counterexample returns a repair of db falsifying q when Certain is
// false, and nil otherwise. The repair is materialized to a
// string-keyed instance on first call and memoized; callers that only
// need the decision never pay for the materialization.
func (r *Result) Counterexample() *instance.Instance {
	if r.Certain || r.iv == nil {
		return nil
	}
	r.cexOnce.Do(func() {
		iv := r.iv
		db := instance.New()
		gb := 0
		for rid := 0; rid < iv.NumRels(); rid++ {
			rel := iv.Rel(int32(rid))
			for _, bl := range iv.RelBlocks(int32(rid)) {
				db.AddFact(rel, iv.Const(bl.Key), iv.Const(r.sel[gb]))
				gb++
			}
		}
		r.cex = db
	})
	return r.cex
}

// Compiled is the query-side half of the SAT tier for one path query:
// the clause skeleton (length, per-position relation, and the grouping
// of positions by relation name that the encoder uses to intern each
// distinct relation once), plus the per-snapshot encoding memo. A
// Compiled is immutable after Compile and safe for concurrent use; the
// per-encoding solver state is serialized internally.
type Compiled struct {
	q words.Word
	k int
	// rels / posOf: the distinct relation names of q and the positions
	// where each occurs — the skeleton's "which z-ladders share a
	// relation" structure.
	rels  []string
	posOf [][]int32

	encs *memo.LRU[*instance.Interned, *encoding]
}

// Compile captures the clause skeleton of q for the SAT tier.
func Compile(q words.Word) *Compiled {
	c := &Compiled{q: q.Clone(), k: len(q)}
	idx := make(map[string]int, c.k)
	for i, rel := range c.q {
		j, ok := idx[rel]
		if !ok {
			j = len(c.rels)
			idx[rel] = j
			c.rels = append(c.rels, rel)
			c.posOf = append(c.posOf, nil)
		}
		c.posOf[j] = append(c.posOf[j], int32(i))
	}
	if c.k > 0 {
		c.encs = memo.NewLRUWithBudget[*instance.Interned, *encoding](
			maxEncodings, maxEncodingBytes, func(e *encoding) int64 { return e.bytes })
	}
	return c
}

// Query returns the compiled query word.
func (c *Compiled) Query() words.Word { return c.q.Clone() }

// EncodingStats returns the hit/miss counters of the per-snapshot CNF
// memo: Misses is the number of encodings built, Hits the number of
// decisions served by an incremental re-solve of a resident encoding.
func (c *Compiled) EncodingStats() memo.Stats {
	if c.encs == nil {
		return memo.Stats{}
	}
	return c.encs.Stats()
}

// IsCertain decides CERTAINTY(q) on db, reusing the memoized encoding
// (and its incremental solver) when db's interned snapshot is unchanged
// since a previous decision.
func (c *Compiled) IsCertain(db *instance.Instance) *Result {
	return c.IsCertainInterned(db.Interned())
}

// IsCertainInterned is IsCertain on an interned snapshot directly.
func (c *Compiled) IsCertainInterned(iv *instance.Interned) *Result {
	if c.k == 0 {
		return &Result{Certain: true}
	}
	e := c.encs.Get(iv, func() *encoding { return c.encode(iv) })
	res := &Result{Vars: e.nVars, Clauses: len(e.clauseEnd)}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.solver == nil || e.solver.NumLearned() > maxLearnedFactor*len(e.clauseEnd)+1024 {
		e.buildSolver()
	}
	status := e.solver.SolveAssuming(e.roots...)
	d, p, cf := e.solver.Stats()
	res.Decisions, res.Propagations, res.Conflicts = d-e.prevDec, p-e.prevProp, cf-e.prevConf
	e.prevDec, e.prevProp, e.prevConf = d, p, cf
	switch status {
	case sat.Sat:
		res.iv = iv
		res.sel = e.decodeSel()
	case sat.Unsat:
		res.Certain = true
	default:
		panic("conp: solver returned UNKNOWN without a conflict budget")
	}
	return res
}

// IsCertain decides CERTAINTY(q) on db via SAT. It works for every path
// query q. It compiles q per call; serving paths hold a Compiled (the
// plan layer does) and let its snapshot memo absorb repeated decisions.
func IsCertain(db *instance.Instance, q words.Word) *Result {
	return Compile(q).IsCertain(db)
}

// EncodingSize returns the CNF size (vars, clauses) of the encoding for
// db and q without solving; used by tests and benchmarks.
func EncodingSize(db *instance.Instance, q words.Word) (int, int) {
	if len(q) == 0 {
		return 0, 0
	}
	c := Compile(q)
	iv := db.Interned()
	e := c.encs.Get(iv, func() *encoding { return c.encode(iv) })
	return e.nVars, len(e.clauseEnd)
}

// encoding is the instance-bound CNF for one (query, interned snapshot)
// pair: the clause arena, the dense variable layout, and the lazily
// built incremental solver. The arena and layout are immutable after
// encode; solver access is serialized by mu (the solver is stateful
// across SolveAssuming calls).
type encoding struct {
	iv *instance.Interned
	k  int

	// Variable layout. Selector variables come first, one per fact,
	// assigned densely in (relation id, block key) order:
	// x(global block gb, value index vi) = selOff[gb] + vi + 1, with
	// relBlockStart mapping a relation id to its first global block.
	// Then the z ladder at a fixed stride: z(c, i) = zBase + c·k + i + 1.
	// Tseitin and at-most-one ladder auxiliaries follow.
	relBlockStart []int32
	selOff        []int32
	zBase         int32
	nVars         int

	// rids[i] is the interned relation id of q[i] (-1 when absent).
	rids []int32

	// The clause arena: clause j is arena[clauseEnd[j-1]:clauseEnd[j]].
	arena     []int32
	clauseEnd []int32

	// roots are the assumption literals ¬z[c,0], one per block of q[0]'s
	// relation: the "no constant starts a q-trace path" constraints kept
	// out of the clause database so the same CNF could be re-solved
	// under other assumption sets.
	roots []int

	// bytes prices the encoding for the memo budget: the arena and
	// layout, times a factor for the solver's own copy of every clause
	// plus its watch lists.
	bytes int64

	mu                          sync.Mutex
	solver                      *sat.Solver
	prevDec, prevProp, prevConf uint64
}

// encode builds the CNF for iv from the compiled skeleton.
func (c *Compiled) encode(iv *instance.Interned) *encoding {
	k := c.k
	nc := iv.NumConsts()
	nr := iv.NumRels()
	e := &encoding{iv: iv, k: k}

	// Selector layout: enumerate blocks relation-major in interned
	// order; prefix sums over block sizes give each fact its variable.
	nblocks := 0
	e.relBlockStart = make([]int32, nr+1)
	for r := 0; r < nr; r++ {
		e.relBlockStart[r] = int32(nblocks)
		nblocks += len(iv.RelBlocks(int32(r)))
	}
	e.relBlockStart[nr] = int32(nblocks)
	e.selOff = make([]int32, nblocks+1)
	var off int32
	gb := 0
	for r := 0; r < nr; r++ {
		for _, bl := range iv.RelBlocks(int32(r)) {
			e.selOff[gb] = off
			off += int32(len(bl.Vals))
			gb++
		}
	}
	e.selOff[nblocks] = off
	e.zBase = off
	nVars := int(off) + nc*k // selectors + the full z ladder

	// Intern each distinct relation of q once (the skeleton knows which
	// positions share it) and precompute, per relation, the set of key
	// constants owning a nonempty block — the liveness test for z[d,i]:
	// a position whose block is empty can never start the suffix, so
	// the ladder skips it (the variable stays free and unreferenced).
	e.rids = make([]int32, k)
	keys := make([]bitset.Bits, nr)
	for j, rel := range c.rels {
		rid, ok := iv.RelID(rel)
		if !ok {
			rid = -1
		}
		for _, i := range c.posOf[j] {
			e.rids[i] = rid
		}
		if rid >= 0 && keys[rid] == nil {
			b := bitset.New(nc)
			for _, bl := range iv.RelBlocks(rid) {
				b.Set(int(bl.Key))
			}
			keys[rid] = b
		}
	}

	end := func() { e.clauseEnd = append(e.clauseEnd, int32(len(e.arena))) }

	// Exactly-one selector per block.
	gb = 0
	for r := 0; r < nr; r++ {
		for _, bl := range iv.RelBlocks(int32(r)) {
			base := e.selOff[gb] + 1 // variable of bl.Vals[0]
			m := len(bl.Vals)
			for vi := 0; vi < m; vi++ {
				e.arena = append(e.arena, base+int32(vi))
			}
			end() // at least one
			if m <= amoPairwiseMax {
				for a := 0; a < m; a++ {
					for b := a + 1; b < m; b++ {
						e.arena = append(e.arena, -(base + int32(a)), -(base + int32(b)))
						end()
					}
				}
			} else {
				// Sequential ladder: s_i ("some of the first i selectors
				// is true") for i = 1..m-1, linear in m.
				s := int32(nVars) // s(i) = s + i, for i in 1..m-1
				nVars += m - 1
				for i := 1; i < m; i++ {
					e.arena = append(e.arena, -(base + int32(i-1)), s+int32(i))
					end() // x_i → s_i
				}
				for i := 2; i < m; i++ {
					e.arena = append(e.arena, -(s + int32(i-1)), s+int32(i))
					end() // s_{i-1} → s_i
				}
				for i := 2; i <= m; i++ {
					e.arena = append(e.arena, -(base + int32(i-1)), -(s + int32(i-1)))
					end() // x_i → ¬s_{i-1}
				}
			}
			gb++
		}
	}

	// The z-chain ladders, from the last position backwards.
	zvar := func(cst int32, i int) int32 { return e.zBase + cst*int32(k) + int32(i) + 1 }
	var disj []int32
	for i := k - 1; i >= 0; i-- {
		rid := e.rids[i]
		if rid < 0 {
			continue
		}
		var nextKeys bitset.Bits
		if i+1 < k && e.rids[i+1] >= 0 {
			nextKeys = keys[e.rids[i+1]]
		}
		gbBase := e.relBlockStart[rid]
		for bi, bl := range iv.RelBlocks(rid) {
			z := zvar(bl.Key, i)
			selBase := e.selOff[gbBase+int32(bi)] + 1
			disj = disj[:0]
			for vi, d := range bl.Vals {
				x := selBase + int32(vi)
				if i+1 == k {
					// The suffix after the last position is ε: true.
					e.arena = append(e.arena, -x, z)
					end() // x_f → z
					disj = append(disj, x)
					continue
				}
				if nextKeys == nil || !nextKeys.Test(int(d)) {
					continue // successor can never start the suffix
				}
				zn := zvar(d, i+1)
				nVars++
				a := int32(nVars) // a ↔ x_f ∧ z[d,i+1]
				e.arena = append(e.arena, -a, x)
				end()
				e.arena = append(e.arena, -a, zn)
				end()
				e.arena = append(e.arena, -x, -zn, a)
				end()
				e.arena = append(e.arena, -a, z)
				end()
				disj = append(disj, a)
			}
			// z → ⋁ disj.
			e.arena = append(e.arena, -z)
			e.arena = append(e.arena, disj...)
			end()
		}
	}

	// Assume ¬z[c,0] for every constant that could start a path.
	if e.rids[0] >= 0 {
		for _, bl := range iv.RelBlocks(e.rids[0]) {
			e.roots = append(e.roots, -int(zvar(bl.Key, 0)))
		}
	}

	e.nVars = nVars
	base := int64(len(e.arena)+len(e.clauseEnd)+len(e.selOff)+len(e.relBlockStart)+len(e.rids)) * 4
	e.bytes = base * 5 // ×5: the solver holds its own clause copies plus watch lists
	return e
}

// buildSolver (re)loads the arena into a fresh incremental solver.
// Caller holds e.mu.
func (e *encoding) buildSolver() {
	s := sat.NewSolver(e.nVars)
	var lits []int
	var start int32
	for _, ce := range e.clauseEnd {
		lits = lits[:0]
		for _, l := range e.arena[start:ce] {
			lits = append(lits, int(l))
		}
		s.AddClauseFrom(lits)
		start = ce
	}
	e.solver = s
	e.prevDec, e.prevProp, e.prevConf = 0, 0, 0
}

// decodeSel reads the chosen value id of every block out of the model.
// Caller holds e.mu (the model lives in the shared solver).
func (e *encoding) decodeSel() []int32 {
	m := e.solver.Model()
	iv := e.iv
	sel := make([]int32, len(e.selOff)-1)
	gb := 0
	for r := 0; r < iv.NumRels(); r++ {
		for _, bl := range iv.RelBlocks(int32(r)) {
			base := e.selOff[gb] + 1
			sel[gb] = bl.Vals[0]
			for vi := range bl.Vals {
				if m[base+int32(vi)] {
					sel[gb] = bl.Vals[vi]
					break
				}
			}
			gb++
		}
	}
	return sel
}
