// Package conp implements the generic coNP solver tier for CERTAINTY(q):
// a polynomial-size SAT encoding of the complement question "is there a
// repair of db that falsifies q", solved with the incremental CDCL
// solver of internal/sat. It is correct for EVERY path query q
// (CERTAINTY(q) is in coNP, Section 2 of the paper) and is the
// executable counterpart of the SAT-based CQA systems discussed in
// Section 9 (e.g. CAvSAT).
//
// Encoding. One selector variable x_f per fact f, with exactly-one
// constraints per block (a repair picks one fact per block; blocks
// larger than a small threshold use a sequential "ladder" at-most-one,
// so the clause count stays linear in the block size instead of
// quadratic). One reachability variable z[c,i] per constant c and query
// position i, defined by Tseitin equivalences
//
//	z[c,i] ↔ ⋁_{f = q[i](c,d) ∈ db} ( x_f ∧ z[d,i+1] ),  z[·,k] = true,
//
// so that under any repair assignment, z[c,0] holds iff the repair has a
// path with trace q starting at c. Assuming ¬z[c,0] for every constant
// makes the formula satisfiable iff some repair falsifies q. The
// encoding is acyclic in i, hence linear in |db|·|q|.
//
// Compilation and interning. Compile captures the query-side clause
// skeleton — the positions, the relation at each position, the shape of
// the z-chain ladder — once per query; the instance-bound CNF is then
// built on instance.Interned with every variable id computed by
// arithmetic on dense interned ids (selectors from block offsets,
// z[c,i] at constID·k+i) instead of hashed string keys, and the clause
// literals live in one flat arena. The built encoding (CNF arena,
// selector layout, and the lazily constructed solver with everything it
// learns) is memoized per interned snapshot through an entry- and
// byte-bounded internal/memo.LRU, so a warm re-decision on an unchanged
// instance re-runs only the solver — under the same assumptions, warmed
// by saved phases and learned clauses — and a mutation invalidates by
// publishing a fresh snapshot pointer. Counterexample repairs are
// decoded to interned fact ids at solve time and materialized to a
// string-keyed *instance.Instance only on demand.
//
// Lineage repair. When a snapshot is a structural delta of a resident
// ancestor (instance.Delta), the memo miss is served by patching the
// ancestor's CNF in place instead of re-encoding: removed facts become
// root-level unit clauses over their selectors (literally equivalent to
// the cold-built child, so the learned-clause database survives), and
// added facts get fresh selector and Tseitin variables spliced into the
// live solver while the block's at-least-one and completion clauses are
// weakened in place into their exact cold-built replacements (which
// invalidates learned clauses — the patcher purges them, keeping saved
// phases and variable activities). The ancestor's solver moves to the
// patched encoding; structural shifts the patch cannot express — block
// creation or emptying, selectors the solver has root-fixed, an
// exhausted patch budget — fall back to a cold build. See patch for the
// soundness argument.
package conp

import (
	"context"
	"slices"
	"sort"
	"sync"

	"cqa/internal/bitset"
	"cqa/internal/instance"
	"cqa/internal/memo"
	"cqa/internal/sat"
	"cqa/internal/words"
)

const (
	// maxEncodings / maxEncodingBytes bound the per-query encoding memo:
	// a CNF is O(|db|·|q|) literals, so the byte budget sheds snapshots
	// of huge instances long before the entry bound would.
	maxEncodings     = 16
	maxEncodingBytes = 64 << 20

	// amoPairwiseMax is the largest block encoded with the quadratic
	// pairwise at-most-one; above it the sequential ladder (3m-4 clauses,
	// m-1 auxiliary variables) takes over. At m=5 the pairwise count (10)
	// is level with the ladder's (11) without its extra variables.
	amoPairwiseMax = 5

	// maxLearnedFactor bounds the learned clauses a memoized solver may
	// accumulate across re-decisions, as a multiple of its problem
	// clauses; beyond it the solver is rebuilt from the arena (dropping
	// the learned database) rather than dragging it through every call.
	maxLearnedFactor = 2

	// maxPatchedBlocks bounds the blocks patched cumulatively along one
	// snapshot lineage before the next repair falls back to a cold
	// rebuild, so the weakened-clause and dead-variable residue a chain
	// of patches leaves in the solver cannot grow without bound.
	maxPatchedBlocks = 512
)

// Result reports the outcome of the SAT-based certainty check.
type Result struct {
	Certain bool
	// Vars and Clauses describe the size of the CNF encoding (problem
	// clauses; learned clauses are not counted).
	Vars    int
	Clauses int
	// Decisions, Propagations, Conflicts are solver statistics for this
	// decision (deltas, even when the underlying solver is shared by
	// many warm calls).
	Decisions    uint64
	Propagations uint64
	Conflicts    uint64

	// The counterexample is decoded to interned ids (one chosen value
	// per block) at solve time and materialized on demand.
	iv      *instance.Interned
	sel     []int32
	cexOnce sync.Once
	cex     *instance.Instance
}

// Counterexample returns a repair of db falsifying q when Certain is
// false, and nil otherwise. The repair is materialized to a
// string-keyed instance on first call and memoized; callers that only
// need the decision never pay for the materialization.
func (r *Result) Counterexample() *instance.Instance {
	if r.Certain || r.iv == nil {
		return nil
	}
	r.cexOnce.Do(func() {
		iv := r.iv
		db := instance.New()
		gb := 0
		for rid := 0; rid < iv.NumRels(); rid++ {
			rel := iv.Rel(int32(rid))
			for _, bl := range iv.RelBlocks(int32(rid)) {
				db.AddFact(rel, iv.Const(bl.Key), iv.Const(r.sel[gb]))
				gb++
			}
		}
		r.cex = db
	})
	return r.cex
}

// Compiled is the query-side half of the SAT tier for one path query:
// the clause skeleton (length, per-position relation, and the grouping
// of positions by relation name that the encoder uses to intern each
// distinct relation once), plus the per-snapshot encoding memo. A
// Compiled is immutable after Compile and safe for concurrent use; the
// per-encoding solver state is serialized internally.
type Compiled struct {
	q words.Word
	k int
	// rels / posOf: the distinct relation names of q and the positions
	// where each occurs — the skeleton's "which z-ladders share a
	// relation" structure.
	rels  []string
	posOf [][]int32

	encs *memo.LRU[*instance.Interned, *encoding]
}

// Compile captures the clause skeleton of q for the SAT tier.
func Compile(q words.Word) *Compiled {
	c := &Compiled{q: q.Clone(), k: len(q)}
	idx := make(map[string]int, c.k)
	for i, rel := range c.q {
		j, ok := idx[rel]
		if !ok {
			j = len(c.rels)
			idx[rel] = j
			c.rels = append(c.rels, rel)
			c.posOf = append(c.posOf, nil)
		}
		c.posOf[j] = append(c.posOf[j], int32(i))
	}
	if c.k > 0 {
		c.encs = memo.NewLRUWithBudget[*instance.Interned, *encoding](
			maxEncodings, maxEncodingBytes, func(e *encoding) int64 { return e.bytes })
	}
	return c
}

// Query returns the compiled query word.
func (c *Compiled) Query() words.Word { return c.q.Clone() }

// EncodingStats returns the hit/miss counters of the per-snapshot CNF
// memo: Misses is the number of encodings built, Hits the number of
// decisions served by an incremental re-solve of a resident encoding.
func (c *Compiled) EncodingStats() memo.Stats {
	if c.encs == nil {
		return memo.Stats{}
	}
	return c.encs.Stats()
}

// SetMemoScale sets the encoding memo's byte budget to scale × the
// compile-time default (the soft-memory-watermark hook); scale >= 1
// restores the default. A CNF encoding is the largest per-snapshot
// artifact in the system, so under heap pressure this memo is the one
// that matters most to shrink.
func (c *Compiled) SetMemoScale(scale float64) {
	if c.encs != nil {
		c.encs.SetBudget(memo.ScaledBudget(maxEncodingBytes, scale))
	}
}

// IsCertain decides CERTAINTY(q) on db, reusing the memoized encoding
// (and its incremental solver) when db's interned snapshot is unchanged
// since a previous decision.
func (c *Compiled) IsCertain(db *instance.Instance) *Result {
	return c.IsCertainInterned(db.Interned())
}

// IsCertainCtx is IsCertain bounded by a context: the underlying SAT
// search polls ctx and the call returns ctx.Err() (with a nil Result)
// if it is canceled mid-solve. The memoized encoding and its solver
// survive a cancellation; a retry resumes from everything learned so
// far.
func (c *Compiled) IsCertainCtx(ctx context.Context, db *instance.Instance) (*Result, error) {
	return c.IsCertainInternedCtx(ctx, db.Interned())
}

// IsCertainInterned is IsCertain on an interned snapshot directly. On a
// memo miss it first tries a lineage repair: if an ancestor snapshot's
// encoding is still resident, its solver — phases, activities, and when
// sound its learned clauses — is patched in place to the new snapshot
// instead of encoding and searching from scratch.
func (c *Compiled) IsCertainInterned(iv *instance.Interned) *Result {
	res, err := c.IsCertainInternedCtx(context.Background(), iv)
	if err != nil {
		// A background context never cancels.
		panic("conp: internal: " + err.Error())
	}
	return res
}

// IsCertainInternedCtx is IsCertainInterned bounded by a context; see
// IsCertainCtx for the cancellation contract.
func (c *Compiled) IsCertainInternedCtx(ctx context.Context, iv *instance.Interned) (*Result, error) {
	if c.k == 0 {
		return &Result{Certain: true}, nil
	}
	e := c.encs.GetOrRepair(iv,
		func(peek func(*instance.Interned) (*encoding, bool)) (*encoding, int, bool) {
			var found *encoding
			parent, touched, ok := instance.Lineage(iv, func(a *instance.Interned) bool {
				pe, res := peek(a)
				if res {
					found = pe
				}
				return res
			})
			if !ok {
				return nil, 0, false
			}
			child := c.patch(found, iv, touched)
			if child == nil {
				return nil, 0, false
			}
			return child, iv.LineageDepth() - parent.LineageDepth(), true
		},
		func() *encoding { return c.encode(iv) })

	e.mu.Lock()
	defer e.mu.Unlock()
	e.ensureSolver(c)
	res := &Result{Vars: e.nVars, Clauses: e.solver.NumClauses()}
	status := e.solver.SolveAssumingCtx(ctx, e.roots...)
	d, p, cf := e.solver.Stats()
	res.Decisions, res.Propagations, res.Conflicts = d-e.prevDec, p-e.prevProp, cf-e.prevConf
	e.prevDec, e.prevProp, e.prevConf = d, p, cf
	switch status {
	case sat.Sat:
		res.iv = iv
		res.sel = e.decodeSel()
	case sat.Unsat:
		res.Certain = true
	case sat.Canceled:
		return nil, ctx.Err()
	default:
		panic("conp: solver returned UNKNOWN without a conflict budget")
	}
	return res, nil
}

// IsCertain decides CERTAINTY(q) on db via SAT. It works for every path
// query q. It compiles q per call; serving paths hold a Compiled (the
// plan layer does) and let its snapshot memo absorb repeated decisions.
func IsCertain(db *instance.Instance, q words.Word) *Result {
	return Compile(q).IsCertain(db)
}

// EncodingSize returns the CNF size (vars, clauses) of the encoding for
// db and q without solving; used by tests and benchmarks.
func EncodingSize(db *instance.Instance, q words.Word) (int, int) {
	if len(q) == 0 {
		return 0, 0
	}
	c := Compile(q)
	iv := db.Interned()
	e := c.encs.Get(iv, func() *encoding { return c.encode(iv) })
	return e.nVars, len(e.clauseEnd)
}

// encoding is the instance-bound CNF for one (query, interned snapshot)
// pair: the clause arena, the dense variable layout, and the lazily
// built incremental solver. The arena and layout are immutable after
// encode; solver access is serialized by mu (the solver is stateful
// across SolveAssuming calls).
type encoding struct {
	iv *instance.Interned
	k  int

	// Variable layout. Selector variables come first, one per fact,
	// assigned densely in (relation id, block key) order:
	// x(global block gb, value index vi) = selOff[gb] + vi + 1, with
	// relBlockStart mapping a relation id to its first global block.
	// Then the z ladder at a fixed stride: z(c, i) = zBase + c·k + i + 1.
	// Tseitin and at-most-one ladder auxiliaries follow.
	relBlockStart []int32
	selOff        []int32
	zBase         int32
	nVars         int

	// rids[i] is the interned relation id of q[i] (-1 when absent).
	rids []int32

	// The clause arena: clause j is arena[clauseEnd[j-1]:clauseEnd[j]].
	arena     []int32
	clauseEnd []int32

	// roots are the assumption literals ¬z[c,0], one per block of q[0]'s
	// relation: the "no constant starts a q-trace path" constraints kept
	// out of the clause database so the same CNF could be re-solved
	// under other assumption sets.
	roots []int

	// bytes prices the encoding for the memo budget: the arena and
	// layout, times a factor for the solver's own copy of every clause
	// plus its watch lists.
	bytes int64

	// Lineage-patch state. A patched encoding shares the variable layout
	// of layoutIV (the arena-built ancestor the lineage started from)
	// and carries per-block overrides in blockVars: the current values
	// of every patched block and their selector variables, which may
	// live in the extension region above the ancestor's variable count.
	// aloIdx and compIdx locate each block's at-least-one clause and
	// each (position, key)'s completion clause in the solver's problem
	// database; they are built once from the arena at the first patch
	// and shared down the lineage (patches only append clauses and
	// weaken existing ones in place, so the indices stay valid).
	// patched counts blocks patched over the whole lineage, against
	// maxPatchedBlocks. A patched encoding has a nil arena: if its
	// solver is stolen by a further patch or outgrows the learned
	// budget, ensureSolver re-encodes from the snapshot instead of
	// replaying an arena.
	layoutIV  *instance.Interned
	blockVars map[int64]blockPatch
	aloIdx    map[int64]int32
	compIdx   map[int64]int32
	patched   int

	mu                          sync.Mutex
	solver                      *sat.Solver
	prevDec, prevProp, prevConf uint64
}

// blockPatch is the current state of one patched block: parallel value
// and selector-variable slices, in no particular order.
type blockPatch struct {
	vals []int32
	vars []int32
}

// blockKey64 packs a (relation id, block key) pair into one map key.
func blockKey64(rid, key int32) int64 { return int64(rid)<<32 | int64(uint32(key)) }

// zvar returns the reachability variable z[c, i] in e's layout.
func (e *encoding) zvar(cst int32, i int) int {
	return int(e.zBase) + int(cst)*e.k + i + 1
}

// findBlock locates relation rid's block keyed by key in iv; blocks are
// stored sorted by interned key id.
func findBlock(iv *instance.Interned, rid, key int32) (instance.InternedBlock, bool) {
	bls := iv.RelBlocks(rid)
	j := sort.Search(len(bls), func(i int) bool { return bls[i].Key >= key })
	if j < len(bls) && bls[j].Key == key {
		return bls[j], true
	}
	return instance.InternedBlock{}, false
}

// encode builds the CNF for iv from the compiled skeleton.
func (c *Compiled) encode(iv *instance.Interned) *encoding {
	k := c.k
	nc := iv.NumConsts()
	nr := iv.NumRels()
	e := &encoding{iv: iv, k: k, layoutIV: iv}

	// Selector layout: enumerate blocks relation-major in interned
	// order; prefix sums over block sizes give each fact its variable.
	nblocks := 0
	e.relBlockStart = make([]int32, nr+1)
	for r := 0; r < nr; r++ {
		e.relBlockStart[r] = int32(nblocks)
		nblocks += len(iv.RelBlocks(int32(r)))
	}
	e.relBlockStart[nr] = int32(nblocks)
	e.selOff = make([]int32, nblocks+1)
	var off int32
	gb := 0
	for r := 0; r < nr; r++ {
		for _, bl := range iv.RelBlocks(int32(r)) {
			e.selOff[gb] = off
			off += int32(len(bl.Vals))
			gb++
		}
	}
	e.selOff[nblocks] = off
	e.zBase = off
	nVars := int(off) + nc*k // selectors + the full z ladder

	// Intern each distinct relation of q once (the skeleton knows which
	// positions share it) and precompute, per relation, the set of key
	// constants owning a nonempty block — the liveness test for z[d,i]:
	// a position whose block is empty can never start the suffix, so
	// the ladder skips it (the variable stays free and unreferenced).
	e.rids = make([]int32, k)
	keys := make([]bitset.Bits, nr)
	for j, rel := range c.rels {
		rid, ok := iv.RelID(rel)
		if !ok {
			rid = -1
		}
		for _, i := range c.posOf[j] {
			e.rids[i] = rid
		}
		if rid >= 0 && keys[rid] == nil {
			b := bitset.New(nc)
			for _, bl := range iv.RelBlocks(rid) {
				b.Set(int(bl.Key))
			}
			keys[rid] = b
		}
	}

	end := func() { e.clauseEnd = append(e.clauseEnd, int32(len(e.arena))) }

	// Exactly-one selector per block.
	gb = 0
	for r := 0; r < nr; r++ {
		for _, bl := range iv.RelBlocks(int32(r)) {
			base := e.selOff[gb] + 1 // variable of bl.Vals[0]
			m := len(bl.Vals)
			for vi := 0; vi < m; vi++ {
				e.arena = append(e.arena, base+int32(vi))
			}
			end() // at least one
			if m <= amoPairwiseMax {
				for a := 0; a < m; a++ {
					for b := a + 1; b < m; b++ {
						e.arena = append(e.arena, -(base + int32(a)), -(base + int32(b)))
						end()
					}
				}
			} else {
				// Sequential ladder: s_i ("some of the first i selectors
				// is true") for i = 1..m-1, linear in m.
				s := int32(nVars) // s(i) = s + i, for i in 1..m-1
				nVars += m - 1
				for i := 1; i < m; i++ {
					e.arena = append(e.arena, -(base + int32(i-1)), s+int32(i))
					end() // x_i → s_i
				}
				for i := 2; i < m; i++ {
					e.arena = append(e.arena, -(s + int32(i-1)), s+int32(i))
					end() // s_{i-1} → s_i
				}
				for i := 2; i <= m; i++ {
					e.arena = append(e.arena, -(base + int32(i-1)), -(s + int32(i-1)))
					end() // x_i → ¬s_{i-1}
				}
			}
			gb++
		}
	}

	// The z-chain ladders, from the last position backwards.
	zvar := func(cst int32, i int) int32 { return e.zBase + cst*int32(k) + int32(i) + 1 }
	var disj []int32
	for i := k - 1; i >= 0; i-- {
		rid := e.rids[i]
		if rid < 0 {
			continue
		}
		var nextKeys bitset.Bits
		if i+1 < k && e.rids[i+1] >= 0 {
			nextKeys = keys[e.rids[i+1]]
		}
		gbBase := e.relBlockStart[rid]
		for bi, bl := range iv.RelBlocks(rid) {
			z := zvar(bl.Key, i)
			selBase := e.selOff[gbBase+int32(bi)] + 1
			disj = disj[:0]
			for vi, d := range bl.Vals {
				x := selBase + int32(vi)
				if i+1 == k {
					// The suffix after the last position is ε: true.
					e.arena = append(e.arena, -x, z)
					end() // x_f → z
					disj = append(disj, x)
					continue
				}
				if nextKeys == nil || !nextKeys.Test(int(d)) {
					continue // successor can never start the suffix
				}
				zn := zvar(d, i+1)
				nVars++
				a := int32(nVars) // a ↔ x_f ∧ z[d,i+1]
				e.arena = append(e.arena, -a, x)
				end()
				e.arena = append(e.arena, -a, zn)
				end()
				e.arena = append(e.arena, -x, -zn, a)
				end()
				e.arena = append(e.arena, -a, z)
				end()
				disj = append(disj, a)
			}
			// z → ⋁ disj.
			e.arena = append(e.arena, -z)
			e.arena = append(e.arena, disj...)
			end()
		}
	}

	// Assume ¬z[c,0] for every constant that could start a path.
	if e.rids[0] >= 0 {
		for _, bl := range iv.RelBlocks(e.rids[0]) {
			e.roots = append(e.roots, -int(zvar(bl.Key, 0)))
		}
	}

	e.nVars = nVars
	base := int64(len(e.arena)+len(e.clauseEnd)+len(e.selOff)+len(e.relBlockStart)+len(e.rids)) * 4
	e.bytes = base * 5 // ×5: the solver holds its own clause copies plus watch lists
	return e
}

// buildSolver (re)loads the arena into a fresh incremental solver.
// Caller holds e.mu.
func (e *encoding) buildSolver() {
	s := sat.NewSolver(e.nVars)
	var lits []int
	var start int32
	for _, ce := range e.clauseEnd {
		lits = lits[:0]
		for _, l := range e.arena[start:ce] {
			lits = append(lits, int(l))
		}
		s.AddClauseFrom(lits)
		start = ce
	}
	e.solver = s
	e.prevDec, e.prevProp, e.prevConf = 0, 0, 0
}

// ensureSolver makes e.solver usable: absent (never built, or stolen by
// a lineage child) or dragging too large a learned database, it is
// rebuilt. Patched encodings have no arena, so their rebuild re-encodes
// from the snapshot and resets the patch state to a fresh lineage root.
// Caller holds e.mu.
func (e *encoding) ensureSolver(c *Compiled) {
	if e.solver != nil && e.solver.NumLearned() <= maxLearnedFactor*len(e.clauseEnd)+1024 {
		return
	}
	if e.arena == nil {
		f := c.encode(e.iv)
		e.relBlockStart, e.selOff, e.zBase, e.nVars = f.relBlockStart, f.selOff, f.zBase, f.nVars
		e.rids, e.arena, e.clauseEnd, e.roots = f.rids, f.arena, f.clauseEnd, f.roots
		e.layoutIV, e.blockVars, e.aloIdx, e.compIdx, e.patched = e.iv, nil, nil, nil, 0
	}
	e.buildSolver()
}

// curBlockVars returns the current values of block (rid, key) and their
// selector variables, preferring a lineage-patch override and falling
// back to the arena layout of layoutIV.
func (e *encoding) curBlockVars(rid, key int32) ([]int32, []int32, bool) {
	if bp, ok := e.blockVars[blockKey64(rid, key)]; ok {
		return bp.vals, bp.vars, true
	}
	bls := e.layoutIV.RelBlocks(rid)
	j := sort.Search(len(bls), func(i int) bool { return bls[i].Key >= key })
	if j >= len(bls) || bls[j].Key != key {
		return nil, nil, false
	}
	base := e.selOff[int(e.relBlockStart[rid])+j] + 1
	vals := bls[j].Vals
	vars := make([]int32, len(vals))
	for i := range vars {
		vars[i] = base + int32(i)
	}
	return vals, vars, true
}

// buildPatchIndex scans the arena once and records every block's
// at-least-one clause index and every (position, key) completion clause
// index. The scan classifies by first literal: only at-least-one
// clauses open with a positive selector literal (every other clause
// shape the encoder emits opens with a negation), and only completions
// open with a negated z literal. Caller holds e.mu; e.arena non-nil.
func (e *encoding) buildPatchIndex() {
	liv := e.layoutIV
	firstVar := make(map[int32]int64)
	gb := 0
	for r := 0; r < liv.NumRels(); r++ {
		for _, bl := range liv.RelBlocks(int32(r)) {
			firstVar[e.selOff[gb]+1] = blockKey64(int32(r), bl.Key)
			gb++
		}
	}
	e.aloIdx = make(map[int64]int32, gb)
	e.compIdx = make(map[int64]int32)
	zMax := e.zBase + int32(liv.NumConsts()*e.k)
	var start int32
	for ci, ce := range e.clauseEnd {
		l0 := e.arena[start]
		start = ce
		switch {
		case l0 > 0 && l0 <= e.zBase:
			e.aloIdx[firstVar[l0]] = int32(ci)
		case l0 < 0 && -l0 > e.zBase && -l0 <= zMax:
			off := int(-l0-e.zBase) - 1
			e.compIdx[int64(off%e.k)<<32|int64(uint32(int32(off/e.k)))] = int32(ci)
		}
	}
}

// patch derives the encoding for iv from a resident parent encoding by
// mutating the parent's solver in place. Fact removals become root unit
// clauses over the old selectors — conjoined with the block's original
// constraints they are literally equivalent to the cold-built child
// clauses, so even the learned database stays sound and is kept. Fact
// additions extend the solver with fresh selector (and Tseitin)
// variables, add the new at-most-one and definition clauses, and weaken
// the block's at-least-one and completion clauses in place into their
// exact cold-built replacements; weakening invalidates learned clauses,
// so those patches purge the learned database first (phases and
// activities survive). The parent's solver moves to the child;
// re-deciding the parent later rebuilds it from the parent's arena.
//
// patch returns nil when repairing would be unsound or unprofitable and
// the caller must encode cold: the parent has no live solver (already
// stolen, or derived root unsatisfiability), a touched block was
// created or emptied (the z-liveness structure of the encoding would
// shift), or the lineage exhausted its patch budget. Root-level
// assignments never force a bail: removals only strengthen the formula
// (a root conflict with an existing assignment correctly proves the
// child unsatisfiable), and before any weakening the patch retracts
// every root assignment that could depend on a clause about to be
// weakened (RetractDepending), so the surviving trail holds of the
// weaker formula too.
func (c *Compiled) patch(pe *encoding, iv *instance.Interned, touched []instance.BlockRef) *encoding {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	s := pe.solver
	if s == nil || s.RootUnsat() {
		return nil
	}
	if pe.patched+len(touched) > maxPatchedBlocks {
		return nil
	}

	// Plan every edit before mutating anything: a feasibility failure on
	// the last touched block must leave the parent solver untouched.
	type blockEdit struct {
		key64      int64
		rid, key   int32
		vals, vars []int32 // surviving values and their variables
		added      []int32 // value ids to splice in
		removedVar []int32 // variables of removed values
	}
	edits := make([]blockEdit, 0, len(touched))
	needPurge := false
	for _, ref := range touched {
		bl, ok := findBlock(iv, ref.Rel, ref.Key)
		if !ok {
			return nil // block emptied
		}
		vals, vars, ok := pe.curBlockVars(ref.Rel, ref.Key)
		if !ok {
			return nil // block created
		}
		ed := blockEdit{key64: blockKey64(ref.Rel, ref.Key), rid: ref.Rel, key: ref.Key}
		for j, v := range vals {
			if slices.Contains(bl.Vals, v) {
				ed.vals = append(ed.vals, v)
				ed.vars = append(ed.vars, vars[j])
			} else {
				ed.removedVar = append(ed.removedVar, vars[j])
			}
		}
		for _, v := range bl.Vals {
			if !slices.Contains(vals, v) {
				ed.added = append(ed.added, v)
			}
		}
		if len(ed.added) == 0 && len(ed.removedVar) == 0 {
			continue // touched but content-identical (e.g. add then remove)
		}
		if len(ed.added) > 0 {
			needPurge = true
		}
		edits = append(edits, ed)
	}

	if len(edits) > 0 && pe.aloIdx == nil {
		pe.buildPatchIndex()
	}
	if needPurge {
		// Additions weaken clauses in place, so first drop everything
		// derived through the strong formula: the learned database, and
		// every root assignment depending on a clause about to be
		// weakened — each extended block's at-least-one clause and its
		// key's completion clauses at every matching query position.
		var weak []int
		for _, ed := range edits {
			if len(ed.added) == 0 {
				continue
			}
			weak = append(weak, int(pe.aloIdx[ed.key64]))
			for i, rid := range pe.rids {
				if rid != ed.rid {
					continue
				}
				if idx, ok := pe.compIdx[int64(i)<<32|int64(uint32(ed.key))]; ok {
					weak = append(weak, int(idx))
				}
			}
		}
		s.PurgeLearnts()
		s.RetractDepending(weak)
	}
	d0, p0, cf0 := s.Stats()
	child := &encoding{
		iv:            iv,
		k:             pe.k,
		relBlockStart: pe.relBlockStart,
		selOff:        pe.selOff,
		zBase:         pe.zBase,
		nVars:         pe.nVars,
		rids:          pe.rids,
		clauseEnd:     pe.clauseEnd,
		roots:         pe.roots,
		bytes:         pe.bytes + 512*int64(len(edits)+1),
		layoutIV:      pe.layoutIV,
		aloIdx:        pe.aloIdx,
		compIdx:       pe.compIdx,
		patched:       pe.patched + len(edits),
		solver:        s,
		prevDec:       d0,
		prevProp:      p0,
		prevConf:      cf0,
	}
	child.blockVars = make(map[int64]blockPatch, len(pe.blockVars)+len(edits))
	for k64, bp := range pe.blockVars {
		child.blockVars[k64] = bp
	}

	for _, ed := range edits {
		for _, xv := range ed.removedVar {
			s.AddClauseFrom([]int{-int(xv)})
		}
		for _, d := range ed.added {
			nv := s.NumVars() + 1
			s.ExtendVars(nv)
			for _, w := range ed.vars {
				s.AddClauseFrom([]int{-int(w), -nv})
			}
			s.WeakenClause(int(child.aloIdx[ed.key64]), nv)
			for i, rid := range child.rids {
				if rid != ed.rid {
					continue
				}
				z := child.zvar(ed.key, i)
				comp := int(child.compIdx[int64(i)<<32|int64(uint32(ed.key))])
				if i+1 == child.k {
					s.AddClauseFrom([]int{-nv, z})
					s.WeakenClause(comp, nv)
					continue
				}
				if child.rids[i+1] < 0 {
					continue
				}
				if _, ok := findBlock(iv, child.rids[i+1], d); !ok {
					continue // successor can never start the suffix
				}
				zn := child.zvar(d, i+1)
				a := s.NumVars() + 1
				s.ExtendVars(a)
				s.AddClauseFrom([]int{-a, nv})
				s.AddClauseFrom([]int{-a, zn})
				s.AddClauseFrom([]int{-nv, -zn, a})
				s.AddClauseFrom([]int{-a, z})
				s.WeakenClause(comp, a)
			}
			ed.vals = append(ed.vals, d)
			ed.vars = append(ed.vars, int32(nv))
		}
		child.blockVars[ed.key64] = blockPatch{vals: ed.vals, vars: ed.vars}
	}
	child.nVars = s.NumVars()
	pe.solver = nil
	return child
}

// decodeSel reads the chosen value id of every block out of the model.
// Caller holds e.mu (the model lives in the shared solver). On a
// patched encoding, blocks with a lineage override read their spliced
// variables; everything else falls back to the arena layout (no block
// set ever shifts along a patchable lineage, so the layout lookup
// always resolves).
func (e *encoding) decodeSel() []int32 {
	m := e.solver.Model()
	iv := e.iv
	if e.blockVars == nil {
		sel := make([]int32, len(e.selOff)-1)
		gb := 0
		for r := 0; r < iv.NumRels(); r++ {
			for _, bl := range iv.RelBlocks(int32(r)) {
				base := e.selOff[gb] + 1
				sel[gb] = bl.Vals[0]
				for vi := range bl.Vals {
					if m[base+int32(vi)] {
						sel[gb] = bl.Vals[vi]
						break
					}
				}
				gb++
			}
		}
		return sel
	}
	var sel []int32
	for r := 0; r < iv.NumRels(); r++ {
		for _, bl := range iv.RelBlocks(int32(r)) {
			choice := bl.Vals[0]
			if vals, vars, ok := e.curBlockVars(int32(r), bl.Key); ok {
				for j, v := range vars {
					if m[v] {
						choice = vals[j]
						break
					}
				}
			}
			sel = append(sel, choice)
		}
	}
	return sel
}
