package conp

import (
	"testing"

	"cqa/internal/instance"
	"cqa/internal/words"
)

// conpChurnInstance has conflicting blocks in every relation over a
// fixed universe, so in-place mutations ride the delta-interning path
// and the encoding patcher sees both query and non-query relations.
func conpChurnInstance() *instance.Instance {
	db := instance.New()
	consts := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, rel := range []string{"A", "R", "X", "Y"} {
		for i, k := range consts {
			db.AddFact(rel, k, consts[(i+1)%len(consts)])
			if i%2 == 0 {
				db.AddFact(rel, k, consts[(i+3)%len(consts)])
			}
		}
	}
	return db
}

func TestPatchedEncodingMatchesColdChurn(t *testing.T) {
	q := words.MustParse("ARRX")
	cp := Compile(q)
	db := conpChurnInstance()
	cp.IsCertain(db) // cold build for the lineage root

	consts := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	rels := []string{"R", "A", "X", "Y"} // query rels and a non-query rel
	for step := 0; step < 80; step++ {
		rel := rels[step%len(rels)]
		k := consts[(step*3)%len(consts)]
		v := consts[(step*5+1)%len(consts)]
		f := instance.Fact{Rel: rel, Key: k, Val: v}
		if db.Contains(f) && len(db.Block(rel, k)) > 1 {
			db.Remove(f)
		} else {
			db.Add(f)
		}
		got := cp.IsCertain(db)
		want := Compile(q).IsCertain(db.Clone())
		if got.Certain != want.Certain {
			t.Fatalf("step %d (%v): patched = %v, cold = %v", step, f, got.Certain, want.Certain)
		}
		if !got.Certain {
			cex := got.Counterexample()
			if cex == nil || !cex.IsRepairOf(db) || cex.Satisfies(q) {
				t.Fatalf("step %d (%v): invalid counterexample from patched encoding", step, f)
			}
		}
	}
	if s := cp.EncodingStats(); s.Repairs == 0 {
		t.Errorf("stats = %+v, want repairs > 0 (mutations stay in-universe)", s)
	}
}

func TestPatchStealsSolverAndParentRebuilds(t *testing.T) {
	q := words.MustParse("ARRX")
	cp := Compile(q)
	// Y(u,t) keeps constant u in the active domain when X(c,u) goes, so
	// the removal stays inside the universe and delta-interns.
	db := instance.MustParseFacts("A(0,a) R(a,b) R(a,c) R(b,c) R(c,b) X(c,t) X(c,u) Y(u,t)")
	cold := cp.IsCertain(db)
	iv1 := db.Interned()

	// Removing X(c,u) keeps block X(c,*) nonempty: a removal-only patch.
	db.Remove(instance.Fact{Rel: "X", Key: "c", Val: "u"})
	res := cp.IsCertain(db)
	if s := cp.EncodingStats(); s.Repairs != 1 {
		t.Fatalf("stats = %+v, want exactly one repair", s)
	}
	if want := Compile(q).IsCertain(db.Clone()); res.Certain != want.Certain {
		t.Fatalf("patched decision = %v, cold = %v", res.Certain, want.Certain)
	}

	// The parent snapshot must still answer correctly after its solver
	// moved to the child (it rebuilds from its arena).
	again := cp.IsCertainInterned(iv1)
	if again.Certain != cold.Certain {
		t.Fatalf("parent re-decision = %v, want %v", again.Certain, cold.Certain)
	}
}

func TestPatchFallsBackColdOnBlockCreation(t *testing.T) {
	q := words.MustParse("ARRX")
	cp := Compile(q)
	db := conpChurnInstance()
	cp.IsCertain(db)

	// Emptying a block (and later re-creating it) shifts the encoding's
	// z-liveness structure, which the patcher refuses to repair; both
	// steps must fall back to a cold build and still answer correctly.
	for _, v := range append([]string(nil), db.Block("R", "a")...) {
		db.Remove(instance.Fact{Rel: "R", Key: "a", Val: v})
	}
	got := cp.IsCertain(db)
	want := Compile(q).IsCertain(db.Clone())
	if got.Certain != want.Certain {
		t.Fatalf("after emptying R(a,*): patched = %v, cold = %v", got.Certain, want.Certain)
	}

	// Re-creating the block is the creation fallback.
	db.AddFact("R", "a", "b")
	got = cp.IsCertain(db)
	want = Compile(q).IsCertain(db.Clone())
	if got.Certain != want.Certain {
		t.Fatalf("after re-creating R(a,*): patched = %v, cold = %v", got.Certain, want.Certain)
	}
}
