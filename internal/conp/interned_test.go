package conp

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cqa/internal/classify"
	"cqa/internal/fixpoint"
	"cqa/internal/instance"
	"cqa/internal/repairs"
	"cqa/internal/words"
)

func randomWord(rng *rand.Rand, alpha []string, n int) words.Word {
	w := make(words.Word, n)
	for i := range w {
		w[i] = alpha[rng.Intn(len(alpha))]
	}
	return w
}

func randomInstance(rng *rand.Rand, rels []string, nFacts, nConsts int) *instance.Instance {
	db := instance.New()
	for i := 0; i < nFacts; i++ {
		rel := rels[rng.Intn(len(rels))]
		key := fmt.Sprintf("c%d", rng.Intn(nConsts))
		val := fmt.Sprintf("c%d", rng.Intn(nConsts))
		db.AddFact(rel, key, val)
	}
	return db
}

// TestConpPropertyVsOracles cross-checks the interned SAT tier on
// random queries of every class: against the Figure 5 fixpoint solver
// (exact for C3 ⊇ C2 ⊇ C1) on non-coNP words over medium instances, and
// against exhaustive repair enumeration on small instances for coNP
// words. Each Compiled is reused across instances and re-asked per
// snapshot, so the encoding memo and the incremental warm path are
// exercised, not just the cold build.
func TestConpPropertyVsOracles(t *testing.T) {
	rng := rand.New(rand.NewSource(2406))
	alpha := []string{"R", "X", "Y"}
	cases := 0
	for cases < 220 {
		w := randomWord(rng, alpha, 2+rng.Intn(5))
		cp := Compile(w)
		if classify.Classify(w) == classify.CoNP {
			for k := 0; k < 3; k++ {
				db := randomInstance(rng, alpha, 1+rng.Intn(8), 4)
				got := cp.IsCertain(db)
				if want := repairs.IsCertain(db, w); got.Certain != want {
					t.Fatalf("q=%v db=%s: sat=%v exhaustive=%v", w, db, got.Certain, want)
				}
				warm := cp.IsCertain(db)
				if warm.Certain != got.Certain {
					t.Fatalf("q=%v db=%s: warm call flipped %v -> %v", w, db, got.Certain, warm.Certain)
				}
				if !warm.Certain {
					cex := warm.Counterexample()
					if cex == nil || !cex.IsRepairOf(db) || cex.Satisfies(w) {
						t.Fatalf("q=%v db=%s: invalid warm counterexample %v", w, db, cex)
					}
				}
				cases++
			}
		} else {
			oracle := fixpoint.Compile(w)
			for k := 0; k < 3; k++ {
				db := randomInstance(rng, alpha, 5+rng.Intn(26), 10)
				got := cp.IsCertain(db)
				if want := oracle.Solve(db).Certain; got.Certain != want {
					t.Fatalf("q=%v db=%s: sat=%v fixpoint=%v", w, db, got.Certain, want)
				}
				if warm := cp.IsCertain(db); warm.Certain != got.Certain {
					t.Fatalf("q=%v db=%s: warm call flipped", w, db)
				}
				cases++
			}
		}
	}
}

// TestConpMemoInvalidation: a mutation publishes a fresh interned
// snapshot, so the memoized CNF (and its solver) must be rebuilt and
// the decision must track the new instance state. Run with -race (CI
// does): the concurrent phases check that sharing one memoized encoding
// across goroutines — including its stateful incremental solver — is
// race-free. Mirrors the PR 3 NL evaluator invalidation test.
func TestConpMemoInvalidation(t *testing.T) {
	cp := Compile(words.MustParse("ARRX"))
	db := instance.MustParseFacts("A(0,a) R(a,b) R(a,c) R(b,c) R(c,b) X(c,t)")

	concurrent := func(want bool, phase string) {
		t.Helper()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					res := cp.IsCertain(db)
					if res.Certain != want {
						t.Errorf("%s: IsCertain = %v, want %v", phase, res.Certain, want)
						return
					}
					if !res.Certain {
						cex := res.Counterexample()
						if cex == nil || !cex.IsRepairOf(db) {
							t.Errorf("%s: invalid counterexample", phase)
							return
						}
					}
				}
			}()
		}
		wg.Wait()
	}

	// Figure 3 is a no-instance of CERTAINTY(ARRX).
	concurrent(false, "initial")
	iv1 := db.Interned()

	// Dropping R(a,c) removes the only conflicting block: the single
	// remaining repair has the path A(0,a)R(a,b)R(b,c)X(c,t).
	db.Remove(instance.Fact{Rel: "R", Key: "a", Val: "c"})
	if db.Interned() == iv1 {
		t.Fatal("mutation did not publish a fresh interned snapshot")
	}
	concurrent(true, "after Remove")

	// Restore: the re-add exactly undoes the removal, so the intern
	// layer collapses back onto the first snapshot pointer and the
	// no-decision is served by the originally memoized encoding.
	db.AddFact("R", "a", "c")
	if db.Interned() != iv1 {
		t.Fatal("toggle-back did not restore the original snapshot pointer")
	}
	concurrent(false, "after re-Add")

	if n := cp.encs.Len(); n != 2 {
		t.Errorf("encoding memo holds %d snapshots, want 2", n)
	}
}

// TestCompiledWarmReuseCounts asserts the warm path actually reuses the
// memoized encoding: repeated decisions on one snapshot keep a single
// resident encoding and agree with the cold answer.
func TestCompiledWarmReuseCounts(t *testing.T) {
	cp := Compile(words.MustParse("ARRX"))
	db := instance.MustParseFacts("A(0,a) R(a,b) R(a,c) R(b,c) R(c,b) X(c,t)")
	cold := cp.IsCertain(db)
	for i := 0; i < 10; i++ {
		if warm := cp.IsCertain(db); warm.Certain != cold.Certain {
			t.Fatal("warm decision flipped")
		}
	}
	if n := cp.encs.Len(); n != 1 {
		t.Errorf("encoding memo holds %d entries, want 1", n)
	}
	if !cp.encs.Contains(db.Interned()) {
		t.Error("current snapshot not resident")
	}
}
