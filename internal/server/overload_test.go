package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cqa"
	"cqa/internal/faultinject"
)

// instanceQueries returns the served query count of the named instance
// from a metrics snapshot.
func instanceQueries(m Metrics, name string) uint64 {
	for _, info := range m.Instances {
		if info.Name == name {
			return info.Queries
		}
	}
	return 0
}

// getWithTimeout GETs url with the CQA-Timeout-Ms header set.
func getWithTimeout(t *testing.T, url, ms string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ms != "" {
		req.Header.Set(TimeoutHeader, ms)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// stallWorker parks the named instance's fast-lane worker inside a
// task and returns the release channel. The caller must close it.
func stallWorker(t *testing.T, s *Server, name string) chan struct{} {
	t.Helper()
	release := make(chan struct{})
	started := make(chan struct{})
	go s.router.Do(context.Background(), name, func() { close(started); <-release })
	<-started
	return release
}

func TestServeHealthReady(t *testing.T) {
	s := New(Config{RouterWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s while serving: %d, want 200", ep, resp.StatusCode)
		}
	}
	s.Drain()
	// Liveness stays green — the process is still up — but readiness
	// flips so load balancers stop routing.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after drain: %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain: %d, want 503", resp.StatusCode)
	}
}

// TestServeQueuedDeadlineShed is the queued-expiry acceptance check: a
// request whose deadline passes while it waits in a lane queue is
// answered 504 without ever being evaluated — asserted via stats: the
// shed counter moves, while the memo counters and the instance's query
// count do not.
func TestServeQueuedDeadlineShed(t *testing.T) {
	s, ts := newTestServer(t)
	base := ts.URL
	if code, body := mustPost(t, base+"/instances/x", serveFacts()); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	// Warm the plan and the tier memo so an evaluated request would
	// show up as a memo hit, not hide behind a compile.
	resp := getWithTimeout(t, base+"/instances/x/query?q=RRX", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup query: %d", resp.StatusCode)
	}
	pre := scrapeMetrics(t, base)

	release := stallWorker(t, s, "x")
	w := s.router.WorkerFor("x")

	respCh := make(chan *http.Response, 1)
	go func() {
		respCh <- getWithTimeout(t, base+"/instances/x/query?q=RRX", "30")
	}()
	// Wait until the request is actually queued behind the stalled
	// worker, let its 30ms budget expire, then release the worker so it
	// dequeues the corpse.
	deadline := time.Now().Add(5 * time.Second)
	for s.router.Stats().Workers[w].Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)

	qResp := <-respCh
	body, _ := io.ReadAll(qResp.Body)
	qResp.Body.Close()
	if qResp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-in-queue request: %d %s, want 504", qResp.StatusCode, body)
	}
	post := scrapeMetrics(t, base)
	if post.Router.Shed != pre.Router.Shed+1 {
		t.Fatalf("Shed = %d, want %d", post.Router.Shed, pre.Router.Shed+1)
	}
	// Never evaluated: no memo traffic, no cold build, no query counted.
	if post.Engine.Memo.Hits != pre.Engine.Memo.Hits ||
		post.Engine.Memo.Misses != pre.Engine.Memo.Misses ||
		post.Engine.Memo.ColdBuilds != pre.Engine.Memo.ColdBuilds {
		t.Fatalf("shed request touched the memos: %+v -> %+v", pre.Engine.Memo, post.Engine.Memo)
	}
	if got, want := instanceQueries(post, "x"), instanceQueries(pre, "x"); got != want {
		t.Fatalf("shed request counted as served: queries %d -> %d", want, got)
	}
}

// TestServeBatchLineDeadline: a timeout_ms NDJSON field bounds its own
// line. A line whose per-line deadline passes while the chunk waits
// behind a stalled worker is answered with a deadline error without
// being evaluated, while its neighbors in the same chunk still decide.
func TestServeBatchLineDeadline(t *testing.T) {
	s, ts := newTestServer(t)
	base := ts.URL
	if code, body := mustPost(t, base+"/instances/b", serveFacts()); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	runBatch(t, base, "b", []string{"RRX"}) // warm
	pre := scrapeMetrics(t, base)

	release := stallWorker(t, s, "b")
	respCh := make(chan []queryResponse, 1)
	go func() {
		code, body := mustPost(t, base+"/instances/b/batch",
			`{"query":"RRX","timeout_ms":30}`+"\n"+`{"query":"RRX"}`+"\n")
		if code != http.StatusOK {
			t.Errorf("batch: %d %s", code, body)
		}
		var out []queryResponse
		dec := json.NewDecoder(strings.NewReader(body))
		for dec.More() {
			var r queryResponse
			if err := dec.Decode(&r); err != nil {
				t.Errorf("decode: %v", err)
				break
			}
			out = append(out, r)
		}
		respCh <- out
	}()
	time.Sleep(80 * time.Millisecond) // line deadline (30ms) expires while queued
	close(release)

	out := <-respCh
	if len(out) != 2 {
		t.Fatalf("got %d responses, want 2: %+v", len(out), out)
	}
	if out[0].Error == "" || !strings.Contains(out[0].Error, "deadline") {
		t.Fatalf("expired line answered without a deadline error: %+v", out[0])
	}
	if out[1].Error != "" || out[1].Certain == nil {
		t.Fatalf("live neighbor line failed: %+v", out[1])
	}
	// Exactly one query evaluated (the live line); the expired one was
	// never counted.
	post := scrapeMetrics(t, base)
	if got, want := instanceQueries(post, "b"), instanceQueries(pre, "b")+1; got != want {
		t.Fatalf("instance queries %d, want %d (expired line must not evaluate)", got, want)
	}
}

// TestServeOverloadRejects: a full fast-lane queue answers a REST query
// 429 with Retry-After immediately, and a batch chunk with per-line
// overloaded errors — never a blocked connection.
func TestServeOverloadRejects(t *testing.T) {
	s := New(Config{RouterWorkers: 1, QueueDepth: 1, Window: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Drain() })
	base := ts.URL
	if code, body := mustPost(t, base+"/instances/o", serveFacts()); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	release := stallWorker(t, s, "o")
	defer func() {
		if release != nil {
			close(release)
		}
	}()
	// Fill the single queue slot.
	go s.router.Do(context.Background(), "o", func() {})
	w := s.router.WorkerFor("o")
	deadline := time.Now().Add(5 * time.Second)
	for s.router.Stats().Workers[w].Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	resp := getWithTimeout(t, base+"/instances/o/query?q=RRX", "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("query on full lane: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("rejection took %v: connection blocked instead of immediate 429", d)
	}

	// Batch on the saturated lane: per-line overloaded errors, stream
	// still answers in order.
	code, bbody := mustPost(t, base+"/instances/o/batch", "RRX\nRRX\n")
	if code != http.StatusOK {
		t.Fatalf("batch on full lane: %d %s", code, bbody)
	}
	var out []queryResponse
	dec := json.NewDecoder(strings.NewReader(bbody))
	for dec.More() {
		var r queryResponse
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("decode: %v (%s)", err, bbody)
		}
		out = append(out, r)
	}
	if len(out) != 2 {
		t.Fatalf("got %d responses, want 2", len(out))
	}
	for i, r := range out {
		if r.Error == "" || !strings.Contains(r.Error, "overloaded") {
			t.Fatalf("line %d on full lane: %+v, want overloaded error", i, r)
		}
	}
	if got := s.router.Stats().Rejected; got < 2 {
		t.Fatalf("Rejected = %d, want >= 2", got)
	}
	close(release)
	release = nil
}

// TestServeHeavyLaneSaturationKeepsFastLaneLive is the admission-
// control acceptance check at the HTTP layer: with the heavy lane
// saturated by coNP-bound work, a coNP query is rejected 429 while a
// warm PTIME/NL query on the same instance still answers 200.
func TestServeHeavyLaneSaturationKeepsFastLaneLive(t *testing.T) {
	s := New(Config{RouterWorkers: 2, HeavyWorkers: 1, HeavyQueueDepth: 1, Window: 8})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Drain() })
	base := ts.URL
	if code, body := mustPost(t, base+"/instances/h", serveFacts()); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	// Saturate the heavy lane: one executing, one queued.
	release := make(chan struct{})
	started := make(chan struct{})
	go s.router.DoHeavy(context.Background(), func() { close(started); <-release })
	<-started
	go s.router.DoHeavy(context.Background(), func() {})
	deadline := time.Now().Add(5 * time.Second)
	for s.router.Stats().Heavy.Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("heavy lane never saturated")
		}
		time.Sleep(time.Millisecond)
	}

	// ARRX compiles to the SAT tier → heavy lane → 429.
	resp := getWithTimeout(t, base+"/instances/h/query?q=ARRX", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("coNP query on saturated heavy lane: %d, want 429", resp.StatusCode)
	}
	// RRX rides the fast lane, unaffected.
	resp = getWithTimeout(t, base+"/instances/h/query?q=RRX", "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast-lane query stalled by heavy saturation: %d %s", resp.StatusCode, body)
	}
	close(release)
}

// TestServePanicIsolationHTTP: an injected panic inside a served
// decision answers that request 500, leaves the daemon serving, and is
// visible in /metrics as a recovered engine panic.
func TestServePanicIsolationHTTP(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t)
	base := ts.URL
	if code, body := mustPost(t, base+"/instances/p", serveFacts()); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	// Reference decision before the fault is armed.
	refDB, err := cqa.ParseFacts(serveFacts())
	if err != nil {
		t.Fatal(err)
	}
	want := cqa.Certain(cqa.MustParseQuery("ARRX"), refDB).Certain

	faultinject.Enable(faultinject.SATSolve, 1, false)
	resp := getWithTimeout(t, base+"/instances/p/query?q=ARRX", "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking decision: %d %s, want 500", resp.StatusCode, body)
	}
	faultinject.Disable(faultinject.SATSolve)

	m := scrapeMetrics(t, base)
	if m.Engine.Panics != 1 {
		t.Fatalf("engine panics = %d, want 1", m.Engine.Panics)
	}
	// The worker, the instance, and the daemon survived: the same
	// query now decides correctly.
	resp = getWithTimeout(t, base+"/instances/p/query?q=ARRX", "")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decision after recovered panic: %d %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Certain == nil || *qr.Certain != want {
		t.Fatalf("decision after recovered panic = %+v, want certain=%v", qr, want)
	}
}

// TestServeMemWatermark: with the soft limit set below any real heap,
// the watcher degrades the engine's memo scale; decisions stay correct
// while degraded.
func TestServeMemWatermark(t *testing.T) {
	s := New(Config{RouterWorkers: 1, MemSoftLimit: 1, MemCheckInterval: 5 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Drain() })
	base := ts.URL
	if code, body := mustPost(t, base+"/instances/m", serveFacts()); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.reg.Engine().MemoScale() != DegradedMemoScale {
		if time.Now().After(deadline) {
			t.Fatalf("watermark never degraded the memo scale: %g", s.reg.Engine().MemoScale())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, resp := range runBatch(t, base, "m", serveWords) {
		if resp.Error != "" || resp.Certain == nil {
			t.Fatalf("decision under degraded memos: %+v", resp)
		}
	}
}
