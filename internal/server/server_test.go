package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cqa"
)

// serveFacts is a conflicted instance over a fixed eight-constant
// universe: every block has a conflict partner available, so
// in-universe mutations ride the delta-interning path and the tier
// memos repair instead of rebuilding (same shape as the engine's churn
// soak).
func serveFacts() string {
	consts := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var b strings.Builder
	for _, rel := range []string{"A", "R", "X", "Y"} {
		for i, k := range consts {
			fmt.Fprintf(&b, "%s(%s,%s) ", rel, k, consts[(i+1)%len(consts)])
			if i%2 == 0 {
				fmt.Fprintf(&b, "%s(%s,%s) ", rel, k, consts[(i+3)%len(consts)])
			}
		}
	}
	return b.String()
}

// serveWords is one query word per tier (FO, NL, PTIME, coNP), so a
// served stream exercises every solver's memo.
var serveWords = []string{"RXRX", "RRX", "RXRYRY", "ARRX"}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{RouterWorkers: 4, Window: 32})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Drain() })
	return s, ts
}

func mustPost(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

func mustGetJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func scrapeMetrics(t *testing.T, base string) Metrics {
	t.Helper()
	var m Metrics
	mustGetJSON(t, base+"/metrics", &m)
	return m
}

// runBatch streams one batch request of the given query words and
// returns the decoded responses.
func runBatch(t *testing.T, base, name string, words []string) []queryResponse {
	t.Helper()
	code, body := mustPost(t, base+"/instances/"+name+"/batch", strings.Join(words, "\n")+"\n")
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	var out []queryResponse
	dec := json.NewDecoder(strings.NewReader(body))
	for dec.More() {
		var r queryResponse
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("decode batch response: %v (%s)", err, body)
		}
		out = append(out, r)
	}
	return out
}

// TestServeEndToEnd is the serve-loop e2e of the issue: register over
// HTTP, stream queries, mutate, and assert via /metrics that
// post-mutation decisions are lineage repairs (not cold builds) and
// that the instance→worker routing stayed stable across ≥3 batch
// boundaries.
func TestServeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL

	code, body := mustPost(t, base+"/instances/alpha", serveFacts())
	if code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}

	// Reference decisions computed out of band on an identical instance.
	refDB, err := cqa.ParseFacts(serveFacts())
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool)
	for _, w := range serveWords {
		want[w] = cqa.Certain(cqa.MustParseQuery(w), refDB).Certain
	}

	var stream []string
	for i := 0; i < 16; i++ {
		stream = append(stream, serveWords[i%len(serveWords)])
	}

	// ≥3 batch boundaries: separate HTTP requests, same instance.
	assigned := scrapeMetrics(t, base).Router.Assignments["alpha"]
	for round := 0; round < 3; round++ {
		for i, resp := range runBatch(t, base, "alpha", stream) {
			if resp.Error != "" {
				t.Fatalf("round %d response %d: %s", round, i, resp.Error)
			}
			if resp.Certain == nil || *resp.Certain != want[resp.Query] {
				t.Fatalf("round %d: %s decided %v, want %v", round, resp.Query, resp.Certain, want[resp.Query])
			}
		}
		m := scrapeMetrics(t, base)
		if got := m.Router.Assignments["alpha"]; got != assigned {
			t.Fatalf("round %d: instance moved from worker %d to %d", round, assigned, got)
		}
	}

	// Steady state reached: every tier has built its artifacts. More
	// rounds must be pure warm hits — zero new cold builds or repairs.
	warm := scrapeMetrics(t, base)
	for round := 0; round < 3; round++ {
		runBatch(t, base, "alpha", stream)
	}
	m := scrapeMetrics(t, base)
	if m.Engine.Memo.ColdBuilds != warm.Engine.Memo.ColdBuilds {
		t.Fatalf("warm rounds cold-built: %+v -> %+v", warm.Engine.Memo, m.Engine.Memo)
	}
	if m.Engine.Memo.Hits <= warm.Engine.Memo.Hits {
		t.Fatalf("warm rounds did not hit the memo: %+v -> %+v", warm.Engine.Memo, m.Engine.Memo)
	}

	// In-universe mutation: grow one conflicted block (constants and
	// relations all exist, no block emptied), so the new snapshot is a
	// structural delta and the next decision per tier is a repair.
	code, body = mustPost(t, base+"/instances/alpha/mutate",
		`{"add":["R(a,e)","A(b,f)"],"remove":["R(a,d)"]}`)
	if code != http.StatusOK {
		t.Fatalf("mutate: %d %s", code, body)
	}
	var info cqa.InstanceInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.Mutations != 1 {
		t.Fatalf("mutate info: %+v", info)
	}

	preMut := scrapeMetrics(t, base)
	for i, resp := range runBatch(t, base, "alpha", stream) {
		if resp.Error != "" {
			t.Fatalf("post-mutation response %d: %s", i, resp.Error)
		}
	}
	post := scrapeMetrics(t, base)
	if got := post.Router.Assignments["alpha"]; got != assigned {
		t.Fatalf("mutation moved instance to worker %d from %d", got, assigned)
	}
	if post.Engine.Memo.Repairs <= preMut.Engine.Memo.Repairs {
		t.Fatalf("post-mutation decisions were not lineage repairs: %+v -> %+v",
			preMut.Engine.Memo, post.Engine.Memo)
	}
	if post.Engine.Memo.ColdBuilds != preMut.Engine.Memo.ColdBuilds {
		t.Fatalf("post-mutation decisions cold-built: %+v -> %+v",
			preMut.Engine.Memo, post.Engine.Memo)
	}
}

// TestServeWarmStream10k is the 10k-request acceptance check: after
// warmup, a long stream against one named instance shows zero cold
// rebuilds in /metrics — cross-batch affinity holds end to end.
func TestServeWarmStream10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-request stream")
	}
	_, ts := newTestServer(t)
	base := ts.URL
	if code, body := mustPost(t, base+"/instances/hot", serveFacts()); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}

	runBatch(t, base, "hot", serveWords) // warmup: one decision per tier
	warm := scrapeMetrics(t, base)

	const total = 10000
	chunk := make([]string, 1000)
	for i := range chunk {
		chunk[i] = serveWords[i%len(serveWords)]
	}
	served := 0
	for served < total {
		for _, resp := range runBatch(t, base, "hot", chunk) {
			if resp.Error != "" {
				t.Fatalf("request %d: %s", served, resp.Error)
			}
			served++
		}
	}
	m := scrapeMetrics(t, base)
	if m.Engine.Memo.ColdBuilds != warm.Engine.Memo.ColdBuilds {
		t.Fatalf("stream cold-built after warmup: %+v -> %+v", warm.Engine.Memo, m.Engine.Memo)
	}
	if m.Engine.Memo.Misses != warm.Engine.Memo.Misses {
		t.Fatalf("stream rebuilt artifacts after warmup: %+v -> %+v", warm.Engine.Memo, m.Engine.Memo)
	}
	// Three of the four tiers memoize per snapshot (FO rewrites have no
	// instance-bound artifact), so 3/4 of the stream must be warm hits.
	if hits := m.Engine.Memo.Hits - warm.Engine.Memo.Hits; hits < total/4*3 {
		t.Fatalf("want >= %d warm hits, got %d", total/4*3, hits)
	}
}

func TestServeBatchWindowingAndErrors(t *testing.T) {
	s, ts := newTestServer(t)
	_ = s
	base := ts.URL
	if code, body := mustPost(t, base+"/instances/w", "R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)"); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	// 2.5 windows of requests (window=32), with JSON and bare lines
	// mixed plus a malformed line: responses come back in order, the
	// bad line answered per-line.
	var words []string
	for i := 0; i < 80; i++ {
		if i == 40 {
			words = append(words, `{"query": "???"}`)
			continue
		}
		if i%2 == 0 {
			words = append(words, `{"query": "RRX"}`)
		} else {
			words = append(words, "RRX")
		}
	}
	resps := runBatch(t, base, "w", words)
	if len(resps) != 80 {
		t.Fatalf("want 80 responses, got %d", len(resps))
	}
	for i, resp := range resps {
		if resp.Index != i+1 {
			t.Fatalf("response %d has index %d: stream reordered", i, resp.Index)
		}
		if i == 40 {
			if resp.Error == "" {
				t.Fatalf("malformed line got a decision: %+v", resp)
			}
			continue
		}
		if resp.Error != "" || resp.Certain == nil || !*resp.Certain {
			t.Fatalf("response %d: %+v", i, resp)
		}
	}
}

func TestServeHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL

	if code, _ := mustPost(t, base+"/instances/dup", "R(0,1)"); code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}
	if code, _ := mustPost(t, base+"/instances/dup", "R(0,1)"); code != http.StatusConflict {
		t.Fatalf("duplicate register: %d, want 409", code)
	}
	if code, body := mustPost(t, base+"/instances/bad", "not-a-fact"); code != http.StatusBadRequest {
		t.Fatalf("bad facts: %d %s", code, body)
	}
	resp, err := http.Get(base + "/instances/missing/query?q=RRX")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query on missing instance: %d, want 404", resp.StatusCode)
	}
	if code, _ := mustPost(t, base+"/instances/dup/mutate", `{"add":["nope"]}`); code != http.StatusBadRequest {
		t.Fatalf("bad mutate fact: %d, want 400", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/instances/dup", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("drop: %d", dresp.StatusCode)
	}
	var names []cqa.InstanceInfo
	mustGetJSON(t, base+"/instances", &names)
	for _, info := range names {
		if info.Name == "dup" {
			t.Fatalf("dropped instance still listed: %+v", names)
		}
	}
}

// TestServeDrain: after Drain, evaluation endpoints answer 503 and
// nothing panics; metadata endpoints still work.
func TestServeDrain(t *testing.T) {
	s := New(Config{RouterWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, body := mustPost(t, ts.URL+"/instances/d", "R(0,1)"); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	s.Drain()
	resp, err := http.Get(ts.URL + "/instances/d/query?q=RRX")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query after drain: %d, want 503", resp.StatusCode)
	}
	var m Metrics
	mustGetJSON(t, ts.URL+"/metrics", &m)
	if len(m.Router.Workers) != 2 {
		t.Fatalf("metrics after drain: %+v", m)
	}
}
