package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRouterStickyAndBalanced(t *testing.T) {
	r := NewRouter(4, 0, 0, 0)
	defer r.Drain()
	perWorker := make(map[int]int)
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("db%d", i)
		w := r.WorkerFor(name)
		for j := 0; j < 5; j++ {
			if got := r.WorkerFor(name); got != w {
				t.Fatalf("assignment for %s moved: %d then %d", name, w, got)
			}
		}
		perWorker[w]++
	}
	for w, n := range perWorker {
		if n != 4 {
			t.Errorf("worker %d got %d instances, want 4 (least-assigned placement)", w, n)
		}
	}
}

// TestRouterSerializesPerInstance checks the affinity contract: tasks
// for one instance run in submission order with no overlap, even when
// submitted from many goroutines (run with -race).
func TestRouterSerializesPerInstance(t *testing.T) {
	r := NewRouter(2, 128, 0, 0)
	defer r.Drain()
	const tasks = 100
	var order []int // appended inside worker tasks; safe iff serialized
	var wg sync.WaitGroup
	var next int
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Do(context.Background(), "solo", func() {
				order = append(order, next)
				next++
			})
		}()
	}
	wg.Wait()
	if len(order) != tasks {
		t.Fatalf("ran %d tasks, want %d", len(order), tasks)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d: tasks interleaved", i, v)
		}
	}
}

func TestRouterDoWaitsForCompletion(t *testing.T) {
	r := NewRouter(1, 1, 0, 0)
	defer r.Drain()
	done := false
	if err := r.Do(context.Background(), "a", func() {
		time.Sleep(10 * time.Millisecond)
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("Do returned before its task completed")
	}
}

// saturate stalls the named instance's fast-lane worker and fills its
// depth-q queue, returning the release channel and the WaitGroup of
// the stalled submissions. On return the worker is parked inside one
// task and q more sit queued, so the next Do must be rejected.
func saturate(t *testing.T, r *Router, name string, q int) (chan struct{}, *sync.WaitGroup) {
	t.Helper()
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Do(context.Background(), name, func() { close(started); <-release })
	}()
	<-started // the worker is now executing the blocker, queue empty
	for i := 0; i < q; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); r.Do(context.Background(), name, func() {}) }()
	}
	w := r.WorkerFor(name)
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Workers[w].Queued < q {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	return release, &wg
}

// TestRouterQueueFullRejects fills a depth-1 queue behind a stalled
// worker and checks that the next submission is rejected immediately
// with ErrOverloaded — never enqueued, never blocked — and that the
// rejection is counted.
func TestRouterQueueFullRejects(t *testing.T) {
	r := NewRouter(1, 1, 0, 0)
	defer r.Drain()
	release, wg := saturate(t, r, "a", 1)

	start := time.Now()
	err := r.Do(context.Background(), "a", func() { t.Error("rejected task ran") })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Do on full queue: got %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("rejection took %v: connection blocked instead of immediate 429", d)
	}
	if got := r.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	close(release)
	wg.Wait()
}

// TestRouterShedsExpiredQueued checks deadline-aware queueing: a
// request whose context expires while it sits in the queue is answered
// with ErrExpiredInQueue without its fn ever running.
func TestRouterShedsExpiredQueued(t *testing.T) {
	r := NewRouter(1, 4, 0, 0)
	defer r.Drain()
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Do(context.Background(), "a", func() { close(started); <-release })
	}()
	<-started // the worker is executing the blocker

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	errCh := make(chan error, 1)
	ran := false
	go func() {
		errCh <- r.Do(ctx, "a", func() { ran = true })
	}()
	// Let the deadline expire while the task is queued behind the
	// blocker, then release the worker so it dequeues the expired task.
	time.Sleep(20 * time.Millisecond)
	close(release)
	err := <-errCh
	wg.Wait()
	if !errors.Is(err, ErrExpiredInQueue) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-in-queue Do: got %v, want ErrExpiredInQueue wrapping DeadlineExceeded", err)
	}
	if ran {
		t.Fatal("expired request was evaluated")
	}
	if got := r.Stats().Shed; got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
}

// TestRouterPanicIsolation checks that a panicking task is recovered
// at the worker boundary: the caller gets ErrWorkerPanic, the counter
// records it, and the same worker keeps serving.
func TestRouterPanicIsolation(t *testing.T) {
	r := NewRouter(1, 4, 1, 4)
	defer r.Drain()
	err := r.Do(context.Background(), "a", func() { panic("boom") })
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("panicking Do: got %v, want ErrWorkerPanic", err)
	}
	if err := r.DoHeavy(context.Background(), func() { panic("heavy boom") }); !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("panicking DoHeavy: got %v, want ErrWorkerPanic", err)
	}
	if got := r.Stats().Panics; got != 2 {
		t.Fatalf("Panics = %d, want 2", got)
	}
	// Both workers survived their panics.
	ok := false
	if err := r.Do(context.Background(), "a", func() { ok = true }); err != nil || !ok {
		t.Fatalf("fast worker dead after panic: err=%v ran=%v", err, ok)
	}
	ok = false
	if err := r.DoHeavy(context.Background(), func() { ok = true }); err != nil || !ok {
		t.Fatalf("heavy worker dead after panic: err=%v ran=%v", err, ok)
	}
}

// TestRouterHeavyLaneIndependent checks the two lanes are independent:
// a saturated heavy lane rejects heavy work while the fast lane still
// answers, and vice versa.
func TestRouterHeavyLaneIndependent(t *testing.T) {
	r := NewRouter(1, 4, 1, 1)
	defer r.Drain()

	// Saturate the heavy lane: one executing + one queued.
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.DoHeavy(context.Background(), func() { close(started); <-release })
	}()
	<-started // the heavy worker is executing the blocker
	wg.Add(1)
	go func() { defer wg.Done(); r.DoHeavy(context.Background(), func() {}) }()
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Heavy.Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("heavy lane never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	if err := r.DoHeavy(context.Background(), func() {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("DoHeavy on full lane: got %v, want ErrOverloaded", err)
	}

	// Fast lane still serves instantly.
	ran := false
	if err := r.Do(context.Background(), "a", func() { ran = true }); err != nil || !ran {
		t.Fatalf("fast lane stalled by heavy saturation: err=%v ran=%v", err, ran)
	}
	close(release)
	wg.Wait()
}

func TestRouterDrain(t *testing.T) {
	r := NewRouter(2, 64, 0, 0)
	var ran int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		name := fmt.Sprintf("db%d", i%4)
		go func() {
			defer wg.Done()
			r.Do(context.Background(), name, func() {
				mu.Lock()
				ran++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	r.Drain()
	if ran != 20 {
		t.Fatalf("ran %d tasks before drain, want 20", ran)
	}
	if err := r.Do(context.Background(), "db0", func() {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Do after Drain: got %v, want ErrDraining", err)
	}
	if err := r.DoHeavy(context.Background(), func() {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("DoHeavy after Drain: got %v, want ErrDraining", err)
	}
	r.Drain() // idempotent
	s := r.Stats()
	var executed uint64
	for _, w := range s.Workers {
		executed += w.Executed
		if w.Queued != 0 {
			t.Errorf("queued tasks survived drain: %+v", w)
		}
	}
	if executed != 20 {
		t.Errorf("executed %d, want 20", executed)
	}
}

// TestRouterDrainUnderSaturation drains a router whose only fast-lane
// worker is stalled behind a full queue while producers keep
// submitting. Because enqueues are non-blocking, no producer can be
// parked on a channel Drain is about to close: every concurrent Do
// either completes or fails with ErrOverloaded/ErrDraining, and Drain
// returns once the queue empties.
func TestRouterDrainUnderSaturation(t *testing.T) {
	r := NewRouter(1, 2, 1, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Do(context.Background(), "a", func() { close(started); <-release })
	}()
	<-started
	// Producers hammering both lanes throughout the drain.
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Do(context.Background(), "a", func() {})
				r.DoHeavy(context.Background(), func() {})
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release) // un-stall the worker mid-drain
		time.Sleep(5 * time.Millisecond)
		close(stop)
	}()
	done := make(chan struct{})
	go func() { r.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain deadlocked under saturation")
	}
	wg.Wait()
	if got := r.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
}
