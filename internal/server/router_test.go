package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRouterStickyAndBalanced(t *testing.T) {
	r := NewRouter(4, 0)
	defer r.Drain()
	perWorker := make(map[int]int)
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("db%d", i)
		w := r.WorkerFor(name)
		for j := 0; j < 5; j++ {
			if got := r.WorkerFor(name); got != w {
				t.Fatalf("assignment for %s moved: %d then %d", name, w, got)
			}
		}
		perWorker[w]++
	}
	for w, n := range perWorker {
		if n != 4 {
			t.Errorf("worker %d got %d instances, want 4 (least-assigned placement)", w, n)
		}
	}
}

// TestRouterSerializesPerInstance checks the affinity contract: tasks
// for one instance run in submission order with no overlap, even when
// submitted from many goroutines (run with -race).
func TestRouterSerializesPerInstance(t *testing.T) {
	r := NewRouter(2, 4)
	defer r.Drain()
	const tasks = 100
	var order []int // appended inside worker tasks; safe iff serialized
	var wg sync.WaitGroup
	var next int
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Do(context.Background(), "solo", func() {
				order = append(order, next)
				next++
			})
		}()
	}
	wg.Wait()
	if len(order) != tasks {
		t.Fatalf("ran %d tasks, want %d", len(order), tasks)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d: tasks interleaved", i, v)
		}
	}
}

func TestRouterDoWaitsForCompletion(t *testing.T) {
	r := NewRouter(1, 1)
	defer r.Drain()
	done := false
	if err := r.Do(context.Background(), "a", func() {
		time.Sleep(10 * time.Millisecond)
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("Do returned before its task completed")
	}
}

// TestRouterBackpressure fills a depth-1 queue behind a stalled worker
// and checks that the next submission blocks until canceled rather
// than queueing unboundedly.
func TestRouterBackpressure(t *testing.T) {
	r := NewRouter(1, 1)
	defer r.Drain()
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); r.Do(context.Background(), "a", func() { <-release }) }()
	time.Sleep(5 * time.Millisecond) // first task now executing
	go func() { defer wg.Done(); r.Do(context.Background(), "a", func() {}) }()
	time.Sleep(5 * time.Millisecond) // second task now fills the queue

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := r.Do(ctx, "a", func() {}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Do: got %v, want deadline exceeded", err)
	}
	close(release)
	wg.Wait()
}

func TestRouterDrain(t *testing.T) {
	r := NewRouter(2, 8)
	var ran int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		name := fmt.Sprintf("db%d", i%4)
		go func() {
			defer wg.Done()
			r.Do(context.Background(), name, func() {
				mu.Lock()
				ran++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	r.Drain()
	if ran != 20 {
		t.Fatalf("ran %d tasks before drain, want 20", ran)
	}
	if err := r.Do(context.Background(), "db0", func() {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Do after Drain: got %v, want ErrDraining", err)
	}
	r.Drain() // idempotent
	s := r.Stats()
	var executed uint64
	for _, w := range s.Workers {
		executed += w.Executed
		if w.Queued != 0 {
			t.Errorf("queued tasks survived drain: %+v", w)
		}
	}
	if executed != 20 {
		t.Errorf("executed %d, want 20", executed)
	}
}
