package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cqa"
	"cqa/internal/faultinject"
)

// poolFacts are in-universe facts absent from serveFacts: the chaos
// mutator toggles them, so every mutation is a universe-preserving
// delta (repair path) and removing them all restores the base state
// exactly.
var poolFacts = []string{"R(a,f)", "A(c,g)", "X(e,b)", "Y(g,d)"}

// chaosTally is what the soak's clients observe, aggregated across
// goroutines.
type chaosTally struct {
	decisions  atomic.Uint64 // non-errored decisions received
	mismatches atomic.Uint64 // ... that contradicted the reference
	overloads  atomic.Uint64 // "overloaded" errors (429 or per-line)
	deadlines  atomic.Uint64 // deadline errors (504 or per-line)
	errors     atomic.Uint64 // any other per-request error
	aborted    atomic.Uint64 // connections that died mid-stream
}

// decodeNDJSON decodes as many queryResponse lines as the (possibly
// truncated) body contains.
func decodeNDJSON(body string) ([]queryResponse, bool) {
	var out []queryResponse
	dec := json.NewDecoder(strings.NewReader(body))
	for dec.More() {
		var r queryResponse
		if err := dec.Decode(&r); err != nil {
			return out, false
		}
		out = append(out, r)
	}
	return out, true
}

// tallyResponse classifies one decision line against the reference.
func (c *chaosTally) tallyResponse(r queryResponse, want map[string]bool, checked bool) {
	switch {
	case r.Error == "":
		if r.Certain != nil {
			c.decisions.Add(1)
			if checked && *r.Certain != want[r.Query] {
				c.mismatches.Add(1)
			}
		}
	case strings.Contains(r.Error, "overloaded"):
		c.overloads.Add(1)
	case strings.Contains(r.Error, "deadline"):
		c.deadlines.Add(1)
	default:
		c.errors.Add(1)
	}
}

// TestChaosSoak drives the daemon through every failpoint at once —
// injected faults in snapshot publish, memo build/repair, SAT solve,
// router handoff, and response writes — interleaved with mutations,
// per-line deadlines, and more clients than the lanes can hold, under
// the race detector. It asserts the daemon never crashes or wedges,
// every non-errored decision matches an in-process reference, and the
// recovered-panic counters reconcile exactly with the injected fault
// counts.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	// HeavyWorkers MUST stay 1 for the exact panic reconciliation below:
	// with the fast lane serialized per instance and one heavy worker,
	// no two goroutines can ever join the same in-flight memo build, so
	// every injected panic is recovered exactly once and counted exactly
	// once (no ErrBuildPanicked joiners).
	s := New(Config{
		RouterWorkers:    2,
		QueueDepth:       4,
		HeavyWorkers:     1,
		HeavyQueueDepth:  2,
		Window:           8,
		DefaultTimeout:   2 * time.Second,
		MemSoftLimit:     1, // always over: the watermark stays degraded all soak
		MemCheckInterval: 20 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	base := ts.URL

	// Register before arming: registration itself is not under test.
	checked := []string{"chk0", "chk1", "chk2", "chk3"}
	mutated := []string{"mut0", "mut1"}
	for _, name := range append(append([]string{}, checked...), mutated...) {
		if code, body := mustPost(t, base+"/instances/"+name, serveFacts()); code != http.StatusCreated {
			t.Fatalf("register %s: %d %s", name, code, body)
		}
	}
	refDB, err := cqa.ParseFacts(serveFacts())
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool)
	for _, w := range serveWords {
		want[w] = cqa.Certain(cqa.MustParseQuery(w), refDB).Certain
	}

	// Every failpoint armed, distinct primes so firings interleave.
	// Error mode everywhere: sites without an error path (snapshot
	// publish, memo build, SAT solve) escalate to panics at the site.
	faultinject.Enable(faultinject.SnapshotPublish, 7, false)
	faultinject.Enable(faultinject.MemoBuild, 5, false)
	faultinject.Enable(faultinject.MemoRepair, 3, false)
	faultinject.Enable(faultinject.SATSolve, 11, false)
	faultinject.Enable(faultinject.RouterHandoff, 13, false)
	faultinject.Enable(faultinject.ServerWrite, 17, false)

	var tally chaosTally
	stop := make(chan struct{})
	var wg sync.WaitGroup

	post := func(url, body string) (int, string, bool) {
		resp, err := http.Post(url, "text/plain", strings.NewReader(body))
		if err != nil {
			tally.aborted.Add(1)
			return 0, "", false
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			tally.aborted.Add(1)
			return resp.StatusCode, string(out), false
		}
		return resp.StatusCode, string(out), true
	}

	// Batch clients: two concurrent streams per checked instance, mixing
	// bare lines, JSON lines, and per-line 1ms deadlines.
	for _, name := range checked {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(name string, g int) {
				defer wg.Done()
				var lines []string
				for i, w := range append(append([]string{}, serveWords...), serveWords...) {
					switch (i + g) % 3 {
					case 0:
						lines = append(lines, w)
					case 1:
						lines = append(lines, fmt.Sprintf(`{"query":%q}`, w))
					default:
						lines = append(lines, fmt.Sprintf(`{"query":%q,"timeout_ms":1}`, w))
					}
				}
				body := strings.Join(lines, "\n") + "\n"
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					code, out, ok := post(base+"/instances/"+name+"/batch", body)
					if !ok {
						continue // aborted stream (injected write fault)
					}
					if code != http.StatusOK {
						tally.errors.Add(1)
						continue
					}
					resps, _ := decodeNDJSON(out)
					for _, r := range resps {
						// Lines sent with timeout_ms:1 may legitimately decide
						// if they are dequeued in time; a decision is a
						// decision — check it either way.
						tally.tallyResponse(r, want, true)
					}
				}
			}(name, g)
		}
	}

	// Single-query clients with small header deadlines: exercise the
	// REST deadline path and the queued-expiry shed under load.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := checked[i%len(checked)]
				word := serveWords[(i+g)%len(serveWords)]
				req, _ := http.NewRequest(http.MethodGet,
					base+"/instances/"+name+"/query?q="+word, nil)
				if i%3 == 0 {
					req.Header.Set(TimeoutHeader, "1")
				}
				resp, err := client.Do(req)
				if err != nil {
					tally.aborted.Add(1)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					tally.aborted.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var r queryResponse
					if json.Unmarshal(body, &r) == nil {
						tally.tallyResponse(r, want, true)
					}
				case http.StatusTooManyRequests:
					tally.overloads.Add(1)
				case http.StatusGatewayTimeout:
					tally.deadlines.Add(1)
				default:
					tally.errors.Add(1)
				}
			}
		}(g)
	}

	// Mutators: toggle the pool facts on their own instances, querying
	// them between toggles (decisions unchecked — the state is in
	// flux — but every request must still be answered, not wedged).
	for _, name := range mutated {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			addBody, _ := json.Marshal(map[string][]string{"add": poolFacts})
			rmBody, _ := json.Marshal(map[string][]string{"remove": poolFacts})
			queryBody := strings.Join(serveWords, "\n") + "\n"
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := addBody
				if i%2 == 1 {
					body = rmBody
				}
				post(base+"/instances/"+name+"/mutate", string(body))
				if code, out, ok := post(base+"/instances/"+name+"/batch", queryBody); ok && code == http.StatusOK {
					resps, _ := decodeNDJSON(out)
					for _, r := range resps {
						tally.tallyResponse(r, want, false)
					}
				}
			}
		}(name)
	}

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Disarm (fired counts survive until Reset) and restore the mutated
	// instances to the base state: the pool facts are disjoint from the
	// base facts, so one remove-all mutation lands there regardless of
	// where the toggling stopped or which toggles errored.
	for _, site := range []string{
		faultinject.SnapshotPublish, faultinject.MemoBuild, faultinject.MemoRepair,
		faultinject.SATSolve, faultinject.RouterHandoff, faultinject.ServerWrite,
	} {
		faultinject.Disable(site)
	}
	rmBody, _ := json.Marshal(map[string][]string{"remove": poolFacts})
	for _, name := range mutated {
		if code, body := mustPost(t, base+"/instances/"+name+"/mutate", string(rmBody)); code != http.StatusOK {
			t.Fatalf("cleanup mutation on %s: %d %s", name, code, body)
		}
	}

	// Zero wedged workers: with faults disarmed, every instance —
	// including the chaos-mutated ones, now restored — answers a full
	// batch correctly.
	var verify []string
	for i := 0; i < 4; i++ {
		verify = append(verify, serveWords...)
	}
	for _, name := range append(append([]string{}, checked...), mutated...) {
		for i, r := range runBatch(t, base, name, verify) {
			if r.Error != "" {
				t.Fatalf("post-soak decision %d on %s errored: %s", i, name, r.Error)
			}
			if r.Certain == nil || *r.Certain != want[r.Query] {
				t.Fatalf("post-soak decision on %s: %s = %v, want %v", name, r.Query, r.Certain, want[r.Query])
			}
		}
	}

	if n := tally.mismatches.Load(); n != 0 {
		t.Fatalf("%d non-errored decisions contradicted the reference during chaos", n)
	}
	if tally.decisions.Load() == 0 {
		t.Fatal("soak decided nothing: no coverage")
	}

	// Every failpoint actually fired.
	fired := make(map[string]uint64)
	for _, site := range []string{
		faultinject.SnapshotPublish, faultinject.MemoBuild, faultinject.MemoRepair,
		faultinject.SATSolve, faultinject.RouterHandoff, faultinject.ServerWrite,
	} {
		fired[site] = faultinject.Fired(site)
		if fired[site] == 0 {
			t.Errorf("failpoint %s never fired (hits: %d)", site, faultinject.Hits(site))
		}
	}

	// Panic reconciliation: the three escalating sites panic once per
	// fire, and each panic is recovered at exactly one boundary — the
	// engine's evaluation wrapper, a router worker, or the HTTP handler
	// middleware. Any imbalance means a panic escaped (crash), was
	// double-counted, or a genuine (non-injected) panic occurred.
	m := scrapeMetrics(t, base)
	recovered := m.Engine.Panics + m.Router.Panics + m.HandlerPanics
	injected := fired[faultinject.SnapshotPublish] + fired[faultinject.MemoBuild] + fired[faultinject.SATSolve]
	if recovered != injected {
		t.Fatalf("recovered panics (engine %d + router %d + handler %d = %d) != injected panic faults (%d)",
			m.Engine.Panics, m.Router.Panics, m.HandlerPanics, recovered, injected)
	}
	// Overload/shed accounting is consistent with what clients saw.
	if tally.overloads.Load() > 0 && m.Router.Rejected == 0 {
		t.Fatalf("clients saw %d overload errors but the router rejected none", tally.overloads.Load())
	}
	if m.Router.Shed > 0 && tally.deadlines.Load() == 0 {
		t.Fatalf("router shed %d requests but no client saw a deadline error", m.Router.Shed)
	}

	t.Logf("soak: %d decisions (%d checked-mismatches), %d overloads, %d deadline errors, %d other errors, %d aborted streams",
		tally.decisions.Load(), tally.mismatches.Load(), tally.overloads.Load(),
		tally.deadlines.Load(), tally.errors.Load(), tally.aborted.Load())
	t.Logf("fired: publish=%d build=%d repair=%d sat=%d handoff=%d write=%d; recovered: engine=%d router=%d handler=%d; rejected=%d shed=%d",
		fired[faultinject.SnapshotPublish], fired[faultinject.MemoBuild], fired[faultinject.MemoRepair],
		fired[faultinject.SATSolve], fired[faultinject.RouterHandoff], fired[faultinject.ServerWrite],
		m.Engine.Panics, m.Router.Panics, m.HandlerPanics, m.Router.Rejected, m.Router.Shed)

	// The drain must complete promptly — no wedged worker, no deadlock.
	done := make(chan struct{})
	go func() { s.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("drain wedged after the chaos soak")
	}
}
