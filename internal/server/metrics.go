package server

import (
	"net/http"

	"cqa"
)

// Metrics is the /metrics payload: the engine's unified cqa.Stats tree
// extended with the serving layer's own sections — per-instance info
// from the registry and the persistent router's assignment table and
// queue depths. Everything a client needs to verify the residency
// contract is here: memo cold builds and repairs (engine.memo), per
// instance lineage depth and operation counts (instances), and the
// sticky instance→worker assignment (router.assignments), which must
// not change between two scrapes for serving to be memo-warm.
type Metrics struct {
	Engine    cqa.Stats          `json:"engine"`
	Instances []cqa.InstanceInfo `json:"instances"`
	Router    RouterStats        `json:"router"`
	// HandlerPanics counts panics recovered by the HTTP handler
	// middleware (connection-goroutine panics, outside the router
	// lanes); engine.panics and router.panics cover the other two
	// recovery boundaries.
	HandlerPanics uint64 `json:"handler_panics"`
}

// Metrics snapshots the full stats tree.
func (s *Server) Metrics() Metrics {
	return Metrics{
		Engine:        s.reg.Engine().Stats(),
		Instances:     s.reg.Infos(),
		Router:        s.router.Stats(),
		HandlerPanics: s.handlerPanics.Load(),
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Metrics())
}
