// Package server is the resident serving daemon behind `cqa serve`: a
// long-lived HTTP/NDJSON front end over a cqa.Registry of named
// instances, with a persistent shard router that pins every instance to
// one resident worker for the lifetime of the process.
//
// The router is the piece that makes residency pay. The engine's
// CertainBatch already shards one batch snapshot-affinely, but a batch
// is a single call: at every chunk boundary of a streamed workload the
// affinity resets, and two concurrent connections touching the same
// instance race each other into the per-snapshot tier memos. The
// router's instance→worker assignment is created on first touch
// (least-assigned worker wins) and then never moves, so every
// operation on a named instance — query, batch chunk, mutation —
// executes on the same goroutine end-to-end: decisions against one
// snapshot run consecutively (warm memo hits), a mutation is followed
// on the same worker by the lineage repair of its own memo entry, and
// the per-worker queues give the daemon bounded backpressure instead
// of unbounded goroutine fan-out.
package server

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrDraining is returned by Router.Do once Drain has begun.
var ErrDraining = errors.New("server: router draining")

// DefaultQueueDepth bounds each worker's task queue when Config leaves
// it zero: deep enough to absorb a burst of chunked batch submissions,
// shallow enough that a stalled worker pushes back on its producers
// instead of buffering unbounded work.
const DefaultQueueDepth = 64

// Router is the persistent shard router: a fixed pool of resident
// workers plus a sticky instance→worker assignment. Safe for
// concurrent use.
type Router struct {
	workers []*worker

	mu     sync.Mutex
	assign map[string]int

	// drainMu orders enqueues against Drain: Do holds the read side
	// across its draining check and channel send, Drain takes the write
	// side to flip draining before closing the queues, so a send on a
	// closed channel is impossible. Blocked enqueues cannot deadlock
	// Drain — the workers keep consuming until the channels close, so
	// every blocked send completes and releases the read lock.
	drainMu  sync.RWMutex
	draining bool
	wg       sync.WaitGroup
}

// worker is one resident evaluation goroutine and its bounded queue.
type worker struct {
	tasks    chan func()
	assigned atomic.Int64  // instances routed here (for least-assigned placement)
	executed atomic.Uint64 // tasks completed
}

// NewRouter starts n resident workers (n <= 0 means GOMAXPROCS) with
// per-worker queues of depth queueDepth (<= 0 means DefaultQueueDepth).
func NewRouter(n, queueDepth int) *Router {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	r := &Router{
		workers: make([]*worker, n),
		assign:  make(map[string]int),
	}
	r.wg.Add(n)
	for i := range r.workers {
		w := &worker{tasks: make(chan func(), queueDepth)}
		r.workers[i] = w
		go func() {
			defer r.wg.Done()
			for fn := range w.tasks {
				fn()
				w.executed.Add(1)
			}
		}()
	}
	return r
}

// WorkerFor returns the sticky worker index for the named instance,
// assigning the least-loaded worker on first touch. The assignment
// never changes for the lifetime of the router — that stability is the
// cross-request memo-affinity contract `cqa serve` is built on.
func (r *Router) WorkerFor(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.assign[name]; ok {
		return id
	}
	best := 0
	for i := range r.workers {
		if r.workers[i].assigned.Load() < r.workers[best].assigned.Load() {
			best = i
		}
	}
	r.workers[best].assigned.Add(1)
	r.assign[name] = best
	return best
}

// Do runs fn on the named instance's resident worker and waits for it
// to finish. Enqueueing blocks when the worker's queue is full — the
// per-connection backpressure bound — and respects ctx while blocked;
// once enqueued, fn always runs (it should itself observe ctx for a
// fast exit) and Do returns after it completes, so callers may safely
// use state fn wrote. After Drain has begun Do fails with ErrDraining.
func (r *Router) Do(ctx context.Context, name string, fn func()) error {
	w := r.workers[r.WorkerFor(name)]
	done := make(chan struct{})
	wrapped := func() {
		defer close(done)
		fn()
	}
	r.drainMu.RLock()
	if r.draining {
		r.drainMu.RUnlock()
		return ErrDraining
	}
	select {
	case w.tasks <- wrapped:
		r.drainMu.RUnlock()
	case <-ctx.Done():
		r.drainMu.RUnlock()
		return ctx.Err()
	}
	<-done
	return nil
}

// Drain stops accepting new work, waits for every queued task to
// finish, and stops the workers. Idempotent; concurrent Do calls
// either enqueue before the cutover (their task completes before Drain
// returns) or get ErrDraining.
func (r *Router) Drain() {
	r.drainMu.Lock()
	already := r.draining
	r.draining = true
	r.drainMu.Unlock()
	if !already {
		for _, w := range r.workers {
			close(w.tasks)
		}
	}
	r.wg.Wait()
}

// WorkerStats is one resident worker's live counters.
type WorkerStats struct {
	// Queued is the current queue depth (tasks waiting, not the one
	// executing); Executed counts tasks completed since start.
	Queued    int    `json:"queued"`
	Executed  uint64 `json:"executed"`
	Instances int64  `json:"instances"`
}

// RouterStats is the router section of /metrics: per-worker queue
// depths and the sticky assignment table, which the serving e2e tests
// read to assert that routing stayed stable across batch boundaries.
type RouterStats struct {
	Workers     []WorkerStats  `json:"workers"`
	Assignments map[string]int `json:"assignments"`
}

// Stats snapshots the router counters.
func (r *Router) Stats() RouterStats {
	s := RouterStats{
		Workers:     make([]WorkerStats, len(r.workers)),
		Assignments: make(map[string]int),
	}
	for i, w := range r.workers {
		s.Workers[i] = WorkerStats{
			Queued:    len(w.tasks),
			Executed:  w.executed.Load(),
			Instances: w.assigned.Load(),
		}
	}
	r.mu.Lock()
	for name, id := range r.assign {
		s.Assignments[name] = id
	}
	r.mu.Unlock()
	return s
}

// names returns the assigned instance names, sorted (test helper).
func (s RouterStats) names() []string {
	out := make([]string, 0, len(s.Assignments))
	for name := range s.Assignments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
