// Package server is the resident serving daemon behind `cqa serve`: a
// long-lived HTTP/NDJSON front end over a cqa.Registry of named
// instances, with a persistent shard router that pins every instance to
// one resident worker for the lifetime of the process.
//
// The router is the piece that makes residency pay. The engine's
// CertainBatch already shards one batch snapshot-affinely, but a batch
// is a single call: at every chunk boundary of a streamed workload the
// affinity resets, and two concurrent connections touching the same
// instance race each other into the per-snapshot tier memos. The
// router's instance→worker assignment is created on first touch
// (least-assigned worker wins) and then never moves, so every
// operation on a named instance — query, batch chunk, mutation —
// executes on the same goroutine end-to-end: decisions against one
// snapshot run consecutively (warm memo hits), a mutation is followed
// on the same worker by the lineage repair of its own memo entry, and
// the per-worker queues give the daemon bounded admission instead of
// unbounded goroutine fan-out.
//
// # Admission control
//
// The router runs two lanes. The fast lane is the sticky per-instance
// workers above, sized for warm PTIME/NL decisions that finish in
// micro-seconds. The heavy lane is a separate, smaller pool fed by one
// shared queue, onto which the server routes coNP/SAT-bound requests —
// classification already tells the tier at compile time, and a hard
// SAT decision is ~1000x a warm lookup, so letting it queue behind
// warm work (or occupy a sticky worker) would stall an entire
// instance's stream. Both lanes reject instead of blocking when their
// queue is full (ErrOverloaded → HTTP 429), and both check the
// request's context at dequeue time: a request whose deadline expired
// while it sat in the queue is shed with ErrExpiredInQueue without
// ever being evaluated. A panicking request is recovered at the worker
// boundary and answered with ErrWorkerPanic; the worker, the instance,
// and the daemon stay alive.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cqa/internal/faultinject"
)

// Router errors. ErrExpiredInQueue wraps the request context's error,
// so errors.Is(err, context.DeadlineExceeded) still holds for shed
// requests.
var (
	// ErrDraining is returned by Do/DoHeavy once Drain has begun.
	ErrDraining = errors.New("server: router draining")
	// ErrOverloaded is returned when a lane's queue is full: the request
	// was rejected immediately, never enqueued (HTTP 429 + Retry-After).
	ErrOverloaded = errors.New("server: overloaded, lane queue full")
	// ErrExpiredInQueue is returned for a request whose context expired
	// while it was still queued; the request was never evaluated.
	ErrExpiredInQueue = errors.New("server: deadline expired while queued")
	// ErrWorkerPanic is returned for a request that panicked during
	// evaluation; the panic was recovered at the worker boundary.
	ErrWorkerPanic = errors.New("server: request panicked")
)

// DefaultQueueDepth bounds each fast-lane worker's task queue when
// Config leaves it zero: deep enough to absorb a burst of chunked batch
// submissions, shallow enough that a saturated worker sheds load
// (ErrOverloaded) instead of buffering unbounded work.
const DefaultQueueDepth = 64

// Router is the persistent shard router: a fixed pool of resident
// fast-lane workers with a sticky instance→worker assignment, plus a
// bounded heavy lane for coNP/SAT-bound requests. Safe for concurrent
// use.
type Router struct {
	workers []*worker

	// heavyTasks feeds the heavy-lane pool; heavyWorkers is its size and
	// heavyExecuted counts tasks it completed.
	heavyTasks    chan func()
	heavyWorkers  int
	heavyExecuted atomic.Uint64

	// Admission counters: rejected (queue full, never enqueued), shed
	// (context expired while queued, never evaluated), panics (recovered
	// at a worker boundary).
	rejected atomic.Uint64
	shed     atomic.Uint64
	panics   atomic.Uint64

	mu     sync.Mutex
	assign map[string]int

	// drainMu orders enqueues against Drain: submit holds the read side
	// across its draining check and channel send, Drain takes the write
	// side to flip draining before closing the queues, so a send on a
	// closed channel is impossible.
	drainMu  sync.RWMutex
	draining bool
	wg       sync.WaitGroup
}

// worker is one resident fast-lane goroutine and its bounded queue.
type worker struct {
	tasks    chan func()
	assigned atomic.Int64  // instances routed here (for least-assigned placement)
	executed atomic.Uint64 // tasks completed
}

// NewRouter starts n fast-lane workers (n <= 0 means GOMAXPROCS) with
// per-worker queues of depth queueDepth (<= 0 means DefaultQueueDepth),
// plus heavyWorkers heavy-lane workers (<= 0 means max(1, n/4)) sharing
// one queue of depth heavyQueueDepth (<= 0 means queueDepth).
func NewRouter(n, queueDepth, heavyWorkers, heavyQueueDepth int) *Router {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	if heavyWorkers <= 0 {
		heavyWorkers = n / 4
		if heavyWorkers < 1 {
			heavyWorkers = 1
		}
	}
	if heavyQueueDepth <= 0 {
		heavyQueueDepth = queueDepth
	}
	r := &Router{
		workers:      make([]*worker, n),
		heavyTasks:   make(chan func(), heavyQueueDepth),
		heavyWorkers: heavyWorkers,
		assign:       make(map[string]int),
	}
	r.wg.Add(n)
	for i := range r.workers {
		w := &worker{tasks: make(chan func(), queueDepth)}
		r.workers[i] = w
		go func() {
			defer r.wg.Done()
			for fn := range w.tasks {
				fn()
				w.executed.Add(1)
			}
		}()
	}
	r.wg.Add(heavyWorkers)
	for i := 0; i < heavyWorkers; i++ {
		go func() {
			defer r.wg.Done()
			for fn := range r.heavyTasks {
				fn()
				r.heavyExecuted.Add(1)
			}
		}()
	}
	return r
}

// WorkerFor returns the sticky worker index for the named instance,
// assigning the least-loaded worker on first touch. The assignment
// never changes for the lifetime of the router — that stability is the
// cross-request memo-affinity contract `cqa serve` is built on.
func (r *Router) WorkerFor(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.assign[name]; ok {
		return id
	}
	best := 0
	for i := range r.workers {
		if r.workers[i].assigned.Load() < r.workers[best].assigned.Load() {
			best = i
		}
	}
	r.workers[best].assigned.Add(1)
	r.assign[name] = best
	return best
}

// Do runs fn on the named instance's resident fast-lane worker and
// waits for it to finish. A full worker queue rejects immediately with
// ErrOverloaded — the request is never enqueued and the connection is
// never blocked. Once enqueued, fn runs unless ctx expires first: an
// expired request is shed at dequeue with ErrExpiredInQueue, without
// fn ever running. A panic inside fn is recovered at the worker
// boundary and returned as ErrWorkerPanic; on a nil error return,
// fn has completed and callers may safely use state it wrote. After
// Drain has begun Do fails with ErrDraining.
func (r *Router) Do(ctx context.Context, name string, fn func()) error {
	return r.submit(ctx, r.workers[r.WorkerFor(name)].tasks, fn)
}

// DoHeavy runs fn on the shared heavy lane — the bounded pool the
// server routes coNP/SAT-bound requests onto so they cannot stall the
// sticky fast-lane workers. Same admission contract as Do.
func (r *Router) DoHeavy(ctx context.Context, fn func()) error {
	return r.submit(ctx, r.heavyTasks, fn)
}

// submit implements both lanes' admission protocol: non-blocking
// enqueue (full queue → ErrOverloaded), deadline check at dequeue
// (expired → shed, fn never runs), recover() around fn (panic →
// ErrWorkerPanic, worker survives).
func (r *Router) submit(ctx context.Context, queue chan<- func(), fn func()) error {
	// Chaos failpoint: a fault here models losing the request between
	// the connection goroutine and the lane (per-request error, nothing
	// enqueued).
	if err := faultinject.Fire(faultinject.RouterHandoff); err != nil {
		return err
	}
	done := make(chan struct{})
	var taskErr error
	wrapped := func() {
		defer close(done)
		if err := ctx.Err(); err != nil {
			// Deadline-aware queueing: the deadline expired while this
			// request sat in the queue. Answer it without evaluating —
			// no memo hit, no cold build, no stats attributed.
			r.shed.Add(1)
			taskErr = fmt.Errorf("%w: %w", ErrExpiredInQueue, err)
			return
		}
		defer func() {
			if p := recover(); p != nil {
				r.panics.Add(1)
				taskErr = fmt.Errorf("%w: %v", ErrWorkerPanic, p)
			}
		}()
		fn()
	}
	r.drainMu.RLock()
	if r.draining {
		r.drainMu.RUnlock()
		return ErrDraining
	}
	select {
	case queue <- wrapped:
		r.drainMu.RUnlock()
	default:
		r.drainMu.RUnlock()
		r.rejected.Add(1)
		return ErrOverloaded
	}
	<-done
	return taskErr
}

// Drain stops accepting new work, waits for every queued task to
// finish, and stops the workers of both lanes. Idempotent; concurrent
// submissions either enqueue before the cutover (their task completes
// before Drain returns) or get ErrDraining. Drain never deadlocks
// against a saturated lane: enqueues are non-blocking, so no producer
// can be parked on a queue the workers are draining.
func (r *Router) Drain() {
	r.drainMu.Lock()
	already := r.draining
	r.draining = true
	r.drainMu.Unlock()
	if !already {
		for _, w := range r.workers {
			close(w.tasks)
		}
		close(r.heavyTasks)
	}
	r.wg.Wait()
}

// InFlight returns the number of tasks currently queued across both
// lanes — what a drain timeout abandons, logged by `cqa serve` on a
// failed shutdown.
func (r *Router) InFlight() int {
	n := len(r.heavyTasks)
	for _, w := range r.workers {
		n += len(w.tasks)
	}
	return n
}

// WorkerStats is one resident worker's live counters.
type WorkerStats struct {
	// Queued is the current queue depth (tasks waiting, not the one
	// executing); Executed counts tasks completed since start.
	Queued    int    `json:"queued"`
	Executed  uint64 `json:"executed"`
	Instances int64  `json:"instances"`
}

// LaneStats is the heavy lane's live counters.
type LaneStats struct {
	Workers  int    `json:"workers"`
	Queued   int    `json:"queued"`
	Executed uint64 `json:"executed"`
}

// RouterStats is the router section of /metrics: per-worker queue
// depths, the sticky assignment table (which the serving e2e tests
// read to assert that routing stayed stable across batch boundaries),
// the heavy lane, and the admission counters.
type RouterStats struct {
	Workers     []WorkerStats  `json:"workers"`
	Assignments map[string]int `json:"assignments"`
	Heavy       LaneStats      `json:"heavy"`
	// Rejected counts requests refused with ErrOverloaded (full lane
	// queue, never enqueued); Shed counts requests whose deadline
	// expired while queued (never evaluated); Panics counts panicking
	// requests recovered at a worker boundary.
	Rejected uint64 `json:"rejected"`
	Shed     uint64 `json:"shed"`
	Panics   uint64 `json:"panics"`
}

// Stats snapshots the router counters.
func (r *Router) Stats() RouterStats {
	s := RouterStats{
		Workers:     make([]WorkerStats, len(r.workers)),
		Assignments: make(map[string]int),
		Heavy: LaneStats{
			Workers:  r.heavyWorkers,
			Queued:   len(r.heavyTasks),
			Executed: r.heavyExecuted.Load(),
		},
		Rejected: r.rejected.Load(),
		Shed:     r.shed.Load(),
		Panics:   r.panics.Load(),
	}
	for i, w := range r.workers {
		s.Workers[i] = WorkerStats{
			Queued:    len(w.tasks),
			Executed:  w.executed.Load(),
			Instances: w.assigned.Load(),
		}
	}
	r.mu.Lock()
	for name, id := range r.assign {
		s.Assignments[name] = id
	}
	r.mu.Unlock()
	return s
}

// names returns the assigned instance names, sorted (test helper).
func (s RouterStats) names() []string {
	out := make([]string, 0, len(s.Assignments))
	for name := range s.Assignments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
