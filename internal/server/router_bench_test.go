package server

import (
	"context"
	"sync"
	"testing"
)

// BenchmarkLaneIsolation measures a fast-lane round trip (submit →
// sticky worker → execute → reply) with the heavy lane quiet versus
// saturated. The heavy worker is parked on a blocking task and its
// queue filled to capacity, so the saturated variant costs no extra
// CPU: any slowdown is lane coupling — a shared queue, a shared lock
// on the submit path — which is exactly what the two-lane design
// promises away. The benchgate ratio gate heavy-lane-isolation bounds
// saturated/quiet at 1.5x; a merged or lock-coupled lane would blow
// through it by orders of magnitude (fast requests stuck behind, or
// rejected with, heavy work).
func BenchmarkLaneIsolation(b *testing.B) {
	fastLoop := func(b *testing.B, r *Router) {
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := r.Do(ctx, "db0", func() {}); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("quiet", func(b *testing.B) {
		r := NewRouter(2, 0, 1, 8)
		defer r.Drain()
		fastLoop(b, r)
	})

	b.Run("saturated", func(b *testing.B) {
		r := NewRouter(2, 0, 1, 8)
		// Park the heavy worker and fill its queue to capacity: the
		// heavy lane is as overloaded as it can be for the whole
		// measurement, and one more DoHeavy would be rejected.
		release := make(chan struct{})
		started := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.DoHeavy(context.Background(), func() { close(started); <-release })
		}()
		<-started
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); r.DoHeavy(context.Background(), func() {}) }()
		}
		for r.Stats().Heavy.Queued < 8 {
		}
		fastLoop(b, r)
		b.StopTimer()
		close(release)
		wg.Wait()
		r.Drain()
	})
}
