package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cqa"
	"cqa/internal/faultinject"
)

// Config tunes a Server.
type Config struct {
	// Registry is the instance registry to serve; nil gets a fresh
	// registry over a default-configured engine.
	Registry *cqa.Registry
	// RouterWorkers is the resident fast-lane worker count (0: GOMAXPROCS).
	RouterWorkers int
	// QueueDepth bounds each fast-lane worker's task queue (0:
	// DefaultQueueDepth). A full queue rejects with 429, never blocks.
	QueueDepth int
	// HeavyWorkers sizes the heavy lane, the bounded pool coNP/SAT-bound
	// requests are routed onto (0: max(1, RouterWorkers/4)).
	HeavyWorkers int
	// HeavyQueueDepth bounds the heavy lane's shared queue (0: QueueDepth).
	HeavyQueueDepth int
	// Window bounds how many batch queries one connection may have in
	// flight — read but unanswered — at a time (0: DefaultWindow). A
	// streamed batch is read, evaluated, and answered in Window-sized
	// chunks, so per-connection memory stays constant and a slow
	// consumer backpressures its own producer instead of the daemon.
	Window int
	// MaxLine bounds a request line's length in bytes (0: DefaultMaxLine).
	MaxLine int
	// DefaultTimeout is the per-request deadline applied when a request
	// carries none of its own (0: no default). Clients override it per
	// request with the CQA-Timeout-Ms header (REST, and the per-chunk
	// budget of a batch stream) or a timeout_ms field on an NDJSON
	// batch line. The deadline covers queueing: a request that expires
	// while queued is answered with 504 without being evaluated.
	DefaultTimeout time.Duration
	// MemSoftLimit is the soft heap watermark in bytes (0: disabled).
	// While HeapAlloc exceeds it, the engine's tier memo budgets are
	// scaled down to DegradedMemoScale — decisions degrade to cold
	// builds instead of the process growing toward an OOM kill — and
	// restored once the heap falls below 3/4 of the limit.
	MemSoftLimit int64
	// MemCheckInterval is the watermark sampling period (0:
	// DefaultMemCheckInterval).
	MemCheckInterval time.Duration
}

// DefaultWindow is the per-connection in-flight query bound.
const DefaultWindow = 256

// DefaultMaxLine bounds request lines (facts bodies are not lines and
// are bounded by http.MaxBytesReader instead).
const DefaultMaxLine = 1 << 20

// maxBodyBytes bounds non-streaming request bodies (register, mutate).
const maxBodyBytes = 64 << 20

// TimeoutHeader is the REST per-request deadline header: the number of
// milliseconds the request may spend queued plus evaluating. "0"
// disables the server's default timeout for this request.
const TimeoutHeader = "CQA-Timeout-Ms"

// DegradedMemoScale is the memo-budget scale applied while the heap is
// over the soft watermark.
const DegradedMemoScale = 0.25

// DefaultMemCheckInterval is the watermark sampling period when Config
// leaves it zero.
const DefaultMemCheckInterval = time.Second

// Server is the HTTP front end: a Registry for state, a Router for
// residency and admission. Handlers never evaluate on the connection
// goroutine — every decision and every mutation is submitted to a
// router lane. Warm PTIME/NL decisions ride the sticky fast lane, so
// all work on one instance serializes in arrival order on one
// goroutine, memo-warm; coNP/SAT-bound decisions (the tier is known at
// compile time) are routed onto the bounded heavy lane so a pile-up of
// hard decisions cannot stall warm traffic. Full lanes reject with 429
// + Retry-After instead of blocking the connection.
//
// Endpoints:
//
//	GET    /instances                   list registered instances
//	POST   /instances/{name}            register; body = fact list ("R(0,1) R(1,2) ...")
//	GET    /instances/{name}            instance info
//	DELETE /instances/{name}            drop
//	POST   /instances/{name}/mutate     body = {"add":["R(0,1)",...],"remove":[...]}
//	GET    /instances/{name}/query?q=W  one decision, JSON
//	POST   /instances/{name}/batch      NDJSON/plain query stream in, NDJSON results out
//	GET    /metrics                     unified stats tree, JSON
//	GET    /healthz                     liveness: 200 while the process serves
//	GET    /readyz                      readiness: 200 until drain begins, then 503
type Server struct {
	reg            *cqa.Registry
	router         *Router
	window         int
	maxLine        int
	defaultTimeout time.Duration
	mux            *http.ServeMux

	// ready flips false when Drain begins, turning /readyz into 503 so
	// load balancers stop routing before the listener closes.
	ready atomic.Bool
	// handlerPanics counts panics recovered by the handler middleware —
	// panics on the connection goroutine itself (outside the router
	// lanes), answered with a 500.
	handlerPanics atomic.Uint64

	memStop chan struct{}
	memOnce sync.Once
}

// New builds a Server and starts its resident workers (and, when
// Config.MemSoftLimit is set, the heap watermark watcher). Call Drain
// to stop them.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = cqa.NewRegistry(nil)
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxLine <= 0 {
		cfg.MaxLine = DefaultMaxLine
	}
	if cfg.MemCheckInterval <= 0 {
		cfg.MemCheckInterval = DefaultMemCheckInterval
	}
	s := &Server{
		reg:            cfg.Registry,
		router:         NewRouter(cfg.RouterWorkers, cfg.QueueDepth, cfg.HeavyWorkers, cfg.HeavyQueueDepth),
		window:         cfg.Window,
		maxLine:        cfg.MaxLine,
		defaultTimeout: cfg.DefaultTimeout,
		mux:            http.NewServeMux(),
		memStop:        make(chan struct{}),
	}
	s.ready.Store(true)
	s.mux.HandleFunc("GET /instances", s.handleList)
	s.mux.HandleFunc("POST /instances/{name}", s.handleRegister)
	s.mux.HandleFunc("GET /instances/{name}", s.handleInfo)
	s.mux.HandleFunc("DELETE /instances/{name}", s.handleDrop)
	s.mux.HandleFunc("POST /instances/{name}/mutate", s.handleMutate)
	s.mux.HandleFunc("GET /instances/{name}/query", s.handleQuery)
	s.mux.HandleFunc("POST /instances/{name}/batch", s.handleBatch)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if cfg.MemSoftLimit > 0 {
		go s.watchMemory(cfg.MemSoftLimit, cfg.MemCheckInterval)
	}
	return s
}

// Handler returns the HTTP handler to mount. It wraps the mux in a
// recover() boundary: a panic on the connection goroutine itself —
// e.g. inside an info snapshot, outside the router lanes' own
// recovery — is answered with a 500 instead of silently dropping the
// connection, and counted in Metrics.HandlerPanics.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.handlerPanics.Add(1)
				// Best effort: if the response already started this
				// write fails, which is all a half-written stream can do.
				httpError(w, http.StatusInternalServerError, fmt.Errorf("server: handler panicked: %v", p))
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// Registry returns the served registry.
func (s *Server) Registry() *cqa.Registry { return s.reg }

// Drain gracefully stops the daemon's background work: /readyz flips
// to 503 first (load balancers stop routing), the watermark watcher
// stops, then the router stops accepting (new submissions fail with
// ErrDraining, 503 to clients) and queued work completes. Call after
// http.Server.Shutdown has stopped accepting connections.
func (s *Server) Drain() {
	s.ready.Store(false)
	s.memOnce.Do(func() { close(s.memStop) })
	s.router.Drain()
}

// InFlight returns the number of requests currently queued on the
// router lanes — what an abandoned drain leaves behind.
func (s *Server) InFlight() int { return s.router.InFlight() }

// watchMemory samples the heap against the soft watermark and scales
// the engine's memo budgets: over the limit every tier memo shrinks to
// DegradedMemoScale of its default (re-applied each tick so lazily
// compiled plans are covered), and once the heap falls below 3/4 of
// the limit the defaults are restored.
func (s *Server) watchMemory(limit int64, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	degraded := false
	var ms runtime.MemStats
	for {
		select {
		case <-s.memStop:
			return
		case <-ticker.C:
			runtime.ReadMemStats(&ms)
			heap := int64(ms.HeapAlloc)
			switch {
			case heap > limit:
				degraded = true
				s.reg.Engine().SetMemoScale(DegradedMemoScale)
			case degraded && heap < limit-limit/4:
				degraded = false
				s.reg.Engine().SetMemoScale(1)
			}
		}
	}
}

// heavyQuery reports whether q dispatches to the SAT tier — the
// admission predicate for the heavy lane. Compilation is cached, so on
// the serving steady state this is a plan-cache hit.
func (s *Server) heavyQuery(q cqa.Query) bool {
	return s.reg.Engine().Compile(q).Method() == cqa.MethodSAT
}

// reqTimeout resolves a request's deadline budget: the CQA-Timeout-Ms
// header if present ("0" disables), else the server default (0: none).
func (s *Server) reqTimeout(r *http.Request) (time.Duration, error) {
	h := r.Header.Get(TimeoutHeader)
	if h == "" {
		return s.defaultTimeout, nil
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms < 0 {
		return 0, fmt.Errorf("server: invalid %s header %q", TimeoutHeader, h)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// reqContext derives the request's evaluation context from its
// deadline budget.
func (s *Server) reqContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d, err := s.reqTimeout(r)
	if err != nil {
		return nil, nil, err
	}
	if d <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// httpError writes a JSON error body with the given status. A 429
// carries Retry-After so well-behaved clients back off instead of
// hammering a saturated lane.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// errStatus maps a registry/router error to an HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, cqa.ErrInstanceNotFound):
		return http.StatusNotFound
	case errors.Is(err, cqa.ErrInstanceExists):
		return http.StatusConflict
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrWorkerPanic), errors.Is(err, cqa.ErrPanic):
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		// Includes ErrExpiredInQueue, which wraps it.
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		httpError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.reg.Infos())
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	db, err := cqa.ParseFacts(string(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.reg.Register(name, db); err != nil {
		httpError(w, errStatus(err), err)
		return
	}
	// Touch the router so the assignment exists (and is reported by
	// /metrics) from registration on, not first query.
	s.router.WorkerFor(name)
	info, err := s.reg.Info(name)
	if err != nil {
		httpError(w, errStatus(err), err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, info)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Info(r.PathValue("name"))
	if err != nil {
		httpError(w, errStatus(err), err)
		return
	}
	writeJSON(w, info)
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Drop(name) {
		httpError(w, http.StatusNotFound, fmt.Errorf("%w: %q", cqa.ErrInstanceNotFound, name))
		return
	}
	writeJSON(w, map[string]string{"dropped": name})
}

// mutateRequest is the mutate endpoint's body: fact tokens to add and
// remove, applied atomically as one snapshot step.
type mutateRequest struct {
	Add    []string `json:"add"`
	Remove []string `json:"remove"`
}

func parseFactList(tokens []string) ([]cqa.Fact, error) {
	facts := make([]cqa.Fact, 0, len(tokens))
	for _, tok := range tokens {
		f, err := cqa.ParseFact(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		facts = append(facts, f)
	}
	return facts, nil
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req mutateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var mut cqa.Mutation
	var err error
	if mut.Add, err = parseFactList(req.Add); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if mut.Remove, err = parseFactList(req.Remove); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, err := s.reqContext(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	var info cqa.InstanceInfo
	var mutErr error
	// Mutations always ride the fast lane: the sticky worker is what
	// puts the mutation and the lineage repair of its own memo entry on
	// the same goroutine.
	if doErr := s.router.Do(ctx, name, func() {
		info, mutErr = s.reg.Mutate(name, mut)
	}); doErr != nil {
		httpError(w, errStatus(doErr), doErr)
		return
	}
	if mutErr != nil {
		httpError(w, errStatus(mutErr), mutErr)
		return
	}
	writeJSON(w, info)
}

// queryResponse is one decision on the wire (query and batch).
type queryResponse struct {
	Index   int    `json:"index,omitempty"`
	Query   string `json:"query"`
	Certain *bool  `json:"certain,omitempty"`
	Class   string `json:"class,omitempty"`
	Method  string `json:"method,omitempty"`
	Error   string `json:"error,omitempty"`
}

func responseFor(q string, res cqa.Result, err error) queryResponse {
	resp := queryResponse{Query: q}
	if err == nil {
		err = res.Err
	}
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	certain := res.Certain
	resp.Certain = &certain
	resp.Class = res.Class.String()
	resp.Method = string(res.Method)
	return resp
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	q, err := cqa.ParseQuery(r.URL.Query().Get("q"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, err := s.reqContext(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	var res cqa.Result
	var qErr error
	fn := func() {
		res, qErr = s.reg.Query(ctx, name, q, cqa.Options{})
	}
	var doErr error
	if s.heavyQuery(q) {
		doErr = s.router.DoHeavy(ctx, fn)
	} else {
		doErr = s.router.Do(ctx, name, fn)
	}
	if doErr != nil {
		httpError(w, errStatus(doErr), doErr)
		return
	}
	if qErr != nil {
		httpError(w, errStatus(qErr), qErr)
		return
	}
	writeJSON(w, responseFor(q.String(), res, nil))
}

// batchLine is one NDJSON request line of a batch stream.
type batchLine struct {
	Query string `json:"query"`
	// TimeoutMs is this line's deadline budget in milliseconds, counted
	// from when the line is read: the decision must be answered within
	// it whether the time goes to queueing or evaluating. 0 disables the
	// deadline for this line; absent inherits the request budget (the
	// CQA-Timeout-Ms header, else the server default).
	TimeoutMs *int64 `json:"timeout_ms"`
}

// handleBatch streams decisions: the request body is one query per
// line — either a bare word ("RRX") or NDJSON ({"query":"RRX"}) — and
// the response is NDJSON, one result object per request line, in
// order. The stream is processed in Window-sized chunks; within a
// chunk the lines are partitioned by compiled tier — warm PTIME/NL
// decisions go to the instance's resident fast-lane worker (memo-warm
// across chunks and connections), coNP/SAT-bound lines to the heavy
// lane — and the two sublists evaluate concurrently, merging back in
// input order. A full lane rejects its sublist with per-line
// "overloaded" errors while the other lane's lines still answer; a
// line whose deadline expires while its chunk is queued gets a
// per-line deadline error without being evaluated.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	timeout, err := s.reqTimeout(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// The batch stream answers while the request body is still being
	// read (that is the backpressure: at most Window unanswered lines).
	// HTTP/1.x is half-duplex by default — the first response write
	// closes the request body — so opt in to full duplex; where that is
	// unsupported the error is ignored and short streams (under one
	// window) still work.
	http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	out := bufio.NewWriter(w)
	defer out.Flush()
	enc := json.NewEncoder(out)
	flusher, _ := w.(http.Flusher)

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), s.maxLine)

	index := 0
	var pending []queryResponse // one slot per request line of the chunk
	var items []cqa.BatchItem   // parsed queries + deadlines; slot i maps via qIdx
	var qIdx []int

	flush := func() error {
		if len(items) > 0 {
			cctx := r.Context()
			cancel := context.CancelFunc(func() {})
			if timeout > 0 {
				// The request budget bounds each chunk submission
				// (queueing + evaluation); per-line deadlines refine it.
				cctx, cancel = context.WithTimeout(r.Context(), timeout)
			}
			results := make([]cqa.Result, len(items))
			errs := make([]error, len(items))
			run := func(idxs []int, heavy bool) {
				if len(idxs) == 0 {
					return
				}
				sub := make([]cqa.BatchItem, len(idxs))
				for j, i := range idxs {
					sub[j] = items[i]
				}
				var res []cqa.Result
				var batchErr error
				fn := func() {
					res, batchErr = s.reg.QueryBatchItems(cctx, name, sub, cqa.Options{})
				}
				var doErr error
				if heavy {
					doErr = s.router.DoHeavy(cctx, fn)
				} else {
					doErr = s.router.Do(cctx, name, fn)
				}
				for j, i := range idxs {
					switch {
					case doErr != nil:
						errs[i] = doErr
					case j < len(res):
						results[i] = res[j]
					case batchErr != nil:
						errs[i] = batchErr
					default:
						errs[i] = errors.New("server: decision missing")
					}
				}
			}
			var fastIdx, heavyIdx []int
			for i, it := range items {
				if s.heavyQuery(it.Query) {
					heavyIdx = append(heavyIdx, i)
				} else {
					fastIdx = append(fastIdx, i)
				}
			}
			if len(fastIdx) > 0 && len(heavyIdx) > 0 {
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					run(heavyIdx, true)
				}()
				run(fastIdx, false)
				wg.Wait()
			} else {
				run(fastIdx, false)
				run(heavyIdx, true)
			}
			cancel()
			for i := range pending {
				k := qIdx[i]
				if k < 0 {
					continue // parse error already recorded
				}
				idx := pending[i].Index
				if errs[k] != nil {
					pending[i].Error = errs[k].Error()
				} else {
					pending[i] = responseFor(pending[i].Query, results[k], nil)
					pending[i].Index = idx
				}
			}
		}
		// Chaos failpoint: an injected fault here models the client
		// connection dying mid-response; the stream aborts like any
		// failed write.
		if err := faultinject.Fire(faultinject.ServerWrite); err != nil {
			return err
		}
		for _, resp := range pending {
			if err := enc.Encode(resp); err != nil {
				return err
			}
		}
		pending, items, qIdx = pending[:0], items[:0], qIdx[:0]
		if err := out.Flush(); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		index++
		qs := line
		d := timeout
		if strings.HasPrefix(line, "{") {
			var bl batchLine
			if err := json.Unmarshal([]byte(line), &bl); err != nil {
				pending = append(pending, queryResponse{Index: index, Error: err.Error()})
				qIdx = append(qIdx, -1)
				if len(pending) >= s.window {
					if flush() != nil {
						return
					}
				}
				continue
			}
			qs = bl.Query
			if bl.TimeoutMs != nil {
				d = time.Duration(*bl.TimeoutMs) * time.Millisecond
			}
		}
		resp := queryResponse{Index: index, Query: qs}
		if q, err := cqa.ParseQuery(qs); err != nil {
			resp.Error = err.Error()
			qIdx = append(qIdx, -1)
		} else {
			it := cqa.BatchItem{Query: q}
			if d > 0 {
				// The line's deadline clock starts when the line is read,
				// so time spent buffered in the chunk or queued on a lane
				// counts against it.
				it.Deadline = time.Now().Add(d)
			}
			qIdx = append(qIdx, len(items))
			items = append(items, it)
		}
		pending = append(pending, resp)
		if len(pending) >= s.window {
			if flush() != nil {
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		pending = append(pending, queryResponse{Error: err.Error()})
		qIdx = append(qIdx, -1)
	}
	flush()
}
