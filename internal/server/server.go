package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"cqa"
)

// Config tunes a Server.
type Config struct {
	// Registry is the instance registry to serve; nil gets a fresh
	// registry over a default-configured engine.
	Registry *cqa.Registry
	// RouterWorkers is the resident worker count (0: GOMAXPROCS).
	RouterWorkers int
	// QueueDepth bounds each worker's task queue (0: DefaultQueueDepth).
	QueueDepth int
	// Window bounds how many batch queries one connection may have in
	// flight — read but unanswered — at a time (0: DefaultWindow). A
	// streamed batch is read, evaluated, and answered in Window-sized
	// chunks, so per-connection memory stays constant and a slow
	// consumer backpressures its own producer instead of the daemon.
	Window int
	// MaxLine bounds a request line's length in bytes (0: DefaultMaxLine).
	MaxLine int
}

// DefaultWindow is the per-connection in-flight query bound.
const DefaultWindow = 256

// DefaultMaxLine bounds request lines (facts bodies are not lines and
// are bounded by http.MaxBytesReader instead).
const DefaultMaxLine = 1 << 20

// maxBodyBytes bounds non-streaming request bodies (register, mutate).
const maxBodyBytes = 64 << 20

// Server is the HTTP front end: a Registry for state, a Router for
// residency. Handlers never evaluate on the connection goroutine —
// every decision and every mutation is submitted to the named
// instance's resident worker, so all work on one instance serializes
// in arrival order on one goroutine, memo-warm.
//
// Endpoints:
//
//	GET    /instances                   list registered instances
//	POST   /instances/{name}            register; body = fact list ("R(0,1) R(1,2) ...")
//	GET    /instances/{name}            instance info
//	DELETE /instances/{name}            drop
//	POST   /instances/{name}/mutate     body = {"add":["R(0,1)",...],"remove":[...]}
//	GET    /instances/{name}/query?q=W  one decision, JSON
//	POST   /instances/{name}/batch      NDJSON/plain query stream in, NDJSON results out
//	GET    /metrics                     unified stats tree, JSON
type Server struct {
	reg     *cqa.Registry
	router  *Router
	window  int
	maxLine int
	mux     *http.ServeMux
}

// New builds a Server and starts its resident workers. Call Drain to
// stop them.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = cqa.NewRegistry(nil)
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxLine <= 0 {
		cfg.MaxLine = DefaultMaxLine
	}
	s := &Server{
		reg:     cfg.Registry,
		router:  NewRouter(cfg.RouterWorkers, cfg.QueueDepth),
		window:  cfg.Window,
		maxLine: cfg.MaxLine,
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /instances", s.handleList)
	s.mux.HandleFunc("POST /instances/{name}", s.handleRegister)
	s.mux.HandleFunc("GET /instances/{name}", s.handleInfo)
	s.mux.HandleFunc("DELETE /instances/{name}", s.handleDrop)
	s.mux.HandleFunc("POST /instances/{name}/mutate", s.handleMutate)
	s.mux.HandleFunc("GET /instances/{name}/query", s.handleQuery)
	s.mux.HandleFunc("POST /instances/{name}/batch", s.handleBatch)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler to mount.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the served registry.
func (s *Server) Registry() *cqa.Registry { return s.reg }

// Drain gracefully stops the resident workers: new submissions fail
// with ErrDraining (503 to clients), queued work completes. Call after
// http.Server.Shutdown has stopped accepting connections.
func (s *Server) Drain() { s.router.Drain() }

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// errStatus maps a registry/router error to an HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, cqa.ErrInstanceNotFound):
		return http.StatusNotFound
	case errors.Is(err, cqa.ErrInstanceExists):
		return http.StatusConflict
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499 // client closed request
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.reg.Infos())
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	db, err := cqa.ParseFacts(string(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.reg.Register(name, db); err != nil {
		httpError(w, errStatus(err), err)
		return
	}
	// Touch the router so the assignment exists (and is reported by
	// /metrics) from registration on, not first query.
	s.router.WorkerFor(name)
	info, err := s.reg.Info(name)
	if err != nil {
		httpError(w, errStatus(err), err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, info)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Info(r.PathValue("name"))
	if err != nil {
		httpError(w, errStatus(err), err)
		return
	}
	writeJSON(w, info)
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Drop(name) {
		httpError(w, http.StatusNotFound, fmt.Errorf("%w: %q", cqa.ErrInstanceNotFound, name))
		return
	}
	writeJSON(w, map[string]string{"dropped": name})
}

// mutateRequest is the mutate endpoint's body: fact tokens to add and
// remove, applied atomically as one snapshot step.
type mutateRequest struct {
	Add    []string `json:"add"`
	Remove []string `json:"remove"`
}

func parseFactList(tokens []string) ([]cqa.Fact, error) {
	facts := make([]cqa.Fact, 0, len(tokens))
	for _, tok := range tokens {
		f, err := cqa.ParseFact(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		facts = append(facts, f)
	}
	return facts, nil
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req mutateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var mut cqa.Mutation
	var err error
	if mut.Add, err = parseFactList(req.Add); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if mut.Remove, err = parseFactList(req.Remove); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var info cqa.InstanceInfo
	var mutErr error
	if doErr := s.router.Do(r.Context(), name, func() {
		info, mutErr = s.reg.Mutate(name, mut)
	}); doErr != nil {
		httpError(w, errStatus(doErr), doErr)
		return
	}
	if mutErr != nil {
		httpError(w, errStatus(mutErr), mutErr)
		return
	}
	writeJSON(w, info)
}

// queryResponse is one decision on the wire (query and batch).
type queryResponse struct {
	Index   int    `json:"index,omitempty"`
	Query   string `json:"query"`
	Certain *bool  `json:"certain,omitempty"`
	Class   string `json:"class,omitempty"`
	Method  string `json:"method,omitempty"`
	Error   string `json:"error,omitempty"`
}

func responseFor(q string, res cqa.Result, err error) queryResponse {
	resp := queryResponse{Query: q}
	if err == nil {
		err = res.Err
	}
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	certain := res.Certain
	resp.Certain = &certain
	resp.Class = res.Class.String()
	resp.Method = string(res.Method)
	return resp
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	q, err := cqa.ParseQuery(r.URL.Query().Get("q"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var res cqa.Result
	var qErr error
	if doErr := s.router.Do(r.Context(), name, func() {
		res, qErr = s.reg.Query(r.Context(), name, q, cqa.Options{})
	}); doErr != nil {
		httpError(w, errStatus(doErr), doErr)
		return
	}
	if qErr != nil {
		httpError(w, errStatus(qErr), qErr)
		return
	}
	writeJSON(w, responseFor(q.String(), res, nil))
}

// batchLine is one NDJSON request line of a batch stream.
type batchLine struct {
	Query string `json:"query"`
}

// handleBatch streams decisions: the request body is one query per
// line — either a bare word ("RRX") or NDJSON ({"query":"RRX"}) — and
// the response is NDJSON, one result object per request line, in
// order. The stream is processed in Window-sized chunks; each chunk is
// one submission to the instance's resident worker, so consecutive
// chunks of one connection (and every other connection to the same
// instance) evaluate on the same goroutine, against the same warm
// memos, no matter how long the stream runs.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// The batch stream answers while the request body is still being
	// read (that is the backpressure: at most Window unanswered lines).
	// HTTP/1.x is half-duplex by default — the first response write
	// closes the request body — so opt in to full duplex; where that is
	// unsupported the error is ignored and short streams (under one
	// window) still work.
	http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	out := bufio.NewWriter(w)
	defer out.Flush()
	enc := json.NewEncoder(out)
	flusher, _ := w.(http.Flusher)

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), s.maxLine)

	index := 0
	var pending []queryResponse // one slot per request line of the chunk
	var queries []cqa.Query     // parsed queries; slot i of a chunk maps via qIdx
	var qIdx []int

	flush := func() error {
		if len(queries) > 0 {
			var results []cqa.Result
			var batchErr error
			if doErr := s.router.Do(r.Context(), name, func() {
				results, batchErr = s.reg.QueryBatch(r.Context(), name, queries, cqa.Options{})
			}); doErr != nil {
				batchErr = doErr
			}
			for i := range pending {
				if qIdx[i] < 0 {
					continue // parse error already recorded
				}
				switch {
				case qIdx[i] < len(results):
					idx := pending[i].Index
					pending[i] = responseFor(pending[i].Query, results[qIdx[i]], nil)
					pending[i].Index = idx
				case batchErr != nil:
					pending[i].Error = batchErr.Error()
				default:
					pending[i].Error = "server: decision missing"
				}
			}
		}
		for _, resp := range pending {
			if err := enc.Encode(resp); err != nil {
				return err
			}
		}
		pending, queries, qIdx = pending[:0], queries[:0], qIdx[:0]
		if err := out.Flush(); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		index++
		qs := line
		if strings.HasPrefix(line, "{") {
			var bl batchLine
			if err := json.Unmarshal([]byte(line), &bl); err != nil {
				pending = append(pending, queryResponse{Index: index, Error: err.Error()})
				qIdx = append(qIdx, -1)
				if len(pending) >= s.window {
					if flush() != nil {
						return
					}
				}
				continue
			}
			qs = bl.Query
		}
		resp := queryResponse{Index: index, Query: qs}
		if q, err := cqa.ParseQuery(qs); err != nil {
			resp.Error = err.Error()
			qIdx = append(qIdx, -1)
		} else {
			qIdx = append(qIdx, len(queries))
			queries = append(queries, q)
		}
		pending = append(pending, resp)
		if len(pending) >= s.window {
			if flush() != nil {
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		pending = append(pending, queryResponse{Error: err.Error()})
		qIdx = append(qIdx, -1)
	}
	flush()
}
