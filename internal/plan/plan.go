// Package plan compiles path queries into immutable execution plans.
//
// The tetrachotomy of the paper makes classification polynomial in |q|,
// but classification — and the tier-specific machinery behind each
// solver — is still wasted work when the same query is evaluated over
// many instances. Compile runs the classification of Theorem 3 once and
// precomputes the artifacts of the dispatched tier:
//
//   - FO (condition C1): the consistent first-order rewriting of
//     Lemma 13;
//   - NL (condition C2): the certified loop decomposition of
//     Section 6.3 together with the compiled fixpoint sub-solvers for
//     its sub-words (nl.Evaluator);
//   - PTIME (condition C3): the Figure 5 fixpoint machinery — NFA(q)
//     and its backward ε-transition table (fixpoint.Compiled);
//   - coNP: the SAT clause skeleton of conp.Compiled (per-position
//     relations and the z-chain ladder shape), whose instance-bound CNF
//     is then memoized per interned snapshot.
//
// Artifacts for non-default tiers (a forced method, or the fixpoint
// fallback when no certified NL decomposition exists) are compiled
// lazily and memoized. A Plan is immutable after Compile and safe for
// concurrent use by any number of goroutines, which is what makes the
// cqa.Engine plan cache and its concurrent batch evaluator sound.
package plan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cqa/internal/classify"
	"cqa/internal/conp"
	"cqa/internal/fixpoint"
	"cqa/internal/fo"
	"cqa/internal/instance"
	"cqa/internal/memo"
	"cqa/internal/nl"
	"cqa/internal/repairs"
	"cqa/internal/words"
)

// Method identifies the solver tier used for a decision.
type Method string

// Solver tiers.
const (
	MethodFO         Method = "fo-rewriting"
	MethodNL         Method = "nl-loop"
	MethodFixpoint   Method = "ptime-fixpoint"
	MethodSAT        Method = "conp-sat"
	MethodExhaustive Method = "exhaustive"
)

// ErrUnsoundMethod is returned when a forced method does not cover the
// query's complexity class.
var ErrUnsoundMethod = errors.New("cqa: forced method is unsound for this query class")

// Result is the outcome of a certainty decision.
type Result struct {
	Certain bool
	Class   classify.Class
	Method  Method
	// Witness is a constant c such that every repair has a q-path
	// starting at c (set on yes-instances decided by the fixpoint
	// tier).
	Witness string
	// Counterexample is a repair falsifying q, built only when
	// Options.WantCounterexample is set: the fixpoint tier's Lemma 10
	// minimal repair and the SAT tier's model decode both materialize a
	// string-keyed instance, which would dominate warm no-instance
	// decisions on serving paths. The exhaustive tier still produces one
	// as a byproduct.
	Counterexample *instance.Instance
	// Note carries diagnostic detail, e.g. the NL decomposition or a
	// fallback reason.
	Note string
	// Err is set instead of a decision on requests that could not be
	// evaluated: an unsound forced method, or a batch item abandoned
	// because its context was cancelled.
	Err error
}

// Options tunes Execute.
type Options struct {
	// Force selects a specific tier instead of dispatching on the
	// class. Forcing a tier that is unsound for the query's class
	// (e.g. FO rewriting for a coNP query) returns an error.
	Force Method
	// WantCounterexample asks for a counterexample repair on
	// no-instances even when the chosen tier does not produce one as a
	// byproduct.
	WantCounterexample bool
	// SolveWorkers and ParallelThreshold tune intra-query parallelism
	// for the interned tiers (fixpoint and NL): instances with at least
	// ParallelThreshold facts solve on SolveWorkers partitioned shards.
	// The zero values keep every decision on the single-core path; the
	// engine substitutes its configured defaults before dispatch. See
	// fixpoint.SolveOptions.
	SolveWorkers      int
	ParallelThreshold int
}

// solveOptions projects the parallelism knobs for the fixpoint/NL
// solvers.
func (o Options) solveOptions() fixpoint.SolveOptions {
	return fixpoint.SolveOptions{Workers: o.SolveWorkers, Threshold: o.ParallelThreshold}
}

// Plan is the compiled form of CERTAINTY(q) for one path query q:
// classification plus the precomputed tier artifacts. Plans are
// immutable and safe for concurrent use.
type Plan struct {
	word   words.Word
	report classify.Report
	method Method // default dispatch tier

	// foFormula is the Lemma 13 rewriting ∃x ψ(x), set iff the class
	// is FO.
	foFormula fo.Formula

	// nlEval is the compiled NL evaluator; nlErr records why it is
	// unavailable (not C2, or no certified decomposition → fixpoint
	// fallback). Lazily built unless NL is the default tier. nlNote is
	// the decomposition rendered once at compile time — the NL tier's
	// per-call work is interned and allocation-light, so rebuilding the
	// diagnostic string per Execute would dominate it.
	nlOnce  sync.Once
	nlBuilt atomic.Bool
	nlEval  *nl.Evaluator
	nlErr   error
	nlNote  string

	// fp is the compiled Figure 5 machinery, shared by the PTIME tier,
	// the NL fallback, and forced ptime-fixpoint runs. Lazily built
	// unless it is the default tier.
	fpOnce  sync.Once
	fpBuilt atomic.Bool
	fp      *fixpoint.Compiled

	// satC is the compiled SAT tier: the query-side clause skeleton plus
	// the per-snapshot CNF memo. Lazily built unless SAT is the default
	// tier (it also serves WantCounterexample requests from tiers that
	// produce no counterexample of their own).
	satOnce  sync.Once
	satBuilt atomic.Bool
	satC     *conp.Compiled
}

// Compile classifies q and precomputes the artifacts of its default
// solver tier.
func Compile(w words.Word) *Plan {
	p := &Plan{word: w.Clone(), report: classify.Explain(w)}
	switch p.report.Class {
	case classify.FO:
		p.method = MethodFO
		p.foFormula = fo.RewriteCertain(p.word)
	case classify.NL:
		p.method = MethodNL
		if _, err := p.evaluator(); err != nil {
			// No certified decomposition: the plan's real tier is the
			// fixpoint fallback, so compile it now.
			p.fixpoint()
		}
	case classify.PTime:
		p.method = MethodFixpoint
		p.fixpoint()
	default:
		p.method = MethodSAT
		p.conp()
	}
	return p
}

// Word returns the compiled query word.
func (p *Plan) Word() words.Word { return p.word.Clone() }

// Class returns the complexity class of CERTAINTY(q).
func (p *Plan) Class() classify.Class { return p.report.Class }

// Report returns the full classification report computed at compile
// time.
func (p *Plan) Report() classify.Report { return p.report }

// Method returns the solver tier the plan effectively dispatches to.
// For an NL-class query with no certified decomposition this is the
// fixpoint fallback, matching the Method field of the Results the plan
// produces.
func (p *Plan) Method() Method {
	if p.method == MethodNL {
		if _, err := p.evaluator(); err != nil {
			return MethodFixpoint
		}
	}
	return p.method
}

// Rewriting returns the consistent first-order rewriting of Lemma 13 as
// a formula string; ok is false unless CERTAINTY(q) is in FO.
func (p *Plan) Rewriting() (string, bool) {
	if p.foFormula == nil {
		return "", false
	}
	return p.foFormula.String(), true
}

// Decomposition returns the certified NL loop decomposition as a
// diagnostic string; ok is false when the plan has none (wrong class,
// or fixpoint fallback).
func (p *Plan) Decomposition() (string, bool) {
	eval, err := p.evaluator()
	if err != nil {
		return "", false
	}
	return eval.Decomposition().String(), true
}

// evaluator memoizes the compiled NL evaluator.
func (p *Plan) evaluator() (*nl.Evaluator, error) {
	p.nlOnce.Do(func() {
		p.nlEval, p.nlErr = nl.NewEvaluator(p.word)
		if p.nlErr == nil {
			p.nlNote = p.nlEval.Decomposition().String()
		}
		p.nlBuilt.Store(true)
	})
	return p.nlEval, p.nlErr
}

// fixpoint memoizes the compiled Figure 5 machinery.
func (p *Plan) fixpoint() *fixpoint.Compiled {
	p.fpOnce.Do(func() {
		p.fp = fixpoint.Compile(p.word)
		p.fpBuilt.Store(true)
	})
	return p.fp
}

// conp memoizes the compiled SAT tier.
func (p *Plan) conp() *conp.Compiled {
	p.satOnce.Do(func() {
		p.satC = conp.Compile(p.word)
		p.satBuilt.Store(true)
	})
	return p.satC
}

// MemoStats aggregates the hit/miss counters of the per-snapshot memos
// behind every tier the plan has built so far: the fixpoint binding
// memo, the NL artifact memos, and the conp encoding memo. Misses count
// instance-bound artifact builds, Hits decisions served warm from a
// resident snapshot entry — the quantity the engine's snapshot-affine
// batch shards exist to maximize. Tiers not yet compiled (lazily built
// fallbacks) contribute nothing; the atomic built flags make this safe
// to call concurrently with evaluation.
func (p *Plan) MemoStats() memo.Stats {
	var s memo.Stats
	if p.nlBuilt.Load() && p.nlErr == nil {
		s = s.Add(p.nlEval.BindingStats())
	}
	if p.fpBuilt.Load() {
		s = s.Add(p.fp.BindingStats())
	}
	if p.satBuilt.Load() {
		s = s.Add(p.satC.EncodingStats())
	}
	return s
}

// ParallelStats is re-exported so engine-level aggregation needn't
// import the fixpoint package.
type ParallelStats = fixpoint.ParallelStats

// ParallelStats aggregates the partitioned-path counters of every tier
// the plan has built so far: fixpoint solves that engaged the sharded
// worklist, and NL artifact builds that ran the sharded Lemma 14
// stages. Zero everywhere means every decision took the single-core
// path — either below the threshold or with parallelism off.
func (p *Plan) ParallelStats() ParallelStats {
	var s ParallelStats
	if p.nlBuilt.Load() && p.nlErr == nil {
		s = s.Add(p.nlEval.ParallelStats())
	}
	if p.fpBuilt.Load() {
		s = s.Add(p.fp.ParallelStats())
	}
	return s
}

// SetMemoScale sets every built tier's per-snapshot memo to scale ×
// its compile-time default byte budget — the engine fans the serving
// layer's soft-memory watermark out through this. Shrinking evicts LRU
// artifacts so decisions degrade to cold builds instead of growing the
// heap; scale >= 1 restores the defaults. Tiers compiled lazily after
// this call start at their defaults (the engine re-applies its current
// scale when it compiles a plan). The memo budgets are the one piece
// of plan state that is mutable after Compile; the memos serialize the
// adjustment internally, so this is safe concurrently with evaluation.
func (p *Plan) SetMemoScale(scale float64) {
	if p.nlBuilt.Load() && p.nlErr == nil {
		p.nlEval.SetMemoScale(scale)
	}
	if p.fpBuilt.Load() {
		p.fp.SetMemoScale(scale)
	}
	if p.satBuilt.Load() {
		p.satC.SetMemoScale(scale)
	}
}

// Certain decides CERTAINTY(q) on db with automatic tier dispatch.
func (p *Plan) Certain(db *instance.Instance) Result {
	r, err := p.Execute(db, Options{})
	if err != nil {
		// Automatic dispatch never errors.
		panic("cqa: internal: " + err.Error())
	}
	return r
}

// Execute decides CERTAINTY(q) on db with explicit options, reusing the
// compiled artifacts. It is ExecuteCtx with a background context.
func (p *Plan) Execute(db *instance.Instance, opts Options) (Result, error) {
	return p.ExecuteCtx(context.Background(), db, opts)
}

// ExecuteCtx is Execute bounded by a context: the context is checked
// before dispatch, the SAT tier — the only one whose per-decision
// work is worst-case exponential — polls it inside the CDCL search
// loop, and a fixpoint solve that engages the partitioned parallel
// path (see Options.SolveWorkers) polls it between rounds, so
// canceling the context releases a caller stuck in a hard coNP
// decision or a giant-instance solve. The remaining interned-tier
// decisions run in micro-seconds and are not interrupted mid-solve.
// On cancellation the
// context's error is returned and the result carries no decision; the
// compiled artifacts and memoized solver state survive, so a retry
// resumes warm.
func (p *Plan) ExecuteCtx(ctx context.Context, db *instance.Instance, opts Options) (Result, error) {
	res := Result{Class: p.report.Class}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}

	method := opts.Force
	if method == "" {
		method = p.method
	} else if !sound(method, p.report.Class) {
		return res, fmt.Errorf("%w: %s for %v query %v", ErrUnsoundMethod, method, p.report.Class, p.word)
	}

	switch method {
	case MethodFO:
		res.Method = MethodFO
		res.Certain = fo.IsCertainFO(db, p.word)
	case MethodNL:
		eval, err := p.evaluator()
		if err != nil {
			// Certified decomposition unavailable: fall back to the
			// fixpoint tier (correct for all C3 ⊇ C2 queries).
			fp, serr := p.fixpoint().SolveInternedCtx(ctx, db.Interned(), opts.solveOptions())
			if serr != nil {
				return res, serr
			}
			res.Method = MethodFixpoint
			res.Certain = fp.Certain
			res.Note = "nl fallback: " + err.Error()
			if fp.Certain && len(fp.Starts) > 0 {
				res.Witness = fp.Starts[0]
			}
			break
		}
		res.Method = MethodNL
		res.Certain = eval.IsCertainOpts(db, opts.solveOptions())
		res.Note = p.nlNote
	case MethodFixpoint:
		fp, serr := p.fixpoint().SolveInternedCtx(ctx, db.Interned(), opts.solveOptions())
		if serr != nil {
			return res, serr
		}
		res.Method = MethodFixpoint
		res.Certain = fp.Certain
		if fp.Certain && len(fp.Starts) > 0 {
			res.Witness = fp.Starts[0]
		} else if !fp.Certain && opts.WantCounterexample {
			// The Lemma 10 minimal repair is built on request only: it
			// re-materializes a string-keyed instance, which would
			// dominate the interned solver on serving paths.
			res.Counterexample = fixpoint.CounterexampleRepair(db, p.word, fp)
		}
	case MethodSAT:
		out, err := p.conp().IsCertainCtx(ctx, db)
		if err != nil {
			return res, err
		}
		res.Method = MethodSAT
		res.Certain = out.Certain
		if opts.WantCounterexample {
			// The repair is already decoded to interned ids; only the
			// string-keyed materialization is on demand.
			res.Counterexample = out.Counterexample()
		}
	case MethodExhaustive:
		res.Method = MethodExhaustive
		res.Certain = repairs.IsCertain(db, p.word)
		if !res.Certain {
			res.Counterexample = repairs.Counterexample(db, p.word)
		}
	default:
		return res, fmt.Errorf("cqa: unknown method %q", method)
	}

	if opts.WantCounterexample && !res.Certain && res.Counterexample == nil {
		out, err := p.conp().IsCertainCtx(ctx, db)
		if err != nil {
			return res, err
		}
		res.Counterexample = out.Counterexample()
	}
	return res, nil
}

// sound reports whether a tier decides queries of the given class.
func sound(m Method, cls classify.Class) bool {
	switch m {
	case MethodFO:
		return cls == classify.FO
	case MethodNL:
		return cls == classify.FO || cls == classify.NL
	case MethodFixpoint:
		return cls != classify.CoNP
	case MethodSAT, MethodExhaustive:
		return true
	}
	return false
}
