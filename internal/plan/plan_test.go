package plan

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"cqa/internal/classify"
	"cqa/internal/instance"
	"cqa/internal/repairs"
	"cqa/internal/words"
)

func TestCompileSelectsTier(t *testing.T) {
	cases := []struct {
		q      string
		class  classify.Class
		method Method
	}{
		{"RXRX", classify.FO, MethodFO},
		{"RRX", classify.NL, MethodNL},
		{"RXRYRY", classify.PTime, MethodFixpoint},
		{"ARRX", classify.CoNP, MethodSAT},
	}
	for _, c := range cases {
		p := Compile(words.MustParse(c.q))
		if p.Class() != c.class || p.Method() != c.method {
			t.Errorf("Compile(%s): class=%v method=%v, want %v/%v", c.q, p.Class(), p.Method(), c.class, c.method)
		}
		if _, ok := p.Rewriting(); ok != (c.class == classify.FO) {
			t.Errorf("Compile(%s): Rewriting availability = %v", c.q, ok)
		}
	}
}

func TestPlanExecuteMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, qs := range []string{"RXRX", "RRX", "RXRYRY", "ARRX"} {
		q := words.MustParse(qs)
		p := Compile(q)
		for it := 0; it < 50; it++ {
			db := instance.New()
			n := 1 + rng.Intn(8)
			for i := 0; i < n; i++ {
				rel := []string{"R", "X", "Y", "A"}[rng.Intn(4)]
				db.AddFact(rel, string(rune('a'+rng.Intn(4))), string(rune('a'+rng.Intn(4))))
			}
			got := p.Certain(db)
			if want := repairs.IsCertain(db, q); got.Certain != want {
				t.Fatalf("q=%s it=%d db=%s: plan=%v exhaustive=%v", qs, it, db, got.Certain, want)
			}
		}
	}
}

func TestPlanForcedMethods(t *testing.T) {
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	p := Compile(words.MustParse("RRX"))

	// Fixpoint is lazily compiled for a forced run on an NL-class plan.
	res, err := p.Execute(db, Options{Force: MethodFixpoint})
	if err != nil || !res.Certain || res.Method != MethodFixpoint {
		t.Errorf("forced fixpoint: res=%+v err=%v", res, err)
	}
	if res.Witness != "0" {
		t.Errorf("forced fixpoint witness = %q, want 0", res.Witness)
	}

	// Unsound force errors with ErrUnsoundMethod.
	conp := Compile(words.MustParse("ARRX"))
	if _, err := conp.Execute(db, Options{Force: MethodFO}); !errors.Is(err, ErrUnsoundMethod) {
		t.Errorf("unsound force: err=%v", err)
	}

	// Unknown method errors.
	if _, err := p.Execute(db, Options{Force: Method("bogus")}); err == nil {
		t.Error("unknown method must error")
	}
}

func TestPlanDecomposition(t *testing.T) {
	p := Compile(words.MustParse("RRX"))
	if d, ok := p.Decomposition(); !ok || d == "" {
		t.Errorf("NL plan decomposition: %q, %v", d, ok)
	}
	if _, ok := Compile(words.MustParse("ARRX")).Decomposition(); ok {
		t.Error("coNP plan must not report a decomposition")
	}
}

// TestPlanConcurrentUse shares one plan across goroutines, including the
// lazily compiled artifacts (run with -race).
func TestPlanConcurrentUse(t *testing.T) {
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	p := Compile(words.MustParse("RRX"))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if res := p.Certain(db); !res.Certain {
					t.Error("plan flipped its decision under concurrency")
					return
				}
				if res, err := p.Execute(db, Options{Force: MethodFixpoint}); err != nil || !res.Certain {
					t.Errorf("forced fixpoint under concurrency: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
