package repairs

import (
	"math/big"
	"math/rand"
	"testing"

	"cqa/internal/instance"
	"cqa/internal/words"
)

func TestCount(t *testing.T) {
	db := instance.MustParseFacts("R(a,b) R(a,c) S(a,b) S(a,c) S(a,d)")
	if got := Count(db); got.Cmp(big.NewInt(6)) != 0 {
		t.Errorf("Count = %v, want 6", got)
	}
	if got := Count(instance.New()); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("empty instance has exactly one repair (∅), got %v", got)
	}
}

func TestAllEnumeratesDistinctRepairs(t *testing.T) {
	db := instance.MustParseFacts("R(a,b) R(a,c) S(x,y) S(x,z)")
	rs := All(db)
	if len(rs) != 4 {
		t.Fatalf("len(All) = %d", len(rs))
	}
	for i, r := range rs {
		if !r.IsRepairOf(db) {
			t.Errorf("repair %d (%s) is not a repair", i, r)
		}
		for j := i + 1; j < len(rs); j++ {
			if r.Equal(rs[j]) {
				t.Errorf("repairs %d and %d equal", i, j)
			}
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	db := instance.MustParseFacts("R(a,b) R(a,c) R(a,d)")
	n := 0
	done := ForEach(db, func(r *instance.Instance) bool {
		n++
		return n < 2
	})
	if done || n != 2 {
		t.Errorf("early stop failed: done=%v n=%d", done, n)
	}
}

func TestExample1Figure1(t *testing.T) {
	// Figure 1: db with all four R-facts and all four S-facts over {a,b}.
	// Example 1: db is a yes-instance of CERTAINTY(q1) for the self-join
	// q1 = R(x,y) ∧ R(y,x), but a no-instance for its self-join-free
	// counterpart q2 = R(x,y) ∧ S(y,x). Our path machinery covers q = RR
	// style queries; the cyclic q1 itself is exercised in internal/cq.
	// Here we verify the repair structure: 2^4 = 16 repairs per relation.
	db := instance.MustParseFacts(
		"R(a,a) R(a,b) R(b,a) R(b,b) S(a,a) S(a,b) S(b,a) S(b,b)")
	if got := Count(db); got.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("Count = %v, want 16", got)
	}
}

func TestIsCertainFigure2(t *testing.T) {
	// Figure 2: yes-instance of CERTAINTY(RRX) though no single start
	// vertex works in all repairs.
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	q := words.MustParse("RRX")
	if !IsCertain(db, q) {
		t.Error("Figure 2 must be a yes-instance of CERTAINTY(RRX)")
	}
	if got := Counterexample(db, q); got != nil {
		t.Errorf("unexpected counterexample %s", got)
	}
	// No constant is a certain start for the *exact* trace RRX.
	if got := CertainStarts(db, q); len(got) != 0 {
		t.Errorf("CertainStarts = %v, want empty", got)
	}
}

func TestIsCertainFigure3(t *testing.T) {
	// Figure 3 shape: q3 = ARRX, a no-instance where every repair still
	// has a path from 0 colored by a word of ARR(R)*X.
	db := instance.MustParseFacts("A(0,a) R(a,b) R(a,c) R(b,c) R(c,b) X(c,t)")
	q := words.MustParse("ARRX")
	if IsCertain(db, q) {
		t.Fatal("Figure 3 must be a no-instance of CERTAINTY(ARRX)")
	}
	cex := Counterexample(db, q)
	if cex == nil {
		t.Fatal("expected a counterexample repair")
	}
	if !cex.IsRepairOf(db) || cex.Satisfies(q) {
		t.Errorf("bad counterexample %s", cex)
	}
	// The falsifying repair is the one containing R(a,c).
	if !cex.Contains(instance.Fact{Rel: "R", Key: "a", Val: "c"}) {
		t.Errorf("counterexample should contain R(a,c): %s", cex)
	}
	// Every repair has a path from 0 with trace in ARR(R)*X (here: ARRX
	// or ARRRX).
	ForEach(db, func(r *instance.Instance) bool {
		if !r.HasTraceFrom("0", words.MustParse("ARRX")) &&
			!r.HasTraceFrom("0", words.MustParse("ARRRX")) {
			t.Errorf("repair %s lacks ARR(R)*X path from 0", r)
		}
		return true
	})
}

func TestCountSatisfying(t *testing.T) {
	// One block of two; q = RX satisfied only by the repair with R(a,b).
	db := instance.MustParseFacts("R(a,b) R(a,c) X(b,z)")
	got := CountSatisfying(db, words.MustParse("RX"))
	if got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("CountSatisfying = %v, want 1", got)
	}
	if IsCertain(db, words.MustParse("RX")) {
		t.Error("not certain")
	}
}

func TestCertainStartsSimple(t *testing.T) {
	// q = R, consistent instance: every key with an R-edge is a certain
	// start.
	db := instance.MustParseFacts("R(a,b) R(b,c)")
	got := CertainStarts(db, words.MustParse("R"))
	if !got["a"] || !got["b"] || got["c"] || len(got) != 2 {
		t.Errorf("CertainStarts = %v", got)
	}
}

func TestSample(t *testing.T) {
	db := instance.MustParseFacts("R(a,b) R(a,c) S(x,y) S(x,z)")
	rng := rand.New(rand.NewSource(7))
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		r := Sample(db, rng)
		if !r.IsRepairOf(db) {
			t.Fatalf("sample %s is not a repair", r)
		}
		seen[r.String()] = true
	}
	if len(seen) != 4 {
		t.Errorf("200 samples hit %d/4 repairs", len(seen))
	}
}

func TestIsCertainEmptyQuery(t *testing.T) {
	db := instance.MustParseFacts("R(a,b) R(a,c)")
	if !IsCertain(db, words.Word{}) {
		t.Error("empty query is certain on any instance")
	}
}
