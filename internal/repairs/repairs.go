// Package repairs provides repair enumeration, counting and sampling for
// inconsistent database instances, and the exhaustive (exponential-time)
// certain-answer decision procedure that serves as ground truth for every
// polynomial solver tier in this repository.
//
// A repair of db is an inclusion-maximal consistent subset of db
// (Section 2 of the paper); equivalently, a choice of exactly one fact
// from every block.
package repairs

import (
	"math/big"
	"math/rand"

	"cqa/internal/instance"
	"cqa/internal/words"
)

// Count returns the number of repairs of db: the product of the block
// sizes. The result can be exponential in |db|, hence a big.Int.
func Count(db *instance.Instance) *big.Int {
	n := big.NewInt(1)
	for _, id := range db.Blocks() {
		n.Mul(n, big.NewInt(int64(len(db.Block(id.Rel, id.Key)))))
	}
	return n
}

// ForEach enumerates all repairs of db in deterministic order, calling
// visit for each. The instance passed to visit is reused across calls;
// clone it if it must be retained. Enumeration stops early when visit
// returns false. ForEach reports whether enumeration ran to completion.
func ForEach(db *instance.Instance, visit func(r *instance.Instance) bool) bool {
	blocks := db.Blocks()
	choice := make([]int, len(blocks))
	r := instance.New()
	for i, id := range blocks {
		vals := db.Block(id.Rel, id.Key)
		r.AddFact(id.Rel, id.Key, vals[0])
		_ = i
	}
	for {
		if !visit(r) {
			return false
		}
		// Odometer increment.
		i := len(blocks) - 1
		for ; i >= 0; i-- {
			id := blocks[i]
			vals := db.Block(id.Rel, id.Key)
			r.Remove(instance.Fact{Rel: id.Rel, Key: id.Key, Val: vals[choice[i]]})
			choice[i]++
			if choice[i] < len(vals) {
				r.AddFact(id.Rel, id.Key, vals[choice[i]])
				break
			}
			choice[i] = 0
			r.AddFact(id.Rel, id.Key, vals[0])
		}
		if i < 0 {
			return true
		}
	}
}

// All returns every repair of db. Use only on small instances: the
// number of repairs is the product of block sizes.
func All(db *instance.Instance) []*instance.Instance {
	var out []*instance.Instance
	ForEach(db, func(r *instance.Instance) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

// Sample returns a uniformly random repair of db drawn with rng.
func Sample(db *instance.Instance, rng *rand.Rand) *instance.Instance {
	r := instance.New()
	for _, id := range db.Blocks() {
		vals := db.Block(id.Rel, id.Key)
		r.AddFact(id.Rel, id.Key, vals[rng.Intn(len(vals))])
	}
	return r
}

// IsCertain decides CERTAINTY(q) on db by exhaustive repair enumeration:
// it reports whether every repair of db satisfies the path query with
// word q. Exponential time; ground truth for small instances.
func IsCertain(db *instance.Instance, q words.Word) bool {
	certain := true
	ForEach(db, func(r *instance.Instance) bool {
		if !r.Satisfies(q) {
			certain = false
			return false
		}
		return true
	})
	return certain
}

// Counterexample returns a repair of db that falsifies q, or nil if db is
// a "yes"-instance of CERTAINTY(q). Exponential time.
func Counterexample(db *instance.Instance, q words.Word) *instance.Instance {
	var cex *instance.Instance
	ForEach(db, func(r *instance.Instance) bool {
		if !r.Satisfies(q) {
			cex = r.Clone()
			return false
		}
		return true
	})
	return cex
}

// CountSatisfying returns the number of repairs of db that satisfy q —
// the quantity studied by the counting variant ♯CERTAINTY(q) discussed
// in Section 9 of the paper. Exponential time.
func CountSatisfying(db *instance.Instance, q words.Word) *big.Int {
	n := big.NewInt(0)
	one := big.NewInt(1)
	ForEach(db, func(r *instance.Instance) bool {
		if r.Satisfies(q) {
			n.Add(n, one)
		}
		return true
	})
	return n
}

// CertainStarts returns the set of constants c such that *every* repair
// of db has a path starting in c with trace exactly q. Exhaustive;
// used to cross-check the FO rewriting tier.
func CertainStarts(db *instance.Instance, q words.Word) map[string]bool {
	first := true
	cur := make(map[string]bool)
	ForEach(db, func(r *instance.Instance) bool {
		starts := r.StartsOfTrace(q)
		if first {
			for c := range starts {
				cur[c] = true
			}
			first = false
		} else {
			for c := range cur {
				if !starts[c] {
					delete(cur, c)
				}
			}
		}
		return len(cur) > 0 || first
	})
	return cur
}
