package instance

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV writes db as CSV rows "rel,key,val" in deterministic order.
func (db *Instance) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, f := range db.Facts() {
		if err := cw.Write([]string{f.Rel, f.Key, f.Val}); err != nil {
			return fmt.Errorf("instance: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads an instance from CSV rows "rel,key,val". Blank lines and
// lines starting with '#' are skipped.
func ReadCSV(r io.Reader) (*Instance, error) {
	db := New()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("instance: line %d: want rel,key,val, got %q", line, text)
		}
		rel := strings.TrimSpace(parts[0])
		key := strings.TrimSpace(parts[1])
		val := strings.TrimSpace(parts[2])
		if rel == "" || key == "" || val == "" {
			return nil, fmt.Errorf("instance: line %d: empty field in %q", line, text)
		}
		db.AddFact(rel, key, val)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("instance: read csv: %w", err)
	}
	return db, nil
}

// ParseFacts parses a compact fact-list syntax used pervasively in tests
// and examples: facts separated by whitespace or semicolons, each of the
// form R(a,b). Example: "R(0,1) R(1,2) R(1,3) X(3,4)".
func ParseFacts(s string) (*Instance, error) {
	db := New()
	tokens := strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == '\n' || r == '\t' || r == ';'
	})
	for _, tok := range tokens {
		if tok == "" {
			continue
		}
		open := strings.IndexByte(tok, '(')
		if open <= 0 || !strings.HasSuffix(tok, ")") {
			return nil, fmt.Errorf("instance: bad fact %q", tok)
		}
		rel := tok[:open]
		inner := tok[open+1 : len(tok)-1]
		parts := strings.Split(inner, ",")
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("instance: bad fact %q", tok)
		}
		db.AddFact(rel, parts[0], parts[1])
	}
	return db, nil
}

// MustParseFacts is ParseFacts that panics on error.
func MustParseFacts(s string) *Instance {
	db, err := ParseFacts(s)
	if err != nil {
		panic(err)
	}
	return db
}

// DOT renders the instance as a Graphviz digraph: a fact R(a,b) is an
// edge a -> b labeled R. Facts in conflicting blocks are drawn dashed.
func (db *Instance) DOT() string {
	var b strings.Builder
	b.WriteString("digraph db {\n  rankdir=LR;\n")
	for _, f := range db.Facts() {
		style := ""
		if len(db.Block(f.Rel, f.Key)) > 1 {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n", f.Key, f.Val, f.Rel, style)
	}
	b.WriteString("}\n")
	return b.String()
}
