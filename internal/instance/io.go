package instance

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV writes db as CSV rows "rel,key,val" in deterministic order.
func (db *Instance) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, f := range db.Facts() {
		if err := cw.Write([]string{f.Rel, f.Key, f.Val}); err != nil {
			return fmt.Errorf("instance: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads an instance from CSV rows "rel,key,val". Blank lines
// and lines starting with '#' are skipped. Rows are RFC-4180 CSV, so a
// quoted field may contain commas or quotes — everything WriteCSV
// emits reads back verbatim — and fields are trimmed of surrounding
// whitespace after parsing.
func ReadCSV(r io.Reader) (*Instance, error) {
	db := New()
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = 3
	cr.TrimLeadingSpace = true
	// Records are consumed within the iteration, so the reader may reuse
	// its field slice — bulk loads stop allocating one []string per fact.
	cr.ReuseRecord = true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return db, nil
		}
		if err != nil {
			return nil, fmt.Errorf("instance: read csv: %w", err)
		}
		line, _ := cr.FieldPos(0)
		rel := strings.TrimSpace(rec[0])
		key := strings.TrimSpace(rec[1])
		val := strings.TrimSpace(rec[2])
		if rel == "" || key == "" || val == "" {
			return nil, fmt.Errorf("instance: line %d: empty field in %q", line, strings.Join(rec, ","))
		}
		db.AddFact(rel, key, val)
	}
}

// ParseFact parses one fact token of the form R(a,b).
func ParseFact(tok string) (Fact, error) {
	open := strings.IndexByte(tok, '(')
	if open <= 0 || !strings.HasSuffix(tok, ")") {
		return Fact{}, fmt.Errorf("instance: bad fact %q", tok)
	}
	rel := tok[:open]
	inner := tok[open+1 : len(tok)-1]
	parts := strings.Split(inner, ",")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return Fact{}, fmt.Errorf("instance: bad fact %q", tok)
	}
	return Fact{Rel: rel, Key: parts[0], Val: parts[1]}, nil
}

// ParseFacts parses a compact fact-list syntax used pervasively in tests
// and examples: facts separated by whitespace or semicolons, each of the
// form R(a,b). Example: "R(0,1) R(1,2) R(1,3) X(3,4)".
func ParseFacts(s string) (*Instance, error) {
	db := New()
	tokens := strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == '\n' || r == '\t' || r == ';'
	})
	for _, tok := range tokens {
		if tok == "" {
			continue
		}
		f, err := ParseFact(tok)
		if err != nil {
			return nil, err
		}
		db.Add(f)
	}
	return db, nil
}

// MustParseFacts is ParseFacts that panics on error.
func MustParseFacts(s string) *Instance {
	db, err := ParseFacts(s)
	if err != nil {
		panic(err)
	}
	return db
}

// DOT renders the instance as a Graphviz digraph: a fact R(a,b) is an
// edge a -> b labeled R. Facts in conflicting blocks are drawn dashed.
func (db *Instance) DOT() string {
	var b strings.Builder
	b.WriteString("digraph db {\n  rankdir=LR;\n")
	for _, f := range db.Facts() {
		style := ""
		if len(db.Block(f.Rel, f.Key)) > 1 {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n", f.Key, f.Val, f.Rel, style)
	}
	b.WriteString("}\n")
	return b.String()
}
