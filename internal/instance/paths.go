package instance

import "cqa/internal/words"

// A path in db (Definition 6 of the paper) is a sequence of facts
// R1(c1,c2), R2(c2,c3), ..., Rn(cn,cn+1); its trace is the word R1...Rn.
// Facts may repeat along a path (paths are walks in the graph view).

// StartsOfTrace returns the set of constants c such that db has a path
// starting in c with trace w. Computed by dynamic programming from the
// end of the trace; O(|w|·|db|).
func (db *Instance) StartsOfTrace(w words.Word) map[string]bool {
	// cur = set of constants from which the suffix w[i:] can be traced.
	cur := make(map[string]bool, len(db.adom))
	for c := range db.adom {
		cur[c] = true
	}
	for i := len(w) - 1; i >= 0; i-- {
		next := make(map[string]bool)
		rel := w[i]
		for id, vals := range db.blocks {
			if id.Rel != rel {
				continue
			}
			for _, v := range vals {
				if cur[v] {
					next[id.Key] = true
					break
				}
			}
		}
		cur = next
	}
	return cur
}

// HasTraceFrom reports whether db has a path starting in c with trace w.
func (db *Instance) HasTraceFrom(c string, w words.Word) bool {
	return db.StartsOfTrace(w)[c]
}

// Satisfies reports whether the path query with word w is satisfied by
// db, i.e. whether db has a path with trace w starting anywhere. For a
// repair r this is exactly "r satisfies q".
func (db *Instance) Satisfies(w words.Word) bool {
	if len(w) == 0 {
		return true
	}
	return len(db.StartsOfTrace(w)) > 0
}

// FindWalk returns one path (fact sequence) with trace w starting at c,
// or nil if none exists.
func (db *Instance) FindWalk(c string, w words.Word) []Fact {
	// Precompute suffix-feasible sets to prune.
	feasible := make([]map[string]bool, len(w)+1)
	feasible[len(w)] = make(map[string]bool, len(db.adom))
	for x := range db.adom {
		feasible[len(w)][x] = true
	}
	for i := len(w) - 1; i >= 0; i-- {
		next := make(map[string]bool)
		for id, vals := range db.blocks {
			if id.Rel != w[i] {
				continue
			}
			for _, v := range vals {
				if feasible[i+1][v] {
					next[id.Key] = true
					break
				}
			}
		}
		feasible[i] = next
	}
	if len(w) > 0 && !feasible[0][c] {
		return nil
	}
	walk := make([]Fact, 0, len(w))
	cur := c
	for i, rel := range w {
		found := false
		for _, v := range db.Block(rel, cur) {
			if feasible[i+1][v] {
				walk = append(walk, Fact{rel, cur, v})
				cur = v
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return walk
}

// ConsistentWalkFrom reports whether db has a *consistent* path starting
// in c with trace w (Definition 15: a path that does not contain two
// distinct key-equal facts). Backtracking search; the trace is a query
// word, so it is short.
func (db *Instance) ConsistentWalkFrom(c string, w words.Word) []Fact {
	chosen := make(map[BlockID]string)
	walk := make([]Fact, 0, len(w))
	var rec func(cur string, i int) bool
	rec = func(cur string, i int) bool {
		if i == len(w) {
			return true
		}
		rel := w[i]
		id := BlockID{rel, cur}
		if v, ok := chosen[id]; ok {
			// The block is already committed on this path: follow it.
			walk = append(walk, Fact{rel, cur, v})
			if rec(v, i+1) {
				return true
			}
			walk = walk[:len(walk)-1]
			return false
		}
		for _, v := range db.Block(rel, cur) {
			chosen[id] = v
			walk = append(walk, Fact{rel, cur, v})
			if rec(v, i+1) {
				return true
			}
			walk = walk[:len(walk)-1]
			delete(chosen, id)
		}
		return false
	}
	if rec(c, 0) {
		return walk
	}
	return nil
}

// HasConsistentWalk reports whether db |= c --w-->-> d for some d, i.e.
// a consistent path with trace w starts in c.
func (db *Instance) HasConsistentWalk(c string, w words.Word) bool {
	return db.ConsistentWalkFrom(c, w) != nil
}

// ConsistentWalkBetween reports whether db |= a --w-->-> b: a consistent
// path with trace w from a to b.
func (db *Instance) ConsistentWalkBetween(a, b string, w words.Word) bool {
	chosen := make(map[BlockID]string)
	var rec func(cur string, i int) bool
	rec = func(cur string, i int) bool {
		if i == len(w) {
			return cur == b
		}
		rel := w[i]
		id := BlockID{rel, cur}
		if v, ok := chosen[id]; ok {
			return rec(v, i+1)
		}
		for _, v := range db.Block(rel, cur) {
			chosen[id] = v
			if rec(v, i+1) {
				return true
			}
			delete(chosen, id)
		}
		return false
	}
	return rec(a, 0)
}

// WalkEnds returns the set of constants d such that db has a (not
// necessarily consistent) path from c to d with trace w.
func (db *Instance) WalkEnds(c string, w words.Word) map[string]bool {
	cur := map[string]bool{c: true}
	for _, rel := range w {
		next := make(map[string]bool)
		for x := range cur {
			for _, v := range db.Block(rel, x) {
				next[v] = true
			}
		}
		cur = next
	}
	return cur
}
