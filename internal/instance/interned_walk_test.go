package instance

import (
	"math/rand"
	"testing"

	"cqa/internal/words"
)

// TestInternedBlock: the CSR block index must agree with the string
// Block accessor on every (relation, key) pair.
func TestInternedBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 50; it++ {
		db := New()
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X", "Y"}[rng.Intn(3)]
			db.AddFact(rel, string(rune('a'+rng.Intn(6))), string(rune('a'+rng.Intn(6))))
		}
		iv := db.Interned()
		for r := int32(0); r < int32(iv.NumRels()); r++ {
			for k := int32(0); k < int32(iv.NumConsts()); k++ {
				want := db.Block(iv.Rel(r), iv.Const(k))
				got := iv.Block(r, k)
				if len(got) != len(want) {
					t.Fatalf("Block(%s,%s): %v vs %v", iv.Rel(r), iv.Const(k), got, want)
				}
				for i, v := range got {
					if iv.Const(v) != want[i] {
						t.Fatalf("Block(%s,%s)[%d] = %s, want %s",
							iv.Rel(r), iv.Const(k), i, iv.Const(v), want[i])
					}
				}
			}
		}
	}
}

// TestInternedWalkEnds: the interned walk must agree with the
// string-keyed WalkEnds from every start constant, including words
// containing relations absent from the instance.
func TestInternedWalkEnds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ws := []words.Word{
		words.MustParse("R"), words.MustParse("RR"), words.MustParse("RX"),
		words.MustParse("RXR"), words.MustParse("A"), words.MustParse("RA"),
	}
	var buf WalkBuf
	for it := 0; it < 50; it++ {
		db := New()
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X"}[rng.Intn(2)]
			db.AddFact(rel, string(rune('a'+rng.Intn(5))), string(rune('a'+rng.Intn(5))))
		}
		iv := db.Interned()
		for _, w := range ws {
			rels := iv.InternWord(w)
			for c := int32(0); c < int32(iv.NumConsts()); c++ {
				want := db.WalkEnds(iv.Const(c), w)
				got := iv.WalkEnds(c, rels, &buf)
				if len(got) != len(want) {
					t.Fatalf("WalkEnds(%s, %v): got %d ends, want %d (db=%s)",
						iv.Const(c), w, len(got), len(want), db)
				}
				for _, d := range got {
					if !want[iv.Const(d)] {
						t.Fatalf("WalkEnds(%s, %v): spurious end %s", iv.Const(c), w, iv.Const(d))
					}
				}
			}
		}
	}
}

// TestInternWordAbsentRelation: absent relations intern to -1.
func TestInternWordAbsentRelation(t *testing.T) {
	db := MustParseFacts("R(a,b)")
	iv := db.Interned()
	rels := iv.InternWord(words.MustParse("RZR"))
	if rels[0] < 0 || rels[1] != -1 || rels[2] != rels[0] {
		t.Errorf("InternWord(RZR) = %v", rels)
	}
}
