package instance

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cqa/internal/words"
)

func TestAddAndBlocks(t *testing.T) {
	db := New()
	db.AddFact("R", "a", "b").AddFact("R", "a", "c").AddFact("S", "a", "b")
	if db.Size() != 3 {
		t.Fatalf("Size = %d", db.Size())
	}
	if got := db.Block("R", "a"); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Errorf("Block(R,a) = %v", got)
	}
	if db.IsConsistent() {
		t.Error("db has a 2-fact block; not consistent")
	}
	if got := db.ConflictingBlocks(); len(got) != 1 || got[0] != (BlockID{"R", "a"}) {
		t.Errorf("ConflictingBlocks = %v", got)
	}
	if got := db.Adom(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Adom = %v", got)
	}
	if got := db.Relations(); !reflect.DeepEqual(got, []string{"R", "S"}) {
		t.Errorf("Relations = %v", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	db := New()
	db.AddFact("R", "a", "b").AddFact("R", "a", "b")
	if db.Size() != 1 {
		t.Errorf("Size = %d, want 1", db.Size())
	}
	if got := db.Block("R", "a"); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("Block = %v", got)
	}
}

func TestRemove(t *testing.T) {
	db := MustParseFacts("R(a,b) R(a,c) S(b,c)")
	db.Remove(Fact{"R", "a", "b"})
	if db.Contains(Fact{"R", "a", "b"}) || db.Size() != 2 {
		t.Error("Remove failed")
	}
	if !db.IsConsistent() {
		t.Error("should be consistent after removal")
	}
	db.Remove(Fact{"R", "a", "c"})
	if db.HasBlock("R", "a") {
		t.Error("block should be gone")
	}
	if got := db.Adom(); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Errorf("Adom after remove = %v", got)
	}
	// Removing a missing fact is a no-op.
	db.Remove(Fact{"Z", "q", "q"})
	if db.Size() != 1 {
		t.Error("no-op remove changed size")
	}
}

func TestKeyEqual(t *testing.T) {
	f := Fact{"R", "a", "b"}
	if !f.KeyEqual(Fact{"R", "a", "c"}) {
		t.Error("same rel+key should be key-equal")
	}
	if f.KeyEqual(Fact{"S", "a", "b"}) || f.KeyEqual(Fact{"R", "b", "b"}) {
		t.Error("different rel or key should not be key-equal")
	}
}

func TestParseFactsAndString(t *testing.T) {
	db := MustParseFacts("R(0,1) R(1,2); R(1,3)\nX(3,4)")
	if db.Size() != 4 {
		t.Fatalf("Size = %d", db.Size())
	}
	want := "{R(0,1), R(1,2), R(1,3), X(3,4)}"
	if db.String() != want {
		t.Errorf("String = %s, want %s", db.String(), want)
	}
	for _, bad := range []string{"R(a)", "Rab", "R(a,b", "(a,b)", "R(,b)"} {
		if _, err := ParseFacts(bad); err == nil {
			t.Errorf("ParseFacts(%q): expected error", bad)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := MustParseFacts("R(a,b) R(a,c) S(b,x)")
	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Equal(back) {
		t.Errorf("round trip mismatch: %s vs %s", db, back)
	}
}

func TestReadCSVSkipsComments(t *testing.T) {
	in := "# comment\nR,a,b\n\nS, b , c\n"
	db, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 2 || !db.Contains(Fact{"S", "b", "c"}) {
		t.Errorf("got %s", db)
	}
	if _, err := ReadCSV(strings.NewReader("R,a\n")); err == nil {
		t.Error("expected error for short row")
	}
	if _, err := ReadCSV(strings.NewReader("R,,b\n")); err == nil {
		t.Error("expected error for empty field")
	}
}

func TestRepairChecks(t *testing.T) {
	db := MustParseFacts("R(a,b) R(a,c) S(b,x)")
	r1 := MustParseFacts("R(a,b) S(b,x)")
	r2 := MustParseFacts("R(a,c) S(b,x)")
	bad1 := MustParseFacts("R(a,b)")               // misses block S(b,*)
	bad2 := MustParseFacts("R(a,b) R(a,c) S(b,x)") // inconsistent
	bad3 := MustParseFacts("R(a,z) S(b,x)")        // not a subset
	if !r1.IsRepairOf(db) || !r2.IsRepairOf(db) {
		t.Error("r1, r2 are repairs")
	}
	if bad1.IsRepairOf(db) || bad2.IsRepairOf(db) || bad3.IsRepairOf(db) {
		t.Error("bad repairs accepted")
	}
}

func TestStartsOfTraceFigure2(t *testing.T) {
	// Figure 2 instance; see Example 4. r1 contains R(1,2), r2 contains
	// R(1,3). The only RRX-trace path in r1 starts at 1; in r2 at 0.
	r1 := MustParseFacts("R(0,1) R(1,2) R(2,3) X(3,4)")
	r2 := MustParseFacts("R(0,1) R(1,3) R(2,3) X(3,4)")
	q := words.MustParse("RRX")
	if got := keys(r1.StartsOfTrace(q)); !reflect.DeepEqual(got, []string{"1"}) {
		t.Errorf("r1 starts = %v", got)
	}
	if got := keys(r2.StartsOfTrace(q)); !reflect.DeepEqual(got, []string{"0"}) {
		t.Errorf("r2 starts = %v", got)
	}
	if !r1.Satisfies(q) || !r2.Satisfies(q) {
		t.Error("both repairs satisfy RRX")
	}
	if r1.Satisfies(words.MustParse("RRXX")) {
		t.Error("RRXX not satisfied")
	}
	if !r1.Satisfies(words.Word{}) {
		t.Error("empty query is always satisfied")
	}
}

func TestFindWalk(t *testing.T) {
	db := MustParseFacts("R(0,1) R(1,2) R(2,3) X(3,4)")
	w := db.FindWalk("1", words.MustParse("RRX"))
	want := []Fact{{"R", "1", "2"}, {"R", "2", "3"}, {"X", "3", "4"}}
	if !reflect.DeepEqual(w, want) {
		t.Errorf("FindWalk = %v", w)
	}
	if db.FindWalk("0", words.MustParse("RRX")) != nil {
		t.Error("no RRX walk from 0 in this repair")
	}
	if got := db.FindWalk("0", words.Word{}); len(got) != 0 {
		t.Error("empty trace walk should be empty")
	}
}

func TestWalkCanRepeatFacts(t *testing.T) {
	// A path may traverse the same fact twice (cycle).
	db := MustParseFacts("R(a,b) R(b,a) X(a,z)")
	q := words.MustParse("RRRRX")
	if !db.HasTraceFrom("a", q) {
		t.Error("cyclic walk should satisfy RRRRX from a")
	}
	w := db.FindWalk("a", q)
	if len(w) != 5 {
		t.Fatalf("walk = %v", w)
	}
}

func TestConsistentWalk(t *testing.T) {
	// Example 7: db = {R(c,d), S(d,c), R(c,e), T(e,f)}.
	db := MustParseFacts("R(c,d) S(d,c) R(c,e) T(e,f)")
	// db |= c -RS->-> c and c -RT->-> f but NOT c -RSRT->-> f:
	// the two R-steps from c would need different facts of block R(c,*).
	if !db.ConsistentWalkBetween("c", "c", words.MustParse("RS")) {
		t.Error("c -RS->-> c should hold")
	}
	if !db.ConsistentWalkBetween("c", "f", words.MustParse("RT")) {
		t.Error("c -RT->-> f should hold")
	}
	if db.ConsistentWalkBetween("c", "f", words.MustParse("RSRT")) {
		t.Error("c -RSRT->-> f must fail (needs two distinct key-equal R-facts)")
	}
	if db.HasConsistentWalk("c", words.MustParse("RSRT")) {
		t.Error("no consistent RSRT walk from c at all")
	}
	// The inconsistent walk does exist.
	if !db.HasTraceFrom("c", words.MustParse("RSRT")) {
		t.Error("the (inconsistent) RSRT path exists")
	}
}

func TestWalkEnds(t *testing.T) {
	db := MustParseFacts("R(a,b) R(a,c) X(b,z) X(c,z)")
	got := keys(db.WalkEnds("a", words.MustParse("RX")))
	if !reflect.DeepEqual(got, []string{"z"}) {
		t.Errorf("WalkEnds = %v", got)
	}
	got = keys(db.WalkEnds("a", words.MustParse("R")))
	if !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Errorf("WalkEnds = %v", got)
	}
}

func TestCloneEqualSubset(t *testing.T) {
	db := MustParseFacts("R(a,b) R(a,c)")
	c := db.Clone()
	if !db.Equal(c) {
		t.Error("clone not equal")
	}
	c.AddFact("Z", "1", "2")
	if db.Equal(c) || db.Contains(Fact{"Z", "1", "2"}) {
		t.Error("clone not independent")
	}
	if !db.SubsetOf(c) || c.SubsetOf(db) {
		t.Error("SubsetOf wrong")
	}
}

func TestDOT(t *testing.T) {
	db := MustParseFacts("R(a,b) R(a,c) S(b,c)")
	dot := db.DOT()
	if !strings.Contains(dot, `"a" -> "b" [label="R", style=dashed]`) {
		t.Errorf("conflicting fact should be dashed:\n%s", dot)
	}
	if !strings.Contains(dot, `"b" -> "c" [label="S"]`) {
		t.Errorf("consistent fact should be solid:\n%s", dot)
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	// small, deterministic
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func TestInternedView(t *testing.T) {
	db := MustParseFacts("R(b,a) R(b,c) S(a,b) R(a,c)")
	iv := db.Interned()
	// Ids follow sorted order: consts a=0, b=1, c=2; rels R=0, S=1.
	if got := iv.Consts(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Consts = %v", got)
	}
	if iv.NumConsts() != 3 || iv.NumRels() != 2 || iv.NumFacts() != 4 {
		t.Fatalf("sizes: %d consts %d rels %d facts", iv.NumConsts(), iv.NumRels(), iv.NumFacts())
	}
	if id, ok := iv.ConstID("b"); !ok || id != 1 || iv.Const(1) != "b" {
		t.Errorf("ConstID(b) = %d,%v", id, ok)
	}
	if _, ok := iv.ConstID("zz"); ok {
		t.Error("ConstID of absent constant")
	}
	rid, ok := iv.RelID("R")
	if !ok || iv.Rel(rid) != "R" {
		t.Fatalf("RelID(R) = %d,%v", rid, ok)
	}
	// Blocks of R in ascending key-id order: R(a,*)={c}, R(b,*)={a,c}.
	blocks := iv.RelBlocks(rid)
	want := []InternedBlock{{Key: 0, Vals: []int32{2}}, {Key: 1, Vals: []int32{0, 2}}}
	if !reflect.DeepEqual(blocks, want) {
		t.Errorf("RelBlocks(R) = %v, want %v", blocks, want)
	}
}

func TestInternedMemoizedAndInvalidated(t *testing.T) {
	db := MustParseFacts("R(a,b)")
	iv1 := db.Interned()
	if iv2 := db.Interned(); iv1 != iv2 {
		t.Error("Interned not memoized across calls")
	}
	db.AddFact("R", "a", "c")
	iv3 := db.Interned()
	if iv3 == iv1 {
		t.Error("mutation did not invalidate the interned snapshot")
	}
	if iv1.NumFacts() != 1 || iv3.NumFacts() != 2 {
		t.Errorf("old snapshot mutated: %d / %d facts", iv1.NumFacts(), iv3.NumFacts())
	}
	db.Remove(Fact{"R", "a", "c"})
	if iv4 := db.Interned(); iv4 == iv3 || iv4.NumFacts() != 1 {
		t.Error("Remove did not invalidate the interned snapshot")
	}
}

// TestInternedConcurrentReaders exercises the copy-on-write snapshot
// under -race: many goroutines intern and read concurrently.
func TestInternedConcurrentReaders(t *testing.T) {
	db := MustParseFacts("R(a,b) R(a,c) S(b,c) R(c,a)")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				iv := db.Interned()
				if iv.NumConsts() != 3 || iv.NumFacts() != 4 {
					t.Error("bad interned view")
					return
				}
				if id, ok := iv.ConstID("c"); !ok || iv.Const(id) != "c" {
					t.Error("bad const roundtrip")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestInternedConvergesUnderRace: concurrent first-time Interned calls
// on one unchanged instance must all return the SAME pointer — the
// publish CAS adopts the first published build, so the per-snapshot
// memos in the solver tiers never see duplicate keys for one instance
// state (run with -race).
func TestInternedConvergesUnderRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		db := MustParseFacts("R(a,b) R(a,c) R(b,c) X(c,d)")
		const readers = 8
		got := make([]*Interned, readers)
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				got[g] = db.Interned()
			}(g)
		}
		wg.Wait()
		for g := 1; g < readers; g++ {
			if got[g] != got[0] {
				t.Fatalf("round %d: readers %d and 0 hold distinct interned snapshots", round, g)
			}
		}
	}
}

// TestCSVRoundTripQuotedFields: WriteCSV quotes values containing
// commas or quotes (RFC 4180); ReadCSV must read its own output back
// verbatim.
func TestCSVRoundTripQuotedFields(t *testing.T) {
	db := New()
	db.AddFact("R", "a", `x,y`)
	db.AddFact("R", `k"ey`, "v")
	db.AddFact("S", "a", "plain")
	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Equal(back) {
		t.Errorf("round trip mismatch: %s vs %s", db, back)
	}
}
