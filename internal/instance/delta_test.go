package instance

import (
	"fmt"
	"reflect"
	"testing"
)

// reintern builds a lineage-root snapshot of the same fact set, for
// comparing a delta-built snapshot against a from-scratch build.
func reintern(db *Instance) *Interned {
	return FromFacts(db.Facts()...).Interned()
}

// sameInterned asserts structural equality of two snapshots (names,
// ids, blocks, fact count) without regard to lineage.
func sameInterned(t *testing.T, got, want *Interned) {
	t.Helper()
	if !reflect.DeepEqual(got.consts, want.consts) {
		t.Fatalf("consts = %v, want %v", got.consts, want.consts)
	}
	if !reflect.DeepEqual(got.rels, want.rels) {
		t.Fatalf("rels = %v, want %v", got.rels, want.rels)
	}
	if !reflect.DeepEqual(got.blocks, want.blocks) {
		t.Fatalf("blocks = %v, want %v", got.blocks, want.blocks)
	}
	if got.nfacts != want.nfacts {
		t.Fatalf("nfacts = %d, want %d", got.nfacts, want.nfacts)
	}
}

func TestDeltaInternAddExistingUniverse(t *testing.T) {
	db := FromFacts(
		Fact{"R", "a", "b"},
		Fact{"R", "b", "c"},
		Fact{"S", "a", "c"},
	)
	s1 := db.Interned()
	if s1.Delta() != nil {
		t.Fatalf("first snapshot should be a lineage root")
	}

	// Add within the existing universe: a delta child sharing id tables.
	db.AddFact("R", "a", "c")
	s2 := db.Interned()
	d := s2.Delta()
	if d == nil {
		t.Fatalf("expected a delta snapshot after in-universe Add")
	}
	if d.Parent != s1 || d.Depth != 1 {
		t.Fatalf("delta = {parent %p depth %d}, want {parent %p depth 1}", d.Parent, d.Depth, s1)
	}
	rid, _ := s1.RelID("R")
	kid, _ := s1.ConstID("a")
	if want := []BlockRef{{rid, kid}}; !reflect.DeepEqual(d.Touched, want) {
		t.Fatalf("touched = %v, want %v", d.Touched, want)
	}
	if &s2.consts[0] != &s1.consts[0] || &s2.rels[0] != &s1.rels[0] {
		t.Fatalf("delta child must share the parent id tables")
	}
	// Untouched relation S shares its block slice outright.
	sid, _ := s1.RelID("S")
	if &s2.blocks[sid][0] != &s1.blocks[sid][0] {
		t.Fatalf("untouched relation's blocks must be aliased, not copied")
	}
	sameInterned(t, s2, reintern(db))
	// The parent is untouched.
	if got := s1.Block(rid, kid); len(got) != 1 {
		t.Fatalf("parent block mutated: %v", got)
	}
}

func TestDeltaInternRemoveAndEmptiedBlock(t *testing.T) {
	db := FromFacts(
		Fact{"R", "a", "b"},
		Fact{"R", "a", "c"},
		Fact{"R", "b", "c"},
		Fact{"S", "b", "a"},
	)
	s1 := db.Interned()

	// Remove one fact of a two-fact block: universe unchanged.
	db.Remove(Fact{"R", "a", "b"})
	s2 := db.Interned()
	if s2.Delta() == nil || s2.Delta().Parent != s1 {
		t.Fatalf("in-universe Remove should produce a delta child of s1")
	}
	sameInterned(t, s2, reintern(db))

	// Remove R(b,c): the block empties but b, c and R survive via other
	// facts, so this still rides the delta path and must drop the block.
	db.Remove(Fact{"R", "b", "c"})
	s3 := db.Interned()
	if s3.Delta() == nil || s3.Delta().Parent != s2 || s3.Delta().Depth != 2 {
		t.Fatalf("expected depth-2 delta child of s2")
	}
	rid, _ := s3.RelID("R")
	kid, _ := s3.ConstID("b")
	if got := s3.Block(rid, kid); got != nil {
		t.Fatalf("emptied block still present: %v", got)
	}
	sameInterned(t, s3, reintern(db))
}

func TestDeltaInternUniverseChangeStartsRoot(t *testing.T) {
	cases := []struct {
		name string
		mut  func(db *Instance)
	}{
		{"new constant", func(db *Instance) { db.AddFact("R", "a", "z") }},
		{"new relation", func(db *Instance) { db.AddFact("T", "a", "b") }},
		{"constant dropped", func(db *Instance) { db.Remove(Fact{"S", "c", "d"}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := FromFacts(
				Fact{"R", "a", "b"},
				Fact{"S", "c", "d"},
			)
			db.Interned()
			tc.mut(db)
			s2 := db.Interned()
			if s2.Delta() != nil {
				t.Fatalf("universe change must start a fresh lineage root")
			}
			sameInterned(t, s2, reintern(db))
		})
	}
}

func TestDeltaInternDirtyOverflowStartsRoot(t *testing.T) {
	db := New()
	for i := 0; i < maxDirtyBlocks+10; i++ {
		db.AddFact("R", fmt.Sprintf("k%03d", i), "v")
	}
	db.Interned()
	// Touch more distinct blocks than the dirty bound within the
	// existing universe.
	for i := 0; i < maxDirtyBlocks+1; i++ {
		db.AddFact("R", fmt.Sprintf("k%03d", i), fmt.Sprintf("k%03d", (i+1)%(maxDirtyBlocks+10)))
	}
	s2 := db.Interned()
	if s2.Delta() != nil {
		t.Fatalf("dirty overflow must start a fresh lineage root")
	}
	sameInterned(t, s2, reintern(db))
}

func TestDeltaInternDepthCap(t *testing.T) {
	// Each step adds a previously absent in-universe fact, so every
	// state is genuinely new (no undo collapse) and the chain must grow
	// until the depth cap restarts it.
	db := New()
	n := MaxLineageDepth + 8
	for i := 0; i < n; i++ {
		db.AddFact("R", fmt.Sprintf("k%03d", i), "v")
	}
	db.Interned()
	for i := 0; i < MaxLineageDepth+5; i++ {
		db.AddFact("R", fmt.Sprintf("k%03d", i), fmt.Sprintf("k%03d", (i+1)%n))
		iv := db.Interned()
		if d := iv.Delta(); d != nil && d.Depth > MaxLineageDepth {
			t.Fatalf("depth %d exceeds cap %d", d.Depth, MaxLineageDepth)
		}
		if i == MaxLineageDepth && iv.Delta() != nil {
			t.Fatalf("chain should have restarted at the depth cap")
		}
	}
	sameInterned(t, db.Interned(), reintern(db))
}

func TestDeltaInternUndoCollapse(t *testing.T) {
	db := FromFacts(Fact{"R", "a", "b"}, Fact{"R", "a", "c"}, Fact{"R", "b", "c"})
	ivA := db.Interned()

	// Departing to state B builds one delta child.
	db.Remove(Fact{"R", "a", "c"})
	ivB := db.Interned()
	if ivB == ivA || ivB.Delta() == nil || ivB.Delta().Parent != ivA {
		t.Fatalf("removal must build a delta child of the original snapshot")
	}

	// Undoing the removal restores state A: the intern layer must hand
	// back the original pointer, not a deeper chain.
	db.AddFact("R", "a", "c")
	if iv := db.Interned(); iv != ivA {
		t.Fatalf("toggle-back interned %p, want the original snapshot %p", iv, ivA)
	}

	// Re-entering state B must reuse the previously built child (the
	// other direction of an A<->B flap), keeping the lineage at depth 1.
	db.Remove(Fact{"R", "a", "c"})
	if iv := db.Interned(); iv != ivB {
		t.Fatalf("redo interned %p, want the departed child %p", iv, ivB)
	}

	// A no-op dirty set (add then remove between two builds) stays on
	// the current snapshot.
	db.AddFact("R", "b", "a")
	db.Remove(Fact{"R", "b", "a"})
	if iv := db.Interned(); iv != ivB {
		t.Fatalf("no-op mutation run interned %p, want %p", iv, ivB)
	}
	sameInterned(t, db.Interned(), reintern(db))
}

func TestDeltaInternChurnEquivalence(t *testing.T) {
	// Randomized-ish churn inside a fixed universe: every snapshot must
	// equal a from-scratch build of the same facts.
	db := New()
	consts := []string{"a", "b", "c", "d", "e"}
	rels := []string{"R", "S"}
	for _, r := range rels {
		for i, k := range consts {
			db.AddFact(r, k, consts[(i+1)%len(consts)])
		}
	}
	db.Interned()
	for step := 0; step < 200; step++ {
		r := rels[step%len(rels)]
		k := consts[step%len(consts)]
		v := consts[(step*3+1)%len(consts)]
		f := Fact{r, k, v}
		if db.Contains(f) && db.Size() > 3 {
			db.Remove(f)
		} else {
			db.Add(f)
		}
		sameInterned(t, db.Interned(), reintern(db))
	}
}

func TestLineageWalk(t *testing.T) {
	db := FromFacts(Fact{"R", "a", "b"}, Fact{"R", "b", "c"}, Fact{"R", "c", "a"})
	s1 := db.Interned()
	db.AddFact("R", "a", "c")
	s2 := db.Interned()
	db.AddFact("R", "b", "a")
	db.AddFact("R", "a", "c") // idempotent no-op, must not dirty anything extra
	s3 := db.Interned()
	db.Remove(Fact{"R", "a", "b"})
	s4 := db.Interned()

	rid, _ := s1.RelID("R")
	ca, _ := s1.ConstID("a")
	cb, _ := s1.ConstID("b")

	// Nearest resident ancestor wins; touched covers only the hop.
	p, touched, ok := Lineage(s4, func(iv *Interned) bool { return iv == s3 })
	if !ok || p != s3 {
		t.Fatalf("lineage to s3: ok=%v parent=%p", ok, p)
	}
	if want := []BlockRef{{rid, ca}}; !reflect.DeepEqual(touched, want) {
		t.Fatalf("touched = %v, want %v", touched, want)
	}

	// Deeper ancestor: touched accumulates and dedups across hops
	// (block R(a,*) is touched on both the s1→s2 and s3→s4 hops).
	p, touched, ok = Lineage(s4, func(iv *Interned) bool { return iv == s1 })
	if !ok || p != s1 {
		t.Fatalf("lineage to s1: ok=%v parent=%p", ok, p)
	}
	if len(touched) != 2 {
		t.Fatalf("touched = %v, want exactly {R(a,*), R(b,*)}", touched)
	}
	seen := map[BlockRef]bool{}
	for _, ref := range touched {
		seen[ref] = true
	}
	if !seen[BlockRef{rid, ca}] || !seen[BlockRef{rid, cb}] {
		t.Fatalf("touched = %v, want refs for keys a and b", touched)
	}

	// No resident ancestor.
	if _, _, ok := Lineage(s4, func(*Interned) bool { return false }); ok {
		t.Fatalf("lineage with nothing resident should fail")
	}
	// A root has no lineage.
	if _, _, ok := Lineage(s1, func(*Interned) bool { return true }); ok {
		t.Fatalf("root snapshot should have no lineage")
	}
	_ = s2
}
