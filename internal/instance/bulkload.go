package instance

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"cqa/internal/par"
)

// ReadCSVParallel reads an instance from the same CSV format as
// ReadCSV with a streaming parallel pipeline: a reader goroutine cuts
// the input into newline-aligned chunks, parse workers turn chunks
// into fact batches (a manual fast path for unquoted rows, a per-row
// encoding/csv reader for quoted ones), and a dedup/build stage folds
// the batches into the instance while the block index and the
// occurrence counts build on separate goroutines. The finalize step
// then builds the canonical interned snapshot — id tables from the
// sorted domain, per-relation block lists, value interning — with the
// heavy loops sharded, and publishes it, so the first decision after a
// bulk load starts from a warm snapshot instead of paying a serial
// O(|db|) intern.
//
// The resulting instance is Equal to ReadCSV's: same facts, same block
// index, same occurrence counts, same interned id order. Malformed
// input yields the error of the lowest-numbered bad line (message
// wording may differ from ReadCSV's for unquoted rows). workers <= 0
// means GOMAXPROCS; workers == 1 delegates to ReadCSV (plus the
// snapshot pre-build, for parity).
func ReadCSVParallel(r io.Reader, workers int) (*Instance, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		db, err := ReadCSV(r)
		if err != nil {
			return nil, err
		}
		db.Interned()
		return db, nil
	}

	// First-error tracking: chunks are produced in line order, so the
	// minimum-line error over all parsed chunks is the true first error.
	var (
		errMu    sync.Mutex
		firstErr error
		errLine  = -1
	)
	fail := func(line int, err error) {
		errMu.Lock()
		if errLine < 0 || line < errLine {
			errLine, firstErr = line, err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return errLine >= 0
	}

	type rawChunk struct {
		data      []byte
		firstLine int
	}
	rawCh := make(chan rawChunk, workers)
	factCh := make(chan []Fact, workers)

	// Reader: fixed-size chunks split at the last newline; the partial
	// trailing line carries into the next chunk. Production stops early
	// once any stage has failed.
	const chunkBytes = 1 << 18
	go func() {
		defer close(rawCh)
		line := 1
		var pending []byte
		for {
			buf := make([]byte, len(pending)+chunkBytes)
			n := copy(buf, pending)
			m, rerr := io.ReadFull(r, buf[n:])
			buf = buf[:n+m]
			if rerr != nil && rerr != io.EOF && rerr != io.ErrUnexpectedEOF {
				fail(line, fmt.Errorf("instance: read csv: %w", rerr))
				return
			}
			if rerr != nil { // EOF: flush everything, including a final unterminated line
				if len(buf) > 0 && !failed() {
					rawCh <- rawChunk{buf, line}
				}
				return
			}
			cut := bytes.LastIndexByte(buf, '\n')
			if cut < 0 {
				// A single line longer than the chunk: keep growing.
				pending = buf
				continue
			}
			send := buf[:cut+1]
			pending = append([]byte(nil), buf[cut+1:]...)
			if failed() {
				return
			}
			rawCh <- rawChunk{send, line}
			line += bytes.Count(send, []byte{'\n'})
		}
	}()

	// Parse workers.
	var parseWG sync.WaitGroup
	parseWG.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer parseWG.Done()
			for ch := range rawCh {
				facts, line, err := parseCSVChunk(ch.data, ch.firstLine)
				if err != nil {
					fail(line, err)
					continue
				}
				if len(facts) > 0 && !failed() {
					factCh <- facts
				}
			}
		}()
	}
	go func() {
		parseWG.Wait()
		close(factCh)
	}()

	// Dedup on this goroutine; the block index and the occurrence
	// counts (replicating Add's accounting exactly) build concurrently
	// from the deduplicated batches.
	db := New()
	blockCh := make(chan []Fact, workers)
	countCh := make(chan []Fact, workers)
	var buildWG sync.WaitGroup
	buildWG.Add(2)
	go func() {
		defer buildWG.Done()
		for fs := range blockCh {
			for _, f := range fs {
				id := BlockID{f.Rel, f.Key}
				db.blocks[id] = append(db.blocks[id], f.Val)
			}
		}
	}()
	go func() {
		defer buildWG.Done()
		for fs := range countCh {
			for _, f := range fs {
				if f.Key == f.Val {
					db.adom[f.Key] += 2
				} else {
					db.adom[f.Key]++
					db.adom[f.Val]++
				}
				db.rels[f.Rel]++
			}
		}
	}()
	for fs := range factCh {
		uniq := fs[:0]
		for _, f := range fs {
			if _, dup := db.facts[f]; !dup {
				db.facts[f] = struct{}{}
				uniq = append(uniq, f)
			}
		}
		if len(uniq) > 0 {
			blockCh <- uniq
			countCh <- uniq
		}
	}
	close(blockCh)
	close(countCh)
	buildWG.Wait()

	if failed() {
		return nil, firstErr
	}
	finalizeBulk(db, workers)
	return db, nil
}

// parseCSVChunk parses one newline-aligned chunk. On error it returns
// the absolute line number of the first bad row in the chunk.
func parseCSVChunk(data []byte, firstLine int) ([]Fact, int, error) {
	facts := make([]Fact, 0, len(data)/12)
	line := firstLine
	for len(data) > 0 {
		var row []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			row, data = data[:nl], data[nl+1:]
		} else {
			row, data = data, nil
		}
		ln := line
		line++
		if len(row) > 0 && row[len(row)-1] == '\r' {
			row = row[:len(row)-1]
		}
		// Comment detection matches encoding/csv: the comment rune must
		// be the line's first byte, untrimmed.
		if len(row) == 0 || row[0] == '#' {
			continue
		}
		var rel, key, val string
		if bytes.IndexByte(row, '"') >= 0 {
			rec, err := parseQuotedRow(row)
			if err != nil {
				return nil, ln, fmt.Errorf("instance: read csv: line %d: %w", ln, err)
			}
			rel, key, val = rec[0], rec[1], rec[2]
		} else {
			// Fast path: no quotes, so the row is exactly three
			// comma-separated raw fields. One string allocation; the
			// fields are substrings.
			s := string(row)
			c1 := strings.IndexByte(s, ',')
			var c2 int
			if c1 < 0 {
				return nil, ln, fmt.Errorf("instance: read csv: line %d: wrong number of fields in %q", ln, s)
			}
			if c2 = strings.IndexByte(s[c1+1:], ','); c2 < 0 {
				return nil, ln, fmt.Errorf("instance: read csv: line %d: wrong number of fields in %q", ln, s)
			}
			c2 += c1 + 1
			if strings.IndexByte(s[c2+1:], ',') >= 0 {
				return nil, ln, fmt.Errorf("instance: read csv: line %d: wrong number of fields in %q", ln, s)
			}
			rel = strings.TrimSpace(s[:c1])
			key = strings.TrimSpace(s[c1+1 : c2])
			val = strings.TrimSpace(s[c2+1:])
		}
		if rel == "" || key == "" || val == "" {
			return nil, ln, fmt.Errorf("instance: line %d: empty field in %q", ln, rel+","+key+","+val)
		}
		facts = append(facts, Fact{Rel: rel, Key: key, Val: val})
	}
	return facts, 0, nil
}

// parseQuotedRow parses a single row containing quotes through
// encoding/csv with ReadCSV's exact configuration.
func parseQuotedRow(row []byte) ([]string, error) {
	cr := csv.NewReader(bytes.NewReader(row))
	cr.Comment = '#'
	cr.FieldsPerRecord = 3
	cr.TrimLeadingSpace = true
	rec, err := cr.Read()
	if err != nil {
		return nil, err
	}
	for i := range rec {
		rec[i] = strings.TrimSpace(rec[i])
	}
	return rec, nil
}

// finalizeBulk sorts the bulk-built indexes into the canonical order
// Add maintains incrementally, builds the interned snapshot, and
// publishes both. The per-block value sorts, the block partition, and
// the value interning shard across workers; the id tables (maps) build
// serially.
func finalizeBulk(db *Instance, workers int) {
	// Sorted active domain, overlapped with the per-block value sorts.
	var adom []string
	var adomWG sync.WaitGroup
	adomWG.Add(1)
	go func() {
		defer adomWG.Done()
		adom = make([]string, 0, len(db.adom))
		for c := range db.adom {
			adom = append(adom, c)
		}
		sort.Strings(adom)
	}()

	bids := make([]BlockID, 0, len(db.blocks))
	for id := range db.blocks {
		bids = append(bids, id)
	}
	bb := par.Blocks(len(bids), workers, 1)
	par.Run(len(bb)-1, func(w int) {
		for _, id := range bids[bb[w]:bb[w+1]] {
			vals := db.blocks[id]
			if !sort.StringsAreSorted(vals) {
				sort.Strings(vals)
			}
		}
	})
	adomWG.Wait()

	rels := make([]string, 0, len(db.rels))
	for r := range db.rels {
		rels = append(rels, r)
	}
	sort.Strings(rels)

	iv := &Interned{
		consts:  adom,
		constID: make(map[string]int32, len(adom)),
		rels:    rels,
		relID:   make(map[string]int32, len(rels)),
		blocks:  make([][]InternedBlock, len(rels)),
		nfacts:  len(db.facts),
	}
	for i, s := range adom {
		iv.constID[s] = int32(i)
	}
	for i, r := range rels {
		iv.relID[r] = int32(i)
	}

	// Partition the blocks per relation with keys interned, in parallel
	// (the id maps are read-only now), then sort each relation's blocks
	// by key id — identical to the root build's (Rel, Key) string order
	// because ids ascend with the strings.
	type rawBlock struct {
		key  int32
		vals []string
	}
	nw := len(bb) - 1
	parts := make([][][]rawBlock, nw)
	par.Run(nw, func(w int) {
		local := make([][]rawBlock, len(rels))
		for _, id := range bids[bb[w]:bb[w+1]] {
			rid := iv.relID[id.Rel]
			local[rid] = append(local[rid], rawBlock{iv.constID[id.Key], db.blocks[id]})
		}
		parts[w] = local
	})
	for rid := range iv.blocks {
		var rb []rawBlock
		for w := 0; w < nw; w++ {
			rb = append(rb, parts[w][rid]...)
		}
		sort.Slice(rb, func(i, j int) bool { return rb[i].key < rb[j].key })
		out := make([]InternedBlock, len(rb))
		ob := par.Blocks(len(rb), workers, 1)
		par.Run(len(ob)-1, func(w int) {
			for i := ob[w]; i < ob[w+1]; i++ {
				vals := make([]int32, len(rb[i].vals))
				for j, v := range rb[i].vals {
					vals[j] = iv.constID[v]
				}
				out[i] = InternedBlock{Key: rb[i].key, Vals: vals}
			}
		})
		iv.blocks[rid] = out
	}

	db.publish(viewCache{adom: adom, rels: rels, interned: iv})
}
