// Package instance implements database instances over binary relations
// with primary keys on the first position (Section 2 of the paper): facts,
// key-equal facts, blocks, consistency, repairs, the active domain, and
// the directed edge-colored graph view of an instance.
//
// # Snapshot lineage and the invalidation contract
//
// Every accessor view — and in particular the dense-id Interned view the
// solver tiers evaluate on — is memoized in one atomic snapshot that a
// mutation invalidates wholesale. The contract the tiers rely on:
//
//   - Pointer identity of an *Interned names one immutable instance
//     state. Two loads that return the same pointer saw the same facts;
//     a mutation can never be observed through an old pointer.
//   - Concurrent first readers converge on ONE pointer per state (the
//     publish CAS is first-wins), so a per-snapshot memo keyed by the
//     pointer builds each artifact at most once per state.
//   - Mutation IS invalidation: solver memos keyed by the snapshot
//     pointer need no invalidation protocol — a stale snapshot simply
//     can never be looked up again, and ages out of its memo's LRU.
//
// On top of identity, snapshots form a structural *lineage*: when a
// mutation touches only blocks over the existing constant and relation
// universe, the next Interned build is a copy-on-write delta of the
// previous snapshot — the const/relation id tables are shared (ids are
// stable along the lineage), only the touched relations' block lists
// are re-interned, and the child records a Delta{Parent, Touched}
// describing exactly which blocks differ. Memos use the lineage for
// *repair*: on a miss for snapshot S whose ancestor's artifact is still
// resident, a tier patches the ancestor artifact along the accumulated
// touched set instead of cold-building (memo.LRU.GetOrRepair). A
// mutation that changes the universe (new constant or relation, or one
// dropped by Remove), piles up too many dirty blocks, or extends the
// lineage past MaxLineageDepth starts a fresh root instead — repair is
// an optimization, never a correctness requirement, and a bounded
// lineage keeps at most MaxLineageDepth old snapshots reachable.
package instance

import (
	"cqa/internal/bitset"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"cqa/internal/faultinject"
	"cqa/internal/words"
)

// Fact is a fact R(key, val) of a binary relation R whose first position
// is the primary key.
type Fact struct {
	Rel string // relation name
	Key string // primary-key constant
	Val string // non-key constant
}

// String renders the fact as R(a,b).
func (f Fact) String() string { return fmt.Sprintf("%s(%s,%s)", f.Rel, f.Key, f.Val) }

// KeyEqual reports whether f and g are key-equal: same relation name and
// same primary-key value (Section 2).
func (f Fact) KeyEqual(g Fact) bool { return f.Rel == g.Rel && f.Key == g.Key }

// BlockID identifies a block: the maximal set of key-equal facts with
// relation name Rel and primary key Key.
type BlockID struct {
	Rel string
	Key string
}

// String renders the block id as R(a,*).
func (b BlockID) String() string { return fmt.Sprintf("%s(%s,*)", b.Rel, b.Key) }

// Instance is a finite set of facts. It maintains block and adjacency
// indexes. The zero value is not ready for use; call New.
//
// An Instance is safe for concurrent READS (the accessors memoize their
// sorted views in an atomic snapshot); mutating methods (Add, Remove,
// AddAll) must not race with readers or each other.
type Instance struct {
	facts  map[Fact]struct{}
	blocks map[BlockID][]string // block -> sorted distinct vals
	// adom and rels count fact occurrences per constant and relation
	// name, so a removal knows in O(1) whether it shrank the universe —
	// the delta-interning path must not pay an O(|db|) domain recompute
	// per mutation.
	adom map[string]int
	rels map[string]int
	// views caches the sorted slices handed out by Adom, Blocks, Facts
	// and Relations; solvers call these on every evaluation, so
	// re-sorting per call is hot-path waste. The snapshot is immutable
	// once stored and invalidated wholesale on mutation.
	views atomic.Pointer[viewCache]

	// Delta-interning state, maintained by the mutating methods (which
	// by contract never race with readers or each other): prev is the
	// interned snapshot the dirty set is relative to, dirty the blocks
	// touched since prev was current, and dirtyFull is set when the
	// mutations changed the constant/relation universe (or overflowed
	// the dirty bound), forcing the next Interned build to start a
	// fresh lineage root.
	prev      *Interned
	dirty     map[BlockID]struct{}
	dirtyFull bool
	// lastDelta is the most recent delta child built (a child of some
	// snapshot on the current lineage). undoCollapse compares candidate
	// states against it so that flapping between two states A<->B
	// resolves both directions to existing pointers instead of
	// re-cloning B's snapshot on every revisit.
	lastDelta *Interned
}

// viewCache is an immutable snapshot of the sorted accessor views; nil
// fields are computed on demand (copy-on-write, so concurrent readers
// never see a partially built slice).
type viewCache struct {
	adom     []string
	blocks   []BlockID
	facts    []Fact
	rels     []string
	interned *Interned
}

// snapshot returns the current view snapshot, never nil.
func (db *Instance) snapshot() viewCache {
	if c := db.views.Load(); c != nil {
		return *c
	}
	return viewCache{}
}

// publish merges an updated snapshot under a CAS loop and returns the
// snapshot that won. Fields already published win over the caller's
// freshly built ones, so concurrent readers racing to memoize the same
// view all converge on ONE value — in particular one *Interned pointer
// per instance state, the identity the solver tiers (and the engine's
// snapshot-affine batch shards) key their per-snapshot memos on. A
// losing builder's work is discarded, never handed out. Callers must
// therefore return the winning snapshot's field, not their own build.
func (db *Instance) publish(c viewCache) viewCache {
	for {
		old := db.views.Load()
		merged := c
		if old != nil {
			if old.adom != nil {
				merged.adom = old.adom
			}
			if old.blocks != nil {
				merged.blocks = old.blocks
			}
			if old.facts != nil {
				merged.facts = old.facts
			}
			if old.rels != nil {
				merged.rels = old.rels
			}
			if old.interned != nil {
				merged.interned = old.interned
			}
		}
		if db.views.CompareAndSwap(old, &merged) {
			return merged
		}
	}
}

// invalidate drops the memoized views after a mutation.
func (db *Instance) invalidate() { db.views.Store(nil) }

// maxDirtyBlocks bounds the dirty set a delta build will patch; past it
// a full rebuild is cheaper than merging per-block edits.
const maxDirtyBlocks = 64

// noteMutation records that a mutation touched block bid. It is called
// by the mutating methods before invalidate, so it can still see the
// snapshot the mutation is diverging from; universe must be true when
// the mutation changed the constant or relation universe (which makes
// the interned id tables unshareable). Mutations never race with
// readers or each other (the Instance contract), so this state needs no
// synchronization.
func (db *Instance) noteMutation(bid BlockID, universe bool) {
	if c := db.views.Load(); c != nil && c.interned != nil && c.interned != db.prev {
		// A snapshot was built since the last mutation: the dirty set
		// restarts relative to it.
		db.prev = c.interned
		db.dirty = nil
		db.dirtyFull = false
	}
	if universe {
		db.dirtyFull = true
	}
	if db.dirtyFull {
		return
	}
	if db.dirty == nil {
		db.dirty = make(map[BlockID]struct{})
	}
	db.dirty[bid] = struct{}{}
	if len(db.dirty) > maxDirtyBlocks {
		db.dirtyFull = true
	}
}

// New returns an empty instance.
func New() *Instance {
	return &Instance{
		facts:  make(map[Fact]struct{}),
		blocks: make(map[BlockID][]string),
		adom:   make(map[string]int),
		rels:   make(map[string]int),
	}
}

// FromFacts returns an instance containing exactly the given facts.
func FromFacts(facts ...Fact) *Instance {
	db := New()
	for _, f := range facts {
		db.Add(f)
	}
	return db
}

// Add inserts fact f (idempotent). It returns db for chaining.
func (db *Instance) Add(f Fact) *Instance {
	if _, ok := db.facts[f]; ok {
		return db
	}
	// Read the occurrence counts once and write them back incremented:
	// a zero count is the universe-growth signal, and folding the
	// existence probes into the counter reads keeps the mutation at two
	// hash operations per key (this is the per-mutation hot path the
	// delta-interning tiers ride).
	ak := db.adom[f.Key]
	av := db.adom[f.Val]
	ar := db.rels[f.Rel]
	db.noteMutation(BlockID{f.Rel, f.Key}, ak == 0 || av == 0 || ar == 0)
	db.facts[f] = struct{}{}
	id := BlockID{f.Rel, f.Key}
	vals := db.blocks[id]
	pos := sort.SearchStrings(vals, f.Val)
	vals = append(vals, "")
	copy(vals[pos+1:], vals[pos:])
	vals[pos] = f.Val
	db.blocks[id] = vals
	if f.Key == f.Val {
		db.adom[f.Key] = ak + 2
	} else {
		db.adom[f.Key] = ak + 1
		db.adom[f.Val] = av + 1
	}
	db.rels[f.Rel] = ar + 1
	db.invalidate()
	return db
}

// AddFact inserts R(key, val).
func (db *Instance) AddFact(rel, key, val string) *Instance {
	return db.Add(Fact{rel, key, val})
}

// AddAll inserts all facts of other into db.
func (db *Instance) AddAll(other *Instance) *Instance {
	for f := range other.facts {
		db.Add(f)
	}
	return db
}

// Remove deletes fact f if present.
func (db *Instance) Remove(f Fact) {
	if _, ok := db.facts[f]; !ok {
		return
	}
	delete(db.facts, f)
	id := BlockID{f.Rel, f.Key}
	vals := db.blocks[id]
	pos := sort.SearchStrings(vals, f.Val)
	vals = append(vals[:pos], vals[pos+1:]...)
	if len(vals) == 0 {
		delete(db.blocks, id)
	} else {
		db.blocks[id] = vals
	}
	// Dropping the last occurrence of a constant or relation shrinks the
	// universe; the occurrence counts make that an O(1) check instead of
	// a full domain recompute, keeping removals on the delta-interning
	// path as cheap as insertions.
	universe := false
	for _, c := range [...]string{f.Key, f.Val} {
		if n := db.adom[c] - 1; n == 0 {
			delete(db.adom, c)
			universe = true
		} else {
			db.adom[c] = n
		}
	}
	if n := db.rels[f.Rel] - 1; n == 0 {
		delete(db.rels, f.Rel)
		universe = true
	} else {
		db.rels[f.Rel] = n
	}
	db.noteMutation(id, universe)
	db.invalidate()
}

// Contains reports whether f is in db.
func (db *Instance) Contains(f Fact) bool {
	_, ok := db.facts[f]
	return ok
}

// Size returns the number of facts.
func (db *Instance) Size() int { return len(db.facts) }

// Facts returns all facts in deterministic (sorted) order. The
// returned slice is memoized and must not be modified.
func (db *Instance) Facts() []Fact {
	c := db.snapshot()
	if c.facts != nil {
		return c.facts
	}
	out := make([]Fact, 0, len(db.facts))
	for f := range db.facts {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rel != b.Rel {
			return a.Rel < b.Rel
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Val < b.Val
	})
	c.facts = out
	return db.publish(c).facts
}

// Adom returns the active domain in sorted order. The returned slice is
// memoized and must not be modified.
func (db *Instance) Adom() []string {
	c := db.snapshot()
	if c.adom != nil {
		return c.adom
	}
	out := make([]string, 0, len(db.adom))
	for cst := range db.adom {
		out = append(out, cst)
	}
	sort.Strings(out)
	c.adom = out
	return db.publish(c).adom
}

// InAdom reports whether constant c occurs in db.
func (db *Instance) InAdom(c string) bool {
	_, ok := db.adom[c]
	return ok
}

// Relations returns the relation names occurring in db, sorted. The
// returned slice is memoized and must not be modified.
func (db *Instance) Relations() []string {
	c := db.snapshot()
	if c.rels != nil {
		return c.rels
	}
	out := make([]string, 0, len(db.rels))
	for r := range db.rels {
		out = append(out, r)
	}
	sort.Strings(out)
	c.rels = out
	return db.publish(c).rels
}

// Block returns the non-key values of the block R(key, *), sorted.
// The returned slice must not be modified.
func (db *Instance) Block(rel, key string) []string {
	return db.blocks[BlockID{rel, key}]
}

// HasBlock reports whether the block R(key,*) is nonempty.
func (db *Instance) HasBlock(rel, key string) bool {
	return len(db.blocks[BlockID{rel, key}]) > 0
}

// Blocks returns all block ids in deterministic order. The returned
// slice is memoized and must not be modified.
func (db *Instance) Blocks() []BlockID {
	c := db.snapshot()
	if c.blocks != nil {
		return c.blocks
	}
	out := make([]BlockID, 0, len(db.blocks))
	for id := range db.blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Key < out[j].Key
	})
	c.blocks = out
	return db.publish(c).blocks
}

// Interned is an immutable dense-integer view of an instance: the
// active domain and the relation names interned to dense ids, with
// every block rewritten to interned ids. Ids are assigned in sorted
// order, so id order coincides with the lexicographic order of the
// underlying names (and interned block values stay sorted ascending).
//
// Solvers index slices by these ids instead of hashing strings, which
// is what makes the Figure 5 fixpoint loop allocation- and hash-free
// per evaluation. A fresh Interned snapshot is built after every
// mutation of the instance (the memo lives in the same atomic view
// snapshot as Adom/Blocks/Facts), so pointer identity of an *Interned
// identifies one immutable instance state: compiled plans key their
// instance-bound transition tables on it and get invalidation on
// mutation for free.
type Interned struct {
	consts  []string
	constID map[string]int32
	rels    []string
	relID   map[string]int32
	blocks  [][]InternedBlock // indexed by relation id
	nfacts  int
	delta   *Delta // nil for lineage roots
}

// BlockRef names one block in interned id space: the relation id and
// the key constant id. Along a delta lineage ids are stable, so a ref
// recorded against one snapshot is valid for every snapshot of the
// lineage.
type BlockRef struct {
	Rel, Key int32
}

// Delta records how a snapshot structurally differs from its parent:
// the blocks whose contents changed (added, removed, or with a
// different value set). Touched may over-approximate (a block edited
// back to its old contents still appears), never under-approximate.
// Everything outside Touched — including the shared const/relation id
// tables and the untouched relations' block slices, which the child
// aliases rather than copies — is bit-identical between parent and
// child. Solver memos use the chain of Deltas to repair a resident
// ancestor artifact instead of cold-building (see memo.LRU.GetOrRepair
// and Lineage below).
type Delta struct {
	Parent  *Interned
	Touched []BlockRef
	// Depth is the number of delta edges back to the lineage root;
	// bounded by MaxLineageDepth, so a chain retains at most that many
	// old snapshots.
	Depth int
}

// MaxLineageDepth bounds how many delta edges a snapshot lineage may
// chain before the next build starts a fresh root. Each delta snapshot
// keeps its parent reachable (repair needs it), so the bound caps both
// the retained memory and the worst-case accumulated Touched set a
// repair must patch.
const MaxLineageDepth = 256

// Delta returns the lineage record of this snapshot, or nil when it is
// a lineage root (built from scratch, with nothing to repair from).
func (iv *Interned) Delta() *Delta { return iv.delta }

// LineageDepth returns the number of delta edges between iv and its
// lineage root (0 for a root). The difference of two depths on the same
// chain is the hop distance a repair crosses, the quantity behind
// memo.Stats.MaxLineageDepth.
func (iv *Interned) LineageDepth() int {
	if iv.delta == nil {
		return 0
	}
	return iv.delta.Depth
}

// Lineage walks the delta chain from iv towards the root, looking for
// an ancestor accepted by resident (typically: "my memo still holds an
// artifact for this snapshot"). It returns that ancestor together with
// the union of all Touched sets on the path (deduplicated) — exactly
// the blocks a repair must reconcile to turn the ancestor's artifact
// into iv's. ok is false when no acceptable ancestor exists within the
// chain, or iv is a root.
func Lineage(iv *Interned, resident func(*Interned) bool) (parent *Interned, touched []BlockRef, ok bool) {
	seen := make(map[BlockRef]struct{})
	for cur := iv; cur.delta != nil; cur = cur.delta.Parent {
		for _, t := range cur.delta.Touched {
			if _, dup := seen[t]; !dup {
				seen[t] = struct{}{}
				touched = append(touched, t)
			}
		}
		if p := cur.delta.Parent; resident(p) {
			return p, touched, true
		}
	}
	return nil, nil, false
}

// InternedBlock is one block R(key,*) in interned form: the key
// constant id and the sorted ids of the non-key values.
type InternedBlock struct {
	Key  int32
	Vals []int32
}

// Interned returns the interned view of db, building and memoizing it
// on first use. The returned value is immutable and shared; like the
// other accessor views it must not be modified, and it is safe for any
// number of concurrent readers.
func (db *Instance) Interned() *Interned {
	if c := db.snapshot(); c.interned != nil {
		return c.interned
	}
	if iv := db.internedDelta(); iv != nil {
		// Chaos failpoint: a freshly interned delta snapshot is about to
		// be published. Interned has no error path, so an injected error
		// escalates to a panic for the callers' recover boundaries.
		if err := faultinject.Fire(faultinject.SnapshotPublish); err != nil {
			panic(err)
		}
		c := db.snapshot()
		c.interned = iv
		return db.publish(c).interned
	}
	// Build from the memoized sorted views so interned id order is
	// exactly their deterministic order.
	adom, rels, blocks := db.Adom(), db.Relations(), db.Blocks()
	iv := &Interned{
		consts:  adom,
		constID: make(map[string]int32, len(adom)),
		rels:    rels,
		relID:   make(map[string]int32, len(rels)),
		blocks:  make([][]InternedBlock, len(rels)),
		nfacts:  len(db.facts),
	}
	for i, s := range adom {
		iv.constID[s] = int32(i)
	}
	for i, r := range rels {
		iv.relID[r] = int32(i)
	}
	for _, id := range blocks {
		rid := iv.relID[id.Rel]
		vals := db.blocks[id]
		ib := InternedBlock{Key: iv.constID[id.Key], Vals: make([]int32, len(vals))}
		for i, v := range vals {
			ib.Vals[i] = iv.constID[v]
		}
		iv.blocks[rid] = append(iv.blocks[rid], ib)
	}
	// Chaos failpoint: a freshly interned root snapshot is about to be
	// published (same escalation contract as the delta branch above).
	if err := faultinject.Fire(faultinject.SnapshotPublish); err != nil {
		panic(err)
	}
	c := db.snapshot()
	c.interned = iv
	// Adopt a concurrently published snapshot if one beat this build:
	// every caller must see the same pointer for the same state.
	return db.publish(c).interned
}

// internedDelta builds the next snapshot as a copy-on-write delta of
// db.prev, or returns nil when the lineage must restart from a fresh
// root: no previous snapshot, a universe change or dirty overflow
// (dirtyFull), or a chain already at MaxLineageDepth. Like Interned it
// only reads the mutation-side state (mutations never race readers),
// so concurrent first readers may both build a delta child of the same
// parent — the publish CAS converges them on one pointer as usual.
func (db *Instance) internedDelta() *Interned {
	prev := db.prev
	if prev == nil || db.dirtyFull || len(db.dirty) == 0 {
		return nil
	}
	if prev.delta != nil && prev.delta.Depth >= MaxLineageDepth {
		return nil
	}
	// Intern the dirty blocks against the parent's id tables. Every
	// name must already have an id — the mutators set dirtyFull on any
	// universe change — but fall back to a root build rather than trust
	// that invariant with a panic.
	edits := make([]blockEdit, 0, len(db.dirty))
	for bid := range db.dirty {
		rid, okR := prev.relID[bid.Rel]
		kid, okK := prev.constID[bid.Key]
		if !okR || !okK {
			return nil
		}
		vals := db.blocks[bid]
		ivals := make([]int32, len(vals))
		for i, v := range vals {
			cid, ok := prev.constID[v]
			if !ok {
				return nil
			}
			ivals[i] = cid
		}
		edits = append(edits, blockEdit{BlockRef{rid, kid}, ivals})
	}
	// A mutation run that exactly restores an existing snapshot needs no
	// new snapshot at all: if every dirty block carries prev's content
	// the state still IS prev, and if the run exactly undid prev's delta
	// it is prev's parent. Republishing that pointer keeps the lineage
	// shallow and turns the A/B flapping of add-then-compensate churn
	// into pure memo hits downstream — no repair, no per-delta clone of
	// the touched relation's block list, no depth growth towards the
	// MaxLineageDepth root restart.
	if iv := db.undoCollapse(prev, edits); iv != nil {
		return iv
	}
	sort.Slice(edits, func(i, j int) bool {
		a, b := edits[i].ref, edits[j].ref
		if a.Rel != b.Rel {
			return a.Rel < b.Rel
		}
		return a.Key < b.Key
	})

	child := &Interned{
		consts:  prev.consts,
		constID: prev.constID,
		rels:    prev.rels,
		relID:   prev.relID,
		blocks:  make([][]InternedBlock, len(prev.blocks)),
		nfacts:  len(db.facts),
	}
	copy(child.blocks, prev.blocks)
	touched := make([]BlockRef, len(edits))
	cloned := make(map[int32]bool, 4)
	for i, e := range edits {
		touched[i] = e.ref
		bs := child.blocks[e.ref.Rel]
		if !cloned[e.ref.Rel] {
			bs = append([]InternedBlock(nil), bs...)
			cloned[e.ref.Rel] = true
		}
		pos := sort.Search(len(bs), func(k int) bool { return bs[k].Key >= e.ref.Key })
		present := pos < len(bs) && bs[pos].Key == e.ref.Key
		switch {
		case len(e.vals) == 0: // block emptied by Remove
			if present {
				bs = append(bs[:pos], bs[pos+1:]...)
			}
		case present:
			bs[pos] = InternedBlock{Key: e.ref.Key, Vals: e.vals}
		default:
			bs = append(bs, InternedBlock{})
			copy(bs[pos+1:], bs[pos:])
			bs[pos] = InternedBlock{Key: e.ref.Key, Vals: e.vals}
		}
		child.blocks[e.ref.Rel] = bs
	}
	depth := 1
	if prev.delta != nil {
		depth = prev.delta.Depth + 1
	}
	child.delta = &Delta{Parent: prev, Touched: touched, Depth: depth}
	db.lastDelta = child
	return child
}

// blockEdit is one dirty block interned against the lineage's id
// tables: the block's ref and its full current value set (empty when
// the block was removed).
type blockEdit struct {
	ref  BlockRef
	vals []int32
}

// undoCollapse returns the existing snapshot the edits restore, or nil
// when the current state is genuinely new. Pointer identity is state
// identity for snapshots, so handing back a restored snapshot is not
// just an allocation win: every tier memo still holds that pointer's
// artifacts and hits without any repair. Three candidates cover the
// churn patterns that actually recur: prev itself (the dirty set was a
// no-op, e.g. add-then-remove between two builds), prev's parent (this
// run undid prev's delta), and the last delta child built off prev
// (this run redid a delta we just stepped back from — the B side of an
// A<->B flap).
func (db *Instance) undoCollapse(prev *Interned, edits []blockEdit) *Interned {
	nfacts := len(db.facts)
	if prev.nfacts == nfacts && editsMatch(prev, edits) {
		return prev
	}
	if d := prev.delta; d != nil && d.Parent.nfacts == nfacts &&
		touchedCovered(d.Touched, edits) && editsMatch(d.Parent, edits) {
		return d.Parent
	}
	if c := db.lastDelta; c != nil && c != prev && c.delta.Parent == prev &&
		c.nfacts == nfacts && touchedCovered(c.delta.Touched, edits) &&
		editsMatch(c, edits) {
		return c
	}
	return nil
}

// touchedCovered reports whether every ref in touched is among the
// edits. A candidate snapshot equals the current state only if each
// block it differs from its delta-neighbor on was re-edited this run —
// the equality of everything else follows structurally, because blocks
// outside the dirty set are bit-identical to prev's and blocks outside
// Touched are bit-identical across the delta edge.
func touchedCovered(touched []BlockRef, edits []blockEdit) bool {
	for _, t := range touched {
		found := false
		for _, e := range edits {
			if e.ref == t {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// editsMatch reports whether every edited block carries exactly iv's
// content for that block, an empty edit matching an absent block.
func editsMatch(iv *Interned, edits []blockEdit) bool {
	for _, e := range edits {
		got := iv.Block(e.ref.Rel, e.ref.Key)
		if len(got) != len(e.vals) {
			return false
		}
		for i, v := range got {
			if e.vals[i] != v {
				return false
			}
		}
	}
	return true
}

// NumConsts returns the number of interned constants (|adom|).
func (iv *Interned) NumConsts() int { return len(iv.consts) }

// Const returns the constant name with interned id c.
func (iv *Interned) Const(c int32) string { return iv.consts[c] }

// Consts returns the interned constant names in id order (the sorted
// active domain). The slice is shared and must not be modified.
func (iv *Interned) Consts() []string { return iv.consts }

// ConstID returns the interned id of constant c.
func (iv *Interned) ConstID(c string) (int32, bool) {
	id, ok := iv.constID[c]
	return id, ok
}

// NumRels returns the number of interned relation names.
func (iv *Interned) NumRels() int { return len(iv.rels) }

// Rel returns the relation name with interned id r.
func (iv *Interned) Rel(r int32) string { return iv.rels[r] }

// RelID returns the interned id of relation name r.
func (iv *Interned) RelID(r string) (int32, bool) {
	id, ok := iv.relID[r]
	return id, ok
}

// RelBlocks returns the blocks of the relation with interned id r, in
// ascending key-id order. The slice is shared and must not be modified.
func (iv *Interned) RelBlocks(r int32) []InternedBlock { return iv.blocks[r] }

// Block returns the non-key value ids of the block r(key,*), sorted
// ascending — the interned counterpart of Instance.Block. It binary
// searches the relation's key-ordered block list, so the snapshot
// carries no per-relation dense index (interning stays proportional to
// the facts, not relations × constants). The slice is shared and must
// not be modified.
func (iv *Interned) Block(r, key int32) []int32 {
	bs := iv.blocks[r]
	i, j := 0, len(bs)
	for i < j {
		h := (i + j) >> 1
		if bs[h].Key < key {
			i = h + 1
		} else {
			j = h
		}
	}
	if i < len(bs) && bs[i].Key == key {
		return bs[i].Vals
	}
	return nil
}

// NumFacts returns the number of facts in the interned snapshot.
func (iv *Interned) NumFacts() int { return iv.nfacts }

// InternWord interns the relation names of w to relation ids. A
// relation absent from the instance gets id -1: it has no blocks, so
// any walk step over it is empty.
func (iv *Interned) InternWord(w words.Word) []int32 {
	out := make([]int32, len(w))
	for i, rel := range w {
		if id, ok := iv.relID[rel]; ok {
			out[i] = id
		} else {
			out[i] = -1
		}
	}
	return out
}

// WalkBuf holds reusable frontier scratch for WalkEnds, so a caller
// walking from many start constants allocates the two frontier bitsets
// once. The zero value is ready for use.
type WalkBuf struct {
	cur, next bitset.Bits
}

func (b *WalkBuf) grow(nw int) {
	if cap(b.cur) < nw {
		b.cur = make(bitset.Bits, nw)
		b.next = make(bitset.Bits, nw)
	}
	b.cur = b.cur[:nw]
	b.next = b.next[:nw]
}

// WalkEnds returns the ids of the constants d such that the instance
// has a (not necessarily consistent) path from c to d with trace rels
// (relation ids as produced by InternWord), in ascending order — the
// interned counterpart of Instance.WalkEnds. buf may be nil.
func (iv *Interned) WalkEnds(c int32, rels []int32, buf *WalkBuf) []int32 {
	if buf == nil {
		buf = &WalkBuf{}
	}
	nc := len(iv.consts)
	buf.grow((nc + 63) >> 6)
	cur, next := buf.cur, buf.next
	cur.Clear()
	cur.Set(int(c))
	for _, rid := range rels {
		next.Clear()
		any := false
		if rid >= 0 {
			cur.ForEach(func(x int) {
				for _, v := range iv.Block(rid, int32(x)) {
					next.Set(int(v))
					any = true
				}
			})
		}
		cur, next = next, cur
		if !any {
			buf.cur, buf.next = cur, next
			return nil
		}
	}
	buf.cur, buf.next = cur, next
	var out []int32
	cur.ForEach(func(x int) { out = append(out, int32(x)) })
	return out
}

// ConflictingBlocks returns the ids of blocks with more than one fact.
func (db *Instance) ConflictingBlocks() []BlockID {
	var out []BlockID
	for _, id := range db.Blocks() {
		if len(db.blocks[id]) > 1 {
			out = append(out, id)
		}
	}
	return out
}

// IsConsistent reports whether no block contains more than one fact.
func (db *Instance) IsConsistent() bool {
	for _, vals := range db.blocks {
		if len(vals) > 1 {
			return false
		}
	}
	return true
}

// Out returns the successors d with R(c, d) ∈ db, sorted. For a
// consistent instance this has at most one element per (R, c).
func (db *Instance) Out(rel, c string) []string { return db.Block(rel, c) }

// Clone returns an independent deep copy of db.
func (db *Instance) Clone() *Instance {
	out := New()
	for f := range db.facts {
		out.Add(f)
	}
	return out
}

// Equal reports whether db and other contain exactly the same facts.
func (db *Instance) Equal(other *Instance) bool {
	if len(db.facts) != len(other.facts) {
		return false
	}
	for f := range db.facts {
		if !other.Contains(f) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every fact of db is in other.
func (db *Instance) SubsetOf(other *Instance) bool {
	for f := range db.facts {
		if !other.Contains(f) {
			return false
		}
	}
	return true
}

// IsRepairOf reports whether db is a repair of full: a maximal consistent
// subset. Equivalently: db ⊆ full, db is consistent, and db contains
// exactly one fact from every block of full.
func (db *Instance) IsRepairOf(full *Instance) bool {
	if !db.IsConsistent() || !db.SubsetOf(full) {
		return false
	}
	for _, id := range full.Blocks() {
		if len(db.Block(id.Rel, id.Key)) != 1 {
			return false
		}
	}
	return true
}

// String renders the instance as a sorted fact list.
func (db *Instance) String() string {
	facts := db.Facts()
	parts := make([]string, len(facts))
	for i, f := range facts {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
