package instance

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// bulkCSV renders n pseudo-random facts over a modest universe as CSV,
// with duplicates (the dedup stage must collapse them exactly like
// repeated Add calls do).
func bulkCSV(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	rels := []string{"R", "X", "Y", "A"}
	var b strings.Builder
	for i := 0; i < n; i++ {
		k := rng.Intn(n/4 + 1)
		v := rng.Intn(n/4 + 1)
		fmt.Fprintf(&b, "%s,c%d,c%d\n", rels[rng.Intn(len(rels))], k, v)
	}
	return b.String()
}

// checkSameInstance asserts full equivalence: fact-level Equal both
// ways plus identical interned snapshots (id tables and block lists).
func checkSameInstance(t *testing.T, got, want *Instance) {
	t.Helper()
	if !got.Equal(want) || !want.Equal(got) {
		t.Fatalf("instances differ: got %d facts, want %d", len(got.facts), len(want.facts))
	}
	gi, wi := got.Interned(), want.Interned()
	if gi.NumFacts() != wi.NumFacts() {
		t.Fatalf("NumFacts = %d, want %d", gi.NumFacts(), wi.NumFacts())
	}
	gc, wc := gi.Consts(), wi.Consts()
	if len(gc) != len(wc) {
		t.Fatalf("NumConsts = %d, want %d", len(gc), len(wc))
	}
	for i := range gc {
		if gc[i] != wc[i] {
			t.Fatalf("const id %d = %q, want %q", i, gc[i], wc[i])
		}
	}
	if gi.NumRels() != wi.NumRels() {
		t.Fatalf("NumRels = %d, want %d", gi.NumRels(), wi.NumRels())
	}
	for r := 0; r < gi.NumRels(); r++ {
		if gi.Rel(int32(r)) != wi.Rel(int32(r)) {
			t.Fatalf("rel id %d = %q, want %q", r, gi.Rel(int32(r)), wi.Rel(int32(r)))
		}
		gb, wb := gi.RelBlocks(int32(r)), wi.RelBlocks(int32(r))
		if len(gb) != len(wb) {
			t.Fatalf("rel %d: %d blocks, want %d", r, len(gb), len(wb))
		}
		for i := range gb {
			if gb[i].Key != wb[i].Key {
				t.Fatalf("rel %d block %d: key %d, want %d", r, i, gb[i].Key, wb[i].Key)
			}
			if len(gb[i].Vals) != len(wb[i].Vals) {
				t.Fatalf("rel %d block %d: %d vals, want %d", r, i, len(gb[i].Vals), len(wb[i].Vals))
			}
			for j := range gb[i].Vals {
				if gb[i].Vals[j] != wb[i].Vals[j] {
					t.Fatalf("rel %d block %d val %d: %d, want %d", r, i, j, gb[i].Vals[j], wb[i].Vals[j])
				}
			}
		}
	}
}

// TestReadCSVParallelEquivalence loads the same multi-chunk input
// through both paths and demands identical instances and identical
// interned snapshots. 50k rows at ~14 bytes each spans several reader
// chunks, so chunk-boundary line carry is exercised for real.
func TestReadCSVParallelEquivalence(t *testing.T) {
	csvText := bulkCSV(50000, 7)
	want, err := ReadCSV(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := ReadCSVParallel(strings.NewReader(csvText), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkSameInstance(t, got, want)
		if c := got.views.Load(); c == nil || c.interned == nil {
			t.Fatalf("workers=%d: interned snapshot not pre-published", workers)
		}
	}
}

// TestReadCSVParallelQuirks covers the format corners: quoted fields
// with embedded commas and quotes, comment and blank lines, CRLF
// endings, surrounding whitespace, and a missing trailing newline.
func TestReadCSVParallelQuirks(t *testing.T) {
	in := "# header comment\r\n" +
		"R,a,b\r\n" +
		"\n" +
		"  R , a , c\n" +
		"X,\"k,1\",\"va\"\"l\"\n" +
		"# mid comment\n" +
		"Y,a,a\n" +
		"X,last,row"
	want, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVParallel(strings.NewReader(in), 4)
	if err != nil {
		t.Fatal(err)
	}
	checkSameInstance(t, got, want)
	if !got.Contains(Fact{Rel: "X", Key: "k,1", Val: `va"l`}) {
		t.Fatalf("quoted fact missing: %v", got.Facts())
	}
	if !got.Contains(Fact{Rel: "X", Key: "last", Val: "row"}) {
		t.Fatalf("unterminated final line dropped: %v", got.Facts())
	}
}

func TestReadCSVParallelEmpty(t *testing.T) {
	db, err := ReadCSVParallel(strings.NewReader(""), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.facts) != 0 || db.Interned().NumConsts() != 0 {
		t.Fatalf("empty input produced %d facts", len(db.facts))
	}
}

// TestReadCSVParallelErrors checks that malformed input fails with the
// lowest bad line's error even when later chunks also contain bad rows
// or parse concurrently.
func TestReadCSVParallelErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"empty-field", "R,a,b\nR,,b\n", "line 2"},
		{"too-few-fields", "R,a,b\nX,a\n", "line 2"},
		{"too-many-fields", "R,a,b,c\n", "line 1"},
		{"bad-quote", "R,\"a,b\n", "line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("sequential path accepted %q", tc.in)
			}
			_, err := ReadCSVParallel(strings.NewReader(tc.in), 4)
			if err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestReadCSVParallelFirstErrorWins plants two bad rows chunks apart;
// the reported error must name the earlier line no matter which worker
// hits its chunk first.
func TestReadCSVParallelFirstErrorWins(t *testing.T) {
	rows := strings.Split(strings.TrimSuffix(bulkCSV(40000, 9), "\n"), "\n")
	rows[99] = "R,,broken"    // line 100
	rows[38999] = "X,,broken" // line 39000
	in := strings.Join(rows, "\n") + "\n"
	for i := 0; i < 5; i++ {
		_, err := ReadCSVParallel(strings.NewReader(in), 8)
		if err == nil {
			t.Fatal("bad input accepted")
		}
		if !strings.Contains(err.Error(), "line 100") {
			t.Fatalf("run %d: error %q, want first bad line 100", i, err)
		}
	}
}

// TestReadCSVParallelWorkersOne checks the delegation path: identical
// to ReadCSV, with the snapshot already published.
func TestReadCSVParallelWorkersOne(t *testing.T) {
	in := bulkCSV(500, 3)
	want, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVParallel(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	checkSameInstance(t, got, want)
	if c := got.views.Load(); c == nil || c.interned == nil {
		t.Fatal("workers=1: interned snapshot not pre-published")
	}
}

// TestReadCSVParallelMutateAfterLoad confirms a bulk-loaded instance
// behaves like an incrementally built one under later mutation: the
// first post-load Interned() call delta-chains off the bulk snapshot.
func TestReadCSVParallelMutateAfterLoad(t *testing.T) {
	in := bulkCSV(2000, 5)
	db, err := ReadCSVParallel(strings.NewReader(in), 4)
	if err != nil {
		t.Fatal(err)
	}
	root := db.Interned()
	db.AddFact("R", "c1", "c2")
	iv := db.Interned()
	if iv.Delta() == nil || iv.Delta().Parent != root {
		t.Fatalf("post-load mutation should delta-chain off the bulk snapshot")
	}
	seq, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	seq.AddFact("R", "c1", "c2")
	checkSameInstance(t, db, seq)
}

var benchLoadSink *Instance

// BenchmarkReadCSV measures the sequential loader (ReuseRecord on), for
// allocs/op comparison against the parallel pipeline.
func BenchmarkReadCSV(b *testing.B) {
	data := []byte(bulkCSV(20000, 21))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		benchLoadSink = db
	}
}
