package sat

import (
	"context"
	"testing"
	"time"
)

func TestSolveCtxPreCanceled(t *testing.T) {
	s := NewSolver(1)
	s.AddClause(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := s.SolveAssumingCtx(ctx); got != Canceled {
		t.Fatalf("pre-canceled solve = %v, want CANCELED", got)
	}
	// The solver survives a cancellation and decides normally after.
	if got := s.SolveAssumingCtx(context.Background()); got != Sat {
		t.Fatalf("solve after cancellation = %v, want SAT", got)
	}
}

// TestSolveCtxCancelMidSearch cancels a search that would otherwise run
// for an astronomically long time (PHP(13,12) without symmetry
// breaking): the in-loop context poll must surface the cancellation.
func TestSolveCtxCancelMidSearch(t *testing.T) {
	s := php(13, 12)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	got := s.SolveAssumingCtx(ctx)
	if got != Canceled {
		t.Fatalf("canceled solve = %v, want CANCELED", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v: context poll not reached", elapsed)
	}
}

// TestSolveCtxRootUnsatBeatsCancellation: a solver already proven
// unsatisfiable at the root answers UNSAT even under a canceled
// context — the decision is free and callers prefer it.
func TestSolveCtxRootUnsatBeatsCancellation(t *testing.T) {
	s := NewSolver(1)
	s.AddClause(1)
	s.AddClause(-1)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("setup: %v", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := s.SolveAssumingCtx(ctx); got != Unsat {
		t.Fatalf("root-unsat solve under canceled ctx = %v, want UNSAT", got)
	}
}
