// Package sat implements an incremental CDCL (conflict-driven clause
// learning) SAT solver over CNF formulas: two-watched-literal
// propagation, first-UIP conflict analysis with clause learning,
// VSIDS activity-based branching over a lazy max-heap with phase
// saving, Luby restarts, and MiniSat-style assumption solving. It is
// the generic substrate for the coNP solver tier (Section 7.2 of the
// paper shows coNP-hardness via SAT; practical CQA systems such as
// CAvSAT, discussed in Section 9, use SAT solvers in the same role).
//
// A Solver is reusable: SolveAssuming resets the search trail to the
// root level, so the same clause database — including everything
// learned by earlier calls — can be re-solved under different
// assumption literals without re-adding clauses. This is what lets the
// coNP tier memoize one encoded CNF per instance snapshot and pay only
// the search (warmed by saved phases and learned clauses) on repeated
// decisions.
//
// Literals are nonzero integers in the DIMACS convention: +v is the
// positive literal of variable v (1-based), -v its negation.
package sat

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"cqa/internal/faultinject"
)

// Status is the result of solving.
type Status int

const (
	// Sat means a satisfying assignment was found.
	Sat Status = iota
	// Unsat means the formula (under the given assumptions, if any) is
	// unsatisfiable.
	Unsat
	// Unknown means the solver hit its conflict budget.
	Unknown
	// Canceled means SolveAssumingCtx observed its context's
	// cancellation before the search concluded. The solver remains
	// usable: the next solve call resets the trail to the root level as
	// always, and everything learned before the cancellation is kept.
	Canceled
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	case Canceled:
		return "CANCELED"
	default:
		return "UNKNOWN"
	}
}

// ErrBadLiteral is returned by AddClause for zero or out-of-range
// literals.
var ErrBadLiteral = errors.New("sat: literal out of range")

const (
	unassigned int8 = 0
	trueVal    int8 = 1
	falseVal   int8 = -1
)

type clause struct {
	lits []int
	// act is the clause activity driving learned-clause deletion; learnt
	// marks clauses in the learned database, removed marks clauses
	// dropped by reduceDB/PurgeLearnts whose watch entries are filtered
	// lazily. dormant marks problem clauses attached without watches —
	// root-level units, and clauses satisfied or asserting at the root
	// when attachNew saw them — which a root-trail retraction must
	// re-check (propagation alone cannot revive an unwatched clause).
	act     float64
	learnt  bool
	removed bool
	dormant bool
}

// Solver is an incremental CDCL SAT solver instance. Create with
// NewSolver, add clauses with AddClause (or AddClauseFrom), then call
// Solve or SolveAssuming — repeatedly, and interleaved with further
// clause additions. A Solver is stateful and NOT safe for concurrent
// use; callers that share one (the conp encoding memo) serialize.
type Solver struct {
	nVars   int
	clauses []*clause // problem clauses
	learnts []*clause // learned clauses (persist across solves)
	// watches[litIndex] = clauses watching that literal.
	watches [][]*clause

	assign   []int8 // by variable (1-based)
	level    []int  // decision level per variable
	reason   []*clause
	trail    []int // assigned literals in order
	trailLim []int
	qhead    int // propagation cursor into trail (persists at level 0)

	activity []float64
	varInc   float64
	phase    []int8

	// claInc / learntLimit drive activity-based learned-clause deletion:
	// when the learned database reaches learntLimit, reduceDB drops the
	// lower-activity half (keeping locked and binary clauses) and the
	// limit grows geometrically.
	claInc      float64
	learntLimit int

	// order is the VSIDS branching heap: variables by activity,
	// max-first, with lazy deletion (assigned variables are skipped at
	// pop time and re-inserted on backtrack).
	order    []int32
	orderPos []int32 // orderPos[v] = index in order, -1 when absent

	// attached counts the prefix of clauses whose watches (or root-level
	// units) have been installed; clauses added after the last solve are
	// attached at the start of the next one, under the then-current
	// root-level assignment.
	attached  int
	rootUnsat bool // the formula is unsatisfiable without assumptions

	// needReassert is set by root-trail surgery (PurgeLearnts,
	// RetractDepending): dormant clauses carry no watches, so
	// propagation alone cannot revive one whose satisfying assignment
	// was retracted. When set, the next attachNew re-checks every
	// dormant clause in the attached prefix. Solvers that never retract
	// (the cold path) never pay for the re-check.
	needReassert bool

	propagations uint64
	conflicts    uint64
	decisions    uint64

	// MaxConflicts bounds the search (cumulatively across calls);
	// 0 means unbounded.
	MaxConflicts uint64

	// MaxLearnts, when positive, fixes the learned-database size that
	// triggers reduceDB; 0 picks an automatic limit from the problem
	// size.
	MaxLearnts int
}

// NewSolver returns a solver for variables 1..nVars.
func NewSolver(nVars int) *Solver {
	s := &Solver{
		nVars:    nVars,
		watches:  make([][]*clause, 2*(nVars+1)),
		assign:   make([]int8, nVars+1),
		level:    make([]int, nVars+1),
		reason:   make([]*clause, nVars+1),
		activity: make([]float64, nVars+1),
		phase:    make([]int8, nVars+1),
		order:    make([]int32, 0, nVars),
		orderPos: make([]int32, nVars+1),
		varInc:   1,
		claInc:   1,
	}
	// All activities start equal, so insertion order is a valid heap.
	for v := 1; v <= nVars; v++ {
		s.orderPos[v] = int32(len(s.order))
		s.order = append(s.order, int32(v))
	}
	return s
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of problem clauses added.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearned returns the number of clauses learned so far. Callers that
// keep a Solver hot across many re-decisions can use it to decide when
// the learned-clause database has outgrown its usefulness and a rebuild
// is cheaper than carrying it.
func (s *Solver) NumLearned() int { return len(s.learnts) }

// Stats returns (decisions, propagations, conflicts), cumulative across
// all Solve calls.
func (s *Solver) Stats() (uint64, uint64, uint64) {
	return s.decisions, s.propagations, s.conflicts
}

// ExtendVars grows the variable range to 1..n (a no-op when n does not
// exceed the current range). New variables start unassigned, with zero
// activity and default phase, and join the branching order. Incremental
// encoders use it to splice fresh selector and Tseitin variables into a
// live solver when a snapshot delta adds facts.
func (s *Solver) ExtendVars(n int) {
	if n <= s.nVars {
		return
	}
	w := make([][]*clause, 2*(n+1))
	copy(w, s.watches)
	s.watches = w
	grow := n - s.nVars
	s.assign = append(s.assign, make([]int8, grow)...)
	s.level = append(s.level, make([]int, grow)...)
	s.reason = append(s.reason, make([]*clause, grow)...)
	s.activity = append(s.activity, make([]float64, grow)...)
	s.phase = append(s.phase, make([]int8, grow)...)
	s.orderPos = append(s.orderPos, make([]int32, grow)...)
	for v := s.nVars + 1; v <= n; v++ {
		s.orderInsert(int32(v))
	}
	s.nVars = n
}

// WeakenClause appends lit to problem clause i (in addition order).
// Appending never disturbs the two watched literals, so it is safe on an
// attached clause mid-stream; a unit clause growing to length two joins
// the watch lists here. The caller must guarantee lit is in range and
// not already present; this is the incremental encoder's way to turn a
// clause into its weaker replacement in place (e.g. extending a block's
// at-least-one constraint with a newly added fact's selector) without
// rebuilding the solver.
//
// Soundness is the caller's burden: any root-level assignment that was
// derived *through* the strong version of the clause remains on the
// trail and may not hold of the weaker formula. Call
// RetractDepending with every clause about to be weakened (after
// PurgeLearnts, whose learned clauses embed the same strong
// consequences) before the first WeakenClause of a patch.
func (s *Solver) WeakenClause(i, lit int) {
	// A dormant clause (root unit, or satisfied at attach time) stays
	// dormant: appending a literal cannot unsatisfy it, and if the
	// assignment satisfying it is ever retracted, the scheduled re-check
	// installs watches for the grown clause.
	c := s.clauses[i]
	c.lits = append(c.lits, lit)
}

// ClauseLen returns the current length of problem clause i.
func (s *Solver) ClauseLen(i int) int { return len(s.clauses[i].lits) }

// RootFixed reports whether variable v is assigned at the root level
// (decision level 0). Root assignments persist across SolveAssuming
// calls, so an incremental encoder that weakens clauses must refuse to
// patch around a variable the solver has already fixed forever.
func (s *Solver) RootFixed(v int) bool {
	return v >= 1 && v <= s.nVars && s.assign[v] != unassigned && s.level[v] == 0
}

// RootUnsat reports whether the solver has derived unsatisfiability of
// the clause database itself (no assumptions). The flag is sticky;
// weakening clauses cannot clear it, so patching a root-unsat solver is
// unsound and callers must rebuild instead.
func (s *Solver) RootUnsat() bool { return s.rootUnsat }

// PurgeLearnts drops the entire learned-clause database and retracts
// every root-level assignment that was derived through it, keeping saved
// phases and variable activities. Incremental encoders call it before
// weakening clauses: learned clauses (and root units asserted by them)
// are consequences of the strong formula and may not hold of the weaker
// one, while assignments propagated purely from surviving problem
// clauses are re-derived from the re-propagation this schedules.
func (s *Solver) PurgeLearnts() {
	s.cancelUntil(0)
	// Root assignments are trail-ordered, so everything from the first
	// learnt-reasoned entry onward may transitively depend on the
	// learned database: retract the suffix and re-propagate from
	// scratch on the next solve.
	cut := -1
	for i, l := range s.trail {
		if r := s.reason[abs(l)]; r != nil && r.learnt {
			cut = i
			break
		}
	}
	s.retractFrom(cut)
	if len(s.learnts) == 0 {
		return
	}
	for _, c := range s.learnts {
		c.removed = true
	}
	s.learnts = s.learnts[:0]
	s.filterWatches()
}

// retractFrom unassigns every trail entry from index cut onward (a
// no-op when cut < 0), keeping saved phases, and schedules a full
// re-propagation plus unit-clause re-assertion at the next solve. The
// trail is derivation-ordered, so retracting a suffix leaves a prefix
// derived only from entries that survive. Must run at decision level 0.
func (s *Solver) retractFrom(cut int) {
	if cut < 0 {
		return
	}
	for i := len(s.trail) - 1; i >= cut; i-- {
		v := abs(s.trail[i])
		s.phase[v] = s.assign[v]
		s.assign[v] = unassigned
		s.reason[v] = nil
		if s.orderPos[v] < 0 {
			s.orderInsert(int32(v))
		}
	}
	s.trail = s.trail[:cut]
	s.qhead = 0
	// A retracted entry may have been asserted by a length-1 clause,
	// which no propagation can re-derive (units carry no watches).
	s.needReassert = true
}

// RetractDepending retracts every root-level assignment that may
// transitively depend on one of the given problem clauses (by addition
// index) or on any learned clause. Because the trail is
// derivation-ordered, cutting at the first entry whose reason is one of
// those clauses removes every assignment derived after — and hence
// possibly through — it; the surviving prefix was propagated from
// untouched problem clauses alone. Callers about to weaken clauses use
// this (after PurgeLearnts) to make in-place weakening sound without
// per-variable feasibility checks: no assignment that could depend on a
// strong clause outlives it. The next solve re-propagates from scratch
// and re-derives whatever still follows from the weakened formula.
func (s *Solver) RetractDepending(clauseIdx []int) {
	s.cancelUntil(0)
	if len(clauseIdx) == 0 {
		return
	}
	mark := make(map[*clause]bool, len(clauseIdx))
	for _, i := range clauseIdx {
		mark[s.clauses[i]] = true
	}
	cut := -1
	for i, l := range s.trail {
		if r := s.reason[abs(l)]; r != nil && (r.learnt || mark[r]) {
			cut = i
			break
		}
	}
	s.retractFrom(cut)
}

// filterWatches compacts every watch list, dropping clauses marked
// removed.
func (s *Solver) filterWatches() {
	for i, ws := range s.watches {
		n := 0
		for _, c := range ws {
			if !c.removed {
				ws[n] = c
				n++
			}
		}
		s.watches[i] = ws[:n]
	}
}

// locked reports whether c is the reason for a current assignment (its
// asserting literal is kept at lits[0] by construction); locked clauses
// must survive learned-clause deletion.
func (s *Solver) locked(c *clause) bool {
	l := c.lits[0]
	return s.value(l) == trueVal && s.reason[abs(l)] == c
}

// bumpClause raises a learned clause's activity, rescaling the whole
// database when activities overflow.
func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, l := range s.learnts {
			l.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// reduceDB halves the learned-clause database, dropping the clauses of
// lowest activity while keeping binary clauses (cheap and valuable) and
// locked clauses (reasons for current assignments). This bounds the
// watch lists a long-lived incremental solver drags through every
// propagation without throwing the whole database away.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool { return s.learnts[i].act < s.learnts[j].act })
	half := len(s.learnts) / 2
	n := 0
	removed := false
	for i, c := range s.learnts {
		if i < half && len(c.lits) > 2 && !s.locked(c) {
			c.removed = true
			removed = true
			continue
		}
		s.learnts[n] = c
		n++
	}
	s.learnts = s.learnts[:n]
	if removed {
		s.filterWatches()
	}
}

func litIndex(l int) int {
	if l > 0 {
		return 2 * l
	}
	return -2*l + 1
}

func (s *Solver) value(l int) int8 {
	v := l
	if v < 0 {
		v = -v
	}
	a := s.assign[v]
	if a == unassigned {
		return unassigned
	}
	if (l > 0) == (a == trueVal) {
		return trueVal
	}
	return falseVal
}

// AddClause adds a clause (a disjunction of literals). Duplicate
// literals are removed; tautologies are ignored. Adding an empty clause
// makes the formula trivially unsatisfiable. Clauses may be added
// between Solve calls; watches are installed at the next solve.
func (s *Solver) AddClause(lits ...int) error {
	seen := make(map[int]bool, len(lits))
	var out []int
	for _, l := range lits {
		if l == 0 || l > s.nVars || l < -s.nVars {
			return fmt.Errorf("%w: %d (nVars=%d)", ErrBadLiteral, l, s.nVars)
		}
		if seen[-l] {
			return nil // tautology: always satisfied
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	s.clauses = append(s.clauses, &clause{lits: out})
	return nil
}

// AddClauseFrom appends a copy of lits as a clause, skipping the
// validation, deduplication and tautology filtering of AddClause. The
// caller must guarantee the literals are nonzero, in range, distinct,
// and non-tautological — encoders that construct clauses structurally
// (internal/conp) satisfy this by construction and skip the per-clause
// map AddClause pays for it.
func (s *Solver) AddClauseFrom(lits []int) {
	s.clauses = append(s.clauses, &clause{lits: append([]int(nil), lits...)})
}

func (s *Solver) watch(c *clause, lit int) {
	i := litIndex(lit)
	s.watches[i] = append(s.watches[i], c)
}

// attachOne installs watches for clause c under the current root-level
// assignment, or reports it dormant: satisfied by a root-true literal,
// or asserted as a root unit (including length-1 clauses), and
// therefore carrying no watches until a retraction re-checks it. ok is
// false on a root-level conflict. Must run at decision level 0.
func (s *Solver) attachOne(c *clause) (dormant, ok bool) {
	// Move up to two non-false literals to the front; a clause with a
	// root-level true literal is satisfied for as long as that
	// assignment stands and needs no watches until then.
	satisfied := false
	nf := 0
	for i, l := range c.lits {
		switch s.value(l) {
		case trueVal:
			satisfied = true
		case unassigned:
			if nf < 2 {
				c.lits[nf], c.lits[i] = c.lits[i], c.lits[nf]
				nf++
			}
		}
		if satisfied {
			break
		}
	}
	if satisfied {
		return true, true
	}
	switch nf {
	case 0: // every literal root-false (or the clause is empty)
		return false, false
	case 1:
		return true, s.enqueue(c.lits[0], c)
	}
	s.watch(c, c.lits[0])
	s.watch(c, c.lits[1])
	return false, true
}

// attachNew installs watches (or root-level units) for clauses added
// since the last solve, under the current root-level assignment. After
// root-trail surgery (needReassert) it first re-checks every dormant
// clause in the attached prefix, re-asserting units and re-attaching
// clauses whose satisfying assignment was retracted — without this, an
// unwatched clause would silently drop out of propagation once its
// root assignment is gone. It reports false on a root-level conflict.
// Must run at decision level 0.
func (s *Solver) attachNew() bool {
	if s.needReassert {
		s.needReassert = false
		for _, c := range s.clauses[:s.attached] {
			if !c.dormant {
				continue
			}
			dormant, ok := s.attachOne(c)
			if !ok {
				s.rootUnsat = true
				return false
			}
			c.dormant = dormant
		}
	}
	// The per-clause logic below mirrors attachOne; it stays inline
	// because this loop attaches every clause of a cold build and Go
	// will not inline a function with loops.
	for ; s.attached < len(s.clauses); s.attached++ {
		c := s.clauses[s.attached]
		satisfied := false
		nf := 0
		for i, l := range c.lits {
			switch s.value(l) {
			case trueVal:
				satisfied = true
			case unassigned:
				if nf < 2 {
					c.lits[nf], c.lits[i] = c.lits[i], c.lits[nf]
					nf++
				}
			}
			if satisfied {
				break
			}
		}
		if satisfied {
			c.dormant = true
			continue
		}
		switch nf {
		case 0: // every literal root-false (or the clause is empty)
			s.rootUnsat = true
			return false
		case 1:
			c.dormant = true
			if !s.enqueue(c.lits[0], c) {
				s.rootUnsat = true
				return false
			}
		default:
			s.watch(c, c.lits[0])
			s.watch(c, c.lits[1])
		}
	}
	return true
}

func (s *Solver) enqueue(l int, from *clause) bool {
	switch s.value(l) {
	case trueVal:
		return true
	case falseVal:
		return false
	}
	v := l
	val := trueVal
	if v < 0 {
		v = -v
		val = falseVal
	}
	s.assign[v] = val
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate runs unit propagation; it returns a conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		// Clauses watching ¬l must be updated.
		negIdx := litIndex(-l)
		ws := s.watches[negIdx]
		var kept []*clause
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			// Find the two watched literals; by convention they are
			// kept in lits[0], lits[1].
			if len(c.lits) >= 2 {
				if c.lits[0] == -l {
					c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
				}
				// c.lits[1] == -l now (it was watched).
				if s.value(c.lits[0]) == trueVal {
					kept = append(kept, c)
					continue
				}
				moved := false
				for k := 2; k < len(c.lits); k++ {
					if s.value(c.lits[k]) != falseVal {
						c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
						s.watch(c, c.lits[1])
						moved = true
						break
					}
				}
				if moved {
					continue // no longer watching ¬l
				}
				kept = append(kept, c)
				if !s.enqueue(c.lits[0], c) {
					// Conflict: restore remaining watches.
					kept = append(kept, ws[wi+1:]...)
					s.watches[negIdx] = kept
					return c
				}
				continue
			}
			kept = append(kept, c)
		}
		s.watches[negIdx] = kept
	}
	return nil
}

// Branching-order heap: a binary max-heap on activity with lazy
// deletion. Rescaling multiplies every activity uniformly, so it never
// disturbs the heap order.

func (s *Solver) orderSiftUp(i int) {
	v := s.order[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := s.order[parent]
		if s.activity[v] <= s.activity[p] {
			break
		}
		s.order[i] = p
		s.orderPos[p] = int32(i)
		i = parent
	}
	s.order[i] = v
	s.orderPos[v] = int32(i)
}

func (s *Solver) orderSiftDown(i int) {
	n := len(s.order)
	v := s.order[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && s.activity[s.order[r]] > s.activity[s.order[child]] {
			child = r
		}
		c := s.order[child]
		if s.activity[c] <= s.activity[v] {
			break
		}
		s.order[i] = c
		s.orderPos[c] = int32(i)
		i = child
	}
	s.order[i] = v
	s.orderPos[v] = int32(i)
}

func (s *Solver) orderInsert(v int32) {
	s.orderPos[v] = int32(len(s.order))
	s.order = append(s.order, v)
	s.orderSiftUp(len(s.order) - 1)
}

// orderPop removes and returns the highest-activity variable, or 0 when
// the heap is empty.
func (s *Solver) orderPop() int32 {
	if len(s.order) == 0 {
		return 0
	}
	v := s.order[0]
	s.orderPos[v] = -1
	last := len(s.order) - 1
	if last > 0 {
		s.order[0] = s.order[last]
		s.orderPos[s.order[0]] = 0
	}
	s.order = s.order[:last]
	if last > 0 {
		s.orderSiftDown(0)
	}
	return v
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.orderPos[v] >= 0 {
		s.orderSiftUp(int(s.orderPos[v]))
	}
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]int, int) {
	learnt := []int{0} // placeholder for asserting literal
	seen := make([]bool, s.nVars+1)
	counter := 0
	var p int
	idx := len(s.trail) - 1
	c := confl

	for {
		if c.learnt {
			s.bumpClause(c)
		}
		for _, l := range c.lits {
			if l == p { // skip the asserting path literal
				continue
			}
			v := abs(l)
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, l)
			}
		}
		// Pick the next literal on the trail to resolve.
		for !seen[abs(s.trail[idx])] {
			idx--
		}
		p = s.trail[idx]
		v := abs(p)
		seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = -p
			break
		}
		c = s.reason[v]
		idx--
	}

	// Backjump level = max level among learnt[1:].
	back := 0
	for i := 1; i < len(learnt); i++ {
		if lv := s.level[abs(learnt[i])]; lv > back {
			back = lv
		}
	}
	// Move a literal of the backjump level to position 1 (watch order).
	for i := 1; i < len(learnt); i++ {
		if s.level[abs(learnt[i])] == back {
			learnt[1], learnt[i] = learnt[i], learnt[1]
			break
		}
	}
	return learnt, back
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	lim := s.trailLim[level]
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := abs(s.trail[i])
		s.phase[v] = s.assign[v]
		s.assign[v] = unassigned
		s.reason[v] = nil
		if s.orderPos[v] < 0 {
			s.orderInsert(int32(v))
		}
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:level]
	if s.qhead > lim {
		s.qhead = lim
	}
}

func (s *Solver) pickBranchVar() int {
	for {
		v := s.orderPop()
		if v == 0 || s.assign[v] == unassigned {
			return int(v)
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i uint64) uint64 {
	for k := uint64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve searches for a satisfying assignment. On Sat, Model reports the
// assignment. It is SolveAssuming with no assumptions.
func (s *Solver) Solve() Status { return s.SolveAssuming() }

// SolveAssuming searches for a satisfying assignment with every
// assumption literal held true. It first resets the trail to the root
// level, so a Solver can be re-solved any number of times — under
// different assumptions, or after further AddClause calls — while
// keeping its learned clauses and saved phases; re-deciding an
// unchanged formula is therefore much cheaper than the first call.
// Unsat means unsatisfiable *under the assumptions*; the formula
// without them may still be satisfiable. Assumption literals must be
// nonzero and in range (the method panics otherwise: unlike clauses,
// assumptions come from the encoder, not from user input).
func (s *Solver) SolveAssuming(assumptions ...int) Status {
	return s.SolveAssumingCtx(context.Background(), assumptions...)
}

// ctxCheckEvery is how many search-loop iterations (decisions or
// conflicts) SolveAssumingCtx lets pass between context polls: frequent
// enough that a canceled caller is released within microseconds, sparse
// enough that the poll never shows up next to unit propagation.
const ctxCheckEvery = 512

// SolveAssumingCtx is SolveAssuming bounded by a context: the search
// loop polls ctx every few hundred iterations and returns Canceled once
// the context is done. Cancellation is safe at any point — the solver
// keeps its clause database, learned clauses, and saved phases, and the
// next solve call resets the trail to the root level as always.
func (s *Solver) SolveAssumingCtx(ctx context.Context, assumptions ...int) Status {
	if s.rootUnsat {
		return Unsat
	}
	if ctx.Err() != nil {
		return Canceled
	}
	// Chaos failpoint: fires before any solver state is touched, so the
	// memoized encoding, trail, and learned clauses survive an injected
	// fault intact and a retry re-solves warm. Status has no error arm,
	// so an injected error escalates to a panic for the recover()
	// boundary upstream.
	if err := faultinject.Fire(faultinject.SATSolve); err != nil {
		panic(err)
	}
	for _, a := range assumptions {
		if a == 0 || a > s.nVars || a < -s.nVars {
			panic(fmt.Sprintf("sat: assumption literal %d out of range (nVars=%d)", a, s.nVars))
		}
	}
	s.cancelUntil(0)
	if !s.attachNew() {
		return Unsat
	}
	if s.propagate() != nil {
		s.rootUnsat = true
		return Unsat
	}
	s.learntLimit = s.MaxLearnts
	if s.learntLimit <= 0 {
		s.learntLimit = len(s.clauses) / 2
		if s.learntLimit < 1024 {
			s.learntLimit = 1024
		}
	}

	restart := uint64(1)
	budget := 100 * luby(restart)
	confSinceRestart := uint64(0)

	// Every loop iteration is one decision or one conflict, so polling
	// the context on an iteration counter bounds the time to observe a
	// cancellation by a few hundred propagate/analyze rounds.
	sinceCtxCheck := 0

	for {
		if sinceCtxCheck++; sinceCtxCheck >= ctxCheckEvery {
			sinceCtxCheck = 0
			if ctx.Err() != nil {
				return Canceled
			}
		}
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			confSinceRestart++
			if s.MaxConflicts > 0 && s.conflicts > s.MaxConflicts {
				return Unknown
			}
			if s.decisionLevel() == 0 {
				s.rootUnsat = true
				return Unsat
			}
			learnt, back := s.analyze(confl)
			s.cancelUntil(back)
			c := &clause{lits: learnt, learnt: true, act: s.claInc}
			s.learnts = append(s.learnts, c)
			if len(learnt) >= 2 {
				s.watch(c, learnt[0])
				s.watch(c, learnt[1])
			}
			s.enqueue(learnt[0], c)
			s.varInc /= 0.95
			s.claInc /= 0.999
			if len(s.learnts) >= s.learntLimit {
				s.reduceDB()
				s.learntLimit += s.learntLimit / 10
			}
			continue
		}
		if confSinceRestart >= budget {
			restart++
			budget = 100 * luby(restart)
			confSinceRestart = 0
			s.cancelUntil(0)
			continue
		}
		// Pending assumptions decide before free branching; assumption
		// i is the decision of level i+1, so a restart (or a backjump
		// below an assumption level) re-pushes them here.
		if lvl := s.decisionLevel(); lvl < len(assumptions) {
			a := assumptions[lvl]
			switch s.value(a) {
			case falseVal:
				// The formula plus the earlier assumptions implies ¬a.
				return Unsat
			case trueVal:
				// Already implied: open an empty decision level so the
				// level ↔ assumption indexing stays aligned.
				s.trailLim = append(s.trailLim, len(s.trail))
			default:
				s.decisions++
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(a, nil)
			}
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return Sat // all variables assigned
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		lit := v
		if s.phase[v] == falseVal {
			lit = -v
		}
		s.enqueue(lit, nil)
	}
}

// Model returns the satisfying assignment found by the last Sat call:
// Model()[v] is the value of variable v (index 0 unused). It is only
// meaningful immediately after a call that returned Sat; a later
// SolveAssuming call invalidates it.
func (s *Solver) Model() []bool {
	m := make([]bool, s.nVars+1)
	for v := 1; v <= s.nVars; v++ {
		m[v] = s.assign[v] == trueVal
	}
	return m
}
