// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver over CNF formulas: two-watched-literal propagation, first-UIP
// conflict analysis with clause learning, VSIDS-style activity-based
// branching with phase saving, and Luby restarts. It is the generic
// substrate for the coNP solver tier (Section 7.2 of the paper shows
// coNP-hardness via SAT; practical CQA systems such as CAvSAT, discussed
// in Section 9, use SAT solvers in the same role).
//
// Literals are nonzero integers in the DIMACS convention: +v is the
// positive literal of variable v (1-based), -v its negation.
package sat

import (
	"errors"
	"fmt"
	"sort"
)

// Status is the result of solving.
type Status int

const (
	// Sat means a satisfying assignment was found.
	Sat Status = iota
	// Unsat means the formula is unsatisfiable.
	Unsat
	// Unknown means the solver hit its conflict budget.
	Unknown
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// ErrBadLiteral is returned by AddClause for zero or out-of-range
// literals.
var ErrBadLiteral = errors.New("sat: literal out of range")

const (
	unassigned int8 = 0
	trueVal    int8 = 1
	falseVal   int8 = -1
)

type clause struct {
	lits    []int
	learned bool
}

// Solver is a CDCL SAT solver instance. Create with NewSolver, add
// clauses with AddClause, then call Solve.
type Solver struct {
	nVars   int
	clauses []*clause
	// watches[litIndex] = clauses watching that literal.
	watches [][]*clause

	assign   []int8 // by variable (1-based)
	level    []int  // decision level per variable
	reason   []*clause
	trail    []int // assigned literals in order
	trailLim []int

	activity []float64
	varInc   float64
	phase    []int8

	propagations uint64
	conflicts    uint64
	decisions    uint64

	// MaxConflicts bounds the search; 0 means unbounded.
	MaxConflicts uint64
}

// NewSolver returns a solver for variables 1..nVars.
func NewSolver(nVars int) *Solver {
	s := &Solver{
		nVars:    nVars,
		watches:  make([][]*clause, 2*(nVars+1)),
		assign:   make([]int8, nVars+1),
		level:    make([]int, nVars+1),
		reason:   make([]*clause, nVars+1),
		activity: make([]float64, nVars+1),
		phase:    make([]int8, nVars+1),
		varInc:   1,
	}
	return s
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of problem clauses added.
func (s *Solver) NumClauses() int {
	n := 0
	for _, c := range s.clauses {
		if !c.learned {
			n++
		}
	}
	return n
}

// Stats returns (decisions, propagations, conflicts).
func (s *Solver) Stats() (uint64, uint64, uint64) {
	return s.decisions, s.propagations, s.conflicts
}

func litIndex(l int) int {
	if l > 0 {
		return 2 * l
	}
	return -2*l + 1
}

func (s *Solver) value(l int) int8 {
	v := l
	if v < 0 {
		v = -v
	}
	a := s.assign[v]
	if a == unassigned {
		return unassigned
	}
	if (l > 0) == (a == trueVal) {
		return trueVal
	}
	return falseVal
}

// AddClause adds a clause (a disjunction of literals). Duplicate
// literals are removed; tautologies are ignored. Adding an empty clause
// makes the formula trivially unsatisfiable.
func (s *Solver) AddClause(lits ...int) error {
	seen := make(map[int]bool, len(lits))
	var out []int
	for _, l := range lits {
		if l == 0 || l > s.nVars || l < -s.nVars {
			return fmt.Errorf("%w: %d (nVars=%d)", ErrBadLiteral, l, s.nVars)
		}
		if seen[-l] {
			return nil // tautology: always satisfied
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Ints(out)
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	if len(out) >= 2 {
		s.watch(c, out[0])
		s.watch(c, out[1])
	}
	return nil
}

func (s *Solver) watch(c *clause, lit int) {
	i := litIndex(lit)
	s.watches[i] = append(s.watches[i], c)
}

func (s *Solver) enqueue(l int, from *clause) bool {
	switch s.value(l) {
	case trueVal:
		return true
	case falseVal:
		return false
	}
	v := l
	val := trueVal
	if v < 0 {
		v = -v
		val = falseVal
	}
	s.assign[v] = val
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate runs unit propagation; it returns a conflicting clause or
// nil.
func (s *Solver) propagate(qhead *int) *clause {
	for *qhead < len(s.trail) {
		l := s.trail[*qhead]
		*qhead++
		s.propagations++
		// Clauses watching ¬l must be updated.
		negIdx := litIndex(-l)
		ws := s.watches[negIdx]
		var kept []*clause
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			// Find the two watched literals; by convention they are
			// kept in lits[0], lits[1].
			if len(c.lits) >= 2 {
				if c.lits[0] == -l {
					c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
				}
				// c.lits[1] == -l now (it was watched).
				if s.value(c.lits[0]) == trueVal {
					kept = append(kept, c)
					continue
				}
				moved := false
				for k := 2; k < len(c.lits); k++ {
					if s.value(c.lits[k]) != falseVal {
						c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
						s.watch(c, c.lits[1])
						moved = true
						break
					}
				}
				if moved {
					continue // no longer watching ¬l
				}
				kept = append(kept, c)
				if !s.enqueue(c.lits[0], c) {
					// Conflict: restore remaining watches.
					kept = append(kept, ws[wi+1:]...)
					s.watches[negIdx] = kept
					return c
				}
				continue
			}
			kept = append(kept, c)
		}
		s.watches[negIdx] = kept
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]int, int) {
	learnt := []int{0} // placeholder for asserting literal
	seen := make([]bool, s.nVars+1)
	counter := 0
	var p int
	idx := len(s.trail) - 1
	c := confl

	for {
		for _, l := range c.lits {
			if l == p { // skip the asserting path literal
				continue
			}
			v := abs(l)
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, l)
			}
		}
		// Pick the next literal on the trail to resolve.
		for !seen[abs(s.trail[idx])] {
			idx--
		}
		p = s.trail[idx]
		v := abs(p)
		seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = -p
			break
		}
		c = s.reason[v]
		idx--
	}

	// Backjump level = max level among learnt[1:].
	back := 0
	for i := 1; i < len(learnt); i++ {
		if lv := s.level[abs(learnt[i])]; lv > back {
			back = lv
		}
	}
	// Move a literal of the backjump level to position 1 (watch order).
	for i := 1; i < len(learnt); i++ {
		if s.level[abs(learnt[i])] == back {
			learnt[1], learnt[i] = learnt[i], learnt[1]
			break
		}
	}
	return learnt, back
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func (s *Solver) cancelUntil(level int, qhead *int) {
	if s.decisionLevel() <= level {
		return
	}
	lim := s.trailLim[level]
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := abs(s.trail[i])
		s.phase[v] = s.assign[v]
		s.assign[v] = unassigned
		s.reason[v] = nil
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:level]
	if *qhead > lim {
		*qhead = lim
	}
}

func (s *Solver) pickBranchVar() int {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nVars; v++ {
		if s.assign[v] == unassigned && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i uint64) uint64 {
	for k := uint64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve searches for a satisfying assignment. On Sat, Model reports the
// assignment.
func (s *Solver) Solve() Status {
	// Handle unit and empty clauses up front.
	qhead := 0
	for _, c := range s.clauses {
		switch len(c.lits) {
		case 0:
			return Unsat
		case 1:
			if !s.enqueue(c.lits[0], c) {
				return Unsat
			}
		}
	}
	if s.propagate(&qhead) != nil {
		return Unsat
	}

	restart := uint64(1)
	budget := 100 * luby(restart)
	confSinceRestart := uint64(0)

	for {
		confl := s.propagate(&qhead)
		if confl != nil {
			s.conflicts++
			confSinceRestart++
			if s.MaxConflicts > 0 && s.conflicts > s.MaxConflicts {
				return Unknown
			}
			if s.decisionLevel() == 0 {
				return Unsat
			}
			learnt, back := s.analyze(confl)
			s.cancelUntil(back, &qhead)
			c := &clause{lits: learnt, learned: true}
			s.clauses = append(s.clauses, c)
			if len(learnt) >= 2 {
				s.watch(c, learnt[0])
				s.watch(c, learnt[1])
			}
			s.enqueue(learnt[0], c)
			s.varInc /= 0.95
			continue
		}
		if confSinceRestart >= budget {
			restart++
			budget = 100 * luby(restart)
			confSinceRestart = 0
			s.cancelUntil(0, &qhead)
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return Sat // all variables assigned
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		lit := v
		if s.phase[v] == falseVal {
			lit = -v
		}
		s.enqueue(lit, nil)
	}
}

// Model returns the satisfying assignment found by the last Sat call:
// Model()[v] is the value of variable v (index 0 unused).
func (s *Solver) Model() []bool {
	m := make([]bool, s.nVars+1)
	for v := 1; v <= s.nVars; v++ {
		m[v] = s.assign[v] == trueVal
	}
	return m
}
