package sat

import "testing"

func TestExtendVarsSolveWithNewVariables(t *testing.T) {
	s := NewSolver(2)
	if err := s.AddClause(1, 2); err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("solve = %v, want SAT", st)
	}
	s.ExtendVars(4)
	if s.NumVars() != 4 {
		t.Fatalf("NumVars = %d, want 4", s.NumVars())
	}
	if err := s.AddClause(3, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClause(-3); err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("solve after extend = %v, want SAT", st)
	}
	if m := s.Model(); !m[4] || m[3] {
		t.Fatalf("model = %v, want ¬x3 ∧ x4", m)
	}
}

func TestWeakenClauseAttachedMidStream(t *testing.T) {
	// (x1 ∨ x2) is attached (watching x1, x2) by the first solve; the
	// weakened form (x1 ∨ x2 ∨ x3) must then survive both watched
	// literals going root-false by moving a watch to the appended
	// literal.
	s := NewSolver(2)
	if err := s.AddClause(1, 2); err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("solve = %v, want SAT", st)
	}
	s.ExtendVars(3)
	s.WeakenClause(0, 3)
	if n := s.ClauseLen(0); n != 3 {
		t.Fatalf("ClauseLen(0) = %d, want 3", n)
	}
	if err := s.AddClause(-1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClause(-2); err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("solve after weaken = %v, want SAT", st)
	}
	if m := s.Model(); !m[3] {
		t.Fatalf("model = %v, want x3 forced by the weakened clause", m)
	}
	if !s.RootFixed(1) || !s.RootFixed(2) || s.RootUnsat() {
		t.Fatalf("x1, x2 should be root-fixed and the formula satisfiable")
	}
}

func TestPurgeLearntsRetractsLearntRootUnits(t *testing.T) {
	// Deciding x1 propagates x2, x3 into the conflict (¬x2 ∨ ¬x3); the
	// first-UIP clause is the unit (¬x1), asserted at the root with a
	// learnt reason. PurgeLearnts must retract it.
	s := NewSolver(3)
	for _, c := range [][]int{{-1, 2}, {-1, 3}, {-2, -3}} {
		if err := s.AddClause(c...); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("solve = %v, want SAT", st)
	}
	if s.NumLearned() == 0 {
		t.Skip("search found a model without learning; nothing to purge")
	}
	if !s.RootFixed(1) {
		t.Fatalf("x1 should be root-fixed by the learnt unit")
	}
	s.PurgeLearnts()
	if s.NumLearned() != 0 {
		t.Fatalf("NumLearned = %d after purge, want 0", s.NumLearned())
	}
	if s.RootFixed(1) {
		t.Fatalf("x1 must be retracted with the learnt database")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("re-solve after purge = %v, want SAT", st)
	}
	if m := s.Model(); m[1] {
		t.Fatalf("model = %v, but x1 must be re-derived false", m)
	}
}

// php encodes the pigeonhole principle PHP(p, h): p pigeons in h holes,
// unsatisfiable when p > h and conflict-heavy enough to exercise
// learned-clause deletion.
func php(p, h int) *Solver {
	v := func(i, j int) int { return i*h + j + 1 }
	s := NewSolver(p * h)
	for i := 0; i < p; i++ {
		row := make([]int, h)
		for j := 0; j < h; j++ {
			row[j] = v(i, j)
		}
		if err := s.AddClause(row...); err != nil {
			panic(err)
		}
	}
	for j := 0; j < h; j++ {
		for i := 0; i < p; i++ {
			for k := i + 1; k < p; k++ {
				if err := s.AddClause(-v(i, j), -v(k, j)); err != nil {
					panic(err)
				}
			}
		}
	}
	return s
}

func TestReduceDBKeepsSolverSound(t *testing.T) {
	s := php(7, 6)
	s.MaxLearnts = 8 // force aggressive deletion on every few conflicts
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(7,6) = %v, want UNSAT", st)
	}
	// Every conflict learns one clause, so a learned count below the
	// conflict count proves deletion ran — and the UNSAT answer above
	// proves the problem clauses still carry the refutation without the
	// deleted ones.
	if _, _, conflicts := s.Stats(); uint64(s.NumLearned()) >= conflicts {
		t.Fatalf("NumLearned = %d with %d conflicts, want deletion to have run",
			s.NumLearned(), conflicts)
	}

	sat6 := php(6, 6)
	sat6.MaxLearnts = 8
	if st := sat6.Solve(); st != Sat {
		t.Fatalf("PHP(6,6) = %v, want SAT", st)
	}
	m := sat6.Model()
	used := make([]bool, 6)
	for i := 0; i < 6; i++ {
		cnt := 0
		for j := 0; j < 6; j++ {
			if m[i*6+j+1] {
				if used[j] {
					t.Fatalf("hole %d assigned twice", j)
				}
				used[j] = true
				cnt++
			}
		}
		if cnt == 0 {
			t.Fatalf("pigeon %d unplaced", i)
		}
	}
}
