package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := NewSolver(1)
	if err := s.AddClause(1); err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Sat {
		t.Fatal("x1 is satisfiable")
	}
	if !s.Model()[1] {
		t.Error("model must set x1")
	}

	s2 := NewSolver(1)
	s2.AddClause(1)
	s2.AddClause(-1)
	if s2.Solve() != Unsat {
		t.Fatal("x1 ∧ ¬x1 is unsatisfiable")
	}

	s3 := NewSolver(1)
	s3.AddClause()
	if s3.Solve() != Unsat {
		t.Fatal("empty clause is unsatisfiable")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := NewSolver(2)
	s.AddClause(1, -1)    // tautology: dropped
	s.AddClause(2, 2, 2)  // duplicates collapse to unit
	s.AddClause(-2, 1, 1) // => x1
	if s.NumClauses() != 2 {
		t.Errorf("NumClauses = %d, want 2 (tautology dropped)", s.NumClauses())
	}
	if s.Solve() != Sat {
		t.Fatal("satisfiable")
	}
	m := s.Model()
	if !m[2] || !m[1] {
		t.Errorf("model = %v", m)
	}
}

func TestBadLiteral(t *testing.T) {
	s := NewSolver(2)
	if err := s.AddClause(0); err == nil {
		t.Error("literal 0 must be rejected")
	}
	if err := s.AddClause(3); err == nil {
		t.Error("out-of-range literal must be rejected")
	}
}

func TestSmallUnsatChain(t *testing.T) {
	// x1, x1->x2, x2->x3, ¬x3.
	s := NewSolver(3)
	s.AddClause(1)
	s.AddClause(-1, 2)
	s.AddClause(-2, 3)
	s.AddClause(-3)
	if s.Solve() != Unsat {
		t.Fatal("chain is unsatisfiable")
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons into n holes, unsatisfiable. Classic
	// hard-ish CDCL exercise; keep n small.
	for n := 2; n <= 5; n++ {
		nPigeons := n + 1
		varOf := func(p, h int) int { return p*n + h + 1 }
		s := NewSolver(nPigeons * n)
		for p := 0; p < nPigeons; p++ {
			lits := make([]int, n)
			for h := 0; h < n; h++ {
				lits[h] = varOf(p, h)
			}
			s.AddClause(lits...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 < nPigeons; p1++ {
				for p2 := p1 + 1; p2 < nPigeons; p2++ {
					s.AddClause(-varOf(p1, h), -varOf(p2, h))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d) = %v, want UNSAT", nPigeons, n, got)
		}
	}
}

func TestGraphColoringSat(t *testing.T) {
	// A 5-cycle is 3-colorable but not 2-colorable.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	build := func(k int) *Solver {
		varOf := func(v, c int) int { return v*k + c + 1 }
		s := NewSolver(5 * k)
		for v := 0; v < 5; v++ {
			lits := make([]int, k)
			for c := 0; c < k; c++ {
				lits[c] = varOf(v, c)
			}
			s.AddClause(lits...)
			for c1 := 0; c1 < k; c1++ {
				for c2 := c1 + 1; c2 < k; c2++ {
					s.AddClause(-varOf(v, c1), -varOf(v, c2))
				}
			}
		}
		for _, e := range edges {
			for c := 0; c < k; c++ {
				s.AddClause(-varOf(e[0], c), -varOf(e[1], c))
			}
		}
		return s
	}
	if build(2).Solve() != Unsat {
		t.Error("C5 is not 2-colorable")
	}
	s := build(3)
	if s.Solve() != Sat {
		t.Error("C5 is 3-colorable")
	}
	// Verify the model is a proper coloring.
	m := s.Model()
	color := make([]int, 5)
	for v := 0; v < 5; v++ {
		color[v] = -1
		for c := 0; c < 3; c++ {
			if m[v*3+c+1] {
				color[v] = c
				break
			}
		}
		if color[v] < 0 {
			t.Fatalf("vertex %d uncolored", v)
		}
	}
	for _, e := range edges {
		if color[e[0]] == color[e[1]] {
			t.Errorf("edge %v monochromatic", e)
		}
	}
}

// bruteForce decides satisfiability by enumeration.
func bruteForce(nVars int, clauses [][]int) bool {
	for mask := 0; mask < 1<<nVars; mask++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				v := l
				if v < 0 {
					v = -v
				}
				val := mask&(1<<(v-1)) != 0
				if (l > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for it := 0; it < 600; it++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 1 + rng.Intn(5*nVars)
		var clauses [][]int
		s := NewSolver(nVars)
		for i := 0; i < nClauses; i++ {
			k := 1 + rng.Intn(3)
			c := make([]int, k)
			for j := range c {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		got := s.Solve()
		want := bruteForce(nVars, clauses)
		if (got == Sat) != want {
			t.Fatalf("it=%d: solver=%v brute=%v clauses=%v", it, got, want, clauses)
		}
		if got == Sat {
			// Verify the model satisfies every clause.
			m := s.Model()
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					v := l
					if v < 0 {
						v = -v
					}
					if (l > 0) == m[v] {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("it=%d: model %v falsifies clause %v", it, m, c)
				}
			}
		}
	}
}

func TestSolveAssuming(t *testing.T) {
	// x1 -> x2, x2 -> x3: satisfiable; unsat under {x1, ¬x3}.
	s := NewSolver(3)
	s.AddClause(-1, 2)
	s.AddClause(-2, 3)
	if s.SolveAssuming(1) != Sat {
		t.Fatal("sat under x1")
	}
	m := s.Model()
	if !m[1] || !m[2] || !m[3] {
		t.Errorf("model = %v, want x1..x3 true", m)
	}
	if s.SolveAssuming(1, -3) != Unsat {
		t.Fatal("unsat under {x1, ¬x3}")
	}
	// The formula itself must stay satisfiable after an assumption
	// failure: assumptions are not clauses.
	if s.SolveAssuming(-1) != Sat {
		t.Fatal("sat under ¬x1")
	}
	if s.Model()[1] {
		t.Error("model must falsify x1")
	}
	if s.SolveAssuming() != Sat {
		t.Fatal("sat with no assumptions")
	}
}

func TestSolveAssumingContradictoryAssumptions(t *testing.T) {
	s := NewSolver(2)
	s.AddClause(1, 2)
	if s.SolveAssuming(1, -1) != Unsat {
		t.Error("contradictory assumptions must be unsat")
	}
	if s.SolveAssuming(1) != Sat {
		t.Error("recoverable after contradictory assumptions")
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := NewSolver(3)
	s.AddClause(1, 2)
	if s.SolveAssuming(-1) != Sat {
		t.Fatal("sat under ¬x1")
	}
	// Clauses added after a solve must take effect at the next one,
	// including units against the saved state.
	s.AddClause(-2, 3)
	s.AddClause(-3)
	if s.SolveAssuming(-1) != Unsat {
		t.Fatal("¬x1 forces x2, x2 -> x3, ¬x3: unsat")
	}
	if s.SolveAssuming(1) != Sat {
		t.Fatal("still sat under x1")
	}
	s.AddClause(-1)
	if s.SolveAssuming() != Unsat {
		t.Fatal("now unsat outright")
	}
	if s.SolveAssuming(2) != Unsat {
		t.Fatal("root-level unsat must persist under any assumptions")
	}
}

// TestIncrementalLearnsAcrossCalls re-solves one formula many times and
// checks answers stay stable while learned clauses and model validity
// persist (the warm path the conp tier relies on).
func TestIncrementalLearnsAcrossCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for it := 0; it < 50; it++ {
		nVars := 4 + rng.Intn(6)
		var clauses [][]int
		s := NewSolver(nVars)
		for i := 0; i < 3*nVars; i++ {
			k := 1 + rng.Intn(3)
			c := make([]int, k)
			for j := range c {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		want := bruteForce(nVars, clauses)
		for call := 0; call < 4; call++ {
			got := s.Solve()
			if (got == Sat) != want {
				t.Fatalf("it=%d call=%d: solver=%v brute=%v", it, call, got, want)
			}
			if got == Sat {
				m := s.Model()
				for _, c := range clauses {
					ok := false
					for _, l := range c {
						if (l > 0) == m[abs(l)] {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("it=%d call=%d: model falsifies %v", it, call, c)
					}
				}
			}
		}
	}
}

// TestSolveAssumingVsClauses cross-checks assumption solving against
// the same literals added as unit clauses on a fresh solver.
func TestSolveAssumingVsClauses(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for it := 0; it < 120; it++ {
		nVars := 3 + rng.Intn(6)
		var clauses [][]int
		inc := NewSolver(nVars)
		for i := 0; i < 2*nVars; i++ {
			k := 1 + rng.Intn(3)
			c := make([]int, k)
			for j := range c {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
			}
			clauses = append(clauses, c)
			inc.AddClause(c...)
		}
		// Several assumption sets against one incremental solver.
		for trial := 0; trial < 3; trial++ {
			var assume []int
			used := map[int]bool{}
			for len(assume) < 1+rng.Intn(3) {
				v := 1 + rng.Intn(nVars)
				if used[v] {
					continue
				}
				used[v] = true
				if rng.Intn(2) == 0 {
					v = -v
				}
				assume = append(assume, v)
			}
			fresh := NewSolver(nVars)
			for _, c := range clauses {
				fresh.AddClause(c...)
			}
			for _, a := range assume {
				fresh.AddClause(a)
			}
			got := inc.SolveAssuming(assume...)
			want := fresh.Solve()
			if got != want {
				t.Fatalf("it=%d assume=%v: incremental=%v fresh=%v", it, assume, got, want)
			}
		}
	}
}

func TestAssumptionPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range assumption must panic")
		}
	}()
	s := NewSolver(1)
	s.SolveAssuming(2)
}

func TestStatsAndStatusString(t *testing.T) {
	s := NewSolver(3)
	s.AddClause(1, 2)
	s.AddClause(-1, 3)
	if s.Solve() != Sat {
		t.Fatal("sat expected")
	}
	d, p, c := s.Stats()
	if d == 0 && p == 0 && c == 0 {
		t.Error("expected some search activity")
	}
	for _, st := range []Status{Sat, Unsat, Unknown} {
		if st.String() == "" {
			t.Error("empty status string")
		}
	}
}

func TestLuby(t *testing.T) {
	want := []uint64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(uint64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}
