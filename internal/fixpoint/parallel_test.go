package fixpoint

import (
	"context"
	"fmt"
	"testing"
	"time"

	"cqa/internal/instance"
	"cqa/internal/words"
	"cqa/internal/workload"
)

// equivCases is the instance family grid for the parallel-vs-sequential
// oracle: random block-structured instances at several densities, deep
// chains (which exercise the sequential-drain fallback), and the
// paper's Figure 2/3 families.
func equivCases() []struct {
	name string
	db   *instance.Instance
} {
	rnd := func(seed int64, consts, facts int, conflict float64) *instance.Instance {
		return workload.Random(workload.Config{
			Relations:    []string{"R", "X", "Y", "A"},
			Constants:    consts,
			Facts:        facts,
			ConflictRate: conflict,
			Seed:         seed,
		})
	}
	return []struct {
		name string
		db   *instance.Instance
	}{
		{"random-small", rnd(1, 40, 120, 0.4)},
		{"random-mid", rnd(2, 300, 1500, 0.3)},
		{"random-dense", rnd(3, 50, 800, 0.8)},
		{"chain-deep", workload.Chain(words.MustParse("RRX"), 400)},
		{"figure2", workload.Figure2Family(200)},
		{"figure3", workload.Figure3Family(60)},
		{"empty", instance.New()},
	}
}

// TestSolveParallelEquivalence checks the partitioned solver against
// the sequential worklist as oracle: identical Certain, Starts, start
// bitset, and full relation N, across queries of every class and
// several worker counts, with Threshold 0 forcing the parallel path on
// instances of any size.
func TestSolveParallelEquivalence(t *testing.T) {
	queries := []string{"R", "RRX", "RXRX", "RXRYRY", "RRRRRRRRX", "AXRRY"}
	for _, qs := range queries {
		q := words.MustParse(qs)
		for _, tc := range equivCases() {
			iv := tc.db.Interned()
			want := Compile(q).SolveInterned(iv)
			for _, workers := range []int{2, 3, 8} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", qs, tc.name, workers), func(t *testing.T) {
					// A fresh Compiled per run so the parallel binding build
					// (not a memo hit on the oracle's) is exercised.
					cp := Compile(q)
					got, err := cp.SolveInternedCtx(context.Background(), iv, SolveOptions{Workers: workers})
					if err != nil {
						t.Fatalf("parallel solve: %v", err)
					}
					if got.Certain != want.Certain {
						t.Fatalf("Certain = %v, want %v", got.Certain, want.Certain)
					}
					if len(got.Starts) != len(want.Starts) {
						t.Fatalf("Starts = %v, want %v", got.Starts, want.Starts)
					}
					for i := range got.Starts {
						if got.Starts[i] != want.Starts[i] {
							t.Fatalf("Starts = %v, want %v", got.Starts, want.Starts)
						}
					}
					if !got.startBits.Equal(want.startBits) {
						t.Fatalf("start bitsets differ")
					}
					if !got.bits.Equal(want.bits) {
						t.Fatalf("relation N bitsets differ")
					}
					if iv.NumConsts() > 0 {
						if s := cp.ParallelStats(); s.Solves != 1 || s.Shards == 0 {
							t.Fatalf("ParallelStats = %+v, want one engaged solve", s)
						}
					}
				})
			}
		}
	}
}

// TestSolveParallelDisengaged checks the option gate: Workers <= 1 or
// an unmet threshold must keep the single-core path (no engaged-solve
// counters) while returning the same result.
func TestSolveParallelDisengaged(t *testing.T) {
	q := words.MustParse("RRX")
	db := workload.Figure2Family(50)
	iv := db.Interned()
	want := Compile(q).SolveInterned(iv)
	for _, opts := range []SolveOptions{
		{},
		{Workers: 1},
		{Workers: 8, Threshold: iv.NumFacts() + 1},
	} {
		cp := Compile(q)
		got, err := cp.SolveInternedCtx(context.Background(), iv, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if got.Certain != want.Certain || !got.bits.Equal(want.bits) {
			t.Fatalf("opts %+v: sequential-path result differs", opts)
		}
		if s := cp.ParallelStats(); s.Solves != 0 || s.Shards != 0 {
			t.Fatalf("opts %+v: ParallelStats = %+v, want zero", opts, s)
		}
	}
}

// stepCtx is a context whose Err flips to Canceled after limit polls;
// it makes the mid-solve cancellation point deterministic (the
// partitioned loop polls once per round).
type stepCtx struct {
	calls, limit int
}

func (c *stepCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *stepCtx) Done() <-chan struct{}       { return nil }
func (c *stepCtx) Value(any) any               { return nil }
func (c *stepCtx) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

// TestSolveParallelCancellation cancels between rounds of the
// partitioned loop and checks the solve aborts with the context error,
// without poisoning the memoized binding for a retry.
func TestSolveParallelCancellation(t *testing.T) {
	// A single-relation instance big enough that round one's frontier
	// (every constant) and round two's (every derived block key) both
	// exceed the drain threshold, so the loop genuinely iterates.
	db := instance.New()
	for i := 0; i < 10000; i++ {
		db.AddFact("R", fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1))
	}
	iv := db.Interned()
	cp := Compile(words.MustParse("R"))
	opts := SolveOptions{Workers: 4}

	// Sanity: uncancelled parallel solve matches sequential and polls
	// more than twice (entry + at least two rounds).
	probe := &stepCtx{limit: 1 << 30}
	res, err := cp.SolveInternedCtx(probe, iv, opts)
	if err != nil || res == nil {
		t.Fatalf("uncancelled solve: %v", err)
	}
	if probe.calls < 3 {
		t.Fatalf("solve polled ctx %d times; instance too small to cancel mid-solve", probe.calls)
	}

	// Cancel at the second round's poll: after real parallel work, before
	// completion.
	res2, err := cp.SolveInternedCtx(&stepCtx{limit: 2}, iv, opts)
	if err != context.Canceled {
		t.Fatalf("cancelled solve: err = %v, want context.Canceled", err)
	}
	if res2 != nil {
		t.Fatalf("cancelled solve returned a partial result")
	}

	// Entry-cancelled: no work at all.
	if _, err := cp.SolveInternedCtx(&stepCtx{limit: 0}, iv, opts); err != context.Canceled {
		t.Fatalf("entry cancel: err = %v", err)
	}

	// Retry after cancellation succeeds with the same memoized binding.
	res3, err := cp.SolveInternedCtx(context.Background(), iv, opts)
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	want := Compile(words.MustParse("R")).SolveInterned(iv)
	if res3.Certain != want.Certain || !res3.bits.Equal(want.bits) {
		t.Fatalf("retry after cancellation differs from sequential oracle")
	}
}
