package fixpoint

import (
	"context"
	mathbits "math/bits"
	"sync/atomic"

	"cqa/internal/bitset"
	"cqa/internal/instance"
	"cqa/internal/par"
)

// SolveOptions tunes one solve call's intra-query parallelism. The
// zero value keeps the single-core path: the partitioned solver
// engages only when Workers > 1 and the instance holds at least
// Threshold facts (so a Threshold of 0 forces it on any non-empty
// instance — the equivalence tests use that to exercise the parallel
// path on small inputs).
type SolveOptions struct {
	// Workers is the shard/worker count for the partitioned passes.
	Workers int
	// Threshold is the minimum NumFacts at which Workers engages.
	Threshold int
}

// Engaged reports whether opts selects the partitioned path for iv.
func (o SolveOptions) Engaged(iv *instance.Interned) bool {
	return o.Workers > 1 && iv.NumFacts() >= o.Threshold && iv.NumConsts() > 0
}

// ParallelStats counts uses of the partitioned path.
type ParallelStats struct {
	// Solves is the number of solves (or memoized NL builds) that
	// engaged the partitioned path.
	Solves uint64 `json:"solves"`
	// Shards is the total number of constant-range shards those solves
	// dispatched across the worker pool.
	Shards uint64 `json:"shards"`
}

// Add returns the field-wise sum of s and t.
func (s ParallelStats) Add(t ParallelStats) ParallelStats {
	return ParallelStats{Solves: s.Solves + t.Solves, Shards: s.Shards + t.Shards}
}

// ParallelStats returns this compiled query's partitioned-path
// counters.
func (c *Compiled) ParallelStats() ParallelStats {
	return ParallelStats{Solves: c.parSolves.Load(), Shards: c.parShards.Load()}
}

// drainThreshold is the frontier size below which a parallel solve
// falls back to the sequential worklist drain: once a round derives
// only a few thousand pairs, per-round fork/merge overhead exceeds the
// scan work, and — crucially — deep derivation chains (whose frontiers
// are tiny) finish in one drain instead of one synchronized round per
// chain link.
const drainThreshold = 4096

// SolveInternedCtx is SolveInterned with cancellation and parallelism.
// When opts engages (see SolveOptions), initialization, the Iterative
// Rule frontier scan, and the result extraction are sharded by
// constant-id range across a worker pool, with per-shard frontier
// accumulators merged word-wise per round; ctx is polled between
// rounds, so a mid-solve cancellation aborts without publishing a
// partial result (the memoized binding is never left partial — its
// build does not observe ctx). When opts does not engage, this is
// exactly SolveInterned on the unchanged single-core path.
func (cp *Compiled) SolveInternedCtx(ctx context.Context, iv *instance.Interned, opts SolveOptions) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(cp.q) == 0 || !opts.Engaged(iv) {
		//cqalint:allow ctxpropagate non-engaged fallback is the documented single-core path; ctx was polled at entry and the memoized binding must not observe cancellation mid-build
		return cp.SolveInterned(iv), nil
	}
	return cp.solveParallel(ctx, iv, opts.Workers)
}

// solveParallel is the partitioned worklist solver. Each round is a
// scan phase (every worker walks its constant range's slice of the
// frontier, decrementing pending counters atomically and deriving new
// pairs into a worker-local accumulator) followed by a merge phase
// (the locals are OR-folded word-wise into the relation N; bits not
// already in N become the next frontier). Constant ranges are cut at
// multiples of 64 constants, so the per-shard spans of every
// constant-indexed bitset are word-disjoint and initialization and
// extraction write without synchronization. Workers track the word
// interval they dirtied, so merges scan only words some worker (or the
// previous frontier) actually touched — a frontier that collapses to a
// narrow id range costs its width, not the whole vector.
func (cp *Compiled) solveParallel(ctx context.Context, iv *instance.Interned, workers int) (*Result, error) {
	n := len(cp.q)
	nc := iv.NumConsts()
	stride := n + 1
	bounds := par.Blocks(nc, workers, 64)
	nw := len(bounds) - 1
	cp.parSolves.Add(1)
	cp.parShards.Add(uint64(nw))

	b := cp.bindWorkers(iv, nw)
	res := &Result{Query: cp.q.Clone(), iv: iv, nq: n}

	nbits := nc * stride
	words := (nbits + 63) >> 6
	bits := bitset.New(nbits)
	frontier := bitset.New(nbits)
	pending := make([]int32, b.base[n])
	for v, pb := range b.pos {
		if pb != nil {
			copy(pending[b.base[v]:], pb.pendingInit)
		}
	}

	locals := make([]bitset.Bits, nw)
	for w := range locals {
		locals[w] = make(bitset.Bits, words)
	}
	dirtyLo := make([]int, nw)
	dirtyHi := make([]int, nw)
	newCount := make([]int, nw)
	newLo := make([]int, nw)
	newHi := make([]int, nw)

	// Initialization step: ⟨c, q⟩ for every c ∈ adom(db). Shard bit
	// spans are word-disjoint (64·stride ≡ 0 mod 64), so the direct
	// writes do not race.
	par.Run(nw, func(w int) {
		for c := bounds[w]; c < bounds[w+1]; c++ {
			idx := c*stride + n
			bits.Set(idx)
			frontier.Set(idx)
		}
	})
	count := nc
	glo, ghi := 0, words // word interval containing all frontier bits
	backSources := cp.backSources

	for count > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if count < drainThreshold {
			cp.drainSequential(b, bits, frontier, pending, glo, ghi)
			break
		}
		// Scan phase.
		par.Run(nw, func(w int) {
			local := locals[w]
			dLo, dHi := words, 0
			add := func(idx int) {
				wi := idx >> 6
				local[wi] |= 1 << (uint(idx) & 63)
				if wi < dLo {
					dLo = wi
				}
				if wi >= dHi {
					dHi = wi + 1
				}
			}
			lo, hi := bounds[w]*stride, bounds[w+1]*stride
			if gl := glo << 6; lo < gl {
				lo = gl
			}
			if gh := ghi << 6; hi > gh {
				hi = gh
			}
			frontier.ForEachIn(lo, hi, func(idx int) {
				u := idx % stride
				if u == 0 {
					return
				}
				v := u - 1
				pb := b.pos[v]
				if pb == nil {
					return
				}
				c := idx / stride
				vbase := b.base[v]
				for _, ls := range pb.refList[pb.refStart[c]:pb.refStart[c+1]] {
					bs := vbase + ls
					// Values of one block may span several shards, so the
					// counter is shared; it reaches 0 exactly once, firing
					// the derivation in exactly one worker.
					if atomic.AddInt32(&pending[bs], -1) == 0 {
						base := int(pb.blockKey[ls]) * stride
						add(base + v)
						for _, bw := range backSources[v] {
							add(base + bw)
						}
					}
				}
			})
			dirtyLo[w], dirtyHi[w] = dLo, dHi
		})
		// Merge phase over the union of the dirty intervals plus the old
		// frontier interval (whose words must be cleared even if no
		// worker rewrote them).
		mlo, mhi := glo, ghi
		for w := 0; w < nw; w++ {
			if dirtyLo[w] < dirtyHi[w] {
				if dirtyLo[w] < mlo {
					mlo = dirtyLo[w]
				}
				if dirtyHi[w] > mhi {
					mhi = dirtyHi[w]
				}
			}
		}
		mb := par.Blocks(mhi-mlo, nw, 1)
		mw := len(mb) - 1
		par.Run(mw, func(w int) {
			cnt := 0
			fLo, fHi := mhi, mlo
			for wi := mlo + mb[w]; wi < mlo+mb[w+1]; wi++ {
				var acc uint64
				for k := 0; k < nw; k++ {
					acc |= locals[k][wi]
					locals[k][wi] = 0
				}
				fresh := acc &^ bits[wi]
				bits[wi] |= fresh
				frontier[wi] = fresh
				if fresh != 0 {
					cnt += mathbits.OnesCount64(fresh)
					if wi < fLo {
						fLo = wi
					}
					fHi = wi + 1
				}
			}
			newCount[w], newLo[w], newHi[w] = cnt, fLo, fHi
		})
		count = 0
		glo, ghi = words, 0
		for w := 0; w < mw; w++ {
			count += newCount[w]
			if newCount[w] > 0 {
				if newLo[w] < glo {
					glo = newLo[w]
				}
				if newHi[w] > ghi {
					ghi = newHi[w]
				}
			}
		}
	}

	// Extraction, sharded like initialization (word-disjoint startBits
	// spans); per-shard start lists concatenate in shard order, so
	// Starts is ascending like the sequential path's.
	res.bits = bits
	res.startBits = bitset.New(nc)
	parts := make([][]string, nw)
	par.Run(nw, func(w int) {
		var out []string
		for c := bounds[w]; c < bounds[w+1]; c++ {
			if bits.Test(c * stride) {
				res.startBits.Set(c)
				out = append(out, iv.Const(int32(c)))
			}
		}
		parts[w] = out
	})
	for _, p := range parts {
		res.Starts = append(res.Starts, p...)
	}
	res.Certain = len(res.Starts) > 0
	return res, nil
}

// drainSequential finishes a parallel solve with the standard
// sequential worklist once the frontier is small: the remaining
// frontier bits seed the queue, and derivation proceeds exactly as in
// SolveInterned (bits and pending are already consistent — every
// frontier bit is set in bits, and pending holds the counters after
// all scanned decrements).
func (cp *Compiled) drainSequential(b *binding, bits, frontier bitset.Bits, pending []int32, glo, ghi int) {
	n := len(cp.q)
	stride := n + 1
	queue := make([]int32, 0, drainThreshold)
	frontier.ForEachIn(glo<<6, ghi<<6, func(idx int) { queue = append(queue, int32(idx)) })
	backSources := cp.backSources
	add := func(idx int) {
		if !bits.Test(idx) {
			bits.Set(idx)
			queue = append(queue, int32(idx))
		}
	}
	for head := 0; head < len(queue); head++ {
		idx := int(queue[head])
		u := idx % stride
		if u == 0 {
			continue
		}
		v := u - 1
		pb := b.pos[v]
		if pb == nil {
			continue
		}
		c := idx / stride
		vbase := b.base[v]
		for _, ls := range pb.refList[pb.refStart[c]:pb.refStart[c+1]] {
			bs := vbase + ls
			pending[bs]--
			if pending[bs] == 0 {
				base := int(pb.blockKey[ls]) * stride
				add(base + v)
				for _, w := range backSources[v] {
					add(base + w)
				}
			}
		}
	}
}

// bindWorkers is bind with a parallel cold build: on a memo miss with
// no repairable ancestor, the per-relation CSR segments build
// concurrently (distinct relations write disjoint posBindings). Repair
// stays sequential — it rebuilds only touched relations, which is
// already the cheap path.
func (cp *Compiled) bindWorkers(iv *instance.Interned, workers int) *binding {
	if workers <= 1 {
		return cp.bind(iv)
	}
	return cp.bindings.GetOrRepair(iv,
		func(peek func(*instance.Interned) (*binding, bool)) (*binding, int, bool) {
			var found *binding
			parent, touched, ok := instance.Lineage(iv, func(a *instance.Interned) bool {
				b, res := peek(a)
				if res {
					found = b
				}
				return res
			})
			if !ok {
				return nil, 0, false
			}
			hops := iv.LineageDepth() - parent.LineageDepth()
			return cp.repairBinding(found, iv, touched), hops, true
		},
		func() *binding { return cp.buildBindingPar(iv, workers) })
}

// buildBindingPar is buildBinding with the per-relation segments built
// concurrently; the resulting binding is identical to the sequential
// build's.
func (cp *Compiled) buildBindingPar(iv *instance.Interned, workers int) *binding {
	n := len(cp.q)
	nc := iv.NumConsts()
	b := &binding{nc: nc, pos: make([]*posBinding, n), base: make([]int32, n+1)}
	posRel := make([]int32, n) // rid per position, -1 when absent
	slot := make(map[int32]int, n)
	rids := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		rid, ok := iv.RelID(cp.q[v])
		if !ok {
			posRel[v] = -1
			continue
		}
		posRel[v] = rid
		if _, dup := slot[rid]; !dup {
			slot[rid] = len(rids)
			rids = append(rids, rid)
		}
	}
	built := make([]*posBinding, len(rids))
	if workers > len(rids) {
		workers = len(rids)
	}
	rb := par.Blocks(len(rids), workers, 1)
	par.Run(len(rb)-1, func(w int) {
		for i := rb[w]; i < rb[w+1]; i++ {
			built[i] = buildPos(iv, rids[i], nc)
		}
	})
	for v := 0; v < n; v++ {
		if posRel[v] >= 0 {
			b.pos[v] = built[slot[posRel[v]]]
		}
	}
	b.finalize()
	return b
}
