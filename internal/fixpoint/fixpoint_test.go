package fixpoint

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cqa/internal/classify"
	"cqa/internal/instance"
	"cqa/internal/repairs"
	"cqa/internal/words"
)

// figure6 is the instance of Figure 6, reconstructed from the paper's
// iteration table: a chain 0 -R-> 1 -R-> 2 -R-> 3 with additional
// conflicting R-edges from 1, 2, 3 into 4 and X(4,5). The blocks R(1,*)
// and R(2,*) are conflicting.
func figure6() *instance.Instance {
	return instance.MustParseFacts("R(0,1) R(1,2) R(2,3) R(1,4) R(2,4) R(3,4) X(4,5)")
}

func TestFigure6Trace(t *testing.T) {
	q := words.MustParse("RRX")
	res, traces := SolveNaive(figure6(), q)
	if !res.Certain {
		t.Fatal("Figure 6 instance is a yes-instance")
	}
	// The paper's table:
	//   init: <0..5, RRX>
	//   1: <4, RR>
	//   2: <3, R>, <3, RR>
	//   3: <2, R>, <2, RR>
	//   4: <1, R>, <1, RR>
	//   5: <0, R>, <0, RR>, <0, ε>
	want := [][]Pair{
		{{C: "4", U: 2}},
		{{C: "3", U: 1}, {C: "3", U: 2}},
		{{C: "2", U: 1}, {C: "2", U: 2}},
		{{C: "1", U: 1}, {C: "1", U: 2}},
		{{C: "0", U: 0}, {C: "0", U: 1}, {C: "0", U: 2}},
	}
	if len(traces) != len(want) {
		t.Fatalf("got %d rounds, want %d: %v", len(traces), len(want), traces)
	}
	for i, w := range want {
		if !reflect.DeepEqual(traces[i].Added, w) {
			t.Errorf("round %d: got %v, want %v", i+1, traces[i].Added, w)
		}
	}
	if got := res.Starts; !reflect.DeepEqual(got, []string{"0"}) {
		t.Errorf("Starts = %v, want [0]", got)
	}
	txt := FormatTrace(q, traces)
	if !strings.Contains(txt, "<0, ε>") || !strings.Contains(txt, "<4, RR>") {
		t.Errorf("FormatTrace output:\n%s", txt)
	}
}

func TestWorklistMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	queries := []words.Word{
		words.MustParse("RRX"), words.MustParse("RXRX"), words.MustParse("RXRY"),
		words.MustParse("RXRYRY"), words.MustParse("RR"), words.MustParse("RXRRR"),
	}
	for it := 0; it < 300; it++ {
		db := instance.New()
		n := 1 + rng.Intn(10)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X", "Y"}[rng.Intn(3)]
			db.AddFact(rel, string(rune('a'+rng.Intn(4))), string(rune('a'+rng.Intn(4))))
		}
		for _, q := range queries {
			fast := Solve(db, q)
			slow, _ := SolveNaive(db, q)
			if fast.Certain != slow.Certain {
				t.Fatalf("it=%d db=%s q=%v: worklist=%v naive=%v", it, db, q, fast.Certain, slow.Certain)
			}
			if !reflect.DeepEqual(fast.Starts, slow.Starts) {
				t.Fatalf("it=%d db=%s q=%v: starts %v vs %v", it, db, q, fast.Starts, slow.Starts)
			}
			if !reflect.DeepEqual(fast.Pairs(), slow.Pairs()) {
				t.Fatalf("it=%d q=%v: N differs: worklist %v vs naive %v", it, q, fast.Pairs(), slow.Pairs())
			}
			for c, us := range fast.NMap() {
				for u := range us {
					if !slow.Has(c, u) {
						t.Fatalf("it=%d q=%v: ⟨%s,%d⟩ only in worklist N", it, q, c, u)
					}
				}
			}
		}
	}
}

// TestAgainstExhaustiveC3 differentially validates the fixpoint solver
// against exhaustive repair enumeration for C3 queries (the class on
// which Lemma 7 guarantees correctness).
func TestAgainstExhaustiveC3(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	queries := []words.Word{
		words.MustParse("RRX"),    // NL class
		words.MustParse("RXRX"),   // FO class
		words.MustParse("RXRY"),   // NL class
		words.MustParse("RXRYRY"), // PTIME class
		words.MustParse("RR"),     // FO class
		words.MustParse("RRSRS"),  // PTIME class (Lemma 3 shortest 3a)
		words.MustParse("RSRRR"),  // PTIME class (Lemma 3 shortest 3b)
	}
	for _, q := range queries {
		if ok, _ := classify.C3(q); !ok {
			t.Fatalf("test setup: %v must satisfy C3", q)
		}
	}
	for it := 0; it < 400; it++ {
		db := instance.New()
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X", "Y", "S"}[rng.Intn(4)]
			db.AddFact(rel, string(rune('a'+rng.Intn(4))), string(rune('a'+rng.Intn(4))))
		}
		for _, q := range queries {
			got := Solve(db, q).Certain
			want := repairs.IsCertain(db, q)
			if got != want {
				t.Fatalf("it=%d db=%s q=%v: fixpoint=%v exhaustive=%v", it, db, q, got, want)
			}
		}
	}
}

func TestFigure2YesInstance(t *testing.T) {
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	q := words.MustParse("RRX")
	res := Solve(db, q)
	if !res.Certain {
		t.Fatal("Figure 2 is a yes-instance of CERTAINTY(RRX)")
	}
	// The certain start is 0: both repairs have an RR(R)*X path from 0.
	if !reflect.DeepEqual(res.Starts, []string{"0"}) {
		t.Errorf("Starts = %v, want [0]", res.Starts)
	}
}

func TestCounterexampleRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	queries := []words.Word{
		words.MustParse("RRX"), words.MustParse("RXRYRY"), words.MustParse("RXRX"),
	}
	checked := 0
	for it := 0; it < 400; it++ {
		db := instance.New()
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X", "Y"}[rng.Intn(3)]
			db.AddFact(rel, string(rune('a'+rng.Intn(4))), string(rune('a'+rng.Intn(4))))
		}
		for _, q := range queries {
			res := Solve(db, q)
			r := CounterexampleRepair(db, q, res)
			if !r.IsRepairOf(db) {
				t.Fatalf("not a repair: %s of %s", r, db)
			}
			if !res.Certain {
				checked++
				if r.Satisfies(q) {
					t.Fatalf("it=%d q=%v db=%s: counterexample repair %s satisfies q", it, q, db, r)
				}
			}
		}
	}
	if checked == 0 {
		t.Error("no no-instances were generated; counterexample path untested")
	}
}

// TestMinimalRepairMinimizesStarts machine-checks Lemma 6: the repair r*
// built by CounterexampleRepair minimizes start(q, ·) across repairs.
func TestMinimalRepairMinimizesStarts(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	q := words.MustParse("RRX")
	for it := 0; it < 150; it++ {
		db := instance.New()
		n := 1 + rng.Intn(7)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X"}[rng.Intn(2)]
			db.AddFact(rel, string(rune('a'+rng.Intn(3))), string(rune('a'+rng.Intn(3))))
		}
		rstar := CounterexampleRepair(db, q, nil)
		starStarts := nfaStarts(rstar, q)
		repairs.ForEach(db, func(r *instance.Instance) bool {
			rs := nfaStarts(r, q)
			for c := range starStarts {
				if !rs[c] {
					t.Fatalf("it=%d db=%s: start(q,r*)∌... %s ∈ start(q,r*) but ∉ start(q,%s)", it, db, c, r)
				}
			}
			return true
		})
	}
}

// nfaStarts computes start(q, r) (Definition 6): constants from which a
// path of r is accepted by NFA(q).
func nfaStarts(r *instance.Instance, q words.Word) map[string]bool {
	out := map[string]bool{}
	// Accepted traces have length <= some bound; instead of bounding,
	// use the per-constant acceptance search.
	for _, c := range r.Adom() {
		if startAccepted(r, q, c) {
			out[c] = true
		}
	}
	return out
}

func startAccepted(r *instance.Instance, q words.Word, c string) bool {
	res := StatesSet(r, q, instance.Fact{})
	_ = res
	// Use acceptsFromVia through the exported surface: a path from c is
	// accepted iff some fact R(c,d) ∈ r has state R (prefix length 1
	// with matching first relation... simpler: reuse StatesSet on the
	// first fact of each relation.
	for _, rel := range r.Relations() {
		for _, d := range r.Block(rel, c) {
			st := StatesSet(r, q, instance.Fact{Rel: rel, Key: c, Val: d})
			// state 1 means S-NFA(q, ε) accepts a path starting with
			// this fact, i.e. the path from c is accepted by NFA(q).
			if q[0] == rel && st[1] {
				return true
			}
		}
	}
	return false
}

// TestLemma8StatesSets machine-checks Lemma 8: if ST_q(f, r) contains
// state uR then it contains every longer state vR with the same final
// relation name.
func TestLemma8StatesSets(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	q := words.MustParse("RXRRR")
	occ := map[int]bool{}
	for i, s := range q {
		if s == "R" {
			occ[i+1] = true
		}
	}
	for it := 0; it < 200; it++ {
		db := instance.New()
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X"}[rng.Intn(2)]
			db.AddFact(rel, string(rune('a'+rng.Intn(4))), string(rune('a'+rng.Intn(4))))
		}
		r := repairs.Sample(db, rng)
		for _, f := range r.Facts() {
			st := StatesSet(r, q, f)
			// Check upward closure among states with the same last
			// relation name.
			for u := range st {
				for v := u + 1; v <= len(q); v++ {
					if q[v-1] == q[u-1] && !st[v] {
						t.Fatalf("it=%d r=%s f=%s: state %d in ST but %d not", it, r, f, u, v)
					}
				}
			}
		}
	}
}

func TestStatesSetExample5(t *testing.T) {
	// Example 5: q = RRX, r = {R(a,b), R(b,c), R(c,d), X(d,e), R(d,e)}.
	r := instance.MustParseFacts("R(a,b) R(b,c) R(c,d) X(d,e) R(d,e)")
	q := words.MustParse("RRX")
	st := StatesSet(r, q, instance.Fact{Rel: "R", Key: "b", Val: "c"})
	// Contains R (prefix length 1) and RR (length 2).
	if !st[1] || !st[2] {
		t.Errorf("ST(R(b,c)) = %v, want {1,2}", st)
	}
	st2 := StatesSet(r, q, instance.Fact{Rel: "R", Key: "d", Val: "e"})
	if len(st2) != 0 {
		t.Errorf("ST(R(d,e)) = %v, want empty", st2)
	}
}

func TestCertainViaMinimalRepairAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	queries := []words.Word{words.MustParse("RRX"), words.MustParse("RXRYRY")}
	for it := 0; it < 200; it++ {
		db := instance.New()
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X", "Y"}[rng.Intn(3)]
			db.AddFact(rel, string(rune('a'+rng.Intn(4))), string(rune('a'+rng.Intn(4))))
		}
		for _, q := range queries {
			if got, want := CertainViaMinimalRepair(db, q), Solve(db, q).Certain; got != want {
				t.Fatalf("it=%d db=%s q=%v: minimal-repair=%v fixpoint=%v", it, db, q, got, want)
			}
		}
	}
}

func TestEmptyQueryAndEmptyDB(t *testing.T) {
	if !Solve(instance.New(), words.MustParse("RRX")).Certain == false {
		t.Error("empty db: no paths, no-instance") // vacuous double negative guard
	}
	res := Solve(instance.MustParseFacts("R(a,b)"), words.Word{})
	if !res.Certain {
		t.Error("empty query is certain")
	}
	res2, traces := SolveNaive(instance.MustParseFacts("R(a,b)"), words.Word{})
	if !res2.Certain || len(traces) != 0 {
		t.Error("naive empty query")
	}
}

// TestFormatTraceDeterministic guards the golden-trace rendering after
// interning: added pairs are sorted by interned constant id (= sorted
// name order) then prefix length, so repeated runs over map-backed
// state produce byte-identical tables.
func TestFormatTraceDeterministic(t *testing.T) {
	db := instance.MustParseFacts(
		"R(v10,v2) R(v10,v3) R(v2,v3) R(v3,v10) X(v3,v1) X(v2,v1) Y(v1,v2)")
	q := words.MustParse("RRX")
	_, first := SolveNaive(db, q)
	want := FormatTrace(q, first)
	for i := 0; i < 20; i++ {
		fresh := db.Clone()
		_, traces := SolveNaive(fresh, q)
		if got := FormatTrace(q, traces); got != want {
			t.Fatalf("run %d: trace differs:\n%s\nvs\n%s", i, got, want)
		}
	}
	// Rows are sorted by interned id within a round.
	iv := db.Interned()
	for _, tr := range first {
		for i := 1; i < len(tr.Added); i++ {
			a, _ := iv.ConstID(tr.Added[i-1].C)
			b, _ := iv.ConstID(tr.Added[i].C)
			if a > b || (a == b && tr.Added[i-1].U >= tr.Added[i].U) {
				t.Fatalf("round %d not sorted by interned id: %v", tr.Round, tr.Added)
			}
		}
	}
}

// TestSolveMatchesAfterMutation checks the binding memo against
// instance mutation: a Compiled query bound to an instance must see
// the post-mutation state on the next Solve (the stale interned
// snapshot is unreachable after the mutation publishes a new one).
func TestSolveMatchesAfterMutation(t *testing.T) {
	cp := Compile(words.MustParse("RRX"))
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	if !cp.Solve(db).Certain {
		t.Fatal("Figure 2 is a yes-instance")
	}
	db.Remove(instance.Fact{Rel: "X", Key: "3", Val: "4"})
	if cp.Solve(db).Certain {
		t.Fatal("stale binding: removing X(3,4) must break certainty")
	}
	db.AddFact("X", "3", "4")
	if !cp.Solve(db).Certain {
		t.Fatal("stale binding: re-adding X(3,4) must restore certainty")
	}
}
