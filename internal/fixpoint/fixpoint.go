// Package fixpoint implements the polynomial-time algorithm of Figure 5
// of the paper, which decides CERTAINTY(q) for every path query q
// satisfying condition C3 (Section 6.1). It computes the fixed point of
// the relation
//
//	N = { ⟨c, u⟩ | db ⊢q ⟨c, u⟩ }
//
// where db ⊢q ⟨c, u⟩ means that every repair of db has a path that
// starts in c and is accepted by S-NFA(q, u) (Definition 10). States u
// are prefixes of q, identified by their length.
//
// Two implementations are provided: a worklist algorithm running in
// O(|q|²·|db|) and a naive round-based variant that records the
// iteration trace of Figure 6. The package also implements the
// ⪯q-minimal repair construction of Lemmas 9 and 10, which yields
// counterexample repairs for no-instances, and states sets
// (Definition 7) for machine-checking Lemma 8.
package fixpoint

import (
	"fmt"
	"sort"
	"strings"

	"cqa/internal/automata"
	"cqa/internal/instance"
	"cqa/internal/words"
)

// Pair is a member ⟨C, U⟩ of the relation N: every repair has a path
// starting at C accepted by S-NFA(q, q[:U]).
type Pair struct {
	C string
	U int
}

// Result is the output of the fixpoint computation.
type Result struct {
	Query words.Word
	// N[c] is the set of prefix lengths u with ⟨c, u⟩ ∈ N.
	N map[string]map[int]bool
	// Certain reports whether some ⟨c, ε⟩ ∈ N, which by Lemma 7 and
	// Corollary 1 decides CERTAINTY(q) when q satisfies C3.
	Certain bool
	// Starts is the set of constants c with ⟨c, ε⟩ ∈ N: the constants
	// that start an accepted path in every repair (Corollary 1).
	Starts []string
}

// Has reports whether ⟨c, u⟩ ∈ N.
func (r *Result) Has(c string, u int) bool { return r.N[c][u] }

// Compiled is the query-dependent machinery of the Figure 5 algorithm,
// precomputed once per query so that repeated Solve calls over many
// instances skip rebuilding NFA(q) and its backward ε-transition table.
// A Compiled value is immutable and safe for concurrent use.
type Compiled struct {
	q   words.Word
	nfa *automata.NFA
	// backSources[u] lists the states w with a backward ε-transition
	// into u (longer prefixes ending with the same relation as q[:u]).
	backSources [][]int
	// positions[rel] lists the prefix lengths u with q[u] == rel.
	positions map[string][]int
}

// Compile precomputes the query-side artifacts of the fixpoint
// algorithm for q.
func Compile(q words.Word) *Compiled {
	n := len(q)
	c := &Compiled{
		q:           q.Clone(),
		nfa:         automata.New(q),
		backSources: make([][]int, n+1),
		positions:   make(map[string][]int, n),
	}
	for u := 0; u <= n; u++ {
		c.backSources[u] = c.nfa.BackwardSources(u)
	}
	for u, rel := range c.q {
		c.positions[rel] = append(c.positions[rel], u)
	}
	return c
}

// Query returns the compiled query word.
func (c *Compiled) Query() words.Word { return c.q.Clone() }

// NFA returns the compiled NFA(q).
func (c *Compiled) NFA() *automata.NFA { return c.nfa }

// Solve runs the worklist implementation of the Figure 5 algorithm on db
// for path query q. The Certain field of the result decides
// CERTAINTY(q) whenever q satisfies C3.
func Solve(db *instance.Instance, q words.Word) *Result {
	return Compile(q).Solve(db)
}

// Solve runs the worklist algorithm on db with the precompiled query
// machinery.
func (cp *Compiled) Solve(db *instance.Instance) *Result {
	q := cp.q
	n := len(q)
	adom := db.Adom()
	res := &Result{Query: q.Clone(), N: make(map[string]map[int]bool, len(adom))}
	if n == 0 {
		res.Certain = true // empty query: trivially certain
		for _, c := range adom {
			res.N[c] = map[int]bool{0: true}
			res.Starts = append(res.Starts, c)
		}
		return res
	}

	// pending[u] lists, for prefix length u (0..n-1) with next relation
	// R = q[u], the blocks R(c,*): counters of successors y not yet
	// known to satisfy ⟨y, u+1⟩.
	type blockState struct {
		c       string
		pending int
		done    bool
	}
	// For each u, index block states by key constant.
	states := make([]map[string]*blockState, n)
	// succIndex[rel][y] lists (u, key) pairs that decrement when
	// ⟨y, u+1⟩ is derived... we index by value constant.
	type ref struct {
		u   int
		key string
	}
	succ := make(map[string]map[string][]ref) // rel -> val -> refs
	for _, id := range db.Blocks() {
		positions := cp.positions[id.Rel]
		if len(positions) == 0 {
			continue
		}
		if succ[id.Rel] == nil {
			succ[id.Rel] = make(map[string][]ref)
		}
		vals := db.Block(id.Rel, id.Key)
		for _, u := range positions {
			if states[u] == nil {
				states[u] = make(map[string]*blockState)
			}
			states[u][id.Key] = &blockState{c: id.Key, pending: len(vals)}
			for _, v := range vals {
				succ[id.Rel][v] = append(succ[id.Rel][v], ref{u: u, key: id.Key})
			}
		}
	}

	inN := make(map[Pair]bool)
	var queue []Pair
	add := func(c string, u int) {
		p := Pair{c, u}
		if inN[p] {
			return
		}
		inN[p] = true
		queue = append(queue, p)
	}

	// Backward closure: when ⟨c, u⟩ is derived forward, also add ⟨c, w⟩
	// for every state w with a backward ε-transition to u, i.e. every
	// longer prefix w ending with the same relation name as u.
	backSources := cp.backSources

	// Initialization step: ⟨c, q⟩ for every c ∈ adom(db).
	for _, c := range adom {
		add(c, n)
	}

	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if p.U == 0 {
			continue
		}
		u := p.U - 1
		rel := q[u]
		for _, r := range succ[rel][p.C] {
			if r.u != u {
				continue
			}
			st := states[u][r.key]
			st.pending--
			if st.pending == 0 && !st.done {
				st.done = true
				add(st.c, u)
				for _, w := range backSources[u] {
					add(st.c, w)
				}
			}
		}
	}

	for p := range inN {
		if res.N[p.C] == nil {
			res.N[p.C] = make(map[int]bool)
		}
		res.N[p.C][p.U] = true
	}
	for _, c := range adom {
		if res.N[c][0] {
			res.Certain = true
			res.Starts = append(res.Starts, c)
		}
	}
	sort.Strings(res.Starts)
	return res
}

// succ dedup note: a fact R(c,y) contributes one ref per position u with
// q[u] == R; each ⟨y, u+1⟩ decrements the (u, c) counter exactly once
// because facts are distinct and refs are walked per derived pair.

// Trace records one round of the naive implementation: the pairs added
// in that round, mirroring the table of Figure 6.
type Trace struct {
	Round int
	Added []Pair
}

// SolveNaive runs the round-based implementation of Figure 5: in each
// round the Iterative Rule is applied to all pairs derivable from the
// current N. It returns the result together with the per-round trace
// (Figure 6 of the paper).
func SolveNaive(db *instance.Instance, q words.Word) (*Result, []Trace) {
	n := len(q)
	adom := db.Adom()
	inN := make(map[Pair]bool)
	nfa := automata.New(q)
	for _, c := range adom {
		inN[Pair{c, n}] = true
	}
	var traces []Trace
	for round := 1; ; round++ {
		var added []Pair
		for u := 0; u < n; u++ {
			rel := q[u]
			for _, id := range db.Blocks() {
				if id.Rel != rel || inN[Pair{id.Key, u}] {
					continue
				}
				all := true
				for _, y := range db.Block(id.Rel, id.Key) {
					if !inN[Pair{y, u + 1}] {
						all = false
						break
					}
				}
				if !all {
					continue
				}
				added = append(added, Pair{id.Key, u})
				for _, w := range nfa.BackwardSources(u) {
					if !inN[Pair{id.Key, w}] {
						added = append(added, Pair{id.Key, w})
					}
				}
			}
		}
		// Deduplicate and commit the round.
		var committed []Pair
		for _, p := range added {
			if !inN[p] {
				inN[p] = true
				committed = append(committed, p)
			}
		}
		if len(committed) == 0 {
			break
		}
		sort.Slice(committed, func(i, j int) bool {
			if committed[i].C != committed[j].C {
				return committed[i].C < committed[j].C
			}
			return committed[i].U < committed[j].U
		})
		traces = append(traces, Trace{Round: round, Added: committed})
	}

	res := &Result{Query: q.Clone(), N: make(map[string]map[int]bool)}
	for p := range inN {
		if res.N[p.C] == nil {
			res.N[p.C] = make(map[int]bool)
		}
		res.N[p.C][p.U] = true
	}
	for _, c := range adom {
		if res.N[c][0] || n == 0 {
			res.Certain = true
			res.Starts = append(res.Starts, c)
		}
	}
	sort.Strings(res.Starts)
	if n == 0 {
		res.Certain = true
	}
	return res, traces
}

// FormatTrace renders the rounds in the style of the Figure 6 table.
func FormatTrace(q words.Word, traces []Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Iteration | Tuples added to N (q = %v)\n", q)
	for _, tr := range traces {
		parts := make([]string, len(tr.Added))
		for i, p := range tr.Added {
			parts[i] = fmt.Sprintf("<%s, %v>", p.C, q.Prefix(p.U))
		}
		fmt.Fprintf(&b, "%9d | %s\n", tr.Round, strings.Join(parts, ", "))
	}
	return b.String()
}

// CounterexampleRepair constructs the repair r* of the proof of
// Lemma 10: for every block R(a,*), among all prefixes u0·R of q ending
// with R, let u0 be the longest with ⟨a, u0⟩ ∉ N; if such a prefix
// exists, pick a fact R(a,b) with ⟨b, u0·R⟩ ∉ N, else pick arbitrarily
// (we pick the smallest value for determinism). For a path query q
// satisfying C3, if db is a no-instance then the returned repair
// falsifies q; it is also the ⪯q-minimal repair of Lemma 9, minimizing
// start(q, ·) over all repairs (Lemma 6).
func CounterexampleRepair(db *instance.Instance, q words.Word, res *Result) *instance.Instance {
	if res == nil {
		res = Solve(db, q)
	}
	r := instance.New()
	for _, id := range db.Blocks() {
		vals := db.Block(id.Rel, id.Key)
		chosen := vals[0]
		// Longest prefix u0 ending before an occurrence of id.Rel with
		// ⟨key, u0⟩ ∉ N.
		for u := len(q) - 1; u >= 0; u-- {
			if q[u] != id.Rel {
				continue
			}
			if res.Has(id.Key, u) {
				continue
			}
			// Iterative Rule guarantees some successor with
			// ⟨y, u+1⟩ ∉ N.
			found := false
			for _, y := range vals {
				if !res.Has(y, u+1) {
					chosen = y
					found = true
					break
				}
			}
			if !found {
				// Cannot happen if res is the true fixpoint.
				panic(fmt.Sprintf("fixpoint: block %v: ⟨%s,%d⟩ ∉ N but all successors in N", id, id.Key, u))
			}
			break
		}
		r.AddFact(id.Rel, id.Key, chosen)
	}
	return r
}

// StatesSet computes ST_q(f, r) of Definition 7 for a fact f of a
// consistent instance r: the set of states u·R (as prefix lengths) such
// that S-NFA(q, u) accepts some path of r that starts with the fact f.
func StatesSet(r *instance.Instance, q words.Word, f instance.Fact) map[int]bool {
	out := make(map[int]bool)
	nfa := automata.New(q)
	for u := 0; u < len(q); u++ {
		if q[u] != f.Rel {
			continue
		}
		// S-NFA(q, u) must accept a path starting with f: first step
		// consumes f (state u -> u+1), then any accepted continuation
		// from f.Val.
		if acceptsFromVia(r, nfa, u+1, f.Val) {
			out[u+1] = true
		}
	}
	return out
}

// acceptsFromVia reports whether some path of r starting at constant c
// is accepted by the automaton started at state "state" (including via
// ε-moves and further steps).
func acceptsFromVia(r *instance.Instance, nfa *automata.NFA, state int, c string) bool {
	n := nfa.NumStates()
	// BFS over (state-set, constant) configurations; r is consistent so
	// each constant has at most one successor per relation.
	type cfg struct {
		key string
		c   string
	}
	start := make([]bool, n)
	start[state] = true
	closure(nfa, start)
	seen := map[cfg]bool{}
	queue := []struct {
		set []bool
		c   string
	}{{start, c}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.set[n-1] {
			return true
		}
		k := cfg{key: setKey(cur.set), c: cur.c}
		if seen[k] {
			continue
		}
		seen[k] = true
		// Group moves by relation.
		for _, rel := range r.Relations() {
			succ := r.Block(rel, cur.c)
			if len(succ) == 0 {
				continue
			}
			next := make([]bool, n)
			any := false
			for i := 0; i < n-1; i++ {
				if cur.set[i] && nfa.ForwardLabel(i) == rel {
					next[i+1] = true
					any = true
				}
			}
			if !any {
				continue
			}
			closure(nfa, next)
			queue = append(queue, struct {
				set []bool
				c   string
			}{next, succ[0]})
		}
	}
	return false
}

func closure(nfa *automata.NFA, set []bool) {
	for j := len(set) - 1; j >= 1; j-- {
		if set[j] {
			for _, i := range nfa.BackwardTargets(j) {
				set[i] = true
			}
		}
	}
}

func setKey(set []bool) string {
	b := make([]byte, len(set))
	for i, v := range set {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// CertainViaMinimalRepair decides CERTAINTY(q) for q satisfying C3 by
// the Lemma 6 route: build the ⪯q-minimal repair r* (which minimizes
// start(q, ·) over all repairs) and test whether it satisfies q. For C3
// queries, r* satisfies q iff start(q, r*) is nonempty iff db is a
// yes-instance. Exposed primarily for differential testing against
// Solve.
func CertainViaMinimalRepair(db *instance.Instance, q words.Word) bool {
	if len(q) == 0 {
		return true
	}
	res := Solve(db, q)
	return CounterexampleRepair(db, q, res).Satisfies(q)
}
