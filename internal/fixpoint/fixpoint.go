// Package fixpoint implements the polynomial-time algorithm of Figure 5
// of the paper, which decides CERTAINTY(q) for every path query q
// satisfying condition C3 (Section 6.1). It computes the fixed point of
// the relation
//
//	N = { ⟨c, u⟩ | db ⊢q ⟨c, u⟩ }
//
// where db ⊢q ⟨c, u⟩ means that every repair of db has a path that
// starts in c and is accepted by S-NFA(q, u) (Definition 10). States u
// are prefixes of q, identified by their length.
//
// Two implementations are provided: a worklist algorithm running in
// O(|q|²·|db|) and a naive round-based variant that records the
// iteration trace of Figure 6. The package also implements the
// ⪯q-minimal repair construction of Lemmas 9 and 10, which yields
// counterexample repairs for no-instances, and states sets
// (Definition 7) for machine-checking Lemma 8.
package fixpoint

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"cqa/internal/automata"
	"cqa/internal/bitset"
	"cqa/internal/instance"
	"cqa/internal/memo"
	"cqa/internal/words"
)

// Pair is a member ⟨C, U⟩ of the relation N: every repair has a path
// starting at C accepted by S-NFA(q, q[:U]).
type Pair struct {
	C string
	U int
}

// Result is the output of the fixpoint computation. The relation N is
// stored interned (a bitset over constant-id × prefix-length pairs);
// Has, Pairs and NMap translate back to the string world.
type Result struct {
	Query words.Word
	// Certain reports whether some ⟨c, ε⟩ ∈ N, which by Lemma 7 and
	// Corollary 1 decides CERTAINTY(q) when q satisfies C3.
	Certain bool
	// Starts is the set of constants c with ⟨c, ε⟩ ∈ N: the constants
	// that start an accepted path in every repair (Corollary 1), in
	// sorted order.
	Starts []string

	iv        *instance.Interned
	nq        int         // len(Query)
	bits      bitset.Bits // ⟨c, u⟩ ∈ N at bit c*(nq+1)+u
	startBits bitset.Bits // bit c set iff ⟨c, ε⟩ ∈ N (Starts, interned)
}

// StartBits returns the set of constants c with ⟨c, ε⟩ ∈ N as a bitset
// over interned constant ids — the interned form of Starts, used by the
// NL tier's avoidance predicate. The slice is shared and must not be
// modified.
func (r *Result) StartBits() []uint64 { return r.startBits }

// Has reports whether ⟨c, u⟩ ∈ N.
func (r *Result) Has(c string, u int) bool {
	if u < 0 || u > r.nq || r.iv == nil {
		return false
	}
	id, ok := r.iv.ConstID(c)
	if !ok {
		return false
	}
	return r.bits.Test(int(id)*(r.nq+1) + u)
}

// Pairs returns N as an explicit pair list, sorted by interned constant
// id (equivalently, by constant name) and then by prefix length.
func (r *Result) Pairs() []Pair {
	if r.iv == nil {
		return nil
	}
	stride := r.nq + 1
	var out []Pair
	for c := 0; c < r.iv.NumConsts(); c++ {
		for u := 0; u < stride; u++ {
			if r.bits.Test(c*stride + u) {
				out = append(out, Pair{C: r.iv.Const(int32(c)), U: u})
			}
		}
	}
	return out
}

// NMap materializes N in the map form used before interning:
// NMap()[c][u] reports ⟨c, u⟩ ∈ N. Intended for tests and diagnostics,
// not hot paths.
func (r *Result) NMap() map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, p := range r.Pairs() {
		if out[p.C] == nil {
			out[p.C] = make(map[int]bool)
		}
		out[p.C][p.U] = true
	}
	return out
}

// Compiled is the query-dependent machinery of the Figure 5 algorithm,
// precomputed once per query so that repeated Solve calls over many
// instances skip rebuilding NFA(q) and its backward ε-transition table.
// A Compiled value is safe for concurrent use; it additionally memoizes
// the instance-side transition tables per interned instance snapshot
// (see binding), realizing a per-(query, instance) memo whose
// invalidation is the instance mutation itself.
type Compiled struct {
	q   words.Word
	nfa *automata.NFA
	// backSources[u] lists the states w with a backward ε-transition
	// into u (longer prefixes ending with the same relation as q[:u]).
	backSources [][]int
	// positions[rel] lists the prefix lengths u with q[u] == rel.
	positions map[string][]int

	// bindings memoizes instance-bound tables keyed by the interned
	// snapshot pointer: a mutation of the instance publishes a fresh
	// *Interned, so a stale binding can never be looked up again. The
	// memo is a bounded LRU (least-recently-served snapshot evicted
	// first); builds run outside the memo lock, so a large instance
	// never serializes Solves over other instances. The NL tier reuses
	// the same memo policy for its per-snapshot artifacts.
	bindings *memo.LRU[*instance.Interned, *binding]

	// parSolves/parShards count engagements of the partitioned solver
	// (see SolveInternedCtx); surfaced via ParallelStats.
	parSolves atomic.Uint64
	parShards atomic.Uint64
}

// MaxBindings bounds the per-query binding memo so that compiled plans
// retained in an engine cache do not pin an unbounded number of old
// instance snapshots.
const MaxBindings = 16

// MaxBindingBytes bounds the same memo by size: a binding is
// O(|q|·|adom|) int32s, so serving a few very large instances through
// one plan sheds old snapshots by bytes long before the entry bound
// bites.
const MaxBindingBytes = 32 << 20

// bindingBytes prices a binding for the memo's byte budget. Segments
// shared between positions are counted once per binding; segments a
// repair shares with the parent binding are charged to both — a
// conservative over-count that errs toward evicting sooner.
func bindingBytes(b *binding) int64 {
	total := int64(4 * len(b.base))
	seen := make(map[*posBinding]bool, len(b.pos))
	for _, pb := range b.pos {
		if pb == nil || seen[pb] {
			continue
		}
		seen[pb] = true
		total += 4 * int64(len(pb.blockKey)+len(pb.pendingInit)+len(pb.refStart)+len(pb.refList))
	}
	return total
}

// binding is the instance-side half of the Figure 5 machinery for one
// (compiled query, interned instance snapshot) pair: per query position
// v, one block state per block of relation q[v], plus a CSR index from
// successor constant to the block states it decrements. The per-position
// tables depend only on (relation, snapshot), so positions sharing a
// relation share one posBinding — and a lineage repair shares every
// posBinding whose relation no touched block belongs to with the parent
// binding, rebuilding only the touched relations' segments.
// A binding is immutable after construction; per-Solve mutable state
// (the pending counters and the bitset) is copied out per call, so one
// binding serves any number of concurrent Solve calls.
type binding struct {
	nc  int           // number of interned constants
	pos []*posBinding // per position v; nil when q[v] is absent from the instance
	// base[v] is the global block-state offset of position v (the
	// per-Solve pending array concatenates the positions' segments);
	// base[len(q)] is the total block-state count.
	base []int32
}

// posBinding is one position's (equivalently, one relation's) segment:
// block states in ascending key order and the value→states CSR.
type posBinding struct {
	// blockKey[i] is the key constant id of local block state i;
	// pendingInit[i] its initial successor counter (block size).
	blockKey    []int32
	pendingInit []int32
	// refList[refStart[c]:refStart[c+1]] lists the local block states
	// whose block contains value c.
	refStart []int32 // len nc+1
	refList  []int32
}

// bind returns the memoized binding for iv, building it on first use.
// On a miss it first tries a lineage repair: if an ancestor snapshot's
// binding is still resident, only the posBinding segments of relations
// with touched blocks are rebuilt and everything else is shared.
func (cp *Compiled) bind(iv *instance.Interned) *binding {
	return cp.bindings.GetOrRepair(iv,
		func(peek func(*instance.Interned) (*binding, bool)) (*binding, int, bool) {
			var found *binding
			parent, touched, ok := instance.Lineage(iv, func(a *instance.Interned) bool {
				b, res := peek(a)
				if res {
					found = b
				}
				return res
			})
			if !ok {
				return nil, 0, false
			}
			hops := iv.LineageDepth() - parent.LineageDepth()
			return cp.repairBinding(found, iv, touched), hops, true
		},
		func() *binding { return cp.buildBinding(iv) })
}

// buildPos constructs the segment for relation rid of iv.
func buildPos(iv *instance.Interned, rid int32, nc int) *posBinding {
	blocks := iv.RelBlocks(rid)
	pb := &posBinding{
		blockKey:    make([]int32, len(blocks)),
		pendingInit: make([]int32, len(blocks)),
		refStart:    make([]int32, nc+1),
	}
	total := 0
	counts := make([]int32, nc)
	for _, bl := range blocks {
		total += len(bl.Vals)
		for _, val := range bl.Vals {
			counts[val]++
		}
	}
	var sum int32
	for c := 0; c < nc; c++ {
		pb.refStart[c] = sum
		sum += counts[c]
	}
	pb.refStart[nc] = sum
	pb.refList = make([]int32, total)
	// Second pass: fill the CSR lists, reusing counts as fill cursors.
	next := counts
	copy(next, pb.refStart[:nc])
	for i, bl := range blocks {
		pb.blockKey[i] = bl.Key
		pb.pendingInit[i] = int32(len(bl.Vals))
		for _, val := range bl.Vals {
			pb.refList[next[val]] = int32(i)
			next[val]++
		}
	}
	return pb
}

// buildBinding constructs the interned transition tables for iv from
// scratch, sharing one segment across positions with the same relation.
func (cp *Compiled) buildBinding(iv *instance.Interned) *binding {
	n := len(cp.q)
	nc := iv.NumConsts()
	b := &binding{nc: nc, pos: make([]*posBinding, n), base: make([]int32, n+1)}
	byRel := make(map[int32]*posBinding, n)
	for v := 0; v < n; v++ {
		rid, ok := iv.RelID(cp.q[v])
		if !ok {
			continue
		}
		pb := byRel[rid]
		if pb == nil {
			pb = buildPos(iv, rid, nc)
			byRel[rid] = pb
		}
		b.pos[v] = pb
	}
	b.finalize()
	return b
}

// repairBinding derives iv's binding from an ancestor's: segments of
// relations owning a touched block are rebuilt against iv, all other
// segments are shared with the parent binding (their relations'
// interned blocks are aliased along the lineage, so the tables are
// bit-identical).
func (cp *Compiled) repairBinding(parent *binding, iv *instance.Interned, touched []instance.BlockRef) *binding {
	n := len(cp.q)
	touchedRel := make(map[int32]bool, len(touched))
	for _, t := range touched {
		touchedRel[t.Rel] = true
	}
	b := &binding{nc: parent.nc, pos: make([]*posBinding, n), base: make([]int32, n+1)}
	rebuilt := make(map[int32]*posBinding, len(touchedRel))
	for v := 0; v < n; v++ {
		rid, ok := iv.RelID(cp.q[v])
		if !ok {
			continue
		}
		if !touchedRel[rid] {
			b.pos[v] = parent.pos[v]
			continue
		}
		pb := rebuilt[rid]
		if pb == nil {
			pb = buildPos(iv, rid, b.nc)
			rebuilt[rid] = pb
		}
		b.pos[v] = pb
	}
	b.finalize()
	return b
}

// finalize computes the per-position global block-state offsets.
func (b *binding) finalize() {
	var sum int32
	for v, pb := range b.pos {
		b.base[v] = sum
		if pb != nil {
			sum += int32(len(pb.blockKey))
		}
	}
	b.base[len(b.pos)] = sum
}

// Compile precomputes the query-side artifacts of the fixpoint
// algorithm for q.
func Compile(q words.Word) *Compiled {
	n := len(q)
	c := &Compiled{
		q:           q.Clone(),
		nfa:         automata.New(q),
		backSources: make([][]int, n+1),
		positions:   make(map[string][]int, n),
		bindings:    memo.NewLRUWithBudget[*instance.Interned, *binding](MaxBindings, MaxBindingBytes, bindingBytes),
	}
	for u := 0; u <= n; u++ {
		c.backSources[u] = c.nfa.BackwardSources(u)
	}
	for u, rel := range c.q {
		c.positions[rel] = append(c.positions[rel], u)
	}
	return c
}

// Query returns the compiled query word.
func (c *Compiled) Query() words.Word { return c.q.Clone() }

// NFA returns the compiled NFA(q).
func (c *Compiled) NFA() *automata.NFA { return c.nfa }

// BindingStats returns the hit/miss counters of the per-snapshot
// binding memo: Misses is the number of instance-bound table builds,
// Hits the number of Solves served from a resident binding.
func (c *Compiled) BindingStats() memo.Stats { return c.bindings.Stats() }

// SetMemoScale sets the binding memo's byte budget to scale × the
// compile-time default (the serving layer's soft-memory-watermark
// hook); scale >= 1 restores the default. Shrinking evicts LRU
// bindings, degrading warm decisions to cold builds instead of growing
// the heap.
func (c *Compiled) SetMemoScale(scale float64) {
	c.bindings.SetBudget(memo.ScaledBudget(MaxBindingBytes, scale))
}

// Solve runs the worklist implementation of the Figure 5 algorithm on db
// for path query q. The Certain field of the result decides
// CERTAINTY(q) whenever q satisfies C3.
func Solve(db *instance.Instance, q words.Word) *Result {
	return Compile(q).Solve(db)
}

// Solve runs the worklist algorithm on db with the precompiled query
// machinery. The entire fixpoint iteration runs on interned state: the
// relation N is a bitset indexed by constID*(|q|+1)+u, the worklist
// carries packed int pairs, and the Iterative Rule walks the binding's
// CSR successor index — no string hashing or per-pair allocation.
func (cp *Compiled) Solve(db *instance.Instance) *Result {
	return cp.SolveInterned(db.Interned())
}

// SolveInterned is Solve on an interned snapshot directly. Callers that
// already hold the snapshot (the NL tier's sub-solvers) use it so that
// everything they derive — and memoize under that snapshot pointer — is
// a function of the snapshot alone.
func (cp *Compiled) SolveInterned(iv *instance.Interned) *Result {
	n := len(cp.q)
	nc := iv.NumConsts()
	res := &Result{Query: cp.q.Clone(), iv: iv, nq: n}
	if n == 0 {
		res.Certain = true // empty query: trivially certain
		res.bits = bitset.New(nc)
		res.startBits = bitset.New(nc)
		for c := 0; c < nc; c++ {
			res.bits.Set(c)
			res.startBits.Set(c)
		}
		res.Starts = append(res.Starts, iv.Consts()...)
		return res
	}

	b := cp.bind(iv)
	stride := n + 1
	bits := bitset.New(nc * stride)
	// pending[i] counts the successors of block state i not yet known to
	// satisfy ⟨y, v+1⟩, concatenating the positions' segments at their
	// base offsets; the binding's counters are copied so the binding
	// itself stays immutable under concurrent Solve calls.
	pending := make([]int32, b.base[n])
	for v, pb := range b.pos {
		if pb != nil {
			copy(pending[b.base[v]:], pb.pendingInit)
		}
	}
	queue := make([]int32, 0, nc)
	add := func(idx int) {
		if !bits.Test(idx) {
			bits.Set(idx)
			queue = append(queue, int32(idx))
		}
	}

	// Initialization step: ⟨c, q⟩ for every c ∈ adom(db).
	for c := 0; c < nc; c++ {
		add(c*stride + n)
	}

	// Backward closure: when ⟨c, u⟩ is derived forward, also add ⟨c, w⟩
	// for every state w with a backward ε-transition to u, i.e. every
	// longer prefix w ending with the same relation name as u.
	backSources := cp.backSources

	for head := 0; head < len(queue); head++ {
		idx := int(queue[head])
		u := idx % stride
		if u == 0 {
			continue
		}
		v := u - 1
		pb := b.pos[v]
		if pb == nil {
			continue
		}
		c := idx / stride
		vbase := b.base[v]
		// Each ref fires at most once: the pair ⟨c, v+1⟩ is dequeued
		// exactly once and block values are distinct, so pending hits 0
		// at most once per block state.
		for _, ls := range pb.refList[pb.refStart[c]:pb.refStart[c+1]] {
			bs := vbase + ls
			pending[bs]--
			if pending[bs] == 0 {
				base := int(pb.blockKey[ls]) * stride
				add(base + v)
				for _, w := range backSources[v] {
					add(base + w)
				}
			}
		}
	}

	res.bits = bits
	res.startBits = bitset.New(nc)
	for c := 0; c < nc; c++ {
		if bits.Test(c * stride) {
			res.Certain = true
			res.startBits.Set(c)
			res.Starts = append(res.Starts, iv.Const(int32(c)))
		}
	}
	return res
}

// Trace records one round of the naive implementation: the pairs added
// in that round, mirroring the table of Figure 6.
type Trace struct {
	Round int
	Added []Pair
}

// SolveNaive runs the round-based implementation of Figure 5: in each
// round the Iterative Rule is applied to all pairs derivable from the
// current N. It returns the result together with the per-round trace
// (Figure 6 of the paper). Trace rows are deterministic: the pairs
// added in a round are sorted by interned constant id (the sorted
// active domain order), then by prefix length, before names are
// rendered.
func SolveNaive(db *instance.Instance, q words.Word) (*Result, []Trace) {
	n := len(q)
	iv := db.Interned()
	adom := iv.Consts()
	inN := make(map[Pair]bool)
	nfa := automata.New(q)
	for _, c := range adom {
		inN[Pair{c, n}] = true
	}
	var traces []Trace
	for round := 1; ; round++ {
		var added []Pair
		for u := 0; u < n; u++ {
			rel := q[u]
			for _, id := range db.Blocks() {
				if id.Rel != rel || inN[Pair{id.Key, u}] {
					continue
				}
				all := true
				for _, y := range db.Block(id.Rel, id.Key) {
					if !inN[Pair{y, u + 1}] {
						all = false
						break
					}
				}
				if !all {
					continue
				}
				added = append(added, Pair{id.Key, u})
				for _, w := range nfa.BackwardSources(u) {
					if !inN[Pair{id.Key, w}] {
						added = append(added, Pair{id.Key, w})
					}
				}
			}
		}
		// Deduplicate and commit the round.
		var committed []Pair
		for _, p := range added {
			if !inN[p] {
				inN[p] = true
				committed = append(committed, p)
			}
		}
		if len(committed) == 0 {
			break
		}
		sort.Slice(committed, func(i, j int) bool {
			ci, _ := iv.ConstID(committed[i].C)
			cj, _ := iv.ConstID(committed[j].C)
			if ci != cj {
				return ci < cj
			}
			return committed[i].U < committed[j].U
		})
		traces = append(traces, Trace{Round: round, Added: committed})
	}

	res := resultFromPairs(q, iv, inN)
	if n == 0 {
		res.Certain = true
	}
	return res, traces
}

// resultFromPairs packs an explicit pair set into the interned Result
// representation.
func resultFromPairs(q words.Word, iv *instance.Interned, inN map[Pair]bool) *Result {
	n := len(q)
	stride := n + 1
	res := &Result{Query: q.Clone(), iv: iv, nq: n, bits: bitset.New(iv.NumConsts() * stride)}
	for p := range inN {
		if id, ok := iv.ConstID(p.C); ok && p.U >= 0 && p.U <= n {
			res.bits.Set(int(id)*stride + p.U)
		}
	}
	res.startBits = bitset.New(iv.NumConsts())
	for c := 0; c < iv.NumConsts(); c++ {
		if res.bits.Test(c*stride) || n == 0 {
			res.Certain = true
			res.startBits.Set(c)
			res.Starts = append(res.Starts, iv.Const(int32(c)))
		}
	}
	return res
}

// FormatTrace renders the rounds in the style of the Figure 6 table.
func FormatTrace(q words.Word, traces []Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Iteration | Tuples added to N (q = %v)\n", q)
	for _, tr := range traces {
		parts := make([]string, len(tr.Added))
		for i, p := range tr.Added {
			parts[i] = fmt.Sprintf("<%s, %v>", p.C, q.Prefix(p.U))
		}
		fmt.Fprintf(&b, "%9d | %s\n", tr.Round, strings.Join(parts, ", "))
	}
	return b.String()
}

// CounterexampleRepair constructs the repair r* of the proof of
// Lemma 10: for every block R(a,*), among all prefixes u0·R of q ending
// with R, let u0 be the longest with ⟨a, u0⟩ ∉ N; if such a prefix
// exists, pick a fact R(a,b) with ⟨b, u0·R⟩ ∉ N, else pick arbitrarily
// (we pick the smallest value for determinism). For a path query q
// satisfying C3, if db is a no-instance then the returned repair
// falsifies q; it is also the ⪯q-minimal repair of Lemma 9, minimizing
// start(q, ·) over all repairs (Lemma 6).
func CounterexampleRepair(db *instance.Instance, q words.Word, res *Result) *instance.Instance {
	if res == nil {
		res = Solve(db, q)
	}
	r := instance.New()
	for _, id := range db.Blocks() {
		vals := db.Block(id.Rel, id.Key)
		chosen := vals[0]
		// Longest prefix u0 ending before an occurrence of id.Rel with
		// ⟨key, u0⟩ ∉ N.
		for u := len(q) - 1; u >= 0; u-- {
			if q[u] != id.Rel {
				continue
			}
			if res.Has(id.Key, u) {
				continue
			}
			// Iterative Rule guarantees some successor with
			// ⟨y, u+1⟩ ∉ N.
			found := false
			for _, y := range vals {
				if !res.Has(y, u+1) {
					chosen = y
					found = true
					break
				}
			}
			if !found {
				// Cannot happen if res is the true fixpoint.
				panic(fmt.Sprintf("fixpoint: block %v: ⟨%s,%d⟩ ∉ N but all successors in N", id, id.Key, u))
			}
			break
		}
		r.AddFact(id.Rel, id.Key, chosen)
	}
	return r
}

// StatesSet computes ST_q(f, r) of Definition 7 for a fact f of a
// consistent instance r: the set of states u·R (as prefix lengths) such
// that S-NFA(q, u) accepts some path of r that starts with the fact f.
func StatesSet(r *instance.Instance, q words.Word, f instance.Fact) map[int]bool {
	out := make(map[int]bool)
	nfa := automata.New(q)
	for u := 0; u < len(q); u++ {
		if q[u] != f.Rel {
			continue
		}
		// S-NFA(q, u) must accept a path starting with f: first step
		// consumes f (state u -> u+1), then any accepted continuation
		// from f.Val.
		if acceptsFromVia(r, nfa, u+1, f.Val) {
			out[u+1] = true
		}
	}
	return out
}

// acceptsFromVia reports whether some path of r starting at constant c
// is accepted by the automaton started at state "state" (including via
// ε-moves and further steps).
func acceptsFromVia(r *instance.Instance, nfa *automata.NFA, state int, c string) bool {
	n := nfa.NumStates()
	// BFS over (state-set, constant) configurations; r is consistent so
	// each constant has at most one successor per relation.
	type cfg struct {
		key string
		c   string
	}
	start := make([]bool, n)
	start[state] = true
	closure(nfa, start)
	seen := map[cfg]bool{}
	queue := []struct {
		set []bool
		c   string
	}{{start, c}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.set[n-1] {
			return true
		}
		k := cfg{key: setKey(cur.set), c: cur.c}
		if seen[k] {
			continue
		}
		seen[k] = true
		// Group moves by relation.
		for _, rel := range r.Relations() {
			succ := r.Block(rel, cur.c)
			if len(succ) == 0 {
				continue
			}
			next := make([]bool, n)
			any := false
			for i := 0; i < n-1; i++ {
				if cur.set[i] && nfa.ForwardLabel(i) == rel {
					next[i+1] = true
					any = true
				}
			}
			if !any {
				continue
			}
			closure(nfa, next)
			queue = append(queue, struct {
				set []bool
				c   string
			}{next, succ[0]})
		}
	}
	return false
}

func closure(nfa *automata.NFA, set []bool) {
	for j := len(set) - 1; j >= 1; j-- {
		if set[j] {
			for _, i := range nfa.BackwardTargets(j) {
				set[i] = true
			}
		}
	}
}

func setKey(set []bool) string {
	b := make([]byte, len(set))
	for i, v := range set {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// CertainViaMinimalRepair decides CERTAINTY(q) for q satisfying C3 by
// the Lemma 6 route: build the ⪯q-minimal repair r* (which minimizes
// start(q, ·) over all repairs) and test whether it satisfies q. For C3
// queries, r* satisfies q iff start(q, r*) is nonempty iff db is a
// yes-instance. Exposed primarily for differential testing against
// Solve.
func CertainViaMinimalRepair(db *instance.Instance, q words.Word) bool {
	if len(q) == 0 {
		return true
	}
	res := Solve(db, q)
	return CounterexampleRepair(db, q, res).Satisfies(q)
}
