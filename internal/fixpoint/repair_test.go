package fixpoint

import (
	"fmt"
	"reflect"
	"testing"

	"cqa/internal/instance"
	"cqa/internal/words"
)

// churnInstance builds an instance with conflicting blocks over a fixed
// universe so in-place mutations ride the delta-interning path.
func churnInstance() *instance.Instance {
	db := instance.New()
	consts := []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"}
	for _, rel := range []string{"R", "S"} {
		for i, k := range consts {
			db.AddFact(rel, k, consts[(i+1)%len(consts)])
			if i%3 == 0 {
				db.AddFact(rel, k, consts[(i+3)%len(consts)])
			}
		}
	}
	return db
}

func TestBindingRepairMatchesColdSolve(t *testing.T) {
	q := words.Word{"R", "S", "R"}
	db := churnInstance()
	cp := Compile(q)
	cp.Solve(db) // cold build for the root snapshot

	consts := []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"}
	for step := 0; step < 50; step++ {
		rel := []string{"R", "S"}[step%2]
		k := consts[step%len(consts)]
		v := consts[(step*5+2)%len(consts)]
		f := instance.Fact{Rel: rel, Key: k, Val: v}
		if db.Contains(f) && len(db.Block(rel, k)) > 1 {
			db.Remove(f)
		} else {
			db.Add(f)
		}
		got := cp.Solve(db)
		want := Compile(q).Solve(db) // independent cold pipeline
		if got.Certain != want.Certain || !reflect.DeepEqual(got.Starts, want.Starts) {
			t.Fatalf("step %d: repaired solve = (%v, %v), cold = (%v, %v)",
				step, got.Certain, got.Starts, want.Certain, want.Starts)
		}
		if !reflect.DeepEqual(got.Pairs(), want.Pairs()) {
			t.Fatalf("step %d: repaired N differs from cold N", step)
		}
	}
	s := cp.BindingStats()
	if s.Repairs == 0 {
		t.Errorf("stats = %+v, want repairs > 0 (mutations stay in-universe)", s)
	}
	if s.MaxLineageDepth == 0 {
		t.Errorf("stats = %+v, want a recorded lineage depth", s)
	}
}

func TestBindingRepairSharesUntouchedSegments(t *testing.T) {
	q := words.Word{"R", "S"}
	db := churnInstance()
	cp := Compile(q)

	iv1 := db.Interned()
	b1 := cp.bind(iv1)
	db.AddFact("R", "c0", "c5") // touches R only, in-universe
	iv2 := db.Interned()
	if iv2.Delta() == nil {
		t.Fatalf("mutation should have produced a delta snapshot")
	}
	b2 := cp.bind(iv2)
	if s := cp.BindingStats(); s.Repairs != 1 {
		t.Fatalf("stats = %+v, want exactly one repair", s)
	}
	if b2.pos[0] == b1.pos[0] {
		t.Errorf("touched relation R's segment must be rebuilt")
	}
	if b2.pos[1] != b1.pos[1] {
		t.Errorf("untouched relation S's segment must be shared with the parent binding")
	}
}

func TestBindingRepairAfterUniverseChangeFallsBackCold(t *testing.T) {
	q := words.Word{"R", "S"}
	db := churnInstance()
	cp := Compile(q)
	cp.Solve(db)
	db.AddFact("R", "c0", "brand-new") // universe change: fresh lineage root
	if db.Interned().Delta() != nil {
		t.Fatalf("universe change should start a fresh root")
	}
	got := cp.Solve(db)
	want := Compile(q).Solve(db)
	if got.Certain != want.Certain || !reflect.DeepEqual(got.Pairs(), want.Pairs()) {
		t.Fatalf("cold fallback solve diverged from independent cold solve")
	}
	if s := cp.BindingStats(); s.Repairs != 0 {
		t.Errorf("stats = %+v, want no repairs across a lineage break", s)
	}
}

func TestBindingRepairSkipsDeeperThanResident(t *testing.T) {
	// Evict the whole memo between mutations by churning more snapshots
	// than MaxBindings, then check the repaired result still matches.
	q := words.Word{"R", "R"}
	db := churnInstance()
	cp := Compile(q)
	for i := 0; i < MaxBindings+4; i++ {
		f := instance.Fact{Rel: "R", Key: "c1", Val: fmt.Sprintf("c%d", i%4)}
		if db.Contains(f) && len(db.Block("R", "c1")) > 1 {
			db.Remove(f)
		} else {
			db.Add(f)
		}
		got := cp.Solve(db)
		want := Compile(q).Solve(db)
		if got.Certain != want.Certain {
			t.Fatalf("step %d: repaired %v, cold %v", i, got.Certain, want.Certain)
		}
	}
}
