// Package genq implements Section 8 of the paper: generalized path
// queries, in which constants may appear at atom junctions
// (Definition 16), the characteristic prefix char(q), the extended query
// ext(q) (Definition 22), the conditions D1, D2, D3 (homomorphism-based
// analogues of C1, C2, C3), the classification Theorems 4 and 5, and the
// constant-elimination reductions (Lemmas 25–29) that solve
// CERTAINTY(q) for generalized queries via the constant-free machinery.
package genq

import (
	"fmt"
	"strings"

	"cqa/internal/classify"
	"cqa/internal/fo"
	"cqa/internal/instance"
	"cqa/internal/words"
)

// Query is a generalized path query
//
//	{ R1(s1,s2), R2(s2,s3), ..., Rk(sk,sk+1) }
//
// where each junction s_i is a variable or a constant; per Definition 16
// a constant may occur at most twice, at a non-primary-key position and
// the immediately following primary-key position — which is captured by
// storing one optional constant per junction.
type Query struct {
	Rels []string // relation names R1..Rk
	// Consts[i] is the constant at junction i (0..k), or "" for a
	// variable junction. Junction i sits between atom i-1 and atom i.
	Consts []string
}

// Parse parses the atom syntax "R(x,y) S(y,0) T(0,1) R(1,w)": junctions
// shared between adjacent atoms must match; lowercase identifiers are
// variables, everything else (digits, quoted) is a constant.
func Parse(s string) (*Query, error) {
	tokens := strings.Fields(strings.ReplaceAll(s, ",", " , "))
	_ = tokens
	// Simpler dedicated scan: split on whitespace into atoms.
	var rels []string
	var junctions []string
	atoms := strings.Fields(s)
	for ai, tok := range atoms {
		open := strings.IndexByte(tok, '(')
		if open <= 0 || !strings.HasSuffix(tok, ")") {
			return nil, fmt.Errorf("genq: bad atom %q", tok)
		}
		rel := tok[:open]
		inner := strings.Split(tok[open+1:len(tok)-1], ",")
		if len(inner) != 2 || inner[0] == "" || inner[1] == "" {
			return nil, fmt.Errorf("genq: bad atom %q", tok)
		}
		if ai == 0 {
			junctions = append(junctions, inner[0])
		} else if junctions[len(junctions)-1] != inner[0] {
			return nil, fmt.Errorf("genq: junction mismatch: %q vs %q", junctions[len(junctions)-1], inner[0])
		}
		junctions = append(junctions, inner[1])
		rels = append(rels, rel)
	}
	q := &Query{Rels: rels, Consts: make([]string, len(junctions))}
	seen := map[string]int{}
	for i, j := range junctions {
		if isConstant(j) {
			q.Consts[i] = strings.Trim(j, "'")
			seen[q.Consts[i]]++
		}
	}
	for c, n := range seen {
		if n > 1 {
			return nil, fmt.Errorf("genq: constant %q occurs at %d junctions; Definition 16 allows one", c, n)
		}
	}
	return q, nil
}

// MustParse is Parse that panics on error.
func MustParse(s string) *Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

func isConstant(s string) bool {
	r := rune(s[0])
	return r >= '0' && r <= '9' || r == '\''
}

// FromWord lifts a constant-free path query to a generalized one.
func FromWord(w words.Word) *Query {
	return &Query{Rels: append([]string(nil), w...), Consts: make([]string, len(w)+1)}
}

// Len returns the number of atoms.
func (q *Query) Len() int { return len(q.Rels) }

// Word returns the underlying word of relation names.
func (q *Query) Word() words.Word { return words.Word(append([]string(nil), q.Rels...)) }

// HasConstants reports whether any junction carries a constant.
func (q *Query) HasConstants() bool {
	for _, c := range q.Consts {
		if c != "" {
			return true
		}
	}
	return false
}

// String renders the query in atom syntax.
func (q *Query) String() string {
	if q.Len() == 0 {
		return "⊤"
	}
	junction := func(i int) string {
		if q.Consts[i] != "" {
			return q.Consts[i]
		}
		return fmt.Sprintf("x%d", i+1)
	}
	var parts []string
	for i, r := range q.Rels {
		parts = append(parts, fmt.Sprintf("%s(%s,%s)", r, junction(i), junction(i+1)))
	}
	return strings.Join(parts, " ")
}

// Satisfies reports whether the generalized path query holds on db
// (used with consistent instances, i.e. repairs): there is a walk whose
// trace matches the relation names and whose junctions match the
// constants. Dynamic program from the end of the query.
func (q *Query) Satisfies(db *instance.Instance) bool {
	if q.Len() == 0 {
		return true
	}
	allowed := func(i int, c string) bool { return q.Consts[i] == "" || q.Consts[i] == c }
	cur := map[string]bool{}
	for _, c := range db.Adom() {
		if allowed(q.Len(), c) {
			cur[c] = true
		}
	}
	for i := q.Len() - 1; i >= 0; i-- {
		next := map[string]bool{}
		for _, id := range db.Blocks() {
			if id.Rel != q.Rels[i] || !allowed(i, id.Key) {
				continue
			}
			for _, v := range db.Block(id.Rel, id.Key) {
				if cur[v] {
					next[id.Key] = true
					break
				}
			}
		}
		cur = next
	}
	return len(cur) > 0
}

// CharPrefix returns char(q) (Definition 16): the longest prefix whose
// junctions s1..sℓ are all variables (the junction after the prefix may
// be a constant), together with the constant that terminates it ("" when
// char(q) = q ends with a variable, i.e. the paper's γ = ⊤).
func (q *Query) CharPrefix() (*Query, string) {
	l := 0
	for l < q.Len() && q.Consts[l] == "" {
		l++
	}
	// char(q) = atoms 0..l-1; terminating junction l may be constant.
	ch := &Query{Rels: append([]string(nil), q.Rels[:l]...), Consts: make([]string, l+1)}
	gamma := ""
	if l <= q.Len() {
		gamma = q.Consts[l]
	}
	ch.Consts[l] = gamma
	return ch, gamma
}

// Rest returns q minus its characteristic prefix (the part handled by
// Lemma 27, which is always in FO).
func (q *Query) Rest() *Query {
	l := 0
	for l < q.Len() && q.Consts[l] == "" {
		l++
	}
	return &Query{Rels: append([]string(nil), q.Rels[l:]...), Consts: append([]string(nil), q.Consts[l:]...)}
}

// Ext returns ext(q) (Definition 22): char(q) with its terminating
// constant (if any) replaced by a fresh variable followed by a fresh
// relation name N not occurring in q. For constant-free q, ext(q) = q.
func (q *Query) Ext() words.Word {
	ch, gamma := q.CharPrefix()
	w := ch.Word()
	if gamma == "" && ch.Len() == q.Len() {
		return w
	}
	// Pick a fresh relation name.
	fresh := "N"
	used := map[string]bool{}
	for _, r := range q.Rels {
		used[r] = true
	}
	for i := 0; used[fresh]; i++ {
		fresh = fmt.Sprintf("N%d", i)
	}
	return append(w, fresh)
}

// homomorphism reports whether there is a homomorphism (Definition 18)
// from generalized path query a to generalized path query b, i.e. a
// variable substitution (identity on constants) mapping a's atom chain
// into b's; prefix requires θ(s1) = t1.
func homomorphism(a, b *Query, prefix bool) bool {
	// a must map onto a contiguous sub-chain of b with matching relation
	// names and compatible constants.
	n, m := a.Len(), b.Len()
	if n > m {
		return false
	}
	for off := 0; off+n <= m; off++ {
		if prefix && off != 0 {
			break
		}
		ok := true
		for i := 0; i < n && ok; i++ {
			if a.Rels[i] != b.Rels[off+i] {
				ok = false
			}
		}
		// Junction compatibility: a constant at a junction of a must
		// equal the corresponding junction of b (variables of a can map
		// to anything; but b's constants are fine to map onto).
		for i := 0; i <= n && ok; i++ {
			if a.Consts[i] != "" && a.Consts[i] != b.Consts[off+i] {
				ok = false
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// charAsPumped builds [[u·Rv·Rv·Rw, γ]] for the pair decomposition (i, j)
// of the characteristic word, carrying the terminating constant.
func charPumped(w words.Word, gamma string, i, j int) *Query {
	p := w.Rewind(i, j)
	q := &Query{Rels: p, Consts: make([]string, len(p)+1)}
	q.Consts[len(p)] = gamma
	return q
}

func charQuery(w words.Word, gamma string) *Query {
	q := &Query{Rels: append(words.Word(nil), w...), Consts: make([]string, len(w)+1)}
	q.Consts[len(w)] = gamma
	return q
}

// D1 checks condition D1: whenever char(q) = [[uRvRw, γ]], there is a
// prefix homomorphism from char(q) to [[uRvRvRw, γ]].
func D1(q *Query) bool {
	ch, gamma := q.CharPrefix()
	w := ch.Word()
	for _, p := range w.SelfJoinPairs() {
		if !homomorphism(charQuery(w, gamma), charPumped(w, gamma, p[0], p[1]), true) {
			return false
		}
	}
	return true
}

// D3 checks condition D3: whenever char(q) = [[uRvRw, γ]], there is a
// homomorphism from char(q) to [[uRvRvRw, γ]].
func D3(q *Query) bool {
	ch, gamma := q.CharPrefix()
	w := ch.Word()
	for _, p := range w.SelfJoinPairs() {
		if !homomorphism(charQuery(w, gamma), charPumped(w, gamma, p[0], p[1]), false) {
			return false
		}
	}
	return true
}

// D2 checks condition D2: D3's homomorphism condition plus, for
// consecutive occurrences char(q) = [[uRv1Rv2Rw, γ]], v1 = v2 or a
// prefix homomorphism from [[Rw, γ]] to [[Rv1, γ]].
func D2(q *Query) bool {
	if !D3(q) {
		return false
	}
	ch, gamma := q.CharPrefix()
	w := ch.Word()
	for _, sym := range w.Symbols() {
		occ := w.Occurrences(sym)
		for t := 0; t+2 < len(occ); t++ {
			i, j, k := occ[t], occ[t+1], occ[t+2]
			v1 := w.Factor(i+1, j)
			v2 := w.Factor(j+1, k)
			if v1.Equal(v2) {
				continue
			}
			// Prefix homomorphism from [[Rw, γ]] to [[Rv1, γ]].
			rw := charQuery(words.Word(w.Suffix(k)), gamma)
			rv1 := charQuery(words.Word(w.Factor(i, j)), gamma)
			if homomorphism(rw, rv1, true) {
				continue
			}
			return false
		}
	}
	return true
}

// Classify returns the complexity class of CERTAINTY(q) per Theorem 4
// (which degenerates to Theorem 3 for constant-free queries). By
// Theorem 5, queries with at least one constant never land in
// PTIME-complete: D3 implies D2 for them (Lemma 30).
func Classify(q *Query) classify.Class {
	if !q.HasConstants() {
		return classify.Classify(q.Word())
	}
	switch {
	case D1(q):
		return classify.FO
	case D2(q):
		return classify.NL
	case D3(q):
		// Lemma 30: for queries with a constant, D3 implies D2, so this
		// case is unreachable; guard anyway.
		return classify.NL
	default:
		return classify.CoNP
	}
}

// IsCertain decides CERTAINTY(q) for a generalized path query by the
// Lemma 25–29 decomposition: q splits into char(q) (reduced to the
// constant-free ext(q) via the N-fact construction of Lemma 26) and the
// remainder (each constant-anchored segment solved in FO via Lemma 27),
// with the variable-disjoint conjunction handled by Lemma 25. The
// solve callback decides constant-free CERTAINTY for ext(q) instances
// (callers pass the dispatching solver of the root package; tests pass
// individual tiers).
func IsCertain(db *instance.Instance, q *Query, solve func(*instance.Instance, words.Word) bool) bool {
	// Lemma 25/27: the part after the characteristic prefix splits at
	// constants into segments [[w, c_start, maybe c_end]], each in FO.
	if !restCertain(db, q.Rest()) {
		return false
	}
	ch, gamma := q.CharPrefix()
	if ch.Len() == 0 {
		return true // char(q) empty: everything handled above
	}
	if gamma == "" {
		return solve(db, ch.Word())
	}
	// Lemma 26: db is a yes-instance of CERTAINTY(char(q)) iff
	// db ∪ {N(γ, d)} is a yes-instance of CERTAINTY(ext(q)).
	ext := q.Ext()
	freshRel := ext[len(ext)-1]
	db2 := db.Clone()
	db2.AddFact(freshRel, gamma, "⊥d")
	return solve(db2, ext)
}

// restCertain decides the FO part (Lemma 27): segments of q anchored at
// starting constants. For each segment [[w, c]] starting at constant c,
// every repair must have an exact w-trace path from c; segments ending
// at a constant e additionally append a fresh N-relation fact per
// Lemma 26.
func restCertain(db *instance.Instance, rest *Query) bool {
	if rest.Len() == 0 {
		return true
	}
	// Split rest at internal constant junctions.
	start := 0
	for start < rest.Len() {
		end := start + 1
		for end < rest.Len() && rest.Consts[end] == "" {
			end++
		}
		c := rest.Consts[start]
		w := words.Word(rest.Rels[start:end])
		endConst := rest.Consts[end]
		if c == "" {
			// The first segment of rest always starts at a constant by
			// construction (char(q) swallowed the variable prefix).
			return false
		}
		if endConst != "" {
			// Lemma 26: append a fresh relation fact N(endConst, d).
			fresh := "Nrest"
			db2 := db.Clone()
			db2.AddFact(fresh, endConst, "⊥d")
			w2 := append(w.Clone(), fresh)
			if !fo.CertainAt(db2, w2, c) {
				return false
			}
		} else {
			if !fo.CertainAt(db, w, c) {
				return false
			}
		}
		start = end
	}
	return true
}
