package genq

import (
	"math/rand"
	"testing"

	"cqa/internal/classify"
	"cqa/internal/conp"
	"cqa/internal/instance"
	"cqa/internal/repairs"
	"cqa/internal/words"
)

func TestParseAndString(t *testing.T) {
	// Example 8: q = {R(x,y), S(y,0), T(0,1), R(1,w)}.
	q := MustParse("R(x,y) S(y,0) T(0,1) R(1,w)")
	if q.Len() != 4 || !q.HasConstants() {
		t.Fatalf("parsed %v", q)
	}
	if q.Consts[2] != "0" || q.Consts[3] != "1" {
		t.Errorf("constants: %v", q.Consts)
	}
	if q.String() == "" {
		t.Error("empty string")
	}
	for _, bad := range []string{"R(x)", "R(x,y) S(z,w)", "R(x,0) S(0,0)", "Rxy"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestCharPrefixExample8(t *testing.T) {
	// char(q) = {R(x,y), S(y,0)}.
	q := MustParse("R(x,y) S(y,0) T(0,1) R(1,w)")
	ch, gamma := q.CharPrefix()
	if ch.Len() != 2 || gamma != "0" {
		t.Errorf("char = %v, γ = %q", ch, gamma)
	}
	if got := ch.Word().String(); got != "RS" {
		t.Errorf("char word = %s", got)
	}
	rest := q.Rest()
	if rest.Len() != 2 || rest.Consts[0] != "0" {
		t.Errorf("rest = %v", rest)
	}
}

func TestExtExample10(t *testing.T) {
	// Example 10: q = R(x,y), S(y,0), T(0,1), R(1,w) has
	// ext(q) = R(x,y), S(y,z), N(z,u).
	q := MustParse("R(x,y) S(y,0) T(0,1) R(1,w)")
	if got := q.Ext().String(); got != "RSN" {
		t.Errorf("ext = %s, want RSN", got)
	}
	// Constant-free queries are their own extension.
	p := FromWord(words.MustParse("RRX"))
	if got := p.Ext().String(); got != "RRX" {
		t.Errorf("ext = %s", got)
	}
	// Fresh relation name avoidance.
	q2 := MustParse("N(x,0) R(0,y)")
	ext := q2.Ext()
	if ext[len(ext)-1] == "N" {
		t.Errorf("fresh relation clashes: %v", ext)
	}
}

func TestHomomorphismExample9(t *testing.T) {
	// Example 9: q = {R(x,y), R(y,1), S(1,z)}: char(q) = [[RR, 1]];
	// p = [[RRR, 1]]. There is a homomorphism from char(q) to p but no
	// prefix homomorphism.
	char9 := charQuery(words.MustParse("RR"), "1")
	p9 := charQuery(words.MustParse("RRR"), "1")
	if !homomorphism(char9, p9, false) {
		t.Error("homomorphism must exist (offset 1)")
	}
	if homomorphism(char9, p9, true) {
		t.Error("prefix homomorphism must not exist")
	}
}

func TestDConditionsDegenerateToC(t *testing.T) {
	// For constant-free queries D1/D2/D3 are C1/C2/C3.
	rng := rand.New(rand.NewSource(111))
	for it := 0; it < 2000; it++ {
		n := rng.Intn(7)
		w := make(words.Word, n)
		for i := range w {
			w[i] = []string{"R", "X", "Y"}[rng.Intn(3)]
		}
		q := FromWord(w)
		c1, _ := classify.C1(w)
		c2, _ := classify.C2(w)
		c3, _ := classify.C3(w)
		if D1(q) != c1 || D2(q) != c2 || D3(q) != c3 {
			t.Fatalf("%v: D=(%v,%v,%v) C=(%v,%v,%v)", w, D1(q), D2(q), D3(q), c1, c2, c3)
		}
	}
}

func TestTheorem5Trichotomy(t *testing.T) {
	// Queries with a constant are FO, NL-complete or coNP-complete —
	// never PTIME-complete (Theorem 5); check classification output and
	// Lemma 30 (D3 implies D2 for constant-bearing queries).
	cases := []struct {
		q    string
		want classify.Class
	}{
		{"R(x,0)", classify.FO},        // sjf with end constant
		{"S(x,y) R(y,0)", classify.FO}, // sjf characteristic prefix
		// [[RR, 0]]: the end constant breaks the prefix homomorphism
		// (RR itself is C1/FO, but anchoring its end pins the query to
		// the suffix of the pumped word), so the query is NL-complete.
		{"R(x,y) R(y,0)", classify.NL},
		{"R(x,y) R(y,z) X(z,0)", classify.NL},        // [[RRX, 0]]
		{"R(x,y) X(y,z) R(z,w) Y(w,0)", classify.NL}, // RXRY with constant
	}
	for _, c := range cases {
		q := MustParse(c.q)
		if got := Classify(q); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.q, got, c.want)
		}
		if D3(q) && !D2(q) {
			t.Errorf("%s: D3 without D2 contradicts Lemma 30", c.q)
		}
	}
}

func TestRXRXWithConstantIsNL(t *testing.T) {
	// Interesting effect of constants: RXRX is FO (C1), but
	// [[RXRX, 0]] requires the homomorphism to respect the final
	// constant. Rewinding RXRX gives RXRXRX with 0 at the end; a PREFIX
	// homomorphism would map char(q)'s final 0-junction to a variable
	// junction — impossible — so D1 fails while D2 holds: NL-complete.
	q := MustParse("R(w,x) X(x,y) R(y,z) X(z,0)")
	if D1(q) {
		t.Error("D1 must fail: the constant pins the end of the query")
	}
	if got := Classify(q); got != classify.NL {
		t.Errorf("Classify = %v, want NL-complete", got)
	}
}

// exhaustive ground truth for generalized queries.
func exhaustiveCertain(db *instance.Instance, q *Query) bool {
	certain := true
	repairs.ForEach(db, func(r *instance.Instance) bool {
		if !q.Satisfies(r) {
			certain = false
			return false
		}
		return true
	})
	return certain
}

func TestSatisfiesDP(t *testing.T) {
	db := instance.MustParseFacts("R(a,b) S(b,0) T(0,1) R(1,c)")
	q := MustParse("R(x,y) S(y,0) T(0,1) R(1,w)")
	if !q.Satisfies(db) {
		t.Error("canonical instance must satisfy q")
	}
	db2 := instance.MustParseFacts("R(a,b) S(b,9) T(0,1) R(1,c)")
	if q.Satisfies(db2) {
		t.Error("wrong constant must not match")
	}
}

func TestIsCertainAgainstExhaustive(t *testing.T) {
	queries := []*Query{
		MustParse("R(x,y) R(y,0)"),
		MustParse("R(x,y) R(y,z) X(z,0)"),
		MustParse("R(x,0)"),
		MustParse("R(0,x) R(x,y)"),
		MustParse("R(x,y) X(y,0) R(0,z) X(z,w)"),
		FromWord(words.MustParse("RRX")),
	}
	solve := func(db *instance.Instance, w words.Word) bool {
		return conp.IsCertain(db, w).Certain
	}
	rng := rand.New(rand.NewSource(112))
	consts := []string{"a", "b", "c", "0", "1"}
	for it := 0; it < 200; it++ {
		db := instance.New()
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X"}[rng.Intn(2)]
			db.AddFact(rel, consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))])
		}
		for _, q := range queries {
			got := IsCertain(db, q, solve)
			want := exhaustiveCertain(db, q)
			if got != want {
				t.Fatalf("it=%d db=%s q=%v: genq=%v exhaustive=%v", it, db, q, got, want)
			}
		}
	}
}
