// Package cqa is a library for consistent query answering (CQA) under
// primary-key constraints on path queries, implementing the PODS 2021
// paper "Consistent Query Answering for Primary Keys on Path Queries" by
// Koutris, Ouyang and Wijsen (arXiv:2309.15270).
//
// Given a Boolean path query q — a word R1 R2 ... Rk of binary relation
// names, keyed on the first position — and a database instance that may
// violate its primary keys, CERTAINTY(q) asks whether EVERY repair
// (maximal consistent subset) of the instance satisfies q. The paper
// proves a tetrachotomy: depending on syntactic conditions C1 ⊆ C2 ⊆ C3
// on q, the problem is in FO, NL-complete, PTIME-complete, or
// coNP-complete, decidable in polynomial time in |q|.
//
// This package is the public facade: Classify reports the complexity
// class with witnesses, and Certain decides CERTAINTY(q, db) by
// dispatching to the cheapest applicable solver tier:
//
//   - FO: the consistent first-order rewriting of Lemma 13;
//   - NL: the loop-decomposition procedure of Section 6.3 (with its
//     generated linear Datalog program available via the internal nl
//     package);
//   - PTIME: the fixpoint algorithm of Figure 5;
//   - coNP: CDCL SAT on a polynomial encoding of the complement.
//
// All decisions run through compiled plans (see the Engine quickstart
// in engine.go): classification and the tier-specific machinery are
// computed once per query word and cached, and CertainBatch evaluates
// many (query, instance) pairs concurrently on a worker pool.
//
// Every tier is differentially tested against exhaustive repair
// enumeration; see DESIGN.md for the system inventory and EXPERIMENTS.md
// for the paper-artifact reproductions.
package cqa

import (
	"context"
	"fmt"

	"cqa/internal/classify"
	"cqa/internal/instance"
	"cqa/internal/plan"
	"cqa/internal/query"
	"cqa/internal/repairs"
)

// Class is the complexity class of CERTAINTY(q) in Theorem 2's
// tetrachotomy.
type Class = classify.Class

// The four classes of the tetrachotomy.
const (
	FO    = classify.FO
	NL    = classify.NL
	PTime = classify.PTime
	CoNP  = classify.CoNP
)

// Query is a Boolean path query.
type Query = query.Path

// Instance is a database instance over binary relations with primary
// keys on the first position.
type Instance = instance.Instance

// Fact is a fact R(key, val).
type Fact = instance.Fact

// ParseQuery parses a path query from word syntax, e.g. "RRX" or
// "Follows Likes Follows".
func ParseQuery(s string) (Query, error) { return query.Parse(s) }

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(s string) Query { return query.MustParse(s) }

// NewInstance returns an empty database instance.
func NewInstance() *Instance { return instance.New() }

// ParseFacts parses a whitespace-separated fact list such as
// "R(0,1) R(1,2) X(2,3)".
func ParseFacts(s string) (*Instance, error) { return instance.ParseFacts(s) }

// ParseFact parses one fact token such as "R(0,1)".
func ParseFact(s string) (Fact, error) { return instance.ParseFact(s) }

// Classify returns the complexity class of CERTAINTY(q) (Theorem 3).
func Classify(q Query) Class { return classify.Classify(q.Word()) }

// Explain returns the full classification report, including witnessing
// decompositions for violated conditions.
func Explain(q Query) classify.Report { return classify.Explain(q.Word()) }

// Method identifies the solver tier used for a decision.
type Method = plan.Method

// Solver tiers.
const (
	MethodFO         = plan.MethodFO
	MethodNL         = plan.MethodNL
	MethodFixpoint   = plan.MethodFixpoint
	MethodSAT        = plan.MethodSAT
	MethodExhaustive = plan.MethodExhaustive
)

// Result is the outcome of a certainty decision.
type Result = plan.Result

// Options tunes Certain.
type Options = plan.Options

// ErrUnsoundMethod is returned when a forced method does not cover the
// query's complexity class.
var ErrUnsoundMethod = plan.ErrUnsoundMethod

// Certain decides CERTAINTY(q) on db with automatic tier dispatch. It
// runs on the package-level default Engine, so the compiled plan for q
// is cached and reused across calls.
func Certain(q Query, db *Instance) Result {
	return defaultEngine.Certain(q, db)
}

// CertainOpt decides CERTAINTY(q) on db with explicit options, reusing
// the default Engine's cached plan for q.
func CertainOpt(q Query, db *Instance, opts Options) (Result, error) {
	return defaultEngine.CertainOpt(q, db, opts)
}

// CertainCtx is Certain bounded by a context; see Engine.CertainCtx
// for the cancellation contract.
func CertainCtx(ctx context.Context, q Query, db *Instance) (Result, error) {
	return defaultEngine.CertainCtx(ctx, q, db)
}

// CertainOptCtx is CertainOpt bounded by a context; see
// Engine.CertainCtx for the cancellation contract.
func CertainOptCtx(ctx context.Context, q Query, db *Instance, opts Options) (Result, error) {
	return defaultEngine.CertainOptCtx(ctx, q, db, opts)
}

// Rewrite returns the consistent first-order rewriting of Lemma 13 as a
// formula string; it errors unless CERTAINTY(q) is in FO. The formula
// comes from the default Engine's cached plan.
func Rewrite(q Query) (string, error) {
	p := defaultEngine.Compile(q)
	s, ok := p.Rewriting()
	if !ok {
		return "", fmt.Errorf("cqa: %v is %v; no first-order rewriting exists", q, p.Class())
	}
	return s, nil
}

// CountRepairs returns the number of repairs of db as a decimal string
// (the count is a product of block sizes and can be astronomically
// large).
func CountRepairs(db *Instance) string { return repairs.Count(db).String() }

// RewindLanguage enumerates L↬(q) — the rewinding closure of q,
// accepted by NFA(q) (Lemma 4) — up to the given word length.
func RewindLanguage(q Query, maxLen int) []string {
	var out []string
	for _, w := range q.Word().RewindClosure(maxLen) {
		out = append(out, w.String())
	}
	return out
}
