// Package cqa is a library for consistent query answering (CQA) under
// primary-key constraints on path queries, implementing the PODS 2021
// paper "Consistent Query Answering for Primary Keys on Path Queries" by
// Koutris, Ouyang and Wijsen (arXiv:2309.15270).
//
// Given a Boolean path query q — a word R1 R2 ... Rk of binary relation
// names, keyed on the first position — and a database instance that may
// violate its primary keys, CERTAINTY(q) asks whether EVERY repair
// (maximal consistent subset) of the instance satisfies q. The paper
// proves a tetrachotomy: depending on syntactic conditions C1 ⊆ C2 ⊆ C3
// on q, the problem is in FO, NL-complete, PTIME-complete, or
// coNP-complete, decidable in polynomial time in |q|.
//
// This package is the public facade: Classify reports the complexity
// class with witnesses, and Certain decides CERTAINTY(q, db) by
// dispatching to the cheapest applicable solver tier:
//
//   - FO: the consistent first-order rewriting of Lemma 13;
//   - NL: the loop-decomposition procedure of Section 6.3 (with its
//     generated linear Datalog program available via the internal nl
//     package);
//   - PTIME: the fixpoint algorithm of Figure 5;
//   - coNP: CDCL SAT on a polynomial encoding of the complement.
//
// Every tier is differentially tested against exhaustive repair
// enumeration; see DESIGN.md for the system inventory and EXPERIMENTS.md
// for the paper-artifact reproductions.
package cqa

import (
	"errors"
	"fmt"

	"cqa/internal/classify"
	"cqa/internal/conp"
	"cqa/internal/fixpoint"
	"cqa/internal/fo"
	"cqa/internal/instance"
	"cqa/internal/nl"
	"cqa/internal/query"
	"cqa/internal/repairs"
)

// Class is the complexity class of CERTAINTY(q) in Theorem 2's
// tetrachotomy.
type Class = classify.Class

// The four classes of the tetrachotomy.
const (
	FO    = classify.FO
	NL    = classify.NL
	PTime = classify.PTime
	CoNP  = classify.CoNP
)

// Query is a Boolean path query.
type Query = query.Path

// Instance is a database instance over binary relations with primary
// keys on the first position.
type Instance = instance.Instance

// Fact is a fact R(key, val).
type Fact = instance.Fact

// ParseQuery parses a path query from word syntax, e.g. "RRX" or
// "Follows Likes Follows".
func ParseQuery(s string) (Query, error) { return query.Parse(s) }

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(s string) Query { return query.MustParse(s) }

// NewInstance returns an empty database instance.
func NewInstance() *Instance { return instance.New() }

// ParseFacts parses a whitespace-separated fact list such as
// "R(0,1) R(1,2) X(2,3)".
func ParseFacts(s string) (*Instance, error) { return instance.ParseFacts(s) }

// Classify returns the complexity class of CERTAINTY(q) (Theorem 3).
func Classify(q Query) Class { return classify.Classify(q.Word()) }

// Explain returns the full classification report, including witnessing
// decompositions for violated conditions.
func Explain(q Query) classify.Report { return classify.Explain(q.Word()) }

// Method identifies the solver tier used for a decision.
type Method string

// Solver tiers.
const (
	MethodFO         Method = "fo-rewriting"
	MethodNL         Method = "nl-loop"
	MethodFixpoint   Method = "ptime-fixpoint"
	MethodSAT        Method = "conp-sat"
	MethodExhaustive Method = "exhaustive"
)

// Result is the outcome of a certainty decision.
type Result struct {
	Certain bool
	Class   Class
	Method  Method
	// Witness is a constant c such that every repair has a q-path
	// starting at c (set on yes-instances decided by the fixpoint
	// tier).
	Witness string
	// Counterexample is a repair falsifying q (set on no-instances
	// where the tier produces one).
	Counterexample *Instance
	// Note carries diagnostic detail, e.g. the NL decomposition or a
	// fallback reason.
	Note string
}

// Options tunes Certain.
type Options struct {
	// Force selects a specific tier instead of dispatching on the
	// class. Forcing a tier that is unsound for the query's class
	// (e.g. FO rewriting for a coNP query) returns an error.
	Force Method
	// WantCounterexample asks for a counterexample repair on
	// no-instances even when the chosen tier does not produce one as a
	// byproduct.
	WantCounterexample bool
}

// ErrUnsoundMethod is returned when a forced method does not cover the
// query's complexity class.
var ErrUnsoundMethod = errors.New("cqa: forced method is unsound for this query class")

// Certain decides CERTAINTY(q) on db with automatic tier dispatch.
func Certain(q Query, db *Instance) Result {
	r, err := CertainOpt(q, db, Options{})
	if err != nil {
		// Automatic dispatch never errors.
		panic("cqa: internal: " + err.Error())
	}
	return r
}

// CertainOpt decides CERTAINTY(q) on db with explicit options.
func CertainOpt(q Query, db *Instance, opts Options) (Result, error) {
	w := q.Word()
	cls := classify.Classify(w)
	res := Result{Class: cls}

	method := opts.Force
	if method == "" {
		switch cls {
		case FO:
			method = MethodFO
		case NL:
			method = MethodNL
		case PTime:
			method = MethodFixpoint
		default:
			method = MethodSAT
		}
	} else if !sound(method, cls) {
		return res, fmt.Errorf("%w: %s for %v query %v", ErrUnsoundMethod, method, cls, q)
	}

	switch method {
	case MethodFO:
		res.Method = MethodFO
		res.Certain = fo.IsCertainFO(db, w)
	case MethodNL:
		certain, d, err := nl.IsCertain(db, w)
		if err != nil {
			// Certified decomposition unavailable: fall back to the
			// fixpoint tier (correct for all C3 ⊇ C2 queries).
			fp := fixpoint.Solve(db, w)
			res.Method = MethodFixpoint
			res.Certain = fp.Certain
			res.Note = "nl fallback: " + err.Error()
			if fp.Certain && len(fp.Starts) > 0 {
				res.Witness = fp.Starts[0]
			}
			break
		}
		res.Method = MethodNL
		res.Certain = certain
		res.Note = d.String()
	case MethodFixpoint:
		fp := fixpoint.Solve(db, w)
		res.Method = MethodFixpoint
		res.Certain = fp.Certain
		if fp.Certain && len(fp.Starts) > 0 {
			res.Witness = fp.Starts[0]
		} else if !fp.Certain {
			res.Counterexample = fixpoint.CounterexampleRepair(db, w, fp)
		}
	case MethodSAT:
		out := conp.IsCertain(db, w)
		res.Method = MethodSAT
		res.Certain = out.Certain
		res.Counterexample = out.Counterexample
	case MethodExhaustive:
		res.Method = MethodExhaustive
		res.Certain = repairs.IsCertain(db, w)
		if !res.Certain {
			res.Counterexample = repairs.Counterexample(db, w)
		}
	default:
		return res, fmt.Errorf("cqa: unknown method %q", method)
	}

	if opts.WantCounterexample && !res.Certain && res.Counterexample == nil {
		res.Counterexample = conp.IsCertain(db, w).Counterexample
	}
	return res, nil
}

// sound reports whether a tier decides queries of the given class.
func sound(m Method, cls Class) bool {
	switch m {
	case MethodFO:
		return cls == FO
	case MethodNL:
		return cls == FO || cls == NL
	case MethodFixpoint:
		return cls != CoNP
	case MethodSAT, MethodExhaustive:
		return true
	}
	return false
}

// Rewrite returns the consistent first-order rewriting of Lemma 13 as a
// formula string; it errors unless CERTAINTY(q) is in FO.
func Rewrite(q Query) (string, error) {
	if Classify(q) != FO {
		return "", fmt.Errorf("cqa: %v is %v; no first-order rewriting exists", q, Classify(q))
	}
	return fo.RewriteCertain(q.Word()).String(), nil
}

// CountRepairs returns the number of repairs of db as a decimal string
// (the count is a product of block sizes and can be astronomically
// large).
func CountRepairs(db *Instance) string { return repairs.Count(db).String() }

// RewindLanguage enumerates L↬(q) — the rewinding closure of q,
// accepted by NFA(q) (Lemma 4) — up to the given word length.
func RewindLanguage(q Query, maxLen int) []string {
	var out []string
	for _, w := range q.Word().RewindClosure(maxLen) {
		out = append(out, w.String())
	}
	return out
}
