package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"

	"cqa"
	"cqa/internal/instance"
)

func testEngine() *cqa.Engine {
	return cqa.NewEngine(cqa.EngineConfig{Workers: 2})
}

func TestLineReaderOversizedLineDoesNotPoisonStream(t *testing.T) {
	long := strings.Repeat("x", 100)
	in := "first\n" + long + "\nlast"
	lr := newLineReader(strings.NewReader(in), 32)

	line, tooLong, err := lr.next()
	if err != nil || tooLong || line != "first" || lr.line != 1 {
		t.Fatalf("line 1: %q tooLong=%v err=%v lineNo=%d", line, tooLong, err, lr.line)
	}
	line, tooLong, err = lr.next()
	if err != nil || !tooLong || lr.line != 2 {
		t.Fatalf("line 2: %q tooLong=%v err=%v lineNo=%d", line, tooLong, err, lr.line)
	}
	// The stream continues past the oversized line, including a final
	// line without a terminator.
	line, tooLong, err = lr.next()
	if err != nil || tooLong || line != "last" || lr.line != 3 {
		t.Fatalf("line 3: %q tooLong=%v err=%v lineNo=%d", line, tooLong, err, lr.line)
	}
	if _, _, err = lr.next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestLineReaderMaxIsContentBytes(t *testing.T) {
	// A line of exactly max content bytes passes whether terminated or
	// not; one more byte trips the bound.
	exact := strings.Repeat("a", 16)
	lr := newLineReader(strings.NewReader(exact+"\n"+exact+"x\n"+exact), 16)
	if line, tooLong, err := lr.next(); err != nil || tooLong || line != exact {
		t.Fatalf("terminated exact-max line: %q tooLong=%v err=%v", line, tooLong, err)
	}
	if _, tooLong, err := lr.next(); err != nil || !tooLong {
		t.Fatalf("max+1 line: tooLong=%v err=%v", tooLong, err)
	}
	if line, tooLong, err := lr.next(); err != nil || tooLong || line != exact {
		t.Fatalf("unterminated exact-max line: %q tooLong=%v err=%v", line, tooLong, err)
	}
}

func TestLineReaderLongLineSpanningBuffers(t *testing.T) {
	// Longer than bufio's internal buffer but under max: must come back
	// intact across ReadSlice chunks.
	long := strings.Repeat("y", 10000)
	lr := newLineReader(strings.NewReader(long+"\nnext\n"), 1<<20)
	line, tooLong, err := lr.next()
	if err != nil || tooLong || line != long {
		t.Fatalf("spanning line: len=%d tooLong=%v err=%v", len(line), tooLong, err)
	}
	if line, _, _ = lr.next(); line != "next" {
		t.Fatalf("next line: %q", line)
	}
}

func TestBatchLinesStreamsInChunks(t *testing.T) {
	// More requests than batchChunk, so at least two engine batches run
	// and the numbering continues across the chunk boundary.
	n := batchChunk + 10
	var in strings.Builder
	for i := 0; i < n; i++ {
		in.WriteString("RRX ; R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)\n")
	}
	var out strings.Builder
	eng := testEngine()
	total, err := batchLines(eng, newLineReader(strings.NewReader(in.String()), defaultMaxLine), &out)
	if err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("want %d requests counted, got %d", n, total)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("want %d result lines, got %d", n, len(lines))
	}
	for i, line := range lines {
		want := fmt.Sprintf("%-4d %-12v certain=true  class=NL-complete method=nl-loop", i+1, "RRX")
		if line != want {
			t.Fatalf("line %d:\n got %q\nwant %q", i+1, line, want)
		}
	}
	// Stats report plans compiled (1 distinct word), not cache residency.
	if s := eng.Stats(); s.Plans.Compiles != 1 {
		t.Fatalf("want 1 plan compiled, stats %+v", s)
	}
}

func TestBatchStatsLineReportsMemoCounters(t *testing.T) {
	eng := testEngine()
	in := "RRX ; R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)\n"
	if _, err := batchLines(eng, newLineReader(strings.NewReader(in), defaultMaxLine), io.Discard); err != nil {
		t.Fatal(err)
	}
	comment := statsComment(eng.Stats())
	for _, line := range strings.Split(comment, "\n") {
		if !strings.HasPrefix(line, "# ") {
			t.Fatalf("stats comment line lacks prefix: %q", line)
		}
	}
	if !strings.Contains(comment, "# plans: ") || !strings.Contains(comment, "# memo: ") ||
		!strings.Contains(comment, "cold builds") {
		t.Fatalf("stats comment: %q", comment)
	}
	// The NL tier memoizes per snapshot, so a decided NL request must
	// register at least one miss (the cold build) in the aggregate.
	if st := eng.Stats().Memo; st.Hits+st.Misses == 0 {
		t.Fatalf("memo stats empty after a decided batch: %+v", st)
	}
}

func TestBatchLinesErrorsCarryLineNumbers(t *testing.T) {
	in := "RRX ; R(0,1)\n\n# comment\nBOGUS-LINE\n"
	_, err := batchLines(testEngine(), newLineReader(strings.NewReader(in), defaultMaxLine), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "line 4:") {
		t.Fatalf("want line 4 error, got %v", err)
	}
}

func TestBatchLinesMaxLine(t *testing.T) {
	in := "RRX ; R(0,1)\nRRX ; " + strings.Repeat("R(0,1) ", 50) + "\n"
	_, err := batchLines(testEngine(), newLineReader(strings.NewReader(in), 64), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "-max-line") {
		t.Fatalf("want line-2 over-length error, got %v", err)
	}
}

func ndjsonResponses(t *testing.T, out string) []batchResponse {
	t.Helper()
	var resps []batchResponse
	dec := json.NewDecoder(strings.NewReader(out))
	for dec.More() {
		var r batchResponse
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("decode: %v (output %q)", err, out)
		}
		resps = append(resps, r)
	}
	return resps
}

func TestBatchNDJSONErrorPathsCarryLineNumbers(t *testing.T) {
	in := strings.Join([]string{
		`{"query": "RRX", "facts": ["R(0,1)", "R(1,2)", "R(1,3)", "R(2,3)", "X(3,4)"]}`,
		`{not json`,
		`{"query": "!!!", "facts": []}`,
		`{"query": "RRX", "facts": ["bogus"]}`,
	}, "\n") + "\n"
	var out strings.Builder
	if _, err := batchNDJSON(testEngine(), newLineReader(strings.NewReader(in), defaultMaxLine), &out); err != nil {
		t.Fatal(err)
	}
	resps := ndjsonResponses(t, out.String())
	if len(resps) != 4 {
		t.Fatalf("want 4 responses, got %d", len(resps))
	}
	if resps[0].Error != "" || resps[0].Certain == nil || !*resps[0].Certain {
		t.Fatalf("response 1: %+v", resps[0])
	}
	// All three parse error paths — JSON decode, query parse, facts
	// parse — must identify the failing line.
	for i, resp := range resps[1:] {
		if resp.Index != i+2 || !strings.Contains(resp.Error, fmt.Sprintf("line %d:", i+2)) {
			t.Fatalf("response %d lacks its line prefix: %+v", i+2, resp)
		}
		if resp.Certain != nil {
			t.Fatalf("error response %d has a decision: %+v", i+2, resp)
		}
	}
}

func TestBatchNDJSONOversizedLineGetsPerLineError(t *testing.T) {
	good := `{"query": "RRX", "facts": ["R(0,1)", "R(1,2)", "R(1,3)", "R(2,3)", "X(3,4)"]}`
	long := `{"query": "RRX", "facts": ["` + strings.Repeat("R(0,1)", 100) + `"]}`
	in := good + "\n" + long + "\n" + good + "\n"
	var out strings.Builder
	if _, err := batchNDJSON(testEngine(), newLineReader(strings.NewReader(in), 128), &out); err != nil {
		t.Fatal(err)
	}
	resps := ndjsonResponses(t, out.String())
	if len(resps) != 3 {
		t.Fatalf("want 3 responses, got %d: %q", len(resps), out.String())
	}
	if !strings.Contains(resps[1].Error, "line 2") || !strings.Contains(resps[1].Error, "-max-line") {
		t.Fatalf("oversized line response: %+v", resps[1])
	}
	// The stream was not aborted: the line after the oversized one is
	// still answered.
	if resps[2].Error != "" || resps[2].Certain == nil || !*resps[2].Certain {
		t.Fatalf("response after oversized line: %+v", resps[2])
	}
}

func csvRows(t *testing.T, out string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("reading output CSV: %v (output %q)", err, out)
	}
	return rows
}

func TestBatchCSVRoundTripsInstanceCSV(t *testing.T) {
	// Build the fact rows through Instance.WriteCSV — including values
	// that WriteCSV must quote — so the request format provably
	// round-trips the instance CSV loader.
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	// S is not in RRX, so the decision is unchanged, but WriteCSV must
	// quote the value and the batch parser must preserve it.
	db.AddFact("S", "0", `comma,and"quote`)
	var facts strings.Builder
	if err := db.WriteCSV(&facts); err != nil {
		t.Fatal(err)
	}
	var in strings.Builder
	for _, id := range []string{"a", "b"} {
		for _, row := range strings.Split(strings.TrimSpace(facts.String()), "\n") {
			fmt.Fprintf(&in, "%s,RRX,%s\n", id, row)
		}
	}
	var out strings.Builder
	if _, err := batchCSV(testEngine(), newLineReader(strings.NewReader(in.String()), defaultMaxLine), &out); err != nil {
		t.Fatal(err)
	}
	rows := csvRows(t, out.String())
	if len(rows) != 2 {
		t.Fatalf("want 2 result rows, got %v", rows)
	}
	for i, id := range []string{"a", "b"} {
		want := []string{id, "RRX", "true", "NL-complete", "nl-loop", ""}
		if fmt.Sprint(rows[i]) != fmt.Sprint(want) {
			t.Fatalf("row %d:\n got %v\nwant %v", i, rows[i], want)
		}
	}
}

func TestBatchCSVMalformedAndInterleaved(t *testing.T) {
	in := strings.Join([]string{
		"r1,RRX,R,0,1",
		"r1,RRX,R,1,2",
		"r1,RRX,R,1,3",
		"r1,RRX,R,2,3",
		"r1,RRX,X,3,4",
		"r2,RRX,R,0,1,EXTRA-FIELD", // malformed arity
		"r2,RRX,R,1,2",             // rest of the poisoned request is skipped
		"r3,RRX,R,0,1",
		"r3,RXRX,R,1,2", // conflicting query column
		"r4,RRX,,1,2",   // empty field rejected by the instance loader
		"r1,RRX,R,0,1",  // r1 reappears: interleaved
		"r5,RR,R,a,b",
	}, "\n") + "\n"
	var out strings.Builder
	if _, err := batchCSV(testEngine(), newLineReader(strings.NewReader(in), defaultMaxLine), &out); err != nil {
		t.Fatal(err)
	}
	rows := csvRows(t, out.String())
	if len(rows) != 6 {
		t.Fatalf("want 6 result rows, got %d: %v", len(rows), rows)
	}
	check := func(row []string, id, errFragment string) {
		t.Helper()
		if row[0] != id {
			t.Fatalf("row for %q answered as %v", id, row)
		}
		if errFragment == "" && row[5] != "" {
			t.Fatalf("row %q unexpectedly errored: %v", id, row)
		}
		if errFragment != "" && !strings.Contains(row[5], errFragment) {
			t.Fatalf("row %q: want error containing %q, got %v", id, errFragment, row)
		}
	}
	check(rows[0], "r1", "")
	check(rows[1], "r2", "line 6:")
	check(rows[2], "r3", "line 9:")
	check(rows[3], "r4", "empty field")
	check(rows[4], "r1", "interleaved")
	check(rows[5], "r5", "")
	if rows[0][2] != "true" || rows[5][2] != "false" {
		t.Fatalf("decisions: r1=%v r5=%v", rows[0], rows[5])
	}
}
