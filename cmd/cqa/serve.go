package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cqa"
	"cqa/internal/server"
)

// drainTimeout bounds how long shutdown waits for in-flight
// connections before forcing the listener closed.
const drainTimeout = 30 * time.Second

// cmdServe runs the resident serving daemon: an HTTP/NDJSON front end
// over a registry of named instances, with the persistent shard router
// keeping every instance's operations on one resident worker (see
// docs/serving.md). The engine is built through the same engineFlags
// constructor as `cqa batch`, so tuning flags behave identically in
// both deployment shapes. On SIGINT/SIGTERM the daemon stops
// accepting, drains in-flight work, prints the final stats snapshot to
// stderr, and exits.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8417", "listen address")
	newEngine := engineFlags(fs)
	routerWorkers := fs.Int("router-workers", 0, "resident router workers (default: GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 0, fmt.Sprintf("per-worker task queue bound (default %d)", server.DefaultQueueDepth))
	window := fs.Int("window", 0, fmt.Sprintf("per-connection in-flight batch window (default %d)", server.DefaultWindow))
	maxLine := fs.Int("max-line", 0, fmt.Sprintf("maximum request line length in bytes (default %d)", server.DefaultMaxLine))
	fs.Parse(args)

	eng := newEngine()
	srv := server.New(server.Config{
		Registry:      cqa.NewRegistry(eng),
		RouterWorkers: *routerWorkers,
		QueueDepth:    *queueDepth,
		Window:        *window,
		MaxLine:       *maxLine,
	})
	httpSrv := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cqa serve: listening on http://%s\n", ln.Addr())

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "cqa serve: draining")
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		httpSrv.Shutdown(ctx)
		srv.Drain()
		fmt.Fprintln(os.Stderr, statsComment(eng.Stats()))
	}()

	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-drained
	return nil
}
