package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cqa"
	"cqa/internal/server"
)

// drainTimeout bounds how long shutdown waits for in-flight
// connections before forcing the listener closed.
const drainTimeout = 30 * time.Second

// cmdServe runs the resident serving daemon: an HTTP/NDJSON front end
// over a registry of named instances, with the persistent shard router
// keeping every instance's operations on one resident worker and the
// bounded heavy lane absorbing coNP/SAT-bound decisions (see
// docs/serving.md). The engine is built through the same engineFlags
// constructor as `cqa batch`, so tuning flags behave identically in
// both deployment shapes. On SIGINT/SIGTERM the daemon stops
// accepting, drains in-flight work, prints the final stats snapshot to
// stderr, and exits — non-zero if the drain timed out, logging how
// much queued work was abandoned.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8417", "listen address")
	newEngine := engineFlags(fs)
	routerWorkers := fs.Int("router-workers", 0, "resident router workers (default: GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 0, fmt.Sprintf("per-worker task queue bound (default %d)", server.DefaultQueueDepth))
	heavyWorkers := fs.Int("heavy-workers", 0, "heavy-lane workers for coNP/SAT-bound requests (default: router-workers/4, min 1)")
	heavyQueueDepth := fs.Int("heavy-queue-depth", 0, "heavy-lane shared queue bound (default: queue-depth)")
	window := fs.Int("window", 0, fmt.Sprintf("per-connection in-flight batch window (default %d)", server.DefaultWindow))
	maxLine := fs.Int("max-line", 0, fmt.Sprintf("maximum request line length in bytes (default %d)", server.DefaultMaxLine))
	defaultTimeout := fs.Duration("default-timeout", 0, "per-request deadline when the request carries none (0: no deadline); covers queueing, overridable via the CQA-Timeout-Ms header or a timeout_ms NDJSON field")
	memSoftLimit := fs.Int64("mem-soft-limit", 0, "soft heap watermark in bytes; above it the tier memo budgets shrink so decisions degrade to cold builds instead of growing toward an OOM kill (0: disabled)")
	fs.Parse(args)

	eng := newEngine()
	srv := server.New(server.Config{
		Registry:        cqa.NewRegistry(eng),
		RouterWorkers:   *routerWorkers,
		QueueDepth:      *queueDepth,
		HeavyWorkers:    *heavyWorkers,
		HeavyQueueDepth: *heavyQueueDepth,
		Window:          *window,
		MaxLine:         *maxLine,
		DefaultTimeout:  *defaultTimeout,
		MemSoftLimit:    *memSoftLimit,
	})
	httpSrv := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cqa serve: listening on http://%s\n", ln.Addr())

	// drainErr is set by the signal goroutine when the graceful drain
	// failed (timeout with connections still open); the daemon then
	// exits non-zero so supervisors see the unclean stop.
	var drainErr error
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "cqa serve: draining")
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			// The drain timed out: connections are still open and the
			// listener was forced closed under them. Report what is being
			// abandoned and exit non-zero.
			inflight := srv.InFlight()
			fmt.Fprintf(os.Stderr, "cqa serve: drain timed out after %s with %d queued requests abandoned\n", drainTimeout, inflight)
			drainErr = fmt.Errorf("serve: drain timed out: %w (%d queued requests abandoned)", err, inflight)
			// Fall through to Drain anyway: it flips /readyz, stops the
			// watermark watcher, and lets queued router work finish so the
			// stats snapshot below is settled.
		}
		srv.Drain()
		fmt.Fprintln(os.Stderr, statsComment(eng.Stats()))
	}()

	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-drained
	return drainErr
}
