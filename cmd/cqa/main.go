// Command cqa is the command-line front end of the library: classify
// path queries, decide CERTAINTY(q) on instances loaded from CSV or fact
// lists, inspect compiled plans, evaluate request batches concurrently,
// print consistent first-order rewritings, rewinding languages, NFA(q)
// diagrams, and Figure 5 fixpoint traces.
//
// Usage:
//
//	cqa classify <query>...
//	cqa solve -q <query> (-db <file.csv> | -facts "R(a,b) ...") [-method M] [-cex]
//	cqa plan -q <query>
//	cqa batch [-file reqs.txt] [-workers N] [-format lines|ndjson|csv]
//	          [-max-line BYTES] [-shard-size N] [-compile-workers N] [-stats]
//	cqa serve [-addr HOST:PORT] [-workers N] [-shard-size N] [-compile-workers N]
//	          [-router-workers N] [-queue-depth N] [-window N]
//	cqa rewrite -q <query>
//	cqa language -q <query> [-max N]
//	cqa nfa -q <query>
//	cqa trace -q <query> (-db <file.csv> | -facts "...")
//	cqa count (-db <file.csv> | -facts "...")
//
// All certainty decisions run through the engine (cqa.Engine): plans
// are compiled once per query word and cached, and batch requests are
// evaluated on a worker pool.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"cqa"
	"cqa/internal/automata"
	"cqa/internal/fixpoint"
	"cqa/internal/instance"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "solve":
		err = cmdSolve(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "batch":
		err = cmdBatch(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "rewrite":
		err = cmdRewrite(os.Args[2:])
	case "language":
		err = cmdLanguage(os.Args[2:])
	case "nfa":
		err = cmdNFA(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "count":
		err = cmdCount(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqa:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cqa classify <query>...          complexity class of CERTAINTY(q) with witnesses
  cqa solve -q Q [-db F|-facts S]  decide CERTAINTY(q) on an instance
  cqa plan -q Q                    compiled execution plan for q
  cqa batch [-file F] [-workers N] [-format lines|ndjson|csv]
            [-max-line BYTES] [-shard-size N] [-compile-workers N]
            [-solve-workers N] [-parallel-threshold N]
            [-stats]               decide a request batch; ndjson reads
                                   {"query":..., "facts":[...]} lines and
                                   streams one-line-JSON results; csv reads
                                   id,query,rel,key,val fact rows grouped
                                   by request id
  cqa serve [-addr A] [-workers N] [-shard-size N] [-compile-workers N]
            [-solve-workers N] [-parallel-threshold N]
            [-router-workers N] [-queue-depth N] [-window N]
                                   resident HTTP/NDJSON daemon over named
                                   instances (see docs/serving.md)
  cqa rewrite -q Q                 consistent FO rewriting (FO class only)
  cqa language -q Q [-max N]       rewinding closure L↬(q) up to length N
  cqa nfa -q Q                     NFA(q) in Graphviz DOT
  cqa trace -q Q [-db F|-facts S]  Figure 5 fixpoint iteration trace
  cqa count [-db F|-facts S]       number of repairs`)
}

func loadInstance(dbPath, facts string) (*instance.Instance, error) {
	switch {
	case dbPath != "" && facts != "":
		return nil, fmt.Errorf("use either -db or -facts, not both")
	case dbPath != "":
		f, err := os.Open(dbPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// The parallel loader degrades to ReadCSV on one core and keeps
		// the same format and error contract, so every -db path gets the
		// pipelined ingest for free.
		return instance.ReadCSVParallel(f, runtime.GOMAXPROCS(0))
	case facts != "":
		return instance.ParseFacts(facts)
	default:
		return nil, fmt.Errorf("an instance is required: -db file.csv or -facts \"R(a,b) ...\"")
	}
}

func cmdClassify(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("at least one query is required")
	}
	for _, qs := range args {
		q, err := cqa.ParseQuery(qs)
		if err != nil {
			return err
		}
		fmt.Println(cqa.Explain(q))
	}
	return nil
}

func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	qs := fs.String("q", "", "path query word, e.g. RRX")
	dbPath := fs.String("db", "", "instance CSV file (rel,key,val rows)")
	facts := fs.String("facts", "", "inline fact list, e.g. \"R(a,b) R(a,c)\"")
	method := fs.String("method", "", "force a tier: fo-rewriting, nl-loop, ptime-fixpoint, conp-sat, exhaustive")
	cex := fs.Bool("cex", false, "print a counterexample repair on no-instances")
	fs.Parse(args)
	q, err := cqa.ParseQuery(*qs)
	if err != nil {
		return err
	}
	db, err := loadInstance(*dbPath, *facts)
	if err != nil {
		return err
	}
	res, err := cqa.CertainOpt(q, db, cqa.Options{
		Force:              cqa.Method(*method),
		WantCounterexample: *cex,
	})
	if err != nil {
		return err
	}
	fmt.Printf("query    : %v  (%v)\n", q, res.Class)
	fmt.Printf("method   : %s\n", res.Method)
	fmt.Printf("certain  : %v\n", res.Certain)
	if res.Witness != "" {
		fmt.Printf("witness  : every repair has an accepted path starting at %s\n", res.Witness)
	}
	if res.Note != "" {
		fmt.Printf("note     : %s\n", res.Note)
	}
	if *cex && res.Counterexample != nil {
		fmt.Printf("repair falsifying q: %s\n", res.Counterexample)
	}
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	qs := fs.String("q", "", "path query word, e.g. RRX")
	fs.Parse(args)
	q, err := cqa.ParseQuery(*qs)
	if err != nil {
		return err
	}
	p := cqa.CompilePlan(q)
	fmt.Printf("query  : %v\n", q)
	fmt.Printf("class  : %v\n", p.Class())
	fmt.Printf("method : %s\n", p.Method())
	if s, ok := p.Rewriting(); ok {
		fmt.Printf("fo     : %s\n", s)
	}
	if s, ok := p.Decomposition(); ok {
		fmt.Printf("nl     : %s\n", s)
	}
	return nil
}

// cmdBatch decides request batches concurrently on one engine, so
// repeated query words share a compiled plan and the sharded scheduler
// keeps same-instance requests on one worker. Three request formats:
//
//   - "lines" (default): one "QUERY ; FACTS" per line, e.g.
//     "RRX ; R(0,1) R(1,2) X(2,3)", with aligned text output, decided
//     and printed in bounded chunks.
//   - "ndjson": one JSON object per line,
//     {"query": "RRX", "facts": ["R(0,1)", "R(1,2)", "X(2,3)"]},
//     answered with streaming one-line-JSON results on stdout; a
//     malformed line (including one over -max-line) gets a per-line
//     error object instead of aborting the stream; the summary goes to
//     stderr to keep stdout valid NDJSON.
//   - "csv": one fact per row, "id,query,rel,key,val", rows for one
//     request consecutive (the rel,key,val columns round-trip the
//     instance CSV loader, so `cqa count -db` files paste in behind an
//     id,query prefix); answered with one CSV row per request,
//     "id,query,certain,class,method,error", on stdout and the summary
//     on stderr.
//
// All three formats evaluate and emit in chunks of batchChunk requests,
// so arbitrarily long request streams run in constant memory and output
// starts before the whole input is read.
func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	file := fs.String("file", "", "request file (default: stdin)")
	newEngine := engineFlags(fs)
	format := fs.String("format", "lines", `request format: "lines", "ndjson" or "csv"`)
	maxLine := fs.Int("max-line", defaultMaxLine, "maximum request line length in bytes")
	showStats := fs.Bool("stats", false, "print the engine's full Stats snapshot (plan cache, memo hits/repairs/cold builds) after the summary")
	fs.Parse(args)
	if *maxLine <= 0 {
		return fmt.Errorf("-max-line must be positive, got %d", *maxLine)
	}

	var r io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	eng := newEngine()
	lr := newLineReader(r, *maxLine)

	run := batchLines
	summaryTo := io.Writer(os.Stdout)
	switch *format {
	case "lines":
	case "ndjson":
		run, summaryTo = batchNDJSON, os.Stderr
	case "csv":
		run, summaryTo = batchCSV, os.Stderr
	default:
		return fmt.Errorf("unknown -format %q (want lines, ndjson or csv)", *format)
	}
	total, err := run(eng, lr, os.Stdout)
	if err != nil {
		return err
	}
	fmt.Fprintf(summaryTo, "# %d requests\n", total)
	if *showStats {
		fmt.Fprintln(summaryTo, statsComment(eng.Stats()))
	}
	return nil
}

// engineFlags registers the engine-tuning flags on fs and returns the
// constructor that realizes them. Every subcommand that evaluates
// queries (batch, serve) builds its Engine through this one function,
// so the flag wiring cannot silently diverge between subcommands or
// input formats.
func engineFlags(fs *flag.FlagSet) func() *cqa.Engine {
	workers := fs.Int("workers", 0, "worker-pool size (default: GOMAXPROCS)")
	shardSize := fs.Int("shard-size", 0, "requests per batch shard (default: engine default; <0 disables sharding)")
	compileWorkers := fs.Int("compile-workers", 0, "concurrent plan compilations in the batch pre-pass (default: workers)")
	solveWorkers := fs.Int("solve-workers", 0, "intra-query workers for partitioned solves on giant instances (default: GOMAXPROCS; 1 disables)")
	parallelThreshold := fs.Int("parallel-threshold", 0, "fact count at which a solve engages -solve-workers (default: engine default; <0 forces)")
	return func() *cqa.Engine {
		return cqa.NewEngine(cqa.EngineConfig{
			Workers:           *workers,
			CompileWorkers:    *compileWorkers,
			BatchShardSize:    *shardSize,
			SolveWorkers:      *solveWorkers,
			ParallelThreshold: *parallelThreshold,
		})
	}
}

// statsComment renders the engine's unified Stats snapshot as
// "# "-prefixed comment lines, one per subtree — the same tree the
// serve daemon's /metrics endpoint serializes.
func statsComment(s cqa.Stats) string {
	return "# " + strings.ReplaceAll(s.String(), "\n", "\n# ")
}

// defaultMaxLine is the -max-line default: generous enough for large
// inline fact lists, small enough to catch a runaway unterminated line.
const defaultMaxLine = 8 << 20

// lineReader yields lines of at most max bytes. Unlike bufio.Scanner —
// whose ErrTooLong poisons the whole stream — an oversized line is
// consumed to its terminator and reported via the tooLong flag, and
// reading continues at the next line, so NDJSON mode can answer it with
// a per-line error instead of aborting the batch.
type lineReader struct {
	r    *bufio.Reader
	max  int
	line int // line number of the most recently returned line
}

func newLineReader(r io.Reader, max int) *lineReader {
	return &lineReader{r: bufio.NewReader(r), max: max}
}

// next returns the next line without its terminator. Only line content
// counts against max — the '\n' does not, so a line of exactly max
// bytes passes whether or not it is newline-terminated. It returns
// io.EOF only on a clean end of input with no pending line.
func (lr *lineReader) next() (string, bool, error) {
	var buf []byte
	tooLong := false
	for {
		chunk, err := lr.r.ReadSlice('\n')
		data := chunk
		if len(data) > 0 && data[len(data)-1] == '\n' {
			data = data[:len(data)-1]
		}
		if len(data) > 0 && !tooLong {
			if len(buf)+len(data) > lr.max {
				tooLong = true
				buf = nil
			} else {
				buf = append(buf, data...)
			}
		}
		switch err {
		case nil, io.EOF:
			if err == io.EOF && len(chunk) == 0 && len(buf) == 0 && !tooLong {
				return "", false, io.EOF
			}
			lr.line++
			return string(buf), tooLong, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return "", false, err
		}
	}
}

// errLineTooLong renders the shared over-length diagnostic.
func (lr *lineReader) errLineTooLong() error {
	return fmt.Errorf("line %d: request line longer than %d bytes (raise -max-line)", lr.line, lr.max)
}

// batchLines evaluates and prints in batchChunk-sized chunks, so
// "-format lines" streams in constant memory like the NDJSON path
// instead of buffering the whole request file. It returns the number of
// requests answered; cmdBatch prints the summary.
func batchLines(eng *cqa.Engine, lr *lineReader, w io.Writer) (int, error) {
	out := bufio.NewWriter(w)
	defer out.Flush()
	total := 0
	var reqs []cqa.Request
	var nums []int
	flush := func() error {
		for j, res := range eng.CertainBatch(context.Background(), reqs) {
			if res.Err != nil {
				fmt.Fprintf(out, "%-4d %-12v error: %v\n", nums[j], reqs[j].Query, res.Err)
				continue
			}
			fmt.Fprintf(out, "%-4d %-12v certain=%-5v class=%v method=%s\n",
				nums[j], reqs[j].Query, res.Certain, res.Class, res.Method)
		}
		reqs, nums = reqs[:0], nums[:0]
		return out.Flush()
	}
	for {
		raw, tooLong, err := lr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return total, err
		}
		if tooLong {
			return total, lr.errLineTooLong()
		}
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		qpart, fpart, ok := strings.Cut(line, ";")
		if !ok {
			return total, fmt.Errorf("line %d: want \"QUERY ; FACTS\", got %q", lr.line, line)
		}
		q, err := cqa.ParseQuery(strings.TrimSpace(qpart))
		if err != nil {
			return total, fmt.Errorf("line %d: %w", lr.line, err)
		}
		db, err := instance.ParseFacts(strings.TrimSpace(fpart))
		if err != nil {
			return total, fmt.Errorf("line %d: %w", lr.line, err)
		}
		total++
		reqs = append(reqs, cqa.Request{Query: q, DB: db})
		nums = append(nums, total)
		if len(reqs) >= batchChunk {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	if err := flush(); err != nil {
		return total, err
	}
	return total, nil
}

// batchRequest is one NDJSON request line.
type batchRequest struct {
	Query string   `json:"query"`
	Facts []string `json:"facts"`
}

// batchResponse is one NDJSON result line. Exactly one of Error or the
// decision fields is meaningful.
type batchResponse struct {
	Index   int    `json:"index"`
	Query   string `json:"query"`
	Certain *bool  `json:"certain,omitempty"`
	Class   string `json:"class,omitempty"`
	Method  string `json:"method,omitempty"`
	Error   string `json:"error,omitempty"`
}

// batchChunk bounds how many NDJSON requests are in flight at once, so
// arbitrarily long request streams run in constant memory and results
// stream out as chunks complete.
const batchChunk = 256

func batchNDJSON(eng *cqa.Engine, lr *lineReader, w io.Writer) (int, error) {
	out := bufio.NewWriter(w)
	defer out.Flush()
	enc := json.NewEncoder(out)

	total := 0
	// A chunk holds responses in input order; reqIdx >= 0 marks a slot
	// to be filled from the concurrent batch evaluation, -1 a request
	// that already failed to parse. Every parse-side error — JSON
	// decode, query, facts, over-length line — carries its "line %d:"
	// context, so a failing line of a huge stream can be found.
	type slot struct {
		resp   batchResponse
		reqIdx int
	}
	var slots []slot
	var reqs []cqa.Request

	flush := func() error {
		results := eng.CertainBatch(context.Background(), reqs)
		for _, sl := range slots {
			resp := sl.resp
			if sl.reqIdx >= 0 {
				res := results[sl.reqIdx]
				if res.Err != nil {
					resp.Error = res.Err.Error()
				} else {
					certain := res.Certain
					resp.Certain = &certain
					resp.Class = res.Class.String()
					resp.Method = string(res.Method)
				}
			}
			if err := enc.Encode(resp); err != nil {
				return err
			}
		}
		slots, reqs = slots[:0], reqs[:0]
		return out.Flush()
	}

	for {
		raw, tooLong, err := lr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return total, err
		}
		if tooLong {
			total++
			slots = append(slots, slot{reqIdx: -1, resp: batchResponse{
				Index: total, Error: lr.errLineTooLong().Error()}})
			if len(slots) >= batchChunk {
				if err := flush(); err != nil {
					return total, err
				}
			}
			continue
		}
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		total++
		var br batchRequest
		if err := json.Unmarshal([]byte(line), &br); err != nil {
			slots = append(slots, slot{reqIdx: -1, resp: batchResponse{
				Index: total, Error: fmt.Sprintf("line %d: %v", lr.line, err)}})
		} else if q, err := cqa.ParseQuery(br.Query); err != nil {
			slots = append(slots, slot{reqIdx: -1, resp: batchResponse{
				Index: total, Query: br.Query, Error: fmt.Sprintf("line %d: %v", lr.line, err)}})
		} else if db, err := instance.ParseFacts(strings.Join(br.Facts, " ")); err != nil {
			slots = append(slots, slot{reqIdx: -1, resp: batchResponse{
				Index: total, Query: br.Query, Error: fmt.Sprintf("line %d: %v", lr.line, err)}})
		} else {
			slots = append(slots, slot{reqIdx: len(reqs), resp: batchResponse{
				Index: total, Query: br.Query}})
			reqs = append(reqs, cqa.Request{Query: q, DB: db})
		}
		if len(slots) >= batchChunk {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	if err := flush(); err != nil {
		return total, err
	}
	return total, nil
}

// batchCSV reads "id,query,rel,key,val" rows — one fact per row, rows
// for one request id consecutive, the query column constant within a
// request — and answers one CSV row "id,query,certain,class,method,
// error" per request on stdout. Rows are RFC-4180 CSV (quoted fields
// allowed, one row per line) and the fact columns are exactly the
// instance CSV format: each request's rows are re-encoded and fed
// through instance.ReadCSV, so files written by Instance.WriteCSV —
// including quoted values — paste in behind an id,query prefix. A
// malformed row, a conflicting query column, or an id that reappears
// after its run ended (interleaved requests; detected within a bounded
// window of recent ids, so memory stays constant) yields an error row
// for that request; the rest of the stream is unaffected.
func batchCSV(eng *cqa.Engine, lr *lineReader, w io.Writer) (int, error) {
	out := bufio.NewWriter(w)
	defer out.Flush()
	cw := csv.NewWriter(out)

	type slot struct {
		id, query string
		reqIdx    int // -1: errMsg answers the request
		errMsg    string
	}
	var slots []slot
	var reqs []cqa.Request
	total := 0

	flush := func() error {
		results := eng.CertainBatch(context.Background(), reqs)
		for _, sl := range slots {
			rec := []string{sl.id, sl.query, "", "", "", sl.errMsg}
			if sl.reqIdx >= 0 {
				res := results[sl.reqIdx]
				if res.Err != nil {
					rec[5] = res.Err.Error()
				} else {
					rec[2] = fmt.Sprintf("%v", res.Certain)
					rec[3] = res.Class.String()
					rec[4] = string(res.Method)
				}
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		slots, reqs = slots[:0], reqs[:0]
		return out.Flush()
	}

	// group accumulates the current run of same-id rows; its fact rows
	// are re-encoded through a csv.Writer so quoted fields survive into
	// instance.ReadCSV. seen records the most recently finalized ids —
	// bounded at seenWindow so arbitrarily long streams stay in
	// constant memory — to catch an interleaved id when it reappears.
	type group struct {
		id, query string
		facts     strings.Builder
		fw        *csv.Writer
		errMsg    string
	}
	var cur *group
	const seenWindow = 4 * batchChunk
	seen := make(map[string]bool, seenWindow)
	var seenRing []string
	seenNext := 0

	finalize := func() error {
		if cur == nil {
			return nil
		}
		g := cur
		cur = nil
		if !seen[g.id] {
			if len(seenRing) < seenWindow {
				seenRing = append(seenRing, g.id)
			} else {
				delete(seen, seenRing[seenNext])
				seenRing[seenNext] = g.id
				seenNext = (seenNext + 1) % seenWindow
			}
			seen[g.id] = true
		}
		total++
		sl := slot{id: g.id, query: g.query, reqIdx: -1, errMsg: g.errMsg}
		if g.errMsg == "" {
			g.fw.Flush()
			q, err := cqa.ParseQuery(g.query)
			if err != nil {
				sl.errMsg = err.Error()
			} else if db, err := instance.ReadCSV(strings.NewReader(g.facts.String())); err != nil {
				sl.errMsg = err.Error()
			} else {
				sl.reqIdx = len(reqs)
				reqs = append(reqs, cqa.Request{Query: q, DB: db})
			}
		}
		slots = append(slots, sl)
		if len(slots) >= batchChunk {
			return flush()
		}
		return nil
	}

	for {
		raw, tooLong, err := lr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return total, err
		}
		if tooLong {
			return total, lr.errLineTooLong()
		}
		text := strings.TrimSpace(raw)
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// RFC-4180 parse of one row. On a field-count mismatch the
		// record still comes back alongside ErrFieldCount, so the error
		// can be attributed to the row's request id; a row whose id is
		// unrecoverable (bad quoting) aborts with its line number.
		cr := csv.NewReader(strings.NewReader(text))
		cr.FieldsPerRecord = 5
		cr.TrimLeadingSpace = true
		rec, recErr := cr.Read()
		if len(rec) == 0 {
			return total, fmt.Errorf("line %d: %v", lr.line, recErr)
		}
		id := strings.TrimSpace(rec[0])
		if id == "" {
			return total, fmt.Errorf("line %d: missing request id in %q", lr.line, text)
		}
		if cur == nil || cur.id != id {
			if err := finalize(); err != nil {
				return total, err
			}
			cur = &group{id: id}
			cur.fw = csv.NewWriter(&cur.facts)
			if seen[id] {
				cur.errMsg = fmt.Sprintf("line %d: request id %q interleaved: rows for one request must be consecutive", lr.line, id)
			}
		}
		if cur.errMsg != "" {
			continue // request already failed; skip its remaining rows
		}
		if recErr != nil {
			cur.errMsg = fmt.Sprintf("line %d: want \"id,query,rel,key,val\", got %q", lr.line, text)
			continue
		}
		q := strings.TrimSpace(rec[1])
		switch {
		case q == "":
			cur.errMsg = fmt.Sprintf("line %d: empty query for request %q", lr.line, id)
		case cur.query == "":
			cur.query = q
		case cur.query != q:
			cur.errMsg = fmt.Sprintf("line %d: query %q conflicts with %q for request %q", lr.line, q, cur.query, id)
		}
		if cur.errMsg != "" {
			continue
		}
		if err := cur.fw.Write(rec[2:]); err != nil {
			return total, err
		}
	}
	if err := finalize(); err != nil {
		return total, err
	}
	if err := flush(); err != nil {
		return total, err
	}
	return total, nil
}

func cmdRewrite(args []string) error {
	fs := flag.NewFlagSet("rewrite", flag.ExitOnError)
	qs := fs.String("q", "", "path query word")
	fs.Parse(args)
	q, err := cqa.ParseQuery(*qs)
	if err != nil {
		return err
	}
	s, err := cqa.Rewrite(q)
	if err != nil {
		return err
	}
	fmt.Println(s)
	return nil
}

func cmdLanguage(args []string) error {
	fs := flag.NewFlagSet("language", flag.ExitOnError)
	qs := fs.String("q", "", "path query word")
	max := fs.Int("max", 12, "maximum word length")
	fs.Parse(args)
	q, err := cqa.ParseQuery(*qs)
	if err != nil {
		return err
	}
	for _, w := range cqa.RewindLanguage(q, *max) {
		fmt.Println(w)
	}
	return nil
}

func cmdNFA(args []string) error {
	fs := flag.NewFlagSet("nfa", flag.ExitOnError)
	qs := fs.String("q", "", "path query word")
	fs.Parse(args)
	q, err := cqa.ParseQuery(*qs)
	if err != nil {
		return err
	}
	fmt.Print(automata.New(q.Word()).DOT())
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	qs := fs.String("q", "", "path query word")
	dbPath := fs.String("db", "", "instance CSV file")
	facts := fs.String("facts", "", "inline fact list")
	fs.Parse(args)
	q, err := cqa.ParseQuery(*qs)
	if err != nil {
		return err
	}
	db, err := loadInstance(*dbPath, *facts)
	if err != nil {
		return err
	}
	res, traces := fixpoint.SolveNaive(db, q.Word())
	fmt.Print(fixpoint.FormatTrace(q.Word(), traces))
	fmt.Printf("certain: %v, starts: %v\n", res.Certain, res.Starts)
	return nil
}

func cmdCount(args []string) error {
	fs := flag.NewFlagSet("count", flag.ExitOnError)
	dbPath := fs.String("db", "", "instance CSV file")
	facts := fs.String("facts", "", "inline fact list")
	fs.Parse(args)
	db, err := loadInstance(*dbPath, *facts)
	if err != nil {
		return err
	}
	fmt.Println(cqa.CountRepairs(db))
	return nil
}
