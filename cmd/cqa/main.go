// Command cqa is the command-line front end of the library: classify
// path queries, decide CERTAINTY(q) on instances loaded from CSV or fact
// lists, inspect compiled plans, evaluate request batches concurrently,
// print consistent first-order rewritings, rewinding languages, NFA(q)
// diagrams, and Figure 5 fixpoint traces.
//
// Usage:
//
//	cqa classify <query>...
//	cqa solve -q <query> (-db <file.csv> | -facts "R(a,b) ...") [-method M] [-cex]
//	cqa plan -q <query>
//	cqa batch [-file reqs.txt] [-workers N] [-format lines|ndjson]
//	cqa rewrite -q <query>
//	cqa language -q <query> [-max N]
//	cqa nfa -q <query>
//	cqa trace -q <query> (-db <file.csv> | -facts "...")
//	cqa count (-db <file.csv> | -facts "...")
//
// All certainty decisions run through the engine (cqa.Engine): plans
// are compiled once per query word and cached, and batch requests are
// evaluated on a worker pool.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cqa"
	"cqa/internal/automata"
	"cqa/internal/fixpoint"
	"cqa/internal/instance"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "solve":
		err = cmdSolve(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "batch":
		err = cmdBatch(os.Args[2:])
	case "rewrite":
		err = cmdRewrite(os.Args[2:])
	case "language":
		err = cmdLanguage(os.Args[2:])
	case "nfa":
		err = cmdNFA(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "count":
		err = cmdCount(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqa:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cqa classify <query>...          complexity class of CERTAINTY(q) with witnesses
  cqa solve -q Q [-db F|-facts S]  decide CERTAINTY(q) on an instance
  cqa plan -q Q                    compiled execution plan for q
  cqa batch [-file F] [-workers N] [-format lines|ndjson]
                                   decide a request batch; ndjson reads
                                   {"query":..., "facts":[...]} lines and
                                   streams one-line-JSON results
  cqa rewrite -q Q                 consistent FO rewriting (FO class only)
  cqa language -q Q [-max N]       rewinding closure L↬(q) up to length N
  cqa nfa -q Q                     NFA(q) in Graphviz DOT
  cqa trace -q Q [-db F|-facts S]  Figure 5 fixpoint iteration trace
  cqa count [-db F|-facts S]       number of repairs`)
}

func loadInstance(dbPath, facts string) (*instance.Instance, error) {
	switch {
	case dbPath != "" && facts != "":
		return nil, fmt.Errorf("use either -db or -facts, not both")
	case dbPath != "":
		f, err := os.Open(dbPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return instance.ReadCSV(f)
	case facts != "":
		return instance.ParseFacts(facts)
	default:
		return nil, fmt.Errorf("an instance is required: -db file.csv or -facts \"R(a,b) ...\"")
	}
}

func cmdClassify(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("at least one query is required")
	}
	for _, qs := range args {
		q, err := cqa.ParseQuery(qs)
		if err != nil {
			return err
		}
		fmt.Println(cqa.Explain(q))
	}
	return nil
}

func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	qs := fs.String("q", "", "path query word, e.g. RRX")
	dbPath := fs.String("db", "", "instance CSV file (rel,key,val rows)")
	facts := fs.String("facts", "", "inline fact list, e.g. \"R(a,b) R(a,c)\"")
	method := fs.String("method", "", "force a tier: fo-rewriting, nl-loop, ptime-fixpoint, conp-sat, exhaustive")
	cex := fs.Bool("cex", false, "print a counterexample repair on no-instances")
	fs.Parse(args)
	q, err := cqa.ParseQuery(*qs)
	if err != nil {
		return err
	}
	db, err := loadInstance(*dbPath, *facts)
	if err != nil {
		return err
	}
	res, err := cqa.CertainOpt(q, db, cqa.Options{
		Force:              cqa.Method(*method),
		WantCounterexample: *cex,
	})
	if err != nil {
		return err
	}
	fmt.Printf("query    : %v  (%v)\n", q, res.Class)
	fmt.Printf("method   : %s\n", res.Method)
	fmt.Printf("certain  : %v\n", res.Certain)
	if res.Witness != "" {
		fmt.Printf("witness  : every repair has an accepted path starting at %s\n", res.Witness)
	}
	if res.Note != "" {
		fmt.Printf("note     : %s\n", res.Note)
	}
	if *cex && res.Counterexample != nil {
		fmt.Printf("repair falsifying q: %s\n", res.Counterexample)
	}
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	qs := fs.String("q", "", "path query word, e.g. RRX")
	fs.Parse(args)
	q, err := cqa.ParseQuery(*qs)
	if err != nil {
		return err
	}
	p := cqa.CompilePlan(q)
	fmt.Printf("query  : %v\n", q)
	fmt.Printf("class  : %v\n", p.Class())
	fmt.Printf("method : %s\n", p.Method())
	if s, ok := p.Rewriting(); ok {
		fmt.Printf("fo     : %s\n", s)
	}
	if s, ok := p.Decomposition(); ok {
		fmt.Printf("nl     : %s\n", s)
	}
	return nil
}

// cmdBatch decides request batches concurrently on one engine, so
// repeated query words share a compiled plan. Two request formats:
//
//   - "lines" (default): one "QUERY ; FACTS" per line, e.g.
//     "RRX ; R(0,1) R(1,2) X(2,3)", with aligned text output.
//   - "ndjson": one JSON object per line,
//     {"query": "RRX", "facts": ["R(0,1)", "R(1,2)", "X(2,3)"]},
//     answered with streaming one-line-JSON results on stdout (requests
//     are decided and emitted in chunks, so output starts before the
//     whole input is read and memory stays bounded); the summary goes
//     to stderr to keep stdout valid NDJSON.
func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	file := fs.String("file", "", "request file (default: stdin)")
	workers := fs.Int("workers", 0, "worker-pool size (default: GOMAXPROCS)")
	format := fs.String("format", "lines", `request format: "lines" or "ndjson"`)
	fs.Parse(args)

	var r io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	eng := cqa.NewEngine(cqa.EngineConfig{Workers: *workers})
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)

	switch *format {
	case "lines":
		return batchLines(eng, sc)
	case "ndjson":
		return batchNDJSON(eng, sc)
	default:
		return fmt.Errorf("unknown -format %q (want lines or ndjson)", *format)
	}
}

func batchLines(eng *cqa.Engine, sc *bufio.Scanner) error {
	var reqs []cqa.Request
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		qpart, fpart, ok := strings.Cut(line, ";")
		if !ok {
			return fmt.Errorf("line %d: want \"QUERY ; FACTS\", got %q", lineNo, line)
		}
		q, err := cqa.ParseQuery(strings.TrimSpace(qpart))
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		db, err := instance.ParseFacts(strings.TrimSpace(fpart))
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		reqs = append(reqs, cqa.Request{Query: q, DB: db})
	}
	if err := sc.Err(); err != nil {
		return err
	}

	for i, res := range eng.CertainBatch(context.Background(), reqs) {
		if res.Err != nil {
			fmt.Printf("%-4d %-12v error: %v\n", i+1, reqs[i].Query, res.Err)
			continue
		}
		fmt.Printf("%-4d %-12v certain=%-5v class=%v method=%s\n",
			i+1, reqs[i].Query, res.Certain, res.Class, res.Method)
	}
	stats := eng.CacheStats()
	fmt.Printf("# %d requests, %d plans compiled (cache: %d hits / %d misses)\n",
		len(reqs), stats.Entries, stats.Hits, stats.Misses)
	return nil
}

// batchRequest is one NDJSON request line.
type batchRequest struct {
	Query string   `json:"query"`
	Facts []string `json:"facts"`
}

// batchResponse is one NDJSON result line. Exactly one of Error or the
// decision fields is meaningful.
type batchResponse struct {
	Index   int    `json:"index"`
	Query   string `json:"query"`
	Certain *bool  `json:"certain,omitempty"`
	Class   string `json:"class,omitempty"`
	Method  string `json:"method,omitempty"`
	Error   string `json:"error,omitempty"`
}

// batchChunk bounds how many NDJSON requests are in flight at once, so
// arbitrarily long request streams run in constant memory and results
// stream out as chunks complete.
const batchChunk = 256

func batchNDJSON(eng *cqa.Engine, sc *bufio.Scanner) error {
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)

	total := 0
	// A chunk holds responses in input order; reqIdx >= 0 marks a slot
	// to be filled from the concurrent batch evaluation, -1 a request
	// that already failed to parse.
	type slot struct {
		resp   batchResponse
		reqIdx int
	}
	var slots []slot
	var reqs []cqa.Request

	flush := func() error {
		results := eng.CertainBatch(context.Background(), reqs)
		for _, sl := range slots {
			resp := sl.resp
			if sl.reqIdx >= 0 {
				res := results[sl.reqIdx]
				if res.Err != nil {
					resp.Error = res.Err.Error()
				} else {
					certain := res.Certain
					resp.Certain = &certain
					resp.Class = res.Class.String()
					resp.Method = string(res.Method)
				}
			}
			if err := enc.Encode(resp); err != nil {
				return err
			}
		}
		slots, reqs = slots[:0], reqs[:0]
		return out.Flush()
	}

	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		total++
		var br batchRequest
		if err := json.Unmarshal([]byte(line), &br); err != nil {
			slots = append(slots, slot{reqIdx: -1, resp: batchResponse{
				Index: total, Error: fmt.Sprintf("line %d: %v", lineNo, err)}})
		} else if q, err := cqa.ParseQuery(br.Query); err != nil {
			slots = append(slots, slot{reqIdx: -1, resp: batchResponse{
				Index: total, Query: br.Query, Error: err.Error()}})
		} else if db, err := instance.ParseFacts(strings.Join(br.Facts, " ")); err != nil {
			slots = append(slots, slot{reqIdx: -1, resp: batchResponse{
				Index: total, Query: br.Query, Error: err.Error()}})
		} else {
			slots = append(slots, slot{reqIdx: len(reqs), resp: batchResponse{
				Index: total, Query: br.Query}})
			reqs = append(reqs, cqa.Request{Query: q, DB: db})
		}
		if len(slots) >= batchChunk {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	stats := eng.CacheStats()
	fmt.Fprintf(os.Stderr, "# %d requests, %d plans compiled (cache: %d hits / %d misses)\n",
		total, stats.Entries, stats.Hits, stats.Misses)
	return nil
}

func cmdRewrite(args []string) error {
	fs := flag.NewFlagSet("rewrite", flag.ExitOnError)
	qs := fs.String("q", "", "path query word")
	fs.Parse(args)
	q, err := cqa.ParseQuery(*qs)
	if err != nil {
		return err
	}
	s, err := cqa.Rewrite(q)
	if err != nil {
		return err
	}
	fmt.Println(s)
	return nil
}

func cmdLanguage(args []string) error {
	fs := flag.NewFlagSet("language", flag.ExitOnError)
	qs := fs.String("q", "", "path query word")
	max := fs.Int("max", 12, "maximum word length")
	fs.Parse(args)
	q, err := cqa.ParseQuery(*qs)
	if err != nil {
		return err
	}
	for _, w := range cqa.RewindLanguage(q, *max) {
		fmt.Println(w)
	}
	return nil
}

func cmdNFA(args []string) error {
	fs := flag.NewFlagSet("nfa", flag.ExitOnError)
	qs := fs.String("q", "", "path query word")
	fs.Parse(args)
	q, err := cqa.ParseQuery(*qs)
	if err != nil {
		return err
	}
	fmt.Print(automata.New(q.Word()).DOT())
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	qs := fs.String("q", "", "path query word")
	dbPath := fs.String("db", "", "instance CSV file")
	facts := fs.String("facts", "", "inline fact list")
	fs.Parse(args)
	q, err := cqa.ParseQuery(*qs)
	if err != nil {
		return err
	}
	db, err := loadInstance(*dbPath, *facts)
	if err != nil {
		return err
	}
	res, traces := fixpoint.SolveNaive(db, q.Word())
	fmt.Print(fixpoint.FormatTrace(q.Word(), traces))
	fmt.Printf("certain: %v, starts: %v\n", res.Certain, res.Starts)
	return nil
}

func cmdCount(args []string) error {
	fs := flag.NewFlagSet("count", flag.ExitOnError)
	dbPath := fs.String("db", "", "instance CSV file")
	facts := fs.String("facts", "", "inline fact list")
	fs.Parse(args)
	db, err := loadInstance(*dbPath, *facts)
	if err != nil {
		return err
	}
	fmt.Println(cqa.CountRepairs(db))
	return nil
}
