// Command cqabench regenerates every paper artifact indexed in
// DESIGN.md (experiments E1–E13) and prints paper-vs-measured tables;
// EXPERIMENTS.md records its output. E14–E19 go beyond the paper: they
// measure the serving-path wins — the interned per-(plan, instance)
// memos of the fixpoint, NL and coNP tiers (E14–E16), the sharded
// batch scheduler against the per-request scheduler on a skewed word
// mix (E17), warm decisions under instance churn via the delta-intern
// + lineage-repair path (E18), and intra-query parallelism on giant
// instances — partitioned fixpoint, sharded NL stages, the streaming
// bulk loader — against the single-core twins (E19). Run all
// experiments with no arguments, or select one with -e E4.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"cqa"
	"cqa/internal/automata"
	"cqa/internal/circuits"
	"cqa/internal/classify"
	"cqa/internal/conp"
	"cqa/internal/cq"
	"cqa/internal/fixpoint"
	"cqa/internal/fo"
	"cqa/internal/genq"
	"cqa/internal/graphs"
	"cqa/internal/instance"
	"cqa/internal/nl"
	"cqa/internal/reductions"
	"cqa/internal/repairs"
	"cqa/internal/words"
	"cqa/internal/workload"
)

type experiment struct {
	id    string
	title string
	run   func() bool // returns true when measured matches paper
}

func main() {
	sel := flag.String("e", "", "run a single experiment (E1..E19)")
	flag.Parse()
	exps := []experiment{
		{"E1", "Figure 1 / Examples 1-2: self-joins change certainty", e1},
		{"E2", "Figure 2 / Example 4: q=RRX yes-instance and start sets", e2},
		{"E3", "Figure 3: q=ARRX no-instance despite ARR(R)*X paths", e3},
		{"E4", "Example 3: tetrachotomy classification", e4},
		{"E5", "Figure 4: NFA(RXRRR) structure", e5},
		{"E6", "Figure 6: fixpoint iteration trace", e6},
		{"E7", "Lemma 16 / Example 6: NFAmin languages", e7},
		{"E8", "Lemma 18 / Figure 8: NL-hardness reduction", e8},
		{"E9", "Lemma 19 / Figure 9: coNP-hardness reduction", e9},
		{"E10", "Lemma 20 / Figure 10: PTIME-hardness reduction (MCVP)", e10},
		{"E11", "Theorem 3 upper bounds: solver tier agreement", e11},
		{"E12", "Section 8 / Examples 8-10: queries with constants", e12},
		{"E13", "Proposition 1, Lemmas 1-3: word-combinatorics census", e13},
		{"E14", "Interned fixpoint serving: binding memo cold vs warm", e14},
		{"E15", "Interned NL serving: loop procedure cold vs warm", e15},
		{"E16", "Interned coNP serving: CNF memo + incremental solve cold vs warm", e16},
		{"E17", "Sharded batch serving: skewed word mix, sharded vs per-request scheduler", e17},
		{"E18", "Churning instances: warm decision after an in-universe mutation, per tier", e18},
		{"E19", "Giant instances: partitioned solver and bulk loader vs single-core, per tier", e19},
	}
	allOK := true
	for _, e := range exps {
		if *sel != "" && e.id != *sel {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		start := time.Now()
		ok := e.run()
		status := "MATCH"
		if !ok {
			status = "MISMATCH"
			allOK = false
		}
		fmt.Printf("-- %s: %s (%.2fs)\n\n", e.id, status, time.Since(start).Seconds())
	}
	if !allOK {
		os.Exit(1)
	}
}

func e1() bool {
	db := instance.MustParseFacts(
		"R(a,a) R(a,b) R(b,a) R(b,b) S(a,a) S(a,b) S(b,a) S(b,b)")
	q1 := cq.New(
		cq.Atom{Rel: "R", S: cq.Var("x"), T: cq.Var("y")},
		cq.Atom{Rel: "R", S: cq.Var("y"), T: cq.Var("x")})
	q2 := cq.New(
		cq.Atom{Rel: "R", S: cq.Var("x"), T: cq.Var("y")},
		cq.Atom{Rel: "S", S: cq.Var("y"), T: cq.Var("x")})
	got1 := cq.IsCertain(db, q1)
	got2 := cq.IsCertain(db, q2)
	fmt.Printf("  CERTAINTY(q1 = R(x,y)∧R(y,x)) on Figure 1: got %v, paper says yes\n", got1)
	fmt.Printf("  CERTAINTY(q2 = R(x,y)∧S(y,x)) on Figure 1: got %v, paper says no\n", got2)
	return got1 && !got2
}

func e2() bool {
	db := instance.MustParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	q := cqa.MustParseQuery("RRX")
	res := cqa.Certain(q, db)
	fp := fixpoint.Solve(db, q.Word())
	r1 := instance.MustParseFacts("R(0,1) R(1,2) R(2,3) X(3,4)")
	r2 := instance.MustParseFacts("R(0,1) R(1,3) R(2,3) X(3,4)")
	s1 := keys(startSet(r1, q.Word()))
	s2 := keys(startSet(r2, q.Word()))
	fmt.Printf("  yes-instance: got %v (method %s), paper says yes\n", res.Certain, res.Method)
	fmt.Printf("  certain starts (Corollary 1): %v, paper says [0]\n", fp.Starts)
	fmt.Printf("  start(q, r1) = %v (paper: [0 1]); start(q, r2) = %v (paper: [0])\n", s1, s2)
	fmt.Printf("  L↬(RRX) up to length 6: %v (paper: RR(R)*X)\n", cqa.RewindLanguage(q, 6))
	return res.Certain && fmt.Sprint(fp.Starts) == "[0]" &&
		fmt.Sprint(s1) == "[0 1]" && fmt.Sprint(s2) == "[0]"
}

func startSet(r *instance.Instance, q words.Word) map[string]bool {
	a := automata.New(q)
	out := map[string]bool{}
	for _, c := range r.Adom() {
		for l := q.Len(); l <= q.Len()+6; l++ {
			done := false
			for _, w := range a.AcceptedWords(0, l) {
				if r.HasTraceFrom(c, w) {
					out[c] = true
					done = true
					break
				}
			}
			if done {
				break
			}
		}
	}
	return out
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func e3() bool {
	db := instance.MustParseFacts("A(0,a) R(a,b) R(a,c) R(b,c) R(c,b) X(c,t)")
	q := cqa.MustParseQuery("ARRX")
	res, _ := cqa.CertainOpt(q, db, cqa.Options{WantCounterexample: true})
	every := true
	repairs.ForEach(db, func(r *instance.Instance) bool {
		if !r.HasTraceFrom("0", words.MustParse("ARRX")) &&
			!r.HasTraceFrom("0", words.MustParse("ARRRX")) {
			every = false
		}
		return true
	})
	fmt.Printf("  no-instance: got certain=%v (paper: no-instance)\n", res.Certain)
	fmt.Printf("  every repair has an ARR(R)*X path from 0: %v (paper: yes)\n", every)
	fmt.Printf("  counterexample repair: %s\n", res.Counterexample)
	return !res.Certain && every && res.Counterexample != nil
}

func e4() bool {
	rows := []struct {
		q    string
		want cqa.Class
	}{
		{"RXRX", cqa.FO}, {"RXRY", cqa.NL}, {"RXRYRY", cqa.PTime}, {"RXRXRYRY", cqa.CoNP},
		{"RR", cqa.FO}, {"RRX", cqa.NL}, {"ARRX", cqa.CoNP},
	}
	ok := true
	fmt.Printf("  %-10s %-16s %-16s\n", "query", "measured", "paper")
	for _, r := range rows {
		got := cqa.Classify(cqa.MustParseQuery(r.q))
		fmt.Printf("  %-10s %-16v %-16v\n", r.q, got, r.want)
		ok = ok && got == r.want
	}
	return ok
}

func e5() bool {
	a := automata.New(words.MustParse("RXRRR"))
	back := 0
	for j := 0; j <= 5; j++ {
		back += len(a.BackwardTargets(j))
	}
	fmt.Printf("  states: %d (paper: 6), backward ε-transitions: %d (paper: 6)\n",
		a.NumStates(), back)
	fmt.Printf("  DOT output available via `cqa nfa -q RXRRR`\n")
	return a.NumStates() == 6 && back == 6
}

func e6() bool {
	db := instance.MustParseFacts("R(0,1) R(1,2) R(2,3) R(1,4) R(2,4) R(3,4) X(4,5)")
	q := words.MustParse("RRX")
	res, traces := fixpoint.SolveNaive(db, q)
	fmt.Print(indent(fixpoint.FormatTrace(q, traces)))
	want := "[{4 2}];[{3 1} {3 2}];[{2 1} {2 2}];[{1 1} {1 2}];[{0 0} {0 1} {0 2}]"
	var got []string
	for _, tr := range traces {
		got = append(got, fmt.Sprint(tr.Added))
	}
	match := strings.Join(got, ";") == want
	fmt.Printf("  trace matches the paper's table: %v; certain=%v starts=%v (paper: yes, [0])\n",
		match, res.Certain, res.Starts)
	return match && res.Certain
}

func e7() bool {
	// Example 6: RXRYRY R... — RXRYRYR accepted by NFA(RXRYR), not by
	// NFAmin(RXRYR).
	q := words.MustParse("RXRYR")
	a := automata.New(q)
	long := words.MustParse("RXRYRYR")
	full := a.ToDFA().AcceptsWord(long)
	min := a.MinPrefixDFA().AcceptsWord(long)
	fmt.Printf("  NFA(RXRYR) accepts RXRYRYR: %v (paper: yes); NFAmin: %v (paper: no)\n", full, min)
	// Lemma 16 instances certified by the NL decomposer.
	ok := full && !min
	for _, qs := range []string{"RRX", "RXRY", "YYRR", "RRRX"} {
		d, err := nl.Decompose(words.MustParse(qs))
		if err != nil {
			fmt.Printf("  %s: no certified decomposition (%v)\n", qs, err)
			ok = false
			continue
		}
		fmt.Printf("  L(NFAmin(%s)) = %s  [certified by DFA equivalence]\n", qs, d.Language)
	}
	return ok
}

func e8() bool {
	rng := rand.New(rand.NewSource(1))
	q := words.MustParse("RRX")
	agree := 0
	total := 60
	for i := 0; i < total; i++ {
		n := 2 + rng.Intn(7)
		g := graphs.RandomDAG(rng, n, 0.3)
		db, err := reductions.FromReachability(q, g, "v0", fmt.Sprintf("v%d", n-1))
		if err != nil {
			fmt.Println("  error:", err)
			return false
		}
		want := g.Reachable("v0", fmt.Sprintf("v%d", n-1))
		got := !fixpoint.Solve(db, q).Certain
		if got == want {
			agree++
		}
	}
	fmt.Printf("  reachability(G,s,t) ⟺ co-CERTAINTY(RRX): %d/%d random DAGs agree (paper: all)\n", agree, total)
	return agree == total
}

func e9() bool {
	f := reductions.Figure9CNF()
	db, err := reductions.FromSAT(words.MustParse("ARRX"), f)
	if err != nil {
		fmt.Println("  error:", err)
		return false
	}
	res := conp.IsCertain(db, words.MustParse("ARRX"))
	fmt.Printf("  Figure 9 formula satisfiable: %v; built instance is a no-instance: %v (paper: both yes)\n",
		f.Satisfiable(), !res.Certain)
	fmt.Printf("  instance size: %d facts; CNF encoding: %d vars, %d clauses\n",
		db.Size(), res.Vars, res.Clauses)

	rng := rand.New(rand.NewSource(2))
	agree, total := 0, 60
	for i := 0; i < total; i++ {
		cnf := randomCNF(rng, 1+rng.Intn(4), 1+rng.Intn(5))
		db, err := reductions.FromSAT(words.MustParse("ARRX"), cnf)
		if err != nil {
			return false
		}
		if !conp.IsCertain(db, words.MustParse("ARRX")).Certain == cnf.Satisfiable() {
			agree++
		}
	}
	fmt.Printf("  SAT(ψ) ⟺ co-CERTAINTY(ARRX): %d/%d random formulas agree (paper: all)\n", agree, total)
	return !res.Certain && f.Satisfiable() && agree == total
}

func randomCNF(rng *rand.Rand, nv, nc int) reductions.CNF {
	f := reductions.CNF{NumVars: nv}
	for i := 0; i < nc; i++ {
		k := 1 + rng.Intn(3)
		var clause []int
		for j := 0; j < k; j++ {
			v := 1 + rng.Intn(nv)
			if rng.Intn(2) == 0 {
				v = -v
			}
			clause = append(clause, v)
		}
		f.Clauses = append(f.Clauses, clause)
	}
	return f
}

func e10() bool {
	rng := rand.New(rand.NewSource(3))
	q := words.MustParse("RXRYRY")
	agree, total := 0, 60
	for i := 0; i < total; i++ {
		c, sigma := circuits.Random(rng, 1+rng.Intn(4), 1+rng.Intn(8))
		db, err := reductions.FromMCVP(q, c, sigma)
		if err != nil {
			fmt.Println("  error:", err)
			return false
		}
		if fixpoint.Solve(db, q).Certain == c.Value(sigma) {
			agree++
		}
	}
	fmt.Printf("  value(C,σ) ⟺ CERTAINTY(RXRYRY): %d/%d random monotone circuits agree (paper: all)\n", agree, total)
	return agree == total
}

func e11() bool {
	rng := rand.New(rand.NewSource(4))
	queries := []cqa.Query{
		cqa.MustParseQuery("RR"), cqa.MustParseQuery("RRX"),
		cqa.MustParseQuery("RXRYRY"), cqa.MustParseQuery("ARRX"),
	}
	// All decisions go through one engine as a single concurrent batch:
	// 480 requests share 4 compiled plans.
	var reqs []cqa.Request
	for it := 0; it < 120; it++ {
		db := cqa.NewInstance()
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			rel := []string{"R", "X", "Y", "A"}[rng.Intn(4)]
			db.AddFact(rel, string(rune('a'+rng.Intn(4))), string(rune('a'+rng.Intn(4))))
		}
		for _, q := range queries {
			reqs = append(reqs, cqa.Request{Query: q, DB: db})
		}
	}
	eng := cqa.NewEngine(cqa.EngineConfig{})
	results := eng.CertainBatch(context.Background(), reqs)
	total, agree := 0, 0
	for i, res := range results {
		if res.Err != nil {
			fmt.Printf("  error: %v\n", res.Err)
			return false
		}
		want := repairs.IsCertain(reqs[i].DB, reqs[i].Query.Word())
		total++
		if res.Certain == want {
			agree++
		}
	}
	stats := eng.Stats()
	fmt.Printf("  dispatched tier vs exhaustive ground truth: %d/%d agree (paper: all)\n", agree, total)
	fmt.Printf("  engine: %d requests served by %d compiled plans (%d cache hits)\n",
		len(reqs), stats.Plans.Entries, stats.Plans.Hits)
	return agree == total && stats.Plans.Entries == len(queries)
}

func e12() bool {
	// Examples 8-10 and Theorem 5.
	q := genq.MustParse("R(x,y) S(y,0) T(0,1) R(1,w)")
	ch, gamma := q.CharPrefix()
	ext := q.Ext()
	fmt.Printf("  char(q) = %v with γ=%s (paper: {R(x,y), S(y,0)}); ext(q) = %v (paper: RSN)\n",
		ch.Word(), gamma, ext)
	okChar := ch.Word().String() == "RS" && gamma == "0" && ext.String() == "RSN"

	cases := []struct {
		q    string
		want cqa.Class
	}{
		{"R(x,y) R(y,0)", cqa.NL},
		{"R(x,y) R(y,z) X(z,0)", cqa.NL},
		{"S(x,y) R(y,0)", cqa.FO},
	}
	okCls := true
	for _, c := range cases {
		got := genq.Classify(genq.MustParse(c.q))
		fmt.Printf("  Classify(%s) = %v (Theorem 5: never PTIME-complete)\n", c.q, got)
		okCls = okCls && got == c.want && got != cqa.PTime
	}
	// Differential check of the constant-elimination solver.
	rng := rand.New(rand.NewSource(5))
	gq := genq.MustParse("R(x,y) R(y,z) X(z,0)")
	agree, total := 0, 80
	solve := func(db *instance.Instance, w words.Word) bool {
		return conp.IsCertain(db, w).Certain
	}
	for i := 0; i < total; i++ {
		db := instance.New()
		for j := 0; j < 1+rng.Intn(7); j++ {
			rel := []string{"R", "X"}[rng.Intn(2)]
			cs := []string{"a", "b", "0", "1"}
			db.AddFact(rel, cs[rng.Intn(4)], cs[rng.Intn(4)])
		}
		got := genq.IsCertain(db, gq, solve)
		want := true
		repairs.ForEach(db, func(r *instance.Instance) bool {
			if !gq.Satisfies(r) {
				want = false
				return false
			}
			return true
		})
		if got == want {
			agree++
		}
	}
	fmt.Printf("  constant-elimination solver vs exhaustive: %d/%d agree (paper: all)\n", agree, total)
	return okChar && okCls && agree == total
}

func e13() bool {
	// Census over all words up to length 6 over {R,X}: Proposition 1 and
	// the C=B lemma identities, plus the tetrachotomy distribution.
	counts := map[cqa.Class]int{}
	violations := 0
	var rec func(cur words.Word)
	rec = func(cur words.Word) {
		if len(cur) > 0 {
			c1, _ := classify.C1(cur)
			c2, _ := classify.C2(cur)
			c3, _ := classify.C3(cur)
			if (c1 && !c2) || (c2 && !c3) {
				violations++
			}
			if c1 != (classify.FindB1(cur) != nil) {
				violations++
			}
			b2 := classify.FindB2a(cur) != nil || classify.FindB2b(cur) != nil
			if c2 != b2 {
				violations++
			}
			if c3 != (b2 || classify.FindB3(cur) != nil) {
				violations++
			}
			counts[classify.Classify(cur)]++
		}
		if len(cur) == 6 {
			return
		}
		for _, a := range []string{"R", "X"} {
			rec(append(cur, a))
		}
	}
	rec(words.Word{})
	fmt.Printf("  words up to length 6 over {R,X}: FO=%d NL=%d PTIME=%d coNP=%d\n",
		counts[cqa.FO], counts[cqa.NL], counts[cqa.PTime], counts[cqa.CoNP])
	fmt.Printf("  Proposition 1 and Lemmas 1-3 identities: %d violations (paper: 0)\n", violations)
	_ = workload.Config{}
	return violations == 0
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}

// e14 measures the serving-path effect of interned evaluation: the
// Figure 5 solver bound to one (plan, instance) pair reuses its
// interned transition tables across calls, so a warm call pays only
// the worklist iteration. Cold timings recompile the query machinery
// (and rebuild the tables) per call. The detailed ns/op numbers live in
// bench_test.go (BenchmarkEngineReuse); this experiment asserts the
// qualitative claim: warm per-call cost is below cold per-call cost,
// with identical answers.
func e14() bool {
	q := words.MustParse("RXRYRY")
	db := workload.Random(workload.Config{
		Relations:    []string{"R", "X", "Y"},
		Constants:    200,
		Facts:        400,
		ConflictRate: 0.3,
		Seed:         14,
	})
	const iters = 200

	cold := time.Now()
	var coldCertain bool
	for i := 0; i < iters; i++ {
		coldCertain = fixpoint.Solve(db, q).Certain // Compile + bind + solve per call
	}
	coldNs := float64(time.Since(cold).Nanoseconds()) / iters

	cp := fixpoint.Compile(q)
	cp.Solve(db) // bind once
	warm := time.Now()
	var warmCertain bool
	for i := 0; i < iters; i++ {
		warmCertain = cp.Solve(db).Certain // memoized binding: worklist only
	}
	warmNs := float64(time.Since(warm).Nanoseconds()) / iters

	fmt.Printf("  q=%v, |db|=%d facts, |adom|=%d: cold %.0f ns/call, warm %.0f ns/call (%.1fx)\n",
		q, db.Size(), len(db.Adom()), coldNs, warmNs, coldNs/warmNs)
	fmt.Printf("  answers agree: %v (certain=%v)\n", coldCertain == warmCertain, warmCertain)
	return coldCertain == warmCertain && warmNs < coldNs
}

// e15 extends E14's serving trajectory to the NL tier: the Section 6.3
// loop procedure run cold (Decompose certification + artifact build per
// call, via nl.IsCertain) against one reused Evaluator whose
// per-snapshot artifacts are memoized (warm calls scan the memoized O
// bitset). Printed alongside E14 so the cold-vs-warm story covers both
// serving tiers in one place.
func e15() bool {
	ok := true
	fmt.Printf("  %-11s %8s %8s %12s %12s %9s\n", "query", "facts", "|adom|", "cold ns", "warm ns", "speedup")
	for _, qs := range []string{"RRX", "RRRRRRRRX"} {
		q := words.MustParse(qs)
		ev, err := nl.NewEvaluator(q)
		if err != nil {
			fmt.Printf("  %s: %v\n", qs, err)
			return false
		}
		for _, facts := range []int{20, 100, 1000} {
			db := workload.Random(workload.Config{
				Relations:    []string{"R", "X"},
				Constants:    facts / 2,
				Facts:        facts,
				ConflictRate: 0.3,
				Seed:         15,
			})
			iters := 100
			if facts >= 1000 {
				iters = 20
			}
			cold := time.Now()
			var coldCertain bool
			for i := 0; i < iters; i++ {
				c, _, err := nl.IsCertain(db, q) // Decompose + certify + build per call
				if err != nil {
					fmt.Printf("  %s: %v\n", qs, err)
					return false
				}
				coldCertain = c
			}
			coldNs := float64(time.Since(cold).Nanoseconds()) / float64(iters)

			ev.IsCertain(db) // build the per-snapshot artifacts once
			warm := time.Now()
			var warmCertain bool
			for i := 0; i < 50*iters; i++ {
				warmCertain = ev.IsCertain(db)
			}
			warmNs := float64(time.Since(warm).Nanoseconds()) / float64(50*iters)

			fmt.Printf("  %-11s %8d %8d %12.0f %12.1f %8.0fx\n",
				qs, db.Size(), len(db.Adom()), coldNs, warmNs, coldNs/warmNs)
			ok = ok && coldCertain == warmCertain && warmNs < coldNs
		}
	}
	return ok
}

// e16 completes the cold-vs-warm serving story for the deepest tier:
// the coNP SAT fallback. Cold calls re-encode the CNF and solve from
// scratch per call (conp.IsCertain); warm calls go through one
// conp.Compiled whose per-snapshot encoding memo keeps the CNF and the
// incremental solver, so only the assumption-based re-solve runs
// (saved phases on no-instances, level-0 assumption failure on
// certain ones).
func e16() bool {
	ok := true
	q := words.MustParse("ARRX")
	fmt.Printf("  %-6s %8s %8s %8s %12s %12s %9s\n",
		"query", "facts", "certain", "clauses", "cold ns", "warm ns", "speedup")
	for _, facts := range []int{50, 100, 400, 1000} {
		db := workload.Random(workload.Config{
			Relations:    []string{"R", "X", "Y", "A"},
			Constants:    facts / 2,
			Facts:        facts,
			ConflictRate: 0.3,
			Seed:         42,
		})
		iters := 100
		if facts >= 400 {
			iters = 20
		}
		cold := time.Now()
		var coldRes bool
		var clauses int
		for i := 0; i < iters; i++ {
			r := conp.IsCertain(db, q) // encode + load + solve per call
			coldRes, clauses = r.Certain, r.Clauses
		}
		coldNs := float64(time.Since(cold).Nanoseconds()) / float64(iters)

		cp := conp.Compile(q)
		cp.IsCertain(db) // build and memoize the CNF once
		warm := time.Now()
		var warmRes bool
		for i := 0; i < 10*iters; i++ {
			warmRes = cp.IsCertain(db).Certain
		}
		warmNs := float64(time.Since(warm).Nanoseconds()) / float64(10*iters)

		fmt.Printf("  %-6v %8d %8v %8d %12.0f %12.0f %8.1fx\n",
			q, db.Size(), coldRes, clauses, coldNs, warmNs, coldNs/warmNs)
		ok = ok && coldRes == warmRes && warmNs < coldNs
	}
	return ok
}

// e17 measures the engine's two-phase sharded batch scheduler against
// the per-request scheduler it replaced (EngineConfig.BatchShardSize <
// 0) on a skewed serving mix: two hot query words cycling over 24
// shared instances — scattered in input order, so the per-request
// scheduler churns the 16-entry per-plan binding memos, while
// snapshot-affine shards build each (plan, snapshot) artifact exactly
// once — plus a tail of cold NL words whose certification-heavy plans
// the sharded pre-pass compiles off the evaluation workers' critical
// path. Fresh engines per round replay compilation, like a serving
// tier picking up a new workload; decisions must be identical.
func e17() bool {
	const nInstances = 24
	dbs := make([]*instance.Instance, nInstances)
	for i := range dbs {
		dbs[i] = workload.Random(workload.Config{
			Relations:    []string{"R", "X", "Y"},
			Constants:    100,
			Facts:        200,
			ConflictRate: 0.3,
			Seed:         int64(1700 + i),
		})
	}
	hot := []cqa.Query{cqa.MustParseQuery("RRX"), cqa.MustParseQuery("RXRYRY")}
	var reqs []cqa.Request
	for i := 0; i < 4*len(hot)*nInstances; i++ {
		reqs = append(reqs, cqa.Request{
			Query: hot[i%len(hot)],
			DB:    dbs[(i/len(hot))%nInstances],
		})
	}
	for k := 3; k <= 10; k++ {
		reqs = append(reqs, cqa.Request{
			Query: cqa.MustParseQuery(strings.Repeat("R", k) + "X"),
			DB:    dbs[0],
		})
	}

	const rounds = 5
	run := func(shardSize int) ([]cqa.Result, float64, cqa.Stats) {
		var last []cqa.Result
		var stats cqa.Stats
		start := time.Now()
		for r := 0; r < rounds; r++ {
			eng := cqa.NewEngine(cqa.EngineConfig{BatchShardSize: shardSize})
			last = eng.CertainBatch(context.Background(), reqs)
			stats = eng.Stats()
		}
		perReq := float64(time.Since(start).Nanoseconds()) / float64(rounds*len(reqs))
		return last, perReq, stats
	}
	run(0) // warm the interned snapshots so both schedulers measure evaluation
	sharded, shardedNs, stats := run(0)
	unsharded, unshardedNs, _ := run(-1)

	agree := true
	for i := range sharded {
		if sharded[i].Err != nil || unsharded[i].Err != nil ||
			sharded[i].Certain != unsharded[i].Certain ||
			sharded[i].Method != unsharded[i].Method {
			agree = false
			break
		}
	}
	fmt.Printf("  %d requests (%d words, %d instances): sharded %.0f ns/req, per-request %.0f ns/req (%.1fx)\n",
		len(reqs), 2+8, nInstances, shardedNs, unshardedNs, unshardedNs/shardedNs)
	fmt.Printf("  scheduler: %d shards, %d plans compiled per batch; decisions identical: %v\n",
		stats.Plans.Shards, stats.Plans.Compiles, agree)
	return agree && shardedNs < unshardedNs
}

// e18 measures the serving regime E14–E16 leave out: the instance
// mutates between decisions. Each tier's engine decides a query warm on
// an unchanged snapshot (pure memo hit), then under a toggling
// in-universe mutation per call — the structural delta-intern path plus
// the tier's lineage repair (fixpoint binding patch, NL slice
// invalidation, coNP CNF patch) — and cold per call for scale. The win
// to verify: warm-after-mutation stays within a small constant of the
// pure hit (benchgate bounds it at 10x at facts=1000) and orders of
// magnitude under the cold rebuild a mutation used to force.
func e18() bool {
	ok := true
	cases := []struct {
		tier   string
		query  string
		mutRel string
	}{
		{"fixpoint", "RXRYRY", "R"},
		{"nl", "RRX", "Y"},
		{"conp", "ARRX", "R"},
	}
	fmt.Printf("  %-9s %-7s %8s %12s %13s %12s %10s %10s\n",
		"tier", "query", "facts", "warm ns", "mutated ns", "cold ns", "mut/warm", "cold/mut")
	for _, c := range cases {
		q := cqa.MustParseQuery(c.query)
		for _, facts := range []int{100, 1000, 10000} {
			db := workload.Random(workload.Config{
				Relations:    []string{"R", "X", "Y", "A"},
				Constants:    facts / 2,
				Facts:        facts,
				ConflictRate: 0.3,
				Seed:         42,
			})
			var fct instance.Fact
			found := false
			for _, bid := range db.ConflictingBlocks() {
				if bid.Rel != c.mutRel || found {
					continue
				}
				in := make(map[string]bool)
				for _, v := range db.Block(bid.Rel, bid.Key) {
					in[v] = true
				}
				for _, cc := range db.Adom() {
					if !in[cc] {
						fct = instance.Fact{Rel: c.mutRel, Key: bid.Key, Val: cc}
						found = true
						break
					}
				}
			}
			if !found {
				fmt.Printf("  %s facts=%d: no conflicting %s block with a free value\n", c.tier, facts, c.mutRel)
				return false
			}

			eng := cqa.NewEngine(cqa.EngineConfig{})
			want := eng.Certain(q, db) // compile + lineage root
			iters := 2000
			if facts >= 10000 {
				iters = 500
			}

			start := time.Now()
			for i := 0; i < iters; i++ {
				eng.Certain(q, db)
			}
			warmNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

			start = time.Now()
			for i := 0; i < iters; i++ {
				if db.Contains(fct) {
					db.Remove(fct)
				} else {
					db.Add(fct)
				}
				if got := eng.Certain(q, db); got.Certain != want.Certain && !db.Contains(fct) {
					fmt.Printf("  %s facts=%d: decision flipped on restored instance\n", c.tier, facts)
					return false
				}
			}
			mutNs := float64(time.Since(start).Nanoseconds()) / float64(iters)
			if db.Contains(fct) { // leave the instance as found
				db.Remove(fct)
			}

			coldIters := 20
			if facts >= 10000 {
				coldIters = 3
			}
			start = time.Now()
			for i := 0; i < coldIters; i++ {
				fresh := cqa.NewEngine(cqa.EngineConfig{})
				fresh.Certain(q, db.Clone())
			}
			coldNs := float64(time.Since(start).Nanoseconds()) / float64(coldIters)

			fmt.Printf("  %-9s %-7s %8d %12.0f %13.0f %12.0f %9.1fx %9.0fx\n",
				c.tier, c.query, db.Size(), warmNs, mutNs, coldNs, mutNs/warmNs, coldNs/mutNs)
			ok = ok && mutNs < coldNs
		}
	}
	return ok
}

// e19 measures intra-query parallelism on giant instances: the
// partitioned fixpoint solver (cold bind + sharded worklist), the
// sharded NL Lemma 14 stages, and the streaming bulk CSV loader, each
// against its single-core twin at growing sizes up to facts=1e6. The
// pass criterion is answer/instance agreement, not speedup — the
// ratios are the measurement, and they only drop below 1 with real
// cores (on a single-core host every partitioned path degrades to the
// serial one by design; CI's bench gate enforces the ≤ 0.6 ratios at
// 4 cores).
func e19() bool {
	ok := true
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("  %d workers (GOMAXPROCS); ratios < 1 require multiple cores\n", workers)
	fmt.Printf("  %-9s %9s %14s %14s %7s\n", "stage", "facts", "serial ns", "parallel ns", "ratio")
	fpQ := words.MustParse("RXRYRA")
	nlQ := words.MustParse("RRX")
	for _, facts := range []int{10_000, 100_000, 1_000_000} {
		db := workload.Random(workload.Config{
			Relations:    []string{"R", "X", "Y", "A"},
			Constants:    facts / 2,
			Facts:        facts,
			ConflictRate: 0.3,
			Seed:         19,
		})
		iv := db.Interned()
		iters := 3
		if facts >= 1_000_000 {
			iters = 1
		}
		opts := fixpoint.SolveOptions{Workers: workers}
		row := func(stage string, serialNs, parallelNs float64) {
			fmt.Printf("  %-9s %9d %14.0f %14.0f %6.2fx\n",
				stage, facts, serialNs, parallelNs, parallelNs/serialNs)
		}

		// Fixpoint: fresh Compile per call keeps the binding build cold.
		serial := time.Now()
		var serialCertain bool
		for i := 0; i < iters; i++ {
			serialCertain = fixpoint.Compile(fpQ).SolveInterned(iv).Certain
		}
		serialNs := float64(time.Since(serial).Nanoseconds()) / float64(iters)
		parallel := time.Now()
		var parCertain bool
		for i := 0; i < iters; i++ {
			res, err := fixpoint.Compile(fpQ).SolveInternedCtx(context.Background(), iv, opts)
			if err != nil {
				fmt.Printf("  fixpoint: %v\n", err)
				return false
			}
			parCertain = res.Certain
		}
		parallelNs := float64(time.Since(parallel).Nanoseconds()) / float64(iters)
		row("fixpoint", serialNs, parallelNs)
		ok = ok && serialCertain == parCertain

		// NL: fresh Evaluator per call keeps the Lemma 14 stages cold.
		serial = time.Now()
		for i := 0; i < iters; i++ {
			ev, err := nl.NewEvaluator(nlQ)
			if err != nil {
				fmt.Printf("  nl: %v\n", err)
				return false
			}
			serialCertain = ev.IsCertain(db)
		}
		serialNs = float64(time.Since(serial).Nanoseconds()) / float64(iters)
		parallel = time.Now()
		for i := 0; i < iters; i++ {
			ev, err := nl.NewEvaluator(nlQ)
			if err != nil {
				fmt.Printf("  nl: %v\n", err)
				return false
			}
			parCertain = ev.IsCertainOpts(db, opts)
		}
		parallelNs = float64(time.Since(parallel).Nanoseconds()) / float64(iters)
		row("nl", serialNs, parallelNs)
		ok = ok && serialCertain == parCertain

		// Loader: both arms end with a published interned snapshot.
		var buf bytes.Buffer
		if err := db.WriteCSV(&buf); err != nil {
			fmt.Printf("  loader: %v\n", err)
			return false
		}
		data := buf.Bytes()
		serial = time.Now()
		var serialDB *instance.Instance
		for i := 0; i < iters; i++ {
			sdb, err := instance.ReadCSV(bytes.NewReader(data))
			if err != nil {
				fmt.Printf("  loader: %v\n", err)
				return false
			}
			sdb.Interned()
			serialDB = sdb
		}
		serialNs = float64(time.Since(serial).Nanoseconds()) / float64(iters)
		parallel = time.Now()
		var parDB *instance.Instance
		for i := 0; i < iters; i++ {
			pdb, err := instance.ReadCSVParallel(bytes.NewReader(data), workers)
			if err != nil {
				fmt.Printf("  loader: %v\n", err)
				return false
			}
			parDB = pdb
		}
		parallelNs = float64(time.Since(parallel).Nanoseconds()) / float64(iters)
		row("loader", serialNs, parallelNs)
		ok = ok && parDB.Equal(serialDB)
	}
	return ok
}

// fo is referenced here to keep the import set stable across edits.
var _ = fo.RewriteCertain
