// Command benchgate gates CI on benchmark regressions: it parses
// `go test -bench` output, aggregates repeated runs (-count N) by
// taking the fastest ns/op per benchmark, compares against a
// checked-in baseline, and exits nonzero when any gated benchmark
// regressed by more than the threshold. The baseline may additionally
// declare ratio gates — bounds on the quotient of two measured
// benchmarks (e.g. warm-reuse vs cold ns/op) — which are
// hardware-independent and therefore survive runner CPU changes that
// invalidate every absolute number. It also writes a JSON report
// (the CI workflow uploads it as an artifact), so every run leaves a
// machine-readable record of the measured numbers next to the
// baseline they were judged against.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkEngineReuse' -count 5 . | tee bench.txt
//	go run ./cmd/benchgate -baseline .github/bench-baseline.json -out BENCH_pr2.json bench.txt
//
// Refresh the baseline after an intentional performance change (or a
// CI hardware change) with -update, which rewrites the baseline file
// from the measured numbers instead of gating:
//
//	go run ./cmd/benchgate -baseline .github/bench-baseline.json -update bench.txt
//
// Only benchmarks named in the baseline are gated; extra measured
// benchmarks are reported informationally, and a baseline entry that
// the run did not produce is an error (a silently skipped gate would
// otherwise pass forever).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkEngineReuse/RXRYRY/facts=20-4   20038   12608 ns/op
//
// The trailing -N (GOMAXPROCS) is stripped; it is omitted entirely
// when GOMAXPROCS=1, so it is optional.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// Baseline is the checked-in reference: fastest observed ns/op per
// gated benchmark, plus a note describing the hardware it was
// measured on, plus hardware-independent ratio gates.
type Baseline struct {
	Note    string             `json:"note,omitempty"`
	CPU     string             `json:"cpu,omitempty"`
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// Ratios are gates on measured-vs-measured quotients, so they keep
	// their meaning when the runner hardware changes (absolute ns/op
	// does not). -update preserves them verbatim: they are policy, not
	// measurements.
	Ratios []RatioGate `json:"ratios,omitempty"`
}

// RatioGate asserts that the measured ns/op ratio numerator/denominator
// stays at or below Max. Both benchmarks must be present in the run.
type RatioGate struct {
	Name string  `json:"name"`
	Num  string  `json:"numerator"`
	Den  string  `json:"denominator"`
	Max  float64 `json:"max"`
}

// Report is the JSON artifact written by -out.
type Report struct {
	CPU         string                 `json:"cpu,omitempty"`
	Threshold   float64                `json:"threshold"`
	Pass        bool                   `json:"pass"`
	Results     map[string]BenchResult `json:"results"`
	Ratios      map[string]RatioResult `json:"ratios,omitempty"`
	Regressions []string               `json:"regressions,omitempty"`
	Ungated     map[string]float64     `json:"ungated,omitempty"`
}

// BenchResult is one gated benchmark in the report.
type BenchResult struct {
	NsPerOp  float64 `json:"ns_per_op"`
	Baseline float64 `json:"baseline_ns_per_op"`
	Ratio    float64 `json:"ratio"`
}

// RatioResult is one ratio gate in the report.
type RatioResult struct {
	Numerator   float64 `json:"numerator_ns_per_op"`
	Denominator float64 `json:"denominator_ns_per_op"`
	Ratio       float64 `json:"ratio"`
	Max         float64 `json:"max"`
}

func main() {
	basePath := flag.String("baseline", ".github/bench-baseline.json", "checked-in baseline JSON")
	outPath := flag.String("out", "", "write a JSON report of the comparison")
	threshold := flag.Float64("threshold", 0.25, "maximum tolerated ns/op regression (0.25 = +25%)")
	update := flag.Bool("update", false, "rewrite the baseline from the measured numbers instead of gating")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [flags] bench.txt...")
		os.Exit(2)
	}
	measured, cpu, err := parseFiles(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results found in input")
		os.Exit(2)
	}

	if *update {
		// Merge into an existing baseline rather than replacing it: a
		// partial benchmark run must not silently drop the other gated
		// benchmarks from coverage.
		next := Baseline{
			Note:    "fastest ns/op per gated benchmark; refresh with: go run ./cmd/benchgate -update (see cmd/benchgate)",
			CPU:     cpu,
			NsPerOp: measured,
		}
		if raw, err := os.ReadFile(*basePath); err == nil {
			var prev Baseline
			if err := json.Unmarshal(raw, &prev); err != nil {
				fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *basePath, err)
				os.Exit(2)
			}
			kept := 0
			for name, ns := range prev.NsPerOp {
				if _, ok := next.NsPerOp[name]; !ok {
					next.NsPerOp[name] = ns
					kept++
				}
			}
			if kept > 0 {
				fmt.Printf("benchgate: kept %d baseline benchmarks not present in this run\n", kept)
			}
			next.Ratios = prev.Ratios
		}
		if err := writeJSON(*basePath, next); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: baseline %s updated with %d benchmarks\n", *basePath, len(measured))
		return
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *basePath, err)
		os.Exit(2)
	}
	// Absolute ns/op across different CPUs is apples-to-oranges: on a
	// hardware mismatch the absolute comparisons are reported but only
	// the ratio gates (which are hardware-independent) and coverage
	// errors decide pass/fail.
	cpuMatch := base.CPU == "" || cpu == "" || base.CPU == cpu
	if !cpuMatch {
		fmt.Fprintf(os.Stderr, "benchgate: WARNING: baseline cpu %q != measured cpu %q; absolute gates are informational for this run (ratio gates still enforce); refresh with -update if the runner hardware changed\n",
			base.CPU, cpu)
	}

	report := Report{
		CPU:       cpu,
		Threshold: *threshold,
		Pass:      true,
		Results:   make(map[string]BenchResult),
		Ungated:   make(map[string]float64),
	}
	var names []string
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		baseNs := base.NsPerOp[name]
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: baseline benchmark %q was not run\n", name)
			report.Pass = false
			report.Regressions = append(report.Regressions, name+" (not run)")
			continue
		}
		ratio := got / baseNs
		report.Results[name] = BenchResult{NsPerOp: got, Baseline: baseNs, Ratio: ratio}
		status := "ok"
		if ratio > 1+*threshold {
			if cpuMatch {
				status = fmt.Sprintf("REGRESSION (>%.0f%%)", *threshold*100)
				report.Pass = false
				report.Regressions = append(report.Regressions, name)
			} else {
				status = fmt.Sprintf("over +%.0f%% (informational: cpu mismatch)", *threshold*100)
			}
		}
		fmt.Printf("%-55s %12.1f ns/op  baseline %12.1f  ratio %5.2f  %s\n",
			name, got, baseNs, ratio, status)
	}
	// Ratio gates: hardware-independent quotients of two measured
	// benchmarks, robust to runner CPU changes.
	if len(base.Ratios) > 0 {
		report.Ratios = make(map[string]RatioResult)
	}
	for _, rg := range base.Ratios {
		num, okN := measured[rg.Num]
		den, okD := measured[rg.Den]
		if !okN || !okD {
			missing := rg.Num
			if okN {
				missing = rg.Den
			}
			fmt.Fprintf(os.Stderr, "benchgate: ratio gate %q: benchmark %q was not run\n", rg.Name, missing)
			report.Pass = false
			report.Regressions = append(report.Regressions, rg.Name+" (not run)")
			continue
		}
		ratio := num / den
		report.Ratios[rg.Name] = RatioResult{Numerator: num, Denominator: den, Ratio: ratio, Max: rg.Max}
		status := "ok"
		if ratio > rg.Max {
			status = fmt.Sprintf("RATIO REGRESSION (>%.3g)", rg.Max)
			report.Pass = false
			report.Regressions = append(report.Regressions, rg.Name)
		}
		fmt.Printf("%-55s %12.4f ratio     max %12.4f              %s\n", rg.Name, ratio, rg.Max, status)
	}
	for name, got := range measured {
		if _, gated := base.NsPerOp[name]; !gated {
			report.Ungated[name] = got
		}
	}

	if *outPath != "" {
		if err := writeJSON(*outPath, report); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	if !report.Pass {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s\n", strings.Join(report.Regressions, ", "))
		os.Exit(1)
	}
	fmt.Printf("benchgate: PASS (%d gated benchmarks within +%.0f%% of baseline, %d ratio gates)\n",
		len(report.Results), *threshold*100, len(report.Ratios))
}

// parseFiles extracts the fastest ns/op per benchmark name across all
// given `go test -bench` output files, plus the reported cpu model.
func parseFiles(paths []string) (map[string]float64, string, error) {
	out := make(map[string]float64)
	var cpu string
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
				cpu = strings.TrimSpace(rest)
				continue
			}
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			if prev, ok := out[m[1]]; !ok || ns < prev {
				out[m[1]] = ns
			}
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, "", err
		}
	}
	return out, cpu, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
