// Command cqalint runs the repo's custom analyzer suite (see
// internal/lint) over the given package patterns and exits non-zero if
// any finding survives the `//cqalint:allow` directives.
//
// Usage:
//
//	go run ./cmd/cqalint ./...
//	go run ./cmd/cqalint ./internal/memo ./internal/plan
//
// With no arguments it lints the whole module. Findings print as
// file:line:col: [analyzer] message. Pass -list to print the analyzer
// registry instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"cqa/internal/lint"
	"cqa/internal/lint/load"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, modPath, err := load.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqalint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(load.New(root, modPath), patterns, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqalint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cqalint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
