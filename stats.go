package cqa

import (
	"fmt"

	"cqa/internal/memo"
	"cqa/internal/plan"
)

// Stats is the engine's unified counter snapshot: one tree covering the
// plan cache and batch scheduler (Plans) and the per-snapshot artifact
// memos of every tier behind every cached plan (Memo). It replaces the
// former ad-hoc surfaces (Engine.CacheStats, plan.MemoStats, the
// per-tier BindingStats/EncodingStats), which now only feed it.
// Engine.Stats takes the snapshot; Registry.Stats and the serve
// daemon's /metrics endpoint extend the same tree with instance and
// router counters. The struct is JSON-serializable as written — the
// field tags are the wire contract of /metrics.
type Stats struct {
	Plans PlanStats `json:"plans"`
	Memo  MemoStats `json:"memo"`
	// Parallel counts decisions that engaged the partitioned
	// fixpoint/NL solver (see EngineConfig.SolveWorkers): Solves is the
	// number of solves or memoized NL builds that took the sharded
	// path, Shards the total constant-range shards they dispatched.
	// Zero everywhere means every decision ran single-core.
	Parallel ParallelStats `json:"parallel"`
	// Panics counts evaluation panics recovered into per-request errors
	// at the engine's context-aware entry points (see ErrPanic); on a
	// healthy deployment it stays zero.
	Panics uint64 `json:"panics"`
}

// PlanStats are the plan-cache and batch-scheduler counters.
type PlanStats struct {
	// Hits and Misses count Compile lookups since the engine was
	// created. The sharded CertainBatch looks each distinct word up
	// once per batch, not once per request.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Entries is the number of plans currently cached; an LRU cache
	// may hold fewer plans than were ever compiled.
	Entries int `json:"entries"`
	// Compiles counts plan compilations that finished executing. Every
	// miss leads to exactly one compilation (an evicted word looked up
	// again is a fresh miss and a fresh compilation), so at rest
	// Compiles == Misses; it is the number to report as "plans
	// compiled", which Entries — the current residency — is not.
	Compiles uint64 `json:"compiles"`
	// Shards counts the shards the sharded CertainBatch scheduler has
	// dispatched to evaluation workers.
	Shards uint64 `json:"shards"`
}

// MemoStats aggregate the per-snapshot artifact memos behind every plan
// still cached: the fixpoint binding memo, the NL artifact memos, and
// the coNP encoding memo. Plans evicted from the plan cache no longer
// contribute.
type MemoStats struct {
	// Hits are decisions served warm from a resident snapshot entry —
	// the quantity snapshot-affine routing exists to maximize.
	Hits uint64 `json:"hits"`
	// Misses are instance-bound artifact builds.
	Misses uint64 `json:"misses"`
	// Repairs are the misses served by a lineage repair — patching a
	// resident ancestor snapshot's artifact — instead of building cold.
	Repairs uint64 `json:"repairs"`
	// ColdBuilds = Misses - Repairs: from-scratch builds. On a warm
	// serving path this is the number that should stay flat.
	ColdBuilds uint64 `json:"cold_builds"`
	// MaxLineageDepth is the deepest snapshot delta chain any repair
	// crossed.
	MaxLineageDepth uint64 `json:"max_lineage_depth"`
}

// ParallelStats are the partitioned-solver counters, re-exported from
// the plan layer (which aliases the fixpoint package's type, keeping
// one definition and one set of JSON tags).
type ParallelStats = plan.ParallelStats

// memoStatsFrom converts the internal memo counters, materializing the
// derived ColdBuilds so every renderer (String, JSON, /metrics) agrees
// on it.
func memoStatsFrom(m memo.Stats) MemoStats {
	return MemoStats{
		Hits:            m.Hits,
		Misses:          m.Misses,
		Repairs:         m.Repairs,
		ColdBuilds:      m.ColdBuilds(),
		MaxLineageDepth: m.MaxLineageDepth,
	}
}

// Stats returns a snapshot of the engine's counters. It is safe to call
// concurrently with evaluation; the memo aggregation skips plans whose
// compilation is still in flight.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Stats{
		Plans: PlanStats{
			Hits:     e.hits,
			Misses:   e.miss,
			Entries:  e.order.Len(),
			Compiles: e.compiles.Load(),
			Shards:   e.shards.Load(),
		},
		Panics: e.panics.Load(),
	}
	var m memo.Stats
	for el := e.order.Front(); el != nil; el = el.Next() {
		if entry := el.Value.(*cacheEntry); entry.done.Load() {
			m = m.Add(entry.plan.MemoStats())
			s.Parallel = s.Parallel.Add(entry.plan.ParallelStats())
		}
	}
	s.Memo = memoStatsFrom(m)
	return s
}

// String renders the snapshot as three human-readable lines, one per
// subtree — the format `cqa batch -stats` prints (with a "# " comment
// prefix) and the serve daemon logs on drain.
func (s Stats) String() string {
	return fmt.Sprintf(
		"plans: %d compiled, %d cached, %d hits / %d misses, %d shards\n"+
			"memo: %d hits, %d repairs, %d cold builds, max lineage depth %d\n"+
			"parallel: %d solves, %d shards",
		s.Plans.Compiles, s.Plans.Entries, s.Plans.Hits, s.Plans.Misses, s.Plans.Shards,
		s.Memo.Hits, s.Memo.Repairs, s.Memo.ColdBuilds, s.Memo.MaxLineageDepth,
		s.Parallel.Solves, s.Parallel.Shards)
}

// Counter is one named monotonic counter of a Stats snapshot.
type Counter struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// Counters flattens the snapshot into named counters, in a stable
// order — the /metrics endpoint's text exposition and any scraper that
// prefers flat name/value pairs over the JSON tree.
func (s Stats) Counters() []Counter {
	return []Counter{
		{"plan_cache_hits", s.Plans.Hits},
		{"plan_cache_misses", s.Plans.Misses},
		{"plan_cache_entries", uint64(s.Plans.Entries)},
		{"plan_compiles", s.Plans.Compiles},
		{"batch_shards", s.Plans.Shards},
		{"memo_hits", s.Memo.Hits},
		{"memo_misses", s.Memo.Misses},
		{"memo_repairs", s.Memo.Repairs},
		{"memo_cold_builds", s.Memo.ColdBuilds},
		{"memo_max_lineage_depth", s.Memo.MaxLineageDepth},
		{"parallel_solves", s.Parallel.Solves},
		{"parallel_shards", s.Parallel.Shards},
		{"panics", s.Panics},
	}
}
