package cqa

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"cqa/internal/repairs"
	"cqa/internal/workload"
)

func TestEngineCacheHitMiss(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	db, _ := ParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	q := MustParseQuery("RRX")

	eng.Certain(q, db)
	if s := eng.Stats().Plans; s.Misses != 1 || s.Hits != 0 || s.Entries != 1 {
		t.Fatalf("after first call: %+v", s)
	}
	for i := 0; i < 5; i++ {
		eng.Certain(q, db)
	}
	if s := eng.Stats().Plans; s.Misses != 1 || s.Hits != 5 || s.Entries != 1 {
		t.Fatalf("after repeats: %+v", s)
	}
	// A different spelling of the same word hits the same plan.
	eng.Certain(MustParseQuery("R R X"), db)
	if s := eng.Stats().Plans; s.Misses != 1 || s.Hits != 6 {
		t.Fatalf("after respelled query: %+v", s)
	}
	// A new word misses.
	eng.Certain(MustParseQuery("RXRX"), db)
	if s := eng.Stats().Plans; s.Misses != 2 || s.Entries != 2 {
		t.Fatalf("after new query: %+v", s)
	}
}

func TestEngineCompileReturnsSamePlan(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	q := MustParseQuery("RRX")
	p1 := eng.Compile(q)
	p2 := eng.Compile(MustParseQuery("RRX"))
	if p1 != p2 {
		t.Error("repeated Compile of the same word must return the cached plan")
	}
	if p1.Class() != NL || p1.Method() != MethodNL {
		t.Errorf("plan: class=%v method=%v", p1.Class(), p1.Method())
	}
}

func TestEngineLRUEviction(t *testing.T) {
	eng := NewEngine(EngineConfig{PlanCacheSize: 2})
	db := NewInstance()
	for _, qs := range []string{"RRX", "RXRX", "RXRYRY"} {
		eng.Certain(MustParseQuery(qs), db)
	}
	if s := eng.Stats().Plans; s.Entries != 2 || s.Misses != 3 {
		t.Fatalf("after filling: %+v", s)
	}
	// RRX was least recently used and must have been evicted.
	eng.Certain(MustParseQuery("RRX"), db)
	if s := eng.Stats().Plans; s.Misses != 4 {
		t.Fatalf("evicted query must recompile: %+v", s)
	}
	// RXRYRY stayed (it was most recent before the RRX recompile).
	eng.Certain(MustParseQuery("RXRYRY"), db)
	if s := eng.Stats().Plans; s.Hits != 1 {
		t.Fatalf("recent query must hit: %+v", s)
	}
}

// TestPlanMatchesColdEvaluation checks that a reused plan decides
// exactly like a cold facade call on a spread of instances per class.
func TestPlanMatchesColdEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	eng := NewEngine(EngineConfig{})
	for _, qs := range []string{"RXRX", "RRX", "RRRRX", "RXRYRY", "ARRX"} {
		q := MustParseQuery(qs)
		p := eng.Compile(q)
		for it := 0; it < 40; it++ {
			db := randomSmallInstance(rng)
			got := p.Certain(db)
			want := repairs.IsCertain(db, q.Word())
			if got.Certain != want {
				t.Fatalf("q=%v it=%d db=%s: plan=%v exhaustive=%v", q, it, db, got.Certain, want)
			}
		}
	}
}

func randomSmallInstance(rng *rand.Rand) *Instance {
	db := NewInstance()
	n := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		rel := []string{"R", "X", "Y", "A"}[rng.Intn(4)]
		db.AddFact(rel, string(rune('a'+rng.Intn(4))), string(rune('a'+rng.Intn(4))))
	}
	return db
}

// TestCertainBatchMatchesSequential runs the generated-query workload
// through CertainBatch and checks every decision against the sequential
// facade.
func TestCertainBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	queries := []string{"RXRX", "RRX", "RXRYRY", "ARRX", "RR", "RX"}
	var reqs []Request
	for i := 0; i < 60; i++ {
		db := workload.Random(workload.Config{
			Relations:    []string{"R", "X", "Y", "A"},
			Constants:    4 + rng.Intn(6),
			Facts:        5 + rng.Intn(20),
			ConflictRate: 0.4,
			Seed:         int64(i),
		})
		reqs = append(reqs, Request{Query: MustParseQuery(queries[i%len(queries)]), DB: db})
	}
	eng := NewEngine(EngineConfig{Workers: 8})
	results := eng.CertainBatch(context.Background(), reqs)
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		want := Certain(reqs[i].Query, reqs[i].DB)
		if res.Certain != want.Certain || res.Class != want.Class || res.Method != want.Method {
			t.Errorf("request %d (q=%v): batch=%+v sequential=%+v", i, reqs[i].Query, res, want)
		}
	}
	if s := eng.Stats().Plans; s.Entries != len(queries) {
		t.Errorf("expected %d distinct plans, cache has %+v", len(queries), s)
	}
}

// TestCertainBatchSharedInstance exercises many concurrent evaluations
// over one shared *Instance (the memoized accessor views must be
// race-free; run with -race).
func TestCertainBatchSharedInstance(t *testing.T) {
	db := workload.Random(workload.Config{
		Relations:    []string{"R", "X", "Y"},
		Constants:    20,
		Facts:        60,
		ConflictRate: 0.3,
		Seed:         5,
	})
	var reqs []Request
	for i := 0; i < 32; i++ {
		reqs = append(reqs, Request{Query: MustParseQuery([]string{"RRX", "RXRYRY"}[i%2]), DB: db})
	}
	results := NewEngine(EngineConfig{Workers: 8}).CertainBatch(context.Background(), reqs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if i >= 2 && res.Certain != results[i%2].Certain {
			t.Errorf("request %d disagrees with request %d on the same instance", i, i%2)
		}
	}
}

func TestCertainBatchUnsoundForce(t *testing.T) {
	db, _ := ParseFacts("R(a,b)")
	reqs := []Request{
		{Query: MustParseQuery("RRX"), DB: db},
		{Query: MustParseQuery("ARRX"), DB: db, Options: Options{Force: MethodFO}},
	}
	results := CertainBatch(context.Background(), reqs)
	if results[0].Err != nil {
		t.Errorf("sound request errored: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("unsound forced tier must set Err")
	}
}

func TestCertainBatchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	db, _ := ParseFacts("R(a,b)")
	var reqs []Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, Request{Query: MustParseQuery("RRX"), DB: db})
	}
	for i, res := range DefaultEngine().CertainBatch(ctx, reqs) {
		if res.Err == nil {
			t.Errorf("request %d: want context error, got %+v", i, res)
		}
	}
}

func TestCertainBatchEmpty(t *testing.T) {
	if got := CertainBatch(context.Background(), nil); len(got) != 0 {
		t.Errorf("empty batch: %v", got)
	}
}

// skewedShardWorkload builds the sharded-scheduler stress mix: a few
// hot query words whose requests cycle over nInstances shared instances
// (scattered in input order, so only snapshot-affine dispatch serves
// the per-snapshot tier memos warm), plus a tail of distinct cold NL
// words whose plans are expensive to compile. reps is how many times
// each (hot word, instance) pair recurs.
func skewedShardWorkload(nInstances, facts, reps int) []Request {
	dbs := make([]*Instance, nInstances)
	for i := range dbs {
		dbs[i] = workload.Random(workload.Config{
			Relations:    []string{"R", "X", "Y"},
			Constants:    facts / 2,
			Facts:        facts,
			ConflictRate: 0.3,
			Seed:         int64(100 + i),
		})
	}
	hot := []Query{MustParseQuery("RRX"), MustParseQuery("RXRYRY")}
	var reqs []Request
	for i := 0; i < reps*len(hot)*nInstances; i++ {
		reqs = append(reqs, Request{
			Query: hot[i%len(hot)],
			DB:    dbs[(i/len(hot))%nInstances],
		})
	}
	for k := 3; k <= 8; k++ { // cold words R^kX, one request each
		reqs = append(reqs, Request{
			Query: MustParseQuery(strings.Repeat("R", k) + "X"),
			DB:    dbs[0],
		})
	}
	return reqs
}

func distinctWords(reqs []Request) int {
	seen := make(map[string]bool)
	for _, r := range reqs {
		seen[r.Query.String()] = true
	}
	return len(seen)
}

// TestCertainBatchShardedMatchesUnsharded checks the two-phase sharded
// scheduler against the pre-sharding per-request scheduler on a skewed
// word mix over shared instances: identical results in request order,
// and exactly one plan compilation per distinct word despite the
// concurrent compile pre-pass (run with -race and -cpu 1,4).
func TestCertainBatchShardedMatchesUnsharded(t *testing.T) {
	const nInstances = 8
	reqs := skewedShardWorkload(nInstances, 60, 3)
	sharded := NewEngine(EngineConfig{Workers: 8, CompileWorkers: 4, BatchShardSize: 4})
	unsharded := NewEngine(EngineConfig{Workers: 8, BatchShardSize: -1})

	got := sharded.CertainBatch(context.Background(), reqs)
	want := unsharded.CertainBatch(context.Background(), reqs)
	if len(got) != len(reqs) || len(want) != len(reqs) {
		t.Fatalf("result lengths: sharded=%d unsharded=%d reqs=%d", len(got), len(want), len(reqs))
	}
	for i := range got {
		if fmt.Sprintf("%+v", got[i]) != fmt.Sprintf("%+v", want[i]) {
			t.Errorf("request %d (q=%v):\n sharded   %+v\n unsharded %+v",
				i, reqs[i].Query, got[i], want[i])
		}
	}

	words := distinctWords(reqs)
	s := sharded.Stats().Plans
	if s.Compiles != uint64(words) || s.Misses != uint64(words) {
		t.Errorf("per-word compile count must be exactly 1: %+v for %d distinct words", s, words)
	}
	// One plan-cache lookup per distinct word, not per request.
	if s.Hits != 0 {
		t.Errorf("sharded batch must look each word up once: %+v", s)
	}
	if s.Shards == 0 {
		t.Errorf("no shards dispatched: %+v", s)
	}
	// Snapshot-affine dispatch: the PTIME-tier plan bound its interned
	// tables exactly once per instance, every other decision was a warm
	// memo hit.
	ms := sharded.Compile(MustParseQuery("RXRYRY")).MemoStats()
	if ms.Misses != nInstances {
		t.Errorf("fixpoint bindings built %d times for %d snapshots", ms.Misses, nInstances)
	}
}

// TestCertainBatchShardedCancellation cancels a sharded batch mid-run:
// every request must either carry the context error or agree exactly
// with an uncancelled reference run — no partial or stale decisions.
func TestCertainBatchShardedCancellation(t *testing.T) {
	reqs := skewedShardWorkload(4, 40, 8)
	ref := NewEngine(EngineConfig{BatchShardSize: 4}).CertainBatch(context.Background(), reqs)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(200 * time.Microsecond)
		cancel()
	}()
	got := NewEngine(EngineConfig{Workers: 4, BatchShardSize: 2}).CertainBatch(ctx, reqs)
	cancelled := 0
	for i, res := range got {
		if res.Err != nil {
			if !errors.Is(res.Err, context.Canceled) {
				t.Errorf("request %d: unexpected error %v", i, res.Err)
			}
			cancelled++
			continue
		}
		if fmt.Sprintf("%+v", res) != fmt.Sprintf("%+v", ref[i]) {
			t.Errorf("request %d diverges from reference:\n got %+v\nwant %+v", i, res, ref[i])
		}
	}
	t.Logf("cancelled %d/%d requests", cancelled, len(reqs))
}

// TestEngineConcurrentCompile hammers one engine from many goroutines
// mixing cache hits, misses, and evictions (run with -race).
func TestEngineConcurrentCompile(t *testing.T) {
	eng := NewEngine(EngineConfig{PlanCacheSize: 3})
	db, _ := ParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	words := []string{"RRX", "RXRX", "RXRYRY", "ARRX", "RR", "RX", "RRRRX"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				q := MustParseQuery(words[rng.Intn(len(words))])
				res := eng.Certain(q, db)
				if res.Err != nil {
					t.Errorf("unexpected Err: %v", res.Err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if s := eng.Stats().Plans; s.Entries > 3 {
		t.Errorf("cache exceeded capacity: %+v", s)
	}
}

func TestDefaultEngineBacksFacade(t *testing.T) {
	q := MustParseQuery(fmt.Sprintf("R%s", "XRYRY")) // avoid test-order-dependent cache state
	before := DefaultEngine().Stats().Plans
	db := NewInstance()
	Certain(q, db)
	Certain(q, db)
	after := DefaultEngine().Stats().Plans
	if after.Hits+after.Misses < before.Hits+before.Misses+2 {
		t.Errorf("facade calls must go through the default engine: before=%+v after=%+v", before, after)
	}
}

// TestInternedBindingInvalidation is the serving-path staleness check:
// a compiled plan memoizes its interned transition tables per instance
// snapshot, and a mutation of the instance must make the engine see the
// new state — the stale snapshot is unreachable because mutation
// publishes a fresh interned view.
func TestInternedBindingInvalidation(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	q := MustParseQuery("RXRYRY") // PTIME tier: interned fixpoint solver
	db := NewInstance()
	db.AddFact("R", "a", "b")

	res := eng.Certain(q, db)
	if res.Method != MethodFixpoint || res.Certain {
		t.Fatalf("lone R fact: res=%+v", res)
	}
	iv1 := db.Interned()

	// Grow the instance into a yes-instance of CERTAINTY(RXRYRY):
	// a consistent path a->b->c->d->e->f->g through R,X,R,Y,R,Y... use
	// exactly the query's relations.
	for i, rel := range []string{"X", "R", "Y", "R", "Y"} {
		db.AddFact(rel, string(rune('b'+i)), string(rune('c'+i)))
	}
	if db.Interned() == iv1 {
		t.Fatal("mutation did not publish a fresh interned snapshot")
	}
	res = eng.Certain(q, db)
	if !res.Certain {
		t.Fatalf("consistent full path must be certain: %+v", res)
	}

	// Mutate again (introduce a conflict that breaks certainty) and hit
	// the same plan concurrently: all readers must agree on the new
	// state. Run with -race in CI.
	db.AddFact("X", "b", "zz") // conflicting block X(b,*): repair may pick zz
	want := eng.Certain(q, db).Certain
	if want {
		t.Fatal("conflicting X(b,*) block should break certainty")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if eng.Certain(q, db).Certain != want {
					t.Error("stale result after mutation")
					return
				}
			}
		}()
	}
	wg.Wait()

	// The old snapshot still answers for its own state: results bound
	// to iv1 were not mutated in place.
	if iv1.NumFacts() != 1 {
		t.Errorf("old interned snapshot mutated: %d facts", iv1.NumFacts())
	}
}
