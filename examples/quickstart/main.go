// Quickstart: classify a path query, decide certainty on an inconsistent
// instance, and inspect the evidence the library returns.
package main

import (
	"fmt"

	"cqa"
)

func main() {
	// The query RRX: "some x has an R-successor whose R-successor has an
	// X-successor" — the running example of the paper (Figure 2).
	q := cqa.MustParseQuery("RRX")
	fmt.Println(cqa.Explain(q))

	// An inconsistent instance: the block R(1,*) holds two key-equal
	// facts, so there are two repairs.
	db, err := cqa.ParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
	if err != nil {
		panic(err)
	}
	fmt.Println("\ninstance:", db)
	fmt.Println("repairs :", cqa.CountRepairs(db))

	res := cqa.Certain(q, db)
	fmt.Printf("\nCERTAINTY(q): %v  (class %v, solved by %s)\n", res.Certain, res.Class, res.Method)
	fmt.Println("note:", res.Note)

	// A no-instance: drop the fact that makes the second repair work.
	db2, _ := cqa.ParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(2,9)")
	res2, _ := cqa.CertainOpt(q, db2, cqa.Options{WantCounterexample: true})
	fmt.Printf("\non %v: certain=%v\n", db2, res2.Certain)
	if res2.Counterexample != nil {
		fmt.Println("a repair falsifying q:", res2.Counterexample)
	}

	// FO-rewritable queries come with an executable first-order formula.
	if s, err := cqa.Rewrite(cqa.MustParseQuery("RR")); err == nil {
		fmt.Println("\nconsistent FO rewriting of RR:", s)
	}
}
