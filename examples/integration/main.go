// Data-integration scenario: two overlapping sources are merged, primary
// keys break, and consistent query answering extracts the answers that
// hold no matter how the conflicts are resolved — the motivating use
// case from the paper's introduction.
//
// Schema (all binary, first position is the key):
//
//	WorksAt(person, company)   — person's employer
//	BasedIn(company, city)     — company headquarters
//	Mayor(city, person)        — the city's mayor
//
// Path query: WorksAt · BasedIn · Mayor — "some person works at a
// company based in a city that has a mayor". With per-person answers we
// use generalized queries with constants (Section 8 of the paper).
package main

import (
	"fmt"

	"cqa"
	"cqa/internal/conp"
	"cqa/internal/genq"
	"cqa/internal/instance"
	"cqa/internal/words"
)

func main() {
	db := cqa.NewInstance()
	// Source 1.
	db.AddFact("WorksAt", "alice", "initech")
	db.AddFact("WorksAt", "bob", "globex")
	db.AddFact("BasedIn", "initech", "springfield")
	db.AddFact("BasedIn", "globex", "cypress_creek")
	db.AddFact("Mayor", "springfield", "quimby")
	// Source 2 disagrees on Alice's employer and Globex's city.
	db.AddFact("WorksAt", "alice", "hooli")
	db.AddFact("BasedIn", "globex", "springfield")
	db.AddFact("BasedIn", "hooli", "springfield")

	fmt.Println("merged instance:", db)
	fmt.Println("conflicting blocks:", db.ConflictingBlocks())
	fmt.Println("repairs:", cqa.CountRepairs(db))

	q := cqa.MustParseQuery("WorksAt BasedIn Mayor")
	fmt.Printf("\nq = %v is %v\n", q, cqa.Classify(q))
	res := cqa.Certain(q, db)
	fmt.Printf("CERTAINTY(q): %v (solved by %s)\n", res.Certain, res.Method)

	// Per-person consistent answers: anchor the query at each person
	// constant — free variables behave like constants (Section 8).
	fmt.Println("\nconsistent per-person answers (every repair supports):")
	for _, person := range []string{"alice", "bob"} {
		gq := genq.MustParse(fmt.Sprintf(
			"WorksAt('%s',c) BasedIn(c,t) Mayor(t,m)", person))
		ok := genq.IsCertain(db, gq, func(d *instance.Instance, w words.Word) bool {
			return conp.IsCertain(d, w).Certain
		})
		fmt.Printf("  %-6s -> %v\n", person, ok)
	}
	// Alice certainly works somewhere based in a mayored city (both her
	// candidate employers end up in springfield); Bob does not: the
	// repair sending globex to cypress_creek (no mayor) refutes him.
}
