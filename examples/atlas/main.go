// Atlas: enumerate every path query up to a given length and chart the
// tetrachotomy of Theorem 2 — how many queries are FO, NL-complete,
// PTIME-complete and coNP-complete, per length and alphabet size — with
// the shortest representatives of each class.
package main

import (
	"flag"
	"fmt"

	"cqa"
	"cqa/internal/classify"
	"cqa/internal/words"
)

func main() {
	maxLen := flag.Int("len", 7, "maximum query length")
	alpha := flag.Int("alpha", 2, "alphabet size (2 or 3)")
	flag.Parse()

	symbols := []string{"R", "X", "Y"}[:*alpha]
	perLen := map[int]map[cqa.Class]int{}
	shortest := map[cqa.Class]words.Word{}

	var rec func(cur words.Word)
	rec = func(cur words.Word) {
		if len(cur) > 0 {
			cls := classify.Classify(cur)
			if perLen[len(cur)] == nil {
				perLen[len(cur)] = map[cqa.Class]int{}
			}
			perLen[len(cur)][cls]++
			if w, ok := shortest[cls]; !ok || len(cur) < len(w) {
				shortest[cls] = cur.Clone()
			}
		}
		if len(cur) == *maxLen {
			return
		}
		for _, s := range symbols {
			rec(append(cur, s))
		}
	}
	rec(words.Word{})

	fmt.Printf("Tetrachotomy census over alphabet %v, lengths 1..%d\n\n", symbols, *maxLen)
	fmt.Printf("%6s %10s %10s %10s %10s\n", "len", "FO", "NL", "PTIME", "coNP")
	for l := 1; l <= *maxLen; l++ {
		c := perLen[l]
		fmt.Printf("%6d %10d %10d %10d %10d\n",
			l, c[cqa.FO], c[cqa.NL], c[cqa.PTime], c[cqa.CoNP])
	}
	fmt.Println("\nshortest representatives:")
	for _, cls := range []cqa.Class{cqa.FO, cqa.NL, cqa.PTime, cqa.CoNP} {
		if w, ok := shortest[cls]; ok {
			fmt.Printf("  %-16v %v\n", cls, w)
		} else {
			fmt.Printf("  %-16v (none up to length %d)\n", cls, *maxLen)
		}
	}

	// Show the evidence for one query of each class.
	fmt.Println("\nwitness reports:")
	for _, qs := range []string{"RXRX", "RRX", "RXRYRY", "ARRX"} {
		fmt.Println(classify.Explain(words.MustParse(qs)))
	}
}
