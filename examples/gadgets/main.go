// Gadgets: build the paper's three hardness reductions on concrete
// source problems and watch the equivalences hold — REACHABILITY
// (Lemma 18), SAT (Lemma 19) and the Monotone Circuit Value Problem
// (Lemma 20) all become certainty questions about inconsistent
// databases.
package main

import (
	"fmt"

	"cqa"
	"cqa/internal/circuits"
	"cqa/internal/graphs"
	"cqa/internal/reductions"
)

func main() {
	// --- Lemma 18: reachability as co-certainty of RRX ---------------
	g := graphs.New()
	g.AddEdge("s", "a").AddEdge("a", "t").AddEdge("b", "t")
	q := cqa.MustParseQuery("RRX")
	db, err := reductions.FromReachability(q.Word(), g, "s", "t")
	if err != nil {
		panic(err)
	}
	res := cqa.Certain(q, db)
	fmt.Printf("Lemma 18: s→t reachable=%v, instance certain=%v (%d facts)\n",
		g.Reachable("s", "t"), res.Certain, db.Size())
	fmt.Println("          reachable ⟺ NOT certain:", g.Reachable("s", "t") == !res.Certain)

	// --- Lemma 19: SAT as co-certainty of ARRX -----------------------
	f := reductions.Figure9CNF()
	qc := cqa.MustParseQuery("ARRX")
	db2, err := reductions.FromSAT(qc.Word(), f)
	if err != nil {
		panic(err)
	}
	res2, _ := cqa.CertainOpt(qc, db2, cqa.Options{WantCounterexample: true})
	fmt.Printf("\nLemma 19: ψ satisfiable=%v, instance certain=%v (%d facts)\n",
		f.Satisfiable(), res2.Certain, db2.Size())
	fmt.Println("          the counterexample repair encodes a satisfying assignment:")
	fmt.Println("         ", res2.Counterexample)

	// --- Lemma 20: circuit evaluation as certainty of RXRYRY ---------
	c := circuits.New("o")
	c.AddInput("x1").AddInput("x2").AddInput("x3")
	c.AddAnd("g1", "x1", "x2")
	c.AddOr("o", "g1", "x3")
	qp := cqa.MustParseQuery("RXRYRY")
	for _, sigma := range []map[string]bool{
		{"x1": true, "x2": true, "x3": false},
		{"x1": true, "x2": false, "x3": false},
	} {
		db3, err := reductions.FromMCVP(qp.Word(), c, sigma)
		if err != nil {
			panic(err)
		}
		res3 := cqa.Certain(qp, db3)
		fmt.Printf("\nLemma 20: circuit value under σ=%v is %v; instance certain=%v (%d facts)\n",
			sigma, c.Value(sigma), res3.Certain, db3.Size())
	}
}
