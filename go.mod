module cqa

go 1.24
