package cqa

import (
	"context"
	"errors"
	"testing"

	"cqa/internal/faultinject"
)

// TestEnginePanicIsolation checks the recover() boundary at the
// engine's context-aware entry points: an injected panic inside a
// decision becomes a per-request ErrPanic, the Panics counter records
// it, and the engine keeps serving correct decisions afterwards.
func TestEnginePanicIsolation(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	eng := NewEngine(EngineConfig{})
	db := churnInstance(3)
	q := MustParseQuery("ARRX")

	// Reference decision before any fault is armed.
	want := eng.Certain(q, db).Certain

	faultinject.Enable(faultinject.SATSolve, 1, false)
	if _, err := eng.CertainCtx(context.Background(), q, db); !errors.Is(err, ErrPanic) {
		t.Fatalf("CertainCtx under injected SAT fault: got %v, want ErrPanic", err)
	}
	if got := eng.Stats().Panics; got != 1 {
		t.Fatalf("Stats.Panics = %d, want 1", got)
	}
	faultinject.Disable(faultinject.SATSolve)

	// The engine, the plan, and the memoized encoding all survived.
	res, err := eng.CertainCtx(context.Background(), q, db)
	if err != nil {
		t.Fatalf("decision after recovered panic: %v", err)
	}
	if res.Certain != want {
		t.Fatalf("decision after recovered panic = %v, want %v", res.Certain, want)
	}
}

// TestCertainBatchPanicIsolation: a panicking request inside a batch
// errors only its own slot; the other requests decide normally.
func TestCertainBatchPanicIsolation(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	eng := NewEngine(EngineConfig{Workers: 2})
	db := churnInstance(4)
	qSAT := MustParseQuery("ARRX")
	qNL := MustParseQuery("RRX")
	wantNL := eng.Certain(qNL, db).Certain

	// Fire on every second SAT solve: of the two ARRX requests below,
	// exactly one panics.
	faultinject.Enable(faultinject.SATSolve, 2, false)
	out := eng.CertainBatch(context.Background(), []Request{
		{Query: qSAT, DB: db},
		{Query: qSAT, DB: db},
		{Query: qNL, DB: db},
	})
	faultinject.Disable(faultinject.SATSolve)

	var panicked int
	for i, r := range out[:2] {
		if r.Err != nil {
			if !errors.Is(r.Err, ErrPanic) {
				t.Fatalf("request %d: got %v, want ErrPanic", i, r.Err)
			}
			panicked++
		}
	}
	if panicked != 1 {
		t.Fatalf("panicked requests = %d, want exactly 1 (every=2, two SAT solves)", panicked)
	}
	if out[2].Err != nil || out[2].Certain != wantNL {
		t.Fatalf("unrelated request poisoned by sibling panic: %+v", out[2])
	}
	if got := eng.Stats().Panics; got != 1 {
		t.Fatalf("Stats.Panics = %d, want 1", got)
	}
}

// TestEngineMemoScale: the soft-memory-watermark hook scales every
// built tier's memo budget down and back up without disturbing
// decisions, and applies to plans compiled while degraded.
func TestEngineMemoScale(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	db := churnInstance(5)
	words := []string{"RRX", "RXRYRY", "ARRX"}
	want := make(map[string]bool)
	for _, w := range words {
		want[w] = eng.Certain(MustParseQuery(w), db).Certain
	}

	eng.SetMemoScale(0.25)
	if got := eng.MemoScale(); got != 0.25 {
		t.Fatalf("MemoScale = %g, want 0.25", got)
	}
	// A plan compiled while degraded starts with shrunk budgets.
	degradedPlan := eng.Compile(MustParseQuery("RXRXRRX"))
	_ = degradedPlan
	for _, w := range words {
		if got := eng.Certain(MustParseQuery(w), db).Certain; got != want[w] {
			t.Fatalf("%s under degraded memos = %v, want %v", w, got, want[w])
		}
	}
	eng.SetMemoScale(1)
	if got := eng.MemoScale(); got != 1 {
		t.Fatalf("MemoScale after restore = %g, want 1", got)
	}
	for _, w := range words {
		if got := eng.Certain(MustParseQuery(w), db).Certain; got != want[w] {
			t.Fatalf("%s after restore = %v, want %v", w, got, want[w])
		}
	}
}
