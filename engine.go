// Engine: compiled-plan evaluation with caching and batching.
//
// # Quickstart
//
// The free functions Certain and CertainOpt are all most programs need;
// they run on a shared package-level Engine, so repeated queries reuse
// compiled plans automatically:
//
//	q := cqa.MustParseQuery("RRX")
//	db, _ := cqa.ParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
//	res := cqa.Certain(q, db) // compiles (and caches) the plan for RRX
//
// A dedicated Engine gives control over the plan-cache size and the
// batch worker pool:
//
//	eng := cqa.NewEngine(cqa.EngineConfig{PlanCacheSize: 128, Workers: 8})
//	p := eng.Compile(q)             // classification + tier artifacts, once
//	res = p.Certain(db)             // per-instance work only
//	fmt.Println(eng.Stats())        // unified counter snapshot (stats.go)
//
// For serving-style workloads — many (query, instance) pairs in flight
// at once — CertainBatch evaluates requests on a worker pool, sharing
// one compiled plan per distinct query word:
//
//	reqs := []cqa.Request{{Query: q, DB: db1}, {Query: q, DB: db2}}
//	for _, r := range eng.CertainBatch(ctx, reqs) {
//		if r.Err != nil { ... }     // cancelled or unsound forced tier
//	}
//
// # Sharded batch scheduling
//
// CertainBatch is a two-phase sharded scheduler. A pre-pass groups the
// requests by query word and compiles every distinct word's plan
// concurrently (bounded by EngineConfig.CompileWorkers), off the
// evaluation workers' critical path — a worker never sits inside
// plan.Compile while runnable requests wait behind it, which matters
// when one cold word's compilation (e.g. the DFA certification of an NL
// decomposition) would otherwise stall a whole chunk. Evaluation then
// dispatches shards — a compiled plan plus a run of request indexes,
// reordered within each word so requests against the same instance are
// consecutive (capped at EngineConfig.BatchShardSize per shard). Since
// the tiers memoize their instance-bound artifacts per interned
// snapshot, snapshot-affine runs landing on one worker turn what would
// be contended build-once memo entries into warm hits: each (plan,
// snapshot) pair builds its binding, CNF, or NL artifacts exactly once
// per batch instead of racing — or, past the memo's LRU bound,
// thrashing — across scattered workers. Results are returned in request
// order regardless of shard order. BatchShardSize < 0 disables sharding
// and restores the legacy per-request scheduler, kept for A/B
// comparison (BenchmarkCertainBatchSharded gates the sharded scheduler
// against it).
//
// Compiling a plan runs the Theorem 3 classification once and
// precomputes the dispatched tier's machinery — the Lemma 13 FO
// rewriting, the certified Section 6.3 loop decomposition, or the
// Figure 5 fixpoint tables — so only instance-dependent work remains
// per call (see internal/plan). Plans are immutable; one plan may serve
// any number of goroutines concurrently.
//
// # Interned evaluation
//
// The NL and PTIME tiers evaluate on the instance's interned view
// (Instance.Interned): the active domain and relation names are
// interned to dense integer ids once per instance state, and the
// solvers run entirely on slice-indexed state — the Figure 5 fixpoint
// on a bitset relation with a CSR successor index, the Section 6.3
// loop procedure on bitset predicates over a CSR loop-step graph. On
// top of the interned view, each compiled plan memoizes its
// instance-bound artifacts per (plan, instance) pair, keyed by the
// interned snapshot pointer in a bounded LRU. Mutating an instance
// publishes a fresh snapshot, so stale artifacts are unreachable by
// construction — serving workloads that re-query the same instance pay
// the build once and then do only per-call decision work (for the NL
// tier, a scan of the memoized Lemma 14 predicate).
//
// # Contexts and serving
//
// Every evaluation entry point has a context-aware twin — CertainCtx,
// CertainOptCtx, Plan.ExecuteCtx — that checks cancellation before
// dispatch and polls it inside the long-running tiers (the batch
// dispatcher between requests, the SAT search loop between conflicts).
// The context-free forms are thin wrappers over context.Background().
//
// For resident deployments, a Registry holds named, long-lived
// instances behind per-instance read-write locks: queries evaluate
// under the read lock, Registry.Mutate publishes one new interned
// snapshot per batch under the write lock, and the tier memos repair
// that snapshot from its parent on the next decision instead of
// rebuilding. The `cqa serve` daemon (internal/server) exposes a
// Registry over HTTP/NDJSON with a persistent shard router that pins
// every instance's operations to one resident worker goroutine, so
// streams stay memo-warm across requests and connections; see
// docs/serving.md for the wire protocol and lifecycle.
package cqa

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"cqa/internal/plan"
)

// ErrPanic wraps a panic recovered at an evaluation boundary: the
// context-aware entry points (CertainCtx, CertainOptCtx, the
// CertainBatch workers) convert a panicking decision into a
// per-request error instead of killing the process, incrementing
// Stats.Panics. The panic value's rendering is wrapped into the error
// message.
var ErrPanic = errors.New("cqa: evaluation panicked")

// Plan is a compiled execution plan for one path query: the Theorem 3
// classification plus the precomputed artifacts of its solver tier.
// Plans are immutable and safe for concurrent use.
type Plan = plan.Plan

// EngineConfig tunes an Engine.
type EngineConfig struct {
	// PlanCacheSize bounds the number of compiled plans kept in the
	// LRU cache. 0 means DefaultPlanCacheSize.
	PlanCacheSize int
	// Workers is the number of evaluation goroutines CertainBatch
	// runs. 0 means runtime.GOMAXPROCS(0).
	Workers int
	// CompileWorkers bounds how many distinct query words the
	// CertainBatch pre-pass compiles concurrently. 0 means Workers, so
	// by default plan compilation is bounded by the same pool size as
	// evaluation.
	CompileWorkers int
	// BatchShardSize caps how many requests one CertainBatch shard
	// carries. Larger shards maximize snapshot affinity and minimize
	// dispatch overhead; smaller shards balance load across workers.
	// 0 means DefaultBatchShardSize. A negative value disables
	// sharding entirely: requests dispatch one index at a time and
	// plans compile on the evaluation workers (the pre-sharding
	// scheduler, kept for A/B comparison).
	BatchShardSize int
	// SolveWorkers is the intra-query worker count for the partitioned
	// fixpoint/NL passes on giant instances (see Options.SolveWorkers).
	// 0 means runtime.GOMAXPROCS(0); 1 disables intra-query parallelism.
	SolveWorkers int
	// ParallelThreshold is the minimum interned fact count at which a
	// decision engages SolveWorkers. 0 means DefaultParallelThreshold; a
	// negative value forces the partitioned path on every non-empty
	// instance (used by equivalence tests and calibration runs).
	ParallelThreshold int
}

// DefaultPlanCacheSize is the plan-cache bound used when
// EngineConfig.PlanCacheSize is 0.
const DefaultPlanCacheSize = 256

// DefaultBatchShardSize is the per-shard request cap used when
// EngineConfig.BatchShardSize is 0.
const DefaultBatchShardSize = 32

// DefaultParallelThreshold is the fact count above which decisions
// engage the partitioned solver when EngineConfig.ParallelThreshold is
// 0. Below it the per-round fork/merge overhead of the sharded passes
// exceeds the whole solve; the default is calibrated so the crossover
// sits safely inside the single-core regime on commodity cores.
const DefaultParallelThreshold = 1 << 16

// Engine evaluates CERTAINTY(q, db) through an LRU cache of compiled
// plans keyed by the query word, plus a worker pool for batch
// evaluation. The zero value is not usable; construct with NewEngine.
// An Engine is safe for concurrent use.
type Engine struct {
	capacity       int
	workers        int
	compileWorkers int
	shardSize      int // < 0: sharding disabled (legacy scheduler)
	solveWorkers   int
	parThreshold   int // 0: engage on any non-empty instance (forced)

	// compiles counts plan.Compile executions, shards batch shards
	// dispatched; both are incremented outside the cache lock.
	compiles atomic.Uint64
	shards   atomic.Uint64
	// panics counts evaluation panics recovered into per-request errors
	// (see ErrPanic).
	panics atomic.Uint64
	// memoScale is the current soft-memory-watermark scale as float64
	// bits (1.0 at rest); see SetMemoScale.
	memoScale atomic.Uint64

	mu    sync.Mutex
	order *list.List // *cacheEntry, front = most recently used
	index map[string]*list.Element
	hits  uint64
	miss  uint64
}

// cacheEntry compiles its plan at most once; concurrent requests for
// the same fresh query block on the entry, not on the whole cache.
// done flips after compilation so stats readers can reach the plan
// without joining an in-flight compile.
type cacheEntry struct {
	key  string
	once sync.Once
	plan *Plan
	word Query
	done atomic.Bool
}

// NewEngine returns an Engine with the given configuration.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.PlanCacheSize <= 0 {
		cfg.PlanCacheSize = DefaultPlanCacheSize
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CompileWorkers <= 0 {
		cfg.CompileWorkers = cfg.Workers
	}
	if cfg.BatchShardSize == 0 {
		cfg.BatchShardSize = DefaultBatchShardSize
	}
	if cfg.SolveWorkers <= 0 {
		cfg.SolveWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.ParallelThreshold == 0 {
		cfg.ParallelThreshold = DefaultParallelThreshold
	} else if cfg.ParallelThreshold < 0 {
		cfg.ParallelThreshold = 0
	}
	e := &Engine{
		capacity:       cfg.PlanCacheSize,
		workers:        cfg.Workers,
		compileWorkers: cfg.CompileWorkers,
		shardSize:      cfg.BatchShardSize,
		solveWorkers:   cfg.SolveWorkers,
		parThreshold:   cfg.ParallelThreshold,
		order:          list.New(),
		index:          make(map[string]*list.Element),
	}
	e.memoScale.Store(math.Float64bits(1))
	return e
}

// SetMemoScale sets every cached plan's per-snapshot memo budgets to
// scale × their compile-time defaults, and remembers the scale for
// plans compiled later. This is the serving layer's soft-memory
// watermark: under heap pressure the daemon shrinks the tier memos so
// decisions degrade to cold builds instead of the process growing
// toward an OOM kill; scale >= 1 restores the defaults. Safe to call
// concurrently with evaluation.
func (e *Engine) SetMemoScale(scale float64) {
	if scale < 0 {
		scale = 0
	}
	e.memoScale.Store(math.Float64bits(scale))
	// Collect the finished plans under the cache lock, apply outside it:
	// SetMemoScale evicts under each memo's own lock and must not hold
	// the engine lock while doing so.
	e.mu.Lock()
	plans := make([]*Plan, 0, e.order.Len())
	for el := e.order.Front(); el != nil; el = el.Next() {
		if entry := el.Value.(*cacheEntry); entry.done.Load() {
			plans = append(plans, entry.plan)
		}
	}
	e.mu.Unlock()
	for _, p := range plans {
		p.SetMemoScale(scale)
	}
}

// MemoScale returns the current soft-memory-watermark scale (1.0 at
// rest).
func (e *Engine) MemoScale() float64 {
	return math.Float64frombits(e.memoScale.Load())
}

// Compile returns the cached plan for q, compiling it on first use.
func (e *Engine) Compile(q Query) *Plan {
	key := q.String()
	e.mu.Lock()
	if el, ok := e.index[key]; ok {
		e.order.MoveToFront(el)
		e.hits++
		entry := el.Value.(*cacheEntry)
		e.mu.Unlock()
		return e.compileEntry(entry)
	}
	e.miss++
	entry := &cacheEntry{key: key, word: q}
	e.index[key] = e.order.PushFront(entry)
	for e.order.Len() > e.capacity {
		oldest := e.order.Back()
		e.order.Remove(oldest)
		delete(e.index, oldest.Value.(*cacheEntry).key)
	}
	e.mu.Unlock()
	return e.compileEntry(entry)
}

// compileEntry runs the entry's at-most-once compilation outside the
// cache lock: a slow compilation (e.g. the DFA certification of an NL
// decomposition) must not serialize the whole engine. Plans already
// evicted remain usable by holders.
func (e *Engine) compileEntry(entry *cacheEntry) *Plan {
	entry.once.Do(func() {
		entry.plan = plan.Compile(entry.word.Word())
		if scale := e.MemoScale(); scale < 1 {
			// Born under memory pressure: start with shrunk memo budgets
			// rather than defaults the watermark would claw back anyway.
			entry.plan.SetMemoScale(scale)
		}
		e.compiles.Add(1)
		entry.done.Store(true)
	})
	return entry.plan
}

// execute runs one decision with a recover() boundary: a panicking
// evaluation — a bug, or an injected fault in the chaos soak — becomes
// a per-request ErrPanic instead of killing the process, and the
// panics counter records it. The deferred recover costs nothing on the
// non-panicking path.
func (e *Engine) execute(ctx context.Context, p *Plan, db *Instance, opts Options) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.panics.Add(1)
			err = fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	// Fill the parallelism knobs a caller left at zero from the engine
	// configuration; an explicit per-request value (e.g. SolveWorkers 1
	// to pin a decision single-core) passes through untouched.
	if opts.SolveWorkers == 0 {
		opts.SolveWorkers = e.solveWorkers
	}
	if opts.ParallelThreshold == 0 {
		opts.ParallelThreshold = e.parThreshold
	}
	return p.ExecuteCtx(ctx, db, opts)
}

// Certain decides CERTAINTY(q) on db with automatic tier dispatch,
// reusing the cached plan for q.
func (e *Engine) Certain(q Query, db *Instance) Result {
	return e.Compile(q).Certain(db)
}

// CertainOpt decides CERTAINTY(q) on db with explicit options, reusing
// the cached plan for q.
func (e *Engine) CertainOpt(q Query, db *Instance, opts Options) (Result, error) {
	return e.Compile(q).Execute(db, opts)
}

// CertainCtx is Certain bounded by a context. Cancellation is polled
// inside the coNP tier's CDCL search loop — the only place a single
// decision can run long — so canceling ctx releases a caller stuck in
// a hard SAT instance; the other tiers finish their (micro-second)
// decision and return it. On cancellation the error is ctx.Err() and
// the Result carries no decision. Compiled plans and memoized solver
// state survive a cancellation: a retry resumes warm, with everything
// the interrupted solve learned.
// A panicking decision is recovered into a per-request ErrPanic (see
// execute); the context-free twins propagate panics unchanged.
func (e *Engine) CertainCtx(ctx context.Context, q Query, db *Instance) (Result, error) {
	return e.execute(ctx, e.Compile(q), db, Options{})
}

// CertainOptCtx is CertainOpt bounded by a context; see CertainCtx for
// the cancellation and panic-isolation contract.
func (e *Engine) CertainOptCtx(ctx context.Context, q Query, db *Instance, opts Options) (Result, error) {
	return e.execute(ctx, e.Compile(q), db, opts)
}

// Request is one (query, instance) pair of a batch.
type Request struct {
	Query   Query
	DB      *Instance
	Options Options
}

// CertainBatch evaluates all requests concurrently on the engine's
// worker pool and returns one Result per request, in request order.
// Distinct requests for the same query word share a single compiled
// plan; see the package comment for the two-phase sharded scheduling
// (disable it with EngineConfig.BatchShardSize < 0). A request that
// cannot be evaluated — its options force an unsound tier, or ctx is
// cancelled before it runs — gets its Err field set instead of a
// decision; the remaining requests are unaffected.
func (e *Engine) CertainBatch(ctx context.Context, reqs []Request) []Result {
	out := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if e.shardSize < 0 {
		e.certainBatchUnsharded(ctx, reqs, out)
	} else {
		e.certainBatchSharded(ctx, reqs, out)
	}
	return out
}

// batchShard is one unit of sharded dispatch: a compiled plan plus a
// snapshot-affine run of request indexes.
type batchShard struct {
	plan *Plan
	idxs []int
}

// batchGroup is the pre-pass grouping of a batch: all request indexes
// sharing one query word, in input order until affineOrder regroups
// them into per-instance runs.
type batchGroup struct {
	query Query
	idxs  []int
}

// certainBatchSharded is the two-phase scheduler: compile workers pull
// word groups, resolve each group's plan (concurrently across groups,
// at most once per word via the plan cache), cut the group into
// snapshot-affine shards, and feed them to the evaluation workers — so
// evaluation never blocks inside plan.Compile, and requests against the
// same interned snapshot run consecutively, hitting the tier memos warm.
func (e *Engine) certainBatchSharded(ctx context.Context, reqs []Request, out []Result) {
	byWord := make(map[string]*batchGroup)
	var groups []*batchGroup
	for i, r := range reqs {
		key := r.Query.String()
		g := byWord[key]
		if g == nil {
			g = &batchGroup{query: r.Query}
			byWord[key] = g
			groups = append(groups, g)
		}
		g.idxs = append(g.idxs, i)
	}
	for _, g := range groups {
		g.idxs = affineOrder(reqs, g.idxs)
	}

	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	shardCh := make(chan batchShard)
	var evalWG sync.WaitGroup
	evalWG.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer evalWG.Done()
			for sh := range shardCh {
				for _, i := range sh.idxs {
					if err := ctx.Err(); err != nil {
						out[i].Err = err
						continue
					}
					res, err := e.execute(ctx, sh.plan, reqs[i].DB, reqs[i].Options)
					res.Err = err
					out[i] = res
				}
			}
		}()
	}

	// Compile phase: groups are claimed by an atomic cursor so a slow
	// compilation holds back only its own group's shards; every other
	// word keeps flowing to the evaluation workers. On cancellation the
	// remaining groups are still drained, so every undispatched request
	// gets its Err set exactly once.
	compilers := e.compileWorkers
	if compilers > len(groups) {
		compilers = len(groups)
	}
	var cursor atomic.Int64
	var compileWG sync.WaitGroup
	compileWG.Add(compilers)
	for c := 0; c < compilers; c++ {
		go func() {
			defer compileWG.Done()
			for {
				n := int(cursor.Add(1)) - 1
				if n >= len(groups) {
					return
				}
				g := groups[n]
				if err := ctx.Err(); err != nil {
					for _, i := range g.idxs {
						out[i].Err = err
					}
					continue
				}
				p := e.Compile(g.query)
				for lo := 0; lo < len(g.idxs); {
					hi := lo + e.shardSize
					if hi > len(g.idxs) {
						hi = len(g.idxs)
					}
					select {
					case shardCh <- batchShard{plan: p, idxs: g.idxs[lo:hi]}:
						e.shards.Add(1)
						lo = hi
					case <-ctx.Done():
						for _, i := range g.idxs[lo:] {
							out[i].Err = ctx.Err()
						}
						lo = len(g.idxs)
					}
				}
			}
		}()
	}
	compileWG.Wait()
	close(shardCh)
	evalWG.Wait()
}

// affineOrder regroups one word group's request indexes so indexes
// sharing an instance are consecutive (runs ordered by first
// appearance, stable within a run). Same *Instance means same interned
// snapshot for the duration of the batch, so consecutive dispatch turns
// the per-snapshot tier memos into warm hits instead of contended — or,
// past the memo LRU bound, thrashing — build-once entries.
func affineOrder(reqs []Request, idxs []int) []int {
	if len(idxs) < 2 {
		return idxs
	}
	runs := make(map[*Instance][]int)
	var order []*Instance
	for _, i := range idxs {
		db := reqs[i].DB
		if _, ok := runs[db]; !ok {
			order = append(order, db)
		}
		runs[db] = append(runs[db], i)
	}
	if len(order) == len(idxs) {
		return idxs // no instance appears twice; input order is affine
	}
	affine := idxs[:0]
	for _, db := range order {
		affine = append(affine, runs[db]...)
	}
	return affine
}

// certainBatchUnsharded is the pre-sharding scheduler: one request
// index at a time through a shared channel, plans compiled by whichever
// evaluation worker draws the first request for a word. Selected by
// EngineConfig.BatchShardSize < 0; kept for A/B comparison against the
// sharded scheduler.
func (e *Engine) certainBatchUnsharded(ctx context.Context, reqs []Request, out []Result) {
	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					out[i].Err = err
					continue
				}
				res, err := e.CertainOptCtx(ctx, reqs[i].Query, reqs[i].DB, reqs[i].Options)
				res.Err = err
				out[i] = res
			}
		}()
	}
	sent := 0
feed:
	for i := range reqs {
		select {
		case idx <- i:
			sent = i + 1
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := sent; i < len(reqs); i++ {
			out[i].Err = err
		}
	}
}

// defaultEngine backs the package-level Certain/CertainOpt/CertainBatch
// facade.
var defaultEngine = NewEngine(EngineConfig{})

// DefaultEngine returns the shared engine behind the package-level
// facade functions.
func DefaultEngine() *Engine { return defaultEngine }

// CompilePlan compiles (and caches on the default engine) the plan for
// q.
func CompilePlan(q Query) *Plan { return defaultEngine.Compile(q) }

// CertainBatch evaluates the requests concurrently on the default
// engine; see Engine.CertainBatch.
func CertainBatch(ctx context.Context, reqs []Request) []Result {
	return defaultEngine.CertainBatch(ctx, reqs)
}
