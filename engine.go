// Engine: compiled-plan evaluation with caching and batching.
//
// # Quickstart
//
// The free functions Certain and CertainOpt are all most programs need;
// they run on a shared package-level Engine, so repeated queries reuse
// compiled plans automatically:
//
//	q := cqa.MustParseQuery("RRX")
//	db, _ := cqa.ParseFacts("R(0,1) R(1,2) R(1,3) R(2,3) X(3,4)")
//	res := cqa.Certain(q, db) // compiles (and caches) the plan for RRX
//
// A dedicated Engine gives control over the plan-cache size and the
// batch worker pool:
//
//	eng := cqa.NewEngine(cqa.EngineConfig{PlanCacheSize: 128, Workers: 8})
//	p := eng.Compile(q)             // classification + tier artifacts, once
//	res = p.Certain(db)             // per-instance work only
//	fmt.Println(eng.CacheStats())   // {Hits:... Misses:... Entries:...}
//
// For serving-style workloads — many (query, instance) pairs in flight
// at once — CertainBatch evaluates requests on a worker pool, sharing
// one compiled plan per distinct query word:
//
//	reqs := []cqa.Request{{Query: q, DB: db1}, {Query: q, DB: db2}}
//	for _, r := range eng.CertainBatch(ctx, reqs) {
//		if r.Err != nil { ... }     // cancelled or unsound forced tier
//	}
//
// Compiling a plan runs the Theorem 3 classification once and
// precomputes the dispatched tier's machinery — the Lemma 13 FO
// rewriting, the certified Section 6.3 loop decomposition, or the
// Figure 5 fixpoint tables — so only instance-dependent work remains
// per call (see internal/plan). Plans are immutable; one plan may serve
// any number of goroutines concurrently.
//
// # Interned evaluation
//
// The NL and PTIME tiers evaluate on the instance's interned view
// (Instance.Interned): the active domain and relation names are
// interned to dense integer ids once per instance state, and the
// solvers run entirely on slice-indexed state — the Figure 5 fixpoint
// on a bitset relation with a CSR successor index, the Section 6.3
// loop procedure on bitset predicates over a CSR loop-step graph. On
// top of the interned view, each compiled plan memoizes its
// instance-bound artifacts per (plan, instance) pair, keyed by the
// interned snapshot pointer in a bounded LRU. Mutating an instance
// publishes a fresh snapshot, so stale artifacts are unreachable by
// construction — serving workloads that re-query the same instance pay
// the build once and then do only per-call decision work (for the NL
// tier, a scan of the memoized Lemma 14 predicate).
package cqa

import (
	"container/list"
	"context"
	"runtime"
	"sync"

	"cqa/internal/plan"
)

// Plan is a compiled execution plan for one path query: the Theorem 3
// classification plus the precomputed artifacts of its solver tier.
// Plans are immutable and safe for concurrent use.
type Plan = plan.Plan

// EngineConfig tunes an Engine.
type EngineConfig struct {
	// PlanCacheSize bounds the number of compiled plans kept in the
	// LRU cache. 0 means DefaultPlanCacheSize.
	PlanCacheSize int
	// Workers is the number of goroutines CertainBatch runs. 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
}

// DefaultPlanCacheSize is the plan-cache bound used when
// EngineConfig.PlanCacheSize is 0.
const DefaultPlanCacheSize = 256

// Engine evaluates CERTAINTY(q, db) through an LRU cache of compiled
// plans keyed by the query word, plus a worker pool for batch
// evaluation. The zero value is not usable; construct with NewEngine.
// An Engine is safe for concurrent use.
type Engine struct {
	capacity int
	workers  int

	mu    sync.Mutex
	order *list.List // *cacheEntry, front = most recently used
	index map[string]*list.Element
	hits  uint64
	miss  uint64
}

// cacheEntry compiles its plan at most once; concurrent requests for
// the same fresh query block on the entry, not on the whole cache.
type cacheEntry struct {
	key  string
	once sync.Once
	plan *Plan
	word Query
}

// NewEngine returns an Engine with the given configuration.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.PlanCacheSize <= 0 {
		cfg.PlanCacheSize = DefaultPlanCacheSize
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		capacity: cfg.PlanCacheSize,
		workers:  cfg.Workers,
		order:    list.New(),
		index:    make(map[string]*list.Element),
	}
}

// Compile returns the cached plan for q, compiling it on first use.
func (e *Engine) Compile(q Query) *Plan {
	key := q.String()
	e.mu.Lock()
	if el, ok := e.index[key]; ok {
		e.order.MoveToFront(el)
		e.hits++
		entry := el.Value.(*cacheEntry)
		e.mu.Unlock()
		entry.once.Do(func() { entry.plan = plan.Compile(entry.word.Word()) })
		return entry.plan
	}
	e.miss++
	entry := &cacheEntry{key: key, word: q}
	e.index[key] = e.order.PushFront(entry)
	for e.order.Len() > e.capacity {
		oldest := e.order.Back()
		e.order.Remove(oldest)
		delete(e.index, oldest.Value.(*cacheEntry).key)
	}
	e.mu.Unlock()
	// Compile outside the cache lock: a slow compilation (e.g. the DFA
	// certification of an NL decomposition) must not serialize the
	// whole engine. Plans already evicted remain usable by holders.
	entry.once.Do(func() { entry.plan = plan.Compile(entry.word.Word()) })
	return entry.plan
}

// Certain decides CERTAINTY(q) on db with automatic tier dispatch,
// reusing the cached plan for q.
func (e *Engine) Certain(q Query, db *Instance) Result {
	return e.Compile(q).Certain(db)
}

// CertainOpt decides CERTAINTY(q) on db with explicit options, reusing
// the cached plan for q.
func (e *Engine) CertainOpt(q Query, db *Instance, opts Options) (Result, error) {
	return e.Compile(q).Execute(db, opts)
}

// Request is one (query, instance) pair of a batch.
type Request struct {
	Query   Query
	DB      *Instance
	Options Options
}

// CertainBatch evaluates all requests concurrently on the engine's
// worker pool and returns one Result per request, in request order.
// Distinct requests for the same query word share a single compiled
// plan. A request that cannot be evaluated — its options force an
// unsound tier, or ctx is cancelled before it runs — gets its Err field
// set instead of a decision; the remaining requests are unaffected.
func (e *Engine) CertainBatch(ctx context.Context, reqs []Request) []Result {
	out := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					out[i].Err = err
					continue
				}
				res, err := e.CertainOpt(reqs[i].Query, reqs[i].DB, reqs[i].Options)
				res.Err = err
				out[i] = res
			}
		}()
	}
	sent := 0
feed:
	for i := range reqs {
		select {
		case idx <- i:
			sent = i + 1
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := sent; i < len(reqs); i++ {
			out[i].Err = err
		}
	}
	return out
}

// CacheStats is a snapshot of the engine's plan-cache counters.
type CacheStats struct {
	// Hits and Misses count Compile lookups since the engine was
	// created.
	Hits, Misses uint64
	// Entries is the number of plans currently cached.
	Entries int
}

// CacheStats returns a snapshot of the plan-cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return CacheStats{Hits: e.hits, Misses: e.miss, Entries: e.order.Len()}
}

// defaultEngine backs the package-level Certain/CertainOpt/CertainBatch
// facade.
var defaultEngine = NewEngine(EngineConfig{})

// DefaultEngine returns the shared engine behind the package-level
// facade functions.
func DefaultEngine() *Engine { return defaultEngine }

// CompilePlan compiles (and caches on the default engine) the plan for
// q.
func CompilePlan(q Query) *Plan { return defaultEngine.Compile(q) }

// CertainBatch evaluates the requests concurrently on the default
// engine; see Engine.CertainBatch.
func CertainBatch(ctx context.Context, reqs []Request) []Result {
	return defaultEngine.CertainBatch(ctx, reqs)
}
