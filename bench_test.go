package cqa

// Benchmark harness (experiment E14 of DESIGN.md): wall-clock scaling of
// the four solver tiers against instance size and query class, the
// classification procedure against query length, and the hardness
// reductions at scale. The paper has no empirical evaluation; these
// benches substantiate its complexity-theoretic shape claims — the FO
// and fixpoint tiers scale near-linearly in |db|, the SAT tier pays for
// generality, and classification is polynomial in |q|.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cqa/internal/circuits"
	"cqa/internal/classify"
	"cqa/internal/conp"
	"cqa/internal/fixpoint"
	"cqa/internal/fo"
	"cqa/internal/graphs"
	"cqa/internal/instance"
	"cqa/internal/nl"
	"cqa/internal/reductions"
	"cqa/internal/repairs"
	"cqa/internal/words"
	"cqa/internal/workload"
)

var benchSizes = []int{100, 1000, 10000}

func benchInstance(size int) *Instance {
	return workload.Random(workload.Config{
		Relations:    []string{"R", "X", "Y", "A"},
		Constants:    size / 2,
		Facts:        size,
		ConflictRate: 0.3,
		Seed:         42,
	})
}

// BenchmarkClassify measures the polynomial classification procedure on
// growing query lengths (Theorem 2's "decidable in polynomial time").
func BenchmarkClassify(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 8, 16, 32} {
		w := make(words.Word, n)
		for i := range w {
			w[i] = []string{"R", "X", "Y"}[rng.Intn(3)]
		}
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				classify.Classify(w)
			}
		})
	}
}

// BenchmarkTierFO: the Lemma 13 rewriting DP on FO-class query RXRX.
func BenchmarkTierFO(b *testing.B) {
	q := words.MustParse("RXRX")
	for _, size := range benchSizes {
		db := benchInstance(size)
		b.Run(fmt.Sprintf("facts=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fo.IsCertainFO(db, q)
			}
		})
	}
}

// BenchmarkTierNL: the Section 6.3 loop procedure on NL-class query RRX.
func BenchmarkTierNL(b *testing.B) {
	q := words.MustParse("RRX")
	for _, size := range benchSizes {
		db := benchInstance(size)
		b.Run(fmt.Sprintf("facts=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := nl.IsCertain(db, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTierNLCompiled: the same workload as BenchmarkTierNL through
// one compiled evaluator, isolating the interned per-snapshot artifact
// memo — per warm call only the O-bitset scan over the active domain
// runs.
func BenchmarkTierNLCompiled(b *testing.B) {
	q := words.MustParse("RRX")
	ev, err := nl.NewEvaluator(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range benchSizes {
		db := benchInstance(size)
		ev.IsCertain(db) // build the per-snapshot artifacts once
		b.Run(fmt.Sprintf("facts=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev.IsCertain(db)
			}
		})
	}
}

// BenchmarkTierFixpoint: the Figure 5 algorithm on PTIME-class query
// RXRYRY.
func BenchmarkTierFixpoint(b *testing.B) {
	q := words.MustParse("RXRYRY")
	for _, size := range benchSizes {
		db := benchInstance(size)
		b.Run(fmt.Sprintf("facts=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fixpoint.Solve(db, q)
			}
		})
	}
}

// BenchmarkTierFixpointCompiled: the same workload as
// BenchmarkTierFixpoint through one compiled query, isolating the
// interned per-(plan, instance) binding memo — per call only the
// slice-indexed worklist runs.
func BenchmarkTierFixpointCompiled(b *testing.B) {
	q := words.MustParse("RXRYRY")
	cp := fixpoint.Compile(q)
	for _, size := range benchSizes {
		db := benchInstance(size)
		cp.Solve(db) // bind the interned transition tables once
		b.Run(fmt.Sprintf("facts=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cp.Solve(db)
			}
		})
	}
}

// BenchmarkTierSAT: the CDCL tier on coNP-class query ARRX, cold —
// every call re-encodes the CNF and solves it from scratch.
func BenchmarkTierSAT(b *testing.B) {
	q := words.MustParse("ARRX")
	for _, size := range benchSizes {
		db := benchInstance(size)
		b.Run(fmt.Sprintf("facts=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conp.IsCertain(db, q)
			}
		})
	}
}

// BenchmarkTierSATCompiled: the same workload through one compiled
// query, isolating the per-snapshot CNF memo — a warm call re-runs only
// the incremental solver (saved phases, learned clauses) under the
// ¬z[c,0] assumptions.
func BenchmarkTierSATCompiled(b *testing.B) {
	q := words.MustParse("ARRX")
	cp := conp.Compile(q)
	for _, size := range benchSizes {
		db := benchInstance(size)
		cp.IsCertain(db) // build and memoize the CNF once
		b.Run(fmt.Sprintf("facts=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cp.IsCertain(db)
			}
		})
	}
}

// BenchmarkTierCrossover runs the general SAT tier on the same NL-class
// workload as the dedicated NL tier, exposing the cost of generality
// (the paper's point that lower tiers matter).
func BenchmarkTierCrossover(b *testing.B) {
	q := words.MustParse("RRX")
	for _, size := range []int{100, 1000} {
		db := benchInstance(size)
		b.Run(fmt.Sprintf("sat-on-nl-query/facts=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conp.IsCertain(db, q)
			}
		})
		b.Run(fmt.Sprintf("fixpoint-on-nl-query/facts=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fixpoint.Solve(db, q)
			}
		})
	}
}

// BenchmarkDispatch measures the full facade. Since the facade runs on
// the default engine, this is the warm (plan-cached) path; see
// BenchmarkColdCertain / BenchmarkEngineReuse for the cold-vs-warm
// comparison.
func BenchmarkDispatch(b *testing.B) {
	db := benchInstance(1000)
	for _, qs := range []string{"RXRX", "RRX", "RXRYRY", "ARRX"} {
		q := MustParseQuery(qs)
		b.Run(qs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Certain(q, db)
			}
		})
	}
}

// engineBenchCases is the serving-style workload for the plan-reuse
// benchmarks: a handful of hot C2/C3 queries hitting small instances,
// the regime the ROADMAP's heavy-traffic north star cares about.
var engineBenchCases = []struct {
	query string
	facts int
}{
	{"RRX", 20},            // C2 (NL tier: certified loop decomposition)
	{"RRRRRRRRX", 20},      // C2, longer loop region (costlier certification)
	{"RXRYRY", 20},         // C3 (PTIME tier: Figure 5 fixpoint)
	{"RXRYRYRYRYRYRY", 20}, // C3, longer query (costlier classification)
}

// BenchmarkColdCertain is the per-call baseline: every decision pays
// classification plus tier compilation (a fresh engine per iteration,
// matching the pre-engine facade behavior). The "mixed" case runs the
// whole workload per op — its ratio against BenchmarkEngineReuse/mixed
// is the workload-level plan-reuse speedup.
func BenchmarkColdCertain(b *testing.B) {
	for _, c := range engineBenchCases {
		q := MustParseQuery(c.query)
		db := benchInstance(c.facts)
		b.Run(fmt.Sprintf("%s/facts=%d", c.query, c.facts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := NewEngine(EngineConfig{})
				eng.Certain(q, db)
			}
		})
	}
	queries, dbs := engineBenchWorkload()
	b.Run("mixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := NewEngine(EngineConfig{})
			for j, q := range queries {
				eng.Certain(q, dbs[j])
			}
		}
	})
}

func engineBenchWorkload() ([]Query, []*Instance) {
	var queries []Query
	var dbs []*Instance
	for _, c := range engineBenchCases {
		queries = append(queries, MustParseQuery(c.query))
		dbs = append(dbs, benchInstance(c.facts))
	}
	return queries, dbs
}

// BenchmarkEngineReuse is the same workload through one shared engine:
// the plan is compiled once and every call runs only instance-dependent
// work. The acceptance bar for this PR is ≥ 2x over BenchmarkColdCertain
// on the mixed C2/C3 workload.
func BenchmarkEngineReuse(b *testing.B) {
	for _, c := range engineBenchCases {
		q := MustParseQuery(c.query)
		db := benchInstance(c.facts)
		eng := NewEngine(EngineConfig{})
		eng.Certain(q, db) // warm the plan cache
		b.Run(fmt.Sprintf("%s/facts=%d", c.query, c.facts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.Certain(q, db)
			}
		})
	}
	queries, dbs := engineBenchWorkload()
	eng := NewEngine(EngineConfig{})
	b.Run("mixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, q := range queries {
				eng.Certain(q, dbs[j])
			}
		}
	})
}

// BenchmarkCertainBatch measures the worker-pool batch API on a mixed
// C2/C3 request stream, against the same requests evaluated
// sequentially.
func BenchmarkCertainBatch(b *testing.B) {
	var reqs []Request
	for i := 0; i < 64; i++ {
		c := engineBenchCases[i%len(engineBenchCases)]
		reqs = append(reqs, Request{Query: MustParseQuery(c.query), DB: benchInstance(c.facts)})
	}
	for _, workers := range []int{1, 4, 8} {
		eng := NewEngine(EngineConfig{Workers: workers})
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.CertainBatch(context.Background(), reqs)
			}
		})
	}
}

// skewedBatchRequests is the serving mix for the sharded-scheduler
// benchmark (experiment E17): two hot query words whose requests cycle
// over 48 shared 300-fact instances — scattered in input order, and 48
// snapshots overflow the 16-entry per-plan binding memos, so the
// per-request scheduler rebuilds instance-bound artifacts over and over
// while snapshot-affine shards build each exactly once — plus 16
// distinct cold NL words (one request each) whose certification-heavy
// compilation the sharded pre-pass keeps off the evaluation workers.
func skewedBatchRequests() []Request {
	const nInstances = 48
	dbs := make([]*Instance, nInstances)
	for i := range dbs {
		dbs[i] = workload.Random(workload.Config{
			Relations:    []string{"R", "X", "Y"},
			Constants:    150,
			Facts:        300,
			ConflictRate: 0.3,
			Seed:         int64(1700 + i),
		})
	}
	hot := []Query{MustParseQuery("RRX"), MustParseQuery("RXRYRY")}
	var reqs []Request
	for i := 0; i < 4*len(hot)*nInstances; i++ {
		reqs = append(reqs, Request{
			Query: hot[i%len(hot)],
			DB:    dbs[(i/len(hot))%nInstances],
		})
	}
	for k := 3; k <= 18; k++ {
		reqs = append(reqs, Request{
			Query: MustParseQuery(strings.Repeat("R", k) + "X"),
			DB:    dbs[0],
		})
	}
	return reqs
}

// BenchmarkCertainBatchSharded measures the two-phase sharded batch
// scheduler against the pre-sharding per-request scheduler
// (BatchShardSize < 0) on the skewed mix above. A fresh engine per
// iteration replays the cold-word compilations and the per-plan memo
// churn every op, matching a serving tier picking up a new workload.
// The benchgate ratio gate batch-sharded-vs-unsharded enforces the
// sharded win (≤ 0.67, i.e. ≥ 1.5x).
func BenchmarkCertainBatchSharded(b *testing.B) {
	reqs := skewedBatchRequests()
	for _, cfg := range []struct {
		name      string
		shardSize int
	}{
		{"sharded", 0},
		{"unsharded", -1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := NewEngine(EngineConfig{BatchShardSize: cfg.shardSize})
				res := eng.CertainBatch(context.Background(), reqs)
				if res[0].Err != nil {
					b.Fatal(res[0].Err)
				}
			}
		})
	}
}

// mutationFact picks the fact BenchmarkWarmAfterMutation toggles: its
// key names an existing conflicting block of rel and its value is drawn
// from the active domain, so adding and removing it never changes the
// constant universe and every toggle stays on the delta-interning path.
func mutationFact(b *testing.B, db *Instance, rel string) instance.Fact {
	b.Helper()
	for _, bid := range db.ConflictingBlocks() {
		if bid.Rel != rel {
			continue
		}
		in := make(map[string]bool)
		for _, v := range db.Block(bid.Rel, bid.Key) {
			in[v] = true
		}
		for _, c := range db.Adom() {
			if !in[c] {
				return instance.Fact{Rel: rel, Key: bid.Key, Val: c}
			}
		}
	}
	b.Fatalf("no conflicting %s block with a free in-domain value", rel)
	return instance.Fact{}
}

// BenchmarkWarmAfterMutation (experiment E18): the serving regime where
// instances churn between decisions. Every "mutated" iteration toggles
// one in-universe fact and decides through the engine, so the warm call
// is a lineage repair — delta intern plus the tier's patch — instead of
// a cold per-snapshot rebuild; "unchanged" is the pure memo hit the
// benchgate ratio gates mutation-warm-{fixpoint,nl,conp} divide by
// (≤ 10x at facts=1000). The fixpoint and SAT cases mutate R, a
// relation their query reads; the NL case mutates Y, which RRX does not
// read, so its repair exercises the evaluator's relation-relevance
// short-circuit rather than a re-evaluation.
func BenchmarkWarmAfterMutation(b *testing.B) {
	cases := []struct {
		name   string
		query  string
		mutRel string
	}{
		{"fixpoint", "RXRYRY", "R"},
		{"nl", "RRX", "Y"},
		{"conp", "ARRX", "R"},
	}
	for _, c := range cases {
		q := MustParseQuery(c.query)
		for _, size := range benchSizes {
			db := benchInstance(size)
			f := mutationFact(b, db, c.mutRel)
			eng := NewEngine(EngineConfig{})
			eng.Certain(q, db) // compile the plan, build the lineage root
			b.Run(fmt.Sprintf("%s/unchanged/facts=%d", c.name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					eng.Certain(q, db)
				}
			})
			b.Run(fmt.Sprintf("%s/mutated/facts=%d", c.name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if db.Contains(f) {
						db.Remove(f)
					} else {
						db.Add(f)
					}
					eng.Certain(q, db)
				}
			})
		}
	}
}

// BenchmarkReductionReach: Lemma 18 instances from random DAGs, solved
// by the fixpoint tier.
func BenchmarkReductionReach(b *testing.B) {
	q := words.MustParse("RRX")
	for _, n := range []int{10, 50, 200} {
		g := graphs.RandomDAG(rand.New(rand.NewSource(7)), n, 0.1)
		db, err := reductions.FromReachability(q, g, "v0", fmt.Sprintf("v%d", n-1))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("vertices=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fixpoint.Solve(db, q)
			}
		})
	}
}

// BenchmarkReductionSAT: Lemma 19 instances from random 3-CNF, solved by
// the SAT tier.
func BenchmarkReductionSAT(b *testing.B) {
	q := words.MustParse("ARRX")
	rng := rand.New(rand.NewSource(8))
	for _, nv := range []int{10, 20, 40} {
		f := reductions.CNF{NumVars: nv}
		for i := 0; i < 4*nv; i++ {
			clause := make([]int, 3)
			for j := range clause {
				v := 1 + rng.Intn(nv)
				if rng.Intn(2) == 0 {
					v = -v
				}
				clause[j] = v
			}
			f.Clauses = append(f.Clauses, clause)
		}
		db, err := reductions.FromSAT(q, f)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("vars=%d", nv), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conp.IsCertain(db, q)
			}
		})
	}
}

// BenchmarkReductionMCVP: Lemma 20 instances from random circuits,
// solved by the fixpoint tier.
func BenchmarkReductionMCVP(b *testing.B) {
	q := words.MustParse("RXRYRY")
	rng := rand.New(rand.NewSource(9))
	for _, gates := range []int{20, 100, 400} {
		c, sigma := circuits.Random(rng, 10, gates)
		db, err := reductions.FromMCVP(q, c, sigma)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("gates=%d", gates), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fixpoint.Solve(db, q)
			}
		})
	}
}

// BenchmarkFixpointRRX: the Figure 2 gadget family at scale.
func BenchmarkFixpointRRX(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		db := workload.Figure2Family(n)
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fixpoint.Solve(db, words.MustParse("RRX"))
			}
		})
	}
}

// BenchmarkRepairEnumeration: the exponential ground truth, for context.
func BenchmarkRepairEnumeration(b *testing.B) {
	db := workload.Random(workload.Config{
		Relations: []string{"R", "X"}, Constants: 6, Facts: 14,
		ConflictRate: 0.5, Seed: 11,
	})
	q := words.MustParse("RRX")
	b.Run(fmt.Sprintf("repairs=%s", repairs.Count(db)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			repairs.IsCertain(db, q)
		}
	})
}

// BenchmarkCounterexample: minimal-repair construction (Lemma 10).
func BenchmarkCounterexample(b *testing.B) {
	db := workload.Figure3Family(200)
	q := words.MustParse("ARRX")
	res := conp.IsCertain(db, q)
	if res.Certain {
		b.Fatal("expected a no-instance")
	}
	b.Run("sat-with-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Counterexample() forces the on-demand materialization the
			// serving path skips.
			conp.IsCertain(db, q).Counterexample()
		}
	})
	b.Run("sat-decision-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conp.IsCertain(db, q)
		}
	})
}
