package cqa

import (
	"math/rand"
	"sync"
	"testing"

	"cqa/internal/instance"
	"cqa/internal/plan"
)

// churnInstance builds an instance with conflicting blocks in every
// relation over a fixed eight-constant universe, so in-place mutations
// that keep every block nonempty ride the delta-interning path and the
// tier caches repair instead of rebuilding.
func churnInstance(seed int64) *Instance {
	db := instance.New()
	consts := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	rng := rand.New(rand.NewSource(seed))
	for _, rel := range []string{"A", "R", "X", "Y"} {
		for i, k := range consts {
			db.AddFact(rel, k, consts[(i+1)%len(consts)])
			if rng.Intn(2) == 0 {
				db.AddFact(rel, k, consts[(i+3)%len(consts)])
			}
		}
	}
	return db
}

// TestChurnSoak interleaves in-place mutations with concurrent queries
// over shared instances, one query word per tier, and checks every
// engine decision against a cold build on a clone of the same snapshot.
// Each instance's RWMutex enforces the Instance contract (mutations
// never race with readers); everything downstream of Interned() —
// lineage repair in the fixpoint, NL and SAT caches, the plan cache,
// concurrent solver access — runs concurrently across the query
// workers, so the test is meant to run under -race.
func TestChurnSoak(t *testing.T) {
	queries := []Query{
		MustParseQuery("RXRX"),   // FO
		MustParseQuery("RRX"),    // NL
		MustParseQuery("RXRYRY"), // PTIME fixpoint
		MustParseQuery("ARRX"),   // coNP SAT
	}
	eng := NewEngine(EngineConfig{})

	type shared struct {
		mu sync.RWMutex
		db *Instance
	}
	dbs := []*shared{
		{db: churnInstance(1)},
		{db: churnInstance(2)},
	}

	const (
		mutations    = 120 // per mutator
		queryWorkers = 4
		queryIters   = 160 // per worker
	)
	consts := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	rels := []string{"A", "R", "X", "Y"}

	var wg sync.WaitGroup
	for si, s := range dbs {
		wg.Add(1)
		go func(si int, s *shared) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + si)))
			for step := 0; step < mutations; step++ {
				s.mu.Lock()
				if step%10 == 9 {
					// Occasionally leave the fixed universe: a fresh
					// constant forces a fresh lineage root, so cold
					// rebuilds interleave with repairs.
					f := instance.Fact{Rel: "R", Key: "a", Val: "z"}
					if s.db.Contains(f) {
						s.db.Remove(f)
					} else {
						s.db.Add(f)
					}
				} else {
					f := instance.Fact{
						Rel: rels[rng.Intn(len(rels))],
						Key: consts[rng.Intn(len(consts))],
						Val: consts[rng.Intn(len(consts))],
					}
					if s.db.Contains(f) && len(s.db.Block(f.Rel, f.Key)) > 1 {
						s.db.Remove(f)
					} else if !s.db.Contains(f) {
						s.db.Add(f)
					}
				}
				s.mu.Unlock()
			}
		}(si, s)
	}
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for i := 0; i < queryIters; i++ {
				q := queries[rng.Intn(len(queries))]
				s := dbs[rng.Intn(len(dbs))]
				s.mu.RLock()
				got := eng.Certain(q, s.db)
				want := plan.Compile(q.Word()).Certain(s.db.Clone())
				s.mu.RUnlock()
				if got.Err != nil || want.Err != nil {
					t.Errorf("worker %d iter %d (%v): err = %v / %v", w, i, q, got.Err, want.Err)
					return
				}
				if got.Certain != want.Certain {
					t.Errorf("worker %d iter %d (%v): engine = %v, cold = %v",
						w, i, q, got.Certain, want.Certain)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The point of the soak is the repair path: with mutations mostly
	// inside a fixed universe, at least some warm decisions must have
	// been answered by lineage repair rather than cold builds.
	if m := eng.Stats().Memo; m.Repairs == 0 {
		t.Errorf("memo stats = %+v, want lineage repairs under churn", m)
	}
}
