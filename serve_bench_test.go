// Serving-tier steady-state benchmark (package cqa_test so it can see
// both the public API and internal/server without an import cycle).
//
// BenchmarkServeSteadyState answers the deployment question the serve
// daemon raises: once the registry's instances are warm, how much does
// the HTTP/NDJSON front end cost over calling CertainBatch in process
// on the same decision mix? Both sides evaluate an identical set of
// (query, instance) pairs per op — "served" streams them as NDJSON
// batches over one connection per instance through the persistent shard
// router, "inprocess" hands them to the engine's sharded batch
// scheduler directly. The benchgate ratio gate serve-vs-batch bounds
// served/inprocess at 1.5x, keeping the transport + router overhead a
// hardware-independent invariant.
package cqa_test

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cqa"
	"cqa/internal/server"
	"cqa/internal/workload"
)

const (
	serveBenchInstances = 8
	serveBenchRepeats   = 16 // rounds of the word mix per instance per op
)

// serveBenchWords is one query per tier, same mix as the server e2e.
var serveBenchWords = []string{"RXRX", "RRX", "RXRYRY", "ARRX"}

func serveBenchDB(i int) *cqa.Instance {
	return workload.Random(workload.Config{
		Relations:    []string{"R", "X", "Y", "A"},
		Constants:    300,
		Facts:        1000,
		ConflictRate: 0.3,
		Seed:         int64(2600 + i),
	})
}

// serveBenchBody is the NDJSON batch each instance's connection streams
// per op: the word mix repeated serveBenchRepeats times.
func serveBenchBody() (string, int) {
	var sb strings.Builder
	n := 0
	for r := 0; r < serveBenchRepeats; r++ {
		for _, w := range serveBenchWords {
			sb.WriteString(w)
			sb.WriteByte('\n')
			n++
		}
	}
	return sb.String(), n
}

func BenchmarkServeSteadyState(b *testing.B) {
	body, perInstance := serveBenchBody()

	b.Run("served", func(b *testing.B) {
		reg := cqa.NewRegistry(cqa.NewEngine(cqa.EngineConfig{}))
		srv := server.New(server.Config{Registry: reg, RouterWorkers: 4})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Drain()

		names := make([]string, serveBenchInstances)
		for i := range names {
			names[i] = fmt.Sprintf("db%d", i)
			if err := reg.Register(names[i], serveBenchDB(i)); err != nil {
				b.Fatal(err)
			}
		}
		round := func() {
			var wg sync.WaitGroup
			for _, name := range names {
				wg.Add(1)
				go func(name string) {
					defer wg.Done()
					resp, err := http.Post(ts.URL+"/instances/"+name+"/batch",
						"application/x-ndjson", strings.NewReader(body))
					if err != nil {
						b.Error(err)
						return
					}
					defer resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Errorf("%s: status %d", name, resp.StatusCode)
						return
					}
					got := 0
					sc := bufio.NewScanner(resp.Body)
					for sc.Scan() {
						if strings.Contains(sc.Text(), `"error"`) {
							b.Errorf("%s: %s", name, sc.Text())
							return
						}
						got++
					}
					if got != perInstance {
						b.Errorf("%s: %d responses, want %d", name, got, perInstance)
					}
				}(name)
			}
			wg.Wait()
		}
		round() // warm the memos and the connections outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			round()
		}
	})

	b.Run("inprocess", func(b *testing.B) {
		eng := cqa.NewEngine(cqa.EngineConfig{})
		var reqs []cqa.Request
		for i := 0; i < serveBenchInstances; i++ {
			db := serveBenchDB(i)
			for r := 0; r < serveBenchRepeats; r++ {
				for _, w := range serveBenchWords {
					reqs = append(reqs, cqa.Request{Query: cqa.MustParseQuery(w), DB: db})
				}
			}
		}
		round := func() {
			for _, res := range eng.CertainBatch(context.Background(), reqs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
		round() // warm, matching the served side
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			round()
		}
	})
}
